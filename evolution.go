package choreo

import (
	"repro/internal/change"
	"repro/internal/choreography"
	"repro/internal/core"
)

// Change operations on private processes (paper Sec. 4).
type (
	// ChangeOperation is a structural change of a private process;
	// Apply is copy-on-write.
	ChangeOperation = change.Operation
	// Insert places a new activity next to a sibling.
	Insert = change.Insert
	// Append adds an activity at the end of a Sequence or Flow.
	Append = change.Append
	// Delete removes the activity at a path.
	Delete = change.Delete
	// Replace substitutes the activity at a path.
	Replace = change.Replace
	// AddPickBranch adds an onMessage branch to a Pick.
	AddPickBranch = change.AddPickBranch
	// AddSwitchCase adds a case to a Switch.
	AddSwitchCase = change.AddSwitchCase
	// ReplaceReceiveWithPick widens a Receive into a Pick (the shape
	// of the paper's Figs. 9 and 14).
	ReplaceReceiveWithPick = change.ReplaceReceiveWithPick
	// WrapTailInSwitch moves a sequence suffix into a new Switch (the
	// paper's Fig. 11 credit check).
	WrapTailInSwitch = change.WrapTailInSwitch
	// SetWhileCond changes a loop condition.
	SetWhileCond = change.SetWhileCond
	// Shift moves an activity next to another sibling (the paper's
	// "shift process activities" operation).
	Shift = change.Shift
	// Composite applies several operations in order.
	Composite = change.Composite
)

// Change classification (paper Defs. 5 and 6).
type (
	// ChangeKind is the additive/subtractive dimension (Def. 5).
	ChangeKind = core.ChangeKind
	// ChangeScope is the invariant/variant dimension (Def. 6): variant
	// changes must be propagated.
	ChangeScope = core.Scope
	// Classification bundles both dimensions.
	Classification = core.Classification
)

// Change kinds and scopes.
const (
	ChangeNeutral     = core.KindNeutral
	ChangeAdditive    = core.KindAdditive
	ChangeSubtractive = core.KindSubtractive
	ChangeBoth        = core.KindBoth

	ScopeInvariant = core.ScopeInvariant
	ScopeVariant   = core.ScopeVariant
)

// ClassifyChange implements Def. 5 on the old and new public process.
func ClassifyChange(oldPublic, newPublic *Automaton) ChangeKind {
	return core.ClassifyChange(oldPublic, newPublic)
}

// ClassifyScope implements Def. 6 against one partner.
func ClassifyScope(newView, partnerPublic *Automaton) (ChangeScope, error) {
	return core.ClassifyScope(newView, partnerPublic)
}

// Propagation planning (paper Secs. 5.2/5.3).
type (
	// Plan is a propagation plan for one partner: difference
	// automaton, adapted public process, changed states and private
	// regions.
	Plan = core.Plan
	// Hint is one located behavioral difference.
	Hint = core.Hint
	// Region is a private-process area derived from a hint.
	Region = core.Region
	// Suggestion is one proposed private adaptation.
	Suggestion = core.Suggestion
	// Suggester derives suggestions from a plan.
	Suggester = core.Suggester
)

// PlanAdditive executes steps 1–3 of Sec. 5.2 for one partner.
func PlanAdditive(newView, partnerPublic *Automaton, tbl MappingTable) (*Plan, error) {
	return core.PlanAdditive(newView, partnerPublic, tbl)
}

// PlanSubtractive executes steps 1–3 of Sec. 5.3 for one partner.
func PlanSubtractive(newView, partnerPublic *Automaton, tbl MappingTable) (*Plan, error) {
	return core.PlanSubtractive(newView, partnerPublic, tbl)
}

// Choreography orchestration (paper Fig. 4).
type (
	// Choreography holds the parties and drives controlled evolution.
	Choreography = choreography.Choreography
	// Party is one registered participant.
	Party = choreography.Party
	// EvolutionReport is the outcome of analyzing one change.
	EvolutionReport = choreography.EvolutionReport
	// PartnerImpact is the per-partner effect of a change.
	PartnerImpact = choreography.PartnerImpact
	// ConsistencyReport is the pairwise consistency status.
	ConsistencyReport = choreography.ConsistencyReport
	// PairReport is one pair's status.
	PairReport = choreography.PairReport
)

// NewChoreography returns an empty choreography validating against
// reg (which may be nil).
func NewChoreography(reg *Registry) *Choreography {
	return choreography.New(reg)
}

// ExecutableSuggestions filters suggestions that carry a ready
// operation.
func ExecutableSuggestions(s []Suggestion) []ChangeOperation {
	return choreography.ExecutableSuggestions(s)
}
