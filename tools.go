package choreo

import (
	"context"
	"net/http"
	"time"

	"repro/internal/conformance"
	"repro/internal/decentral"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/loadgen"
	"repro/internal/migrate"
	"repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/version"
)

// Serving layer (choreod): a sharded, versioned, cache-aware
// choreography store plus the JSON HTTP service (v2 surface with a v1
// compatibility shim) and typed client over it.
type (
	// ChoreographyStore is the concurrent in-memory choreography
	// store: copy-on-write snapshots per choreography, memoized
	// bilateral views and a version-keyed consistency-result cache.
	// All operations take a leading context honoring cancellation.
	ChoreographyStore = store.Store
	// StoreOption configures NewChoreographyStore.
	StoreOption = store.Option
	// StoreSnapshot is one immutable choreography snapshot.
	StoreSnapshot = store.Snapshot
	// StoreStats are cumulative store counters (cache hits/misses,
	// commits, conflicts).
	StoreStats = store.Stats
	// StoreEvolution is an analyzed-but-uncommitted change transaction
	// pinned to its base snapshot version.
	StoreEvolution = store.Evolution
	// StoreCheckReport is the cached pairwise consistency report.
	StoreCheckReport = store.CheckReport
	// ChoreoServer is the choreod HTTP front end.
	ChoreoServer = server.Server
	// ChoreoClient is the typed client for the choreod /v2/ API:
	// context-first, machine-readable error codes, pagination.
	ChoreoClient = server.Client
	// ChoreoAPIError is a non-2xx choreod response with its /v2/ code.
	ChoreoAPIError = server.APIError
	// EvolveOp is the wire encoding of one structural change operation
	// inside a /v2/ evolve transaction.
	EvolveOp = server.OpJSON
)

// Store construction options.
var (
	// WithStoreShards partitions the choreography ID space.
	WithStoreShards = store.WithShards
	// WithStoreCacheCap bounds the per-choreography consistency cache.
	WithStoreCacheCap = store.WithCacheCap
	// WithStoreJournal makes the store durable: mutations are written
	// ahead to a journal in the given directory and recovered on open.
	// Pass it to OpenChoreographyStore (NewChoreographyStore panics on
	// it, since recovery can fail). See docs/persistence.md.
	WithStoreJournal = store.WithJournal
	// WithStoreJournalFsync fsyncs the journal on every append
	// (durability across power loss, at per-commit latency cost).
	WithStoreJournalFsync = store.WithJournalFsync
)

// StoreCheckpointInfo describes a completed journal compaction
// (ChoreographyStore.Checkpoint / POST /v2/admin/checkpoint).
type StoreCheckpointInfo = store.CheckpointInfo

// Store sentinel errors.
var (
	ErrStoreNotFound = store.ErrNotFound
	ErrStoreExists   = store.ErrExists
	ErrStoreConflict = store.ErrConflict
	ErrStoreInvalid  = store.ErrInvalid
	// ErrStoreDegraded marks mutations rejected because a journal
	// failure could not be rolled back: the store serves reads only
	// until the process is restarted over an intact journal.
	ErrStoreDegraded = store.ErrDegraded
)

// Machine-readable choreod /v2/ error codes (ChoreoErrIs matches them).
const (
	ChoreoCodeInvalidArgument   = server.CodeInvalidArgument
	ChoreoCodeNotFound          = server.CodeNotFound
	ChoreoCodeAlreadyExists     = server.CodeAlreadyExists
	ChoreoCodeConflict          = server.CodeConflict
	ChoreoCodeStaleVersion      = server.CodeStaleVersion
	ChoreoCodeResourceExhausted = server.CodeResourceExhausted
	ChoreoCodeUnavailable       = server.CodeUnavailable
)

// ChoreoRetry is the client-side retry/backoff policy; arm it with
// ChoreoClient.SetRetry. Idempotent requests (reads, and mutations the
// client keys with Idempotency-Key) retry through 503s and transport
// failures with exponential backoff; 429 backpressure retries always,
// honoring the server's retryAfter hint.
type ChoreoRetry = server.Retry

// ChoreoErrIs reports whether err is a choreod API error with the
// given /v2/ code.
func ChoreoErrIs(err error, code string) bool { return server.ErrIs(err, code) }

// Streaming event ingestion: the batch endpoint
// POST /v2/choreographies/{id}/instances:events advancing tracked
// per-instance state as events arrive (see docs/ingest.md).
type (
	// ChoreoIngestEvent is the wire shape of one observed instance
	// event on the /v2/ API.
	ChoreoIngestEvent = server.IngestEventJSON
	// InstanceLiveState is one tracked instance's ingestion-time state:
	// trace position, schema tag, conformance status and deviation
	// point.
	InstanceLiveState = store.InstanceState
)

// Ingestion tuning options for NewChoreographyStore /
// OpenChoreographyStore.
var (
	// WithStoreIngestWorkers sizes the per-choreography ingestion
	// worker pool.
	WithStoreIngestWorkers = store.WithIngestWorkers
	// WithStoreIngestQueueCap bounds each ingestion lane's queue; a
	// full lane rejects batches with backpressure.
	WithStoreIngestQueueCap = store.WithIngestQueueCap
)

// ChoreoRetryAfter extracts the backoff hint of a resource_exhausted
// (ingestion backpressure) choreod API error; ok is false when err
// carries no hint.
func ChoreoRetryAfter(err error) (time.Duration, bool) { return server.RetryAfter(err) }

// Bulk instance migration: choreography-wide sweeps moving every
// tracked instance to the current committed snapshot
// (ChoreographyStore.MigrateAll / StartMigration, served as
// POST /v2/choreographies/{id}/migrations).
type (
	// BulkMigrationJob is one idempotent, resumable sweep: per-shard
	// checkpoint, progress counters, stranded-instance report.
	BulkMigrationJob = migrate.Job
	// BulkMigrationView is a consistent copy of a job's progress.
	BulkMigrationView = migrate.View
	// BulkMigrationStatus is a job lifecycle state.
	BulkMigrationStatus = migrate.Status
	// StrandedInstance is one instance a sweep could not migrate.
	StrandedInstance = migrate.Stranded
	// ChoreoMigrationJob is the wire shape of a job on the /v2/ API.
	ChoreoMigrationJob = server.MigrationJobJSON
)

// Bulk-migration job states.
const (
	MigrationRunning  = migrate.StatusRunning
	MigrationDone     = migrate.StatusDone
	MigrationCanceled = migrate.StatusCanceled
	MigrationFailed   = migrate.StatusFailed
)

// NewChoreographyStore returns an empty store configured by opts
// (WithStoreShards, WithStoreCacheCap).
func NewChoreographyStore(opts ...StoreOption) *ChoreographyStore { return store.New(opts...) }

// OpenChoreographyStore is NewChoreographyStore plus durability: with
// WithStoreJournal among opts it opens the journal, recovers the
// previous state (snapshot + write-ahead log tail) and write-ahead
// logs every subsequent mutation. Without a journal option it is
// equivalent to NewChoreographyStore.
func OpenChoreographyStore(opts ...StoreOption) (*ChoreographyStore, error) {
	return store.Open(opts...)
}

// NewChoreoServer returns the choreod HTTP service over st.
func NewChoreoServer(st *ChoreographyStore) *ChoreoServer { return server.New(st) }

// NewChoreoClient returns a client for the choreod service at base;
// httpClient may be nil.
func NewChoreoClient(base string, httpClient *http.Client) *ChoreoClient {
	return server.NewClient(base, httpClient)
}

// InferRegistry builds a WSDL registry covering every operation the
// processes mention ("party.op" entries in syncOps mark synchronous
// operations) — the registry the service infers when parties register
// by XML.
func InferRegistry(procs []*Process, syncOps []string) (*Registry, error) {
	return store.InferRegistry(procs, syncOps)
}

// Choreography execution (the empirical substrate validating the
// consistency criterion).
type (
	// System is a set of parties ready for joint synchronous
	// execution.
	System = runtime.System
	// ExecResult is the outcome of exhaustive exploration.
	ExecResult = runtime.Result
	// ExecFailure is one reachable execution failure.
	ExecFailure = runtime.Failure
	// WalkResult is one random execution.
	WalkResult = runtime.WalkResult
)

// NewSystem builds an executable system from public processes keyed by
// party name.
func NewSystem(parties map[string]*Automaton) (*System, error) {
	return runtime.NewSystem(parties)
}

// Service discovery (paper Sec. 6, consistency-based matchmaking).
type (
	// ServiceRegistry stores published public processes.
	ServiceRegistry = discovery.Registry
	// ServiceMatch is one discovery result.
	ServiceMatch = discovery.Match
	// MatchEvaluation compares a matcher against ground truth.
	MatchEvaluation = discovery.Evaluation
)

// NewServiceRegistry returns an empty service registry.
func NewServiceRegistry() *ServiceRegistry { return discovery.NewRegistry() }

// EvaluateMatches computes precision/recall of a result set.
func EvaluateMatches(matcher string, got []ServiceMatch, truth map[string]bool) MatchEvaluation {
	return discovery.Evaluate(matcher, got, truth)
}

// Decentralized consistency establishment (paper Sec. 6).
type (
	// DecentralNode is one participant of the decentralized protocol.
	DecentralNode = decentral.Node
	// DecentralOutcome summarizes one protocol run.
	DecentralOutcome = decentral.Outcome
	// Negotiation is the outcome of a decentralized change
	// introduction (propose/vote/commit).
	Negotiation = decentral.Negotiation
	// NegotiationVote is one partner's answer.
	NegotiationVote = decentral.Vote
	// PartnerAdapter is the partner-side adaptation callback used
	// during negotiation.
	PartnerAdapter = decentral.Adapter
)

// Negotiation votes.
const (
	VoteAccept  = decentral.VoteAccept
	VoteAdapted = decentral.VoteAdapted
	VoteReject  = decentral.VoteReject
)

// EstablishDecentralized runs the decentralized consistency protocol.
func EstablishDecentralized(nodes []DecentralNode) (*DecentralOutcome, error) {
	return decentral.Establish(nodes)
}

// NegotiateChange runs the decentralized two-phase introduction of a
// change: propose the new views, collect accept/adapted/reject votes,
// commit iff nobody rejected.
func NegotiateChange(origin string, newViews map[string]*Automaton, partners []DecentralNode, adapt PartnerAdapter) (*Negotiation, error) {
	return decentral.NegotiateChange(origin, newViews, partners, adapt)
}

// Schema version management (paper Sec. 8: co-existing choreography
// versions with instance migration).
type (
	// VersionHistory is one party's version tree.
	VersionHistory = version.History
	// VersionID identifies a version in a history.
	VersionID = version.ID
	// SchemaVersion is one version of a party's process.
	SchemaVersion = version.Version
	// VersionManager tracks a history plus the running instances
	// pinned to its versions.
	VersionManager = version.Manager
	// MigrationOutcome summarizes a MigrateAll run.
	MigrationOutcome = version.MigrationOutcome
)

// NewVersionHistory starts a version history with the initial version.
func NewVersionHistory(party string, private *Process, public *Automaton) (*VersionHistory, error) {
	return version.NewHistory(party, private, public)
}

// NewVersionManager wraps a history for instance tracking.
func NewVersionManager(h *VersionHistory) *VersionManager { return version.NewManager(h) }

// Instance migration (the paper's Sec. 8 extension).
type (
	// Instance is a running conversation identified by its trace.
	Instance = instance.Instance
	// MigrationStatus classifies an instance against a new schema.
	MigrationStatus = instance.Status
	// MigrationReport summarizes a migration.
	MigrationReport = instance.Report
)

// Migration statuses.
const (
	Migratable    = instance.Migratable
	NonReplayable = instance.NonReplayable
	Unviable      = instance.Unviable
)

// CheckInstance classifies one instance against the new public
// process (ADEPT-style compliance).
func CheckInstance(inst Instance, newPublic *Automaton) (MigrationStatus, error) {
	return instance.Check(inst, newPublic)
}

// MigrateInstances classifies every instance against the new schema.
func MigrateInstances(instances []Instance, newPublic *Automaton) (*MigrationReport, error) {
	return instance.Migrate(instances, newPublic)
}

// SampleInstances draws running instances of a public process by
// seeded random walks.
func SampleInstances(public *Automaton, seed int64, n, maxLen int) []Instance {
	return instance.SampleInstances(public, seed, n, maxLen)
}

// Conformance monitoring: replaying observed message logs against the
// agreed public processes and detecting uncontrolled evolution.
type (
	// Monitor tracks a conversation against the parties' public
	// processes.
	Monitor = conformance.Monitor
	// Deviation localizes one protocol violation.
	Deviation = conformance.Deviation
	// DeviationRole says whether a party deviated as sender or
	// receiver.
	DeviationRole = conformance.Role
	// Drift is the outcome of comparing observed behavior with a
	// published view.
	Drift = conformance.Drift
)

// Deviation roles.
const (
	RoleSender   = conformance.RoleSender
	RoleReceiver = conformance.RoleReceiver
	RoleUnknown  = conformance.RoleUnknown
)

// NewMonitor builds a conformance monitor from public processes keyed
// by party.
func NewMonitor(parties map[string]*Automaton) (*Monitor, error) {
	return conformance.NewMonitor(parties)
}

// CheckTrace replays a whole message log; it returns the first
// deviation (nil if none) and whether the conversation completed.
func CheckTrace(parties map[string]*Automaton, trace []Label) (*Deviation, bool, error) {
	return conformance.CheckTrace(parties, trace)
}

// DetectDrift compares the observed behavior of a party (message logs)
// against its published bilateral view and reports novel behavior —
// evidence of uncontrolled evolution.
func DetectDrift(party string, publishedView *Automaton, traces [][]Label) *Drift {
	return conformance.DetectDrift(party, publishedView, traces)
}

// Workload generation (seeded, deterministic).
type (
	// GenParams controls conversation generation.
	GenParams = gen.Params
	// Conversation is a generated two-party conversation with its
	// consistent-by-construction projections.
	Conversation = gen.Conversation
)

// DefaultGenParams returns a medium-sized workload.
func DefaultGenParams() GenParams { return gen.DefaultParams() }

// GenerateConversation builds a random conversation and its two
// projections.
func GenerateConversation(seed int64, p GenParams) (*Conversation, error) {
	return gen.Generate(seed, p)
}

// RandomChange draws a random structural change for a process.
func RandomChange(seed int64, p *Process, reg *Registry) (ChangeOperation, error) {
	return gen.RandomChange(seed, p, reg)
}

// Workload layer: the scenario corpus and the mixed-traffic load
// generator over it.
type (
	// Scenario is one corpus entry: 5+ party processes (consistent by
	// construction), scripted running instances and scripted evolution
	// episodes with expected classifications and migration fallout.
	Scenario = scenario.Scenario
	// ScenarioEpisode is one scripted evolution of a Scenario.
	ScenarioEpisode = scenario.Episode
	// LoadgenConfig parameterizes one load run against a choreod.
	LoadgenConfig = loadgen.Config
	// LoadgenMix weighs the load generator's op classes.
	LoadgenMix = loadgen.Mix
	// LoadgenReport is a load run's per-class throughput/latency
	// summary.
	LoadgenReport = loadgen.Report
)

// ScenarioNames lists the checked-in corpus scenarios.
func ScenarioNames() []string { return scenario.Names() }

// LoadScenario loads one corpus scenario by name.
func LoadScenario(name string) (*Scenario, error) { return scenario.Load(name) }

// RunLoadgen drives mixed corpus traffic against a running choreod
// and reports per-op-class throughput and latency quantiles.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenReport, error) {
	return loadgen.Run(ctx, cfg)
}
