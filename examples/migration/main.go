// Command migration demonstrates the instance-migration extension
// (paper Sec. 8 / ADEPT line of work): running buyer conversations are
// classified against the bounded-tracking schema produced by the
// subtractive propagation scenario. Fresh and single-round instances
// migrate; instances that already tracked twice are blocked.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	reg := choreo.PaperRegistry()

	oldPub, err := choreo.DerivePublic(choreo.PaperBuyer(), reg)
	if err != nil {
		log.Fatal(err)
	}

	// Evolve the choreography: accounting bounds tracking, the buyer
	// adaptation is applied (Sec. 5.3 flow), yielding the new buyer
	// schema.
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}
	report, err := c.Evolve("A", choreo.PaperTrackingLimitChange())
	if err != nil {
		log.Fatal(err)
	}
	var buyerImpact choreo.PartnerImpact
	for _, im := range report.Impacts {
		if im.Partner == "B" {
			buyerImpact = im
		}
	}
	newBuyer, newRes, err := c.AdaptPartner("B", choreo.ExecutableSuggestions(buyerImpact.Suggestions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new buyer schema: %q (%d states)\n\n", newBuyer.Name, newRes.Automaton.NumStates())

	// Sample running instances of the OLD schema and migrate them.
	instances := choreo.SampleInstances(oldPub.Automaton, 2026, 1000, 12)
	rep, err := choreo.MigrateInstances(instances, newRes.Automaton)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instances:      %d\n", rep.Total)
	fmt.Printf("migratable:     %d (%.1f%%)\n", rep.Migratable, 100*rep.MigratableFraction())
	fmt.Printf("non-replayable: %d\n", rep.NonReplayable)
	fmt.Printf("unviable:       %d\n", rep.Unviable)

	// Show one concrete instance of each outcome.
	shown := map[choreo.MigrationStatus]bool{}
	for _, inst := range instances {
		st, err := choreo.CheckInstance(inst, newRes.Automaton)
		if err != nil {
			log.Fatal(err)
		}
		if !shown[st] {
			shown[st] = true
			fmt.Printf("\n%s example (%s): %s", st, inst.ID, choreo.Word(inst.Trace))
		}
	}
	fmt.Println()
}
