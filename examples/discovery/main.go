// Command discovery demonstrates consistency-based service
// matchmaking (paper Sec. 6, the IPSI-PF line of work): a registry of
// published public processes is queried with the buyer's public
// process. Message-overlap matching (the keyword baseline) returns
// false positives that the consistency matcher rejects.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	reg := choreo.PaperRegistry()

	buyerPub, err := choreo.DerivePublic(choreo.PaperBuyer(), reg)
	if err != nil {
		log.Fatal(err)
	}
	accPub, err := choreo.DerivePublic(choreo.PaperAccounting(), reg)
	if err != nil {
		log.Fatal(err)
	}

	// A look-alike accounting service that shares the buyer's message
	// vocabulary but never sends the delivery confirmation — a
	// protocol-level mismatch invisible to keyword matching.
	lookalike := choreo.NewAutomaton("lookalike accounting")
	q0 := lookalike.AddState()
	q1 := lookalike.AddState()
	q2 := lookalike.AddState()
	lookalike.SetStart(q0)
	lookalike.SetFinal(q2, true)
	lookalike.AddTransition(q0, choreo.NewLabel("B", "A", "orderOp"), q1)
	lookalike.AddTransition(q1, choreo.NewLabel("B", "A", "terminateOp"), q2)
	// It mandates an immediate terminate without ever delivering:
	lookalike.Annotate(q1, choreo.Var("B#A#terminateOp"))

	registry := choreo.NewServiceRegistry()
	if err := registry.Publish("accounting", accPub.Automaton.View("B")); err != nil {
		log.Fatal(err)
	}
	if err := registry.Publish("lookalike", lookalike); err != nil {
		log.Fatal(err)
	}

	query := buyerPub.Automaton

	overlap := registry.MatchOverlap(query)
	fmt.Println("overlap matches (baseline):")
	for _, m := range overlap {
		fmt.Println("  -", m.Name)
	}

	consistent, err := registry.MatchConsistent(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency matches (paper Sec. 3.2):")
	for _, m := range consistent {
		fmt.Println("  -", m.Name)
	}

	truth := map[string]bool{"accounting": true, "lookalike": false}
	for _, ev := range []choreo.MatchEvaluation{
		choreo.EvaluateMatches("overlap", overlap, truth),
		choreo.EvaluateMatches("consistent", consistent, truth),
	} {
		fmt.Printf("%-10s precision=%.2f recall=%.2f (TP=%d FP=%d FN=%d)\n",
			ev.Matcher, ev.Precision, ev.Recall, ev.TruePositives, ev.FalsePositives, ev.FalseNegatives)
	}
}
