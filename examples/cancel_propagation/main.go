// Command cancel_propagation replays the paper's variant *additive*
// change scenario (Sec. 5.2, Figs. 11–14): the accounting department
// introduces an order-cancellation option; the framework detects that
// the change breaks consistency with the buyer, plans the propagation
// and suggests the buyer adaptation (widening the delivery receive
// into a pick), which is then applied and verified.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}

	// The change: wrap the accounting tail into a credit-check switch
	// with a cancel alternative (paper Fig. 11).
	op := choreo.PaperCancelChange()
	fmt.Printf("applying change: %s\n\n", op)

	report, err := c.Evolve("A", op)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public process changed: %v\n", report.PublicChanged)
	for _, im := range report.Impacts {
		if !im.ViewChanged {
			fmt.Printf("partner %s: view unchanged — nothing to do\n", im.Partner)
			continue
		}
		fmt.Printf("partner %s: %s, %s\n", im.Partner, im.Classification.Kind, im.Classification.Scope)
	}

	// The buyer impact is variant: propagation needed (paper Fig. 12).
	var buyer choreo.PartnerImpact
	for _, im := range report.Impacts {
		if im.Partner == "B" {
			buyer = im
		}
	}
	fmt.Println("\n=== Buyer view after the change (paper Fig. 12a) ===")
	fmt.Print(buyer.NewView.DebugString())

	plan := buyer.Plans[0]
	fmt.Println("\n=== Added sequences A'' = τ_B(A') \\ B (paper Fig. 13a) ===")
	fmt.Print(plan.Diff.DebugString())
	fmt.Println("\n=== Adapted buyer public B' = A'' ∪ B (paper Fig. 13b) ===")
	fmt.Print(plan.NewPartnerPublic.DebugString())

	fmt.Println("\n=== Located regions and suggestions (steps 3–4) ===")
	for _, r := range plan.Regions {
		fmt.Println(" region:", r)
	}
	for _, s := range buyer.Suggestions {
		fmt.Println(" suggestion:", s)
	}

	// Apply the executable suggestion (paper Fig. 14) and verify
	// (step 5).
	ops := choreo.ExecutableSuggestions(buyer.Suggestions)
	newBuyer, res, err := c.AdaptPartner("B", ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Buyer private process after propagation (paper Fig. 14) ===")
	fmt.Print(newBuyer)

	ok, err := choreo.Consistent(buyer.NewView, res.Automaton.View("A"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbilaterally consistent again: %v\n", ok)

	// Commit both sides and re-check the whole choreography.
	if err := c.Commit(report); err != nil {
		log.Fatal(err)
	}
	if err := c.CommitParty(newBuyer); err != nil {
		log.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Final choreography ===")
	fmt.Print(check)
}
