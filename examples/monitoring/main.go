// Command monitoring demonstrates conformance monitoring: message
// logs of the procurement choreography are replayed against the agreed
// public processes; a log produced by an *uncontrolled* accounting
// change is localized on the wire, and drift detection identifies the
// unpublished cancel message from the logs alone.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func lbl(s string) choreo.Label {
	l, err := choreo.ParseLabel(s)
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func trace(labels ...string) []choreo.Label {
	out := make([]choreo.Label, len(labels))
	for i, s := range labels {
		out[i] = lbl(s)
	}
	return out
}

func main() {
	reg := choreo.PaperRegistry()
	parties := map[string]*choreo.Automaton{}
	for _, p := range []*choreo.Process{choreo.PaperBuyer(), choreo.PaperAccounting(), choreo.PaperLogistics()} {
		pub, err := choreo.DerivePublic(p, reg)
		if err != nil {
			log.Fatal(err)
		}
		parties[p.Owner] = pub.Automaton
	}

	// A clean conversation conforms.
	ok := trace(
		"B#A#orderOp", "A#L#deliverOp", "L#A#deliver_confOp", "A#B#deliveryOp",
		"B#A#terminateOp", "A#L#terminateLOp")
	dev, complete, err := choreo.CheckTrace(parties, ok)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean log:  deviation=%v complete=%v\n", dev, complete)

	// A log from the wire after accounting changed without telling
	// anyone: the monitor holds the *published* accounting process, so
	// the cancel is localized as an illegal send by A.
	bad := trace("B#A#orderOp", "A#B#cancelOp")
	dev, _, err = choreo.CheckTrace(parties, bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drifted log: %v\n", dev)

	// Drift detection from a batch of logs: the unpublished cancel
	// surfaces as novel behavior of the accounting department.
	published := parties["A"].View("B")
	logs := [][]choreo.Label{
		trace("B#A#orderOp", "A#B#deliveryOp", "B#A#terminateOp"),
		trace("B#A#orderOp", "A#B#cancelOp"),
		trace("B#A#orderOp", "A#B#deliveryOp", "B#A#getStatusOp", "A#B#statusOp", "B#A#terminateOp"),
	}
	drift := choreo.DetectDrift("A", published, logs)
	fmt.Printf("drift detected: %v\n", drift.Drifted())
	for _, h := range drift.Novel {
		fmt.Println("  novel behavior:", h)
	}
}
