// Command quickstart walks through the core of the framework on the
// paper's procurement scenario (Sec. 2): derive public processes from
// private BPEL, inspect the mapping table (Table 1), check bilateral
// consistency, and execute the choreography exhaustively to confirm
// deadlock freedom.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	reg := choreo.PaperRegistry()

	// 1. Private processes (paper Figs. 2 and 3).
	buyer := choreo.PaperBuyer()
	accounting := choreo.PaperAccounting()
	logistics := choreo.PaperLogistics()
	fmt.Println("=== Private processes ===")
	fmt.Print(buyer)
	fmt.Println()

	// 2. Public process generation (Sec. 3.3): the buyer's public
	// aFSA of Fig. 6 and the mapping table of Table 1.
	pub, err := choreo.DerivePublic(buyer, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Buyer public process (paper Fig. 6) ===")
	fmt.Print(pub.Automaton.DebugString())
	fmt.Println("=== Buyer mapping table (paper Table 1) ===")
	fmt.Print(pub.Table)
	fmt.Println()

	// 3. Views and bilateral consistency (Secs. 3.2, 3.4).
	accPub, err := choreo.DerivePublic(accounting, reg)
	if err != nil {
		log.Fatal(err)
	}
	buyerView := accPub.Automaton.View("B") // paper Fig. 8a
	ok, err := choreo.Consistent(buyerView, pub.Automaton.View("A"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buyer ↔ accounting consistent: %v\n", ok)

	// 4. The whole choreography at once.
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}
	report, err := c.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Choreography consistency ===")
	fmt.Print(report)

	// 5. Execute it: exhaustive exploration must find no deadlock
	// (the property bilateral consistency guarantees, Sec. 3.2).
	logPub, err := choreo.DerivePublic(logistics, reg)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := choreo.NewSystem(map[string]*choreo.Automaton{
		"B": pub.Automaton,
		"A": accPub.Automaton,
		"L": logPub.Automaton,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Explore(0)
	fmt.Printf("\n=== Execution ===\nglobal states explored: %d\ncompletions: %d\ndeadlock free: %v\n",
		res.States, res.Completions, res.DeadlockFree())
}
