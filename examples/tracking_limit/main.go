// Command tracking_limit replays the paper's variant *subtractive*
// change scenario (Sec. 5.3, Figs. 15–18): the accounting department
// bounds parcel tracking to at most one round; the buyer's unlimited
// tracking loop becomes inconsistent and is replaced, via the
// suggestion engine, by its bounded unrolling.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}

	op := choreo.PaperTrackingLimitChange()
	fmt.Printf("applying change: %s\n\n", op)

	report, err := c.Evolve("A", op)
	if err != nil {
		log.Fatal(err)
	}
	for _, im := range report.Impacts {
		fmt.Printf("partner %s: view changed=%v", im.Partner, im.ViewChanged)
		if im.ViewChanged {
			fmt.Printf(" — %s, %s", im.Classification.Kind, im.Classification.Scope)
		}
		fmt.Println()
	}

	var buyer choreo.PartnerImpact
	for _, im := range report.Impacts {
		if im.Partner == "B" {
			buyer = im
		}
	}

	fmt.Println("\n=== Buyer view after the change (paper Fig. 16a) ===")
	fmt.Print(buyer.NewView.DebugString())

	plan := buyer.Plans[0]
	fmt.Println("\n=== Removed sequences (paper Fig. 17a) accept e.g. two tracking rounds ===")
	fmt.Println("states:", plan.Diff.NumStates())
	fmt.Println("\n=== Adapted buyer public (paper Fig. 17b) ===")
	fmt.Print(plan.NewPartnerPublic.DebugString())

	fmt.Println("\n=== Regions (the paper points at While:tracking) ===")
	for _, r := range plan.Regions {
		fmt.Println(" region:", r)
	}
	for _, s := range buyer.Suggestions {
		fmt.Println(" suggestion:", s)
	}

	ops := choreo.ExecutableSuggestions(buyer.Suggestions)
	newBuyer, res, err := c.AdaptPartner("B", ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Buyer private process after propagation (paper Fig. 18) ===")
	fmt.Print(newBuyer)

	ok, err := choreo.Consistent(buyer.NewView, res.Automaton.View("A"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbilaterally consistent again: %v\n", ok)

	// The logistics partner needs no adaptation: its tracking loop is
	// a pick (external choice), so the bounded accounting process
	// never violates a logistics-mandatory alternative.
	for _, im := range report.Impacts {
		if im.Partner == "L" {
			fmt.Printf("logistics: %s, %s — no propagation required\n",
				im.Classification.Kind, im.Classification.Scope)
		}
	}

	if err := c.Commit(report); err != nil {
		log.Fatal(err)
	}
	if err := c.CommitParty(newBuyer); err != nil {
		log.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Final choreography ===")
	fmt.Print(check)
}
