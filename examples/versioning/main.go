// Command versioning demonstrates the co-existence of choreography
// schema versions (paper Sec. 8): the buyer evolves through the
// Sec. 5.3 propagation, running instances are migrated where
// compliant, and the rest keep executing on the old version. A
// decentralized negotiation introduces the change across partners
// first.
package main

import (
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	reg := choreo.PaperRegistry()

	// Version 0: the original buyer.
	v0, err := choreo.DerivePublic(choreo.PaperBuyer(), reg)
	if err != nil {
		log.Fatal(err)
	}
	history, err := choreo.NewVersionHistory("B", choreo.PaperBuyer(), v0.Automaton)
	if err != nil {
		log.Fatal(err)
	}

	// The accounting department proposes the tracking-limit change via
	// the decentralized negotiation protocol; the buyer's adapter runs
	// the framework's own propagation pipeline.
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := c.Evolve("A", choreo.PaperTrackingLimitChange())
	if err != nil {
		log.Fatal(err)
	}
	var buyerImpact choreo.PartnerImpact
	for _, im := range rep.Impacts {
		if im.Partner == "B" {
			buyerImpact = im
		}
	}
	var adaptedBuyer *choreo.Process
	adapter := func(party string, newView *choreo.Automaton) (*choreo.Automaton, bool) {
		if party != "B" {
			return nil, false
		}
		proc, res, err := c.AdaptPartner("B", choreo.ExecutableSuggestions(buyerImpact.Suggestions))
		if err != nil {
			return nil, false
		}
		adaptedBuyer = proc
		return res.Automaton, true
	}

	logisticsParty, _ := c.Party("L")
	buyerParty, _ := c.Party("B")
	partners := []choreo.DecentralNode{
		{Party: "B", Public: buyerParty.Public},
		{Party: "L", Public: logisticsParty.Public},
	}
	views := map[string]*choreo.Automaton{
		"B": rep.NewPublic.View("B"),
		"L": rep.NewPublic.View("L"),
	}
	neg, err := choreo.NegotiateChange("A", views, partners, adapter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiation committed: %v (messages: %d)\n", neg.Committed, neg.Messages)
	for p, v := range neg.Votes {
		fmt.Printf("  %s: %v\n", p, v)
	}
	if !neg.Committed {
		log.Fatal("negotiation aborted")
	}

	// Version 1: the adapted buyer.
	newPub, err := choreo.DerivePublic(adaptedBuyer, reg)
	if err != nil {
		log.Fatal(err)
	}
	v1, err := history.Add(0, "bound tracking (Sec. 5.3 propagation)", adaptedBuyer, newPub.Automaton)
	if err != nil {
		log.Fatal(err)
	}

	// Running instances, pinned to v0.
	mgr := choreo.NewVersionManager(history)
	for _, inst := range choreo.SampleInstances(v0.Automaton, 11, 500, 12) {
		if err := mgr.Start(inst, 0); err != nil {
			log.Fatal(err)
		}
	}

	out, err := mgr.MigrateAll(v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigration to v%d:\n", v1)
	fmt.Printf("  migrated:                %d\n", out.Migrated)
	fmt.Printf("  kept on v0 (replay):     %d\n", out.RemainingNonReplayable)
	fmt.Printf("  kept on v0 (viability):  %d\n", out.RemainingUnviable)
	fmt.Printf("  residents per version:   %v\n", out.PerVersion)
	fmt.Printf("\nco-existence: %d instances still run on v0, %d on v%d\n",
		len(mgr.OnVersion(0)), len(mgr.OnVersion(v1)), v1)
}
