// Command bulk_migration demonstrates the bulk instance-migration
// engine end to end on the paper's procurement scenario: thousands of
// running conversations are recorded for every party, accounting
// commits the Sec. 5.3 tracking-limit change, and a single sweep
// classifies the whole population — moving compliant instances to the
// committed schema and reporting the long-tracking stragglers the
// subtractive change strands.
package main

import (
	"context"
	"fmt"
	"log"

	choreo "repro"
)

func main() {
	ctx := context.Background()
	st := choreo.NewChoreographyStore()
	const id = "procurement"
	if err := st.Create(ctx, id, []string{"L.getStatusLOp"}); err != nil {
		log.Fatal(err)
	}
	// The whole scenario registers as one change transaction.
	parties := []*choreo.Process{choreo.PaperBuyer(), choreo.PaperAccounting(), choreo.PaperLogistics()}
	if _, err := st.PutParties(ctx, id, parties, nil); err != nil {
		log.Fatal(err)
	}

	// A synthetic production population: 2000 running conversations
	// per party under the unbounded-tracking schema.
	for i, p := range parties {
		if _, err := st.SampleInstances(ctx, id, p.Owner, int64(i+1), 2000, 12); err != nil {
			log.Fatal(err)
		}
	}

	// Accounting bounds the tracking loop (subtractive, variant) and
	// commits under optimistic concurrency.
	evo, err := st.Evolve(ctx, id, "A", choreo.PaperTrackingLimitChange())
	if err != nil {
		log.Fatal(err)
	}
	snap, err := st.CommitEvolution(ctx, evo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed tracking limit: %s at version %d\n", id, snap.Version)

	// One sweep over all 6000 instances, 8 workers over the instance
	// shards; no choreography-wide lock is held at any point.
	job, err := st.MigrateAll(ctx, id, 8)
	if err != nil {
		log.Fatal(err)
	}
	v := job.Snapshot()
	fmt.Printf("job %s: %s (%d/%d shards)\n", v.ID, v.Status, v.ShardsDone, v.Shards)
	fmt.Printf("%d instances: %d migrated, %d non-replayable, %d unviable\n",
		v.Total, v.Migratable, v.NonReplayable, v.Unviable)

	// The stranded report names every instance pinned to the old
	// schema, sorted by (party, id).
	stranded := job.Stranded()
	for _, s := range stranded[:min(5, len(stranded))] {
		fmt.Printf("  stranded %s/%s: %s\n", s.Party, s.ID, s.Status)
	}
	if len(stranded) > 5 {
		fmt.Printf("  ... and %d more\n", len(stranded)-5)
	}

	// Idempotence: the job identity is (choreography, version), so a
	// second sweep returns the finished report without re-classifying.
	again, err := st.MigrateAll(ctx, id, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-running the migration is a no-op: same job = %v\n", again == job)
}
