// Command figures regenerates every constructed table and figure of
// the paper and prints them in textual form — the human-readable
// companion of the reproduction tests in internal/paperrepro and the
// benchmarks in bench_test.go. With -dot the automata are emitted as
// Graphviz dot.
package main

import (
	"flag"
	"fmt"
	"log"

	choreo "repro"
)

var dot = flag.Bool("dot", false, "emit automata as Graphviz dot")

func show(title string, a *choreo.Automaton) {
	fmt.Printf("──── %s ────\n", title)
	if *dot {
		fmt.Print(a.DOT())
	} else {
		fmt.Print(a.DebugString())
	}
	fmt.Println()
}

func main() {
	flag.Parse()
	reg := choreo.PaperRegistry()

	buyer, err := choreo.DerivePublic(choreo.PaperBuyer(), reg)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := choreo.DerivePublic(choreo.PaperAccounting(), reg)
	if err != nil {
		log.Fatal(err)
	}
	logistics, err := choreo.DerivePublic(choreo.PaperLogistics(), reg)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 5 — the aFSA worked example.
	a5, b5 := choreo.Fig5PartyA(), choreo.Fig5PartyB()
	show("Fig. 5 party A", a5)
	show("Fig. 5 party B", b5)
	inter := a5.Intersect(b5)
	show("Fig. 5 intersection of A and B", inter)
	empty, err := inter.IsEmpty()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 5 intersection annotated-empty: %v (paper: empty)\n\n", empty)

	// Fig. 6 + Table 1.
	show("Fig. 6 buyer public process", buyer.Automaton)
	fmt.Println("──── Table 1 buyer mapping table ────")
	fmt.Print(buyer.Table)
	fmt.Println()

	// Fig. 7, Fig. 8.
	show("Fig. 7 accounting public process", acc.Automaton)
	show("Fig. 8a buyer view of accounting", acc.Automaton.View("B"))
	show("Fig. 8b logistics view of accounting", acc.Automaton.View("L"))
	_ = logistics

	// Sec. 5.1 / Fig. 10 — invariant additive change.
	c, err := choreo.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := c.Evolve("A", choreo.PaperOrderTwoChange())
	if err != nil {
		log.Fatal(err)
	}
	im := impactOn(rep, "B")
	show("Fig. 10a buyer view after order_2 change", im.NewView)
	fmt.Printf("Fig. 10 classification: %s, %s (paper: additive, invariant)\n\n",
		im.Classification.Kind, im.Classification.Scope)

	// Sec. 5.2 / Figs. 11–14 — variant additive change.
	rep, err = c.Evolve("A", choreo.PaperCancelChange())
	if err != nil {
		log.Fatal(err)
	}
	im = impactOn(rep, "B")
	show("Fig. 12a buyer view after cancel change", im.NewView)
	buyerParty, _ := c.Party("B")
	inter12 := im.NewView.Intersect(buyerParty.Public)
	empty, err = inter12.IsEmpty()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 12b intersection annotated-empty: %v (paper: empty → variant)\n\n", empty)
	plan := im.Plans[0]
	show("Fig. 13a difference τ_B(A') \\ B", plan.Diff)
	show("Fig. 13b new buyer public B' = A'' ∪ B", plan.NewPartnerPublic)
	fmt.Println("──── Fig. 14 suggested buyer adaptation ────")
	for _, s := range im.Suggestions {
		fmt.Println(" ", s)
	}
	ops := choreo.ExecutableSuggestions(im.Suggestions)
	newBuyer, _, err := c.AdaptPartner("B", ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(newBuyer)
	fmt.Println()

	// Sec. 5.3 / Figs. 15–18 — variant subtractive change.
	rep, err = c.Evolve("A", choreo.PaperTrackingLimitChange())
	if err != nil {
		log.Fatal(err)
	}
	im = impactOn(rep, "B")
	show("Fig. 16a buyer view after tracking-limit change", im.NewView)
	inter16 := im.NewView.Intersect(buyerParty.Public)
	empty, err = inter16.IsEmpty()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 16b intersection annotated-empty: %v (paper: empty → variant)\n\n", empty)
	plan = im.Plans[0]
	show("Fig. 17a removed sequences B \\ τ_B(A')", plan.Diff)
	show("Fig. 17b new buyer public B' = B \\ removed", plan.NewPartnerPublic)
	fmt.Println("──── Fig. 18 suggested buyer adaptation ────")
	for _, s := range im.Suggestions {
		fmt.Println(" ", s)
	}
	newBuyer, _, err = c.AdaptPartner("B", choreo.ExecutableSuggestions(im.Suggestions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(newBuyer)
}

func impactOn(rep *choreo.EvolutionReport, partner string) choreo.PartnerImpact {
	for _, im := range rep.Impacts {
		if im.Partner == partner {
			return im
		}
	}
	log.Fatalf("no impact on %s", partner)
	return choreo.PartnerImpact{}
}
