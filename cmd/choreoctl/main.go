// Command choreoctl is the command-line front end of the framework:
//
//	choreoctl derive   -in proc.xml [-dot]        derive the public process + mapping table
//	choreoctl view     -in proc.xml -party P      bilateral view τ_P of the public process
//	choreoctl check    -in a.xml -in b.xml ...    pairwise consistency of processes
//	choreoctl classify -old old.xml -new new.xml -partner p.xml
//	                                              classify a change (Defs. 5/6)
//	choreoctl propagate -old old.xml -new new.xml -partner p.xml
//	                                              plan the propagation and print suggestions
//	choreoctl simulate -in a.xml -in b.xml ... [-walks n]
//	                                              execute the choreography
//	choreoctl serve    [-addr :8080] [-shards n] [-cachecap n] [-data dir] [-fsync]
//	                                              run the choreod HTTP service; -data makes
//	                                              it durable (journal + recovery + graceful
//	                                              SIGTERM checkpoint)
//	choreoctl register -addr URL -chor ID -in a.xml [-in b.xml ...]
//	                                              batch-register parties on a running service
//	choreoctl evolve   -addr URL -chor ID -party P (-new new.xml | -op SPEC ...) [-commit]
//	                                              submit a change transaction for analysis
//	choreoctl migrate  -addr URL -chor ID [-workers n] [-nowait] [-stranded n]
//	                                              bulk-migrate running instances to the
//	                                              committed schema
//	choreoctl ingest   -addr URL -chor ID [-in events.jsonl] [-batch n]
//	                                              stream observed instance events (JSONL)
//	                                              into a running service, honoring
//	                                              backpressure retry hints
//	choreoctl loadgen  -addr URL [-duration 10s | -maxops n] [-concurrency 4]
//	                                              drive mixed corpus traffic (check/
//	                                              evolve/commit/migrate/ingest) against
//	                                              a running service and report per-class
//	                                              throughput and latency quantiles;
//	                                              -faults p self-hosts an embedded
//	                                              choreod, injects journal faults and
//	                                              verifies crash recovery afterwards
//
// The remote subcommands (register, evolve, migrate, ingest, loadgen) talk to a running
// choreod over its /v2/ API and accept -timeout to bound the request
// context (default 30s; 0 disables the deadline).
//
// Processes are BPEL-flavored XML as produced by MarshalProcessXML;
// operations referenced by the processes are registered implicitly
// (asynchronous) unless -sync party.op flags mark them synchronous.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	choreo "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "derive":
		err = runDerive(args)
	case "view":
		err = runView(args)
	case "check":
		err = runCheck(args)
	case "classify":
		err = runClassify(args)
	case "propagate":
		err = runPropagate(args)
	case "simulate":
		err = runSimulate(args)
	case "serve":
		err = runServe(args)
	case "register":
		err = runRegister(args)
	case "evolve":
		err = runEvolve(args)
	case "migrate":
		err = runMigrate(args)
	case "ingest":
		err = runIngest(args)
	case "loadgen":
		err = runLoadgen(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "choreoctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "choreoctl:", err)
		if choreo.ChoreoErrIs(err, choreo.ChoreoCodeUnavailable) {
			fmt.Fprintln(os.Stderr, "choreoctl: the server is degraded to read-only (or shutting down): reads still work; mutations need a restart over an intact journal")
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: choreoctl <command> [flags]

commands:
  derive     derive the public process and mapping table of a private process
  view       compute the bilateral view of a public process
  check      check pairwise consistency of two or more processes
  classify   classify a change of one process against a partner
  propagate  plan the propagation of a variant change
  simulate   execute a choreography (exhaustive + random walks)
  serve      run the choreod HTTP service
             [-addr :8080] [-shards 16] [-cachecap n, 0 = unbounded cache]
             [-data dir, journal + recovery; empty = in-memory] [-fsync]
  register   batch-register parties on a running choreod (/v2/)
             [-addr http://localhost:8080] [-timeout 30s, 0 = none]
  evolve     submit a change transaction to a running choreod (/v2/)
             [-addr http://localhost:8080] [-timeout 30s, 0 = none]
  migrate    bulk-migrate running instances to the committed schema (/v2/)
             [-addr http://localhost:8080] [-timeout 30s, 0 = none]
  ingest     stream observed instance events into a running choreod (/v2/)
             [-addr http://localhost:8080] [-in events.jsonl, empty = stdin]
             [-batch 256] [-timeout 30s per request, 0 = none]
  loadgen    drive mixed scenario-corpus traffic against a running choreod (/v2/)
             [-addr http://localhost:8080] [-duration 10s | -maxops n]
             [-concurrency 4] [-mix check=4,evolve=2,commit=1,migrate=1,ingest=4]
             [-scenario name, repeatable; empty = whole corpus] [-seed 1]
             [-ingestbatch 16] [-prefix loadgen]
             [-faults p: embedded server + journal fault injection +
              post-run crash-recovery verification]

run 'choreoctl <command> -h' for the full flag list of a command`)
}

// multiFlag collects repeated -in flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func loadProcess(path string) (*choreo.Process, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return choreo.UnmarshalProcessXML(data)
}

// buildRegistry registers every operation the processes mention so the
// derivation validates; sync flags mark synchronous operations. It is
// the same inference the choreod service runs when parties register.
func buildRegistry(procs []*choreo.Process, syncOps []string) (*choreo.Registry, error) {
	return choreo.InferRegistry(procs, syncOps)
}

func runDerive(args []string) error {
	fs := flag.NewFlagSet("derive", flag.ExitOnError)
	in := fs.String("in", "", "private process XML file")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of text")
	var syncOps multiFlag
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("derive: -in required")
	}
	p, err := loadProcess(*in)
	if err != nil {
		return err
	}
	reg, err := buildRegistry([]*choreo.Process{p}, syncOps)
	if err != nil {
		return err
	}
	pub, err := choreo.DerivePublic(p, reg)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(pub.Automaton.DOT())
	} else {
		fmt.Print(pub.Automaton.DebugString())
	}
	fmt.Println("mapping table:")
	fmt.Print(pub.Table)
	return nil
}

func runView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	in := fs.String("in", "", "private process XML file")
	party := fs.String("party", "", "viewing party")
	dot := fs.Bool("dot", false, "emit Graphviz dot")
	var syncOps multiFlag
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	fs.Parse(args)
	if *in == "" || *party == "" {
		return fmt.Errorf("view: -in and -party required")
	}
	p, err := loadProcess(*in)
	if err != nil {
		return err
	}
	reg, err := buildRegistry([]*choreo.Process{p}, syncOps)
	if err != nil {
		return err
	}
	pub, err := choreo.DerivePublic(p, reg)
	if err != nil {
		return err
	}
	v := pub.Automaton.View(*party)
	if *dot {
		fmt.Print(v.DOT())
	} else {
		fmt.Print(v.DebugString())
	}
	return nil
}

func loadAll(paths []string, syncOps []string) ([]*choreo.Process, *choreo.Registry, error) {
	if len(paths) < 2 {
		return nil, nil, fmt.Errorf("need at least two -in processes")
	}
	var procs []*choreo.Process
	for _, path := range paths {
		p, err := loadProcess(path)
		if err != nil {
			return nil, nil, err
		}
		procs = append(procs, p)
	}
	reg, err := buildRegistry(procs, syncOps)
	return procs, reg, err
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var ins, syncOps multiFlag
	fs.Var(&ins, "in", "private process XML file (repeatable)")
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	fs.Parse(args)
	procs, reg, err := loadAll(ins, syncOps)
	if err != nil {
		return err
	}
	c := choreo.NewChoreography(reg)
	for _, p := range procs {
		if err := c.AddParty(p); err != nil {
			return err
		}
	}
	rep, err := c.Check()
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if !rep.Consistent() {
		os.Exit(1)
	}
	return nil
}

func runClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	oldF := fs.String("old", "", "originator process before the change")
	newF := fs.String("new", "", "originator process after the change")
	partnerF := fs.String("partner", "", "partner process")
	var syncOps multiFlag
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	fs.Parse(args)
	if *oldF == "" || *newF == "" || *partnerF == "" {
		return fmt.Errorf("classify: -old, -new and -partner required")
	}
	oldP, err := loadProcess(*oldF)
	if err != nil {
		return err
	}
	newP, err := loadProcess(*newF)
	if err != nil {
		return err
	}
	partnerP, err := loadProcess(*partnerF)
	if err != nil {
		return err
	}
	reg, err := buildRegistry([]*choreo.Process{oldP, newP, partnerP}, syncOps)
	if err != nil {
		return err
	}
	oldPub, err := choreo.DerivePublic(oldP, reg)
	if err != nil {
		return err
	}
	newPub, err := choreo.DerivePublic(newP, reg)
	if err != nil {
		return err
	}
	partnerPub, err := choreo.DerivePublic(partnerP, reg)
	if err != nil {
		return err
	}
	partner := partnerP.Owner
	oldView := oldPub.Automaton.View(partner)
	newView := newPub.Automaton.View(partner)
	kind := choreo.ClassifyChange(oldView, newView)
	scope, err := choreo.ClassifyScope(newView, partnerPub.Automaton.View(oldP.Owner))
	if err != nil {
		return err
	}
	fmt.Printf("change kind:  %s (Def. 5)\nchange scope: %s (Def. 6)\n", kind, scope)
	if scope == choreo.ScopeVariant {
		fmt.Println("propagation to the partner is REQUIRED (Sec. 5)")
	} else {
		fmt.Println("no propagation necessary")
	}
	return nil
}

func runPropagate(args []string) error {
	fs := flag.NewFlagSet("propagate", flag.ExitOnError)
	oldF := fs.String("old", "", "originator process before the change")
	newF := fs.String("new", "", "originator process after the change")
	partnerF := fs.String("partner", "", "partner process")
	var syncOps multiFlag
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	fs.Parse(args)
	if *oldF == "" || *newF == "" || *partnerF == "" {
		return fmt.Errorf("propagate: -old, -new and -partner required")
	}
	oldP, err := loadProcess(*oldF)
	if err != nil {
		return err
	}
	newP, err := loadProcess(*newF)
	if err != nil {
		return err
	}
	partnerP, err := loadProcess(*partnerF)
	if err != nil {
		return err
	}
	reg, err := buildRegistry([]*choreo.Process{oldP, newP, partnerP}, syncOps)
	if err != nil {
		return err
	}
	c := choreo.NewChoreography(reg)
	if err := c.AddParty(oldP); err != nil {
		return err
	}
	if err := c.AddParty(partnerP); err != nil {
		return err
	}
	// Express the change as a whole-body replacement of the
	// originator's process.
	op := choreo.Replace{Path: nil, New: newP.Body}
	rep, err := c.Evolve(oldP.Owner, op)
	if err != nil {
		return err
	}
	for _, im := range rep.Impacts {
		fmt.Printf("partner %s: view changed=%v", im.Partner, im.ViewChanged)
		if im.ViewChanged {
			fmt.Printf(", %s, %s", im.Classification.Kind, im.Classification.Scope)
		}
		fmt.Println()
		for _, plan := range im.Plans {
			fmt.Printf("  difference automaton: %d states\n", plan.Diff.NumStates())
			fmt.Printf("  adapted partner public: %d states\n", plan.NewPartnerPublic.NumStates())
			for _, r := range plan.Regions {
				fmt.Println("  region:", r)
			}
		}
		for _, s := range im.Suggestions {
			fmt.Println("  suggestion:", s)
		}
	}
	return nil
}

// runServe starts the choreod HTTP service: a sharded, cache-aware
// choreography store behind the JSON API of internal/server (/v2/
// plus the /v1/ compatibility shim). With -data the store is durable:
// state is recovered from the journal directory on boot, every
// mutation is written ahead to it, and a graceful shutdown (SIGTERM
// or interrupt) drains in-flight requests, checkpoints and closes the
// journal. Without -data the store is in-memory, as before.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "store shard count (0 = default)")
	cacheCap := fs.Int("cachecap", 0, "per-choreography consistency-cache entries (0 = unbounded)")
	data := fs.String("data", "", "journal directory: recover on boot, write-ahead every mutation, checkpoint on shutdown (empty = in-memory)")
	fsync := fs.Bool("fsync", false, "with -data: fsync the journal on every append")
	fs.Parse(args)
	opts := []choreo.StoreOption{
		choreo.WithStoreShards(*shards), choreo.WithStoreCacheCap(*cacheCap),
	}
	if *data != "" {
		opts = append(opts, choreo.WithStoreJournal(*data))
		if *fsync {
			opts = append(opts, choreo.WithStoreJournalFsync())
		}
	}
	st, err := choreo.OpenChoreographyStore(opts...)
	if err != nil {
		return err
	}
	srv := choreo.NewChoreoServer(st)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	if *data == "" {
		log.Printf("choreod listening on %s (in-memory)", *addr)
		return httpSrv.ListenAndServe()
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(stop)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("choreod listening on %s (journal: %s)", *addr, *data)
	select {
	case err := <-errc:
		st.Close()
		return err
	case sig := <-stop:
		log.Printf("choreod: %v: draining, checkpointing, closing journal", sig)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("choreod: shutdown: %v", err)
		}
		if info, err := st.Checkpoint(shutdownCtx); err != nil {
			// Not fatal: the journal is intact, the next boot replays it.
			log.Printf("choreod: checkpoint failed (recovery will replay the log): %v", err)
		} else {
			log.Printf("choreod: checkpointed %d bytes at LSN %d", info.Bytes, info.LSN)
		}
		return st.Close()
	}
}

// remoteContext builds the request context for the remote subcommands;
// timeout <= 0 means no deadline.
func remoteContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// runRegister batch-registers (or updates) parties on a running
// choreod through POST /v2/choreographies/{id}/parties:batch — one
// change transaction, one version bump.
func runRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "choreod base URL")
	chor := fs.String("chor", "", "choreography ID")
	create := fs.Bool("create", false, "create the choreography first")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout (0 = none)")
	var ins, syncOps multiFlag
	fs.Var(&ins, "in", "private process XML file (repeatable)")
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable, with -create)")
	fs.Parse(args)
	if *chor == "" || len(ins) == 0 {
		return fmt.Errorf("register: -chor and at least one -in required")
	}
	var procs []*choreo.Process
	for _, path := range ins {
		p, err := loadProcess(path)
		if err != nil {
			return err
		}
		procs = append(procs, p)
	}
	ctx, cancel := remoteContext(*timeout)
	defer cancel()
	c := choreo.NewChoreoClient(*addr, nil)
	if *create {
		if err := c.CreateChoreography(ctx, *chor, syncOps); err != nil {
			return err
		}
	}
	batch, err := c.RegisterParties(ctx, *chor, procs, nil)
	if err != nil {
		return err
	}
	fmt.Printf("choreography %s at version %d\n", batch.Choreography, batch.Version)
	for _, pi := range batch.Parties {
		fmt.Printf("  party %s v%d: %d states, %d transitions\n", pi.Name, pi.Version, pi.States, pi.Transitions)
	}
	return nil
}

// parseOpSpec turns one -op flag value into a wire operation: either
// inline JSON ({"kind": ...}) or @file pointing at a JSON document.
func parseOpSpec(spec string) (choreo.EvolveOp, error) {
	var op choreo.EvolveOp
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return op, err
		}
		raw = data
	}
	if err := json.Unmarshal(raw, &op); err != nil {
		return op, fmt.Errorf("op %q: %v", spec, err)
	}
	if op.Kind == "" {
		return op, fmt.Errorf("op %q: missing kind", spec)
	}
	return op, nil
}

// runEvolve submits a change transaction — one or more operations
// analyzed as a unit — through POST /v2/choreographies/{id}/evolve,
// prints the per-partner analysis, and optionally commits it under the
// If-Match precondition the analysis returned.
func runEvolve(args []string) error {
	fs := flag.NewFlagSet("evolve", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "choreod base URL")
	chor := fs.String("chor", "", "choreography ID")
	party := fs.String("party", "", "change originator")
	newProc := fs.String("new", "", "proposed new private process XML file (whole-process replacement)")
	commit := fs.Bool("commit", false, "commit the transaction after analysis")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout (0 = none)")
	var opSpecs multiFlag
	fs.Var(&opSpecs, "op", `operation as JSON or @file, e.g. '{"kind":"delete","path":"Sequence:p/Invoke:x"}' (repeatable)`)
	fs.Parse(args)
	if *chor == "" || *party == "" {
		return fmt.Errorf("evolve: -chor and -party required")
	}
	var ops []choreo.EvolveOp
	if *newProc != "" {
		data, err := os.ReadFile(*newProc)
		if err != nil {
			return err
		}
		ops = append(ops, choreo.EvolveOp{Kind: "replaceProcess", XML: string(data)})
	}
	for _, spec := range opSpecs {
		op, err := parseOpSpec(spec)
		if err != nil {
			return err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return fmt.Errorf("evolve: provide -new and/or at least one -op")
	}
	ctx, cancel := remoteContext(*timeout)
	defer cancel()
	c := choreo.NewChoreoClient(*addr, nil)
	evo, err := c.EvolveOps(ctx, *chor, *party, ops)
	if err != nil {
		return err
	}
	fmt.Printf("evolution %s on %s (base version %d): public changed=%v, propagation needed=%v\n",
		evo.Evolution, evo.Choreography, evo.BaseVersion, evo.PublicChanged, evo.NeedsPropagation)
	for _, op := range evo.Ops {
		fmt.Println("  op:", op)
	}
	for _, im := range evo.Impacts {
		fmt.Printf("  partner %s: view changed=%v", im.Partner, im.ViewChanged)
		if im.ViewChanged {
			fmt.Printf(", %s, %s", im.Kind, im.Scope)
		}
		fmt.Println()
		for _, plan := range im.Plans {
			fmt.Printf("    plan %s: diff %d states, adapted partner public %d states\n",
				plan.Kind, plan.DiffStates, plan.NewPartnerPublicStates)
		}
		for _, sg := range im.Suggestions {
			fmt.Printf("    suggestion %d (executable=%v): %s\n", sg.Index, sg.Executable, sg.Description)
		}
	}
	if *commit {
		res, err := c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion)
		if err != nil {
			return err
		}
		fmt.Printf("committed: %s now at version %d\n", res.Choreography, res.Version)
	}
	return nil
}

// runMigrate starts (or resumes) the bulk migration of a
// choreography's tracked instances through
// POST /v2/choreographies/{id}/migrations, waits for the sweep to
// finish and prints the report with the stranded instances. The job is
// idempotent per committed version: re-running a completed migration
// just reprints its report.
func runMigrate(args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "choreod base URL")
	chor := fs.String("chor", "", "choreography ID")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = server default)")
	nowait := fs.Bool("nowait", false, "start the sweep and exit without waiting")
	stranded := fs.Int("stranded", 20, "stranded instances to print (0 = none, -1 = all)")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout (0 = none)")
	fs.Parse(args)
	if *chor == "" {
		return fmt.Errorf("migrate: -chor required")
	}
	ctx, cancel := remoteContext(*timeout)
	defer cancel()
	c := choreo.NewChoreoClient(*addr, nil)
	job, err := c.StartMigration(ctx, *chor, *workers)
	if err != nil {
		return err
	}
	if *nowait {
		fmt.Printf("migration %s on %s to version %d: %s (%d/%d shards)\n",
			job.Job, job.Choreography, job.TargetVersion, job.Status, job.ShardsDone, job.Shards)
		return nil
	}
	final, err := c.WaitMigration(ctx, *chor, job.Job, 0)
	if err != nil {
		return err
	}
	fmt.Printf("migration %s on %s to version %d: %s\n",
		final.Job, final.Choreography, final.TargetVersion, final.Status)
	if final.Error != "" {
		fmt.Println("  error:", final.Error)
	}
	fmt.Printf("  %d instances: %d migrated, %d non-replayable, %d unviable\n",
		final.Total, final.Migratable, final.NonReplayable, final.Unviable)
	if *stranded == 0 {
		return nil
	}
	// A positive -stranded prints one page of that size; -stranded -1
	// drains the whole report through the cursor.
	total := final.NonReplayable + final.Unviable
	list := final.Stranded
	if *stranded < 0 {
		if list, err = c.MigrationStranded(ctx, *chor, final.Job); err != nil {
			return err
		}
	} else if len(list) > *stranded {
		list = list[:*stranded]
	} else if len(list) < *stranded && len(list) < total {
		page, err := c.MigrationJob(ctx, *chor, final.Job, *stranded, "")
		if err != nil {
			return err
		}
		list = page.Stranded
	}
	for _, st := range list {
		fmt.Printf("  stranded %s/%s: %s\n", st.Party, st.ID, st.Status)
	}
	if rest := total - len(list); *stranded > 0 && rest > 0 {
		fmt.Printf("  ... and %d more stranded instances\n", rest)
	}
	return nil
}

// runIngest streams observed instance events into a running choreod
// through POST /v2/choreographies/{id}/instances:events. The input is
// JSONL — one {"party","instance","label"} event per line, blank lines
// and #-comments skipped — read from -in or stdin, grouped into
// batches of -batch events. A 429 resource_exhausted answer (a full
// ingestion lane) backs off by the server's retryAfter hint and
// resubmits the identical batch, so a slow consumer throttles the
// stream instead of dropping it.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "choreod base URL")
	chor := fs.String("chor", "", "choreography ID")
	in := fs.String("in", "", "JSONL event file (empty = stdin)")
	batch := fs.Int("batch", 256, "events per request (1..1024)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
	fs.Parse(args)
	if *chor == "" {
		return fmt.Errorf("ingest: -chor required")
	}
	if *batch < 1 || *batch > 1024 {
		return fmt.Errorf("ingest: -batch must be in 1..1024")
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	c := choreo.NewChoreoClient(*addr, nil)
	var pending []choreo.ChoreoIngestEvent
	total, batches := 0, 0
	flush := func() error {
		for len(pending) > 0 {
			ctx, cancel := remoteContext(*timeout)
			n, err := c.IngestEvents(ctx, *chor, pending)
			cancel()
			if err == nil {
				total += n
				batches++
				pending = pending[:0]
				return nil
			}
			backoff, ok := choreo.ChoreoRetryAfter(err)
			if !ok {
				return err
			}
			time.Sleep(backoff)
		}
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ev choreo.ChoreoIngestEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return fmt.Errorf("ingest: line %d: %v", line, err)
		}
		if ev.Party == "" || ev.Instance == "" || ev.Label == "" {
			return fmt.Errorf("ingest: line %d: party, instance and label are all required", line)
		}
		pending = append(pending, ev)
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("ingested %d events in %d batches\n", total, batches)
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	var ins, syncOps multiFlag
	fs.Var(&ins, "in", "private process XML file (repeatable)")
	fs.Var(&syncOps, "sync", "mark party.op as synchronous (repeatable)")
	walks := fs.Int("walks", 100, "number of random walks")
	seed := fs.Int64("seed", 1, "random walk seed")
	fs.Parse(args)
	procs, reg, err := loadAll(ins, syncOps)
	if err != nil {
		return err
	}
	parties := map[string]*choreo.Automaton{}
	for _, p := range procs {
		pub, err := choreo.DerivePublic(p, reg)
		if err != nil {
			return err
		}
		parties[p.Owner] = pub.Automaton
	}
	sys, err := choreo.NewSystem(parties)
	if err != nil {
		return err
	}
	res := sys.Explore(0)
	fmt.Printf("global states: %d\ncompletions: %d\ndeadlock free: %v\n",
		res.States, res.Completions, res.DeadlockFree())
	for _, f := range res.Failures {
		fmt.Println("failure:", f)
	}
	rate := sys.FailureRate(*seed, *walks, 1000)
	fmt.Printf("random-walk failure rate (%d walks): %.2f%%\n", *walks, 100*rate)
	if !res.DeadlockFree() {
		os.Exit(1)
	}
	return nil
}

// parseMix parses "check=4,evolve=2,..." into a LoadgenMix.
func parseMix(s string) (choreo.LoadgenMix, error) {
	var m choreo.LoadgenMix
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch kv[0] {
		case "check":
			m.Check = w
		case "evolve":
			m.Evolve = w
		case "commit":
			m.Commit = w
		case "migrate":
			m.Migrate = w
		case "ingest":
			m.Ingest = w
		default:
			return m, fmt.Errorf("unknown mix class %q", kv[0])
		}
	}
	return m, nil
}

// runLoadgen drives mixed corpus traffic against a running choreod
// and prints the per-op-class throughput/latency table.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "choreod base URL (ignored with -faults)")
	faults := fs.Float64("faults", 0, "journal fault probability (0,1): self-host an embedded choreod, inject faults, verify recovery")
	duration := fs.Duration("duration", 10*time.Second, "run length (0 = use -maxops only)")
	maxOps := fs.Int64("maxops", 0, "total op budget (0 = use -duration only)")
	concurrency := fs.Int("concurrency", 4, "worker goroutines")
	mixSpec := fs.String("mix", "", "op-class weights, e.g. check=4,evolve=2,commit=1,migrate=1,ingest=4")
	seed := fs.Int64("seed", 1, "op-schedule seed")
	ingestBatch := fs.Int("ingestbatch", 16, "events per ingest op")
	prefix := fs.String("prefix", "loadgen", "choreography ID prefix for the run")
	var scenarios multiFlag
	fs.Var(&scenarios, "scenario", "corpus scenario name (repeatable; empty = all)")
	fs.Parse(args)
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return fmt.Errorf("loadgen: %v", err)
	}
	if *faults > 0 {
		// Fault runs self-host the server; the flag default must not
		// masquerade as a user-chosen address.
		*addr = ""
	}
	rep, err := choreo.RunLoadgen(context.Background(), choreo.LoadgenConfig{
		Addr:        *addr,
		Faults:      *faults,
		Scenarios:   scenarios,
		Concurrency: *concurrency,
		Duration:    *duration,
		MaxOps:      *maxOps,
		Mix:         mix,
		Seed:        *seed,
		IngestBatch: *ingestBatch,
		Prefix:      *prefix,
	})
	if err != nil {
		return fmt.Errorf("loadgen: %v", err)
	}
	fmt.Print(rep.Table())
	return nil
}
