package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	choreo "repro"
)

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const buyerXML = `
<process name="buyer" owner="B">
  <sequence name="buyer process">
    <invoke name="order" partner="A" operation="orderOp"/>
    <receive name="delivery" partner="A" operation="deliveryOp"/>
  </sequence>
</process>`

const accXML = `
<process name="accounting" owner="A">
  <sequence name="acc process">
    <receive name="order" partner="B" operation="orderOp"/>
    <invoke name="delivery" partner="B" operation="deliveryOp"/>
  </sequence>
</process>`

func TestLoadProcess(t *testing.T) {
	path := writeFixture(t, "buyer.xml", buyerXML)
	p, err := loadProcess(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != "B" || p.Name != "buyer" {
		t.Fatalf("loaded %q/%q", p.Name, p.Owner)
	}
	if _, err := loadProcess(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildRegistryInfersOperations(t *testing.T) {
	buyer, err := loadProcess(writeFixture(t, "buyer.xml", buyerXML))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := loadProcess(writeFixture(t, "acc.xml", accXML))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{buyer, acc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// orderOp belongs to A (received by A / invoked at A), deliveryOp
	// to B.
	if _, ok := reg.Lookup("A", "orderOp"); !ok {
		t.Fatal("orderOp not registered for A")
	}
	if _, ok := reg.Lookup("B", "deliveryOp"); !ok {
		t.Fatal("deliveryOp not registered for B")
	}
	if reg.Sync("A", "orderOp") {
		t.Fatal("async op registered as sync")
	}
}

func TestBuildRegistrySyncFlag(t *testing.T) {
	src := `
<process name="p" owner="A">
  <invoke name="i" partner="L" operation="statusOp" sync="true"/>
</process>`
	p, err := loadProcess(writeFixture(t, "p.xml", src))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{p}, []string{"L.statusOp"})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Sync("L", "statusOp") {
		t.Fatal("sync flag ignored")
	}
	// The process validates against the registry (sync agreement).
	if _, err := choreo.DerivePublic(p, reg); err != nil {
		t.Fatalf("derive with sync registry: %v", err)
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a,b" || len(m) != 2 {
		t.Fatalf("multiFlag = %v", m)
	}
}

// TestEndToEndPipeline drives derive + consistency + classification
// through the same helpers the CLI uses.
func TestEndToEndPipeline(t *testing.T) {
	buyer, err := loadProcess(writeFixture(t, "buyer.xml", buyerXML))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := loadProcess(writeFixture(t, "acc.xml", accXML))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{buyer, acc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := choreo.NewChoreography(reg)
	if err := c.AddParty(buyer); err != nil {
		t.Fatal(err)
	}
	if err := c.AddParty(acc); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("fixture choreography inconsistent:\n%s", rep)
	}
}

func TestParseOpSpec(t *testing.T) {
	op, err := parseOpSpec(`{"kind":"setWhileCond","path":"Sequence:p/While:w","cond":"n < 3"}`)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != "setWhileCond" || op.Cond != "n < 3" {
		t.Fatalf("parsed op = %+v", op)
	}
	path := writeFixture(t, "op.json", `{"kind":"delete","path":"Sequence:p/Invoke:x"}`)
	op, err = parseOpSpec("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != "delete" {
		t.Fatalf("file op = %+v", op)
	}
	if _, err := parseOpSpec(`{"path":"no kind"}`); err == nil {
		t.Fatal("kindless op accepted")
	}
	if _, err := parseOpSpec("not json"); err == nil {
		t.Fatal("malformed op accepted")
	}
}

// TestRemoteSubcommands drives register and evolve against an
// in-process choreod: batch registration in one commit, then a
// whole-process evolve transaction with -commit, bounded by -timeout.
func TestRemoteSubcommands(t *testing.T) {
	srv := choreo.NewChoreoServer(choreo.NewChoreographyStore())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	buyerPath := writeFixture(t, "buyer.xml", buyerXML)
	accPath := writeFixture(t, "acc.xml", accXML)
	if err := runRegister([]string{
		"-addr", ts.URL, "-chor", "demo", "-create", "-timeout", "10s",
		"-in", buyerPath, "-in", accPath,
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	info, err := choreo.NewChoreoClient(ts.URL, nil).Choreography(context.Background(), "demo")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || len(info.Parties) != 2 {
		t.Fatalf("after batch register: version=%d parties=%d, want one commit with 2 parties", info.Version, len(info.Parties))
	}

	// Widen the accounting receive via a whole-process replacement and
	// commit in the same invocation.
	const accV2 = `
<process name="accounting" owner="A">
  <sequence name="acc process">
    <pick name="order formats">
      <onMessage partner="B" operation="orderOp"><empty name="o1"/></onMessage>
      <onMessage partner="B" operation="order2Op"><empty name="o2"/></onMessage>
    </pick>
    <invoke name="delivery" partner="B" operation="deliveryOp"/>
  </sequence>
</process>`
	accV2Path := writeFixture(t, "acc_v2.xml", accV2)
	if err := runEvolve([]string{
		"-addr", ts.URL, "-chor", "demo", "-party", "A", "-timeout", "10s",
		"-new", accV2Path, "-commit",
	}); err != nil {
		t.Fatalf("evolve: %v", err)
	}
	info, err = choreo.NewChoreoClient(ts.URL, nil).Choreography(context.Background(), "demo")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("after evolve -commit: version=%d, want 2", info.Version)
	}
}

// TestMigrateSubcommand drives the bulk-migration subcommand against
// an in-process choreod: record instances, commit a subtractive
// change, sweep, and verify the idempotent job report.
func TestMigrateSubcommand(t *testing.T) {
	srv := choreo.NewChoreoServer(choreo.NewChoreographyStore())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	buyerPath := writeFixture(t, "buyer.xml", buyerXML)
	accPath := writeFixture(t, "acc.xml", accXML)
	if err := runRegister([]string{
		"-addr", ts.URL, "-chor", "demo", "-create",
		"-in", buyerPath, "-in", accPath,
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	c := choreo.NewChoreoClient(ts.URL, nil)
	if _, err := c.SampleInstances(ctx, "demo", "A", 7, 40, 2); err != nil {
		t.Fatal(err)
	}

	// Accounting drops the delivery invoke — instances that already
	// sent it cannot replay on the shrunk schema.
	const accV3 = `
<process name="accounting" owner="A">
  <sequence name="acc process">
    <receive name="order" partner="B" operation="orderOp"/>
  </sequence>
</process>`
	accV3Path := writeFixture(t, "acc_v3.xml", accV3)
	if err := runEvolve([]string{
		"-addr", ts.URL, "-chor", "demo", "-party", "A",
		"-new", accV3Path, "-commit",
	}); err != nil {
		t.Fatalf("evolve: %v", err)
	}

	if err := runMigrate([]string{
		"-addr", ts.URL, "-chor", "demo", "-workers", "4", "-stranded", "5",
	}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	jobs, err := c.MigrationJobs(ctx, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Status != "done" || job.Total != 40 {
		t.Fatalf("job = %+v, want done over 40 instances", job)
	}
	if job.Migratable == 0 || job.Migratable == job.Total {
		t.Fatalf("job = %+v, want a split verdict", job)
	}

	// Re-running the subcommand is a no-op against the same version.
	if err := runMigrate([]string{"-addr", ts.URL, "-chor", "demo", "-stranded", "0"}); err != nil {
		t.Fatalf("migrate rerun: %v", err)
	}
	if jobs, err = c.MigrationJobs(ctx, "demo"); err != nil || len(jobs) != 1 {
		t.Fatalf("after rerun: jobs=%d err=%v, want the single completed job", len(jobs), err)
	}
}

// TestIngestSubcommand streams a JSONL event file into an in-process
// choreod — blank lines and comments skipped, the stream sliced into
// batches — and verifies the events landed as live instance state.
func TestIngestSubcommand(t *testing.T) {
	srv := choreo.NewChoreoServer(choreo.NewChoreographyStore())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	buyerPath := writeFixture(t, "buyer.xml", buyerXML)
	accPath := writeFixture(t, "acc.xml", accXML)
	if err := runRegister([]string{
		"-addr", ts.URL, "-chor", "demo", "-create",
		"-in", buyerPath, "-in", accPath,
	}); err != nil {
		t.Fatalf("register: %v", err)
	}

	events := writeFixture(t, "events.jsonl", `
{"party":"A","instance":"c1","label":"B#A#orderOp"}

# a comment between events
{"party":"A","instance":"c2","label":"B#A#orderOp"}
{"party":"A","instance":"c1","label":"A#B#deliveryOp"}
`)
	if err := runIngest([]string{
		"-addr", ts.URL, "-chor", "demo", "-in", events, "-batch", "2", "-timeout", "10s",
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	st, err := choreo.NewChoreoClient(ts.URL, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsIngested != 3 || st.TrackedInstances != 2 || st.InstancesByChoreography["demo"] != 2 {
		t.Fatalf("stats = {ingested %d, tracked %d, byChor %v}, want 3 events over 2 instances",
			st.EventsIngested, st.TrackedInstances, st.InstancesByChoreography)
	}

	// A malformed line fails loudly rather than skipping silently.
	broken := writeFixture(t, "broken.jsonl", `{"party":"A","instance":"c3"}`)
	if err := runIngest([]string{"-addr", ts.URL, "-chor", "demo", "-in", broken}); err == nil {
		t.Fatal("ingest accepted an event without a label")
	}
}

// TestServeDurableGracefulShutdown boots `serve -data`, mutates state
// over HTTP, delivers SIGTERM and verifies the graceful path: drain,
// checkpoint (snapshot.bin appears), close — and that a fresh store
// opened on the same directory recovers the state.
func TestServeDurableGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	done := make(chan error, 1)
	go func() { done <- runServe([]string{"-addr", addr, "-data", dir}) }()

	base := "http://" + addr
	c := choreo.NewChoreoClient(base, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("choreod did not come up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx := context.Background()
	if err := c.CreateChoreography(ctx, "durable", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterPartyXML(ctx, "durable", buyerXML); err != nil {
		t.Fatal(err)
	}

	// healthz answered after signal.Notify ran, so SIGTERM lands in
	// runServe's handler, not in the default terminate action.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.bin")); err != nil {
		t.Fatalf("shutdown did not checkpoint: %v", err)
	}

	st, err := choreo.OpenChoreographyStore(choreo.WithStoreJournal(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.Close()
	snap, err := st.Snapshot(ctx, "durable")
	if err != nil {
		t.Fatalf("recovered store misses the choreography: %v", err)
	}
	if snap.NumParties() != 1 {
		t.Fatalf("recovered %d parties, want 1", snap.NumParties())
	}
}

// TestLoadgenSubcommand runs the load harness end to end through the
// CLI entry point against an in-process choreod: a small budgeted run
// over one corpus scenario, plus mix-spec parsing edge cases.
func TestLoadgenSubcommand(t *testing.T) {
	srv := choreo.NewChoreoServer(choreo.NewChoreographyStore())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if err := runLoadgen([]string{
		"-addr", ts.URL, "-duration", "0", "-maxops", "24",
		"-concurrency", "2", "-scenario", "supply-chain", "-seed", "5",
		"-mix", "check=3,evolve=1,commit=1,migrate=1,ingest=2",
	}); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	chors, err := choreo.NewChoreoClient(ts.URL, nil).Choreographies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(chors) == 0 {
		t.Fatal("loadgen provisioned no choreographies")
	}
	// No traffic source at all is rejected.
	if err := runLoadgen([]string{"-addr", ts.URL, "-duration", "0"}); err == nil {
		t.Fatal("loadgen accepted neither -duration nor -maxops")
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("check=3, evolve=1,ingest=0")
	if err != nil {
		t.Fatal(err)
	}
	if m.Check != 3 || m.Evolve != 1 || m.Ingest != 0 || m.Commit != 0 {
		t.Fatalf("parsed mix = %+v", m)
	}
	if m, err = parseMix(""); err != nil || m != (choreo.LoadgenMix{}) {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"check", "check=x", "check=-1", "nap=3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}
