package main

import (
	"os"
	"path/filepath"
	"testing"

	choreo "repro"
)

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const buyerXML = `
<process name="buyer" owner="B">
  <sequence name="buyer process">
    <invoke name="order" partner="A" operation="orderOp"/>
    <receive name="delivery" partner="A" operation="deliveryOp"/>
  </sequence>
</process>`

const accXML = `
<process name="accounting" owner="A">
  <sequence name="acc process">
    <receive name="order" partner="B" operation="orderOp"/>
    <invoke name="delivery" partner="B" operation="deliveryOp"/>
  </sequence>
</process>`

func TestLoadProcess(t *testing.T) {
	path := writeFixture(t, "buyer.xml", buyerXML)
	p, err := loadProcess(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != "B" || p.Name != "buyer" {
		t.Fatalf("loaded %q/%q", p.Name, p.Owner)
	}
	if _, err := loadProcess(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildRegistryInfersOperations(t *testing.T) {
	buyer, err := loadProcess(writeFixture(t, "buyer.xml", buyerXML))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := loadProcess(writeFixture(t, "acc.xml", accXML))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{buyer, acc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// orderOp belongs to A (received by A / invoked at A), deliveryOp
	// to B.
	if _, ok := reg.Lookup("A", "orderOp"); !ok {
		t.Fatal("orderOp not registered for A")
	}
	if _, ok := reg.Lookup("B", "deliveryOp"); !ok {
		t.Fatal("deliveryOp not registered for B")
	}
	if reg.Sync("A", "orderOp") {
		t.Fatal("async op registered as sync")
	}
}

func TestBuildRegistrySyncFlag(t *testing.T) {
	src := `
<process name="p" owner="A">
  <invoke name="i" partner="L" operation="statusOp" sync="true"/>
</process>`
	p, err := loadProcess(writeFixture(t, "p.xml", src))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{p}, []string{"L.statusOp"})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Sync("L", "statusOp") {
		t.Fatal("sync flag ignored")
	}
	// The process validates against the registry (sync agreement).
	if _, err := choreo.DerivePublic(p, reg); err != nil {
		t.Fatalf("derive with sync registry: %v", err)
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a,b" || len(m) != 2 {
		t.Fatalf("multiFlag = %v", m)
	}
}

// TestEndToEndPipeline drives derive + consistency + classification
// through the same helpers the CLI uses.
func TestEndToEndPipeline(t *testing.T) {
	buyer, err := loadProcess(writeFixture(t, "buyer.xml", buyerXML))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := loadProcess(writeFixture(t, "acc.xml", accXML))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry([]*choreo.Process{buyer, acc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := choreo.NewChoreography(reg)
	if err := c.AddParty(buyer); err != nil {
		t.Fatal(err)
	}
	if err := c.AddParty(acc); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("fixture choreography inconsistent:\n%s", rep)
	}
}
