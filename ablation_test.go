package choreo

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/runtime"
)

// TestAblationAnnotations is experiment D-9: what breaks without the
// "annotated" part of the aFSA model? Consistency degenerates to plain
// language-intersection non-emptiness, and the paper's own subtractive
// scenario (Fig. 16) is misclassified: the intersection still contains
// words (order·delivery·terminate), so the plain-FSA check calls the
// pair consistent although the buyer's data-driven tracking decision
// can deadlock at runtime. The annotation semantics is what makes
// Def. 6 sound.
func TestAblationAnnotations(t *testing.T) {
	c, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Evolve("A", PaperTrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	var im PartnerImpact
	for _, i := range rep.Impacts {
		if i.Partner == "B" {
			im = i
		}
	}
	buyerParty, _ := c.Party("B")

	// Full aFSA semantics: variant (annotated-empty intersection).
	full := im.NewView.Intersect(buyerParty.Public)
	empty, err := full.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("annotated check should report inconsistency")
	}

	// Ablated: strip annotations — the plain FSA check is fooled.
	stripped := im.NewView.StripAnnotations().Intersect(buyerParty.Public.StripAnnotations())
	emptyStripped, err := stripped.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if emptyStripped {
		t.Fatal("ablation expectation broken: even the plain FSA check fails the pair")
	}

	// And the runtime confirms the annotated verdict: executing the
	// unpropagated pair can fail.
	logisticsParty, _ := c.Party("L")
	sys, err := runtime.NewSystem(map[string]*afsa.Automaton{
		"A": rep.NewPublic,
		"B": buyerParty.Public,
		"L": logisticsParty.Public,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Explore(0); res.DeadlockFree() {
		t.Fatal("runtime found no failure although the annotated check predicted one")
	}
}

// TestAblationAnnotationsRate measures the miss rate of the ablated
// check on generated workloads: pairs where the annotated criterion
// reports inconsistency but the plain-FSA check reports consistency.
func TestAblationAnnotationsRate(t *testing.T) {
	missed, inconsistent := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		conv := gen.MustGenerate(seed, gen.DefaultParams())
		op, err := gen.RandomChange(seed*13+1, conv.A, conv.Registry)
		if err != nil {
			t.Fatal(err)
		}
		mutated, err := op.Apply(conv.A)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := mapping.Derive(mutated, conv.Registry)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := mapping.Derive(conv.B, conv.Registry)
		if err != nil {
			t.Fatal(err)
		}
		va, vb := ra.Automaton.View("B"), rb.Automaton.View("A")
		annotated, err := afsa.Consistent(va, vb)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := afsa.Consistent(va.StripAnnotations(), vb.StripAnnotations())
		if err != nil {
			t.Fatal(err)
		}
		if annotated && !plain {
			t.Fatalf("seed %d: stripping annotations cannot make a pair inconsistent", seed)
		}
		if !annotated {
			inconsistent++
			if plain {
				missed++
			}
		}
	}
	if inconsistent == 0 {
		t.Fatal("workload produced no inconsistent pairs")
	}
	t.Logf("D-9: %d/%d inconsistencies missed by the annotation-free check", missed, inconsistent)
}

// TestAblationViewProjection checks the annotation-projection rule of
// view generation (DESIGN.md §3): substituting hidden variables by
// true instead of their first visible labels loses the Fig. 12
// inconsistency entirely.
func TestAblationViewProjection(t *testing.T) {
	c, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Evolve("A", PaperCancelChange())
	if err != nil {
		t.Fatal(err)
	}
	var im PartnerImpact
	for _, i := range rep.Impacts {
		if i.Partner == "B" {
			im = i
		}
	}
	buyerParty, _ := c.Party("B")

	// The proper projection keeps the mandatory cancel/delivery
	// alternative and detects the inconsistency (asserted elsewhere).
	// Ablation: drop *all* annotations from the view — the naive
	// "views are plain homomorphic images" reading.
	naive := im.NewView.StripAnnotations()
	ok, err := afsa.Consistent(naive, buyerParty.Public)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ablation expectation broken: naive view already inconsistent")
	}
	// Yet execution with the changed accounting fails (validated in
	// TestAblationAnnotations for the subtractive case and in
	// internal/runtime for this one) — the projected annotations are
	// load-bearing.
}
