package choreo_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	choreo "repro"
)

// Example reproduces the smallest end-to-end flow: build a two-party
// choreography, check consistency, evolve one side and inspect the
// classification.
func Example() {
	reg := choreo.NewRegistry()
	if err := reg.AddOperation("A", "pingOp", false); err != nil {
		log.Fatal(err)
	}
	if err := reg.AddOperation("B", "pongOp", false); err != nil {
		log.Fatal(err)
	}

	server := &choreo.Process{Name: "server", Owner: "A",
		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
			&choreo.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
		}}}
	client := &choreo.Process{Name: "client", Owner: "B",
		Body: &choreo.Sequence{BlockName: "cli", Children: []choreo.Activity{
			&choreo.Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
			&choreo.Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
		}}}

	c := choreo.NewChoreography(reg)
	if err := c.AddParty(server); err != nil {
		log.Fatal(err)
	}
	if err := c.AddParty(client); err != nil {
		log.Fatal(err)
	}
	report, err := c.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent: %v\n", report.Consistent())

	evo, err := c.Evolve("A", choreo.Delete{Path: choreo.Path{"Sequence:srv", "Invoke:pong"}})
	if err != nil {
		log.Fatal(err)
	}
	im := evo.Impacts[0]
	fmt.Printf("change for %s: %s, %s\n", im.Partner, im.Classification.Kind, im.Classification.Scope)
	// Output:
	// consistent: true
	// change for B: additive+subtractive, variant
}

// ExampleDerivePublic derives the paper's buyer public process
// (Fig. 6) and prints the mapping table of Table 1.
func ExampleDerivePublic() {
	pub, err := choreo.DerivePublic(choreo.PaperBuyer(), choreo.PaperRegistry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d\n", pub.Automaton.NumStates())
	fmt.Print(pub.Table)
	// Output:
	// states: 5
	// 0: BPELProcess, Sequence:buyer process
	// 1: Sequence:buyer process
	// 2: Sequence:buyer process, While:tracking, Switch:termination?, Sequence:cond continue, Sequence:cond terminate
	// 3: Sequence:cond continue
	// 4: Sequence:cond terminate
}

// ExampleConsistent shows the Fig. 5 worked example: a shared message
// is not enough when a mandatory alternative is missing.
func ExampleConsistent() {
	ok, err := choreo.Consistent(choreo.Fig5PartyA(), choreo.Fig5PartyB())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig5 consistent: %v\n", ok)
	// Output:
	// fig5 consistent: false
}

// ExampleChoreographyStore_MigrateAll runs the bulk instance-migration
// engine in process: record running conversations, commit a
// subtractive change, then sweep the whole population to the new
// schema — migratable instances move, the rest are reported stranded.
func ExampleChoreographyStore_MigrateAll() {
	ctx := context.Background()
	st := choreo.NewChoreographyStore()
	if err := st.Create(ctx, "demo", nil); err != nil {
		log.Fatal(err)
	}

	server := &choreo.Process{Name: "server", Owner: "A",
		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
			&choreo.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
		}}}
	client := &choreo.Process{Name: "client", Owner: "B",
		Body: &choreo.Sequence{BlockName: "cli", Children: []choreo.Activity{
			&choreo.Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
			&choreo.Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
		}}}
	// One batch, one commit, one version bump.
	if _, err := st.PutParties(ctx, "demo", []*choreo.Process{server, client}, nil); err != nil {
		log.Fatal(err)
	}

	// 100 running server conversations under the current schema.
	if _, err := st.SampleInstances(ctx, "demo", "A", 1, 100, 2); err != nil {
		log.Fatal(err)
	}

	// The server drops the pong reply — a subtractive change — and
	// commits it.
	shrunk := &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
		&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
	}}
	evo, err := st.Evolve(ctx, "demo", "A", choreo.Replace{Path: nil, New: shrunk})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := st.CommitEvolution(ctx, evo); err != nil {
		log.Fatal(err)
	}

	// Sweep every tracked instance to the committed snapshot with 4
	// workers. Conversations that already sent the pong cannot replay
	// on the shrunk schema and are stranded.
	job, err := st.MigrateAll(ctx, "demo", 4)
	if err != nil {
		log.Fatal(err)
	}
	v := job.Snapshot()
	fmt.Printf("job %s: %s\n", v.ID, v.Status)
	fmt.Printf("migrated %d of %d, stranded %d\n", v.Migratable, v.Total, v.NonReplayable+v.Unviable)

	// Re-running the same migration is a no-op: the job identity is
	// (choreography, committed version).
	again, err := st.MigrateAll(ctx, "demo", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rerun is same job: %v\n", again == job)
	// Output:
	// job mig-demo-v2: done
	// migrated 70 of 100, stranded 30
	// rerun is same job: true
}

// ExampleChoreoClient_StartMigration drives the same sweep over the
// wire: POST the migration, poll it to completion, read the stranded
// report through the cursor.
func ExampleChoreoClient_StartMigration() {
	ctx := context.Background()
	st := choreo.NewChoreographyStore()
	srv := httptest.NewServer(choreo.NewChoreoServer(st).Handler())
	defer srv.Close()
	c := choreo.NewChoreoClient(srv.URL, nil)

	if err := st.Create(ctx, "demo", nil); err != nil {
		log.Fatal(err)
	}
	server := &choreo.Process{Name: "server", Owner: "A",
		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
			&choreo.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
		}}}
	if _, err := c.RegisterParty(ctx, "demo", server); err != nil {
		log.Fatal(err)
	}
	if _, err := c.SampleInstances(ctx, "demo", "A", 1, 50, 2); err != nil {
		log.Fatal(err)
	}
	shrunk := &choreo.Process{Name: "server", Owner: "A",
		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
		}}}
	evo, err := c.Evolve(ctx, "demo", shrunk)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion); err != nil {
		log.Fatal(err)
	}

	job, err := c.StartMigration(ctx, "demo", 4)
	if err != nil {
		log.Fatal(err)
	}
	final, err := c.WaitMigration(ctx, "demo", job.Job, 0)
	if err != nil {
		log.Fatal(err)
	}
	stranded, err := c.MigrationStranded(ctx, "demo", job.Job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: %s\n", final.Status)
	fmt.Printf("migrated %d of %d, stranded %d\n", final.Migratable, final.Total, len(stranded))
	// Output:
	// status: done
	// migrated 34 of 50, stranded 16
}
