package choreo_test

import (
	"fmt"
	"log"

	choreo "repro"
)

// Example reproduces the smallest end-to-end flow: build a two-party
// choreography, check consistency, evolve one side and inspect the
// classification.
func Example() {
	reg := choreo.NewRegistry()
	if err := reg.AddOperation("A", "pingOp", false); err != nil {
		log.Fatal(err)
	}
	if err := reg.AddOperation("B", "pongOp", false); err != nil {
		log.Fatal(err)
	}

	server := &choreo.Process{Name: "server", Owner: "A",
		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
			&choreo.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
		}}}
	client := &choreo.Process{Name: "client", Owner: "B",
		Body: &choreo.Sequence{BlockName: "cli", Children: []choreo.Activity{
			&choreo.Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
			&choreo.Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
		}}}

	c := choreo.NewChoreography(reg)
	if err := c.AddParty(server); err != nil {
		log.Fatal(err)
	}
	if err := c.AddParty(client); err != nil {
		log.Fatal(err)
	}
	report, err := c.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent: %v\n", report.Consistent())

	evo, err := c.Evolve("A", choreo.Delete{Path: choreo.Path{"Sequence:srv", "Invoke:pong"}})
	if err != nil {
		log.Fatal(err)
	}
	im := evo.Impacts[0]
	fmt.Printf("change for %s: %s, %s\n", im.Partner, im.Classification.Kind, im.Classification.Scope)
	// Output:
	// consistent: true
	// change for B: additive+subtractive, variant
}

// ExampleDerivePublic derives the paper's buyer public process
// (Fig. 6) and prints the mapping table of Table 1.
func ExampleDerivePublic() {
	pub, err := choreo.DerivePublic(choreo.PaperBuyer(), choreo.PaperRegistry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d\n", pub.Automaton.NumStates())
	fmt.Print(pub.Table)
	// Output:
	// states: 5
	// 0: BPELProcess, Sequence:buyer process
	// 1: Sequence:buyer process
	// 2: Sequence:buyer process, While:tracking, Switch:termination?, Sequence:cond continue, Sequence:cond terminate
	// 3: Sequence:cond continue
	// 4: Sequence:cond terminate
}

// ExampleConsistent shows the Fig. 5 worked example: a shared message
// is not enough when a mandatory alternative is missing.
func ExampleConsistent() {
	ok, err := choreo.Consistent(choreo.Fig5PartyA(), choreo.Fig5PartyB())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig5 consistent: %v\n", ok)
	// Output:
	// fig5 consistent: false
}
