package choreo

import (
	"repro/internal/bpel"
	"repro/internal/wsdl"
)

// BPEL process model (paper Sec. 2). The types alias the internal
// implementation so they can be constructed directly; see the package
// documentation for an example.
type (
	// Process is a private BPEL process: a name, the owning party and
	// a tree of activities.
	Process = bpel.Process
	// Activity is a node of the process tree.
	Activity = bpel.Activity
	// Path addresses an activity as the sequence of "Kind:Name"
	// elements from the root block (the paper's mapping-table rows).
	Path = bpel.Path
	// ActivityKind discriminates activity types.
	ActivityKind = bpel.Kind

	// Sequence executes its children in order.
	Sequence = bpel.Sequence
	// Flow executes its branches in parallel.
	Flow = bpel.Flow
	// Switch is a data-driven (internal) choice.
	Switch = bpel.Switch
	// Case is one branch of a Switch.
	Case = bpel.Case
	// Pick is a message-driven (external) choice.
	Pick = bpel.Pick
	// OnMessage is one branch of a Pick.
	OnMessage = bpel.OnMessage
	// While repeats its body; the conditions "1 = 1" and "true" mark
	// the paper's non-terminating loops.
	While = bpel.While
	// Scope groups a single child.
	Scope = bpel.Scope
	// Receive waits for a partner message.
	Receive = bpel.Receive
	// Reply answers a synchronous operation.
	Reply = bpel.Reply
	// Invoke calls a partner operation (Sync expands to a
	// request/response pair in the public process).
	Invoke = bpel.Invoke
	// Assign manipulates variables (invisible to partners).
	Assign = bpel.Assign
	// Empty does nothing.
	Empty = bpel.Empty
	// Terminate ends the process instance.
	Terminate = bpel.Terminate
	// PartnerLink documents a bilateral interaction.
	PartnerLink = bpel.PartnerLink
)

// Activity kinds.
const (
	KindSequence  = bpel.KindSequence
	KindFlow      = bpel.KindFlow
	KindSwitch    = bpel.KindSwitch
	KindPick      = bpel.KindPick
	KindWhile     = bpel.KindWhile
	KindScope     = bpel.KindScope
	KindReceive   = bpel.KindReceive
	KindReply     = bpel.KindReply
	KindInvoke    = bpel.KindInvoke
	KindAssign    = bpel.KindAssign
	KindEmpty     = bpel.KindEmpty
	KindTerminate = bpel.KindTerminate
)

// Element renders the path element of an activity ("Sequence:buyer
// process").
func Element(a Activity) string { return bpel.Element(a) }

// Children returns the nested activities of a structured activity.
func Children(a Activity) []Activity { return bpel.Children(a) }

// Walk visits the activity tree in document order.
func Walk(a Activity, fn func(act Activity, path Path) bool) { bpel.Walk(a, fn) }

// MarshalProcessXML renders a process in BPEL-flavored XML.
func MarshalProcessXML(p *Process) ([]byte, error) { return bpel.MarshalXML(p) }

// UnmarshalProcessXML parses the XML produced by MarshalProcessXML.
func UnmarshalProcessXML(data []byte) (*Process, error) { return bpel.UnmarshalXML(data) }

// WSDL subset (paper Sec. 2): operations, port types and the
// synchronous/asynchronous distinction.
type (
	// Registry resolves (party, operation) pairs.
	Registry = wsdl.Registry
	// Operation is one operation of a port type; Output non-empty
	// means synchronous.
	Operation = wsdl.Operation
	// PortType groups the operations a party offers.
	PortType = wsdl.PortType
	// PartnerLinkType associates the two roles of an interaction.
	PartnerLinkType = wsdl.PartnerLinkType
	// Role is one side of a PartnerLinkType.
	Role = wsdl.Role
)

// NewRegistry returns an empty WSDL registry.
func NewRegistry() *Registry { return wsdl.NewRegistry() }
