package choreo

import (
	"repro/internal/paperrepro"
)

// The paper's procurement scenario (Sec. 2) as ready-made fixtures:
// buyer (party "B"), accounting ("A") and logistics ("L"), plus the
// three change operations of the evaluation scenarios. The examples
// and benchmarks build on these.

// PaperRegistry returns the WSDL registry of the paper scenario.
func PaperRegistry() *Registry { return paperrepro.Registry() }

// PaperBuyer returns the buyer private process (paper Fig. 3).
func PaperBuyer() *Process { return paperrepro.BuyerProcess() }

// PaperAccounting returns the accounting private process (paper
// Fig. 2).
func PaperAccounting() *Process { return paperrepro.AccountingProcess() }

// PaperLogistics returns the logistics private process (inferred from
// paper Figs. 1 and 8b).
func PaperLogistics() *Process { return paperrepro.LogisticsProcess() }

// PaperScenario builds the full three-party choreography of paper
// Fig. 1, consistency-checked.
func PaperScenario() (*Choreography, error) {
	c := NewChoreography(PaperRegistry())
	for _, p := range []*Process{PaperBuyer(), PaperAccounting(), PaperLogistics()} {
		if err := c.AddParty(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// PaperOrderTwoChange returns the invariant additive change of paper
// Sec. 5.1 (accept an alternative order format).
func PaperOrderTwoChange() ChangeOperation { return paperrepro.OrderTwoChange() }

// PaperCancelChange returns the variant additive change of paper
// Sec. 5.2 (credit check with a cancel alternative).
func PaperCancelChange() ChangeOperation { return paperrepro.CancelChange() }

// PaperTrackingLimitChange returns the variant subtractive change of
// paper Sec. 5.3 (at most one parcel-tracking round).
func PaperTrackingLimitChange() ChangeOperation { return paperrepro.TrackingLimitChange() }

// Fig5PartyA returns the left aFSA of the paper's Fig. 5 worked
// example (msg0/msg2 optional).
func Fig5PartyA() *Automaton { return paperrepro.Fig5PartyA() }

// Fig5PartyB returns the right aFSA of Fig. 5 (msg1/msg2 mandatory).
func Fig5PartyB() *Automaton { return paperrepro.Fig5PartyB() }
