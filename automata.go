package choreo

import (
	"repro/internal/afsa"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/mapping"
)

// Annotated finite state automata (paper Defs. 1–4).
type (
	// Automaton is an annotated FSA: message-labeled transitions plus
	// propositional state annotations marking mandatory alternatives.
	Automaton = afsa.Automaton
	// StateID identifies an automaton state.
	StateID = afsa.StateID
	// Transition is one labeled edge.
	Transition = afsa.Transition
	// Label is a message label "Sender#Receiver#op"; the empty label
	// is ε.
	Label = label.Label
	// LabelSet is a set of labels (an automaton alphabet).
	LabelSet = label.Set
	// Formula is a propositional annotation formula (Def. 1).
	Formula = formula.Formula
	// Word is one message sequence.
	Word = afsa.Word
)

// NewAutomaton returns an empty automaton with a diagnostic name.
func NewAutomaton(name string) *Automaton { return afsa.New(name) }

// NewLabel builds a message label from its parts.
func NewLabel(sender, receiver, op string) Label { return label.New(sender, receiver, op) }

// ParseLabel validates a textual label ("" parses to ε).
func ParseLabel(s string) (Label, error) { return label.Parse(s) }

// Epsilon is the silent label produced by view generation.
const Epsilon = label.Epsilon

// Formula constructors (Def. 1).
var (
	// True is the constant true formula.
	True = formula.True
	// False is the constant false formula.
	False = formula.False
	// Var is a message variable.
	Var = formula.Var
	// Not negates a formula.
	Not = formula.Not
	// And conjoins formulas (mandatory alternatives).
	And = formula.And
	// Or disjoins formulas.
	Or = formula.Or
)

// ParseFormula reads the infix AND/OR/NOT notation.
func ParseFormula(s string) (*Formula, error) { return formula.Parse(s) }

// Consistent reports bilateral consistency of two public processes:
// their intersection is annotated-non-empty (paper Sec. 3.2), which
// guarantees deadlock-free interaction.
func Consistent(a, b *Automaton) (bool, error) { return afsa.Consistent(a, b) }

// Equivalent reports language and annotation equality of two automata.
func Equivalent(a, b *Automaton) bool { return afsa.Equivalent(a, b) }

// Public process generation (paper Sec. 3.3).
type (
	// PublicProcess is the result of deriving a public process: the
	// minimized automaton plus the state↔block mapping table.
	PublicProcess = mapping.Result
	// MappingTable relates public-process states to BPEL blocks
	// (paper Table 1).
	MappingTable = mapping.Table
)

// DerivePublic generates the public process of a private one,
// including the mapping table later used to locate private regions
// affected by partner changes. The registry may be nil.
func DerivePublic(p *Process, reg *Registry) (*PublicProcess, error) {
	return mapping.Derive(p, reg)
}
