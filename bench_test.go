// Benchmark harness regenerating every constructed table and figure of
// the paper (E-* experiments of DESIGN.md) and measuring the derived
// scaling experiments (D-*). Absolute numbers depend on the host; the
// shapes — which operator dominates, how costs scale, who wins between
// the matching strategies and between centralized and decentralized
// checking — are what EXPERIMENTS.md records.
package choreo

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/decentral"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/store"
)

// ---- E-F5: Fig. 5 intersection + annotated emptiness ----

func BenchmarkFig5Intersection(b *testing.B) {
	pa, pb := paperrepro.Fig5PartyA(), paperrepro.Fig5PartyB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inter := pa.Intersect(pb)
		empty, err := inter.IsEmpty()
		if err != nil || !empty {
			b.Fatalf("fig5: empty=%v err=%v", empty, err)
		}
	}
}

// ---- E-F6 / E-T1: buyer public process generation + mapping table ----

func BenchmarkFig6BuyerPublic(b *testing.B) {
	reg := paperrepro.Registry()
	p := paperrepro.BuyerProcess()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mapping.Derive(p, reg)
		if err != nil || res.Automaton.NumStates() != 5 {
			b.Fatalf("fig6: %v", err)
		}
	}
}

func BenchmarkTable1Mapping(b *testing.B) {
	reg := paperrepro.Registry()
	p := paperrepro.BuyerProcess()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mapping.Derive(p, reg)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Table.Blocks(2); len(got) != 5 {
			b.Fatalf("table1 row 3 = %v", got)
		}
	}
}

// ---- E-F7 / E-F2: accounting public process ----

func BenchmarkFig7AccountingPublic(b *testing.B) {
	reg := paperrepro.Registry()
	p := paperrepro.AccountingProcess()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Derive(p, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-F8: bilateral views ----

func BenchmarkFig8Views(b *testing.B) {
	reg := paperrepro.Registry()
	res, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := res.Automaton.View(paperrepro.Buyer); v.NumStates() != 5 {
			b.Fatalf("fig8a states = %d", v.NumStates())
		}
		if v := res.Automaton.View(paperrepro.Logistics); v.NumStates() != 5 {
			b.Fatalf("fig8b states = %d", v.NumStates())
		}
	}
}

// ---- E-F1: whole-scenario consistency ----

func BenchmarkScenarioConsistency(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Check()
		if err != nil || !rep.Consistent() {
			b.Fatalf("scenario: %v", err)
		}
	}
}

// ---- E-F10: invariant additive change ----

func BenchmarkFig10InvariantAdditive(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	op := PaperOrderTwoChange()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Evolve(paperrepro.Accounting, op)
		if err != nil || rep.NeedsPropagation() {
			b.Fatalf("fig10: err=%v", err)
		}
	}
}

// ---- E-F12/E-F13: variant additive change + propagation ----

func BenchmarkFig12VariantAdditive(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	op := PaperCancelChange()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Evolve(paperrepro.Accounting, op)
		if err != nil || !rep.NeedsPropagation() {
			b.Fatalf("fig12: err=%v", err)
		}
	}
}

func BenchmarkFig13AdditivePropagation(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := c.Evolve(paperrepro.Accounting, PaperCancelChange())
	if err != nil {
		b.Fatal(err)
	}
	var newView, partnerB *Automaton
	for _, im := range rep.Impacts {
		if im.Partner == paperrepro.Buyer {
			newView = im.NewView
		}
	}
	buyerParty, _ := c.Party(paperrepro.Buyer)
	partnerB = buyerParty.Public
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := PlanAdditive(newView, partnerB, buyerParty.Table)
		if err != nil || len(plan.Hints) != 1 {
			b.Fatalf("fig13: %v", err)
		}
	}
}

// ---- E-F14: suggestion + application + verification ----

func BenchmarkFig14SuggestApply(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := c.Evolve(paperrepro.Accounting, PaperCancelChange())
	if err != nil {
		b.Fatal(err)
	}
	var im PartnerImpact
	for _, i := range rep.Impacts {
		if i.Partner == paperrepro.Buyer {
			im = i
		}
	}
	ops := ExecutableSuggestions(im.Suggestions)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := c.AdaptPartner(paperrepro.Buyer, ops)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := Consistent(im.NewView, res.Automaton.View(paperrepro.Accounting))
		if err != nil || !ok {
			b.Fatalf("fig14 verification failed: %v", err)
		}
	}
}

// ---- E-F16/E-F17: variant subtractive change + propagation ----

func BenchmarkFig16VariantSubtractive(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	op := PaperTrackingLimitChange()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Evolve(paperrepro.Accounting, op)
		if err != nil || !rep.NeedsPropagation() {
			b.Fatalf("fig16: err=%v", err)
		}
	}
}

func BenchmarkFig17SubtractivePropagation(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := c.Evolve(paperrepro.Accounting, PaperTrackingLimitChange())
	if err != nil {
		b.Fatal(err)
	}
	var newView *Automaton
	for _, im := range rep.Impacts {
		if im.Partner == paperrepro.Buyer {
			newView = im.NewView
		}
	}
	buyerParty, _ := c.Party(paperrepro.Buyer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := PlanSubtractive(newView, buyerParty.Public, buyerParty.Table)
		if err != nil || len(plan.Hints) == 0 {
			b.Fatalf("fig17: %v", err)
		}
	}
}

// ---- E-F18: subtractive suggestion + application + verification ----

func BenchmarkFig18SuggestApply(b *testing.B) {
	c, err := PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := c.Evolve(paperrepro.Accounting, PaperTrackingLimitChange())
	if err != nil {
		b.Fatal(err)
	}
	var im PartnerImpact
	for _, i := range rep.Impacts {
		if i.Partner == paperrepro.Buyer {
			im = i
		}
	}
	ops := ExecutableSuggestions(im.Suggestions)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := c.AdaptPartner(paperrepro.Buyer, ops)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := Consistent(im.NewView, res.Automaton.View(paperrepro.Accounting))
		if err != nil || !ok {
			b.Fatalf("fig18 verification failed: %v", err)
		}
	}
}

// ---- D-1: operator cost vs. automaton size ----

// randomDFA builds a trim random DFA with the given state count over a
// 6-letter alphabet.
func randomDFA(seed int64, states int) *afsa.Automaton {
	r := rand.New(rand.NewSource(seed))
	alphabet := []label.Label{
		label.New("A", "B", "m0"), label.New("A", "B", "m1"), label.New("A", "B", "m2"),
		label.New("B", "A", "m3"), label.New("B", "A", "m4"), label.New("B", "A", "m5"),
	}
	a := afsa.New(fmt.Sprintf("rand%d", states))
	for i := 0; i < states; i++ {
		a.AddState()
	}
	a.SetStart(0)
	for q := 0; q < states; q++ {
		for _, l := range alphabet {
			if r.Intn(100) < 60 {
				a.AddTransition(afsa.StateID(q), l, afsa.StateID(r.Intn(states)))
			}
		}
		if r.Intn(100) < 25 {
			a.SetFinal(afsa.StateID(q), true)
		}
	}
	a.SetFinal(afsa.StateID(states-1), true)
	trimmed, _ := a.Trim()
	return trimmed
}

var operatorSizes = []int{8, 32, 128, 512}

// operandPair returns an automaton and a structural variant of it (a
// few transitions retargeted, some finality flipped), so products at
// every size share substantial structure — two independently random
// automata of growing size share almost nothing, which would make the
// scaling series degenerate.
func operandPair(n int) (*afsa.Automaton, *afsa.Automaton) {
	x := randomDFA(int64(n), n)
	y := x.Clone()
	r := rand.New(rand.NewSource(int64(n) * 31))
	states := y.NumStates()
	extras := []label.Label{
		label.New("A", "B", "x0"), label.New("A", "B", "x1"),
		label.New("B", "A", "x2"), label.New("B", "A", "x3"),
	}
	for i := 0; i < states/4+1; i++ {
		q := afsa.StateID(r.Intn(states))
		y.SetFinal(q, !y.IsFinal(q))
		l := extras[r.Intn(len(extras))]
		// Keep y deterministic: add the variant transition only when
		// the state lacks that label.
		if len(y.Step(q, l)) == 0 {
			y.AddTransition(q, l, afsa.StateID(r.Intn(states)))
		}
	}
	return x, y
}

func BenchmarkIntersectScale(b *testing.B) {
	for _, n := range operatorSizes {
		x, y := operandPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inter := x.Intersect(y)
				b.ReportMetric(float64(inter.NumStates()), "product-states")
			}
		})
	}
}

func BenchmarkEmptinessScale(b *testing.B) {
	for _, n := range operatorSizes {
		x := randomDFA(int64(n), n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := x.IsEmpty(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDifferenceScale(b *testing.B) {
	for _, n := range operatorSizes {
		x, y := operandPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = x.Difference(y)
			}
		})
	}
}

func BenchmarkUnionScale(b *testing.B) {
	for _, n := range operatorSizes {
		x, y := operandPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = x.Union(y)
			}
		})
	}
}

func BenchmarkMinimizeScale(b *testing.B) {
	for _, n := range operatorSizes {
		x := randomDFA(int64(n), n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = x.Minimize()
			}
		})
	}
}

// ---- D-2: public process generation vs. process size ----

func BenchmarkDeriveScale(b *testing.B) {
	for _, msgs := range []int{8, 32, 128} {
		conv := gen.MustGenerate(int64(msgs), gen.Params{
			PartyA: "A", PartyB: "B", Messages: msgs, MaxDepth: 3, ChoiceProb: 25, MaxBranch: 3,
		})
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := mapping.Derive(conv.A, conv.Registry)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Automaton.NumStates()), "states")
			}
		})
	}
}

// ---- D-3: full propagation pipeline vs. process size ----

func BenchmarkPropagateScale(b *testing.B) {
	for _, msgs := range []int{8, 32, 128} {
		conv := gen.MustGenerate(int64(msgs)+100, gen.Params{
			PartyA: "A", PartyB: "B", Messages: msgs, MaxDepth: 3, ChoiceProb: 25, MaxBranch: 3,
		})
		c := NewChoreography(conv.Registry)
		if err := c.AddParty(conv.A); err != nil {
			b.Fatal(err)
		}
		if err := c.AddParty(conv.B); err != nil {
			b.Fatal(err)
		}
		// A deterministic variant change: delete the first receive of A
		// (B keeps sending it → variant for B).
		var target Path
		Walk(conv.A.Body, func(a Activity, path Path) bool {
			if target != nil {
				return false
			}
			if _, ok := a.(*Receive); ok {
				target = append(Path(nil), path...)
				return false
			}
			return true
		})
		if target == nil {
			b.Skip("generated process has no receive")
		}
		op := Delete{Path: target}
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Evolve("A", op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- D-4: controlled vs. uncontrolled evolution ----

func BenchmarkControlledVsUncontrolled(b *testing.B) {
	reg := paperrepro.Registry()
	changedAcc, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		b.Fatal(err)
	}
	acc, _ := mapping.Derive(changedAcc, reg)
	buyerOld, _ := mapping.Derive(paperrepro.BuyerProcess(), reg)
	buyerNew, _ := mapping.Derive(paperrepro.Fig14BuyerProcess(), reg)
	logistics, _ := mapping.Derive(paperrepro.LogisticsProcess(), reg)

	build := func(buyer *afsa.Automaton) *runtime.System {
		sys, err := runtime.NewSystem(map[string]*afsa.Automaton{
			paperrepro.Buyer:      buyer,
			paperrepro.Accounting: acc.Automaton,
			paperrepro.Logistics:  logistics.Automaton,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}

	b.Run("uncontrolled", func(b *testing.B) {
		sys := build(buyerOld.Automaton)
		for i := 0; i < b.N; i++ {
			rate := sys.FailureRate(int64(i), 100, 200)
			if rate == 0 {
				b.Fatal("uncontrolled evolution never failed")
			}
			b.ReportMetric(rate*100, "%failed")
		}
	})
	b.Run("controlled", func(b *testing.B) {
		sys := build(buyerNew.Automaton)
		for i := 0; i < b.N; i++ {
			rate := sys.FailureRate(int64(i), 100, 200)
			if rate != 0 {
				b.Fatal("controlled evolution failed")
			}
			b.ReportMetric(0, "%failed")
		}
	})
}

// ---- D-5: discovery matchmaking vs. overlap baseline ----

func discoveryWorkload(b *testing.B, services int) (*discovery.Registry, *afsa.Automaton, map[string]bool) {
	b.Helper()
	reg := discovery.NewRegistry()
	truth := map[string]bool{}
	query := randomDFA(4242, 12)
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("svc%d", i)
		var pub *afsa.Automaton
		if i%2 == 0 {
			pub = query.Clone() // compatible by construction
		} else {
			// Same vocabulary, incompatible protocol: mandate a
			// message the query cannot follow at the start.
			pub = randomDFA(int64(i), 10)
			q := pub.Start()
			ghost := label.New("B", "A", "ghost")
			g := pub.AddState()
			pub.SetFinal(g, true)
			pub.AddTransition(q, ghost, g)
			pub.Annotate(q, Var(string(ghost)))
		}
		if err := reg.Publish(name, pub); err != nil {
			b.Fatal(err)
		}
		ok, err := afsa.Consistent(query, pub)
		if err != nil {
			b.Fatal(err)
		}
		truth[name] = ok
	}
	return reg, query, truth
}

func BenchmarkDiscoveryConsistency(b *testing.B) {
	reg, query, truth := discoveryWorkload(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := reg.MatchConsistent(query)
		if err != nil {
			b.Fatal(err)
		}
		ev := discovery.Evaluate("consistent", got, truth)
		b.ReportMetric(ev.Precision*100, "%precision")
	}
}

func BenchmarkDiscoveryOverlapBaseline(b *testing.B) {
	reg, query, truth := discoveryWorkload(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := reg.MatchOverlap(query)
		ev := discovery.Evaluate("overlap", got, truth)
		b.ReportMetric(ev.Precision*100, "%precision")
	}
}

// ---- D-6: decentralized vs. centralized consistency checking ----

func multiPartyWorkload(b *testing.B, pairs int) ([]decentral.Node, map[string]*afsa.Automaton) {
	b.Helper()
	nodes := make([]decentral.Node, 0, 2*pairs)
	parties := map[string]*afsa.Automaton{}
	for i := 0; i < pairs; i++ {
		pa, pb := fmt.Sprintf("P%da", i), fmt.Sprintf("P%db", i)
		conv := gen.MustGenerate(int64(i)+500, gen.Params{
			PartyA: pa, PartyB: pb, Messages: 6, MaxDepth: 2, ChoiceProb: 25, MaxBranch: 2,
		})
		ra, err := mapping.Derive(conv.A, conv.Registry)
		if err != nil {
			b.Fatal(err)
		}
		rb, err := mapping.Derive(conv.B, conv.Registry)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes,
			decentral.Node{Party: pa, Public: ra.Automaton},
			decentral.Node{Party: pb, Public: rb.Automaton})
		parties[pa] = ra.Automaton
		parties[pb] = rb.Automaton
	}
	return nodes, parties
}

func BenchmarkDecentralizedVsCentralized(b *testing.B) {
	for _, pairs := range []int{1, 2, 3, 4} {
		nodes, parties := multiPartyWorkload(b, pairs)
		b.Run(fmt.Sprintf("decentralized/pairs=%d", pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := decentral.Establish(nodes)
				if err != nil || !out.Consistent {
					b.Fatalf("decentral: %v", err)
				}
				b.ReportMetric(float64(out.LocalStates), "local-states")
				b.ReportMetric(float64(out.Messages), "messages")
			}
		})
		b.Run(fmt.Sprintf("centralized/pairs=%d", pairs), func(b *testing.B) {
			sys, err := runtime.NewSystem(parties)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res := sys.Explore(1 << 22)
				if !res.DeadlockFree() {
					b.Fatal("centralized found deadlock in consistent system")
				}
				b.ReportMetric(float64(res.States), "global-states")
			}
		})
	}
}

// ---- D-8: instance migration ----

func BenchmarkInstanceMigration(b *testing.B) {
	reg := paperrepro.Registry()
	oldRes, _ := mapping.Derive(paperrepro.BuyerProcess(), reg)
	newRes, _ := mapping.Derive(paperrepro.Fig18BuyerProcess(), reg)
	instances := instance.SampleInstances(oldRes.Automaton, 99, 1000, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := instance.Migrate(instances, newRes.Automaton)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MigratableFraction()*100, "%migratable")
	}
}

// ---- extensions: decentralized negotiation and version migration ----

func BenchmarkNegotiateChange(b *testing.B) {
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		b.Fatal(err)
	}
	reg := paperrepro.Registry()
	res, _ := mapping.Derive(changed, reg)
	buyer, _ := mapping.Derive(paperrepro.BuyerProcess(), reg)
	logistics, _ := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	adapted, _ := mapping.Derive(paperrepro.Fig14BuyerProcess(), reg)
	views := map[string]*afsa.Automaton{
		paperrepro.Buyer:     res.Automaton.View(paperrepro.Buyer),
		paperrepro.Logistics: res.Automaton.View(paperrepro.Logistics),
	}
	partners := []decentral.Node{
		{Party: paperrepro.Buyer, Public: buyer.Automaton},
		{Party: paperrepro.Logistics, Public: logistics.Automaton},
	}
	adapter := func(party string, _ *afsa.Automaton) (*afsa.Automaton, bool) {
		if party == paperrepro.Buyer {
			return adapted.Automaton, true
		}
		return nil, false
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		neg, err := decentral.NegotiateChange(paperrepro.Accounting, views, partners, adapter)
		if err != nil || !neg.Committed {
			b.Fatalf("negotiation failed: %v", err)
		}
	}
}

func BenchmarkVersionMigrateAll(b *testing.B) {
	reg := paperrepro.Registry()
	v0, _ := mapping.Derive(paperrepro.BuyerProcess(), reg)
	v1pub, _ := mapping.Derive(paperrepro.Fig18BuyerProcess(), reg)
	instances := instance.SampleInstances(v0.Automaton, 11, 500, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := NewVersionHistory(paperrepro.Buyer, paperrepro.BuyerProcess(), v0.Automaton)
		if err != nil {
			b.Fatal(err)
		}
		v1, err := h.Add(0, "bounded", paperrepro.Fig18BuyerProcess(), v1pub.Automaton)
		if err != nil {
			b.Fatal(err)
		}
		m := NewVersionManager(h)
		for _, inst := range instances {
			if err := m.Start(inst, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		out, err := m.MigrateAll(v1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(out.Migrated), "migrated")
	}
}

// ---- D-7 lives in criterion_test.go (a correctness experiment, not a
// timing benchmark). ----

// ---- D-8: the choreod serving layer (internal/store + internal/server) ----

// benchCtx is the background context the serving-layer benchmarks run
// their store and client calls under.
var benchCtx = context.Background()

// benchStoreFromGen loads n generated two-party choreographies into a
// fresh store (the service's synthetic tenant population).
func benchStoreFromGen(b *testing.B, n int) *store.Store {
	b.Helper()
	st := store.New()
	p := gen.Params{PartyA: "A", PartyB: "B", Messages: 12, MaxDepth: 3, ChoiceProb: 30, MaxBranch: 3}
	for i := 0; i < n; i++ {
		conv, err := gen.Generate(int64(i+1), p)
		if err != nil {
			b.Fatal(err)
		}
		id := fmt.Sprintf("tenant-%03d", i)
		if err := st.Create(benchCtx, id, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := st.RegisterParty(benchCtx, id, conv.A); err != nil {
			b.Fatal(err)
		}
		if _, err := st.RegisterParty(benchCtx, id, conv.B); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// BenchmarkStoreCheckCachedVsUncached reports both paths side by side
// as sub-benchmarks; the ratio is the payoff of the consistency-result
// cache.
func BenchmarkStoreCheckCachedVsUncached(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		st := benchStoreFromGen(b, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.CheckUncached(benchCtx, fmt.Sprintf("tenant-%03d", i%8)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		st := benchStoreFromGen(b, 8)
		for i := 0; i < 8; i++ {
			if _, err := st.Check(benchCtx, fmt.Sprintf("tenant-%03d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Check(benchCtx, fmt.Sprintf("tenant-%03d", i%8)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreParallelCheckEvolve drives parallel mixed traffic —
// mostly consistency checks with occasional evolve→commit writes —
// over generated choreographies, the workload choreod serves.
func BenchmarkStoreParallelCheckEvolve(b *testing.B) {
	const tenants = 16
	st := benchStoreFromGen(b, tenants)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			id := fmt.Sprintf("tenant-%03d", int(n)%tenants)
			if n%20 == 0 {
				snap, err := st.Snapshot(benchCtx, id)
				if err != nil {
					b.Fatal(err)
				}
				party, _ := snap.Party("A")
				op, err := gen.RandomChange(n, party.Private, snap.Registry)
				if err != nil {
					continue
				}
				evo, err := st.Evolve(benchCtx, id, "A", op)
				if err != nil {
					continue
				}
				_, _ = st.CommitEvolution(benchCtx, evo) // conflicts expected under contention
			} else if _, err := st.Check(benchCtx, id); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChoreodHTTPCheck measures a full client→HTTP→store check
// round trip on the paper scenario, with concurrent clients.
func BenchmarkChoreodHTTPCheck(b *testing.B) {
	srv := server.New(store.New())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := server.NewClient(ts.URL, ts.Client())
	if err := c.CreateChoreography(benchCtx, "p", []string{"L.getStatusLOp"}); err != nil {
		b.Fatal(err)
	}
	for _, proc := range []*Process{paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess()} {
		if _, err := c.RegisterParty(benchCtx, "p", proc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rep, err := c.Check(benchCtx, "p")
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Consistent {
				b.Fatal("paper scenario inconsistent")
			}
		}
	})
}

// ---- journal overhead on the commit path ----

// benchCommitLoop registers the paper scenario into st and then
// times repeated UpdateParty commits of the accounting process — the
// full commit path (registry inference, public derivation, snapshot
// publication) with whatever durability st was built with.
func benchCommitLoop(b *testing.B, st *store.Store) {
	b.Helper()
	const id = "procurement"
	if err := st.Create(benchCtx, id, []string{"L.getStatusLOp"}); err != nil {
		b.Fatal(err)
	}
	if _, err := st.PutParties(benchCtx, id, []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}, nil); err != nil {
		b.Fatal(err)
	}
	acct := paperrepro.AccountingProcess()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.UpdateParty(benchCtx, id, acct, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioCommitJournal measures what the write-ahead
// journal adds to the ScenarioConsistency commit path: the same
// UpdateParty loop against an in-memory store, a journaled store, and
// a journaled store with per-append fsync. The mem/wal delta is the
// append overhead recorded in BENCH_afsa.json.
func BenchmarkScenarioCommitJournal(b *testing.B) {
	b.Run("mem", func(b *testing.B) {
		benchCommitLoop(b, store.New())
	})
	b.Run("wal", func(b *testing.B) {
		st, err := store.Open(store.WithJournal(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		benchCommitLoop(b, st)
	})
	b.Run("wal-fsync", func(b *testing.B) {
		st, err := store.Open(store.WithJournal(b.TempDir()), store.WithJournalFsync())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		benchCommitLoop(b, st)
	})
}
