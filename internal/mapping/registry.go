package mapping

import (
	"repro/internal/bpel"
	"repro/internal/wsdl"
)

// InferRegistry builds a WSDL registry covering every operation the
// processes mention, so derivation validates without a hand-written
// registry. Operations default to asynchronous; syncOps entries of the
// form "party.op" mark synchronous ones (request/response pairs in the
// public process).
func InferRegistry(procs []*bpel.Process, syncOps []string) (*wsdl.Registry, error) {
	reg := wsdl.NewRegistry()
	isSync := map[string]bool{}
	for _, s := range syncOps {
		isSync[s] = true
	}
	seen := map[string]bool{}
	add := func(owner, op string) error {
		key := owner + "." + op
		if seen[key] {
			return nil
		}
		seen[key] = true
		return reg.AddOperation(owner, op, isSync[key])
	}
	var err error
	for _, p := range procs {
		owner := p.Owner
		bpel.Walk(p.Body, func(a bpel.Activity, _ bpel.Path) bool {
			if err != nil {
				return false
			}
			switch t := a.(type) {
			case *bpel.Receive:
				err = add(owner, t.Op)
			case *bpel.Reply:
				err = add(owner, t.Op)
			case *bpel.Invoke:
				err = add(t.Partner, t.Op)
			case *bpel.Pick:
				for _, b := range t.Branches {
					if err == nil {
						err = add(owner, b.Op)
					}
				}
			}
			return err == nil
		})
	}
	return reg, err
}
