package mapping

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/label"
	"repro/internal/paperrepro"
)

// TestDerivePickWithSyncReply models the logistics pattern: a pick
// branch that replies to the synchronous operation it received.
func TestDerivePickWithSyncReply(t *testing.T) {
	p := &bpel.Process{Name: "svc", Owner: "L", Body: &bpel.While{
		BlockName: "serve", Cond: "1 = 1",
		Body: &bpel.Pick{BlockName: "req", Branches: []bpel.OnMessage{
			{Partner: "A", Op: "q", Body: &bpel.Reply{BlockName: "answer", Partner: "A", Op: "q"}},
			{Partner: "A", Op: "stop", Body: &bpel.Terminate{BlockName: "end"}},
		}},
	}}
	res := derive(t, p)
	a := res.Automaton
	if !a.Accepts(word("A#L#q", "L#A#q", "A#L#q", "L#A#q", "A#L#stop")) {
		t.Fatalf("request/reply loop broken:\n%s", a.DebugString())
	}
	if a.Accepts(word("A#L#q", "A#L#stop")) {
		t.Fatal("reply skipped")
	}
}

// TestDeriveNestedFlowInSequence checks interleaving spliced between
// sequential phases.
func TestDeriveNestedFlowInSequence(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "start", Partner: "B", Op: "go"},
		&bpel.Flow{BlockName: "par", Branches: []bpel.Activity{
			&bpel.Invoke{BlockName: "i1", Partner: "B", Op: "a"},
			&bpel.Invoke{BlockName: "i2", Partner: "B", Op: "b"},
		}},
		&bpel.Invoke{BlockName: "done", Partner: "B", Op: "fin"},
	}})
	res := derive(t, p)
	for _, w := range [][]label.Label{
		word("B#A#go", "A#B#a", "A#B#b", "A#B#fin"),
		word("B#A#go", "A#B#b", "A#B#a", "A#B#fin"),
	} {
		if !res.Automaton.Accepts(w) {
			t.Fatalf("missing interleaving %v:\n%s", w, res.Automaton.DebugString())
		}
	}
	if res.Automaton.Accepts(word("B#A#go", "A#B#a", "A#B#fin")) {
		t.Fatal("flow exited before both branches finished")
	}
}

// TestDeriveFlowOfFlows nests parallel blocks.
func TestDeriveFlowOfFlows(t *testing.T) {
	p := proc("A", &bpel.Flow{BlockName: "outer", Branches: []bpel.Activity{
		&bpel.Flow{BlockName: "inner", Branches: []bpel.Activity{
			&bpel.Invoke{BlockName: "i1", Partner: "B", Op: "a"},
			&bpel.Invoke{BlockName: "i2", Partner: "B", Op: "b"},
		}},
		&bpel.Invoke{BlockName: "i3", Partner: "B", Op: "c"},
	}})
	res := derive(t, p)
	for _, w := range [][]label.Label{
		word("A#B#c", "A#B#a", "A#B#b"),
		word("A#B#a", "A#B#c", "A#B#b"),
		word("A#B#b", "A#B#a", "A#B#c"),
	} {
		if !res.Automaton.Accepts(w) {
			t.Fatalf("missing interleaving %v", w)
		}
	}
}

// TestDeriveSwitchInsidePickBranch mixes external and internal choice.
func TestDeriveSwitchInsidePickBranch(t *testing.T) {
	p := proc("A", &bpel.Pick{BlockName: "pk", Branches: []bpel.OnMessage{
		{Partner: "B", Op: "go", Body: &bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
			{Cond: "c", Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
		}, Else: &bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"}}},
		{Partner: "B", Op: "skip", Body: &bpel.Empty{BlockName: "e"}},
	}})
	res := derive(t, p)
	a := res.Automaton
	if !a.Accepts(word("B#A#go", "A#B#x")) || !a.Accepts(word("B#A#go", "A#B#y")) || !a.Accepts(word("B#A#skip")) {
		t.Fatalf("mixed choice derivation wrong:\n%s", a.DebugString())
	}
	// The switch state (after go) carries the internal-choice
	// annotation; the pick state does not.
	if !a.Annotation(a.Start()).IsTrue() {
		t.Fatal("pick state annotated")
	}
	annotated := 0
	for q := 0; q < a.NumStates(); q++ {
		if !a.Annotation(afsa.StateID(q)).IsTrue() {
			annotated++
		}
	}
	if annotated != 1 {
		t.Fatalf("annotated states = %d, want exactly the switch state", annotated)
	}
}

// TestDeriveDeepScopeNesting keeps block paths navigable.
func TestDeriveDeepScopeNesting(t *testing.T) {
	p := proc("A", &bpel.Scope{BlockName: "outer", Body: &bpel.Scope{
		BlockName: "middle", Body: &bpel.Sequence{BlockName: "inner", Children: []bpel.Activity{
			&bpel.Receive{BlockName: "r", Partner: "B", Op: "x"},
		}},
	}})
	res := derive(t, p)
	blocks := res.Table.Blocks(res.Automaton.Start())
	want := map[string]bool{}
	for _, b := range blocks {
		want[b] = true
	}
	for _, expect := range []string{"Scope:outer", "Scope:middle", "Sequence:inner"} {
		if !want[expect] {
			t.Fatalf("mapping table misses %s: %v", expect, blocks)
		}
	}
}

// TestDeriveWhileFollowAnnotation: a finite loop followed by a message
// marks both the body and the continuation as mandatory alternatives.
func TestDeriveWhileFollowAnnotationAcrossSequences(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Scope{BlockName: "sc", Body: &bpel.While{BlockName: "w", Cond: "n < 2",
			Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}}},
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	found := false
	for q := 0; q < res.Automaton.NumStates(); q++ {
		anno := res.Automaton.Annotation(afsa.StateID(q))
		vars := anno.Vars()
		_, hasX := vars["A#B#x"]
		_, hasY := vars["A#B#y"]
		if hasX && hasY {
			found = true
		}
	}
	if !found {
		t.Fatalf("loop/continuation annotation missing:\n%s", res.Automaton.DebugString())
	}
}

// TestAccountingMappingTable spot-checks the mapping table of the
// paper's accounting process: the pick state maps to the tracking
// loop blocks.
func TestAccountingMappingTable(t *testing.T) {
	res, err := Derive(paperrepro.AccountingProcess(), paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	// Locate the pick state: it has both getStatusOp and terminateOp
	// receive transitions.
	var pickState afsa.StateID = afsa.None
	for q := 0; q < res.Automaton.NumStates(); q++ {
		ts := res.Automaton.Transitions(afsa.StateID(q))
		hasGet, hasTerm := false, false
		for _, tr := range ts {
			if tr.Label == label.MustParse("B#A#getStatusOp") {
				hasGet = true
			}
			if tr.Label == label.MustParse("B#A#terminateOp") {
				hasTerm = true
			}
		}
		if hasGet && hasTerm {
			pickState = afsa.StateID(q)
		}
	}
	if pickState == afsa.None {
		t.Fatalf("pick state not found:\n%s", res.Automaton.DebugString())
	}
	blocks := map[string]bool{}
	for _, b := range res.Table.Blocks(pickState) {
		blocks[b] = true
	}
	for _, expect := range []string{"While:parcel tracking", "Pick:request"} {
		if !blocks[expect] {
			t.Fatalf("accounting pick state misses block %s: %v", expect, res.Table.Blocks(pickState))
		}
	}
}

// TestDeriveResultRawRetained: the raw (pre-minimization) artifacts
// stay available for diagnostics.
func TestDeriveResultRawRetained(t *testing.T) {
	res, err := Derive(paperrepro.BuyerProcess(), paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw == nil || res.Raw.NumStates() < res.Automaton.NumStates() {
		t.Fatalf("raw automaton missing or smaller than minimized: %v", res.Raw)
	}
	if len(res.RawTable) == 0 {
		t.Fatal("raw table missing")
	}
}

func word(labels ...string) []label.Label {
	out := make([]label.Label, len(labels))
	for i, s := range labels {
		out[i] = label.MustParse(s)
	}
	return out
}
