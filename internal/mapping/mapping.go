// Package mapping implements public process generation (paper
// Sec. 3.3): the derivation of a party's public aFSA from its private
// BPEL process, together with the mapping table relating aFSA states
// to BPEL blocks (Table 1). The table is what later lets the change
// framework translate modified public states back into the private
// regions a process engineer has to adapt (Secs. 5.2/5.3 step 3).
//
// # Derivation rules
//
//   - receive P.op        — one transition  P#owner#op
//   - invoke  P.op async  — one transition  owner#P#op
//   - invoke  P.op sync   — two transitions owner#P#op, P#owner#op
//     (request and response, cf. Fig. 8b)
//   - reply   P.op        — one transition  owner#P#op
//   - assign/empty        — invisible, no transition
//   - terminate           — current state becomes final, control stops
//   - sequence            — concatenation
//   - switch/while        — branching; as *internal* (data-driven)
//     choices they annotate the branch state with the conjunction over
//     branches of OR(first labels of branch): every alternative the
//     owner may pick is mandatory for the partner (reproduces the
//     "terminateOp AND get_statusOp" annotation of Fig. 6)
//   - pick                — branching on received messages; an
//     *external* choice carries no annotation (the partner decides)
//   - flow                — interleaving (shuffle product) of branches
//   - scope               — transparent nesting
//
// A while whose condition is the constant truth ("1 = 1" or "true", as
// the paper's parcel-tracking loops) never exits; any other condition
// allows exiting after each iteration. A terminate inside a flow is
// rejected (the paper never interleaves termination).
//
// The raw automaton (states = positions between activities) is
// determinized and minimized with state-provenance tracking, and the
// mapping table is carried through both steps.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/wsdl"
)

// ProcessRootElement is the pseudo path element representing the BPEL
// process itself in the mapping table (Table 1 row 1: "BPELProcess").
const ProcessRootElement = "BPELProcess"

// Table maps public-process states to the BPEL block paths they
// correspond to.
type Table map[afsa.StateID][]bpel.Path

// Blocks returns the distinct block elements (last path components)
// associated with state q, in first-association order — the form the
// paper's Table 1 uses.
func (t Table) Blocks(q afsa.StateID) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range t[q] {
		el := ProcessRootElement
		if len(p) > 0 {
			el = p[len(p)-1]
		}
		if !seen[el] {
			seen[el] = true
			out = append(out, el)
		}
	}
	return out
}

// Paths returns the distinct full block paths associated with state q.
func (t Table) Paths(q afsa.StateID) []bpel.Path {
	var out []bpel.Path
	seen := map[string]bool{}
	for _, p := range t[q] {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// String renders the table in state order, one row per state, the way
// the paper prints Table 1.
func (t Table) String() string {
	states := make([]int, 0, len(t))
	for q := range t {
		states = append(states, int(q))
	}
	sort.Ints(states)
	var b strings.Builder
	for _, q := range states {
		fmt.Fprintf(&b, "%d: %s\n", q, strings.Join(t.Blocks(afsa.StateID(q)), ", "))
	}
	return b.String()
}

// Result is the outcome of public process generation.
type Result struct {
	// Automaton is the minimized public process.
	Automaton *afsa.Automaton
	// Table maps automaton states to private-process blocks.
	Table Table
	// Raw is the pre-minimization automaton (states are positions
	// between activities); RawTable is its mapping table. The
	// propagation algorithms use the minimized form; Raw is retained
	// for diagnostics.
	Raw      *afsa.Automaton
	RawTable Table
}

// Derive generates the public process of p (Sec. 3.3). The registry
// may be nil; synchronous invokes are then recognized by the Invoke's
// Sync flag alone (which Validate checks against the registry when one
// is available).
func Derive(p *bpel.Process, reg *wsdl.Registry) (*Result, error) {
	if err := p.Validate(reg); err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	b := &builder{
		owner: p.Owner,
		reg:   reg,
		a:     afsa.New(p.Name + " public"),
		table: Table{},
	}
	entry := b.a.AddState()
	b.a.SetStart(entry)
	b.assoc(entry, bpel.Path{ProcessRootElement})

	rootPath := bpel.Path{bpel.Element(p.Body)}
	exit, terminated, err := b.derive(p.Body, entry, rootPath, nil)
	if err != nil {
		return nil, fmt.Errorf("mapping: process %q: %w", p.Name, err)
	}
	if !terminated {
		b.a.SetFinal(exit, true)
	}
	if err := b.a.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: internal error: %w", err)
	}

	minimized, members := b.a.MinimizeWithMap()
	minimized.Name = b.a.Name
	table := Table{}
	for newQ, olds := range members {
		for _, old := range olds {
			table[newQ] = append(table[newQ], b.table[old]...)
		}
	}
	// Canonicalize the per-state path lists.
	for q := range table {
		table[q] = dedupPaths(table[q])
	}
	return &Result{Automaton: minimized, Table: table, Raw: b.a, RawTable: b.table}, nil
}

func dedupPaths(in []bpel.Path) []bpel.Path {
	var out []bpel.Path
	seen := map[string]bool{}
	for _, p := range in {
		k := p.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

type builder struct {
	owner string
	reg   *wsdl.Registry
	a     *afsa.Automaton
	table Table
}

func (b *builder) assoc(q afsa.StateID, path bpel.Path) {
	b.table[q] = append(b.table[q], append(bpel.Path(nil), path...))
}

// newState creates a state associated with the enclosing block path.
func (b *builder) newState(encl bpel.Path) afsa.StateID {
	q := b.a.AddState()
	b.assoc(q, encl)
	return q
}

// derive builds the automaton fragment for act starting at entry.
// path is act's own path, encl the path used for states created at
// act's level (the enclosing block for basic activities), follow the
// FIRST set of whatever executes after act (used for annotations).
// It returns the exit state and whether control never flows past act.
func (b *builder) derive(act bpel.Activity, entry afsa.StateID, path bpel.Path, follow []label.Label) (afsa.StateID, bool, error) {
	switch t := act.(type) {
	case *bpel.Receive:
		to := b.newState(path.Parent())
		b.a.AddTransition(entry, label.New(t.Partner, b.owner, t.Op), to)
		return to, false, nil

	case *bpel.Reply:
		to := b.newState(path.Parent())
		b.a.AddTransition(entry, label.New(b.owner, t.Partner, t.Op), to)
		return to, false, nil

	case *bpel.Invoke:
		if t.Sync {
			mid := b.newState(path.Parent())
			to := b.newState(path.Parent())
			b.a.AddTransition(entry, label.New(b.owner, t.Partner, t.Op), mid)
			b.a.AddTransition(mid, label.New(t.Partner, b.owner, t.Op), to)
			return to, false, nil
		}
		to := b.newState(path.Parent())
		b.a.AddTransition(entry, label.New(b.owner, t.Partner, t.Op), to)
		return to, false, nil

	case *bpel.Assign, *bpel.Empty:
		return entry, false, nil

	case *bpel.Terminate:
		b.a.SetFinal(entry, true)
		return entry, true, nil

	case *bpel.Sequence:
		b.assoc(entry, path)
		cur := entry
		for i, child := range t.Children {
			childFollow := b.sequenceFollow(t.Children[i+1:], follow)
			childPath := path.Child(bpel.Element(child))
			exit, terminated, err := b.derive(child, cur, childPath, childFollow)
			if err != nil {
				return afsa.None, false, err
			}
			if terminated {
				return exit, true, nil
			}
			cur = exit
		}
		return cur, false, nil

	case *bpel.Scope:
		b.assoc(entry, path)
		return b.derive(t.Body, entry, path.Child(bpel.Element(t.Body)), follow)

	case *bpel.Switch:
		return b.deriveSwitch(t, entry, path, follow)

	case *bpel.Pick:
		return b.derivePick(t, entry, path, follow)

	case *bpel.While:
		return b.deriveWhile(t, entry, path, follow)

	case *bpel.Flow:
		return b.deriveFlow(t, entry, path, follow)
	}
	return afsa.None, false, fmt.Errorf("unsupported activity kind %v", act.Kind())
}

// sequenceFollow computes the FIRST set of rest·follow.
func (b *builder) sequenceFollow(rest []bpel.Activity, follow []label.Label) []label.Label {
	out, nullable := b.firstOfList(rest)
	if nullable {
		out = append(out, follow...)
	}
	return dedupLabels(out)
}

func (b *builder) deriveSwitch(t *bpel.Switch, entry afsa.StateID, path bpel.Path, follow []label.Label) (afsa.StateID, bool, error) {
	b.assoc(entry, path)

	branches := make([]bpel.Activity, 0, len(t.Cases)+1)
	for _, c := range t.Cases {
		branches = append(branches, c.Body)
	}
	implicitElse := false
	if t.Else != nil {
		branches = append(branches, t.Else)
	} else {
		implicitElse = true // a switch without otherwise may fall through
	}

	// Internal choice: every branch alternative is mandatory for the
	// partner (DESIGN.md §3). One conjunct per branch: OR of the
	// branch's first labels (branches starting invisibly contribute
	// their follow set).
	b.annotateInternalChoice(entry, branches, implicitElse, follow)

	var exits []afsa.StateID
	allTerminated := true
	for _, branch := range branches {
		exit, terminated, err := b.derive(branch, entry, path.Child(bpel.Element(branch)), follow)
		if err != nil {
			return afsa.None, false, err
		}
		if !terminated {
			allTerminated = false
			exits = append(exits, exit)
		}
	}
	if implicitElse {
		allTerminated = false
		exits = append(exits, entry)
	}
	if allTerminated {
		return entry, true, nil
	}
	return b.join(exits, path), false, nil
}

func (b *builder) derivePick(t *bpel.Pick, entry afsa.StateID, path bpel.Path, follow []label.Label) (afsa.StateID, bool, error) {
	b.assoc(entry, path)
	var exits []afsa.StateID
	allTerminated := true
	for _, br := range t.Branches {
		bodyPath := path.Child(bpel.Element(br.Body))
		to := b.newState(bodyPath)
		b.a.AddTransition(entry, label.New(br.Partner, b.owner, br.Op), to)
		exit, terminated, err := b.derive(br.Body, to, bodyPath, follow)
		if err != nil {
			return afsa.None, false, err
		}
		if !terminated {
			allTerminated = false
			exits = append(exits, exit)
		}
	}
	if allTerminated {
		return entry, true, nil
	}
	return b.join(exits, path), false, nil
}

func (b *builder) deriveWhile(t *bpel.While, entry afsa.StateID, path bpel.Path, follow []label.Label) (afsa.StateID, bool, error) {
	b.assoc(entry, path)
	infinite := InfiniteCond(t.Cond)

	bodyFirst, _ := b.firstOf(t.Body)
	bodyFollow := dedupLabels(append(append([]label.Label(nil), bodyFirst...), follow...))
	if !infinite && len(bodyFirst) > 0 && len(follow) > 0 {
		// Iterating or exiting is the owner's internal choice: both the
		// loop body and the continuation are mandatory alternatives.
		b.annotateConjuncts(entry, [][]label.Label{bodyFirst, follow})
	}

	exit, terminated, err := b.derive(t.Body, entry, path.Child(bpel.Element(t.Body)), bodyFollow)
	if err != nil {
		return afsa.None, false, err
	}
	if !terminated && exit != entry {
		// Loop back: the position after the body is the loop decision
		// point again.
		b.a.AddTransition(exit, label.Epsilon, entry)
	}
	if infinite {
		// The loop can only be left by a terminate inside the body;
		// control never flows past the while.
		return entry, true, nil
	}
	return entry, false, nil
}

func (b *builder) deriveFlow(t *bpel.Flow, entry afsa.StateID, path bpel.Path, follow []label.Label) (afsa.StateID, bool, error) {
	b.assoc(entry, path)
	// Build each branch as a standalone fragment, interleave them, and
	// splice the product between entry and a fresh exit state. States
	// imported from the product are associated with the flow block
	// (finer-grained provenance inside parallel branches is not
	// required by the paper's scenarios).
	var product *afsa.Automaton
	for _, branch := range t.Branches {
		frag, err := b.fragment(branch, path.Child(bpel.Element(branch)))
		if err != nil {
			return afsa.None, false, err
		}
		if product == nil {
			product = frag
		} else {
			product = product.Shuffle(frag)
		}
	}
	if product == nil {
		return entry, false, nil
	}
	exit := b.newState(path)
	offset := int(b.a.NumStates())
	for q := 0; q < product.NumStates(); q++ {
		b.newState(path)
	}
	for q := 0; q < product.NumStates(); q++ {
		from := afsa.StateID(offset + q)
		for _, f := range product.Annotations(afsa.StateID(q)) {
			b.a.Annotate(from, f)
		}
		for _, tr := range product.Transitions(afsa.StateID(q)) {
			b.a.AddTransition(from, tr.Label, afsa.StateID(offset+int(tr.To)))
		}
		if product.IsFinal(afsa.StateID(q)) {
			b.a.AddTransition(from, label.Epsilon, exit)
		}
	}
	b.a.AddTransition(entry, label.Epsilon, afsa.StateID(offset+int(product.Start())))
	return exit, false, nil
}

// fragment derives act in a throwaway builder and returns the
// automaton with the branch exit marked final.
func (b *builder) fragment(act bpel.Activity, path bpel.Path) (*afsa.Automaton, error) {
	fb := &builder{owner: b.owner, reg: b.reg, a: afsa.New("fragment"), table: Table{}}
	entry := fb.a.AddState()
	fb.a.SetStart(entry)
	exit, terminated, err := fb.derive(act, entry, path, nil)
	if err != nil {
		return nil, err
	}
	if terminated {
		return nil, fmt.Errorf("terminate inside a flow is not supported (block %s)", path)
	}
	fb.a.SetFinal(exit, true)
	return fb.a, nil
}

// join merges several branch exits into one state. A single exit is
// returned unchanged; multiple exits are connected by ε to a fresh
// join state associated with the enclosing block.
func (b *builder) join(exits []afsa.StateID, encl bpel.Path) afsa.StateID {
	exits = dedupStateIDs(exits)
	if len(exits) == 1 {
		return exits[0]
	}
	j := b.newState(encl)
	for _, e := range exits {
		b.a.AddTransition(e, label.Epsilon, j)
	}
	return j
}

func dedupStateIDs(in []afsa.StateID) []afsa.StateID {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	prev := afsa.None
	for _, s := range in {
		if s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}

// annotateInternalChoice annotates the branch state of an internal
// choice: one conjunct per branch, each the OR of the branch's first
// labels (extended by the follow set when the branch can complete
// invisibly). Trivial conjuncts (no labels at all) are skipped; an
// annotation needs at least two conjuncts to constrain anything.
func (b *builder) annotateInternalChoice(q afsa.StateID, branches []bpel.Activity, implicitElse bool, follow []label.Label) {
	var conjuncts [][]label.Label
	for _, branch := range branches {
		first, nullable := b.firstOf(branch)
		if nullable {
			first = append(first, follow...)
		}
		first = dedupLabels(first)
		if len(first) == 0 {
			continue
		}
		conjuncts = append(conjuncts, first)
	}
	if implicitElse && len(follow) > 0 {
		conjuncts = append(conjuncts, dedupLabels(follow))
	}
	b.annotateConjuncts(q, conjuncts)
}

func (b *builder) annotateConjuncts(q afsa.StateID, conjuncts [][]label.Label) {
	if len(conjuncts) < 2 {
		return
	}
	parts := make([]*formula.Formula, 0, len(conjuncts))
	for _, c := range conjuncts {
		vars := make([]*formula.Formula, 0, len(c))
		for _, l := range c {
			vars = append(vars, formula.Var(string(l)))
		}
		parts = append(parts, formula.Or(vars...))
	}
	f := formula.And(parts...)
	if !f.IsTrue() {
		b.a.Annotate(q, f)
	}
}

// firstOf computes the FIRST label set of act and whether act can
// complete without emitting any message (nullable). A terminate is not
// nullable: control never reaches the continuation.
func (b *builder) firstOf(act bpel.Activity) ([]label.Label, bool) {
	switch t := act.(type) {
	case *bpel.Receive:
		return []label.Label{label.New(t.Partner, b.owner, t.Op)}, false
	case *bpel.Reply:
		return []label.Label{label.New(b.owner, t.Partner, t.Op)}, false
	case *bpel.Invoke:
		return []label.Label{label.New(b.owner, t.Partner, t.Op)}, false
	case *bpel.Assign, *bpel.Empty:
		return nil, true
	case *bpel.Terminate:
		return nil, false
	case *bpel.Sequence:
		return b.firstOfList(t.Children)
	case *bpel.Scope:
		return b.firstOf(t.Body)
	case *bpel.Flow:
		var out []label.Label
		nullable := true
		for _, br := range t.Branches {
			f, n := b.firstOf(br)
			out = append(out, f...)
			nullable = nullable && n
		}
		return dedupLabels(out), nullable
	case *bpel.Switch:
		var out []label.Label
		nullable := t.Else == nil // fall-through when no case matches
		for _, c := range t.Cases {
			f, n := b.firstOf(c.Body)
			out = append(out, f...)
			nullable = nullable || n
		}
		if t.Else != nil {
			f, n := b.firstOf(t.Else)
			out = append(out, f...)
			nullable = nullable || n
		}
		return dedupLabels(out), nullable
	case *bpel.Pick:
		var out []label.Label
		for _, br := range t.Branches {
			out = append(out, label.New(br.Partner, b.owner, br.Op))
		}
		return dedupLabels(out), false
	case *bpel.While:
		f, _ := b.firstOf(t.Body)
		return f, !InfiniteCond(t.Cond) // zero iterations possible unless infinite
	}
	return nil, true
}

func (b *builder) firstOfList(acts []bpel.Activity) ([]label.Label, bool) {
	var out []label.Label
	for _, a := range acts {
		f, nullable := b.firstOf(a)
		out = append(out, f...)
		if !nullable {
			return dedupLabels(out), false
		}
	}
	return dedupLabels(out), true
}

func dedupLabels(in []label.Label) []label.Label {
	var out []label.Label
	seen := map[label.Label]bool{}
	for _, l := range in {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// InfiniteCond reports whether a while condition is the constant truth
// the paper uses for non-terminating loops ("1 = 1", "true").
func InfiniteCond(cond string) bool {
	c := strings.ToLower(strings.ReplaceAll(cond, " ", ""))
	return c == "1=1" || c == "true"
}
