package mapping

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/formula"
	"repro/internal/label"
)

func lbl(s string) label.Label { return label.MustParse(s) }

func derive(t *testing.T, p *bpel.Process) *Result {
	t.Helper()
	res, err := Derive(p, nil)
	if err != nil {
		t.Fatalf("Derive(%s): %v", p.Name, err)
	}
	if err := res.Automaton.Validate(); err != nil {
		t.Fatalf("derived automaton invalid: %v", err)
	}
	return res
}

func proc(owner string, body bpel.Activity) *bpel.Process {
	return &bpel.Process{Name: "test", Owner: owner, Body: body}
}

func TestDeriveSequenceOfMessages(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "r", Partner: "B", Op: "x"},
		&bpel.Invoke{BlockName: "i", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	a := res.Automaton
	if a.NumStates() != 3 {
		t.Fatalf("states = %d, want 3\n%s", a.NumStates(), a.DebugString())
	}
	if !a.Accepts([]label.Label{lbl("B#A#x"), lbl("A#B#y")}) {
		t.Fatalf("derived automaton rejects the conversation:\n%s", a.DebugString())
	}
	if a.Accepts([]label.Label{lbl("B#A#x")}) {
		t.Fatal("prefix accepted — final state set wrong")
	}
	if empty, _ := a.IsEmpty(); empty {
		t.Fatal("derived automaton empty")
	}
}

func TestDeriveSyncInvokeTwoTransitions(t *testing.T) {
	p := proc("A", &bpel.Invoke{BlockName: "i", Partner: "L", Op: "getStatusLOp", Sync: true})
	res := derive(t, p)
	if !res.Automaton.Accepts([]label.Label{lbl("A#L#getStatusLOp"), lbl("L#A#getStatusLOp")}) {
		t.Fatalf("sync invoke did not expand to request/response:\n%s", res.Automaton.DebugString())
	}
	if res.Automaton.NumStates() != 3 {
		t.Fatalf("states = %d, want 3", res.Automaton.NumStates())
	}
}

func TestDeriveReplyDirection(t *testing.T) {
	p := proc("L", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "r", Partner: "A", Op: "q"},
		&bpel.Reply{BlockName: "p", Partner: "A", Op: "q"},
	}})
	res := derive(t, p)
	if !res.Automaton.Accepts([]label.Label{lbl("A#L#q"), lbl("L#A#q")}) {
		t.Fatalf("reply direction wrong:\n%s", res.Automaton.DebugString())
	}
}

func TestDeriveInvisibleActivities(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Assign{BlockName: "a"},
		&bpel.Receive{BlockName: "r", Partner: "B", Op: "x"},
		&bpel.Empty{BlockName: "e"},
	}})
	res := derive(t, p)
	if res.Automaton.NumStates() != 2 {
		t.Fatalf("invisible activities created states: %d\n%s", res.Automaton.NumStates(), res.Automaton.DebugString())
	}
}

func TestDeriveSwitchAnnotation(t *testing.T) {
	// Internal choice between sending x and sending y: both mandatory.
	p := proc("A", &bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
		{Cond: "c1", Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
		{Cond: "c2", Body: &bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"}},
	}})
	res := derive(t, p)
	anno := res.Automaton.Annotation(res.Automaton.Start())
	want := formula.And(formula.Var("A#B#x"), formula.Var("A#B#y"))
	if !formula.Equal(anno, want) {
		t.Fatalf("switch annotation = %v, want %v", anno, want)
	}
}

func TestDerivePickNoAnnotation(t *testing.T) {
	// External choice: the partner decides; no mandatory annotation.
	p := proc("A", &bpel.Pick{BlockName: "pk", Branches: []bpel.OnMessage{
		{Partner: "B", Op: "x", Body: &bpel.Empty{BlockName: "e1"}},
		{Partner: "B", Op: "y", Body: &bpel.Empty{BlockName: "e2"}},
	}})
	res := derive(t, p)
	if !res.Automaton.Annotation(res.Automaton.Start()).IsTrue() {
		t.Fatalf("pick produced annotation %v", res.Automaton.Annotation(res.Automaton.Start()))
	}
	if !res.Automaton.Accepts([]label.Label{lbl("B#A#x")}) || !res.Automaton.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatal("pick branches not both accepted")
	}
}

func TestDeriveSwitchBranchesRejoin(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
			{Cond: "c1", Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
			{Cond: "c2", Body: &bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"}},
		}},
		&bpel.Invoke{BlockName: "iz", Partner: "B", Op: "z"},
	}})
	res := derive(t, p)
	for _, w := range [][]label.Label{
		{lbl("A#B#x"), lbl("A#B#z")},
		{lbl("A#B#y"), lbl("A#B#z")},
	} {
		if !res.Automaton.Accepts(w) {
			t.Fatalf("branches do not rejoin before z:\n%s", res.Automaton.DebugString())
		}
	}
}

func TestDeriveSwitchWithoutElseFallsThrough(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
			{Cond: "c1", Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
		}},
		&bpel.Invoke{BlockName: "iz", Partner: "B", Op: "z"},
	}})
	res := derive(t, p)
	if !res.Automaton.Accepts([]label.Label{lbl("A#B#z")}) {
		t.Fatal("switch without otherwise cannot fall through")
	}
	if !res.Automaton.Accepts([]label.Label{lbl("A#B#x"), lbl("A#B#z")}) {
		t.Fatal("switch case lost")
	}
}

func TestDeriveTerminateMakesFinal(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
		&bpel.Terminate{BlockName: "t"},
		// Unreachable tail.
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	if !res.Automaton.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("terminate did not finalize")
	}
	if res.Automaton.Alphabet().Has(lbl("A#B#y")) {
		t.Fatal("activities after terminate were derived")
	}
}

func TestDeriveFiniteWhile(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.While{BlockName: "w", Cond: "n < 3",
			Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	for _, w := range [][]label.Label{
		{lbl("A#B#y")},
		{lbl("A#B#x"), lbl("A#B#y")},
		{lbl("A#B#x"), lbl("A#B#x"), lbl("A#B#y")},
	} {
		if !res.Automaton.Accepts(w) {
			t.Fatalf("finite while rejects %v:\n%s", w, res.Automaton.DebugString())
		}
	}
	// Loop state: internal choice between iterating (x) and exiting (y).
	var found bool
	for q := 0; q < res.Automaton.NumStates(); q++ {
		anno := res.Automaton.Annotation(afsa.StateID(q))
		if formula.Equal(anno, formula.And(formula.Var("A#B#x"), formula.Var("A#B#y"))) {
			found = true
		}
	}
	if !found {
		t.Fatalf("while annotation missing:\n%s", res.Automaton.DebugString())
	}
}

func TestDeriveInfiniteWhileNeverExits(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.While{BlockName: "w", Cond: "1 = 1",
			Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}},
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	if res.Automaton.Alphabet().Has(lbl("A#B#y")) {
		t.Fatal("infinite while leaked into the continuation")
	}
	if got := len(res.Automaton.FinalStates()); got != 0 {
		t.Fatalf("infinite while produced %d final states", got)
	}
}

func TestDeriveFlowInterleaves(t *testing.T) {
	p := proc("A", &bpel.Flow{BlockName: "f", Branches: []bpel.Activity{
		&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
		&bpel.Receive{BlockName: "ry", Partner: "B", Op: "y"},
	}})
	res := derive(t, p)
	for _, w := range [][]label.Label{
		{lbl("A#B#x"), lbl("B#A#y")},
		{lbl("B#A#y"), lbl("A#B#x")},
	} {
		if !res.Automaton.Accepts(w) {
			t.Fatalf("flow rejects interleaving %v:\n%s", w, res.Automaton.DebugString())
		}
	}
	if res.Automaton.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("flow accepted before both branches completed")
	}
}

func TestDeriveFlowRejectsTerminate(t *testing.T) {
	p := proc("A", &bpel.Flow{BlockName: "f", Branches: []bpel.Activity{
		&bpel.Terminate{BlockName: "t"},
		&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
	}})
	if _, err := Derive(p, nil); err == nil {
		t.Fatal("terminate inside flow accepted")
	}
}

func TestDeriveScopeTransparent(t *testing.T) {
	p := proc("A", &bpel.Scope{BlockName: "sc",
		Body: &bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"}})
	res := derive(t, p)
	if !res.Automaton.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("scope broke derivation")
	}
}

func TestDeriveInvalidProcessRejected(t *testing.T) {
	p := proc("A", &bpel.Receive{BlockName: "r", Partner: "A", Op: "x"}) // partner == owner
	if _, err := Derive(p, nil); err == nil {
		t.Fatal("invalid process accepted")
	}
}

func TestTableBlocksAndString(t *testing.T) {
	p := proc("A", &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "r", Partner: "B", Op: "x"},
	}})
	res := derive(t, p)
	start := res.Automaton.Start()
	blocks := res.Table.Blocks(start)
	if len(blocks) == 0 || blocks[0] != ProcessRootElement {
		t.Fatalf("start blocks = %v, want leading %s", blocks, ProcessRootElement)
	}
	joined := res.Table.String()
	if joined == "" {
		t.Fatal("table renders empty")
	}
	if len(res.Table.Paths(start)) == 0 {
		t.Fatal("no paths for start state")
	}
}

func TestInfiniteCond(t *testing.T) {
	for _, c := range []string{"1 = 1", "1=1", "true", "TRUE", " 1 =1 "} {
		if !InfiniteCond(c) {
			t.Errorf("InfiniteCond(%q) = false", c)
		}
	}
	for _, c := range []string{"n < 3", "continue", ""} {
		if InfiniteCond(c) {
			t.Errorf("InfiniteCond(%q) = true", c)
		}
	}
}
