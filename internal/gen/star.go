package gen

import (
	"fmt"

	"repro/internal/bpel"
	"repro/internal/wsdl"
)

// Star is a hub-and-spokes choreography: one hub party talks to k
// partners in sequence (the shape of the paper's accounting
// department, which serves the buyer and drives the logistics
// department). All pairs are bilaterally consistent by construction.
type Star struct {
	// Hub is the central party's process.
	Hub *bpel.Process
	// Partners are the spoke processes, index-aligned with the
	// partner names.
	Partners []*bpel.Process
	// Registry registers every generated operation.
	Registry *wsdl.Registry
}

// StarParams controls star generation.
type StarParams struct {
	// HubName is the central party.
	HubName string
	// PartnerCount is the number of spokes (≥1).
	PartnerCount int
	// MessagesPerPartner sizes each bilateral conversation.
	MessagesPerPartner int
	// ChoiceProb and MaxBranch are as in Params.
	ChoiceProb int
	MaxBranch  int
}

// DefaultStarParams returns a 3-spoke star.
func DefaultStarParams() StarParams {
	return StarParams{HubName: "H", PartnerCount: 3, MessagesPerPartner: 6, ChoiceProb: 25, MaxBranch: 2}
}

// GenerateStar builds a hub process conversing with PartnerCount
// partners one after another, plus the matching partner processes.
func GenerateStar(seed int64, p StarParams) (*Star, error) {
	if p.HubName == "" {
		return nil, fmt.Errorf("gen: star needs a hub name")
	}
	if p.PartnerCount < 1 {
		return nil, fmt.Errorf("gen: star needs at least one partner")
	}
	if p.MessagesPerPartner < 1 {
		return nil, fmt.Errorf("gen: star needs at least one message per partner")
	}

	star := &Star{Registry: wsdl.NewRegistry()}
	hubSeq := &bpel.Sequence{BlockName: "hub process"}

	for i := 0; i < p.PartnerCount; i++ {
		partner := fmt.Sprintf("%s_p%d", p.HubName, i)
		conv, err := Generate(seed+int64(i)*7919, Params{
			PartyA:     p.HubName,
			PartyB:     partner,
			Messages:   p.MessagesPerPartner,
			MaxDepth:   2,
			ChoiceProb: p.ChoiceProb,
			MaxBranch:  p.MaxBranch,
		})
		if err != nil {
			return nil, err
		}
		// Merge the pair registry into the star registry. Operation
		// names are globally unique per pair because the partner name
		// is embedded in the owner; hub-owned ops need fresh names per
		// segment, so rename them.
		segment, partnerProc, err := renameOps(conv, i)
		if err != nil {
			return nil, err
		}
		// Realizability: the hub serves its partners sequentially, so
		// every segment starts with a hub-sent kickoff message — the
		// partner must not send before its turn.
		kickoff := fmt.Sprintf("s%d_kickoff", i)
		segBody := &bpel.Sequence{
			BlockName: fmt.Sprintf("seg%d body", i),
			Children: []bpel.Activity{
				&bpel.Invoke{BlockName: "kickoff", Partner: partner, Op: kickoff},
				segment.Body,
			},
		}
		partnerProc.Body = &bpel.Sequence{
			BlockName: "partner body",
			Children: []bpel.Activity{
				&bpel.Receive{BlockName: "kickoff", Partner: p.HubName, Op: kickoff},
				partnerProc.Body,
			},
		}
		if err := star.Registry.AddOperation(partner, kickoff, false); err != nil {
			return nil, err
		}
		if err := mergeRegistry(star.Registry, segment, partnerProc); err != nil {
			return nil, err
		}
		hubSeq.Children = append(hubSeq.Children, &bpel.Scope{
			BlockName: fmt.Sprintf("segment_%d", i),
			Body:      segBody,
		})
		star.Partners = append(star.Partners, partnerProc)
	}

	star.Hub = &bpel.Process{Name: "hub", Owner: p.HubName, Body: hubSeq}
	if err := star.Hub.Validate(star.Registry); err != nil {
		return nil, fmt.Errorf("gen: star hub invalid: %w", err)
	}
	for _, partner := range star.Partners {
		if err := partner.Validate(star.Registry); err != nil {
			return nil, fmt.Errorf("gen: star partner %q invalid: %w", partner.Owner, err)
		}
	}
	return star, nil
}

// renameOps prefixes every operation of the pair with its segment
// index so segments never collide, and renames the partner process.
func renameOps(conv *Conversation, segment int) (*bpel.Process, *bpel.Process, error) {
	prefix := fmt.Sprintf("s%d_", segment)
	rename := func(p *bpel.Process) (*bpel.Process, error) {
		return p.Transform(bpel.Path{bpel.Element(p.Body)}, func(a bpel.Activity) (bpel.Activity, error) {
			bpel.Walk(a, func(act bpel.Activity, _ bpel.Path) bool {
				switch t := act.(type) {
				case *bpel.Receive:
					t.Op = prefix + t.Op
				case *bpel.Reply:
					t.Op = prefix + t.Op
				case *bpel.Invoke:
					t.Op = prefix + t.Op
				case *bpel.Pick:
					for bi := range t.Branches {
						t.Branches[bi].Op = prefix + t.Branches[bi].Op
					}
				}
				return true
			})
			return a, nil
		})
	}
	hubSide, err := rename(conv.A)
	if err != nil {
		return nil, nil, err
	}
	partnerSide, err := rename(conv.B)
	if err != nil {
		return nil, nil, err
	}
	partnerSide.Name = "partner_" + conv.B.Owner
	return hubSide, partnerSide, nil
}

// mergeRegistry registers every operation the two processes use.
func mergeRegistry(reg *wsdl.Registry, procs ...*bpel.Process) error {
	var err error
	add := func(owner, op string) {
		if err != nil {
			return
		}
		if _, exists := reg.Lookup(owner, op); exists {
			return
		}
		err = reg.AddOperation(owner, op, false)
	}
	for _, p := range procs {
		owner := p.Owner
		bpel.Walk(p.Body, func(a bpel.Activity, _ bpel.Path) bool {
			switch t := a.(type) {
			case *bpel.Receive:
				add(owner, t.Op)
			case *bpel.Reply:
				add(owner, t.Op)
			case *bpel.Invoke:
				add(t.Partner, t.Op)
			case *bpel.Pick:
				for _, b := range t.Branches {
					add(owner, b.Op)
				}
			}
			return err == nil
		})
	}
	return err
}
