// Package gen generates synthetic workloads for the benchmarks and
// property tests: consistent-by-construction partner process pairs,
// random change operations, and random automata. It replaces the
// proprietary process models a production evaluation would use; all
// generation is seeded and deterministic.
//
// # Conversation projection
//
// A random *conversation tree* (sequences, messages with a direction,
// and choices owned by the party deciding them) is projected onto the
// two parties: a message becomes an invoke on the sender side and a
// receive on the other; a choice becomes a switch (internal choice)
// for its decider and a pick (external choice) for the partner. Every
// choice branch starts with a message sent by the decider, which makes
// the projection realizable and the resulting pair bilaterally
// consistent by construction — the generator's own tests verify this
// against afsa.Consistent and the runtime simulator.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/wsdl"
)

// Params controls conversation generation.
type Params struct {
	// PartyA and PartyB name the two participants.
	PartyA, PartyB string
	// Messages is the approximate number of message exchanges.
	Messages int
	// MaxDepth bounds choice nesting.
	MaxDepth int
	// ChoiceProb is the per-node probability (percent) of generating a
	// choice instead of a plain message.
	ChoiceProb int
	// MaxBranch bounds the branches of one choice.
	MaxBranch int
}

// DefaultParams returns a medium-sized workload.
func DefaultParams() Params {
	return Params{PartyA: "A", PartyB: "B", Messages: 12, MaxDepth: 3, ChoiceProb: 30, MaxBranch: 3}
}

// conversation tree node.
type conv struct {
	// seq: children executed in order (msg/choice leaves between them).
	seq []convStep
}

type convStep struct {
	// msg: op sent from -> to. choice == nil for message steps.
	op       string
	from, to string
	// choice: decider picks one branch; every branch starts with a
	// decider-sent message.
	decider  string
	branches []*conv
}

// Conversation is a generated two-party conversation with its
// projections.
type Conversation struct {
	Params Params
	// A and B are the projected private processes.
	A, B *bpel.Process
	// Registry registers every generated operation.
	Registry *wsdl.Registry
	// MessageCount is the number of distinct operations generated.
	MessageCount int
}

// Generate builds a random conversation and its two projections.
func Generate(seed int64, p Params) (*Conversation, error) {
	if p.PartyA == "" || p.PartyB == "" || p.PartyA == p.PartyB {
		return nil, fmt.Errorf("gen: invalid parties %q/%q", p.PartyA, p.PartyB)
	}
	if p.Messages <= 0 {
		return nil, fmt.Errorf("gen: need at least one message")
	}
	if p.MaxBranch < 2 {
		p.MaxBranch = 2
	}
	g := &generator{r: rand.New(rand.NewSource(seed)), p: p}
	tree := g.genConv(p.Messages, p.MaxDepth)
	reg := wsdl.NewRegistry()
	for i := 0; i < g.nextOp; i++ {
		owner := g.opOwner[i]
		if err := reg.AddOperation(owner, opName(i), false); err != nil {
			return nil, err
		}
	}
	procA := &bpel.Process{Name: "genA", Owner: p.PartyA, Body: g.project(tree, p.PartyA, "root")}
	procB := &bpel.Process{Name: "genB", Owner: p.PartyB, Body: g.project(tree, p.PartyB, "root")}
	if err := procA.Validate(reg); err != nil {
		return nil, fmt.Errorf("gen: projection A invalid: %w", err)
	}
	if err := procB.Validate(reg); err != nil {
		return nil, fmt.Errorf("gen: projection B invalid: %w", err)
	}
	return &Conversation{Params: p, A: procA, B: procB, Registry: reg, MessageCount: g.nextOp}, nil
}

// MustGenerate is Generate for benchmarks and fixtures.
func MustGenerate(seed int64, p Params) *Conversation {
	c, err := Generate(seed, p)
	if err != nil {
		panic(err)
	}
	return c
}

func opName(i int) string { return fmt.Sprintf("op%d", i) }

type generator struct {
	r       *rand.Rand
	p       Params
	nextOp  int
	opOwner map[int]string // op index -> receiving party (operation owner)
}

func (g *generator) newOp(receiver string) string {
	if g.opOwner == nil {
		g.opOwner = map[int]string{}
	}
	id := g.nextOp
	g.nextOp++
	g.opOwner[id] = receiver
	return opName(id)
}

func (g *generator) parties() (string, string) { return g.p.PartyA, g.p.PartyB }

func (g *generator) randParty() string {
	a, b := g.parties()
	if g.r.Intn(2) == 0 {
		return a
	}
	return b
}

func other(p Params, name string) string {
	if name == p.PartyA {
		return p.PartyB
	}
	return p.PartyA
}

// genConv builds a conversation with roughly budget messages.
func (g *generator) genConv(budget, depth int) *conv {
	c := &conv{}
	for budget > 0 {
		if depth > 0 && budget >= 3 && g.r.Intn(100) < g.p.ChoiceProb {
			branches := 2 + g.r.Intn(g.p.MaxBranch-1)
			decider := g.randParty()
			step := convStep{decider: decider}
			per := budget / branches
			if per < 1 {
				per = 1
			}
			for i := 0; i < branches; i++ {
				br := &conv{}
				// Every branch starts with a decider-sent message.
				to := other(g.p, decider)
				br.seq = append(br.seq, convStep{op: g.newOp(to), from: decider, to: to})
				sub := g.genConv(per-1, depth-1)
				br.seq = append(br.seq, sub.seq...)
				step.branches = append(step.branches, br)
			}
			c.seq = append(c.seq, step)
			budget -= per * branches
			if budget < 0 {
				budget = 0
			}
			continue
		}
		from := g.randParty()
		to := other(g.p, from)
		c.seq = append(c.seq, convStep{op: g.newOp(to), from: from, to: to})
		budget--
	}
	return c
}

// project renders the conversation from one party's perspective.
func (g *generator) project(c *conv, party, name string) bpel.Activity {
	seq := &bpel.Sequence{BlockName: name}
	for i, step := range c.seq {
		stepName := fmt.Sprintf("%s_%d", name, i)
		if step.branches == nil {
			if step.from == party {
				seq.Children = append(seq.Children, &bpel.Invoke{
					BlockName: "snd_" + step.op, Partner: step.to, Op: step.op,
				})
			} else {
				seq.Children = append(seq.Children, &bpel.Receive{
					BlockName: "rcv_" + step.op, Partner: step.from, Op: step.op,
				})
			}
			continue
		}
		if step.decider == party {
			// The last branch becomes the otherwise case: a switch
			// without otherwise could fall through, which the
			// partner's pick cannot mirror (it always waits for a
			// message) — the choice must be exhaustive.
			sw := &bpel.Switch{BlockName: "sw_" + stepName}
			last := len(step.branches) - 1
			for bi, br := range step.branches[:last] {
				sw.Cases = append(sw.Cases, bpel.Case{
					Cond: fmt.Sprintf("branch = %d", bi),
					Body: g.project(br, party, fmt.Sprintf("%s_b%d", stepName, bi)),
				})
			}
			sw.Else = g.project(step.branches[last], party, fmt.Sprintf("%s_b%d", stepName, last))
			seq.Children = append(seq.Children, sw)
		} else {
			pk := &bpel.Pick{BlockName: "pk_" + stepName}
			for bi, br := range step.branches {
				first := br.seq[0]
				rest := &conv{seq: br.seq[1:]}
				pk.Branches = append(pk.Branches, bpel.OnMessage{
					Partner: first.from,
					Op:      first.op,
					Body:    g.project(rest, party, fmt.Sprintf("%s_b%d", stepName, bi)),
				})
			}
			seq.Children = append(seq.Children, pk)
		}
	}
	if len(seq.Children) == 0 {
		seq.Children = append(seq.Children, &bpel.Empty{BlockName: name + "_empty"})
	}
	return seq
}

// RandomChange draws a random structural change for process p: an
// insertion of a new send or receive, the widening of a receive into a
// pick, or the deletion of a communication activity. The returned
// operation references a fresh operation name registered in reg.
func RandomChange(seed int64, p *bpel.Process, reg *wsdl.Registry) (change.Operation, error) {
	r := rand.New(rand.NewSource(seed))

	var commPaths []bpel.Path
	var receivePaths []bpel.Path
	bpel.Walk(p.Body, func(a bpel.Activity, path bpel.Path) bool {
		switch a.(type) {
		case *bpel.Receive:
			receivePaths = append(receivePaths, append(bpel.Path(nil), path...))
			commPaths = append(commPaths, append(bpel.Path(nil), path...))
		case *bpel.Invoke, *bpel.Reply:
			commPaths = append(commPaths, append(bpel.Path(nil), path...))
		}
		return true
	})
	if len(commPaths) == 0 {
		return nil, fmt.Errorf("gen: process %q has no communication activity to change", p.Name)
	}
	partners := p.Partners()
	partner := partners[r.Intn(len(partners))]
	freshOp := fmt.Sprintf("gen_%s_%d", p.Owner, r.Int63())

	switch r.Intn(3) {
	case 0: // insert a new send before a random activity
		if err := reg.AddOperation(partner, freshOp, false); err != nil {
			return nil, err
		}
		at := commPaths[r.Intn(len(commPaths))]
		return change.Insert{
			Path: at,
			New:  &bpel.Invoke{BlockName: "new_" + freshOp, Partner: partner, Op: freshOp},
		}, nil
	case 1: // widen a receive into a pick with a fresh alternative
		if len(receivePaths) > 0 {
			if err := reg.AddOperation(p.Owner, freshOp, false); err != nil {
				return nil, err
			}
			at := receivePaths[r.Intn(len(receivePaths))]
			return change.ReplaceReceiveWithPick{
				Path:  at,
				Extra: []bpel.OnMessage{{Partner: partner, Op: freshOp}},
			}, nil
		}
		fallthrough
	default: // delete a communication activity
		at := commPaths[r.Intn(len(commPaths))]
		return change.Delete{Path: at}, nil
	}
}
