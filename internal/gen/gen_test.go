package gen

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/mapping"
	"repro/internal/runtime"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, Params{PartyA: "A", PartyB: "A", Messages: 3}); err == nil {
		t.Fatal("equal parties accepted")
	}
	if _, err := Generate(1, Params{PartyA: "A", PartyB: "B"}); err == nil {
		t.Fatal("zero messages accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	c1 := MustGenerate(7, p)
	c2 := MustGenerate(7, p)
	if c1.A.String() != c2.A.String() || c1.B.String() != c2.B.String() {
		t.Fatal("generation not deterministic")
	}
	c3 := MustGenerate(8, p)
	if c1.A.String() == c3.A.String() {
		t.Fatal("different seeds produced identical processes")
	}
}

// TestGeneratedPairsConsistent is the generator's core guarantee: the
// projected pair is bilaterally consistent and deadlock-free for many
// seeds.
func TestGeneratedPairsConsistent(t *testing.T) {
	p := DefaultParams()
	for seed := int64(0); seed < 25; seed++ {
		c, err := Generate(seed, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ra, err := mapping.Derive(c.A, c.Registry)
		if err != nil {
			t.Fatalf("seed %d: derive A: %v", seed, err)
		}
		rb, err := mapping.Derive(c.B, c.Registry)
		if err != nil {
			t.Fatalf("seed %d: derive B: %v", seed, err)
		}
		ok, err := afsa.Consistent(ra.Automaton.View(p.PartyB), rb.Automaton.View(p.PartyA))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: generated pair inconsistent:\nA:\n%s\nB:\n%s",
				seed, ra.Automaton.DebugString(), rb.Automaton.DebugString())
		}
		sys, err := runtime.NewSystem(map[string]*afsa.Automaton{
			p.PartyA: ra.Automaton,
			p.PartyB: rb.Automaton,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := sys.Explore(1 << 16)
		if !res.DeadlockFree() {
			t.Fatalf("seed %d: generated pair deadlocks: %v", seed, res.Failures)
		}
	}
}

func TestGeneratedSizesScale(t *testing.T) {
	small := MustGenerate(1, Params{PartyA: "A", PartyB: "B", Messages: 4, MaxDepth: 1, ChoiceProb: 0, MaxBranch: 2})
	large := MustGenerate(1, Params{PartyA: "A", PartyB: "B", Messages: 40, MaxDepth: 3, ChoiceProb: 30, MaxBranch: 3})
	if small.A.CountActivities() >= large.A.CountActivities() {
		t.Fatalf("sizes do not scale: %d vs %d", small.A.CountActivities(), large.A.CountActivities())
	}
}

func TestRandomChangeAppliesAndDerives(t *testing.T) {
	p := DefaultParams()
	for seed := int64(0); seed < 20; seed++ {
		c := MustGenerate(seed, p)
		op, err := RandomChange(seed*31, c.A, c.Registry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		changed, err := op.Apply(c.A)
		if err != nil {
			t.Fatalf("seed %d: applying %s: %v", seed, op, err)
		}
		if _, err := mapping.Derive(changed, c.Registry); err != nil {
			t.Fatalf("seed %d: deriving changed process: %v", seed, err)
		}
	}
}

func TestRandomChangeNeedsComm(t *testing.T) {
	c := MustGenerate(1, DefaultParams())
	// A process without communication activities is rejected.
	bare := c.A.Clone()
	bare.Body = &bpel.Sequence{BlockName: "bare", Children: []bpel.Activity{&bpel.Empty{BlockName: "e"}}}
	if _, err := RandomChange(1, bare, c.Registry); err == nil {
		t.Fatal("change on comm-free process accepted")
	}
}
