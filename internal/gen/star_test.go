package gen

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/mapping"
	"repro/internal/runtime"
)

func TestGenerateStarValidation(t *testing.T) {
	if _, err := GenerateStar(1, StarParams{PartnerCount: 1, MessagesPerPartner: 1}); err == nil {
		t.Fatal("hubless star accepted")
	}
	if _, err := GenerateStar(1, StarParams{HubName: "H", MessagesPerPartner: 1}); err == nil {
		t.Fatal("partnerless star accepted")
	}
	if _, err := GenerateStar(1, StarParams{HubName: "H", PartnerCount: 1}); err == nil {
		t.Fatal("messageless star accepted")
	}
}

func TestGenerateStarConsistent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		star, err := GenerateStar(seed, DefaultStarParams())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hub, err := mapping.Derive(star.Hub, star.Registry)
		if err != nil {
			t.Fatalf("seed %d: hub: %v", seed, err)
		}
		parties := map[string]*afsa.Automaton{star.Hub.Owner: hub.Automaton}
		for _, partner := range star.Partners {
			res, err := mapping.Derive(partner, star.Registry)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, partner.Owner, err)
			}
			parties[partner.Owner] = res.Automaton
			ok, err := afsa.Consistent(
				hub.Automaton.View(partner.Owner),
				res.Automaton.View(star.Hub.Owner))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !ok {
				t.Fatalf("seed %d: hub inconsistent with %s", seed, partner.Owner)
			}
		}
		// The whole star executes without deadlock.
		sys, err := runtime.NewSystem(parties)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := sys.Explore(1 << 18)
		if !res.DeadlockFree() {
			t.Fatalf("seed %d: star deadlocks: %v", seed, res.Failures)
		}
		if res.Truncated {
			t.Fatalf("seed %d: exploration truncated", seed)
		}
	}
}

func TestGenerateStarSegmentsDisjoint(t *testing.T) {
	star, err := GenerateStar(3, DefaultStarParams())
	if err != nil {
		t.Fatal(err)
	}
	hub, err := mapping.Derive(star.Hub, star.Registry)
	if err != nil {
		t.Fatal(err)
	}
	// Each partner's view contains only its own labels.
	for _, partner := range star.Partners {
		view := hub.Automaton.View(partner.Owner)
		for l := range view.Alphabet() {
			if !l.Involves(partner.Owner) {
				t.Fatalf("view of %s leaks label %s", partner.Owner, l)
			}
		}
	}
}
