// Package instance implements the instance-migration extension the
// paper defers to future work (Sec. 8: "For long-running
// choreographies, in addition, change propagation to already running
// instances is highly desirable", referring to the ADEPT compliance
// criterion [10, 11, 12]).
//
// A running instance is represented by its execution trace — the
// message sequence observed so far. The ADEPT-style compliance
// criterion carries over to public processes directly: an instance can
// migrate to the changed public process iff its trace can be replayed
// on the new automaton and the reached state is viable (the remaining
// conversation can still complete under the mandatory annotations).
//
// The package offers the criterion at two granularities:
//
//   - Check classifies one instance against one candidate schema. It
//     is the ad-hoc entry point: it determinizes the candidate and
//     computes its viable-state set on every call.
//   - Checker front-loads that per-schema work once (NewChecker) and
//     then classifies any number of instances with a plain trace
//     replay — O(len(trace)) per instance, no allocation. Bulk sweeps
//     (Migrate here, the internal/migrate engine, the store's
//     MigrateAll) share one Checker per schema version, so a
//     10k-instance sweep pays for one determinization, not 10k.
//
// Checker is immutable after construction and safe for concurrent use
// from any number of goroutines, which is what makes the worker-pool
// sweep in internal/migrate embarrassingly parallel.
package instance

import (
	"fmt"
	"math/rand"

	"repro/internal/afsa"
	"repro/internal/label"
)

// Instance is one running conversation.
type Instance struct {
	ID    string
	Trace []label.Label
}

// Status classifies an instance against a new schema version.
type Status int

// Migration statuses.
const (
	// Migratable: the trace replays and the reached state is viable.
	Migratable Status = iota
	// NonReplayable: the trace is not a prefix of the new behavior.
	NonReplayable
	// Unviable: the trace replays but the reached state cannot
	// complete anymore (a mandatory alternative disappeared).
	Unviable
)

func (s Status) String() string {
	switch s {
	case Migratable:
		return "migratable"
	case NonReplayable:
		return "non-replayable"
	case Unviable:
		return "unviable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Checker classifies instances against one candidate schema. It holds
// the determinized automaton, a dense step table over its interned
// alphabet (afsa.Stepper) and its viable-state set, all computed once
// in NewChecker; Check is then a lock-free, allocation-free trace
// replay, safe for concurrent use.
type Checker struct {
	step   *afsa.Stepper
	viable []bool
}

// NewChecker prepares the compliance check against newPublic:
// determinize once, build the step table once, compute the viable
// states once.
func NewChecker(newPublic *afsa.Automaton) (*Checker, error) {
	d := newPublic.Determinize()
	viable, err := d.ViableStates()
	if err != nil {
		return nil, err
	}
	return &Checker{step: afsa.NewStepper(d), viable: viable}, nil
}

// Check classifies one instance: replay the trace on the determinized
// candidate and test viability of the reached state.
func (c *Checker) Check(inst Instance) Status {
	q := c.Start()
	for _, l := range inst.Trace {
		q = c.Step(q, l)
		if q == afsa.None {
			return NonReplayable
		}
	}
	return c.StatusAt(q)
}

// Incremental interface: streaming callers (the store's event-ingestion
// path) keep one StateID per running instance and advance it message by
// message instead of replaying the whole trace. The incremental answers
// agree with Check by construction: Check is written in terms of them.

// Start returns the replay start state (afsa.None when the candidate
// has no start state, in which case nothing replays).
func (c *Checker) Start() afsa.StateID { return c.step.Start() }

// Step advances one replay state by one observed message; afsa.None
// means the extended trace is not a prefix of the candidate behavior.
func (c *Checker) Step(q afsa.StateID, l label.Label) afsa.StateID {
	return c.step.Step(q, l)
}

// StepSym is Step for a pre-interned symbol — the allocation- and
// hash-free hot path. Symbols must come from the interner the candidate
// automaton was built on (the choreography's shared interner).
func (c *Checker) StepSym(q afsa.StateID, sym label.Symbol) afsa.StateID {
	return c.step.StepSym(q, sym)
}

// Symbol resolves a label through the checker's construction-time
// interner snapshot.
func (c *Checker) Symbol(l label.Label) (label.Symbol, bool) {
	return c.step.Symbol(l)
}

// StatusAt classifies a replay state: NonReplayable for afsa.None (the
// replay already failed), otherwise viable ⇒ Migratable, else Unviable.
func (c *Checker) StatusAt(q afsa.StateID) Status {
	if q == afsa.None || int(q) >= len(c.viable) {
		return NonReplayable
	}
	if !c.viable[q] {
		return Unviable
	}
	return Migratable
}

// Check classifies one instance against the new public process. It
// builds a throwaway Checker; classify batches through NewChecker
// instead.
func Check(inst Instance, newPublic *afsa.Automaton) (Status, error) {
	c, err := NewChecker(newPublic)
	if err != nil {
		return NonReplayable, err
	}
	return c.Check(inst), nil
}

// Report summarizes a migration of many instances.
type Report struct {
	Total         int
	Migratable    int
	NonReplayable int
	Unviable      int
	// Blocked lists the IDs that cannot migrate.
	Blocked []string
}

// MigratableFraction returns the fraction of instances that migrate.
func (r *Report) MigratableFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Migratable) / float64(r.Total)
}

// Migrate classifies every instance against the new schema, sharing
// one Checker across the batch.
func Migrate(instances []Instance, newPublic *afsa.Automaton) (*Report, error) {
	c, err := NewChecker(newPublic)
	if err != nil {
		return nil, err
	}
	return MigrateWith(instances, c), nil
}

// MigrateWith classifies every instance through an existing Checker —
// the entry point for callers that memoize the per-schema work (the
// store keeps one Checker per party version).
func MigrateWith(instances []Instance, c *Checker) *Report {
	rep := &Report{Total: len(instances)}
	for _, inst := range instances {
		switch c.Check(inst) {
		case Migratable:
			rep.Migratable++
		case NonReplayable:
			rep.NonReplayable++
			rep.Blocked = append(rep.Blocked, inst.ID)
		case Unviable:
			rep.Unviable++
			rep.Blocked = append(rep.Blocked, inst.ID)
		}
	}
	return rep
}

// SampleInstances draws n running instances of the old public process
// by seeded random walks of up to maxLen steps — the synthetic stand-in
// for a production instance database.
func SampleInstances(oldPublic *afsa.Automaton, seed int64, n, maxLen int) []Instance {
	d := oldPublic.Determinize()
	r := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		q := d.Start()
		var trace []label.Label
		steps := r.Intn(maxLen + 1)
		for s := 0; s < steps; s++ {
			ts := d.Transitions(q)
			if len(ts) == 0 {
				break
			}
			t := ts[r.Intn(len(ts))]
			trace = append(trace, t.Label)
			q = t.To
		}
		out = append(out, Instance{ID: fmt.Sprintf("inst-%d", i), Trace: trace})
	}
	return out
}
