// Package instance implements the instance-migration extension the
// paper defers to future work (Sec. 8: "For long-running
// choreographies, in addition, change propagation to already running
// instances is highly desirable", referring to the ADEPT compliance
// criterion [10, 11, 12]).
//
// A running instance is represented by its execution trace — the
// message sequence observed so far. The ADEPT-style compliance
// criterion carries over to public processes directly: an instance can
// migrate to the changed public process iff its trace can be replayed
// on the new automaton and the reached state is viable (the remaining
// conversation can still complete under the mandatory annotations).
package instance

import (
	"fmt"
	"math/rand"

	"repro/internal/afsa"
	"repro/internal/label"
)

// Instance is one running conversation.
type Instance struct {
	ID    string
	Trace []label.Label
}

// Status classifies an instance against a new schema version.
type Status int

// Migration statuses.
const (
	// Migratable: the trace replays and the reached state is viable.
	Migratable Status = iota
	// NonReplayable: the trace is not a prefix of the new behavior.
	NonReplayable
	// Unviable: the trace replays but the reached state cannot
	// complete anymore (a mandatory alternative disappeared).
	Unviable
)

func (s Status) String() string {
	switch s {
	case Migratable:
		return "migratable"
	case NonReplayable:
		return "non-replayable"
	case Unviable:
		return "unviable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Check classifies one instance against the new public process.
func Check(inst Instance, newPublic *afsa.Automaton) (Status, error) {
	d := newPublic.Determinize()
	viable, err := d.ViableStates()
	if err != nil {
		return NonReplayable, err
	}
	q := d.Start()
	if q == afsa.None {
		return NonReplayable, nil
	}
	for _, l := range inst.Trace {
		next := d.Step(q, l)
		if len(next) == 0 {
			return NonReplayable, nil
		}
		q = next[0]
	}
	if !viable[q] {
		return Unviable, nil
	}
	return Migratable, nil
}

// Report summarizes a migration of many instances.
type Report struct {
	Total         int
	Migratable    int
	NonReplayable int
	Unviable      int
	// Blocked lists the IDs that cannot migrate.
	Blocked []string
}

// MigratableFraction returns the fraction of instances that migrate.
func (r *Report) MigratableFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Migratable) / float64(r.Total)
}

// Migrate classifies every instance against the new schema.
func Migrate(instances []Instance, newPublic *afsa.Automaton) (*Report, error) {
	rep := &Report{Total: len(instances)}
	for _, inst := range instances {
		st, err := Check(inst, newPublic)
		if err != nil {
			return nil, fmt.Errorf("instance %q: %w", inst.ID, err)
		}
		switch st {
		case Migratable:
			rep.Migratable++
		case NonReplayable:
			rep.NonReplayable++
			rep.Blocked = append(rep.Blocked, inst.ID)
		case Unviable:
			rep.Unviable++
			rep.Blocked = append(rep.Blocked, inst.ID)
		}
	}
	return rep, nil
}

// SampleInstances draws n running instances of the old public process
// by seeded random walks of up to maxLen steps — the synthetic stand-in
// for a production instance database.
func SampleInstances(oldPublic *afsa.Automaton, seed int64, n, maxLen int) []Instance {
	d := oldPublic.Determinize()
	r := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		q := d.Start()
		var trace []label.Label
		steps := r.Intn(maxLen + 1)
		for s := 0; s < steps; s++ {
			ts := d.Transitions(q)
			if len(ts) == 0 {
				break
			}
			t := ts[r.Intn(len(ts))]
			trace = append(trace, t.Label)
			q = t.To
		}
		out = append(out, Instance{ID: fmt.Sprintf("inst-%d", i), Trace: trace})
	}
	return out
}
