package instance

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func word(labels ...string) []label.Label {
	out := make([]label.Label, len(labels))
	for i, s := range labels {
		out[i] = label.MustParse(s)
	}
	return out
}

// boundedBuyerPublic derives the buyer public process after the
// subtractive propagation (paper Fig. 18) — the realistic migration
// target for running buyer instances.
func boundedBuyerPublic(t *testing.T) *afsa.Automaton {
	t.Helper()
	res, err := mapping.Derive(paperrepro.Fig18BuyerProcess(), paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	return res.Automaton
}

func TestCheckStatuses(t *testing.T) {
	reg := paperrepro.Registry()
	oldRes, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	newPublic := boundedBuyerPublic(t)

	// Fresh instance: migratable.
	st, err := Check(Instance{ID: "fresh"}, newPublic)
	if err != nil {
		t.Fatal(err)
	}
	if st != Migratable {
		t.Fatalf("fresh = %v", st)
	}

	// One round executed: still replayable on the bounded schema.
	oneRound := Instance{ID: "one", Trace: word(
		"B#A#orderOp", "A#B#deliveryOp", "B#A#getStatusOp", "A#B#statusOp")}
	st, err = Check(oneRound, newPublic)
	if err != nil {
		t.Fatal(err)
	}
	if st != Migratable {
		t.Fatalf("one round = %v, want migratable", st)
	}

	// Two rounds executed: not replayable on the bounded schema.
	twoRounds := Instance{ID: "two", Trace: word(
		"B#A#orderOp", "A#B#deliveryOp",
		"B#A#getStatusOp", "A#B#statusOp",
		"B#A#getStatusOp", "A#B#statusOp")}
	st, err = Check(twoRounds, newPublic)
	if err != nil {
		t.Fatal(err)
	}
	if st != NonReplayable {
		t.Fatalf("two rounds = %v, want non-replayable", st)
	}

	// Any old-schema instance migrates to the old schema itself.
	st, err = Check(oneRound, oldRes.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	if st != Migratable {
		t.Fatalf("self-migration = %v", st)
	}
	for _, s := range []Status{Migratable, NonReplayable, Unviable, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

// TestCheckUnviable exercises the third status: the trace replays but
// the reached state carries a mandatory annotation that can no longer
// be satisfied.
func TestCheckUnviable(t *testing.T) {
	a := afsa.New("partial")
	q0 := a.AddState()
	q1 := a.AddState() // reached by x; mandates y AND z, z missing
	q2 := a.AddState()
	q3 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q2, true)
	a.SetFinal(q3, true)
	a.AddTransition(q0, label.New("A", "B", "a"), q3)
	a.AddTransition(q0, label.New("A", "B", "x"), q1)
	a.AddTransition(q1, label.New("A", "B", "y"), q2)
	a.Annotate(q1, formula.And(formula.Var("A#B#y"), formula.Var("A#B#z")))

	if st, err := Check(Instance{ID: "fresh"}, a); err != nil || st != Migratable {
		t.Fatalf("fresh = %v, %v", st, err)
	}
	st, err := Check(Instance{ID: "x", Trace: word("A#B#x")}, a)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unviable {
		t.Fatalf("trace into dead annotation = %v, want unviable", st)
	}
}

func TestCheckErrorOnNegativeAnnotation(t *testing.T) {
	a := afsa.New("neg")
	q := a.AddState()
	a.SetStart(q)
	a.SetFinal(q, true)
	a.Annotate(q, formula.Not(formula.Var("A#B#x")))
	if _, err := Check(Instance{ID: "i"}, a); err == nil {
		t.Fatal("negative annotation accepted")
	}
}

func TestMigrateReport(t *testing.T) {
	reg := paperrepro.Registry()
	oldRes, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	newPublic := boundedBuyerPublic(t)
	instances := SampleInstances(oldRes.Automaton, 11, 200, 10)
	if len(instances) != 200 {
		t.Fatalf("sampled %d instances", len(instances))
	}
	rep, err := Migrate(instances, newPublic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 200 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.Migratable == 0 {
		t.Fatal("no instance migratable — short traces must migrate")
	}
	if rep.NonReplayable == 0 {
		t.Fatal("no instance non-replayable — multi-round traces must block")
	}
	if rep.Migratable+rep.NonReplayable+rep.Unviable != rep.Total {
		t.Fatal("report does not add up")
	}
	if len(rep.Blocked) != rep.NonReplayable+rep.Unviable {
		t.Fatal("blocked list inconsistent")
	}
	f := rep.MigratableFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("migratable fraction = %v, want in (0,1)", f)
	}
	empty := &Report{}
	if empty.MigratableFraction() != 0 {
		t.Fatal("empty report fraction wrong")
	}
}

func TestSampleInstancesDeterministic(t *testing.T) {
	reg := paperrepro.Registry()
	oldRes, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	a := SampleInstances(oldRes.Automaton, 5, 20, 8)
	b := SampleInstances(oldRes.Automaton, 5, 20, 8)
	for i := range a {
		if len(a[i].Trace) != len(b[i].Trace) {
			t.Fatal("sampling not deterministic")
		}
	}
}

// TestInvariantChangeMigratesEverything: after the invariant order_2
// change nothing the partners ever did becomes illegal, so every
// running instance migrates (the instance-level counterpart of
// "no propagation necessary").
func TestInvariantChangeMigratesEverything(t *testing.T) {
	reg := paperrepro.Registry()
	oldRes, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := paperrepro.OrderTwoChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := mapping.Derive(changed, reg)
	if err != nil {
		t.Fatal(err)
	}
	instances := SampleInstances(oldRes.Automaton, 3, 200, 10)
	rep, err := Migrate(instances, newRes.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migratable != rep.Total {
		t.Fatalf("invariant change blocked %d instances", rep.Total-rep.Migratable)
	}
}
