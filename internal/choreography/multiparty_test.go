package choreography

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/label"
	"repro/internal/paperrepro"
)

// evolvedScenario builds the choreography *after* the Sec. 5.2 cancel
// evolution: accounting has the credit-check/cancel switch and the
// buyer has the Fig. 14 pick — the state from which the multi-partner
// reverse propagation below starts.
func evolvedScenario(t *testing.T) *Choreography {
	t.Helper()
	c := New(paperrepro.Registry())
	changedAcc, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*bpel.Process{paperrepro.Fig14BuyerProcess(), changedAcc, paperrepro.LogisticsProcess()} {
		if err := c.AddParty(p); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("evolved scenario inconsistent:\n%s", rep)
	}
	return c
}

// TestMultiPartnerSubtractivePropagation exercises propagation onto a
// partner that talks to *more* parties than the change originator: the
// buyer reverts its cancel support (a variant subtractive change from
// the accounting perspective), and the plan against the three-party
// accounting process must go through the foreign-label lift so the
// logistics conversation stays unconstrained.
func TestMultiPartnerSubtractivePropagation(t *testing.T) {
	c := evolvedScenario(t)

	// The buyer narrows its pick back to a plain delivery receive.
	revert := change.Replace{
		Path: bpel.Path{"Sequence:buyer process", "Pick:delivery or cancel"},
		New:  &bpel.Receive{BlockName: "delivery", Partner: paperrepro.Accounting, Op: "deliveryOp"},
	}
	rep, err := c.Evolve(paperrepro.Buyer, revert)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PublicChanged {
		t.Fatal("revert did not change the buyer public process")
	}
	var acc PartnerImpact
	for _, im := range rep.Impacts {
		if im.Partner == paperrepro.Accounting {
			acc = im
		}
	}
	if !acc.ViewChanged {
		t.Fatal("accounting view unchanged")
	}
	if acc.Classification.Kind != core.KindSubtractive {
		t.Fatalf("kind = %v, want subtractive", acc.Classification.Kind)
	}
	// The accounting switch mandates the cancel alternative: variant.
	if acc.Classification.Scope != core.ScopeVariant {
		t.Fatalf("scope = %v, want variant", acc.Classification.Scope)
	}
	if len(acc.Plans) != 1 {
		t.Fatalf("plans = %d", len(acc.Plans))
	}
	plan := acc.Plans[0]

	// The adapted accounting public must still contain the logistics
	// conversation (the lift keeps foreign labels unconstrained).
	foreignPreserved := false
	for l := range plan.NewPartnerPublic.Alphabet() {
		if l.Involves(paperrepro.Logistics) {
			foreignPreserved = true
		}
	}
	if !foreignPreserved {
		t.Fatalf("lifted subtractive plan dropped the logistics conversation:\n%s",
			plan.NewPartnerPublic.DebugString())
	}
	// ...but no longer the cancel message.
	if plan.NewPartnerPublic.Alphabet().Has(lbl("A#B#cancelOp")) {
		t.Fatalf("cancel behavior survived the subtractive plan:\n%s", plan.NewPartnerPublic.DebugString())
	}

	// A hint names the cancel message as removed.
	foundCancel := false
	for _, h := range plan.Hints {
		if h.Label == lbl("A#B#cancelOp") && !h.Added {
			foundCancel = true
		}
	}
	if !foundCancel {
		t.Fatalf("hints = %v, want removed A#B#cancelOp", plan.Hints)
	}

	// The suggestion engine proposes dropping the cancel-sending
	// activity; applying it restores consistency.
	ops := ExecutableSuggestions(acc.Suggestions)
	if len(ops) == 0 {
		t.Fatalf("no executable suggestions: %v", acc.Suggestions)
	}
	newAcc, res, err := c.AdaptPartner(paperrepro.Accounting, ops)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := afsa.Consistent(acc.NewView, res.Automaton.View(paperrepro.Buyer))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("accounting still inconsistent after adaptation:\n%s", res.Automaton.DebugString())
	}

	// Commit and verify the whole choreography, including the
	// untouched logistics pair.
	if err := c.Commit(rep); err != nil {
		t.Fatal(err)
	}
	if err := c.CommitParty(newAcc); err != nil {
		t.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent() {
		t.Fatalf("choreography broken after reverse propagation:\n%s", check)
	}
}

func lbl(s string) label.Label { return label.MustParse(s) }

// TestStarChoreographyEvolution runs the full evolution flow on a
// generated hub-and-spokes choreography: a variant change in one
// segment impacts exactly the partner of that segment.
func TestStarChoreographyEvolution(t *testing.T) {
	star, err := gen.GenerateStar(4, gen.DefaultStarParams())
	if err != nil {
		t.Fatal(err)
	}
	c := New(star.Registry)
	if err := c.AddParty(star.Hub); err != nil {
		t.Fatal(err)
	}
	for _, partner := range star.Partners {
		if err := c.AddParty(partner); err != nil {
			t.Fatal(err)
		}
	}
	check, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent() {
		t.Fatalf("star inconsistent:\n%s", check)
	}

	// Delete the last partner's kickoff from the hub: a variant change
	// for that partner only (it waits for the kickoff forever).
	last := len(star.Partners) - 1
	kickoffPath, err := star.Hub.FindFirst(func(a bpel.Activity) bool {
		inv, ok := a.(*bpel.Invoke)
		return ok && inv.Partner == star.Partners[last].Owner && inv.BlockName == "kickoff"
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Evolve(star.Hub.Owner, change.Delete{Path: kickoffPath})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PublicChanged {
		t.Fatal("kickoff removal invisible")
	}
	affected := 0
	for _, im := range rep.Impacts {
		if !im.ViewChanged {
			continue
		}
		affected++
		if im.Partner != star.Partners[last].Owner {
			t.Fatalf("unexpected impact on %s", im.Partner)
		}
		if im.Classification.Scope != core.ScopeVariant {
			t.Fatalf("scope = %v, want variant", im.Classification.Scope)
		}
	}
	if affected != 1 {
		t.Fatalf("affected partners = %d, want 1", affected)
	}
}
