// Package choreography ties the framework together: it holds the
// parties of a process choreography (private BPEL processes plus the
// derived public aFSAs and mapping tables) and drives the controlled
// evolution flow of paper Fig. 4:
//
//	change private process → re-derive public view → consistency
//	check against each partner → (if variant) propagation plan and
//	suggested partner adaptations → partner applies and re-derives →
//	re-check.
//
// Evolve is pure analysis: it never mutates the choreography. Commit
// and CommitParty apply the originator's change and the partners'
// adaptations explicitly, honoring partner autonomy (Sec. 3.1).
package choreography

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/wsdl"
)

// Party is one participant: its private process and the derived
// public process with mapping table.
type Party struct {
	Name    string
	Private *bpel.Process
	Public  *afsa.Automaton
	Table   mapping.Table
}

// Choreography is a set of parties exchanging messages through their
// public processes.
type Choreography struct {
	reg     *wsdl.Registry
	parties map[string]*Party
	order   []string
}

// New returns an empty choreography validating against reg (which may
// be nil).
func New(reg *wsdl.Registry) *Choreography {
	return &Choreography{reg: reg, parties: map[string]*Party{}}
}

// Registry returns the WSDL registry.
func (c *Choreography) Registry() *wsdl.Registry { return c.reg }

// AddParty derives the public process of p and registers the party
// under p.Owner.
func (c *Choreography) AddParty(p *bpel.Process) error {
	if p == nil {
		return fmt.Errorf("choreography: nil process")
	}
	if _, dup := c.parties[p.Owner]; dup {
		return fmt.Errorf("choreography: party %q already present", p.Owner)
	}
	res, err := mapping.Derive(p, c.reg)
	if err != nil {
		return err
	}
	c.parties[p.Owner] = &Party{Name: p.Owner, Private: p.Clone(), Public: res.Automaton, Table: res.Table}
	c.order = append(c.order, p.Owner)
	return nil
}

// Party returns a registered party.
func (c *Choreography) Party(name string) (*Party, bool) {
	p, ok := c.parties[name]
	return p, ok
}

// Parties returns the party names in registration order.
func (c *Choreography) Parties() []string {
	return append([]string(nil), c.order...)
}

// View returns τ_forParty(of's public process): the bilateral view the
// partner forParty has on party of (Sec. 3.4).
func (c *Choreography) View(of, forParty string) (*afsa.Automaton, error) {
	p, ok := c.parties[of]
	if !ok {
		return nil, fmt.Errorf("choreography: unknown party %q", of)
	}
	return p.Public.View(forParty), nil
}

// InteractingPairs returns the party pairs that exchange at least one
// message, in deterministic order.
func (c *Choreography) InteractingPairs() [][2]string {
	var out [][2]string
	for i := 0; i < len(c.order); i++ {
		for j := i + 1; j < len(c.order); j++ {
			a, b := c.order[i], c.order[j]
			if c.interacts(a, b) {
				out = append(out, [2]string{a, b})
			}
		}
	}
	return out
}

func (c *Choreography) interacts(a, b string) bool {
	for l := range c.parties[a].Public.Alphabet() {
		if l.Between(a, b) {
			return true
		}
	}
	for l := range c.parties[b].Public.Alphabet() {
		if l.Between(a, b) {
			return true
		}
	}
	return false
}

// PairConsistent checks bilateral consistency of two parties: the
// intersection of their mutual views is annotated-non-empty
// (Sec. 3.2).
func (c *Choreography) PairConsistent(a, b string) (bool, error) {
	pa, ok := c.parties[a]
	if !ok {
		return false, fmt.Errorf("choreography: unknown party %q", a)
	}
	pb, ok := c.parties[b]
	if !ok {
		return false, fmt.Errorf("choreography: unknown party %q", b)
	}
	return afsa.Consistent(pa.Public.View(b), pb.Public.View(a))
}

// PairReport is the consistency status of one interacting pair.
type PairReport struct {
	A, B       string
	Consistent bool
}

// ConsistencyReport is the result of checking every interacting pair.
type ConsistencyReport struct {
	Pairs []PairReport
}

// Consistent reports whether every pair is consistent.
func (r *ConsistencyReport) Consistent() bool {
	for _, p := range r.Pairs {
		if !p.Consistent {
			return false
		}
	}
	return true
}

func (r *ConsistencyReport) String() string {
	var b strings.Builder
	for _, p := range r.Pairs {
		status := "consistent"
		if !p.Consistent {
			status = "INCONSISTENT"
		}
		fmt.Fprintf(&b, "%s ↔ %s: %s\n", p.A, p.B, status)
	}
	return b.String()
}

// Check verifies bilateral consistency of every interacting pair —
// the paper's global criterion is pairwise (bilateral) consistency.
func (c *Choreography) Check() (*ConsistencyReport, error) {
	rep := &ConsistencyReport{}
	for _, pair := range c.InteractingPairs() {
		ok, err := c.PairConsistent(pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		rep.Pairs = append(rep.Pairs, PairReport{A: pair[0], B: pair[1], Consistent: ok})
	}
	return rep, nil
}

// PartnerImpact describes the effect of a change on one partner.
type PartnerImpact struct {
	Partner string
	// ViewChanged reports whether the partner's view of the
	// originator changed at all; when false nothing else is set
	// ("change effects can be kept local", Sec. 3.1).
	ViewChanged bool
	// Classification is the two-dimensional classification of the
	// view change (Defs. 5/6).
	Classification core.Classification
	// OldView/NewView are the partner's views of the originator's
	// public process before and after the change.
	OldView, NewView *afsa.Automaton
	// Plans are the propagation plans (nil for invariant changes).
	Plans []*core.Plan
	// Suggestions are ready-to-review private adaptations per plan.
	Suggestions []core.Suggestion
}

// EvolutionReport is the outcome of analyzing one private-process
// change (paper Fig. 4).
type EvolutionReport struct {
	Party      string
	Op         change.Operation
	NewPrivate *bpel.Process
	OldPublic  *afsa.Automaton
	NewPublic  *afsa.Automaton
	NewTable   mapping.Table
	// PublicChanged reports whether the public process changed at all.
	PublicChanged bool
	Impacts       []PartnerImpact
}

// NeedsPropagation reports whether any partner requires propagation
// (some impact is variant).
func (r *EvolutionReport) NeedsPropagation() bool {
	for _, im := range r.Impacts {
		if im.ViewChanged && im.Classification.Scope == core.ScopeVariant {
			return true
		}
	}
	return false
}

// Evolve analyzes the application of op to party's private process
// without mutating the choreography: it recreates the public view,
// classifies the change per partner (Defs. 5/6) and, for variant
// changes, computes propagation plans and adaptation suggestions
// (Secs. 5.1–5.3).
func (c *Choreography) Evolve(party string, op change.Operation) (*EvolutionReport, error) {
	originator, ok := c.parties[party]
	if !ok {
		return nil, fmt.Errorf("choreography: unknown party %q", party)
	}
	newPrivate, err := op.Apply(originator.Private)
	if err != nil {
		return nil, fmt.Errorf("choreography: applying %s: %w", op, err)
	}
	res, err := mapping.Derive(newPrivate, c.reg)
	if err != nil {
		return nil, fmt.Errorf("choreography: deriving changed public process: %w", err)
	}
	report := &EvolutionReport{
		Party:      party,
		Op:         op,
		NewPrivate: newPrivate,
		OldPublic:  originator.Public,
		NewPublic:  res.Automaton,
		NewTable:   res.Table,
	}
	report.PublicChanged = !afsa.Equivalent(originator.Public, res.Automaton)
	if !report.PublicChanged {
		return report, nil
	}

	for _, partnerName := range c.partnersOf(party) {
		partner := c.parties[partnerName]
		impact := PartnerImpact{Partner: partnerName}
		impact.OldView = originator.Public.View(partnerName)
		impact.NewView = res.Automaton.View(partnerName)
		impact.ViewChanged = !afsa.Equivalent(impact.OldView, impact.NewView)
		if !impact.ViewChanged {
			report.Impacts = append(report.Impacts, impact)
			continue
		}
		partnerView := partner.Public.View(party)
		impact.Classification, err = core.Classify(impact.OldView, impact.NewView, partnerView)
		if err != nil {
			return nil, err
		}
		if impact.Classification.Scope == core.ScopeVariant {
			plans, suggestions, err := c.planPropagation(party, partner, impact)
			if err != nil {
				return nil, err
			}
			impact.Plans = plans
			impact.Suggestions = suggestions
		}
		report.Impacts = append(report.Impacts, impact)
	}
	return report, nil
}

// planPropagation runs steps 1–3 of Secs. 5.2/5.3 against a partner,
// using the partner's *full* public process so the hints stay in the
// mapping table's state space. For subtractive planning the new view
// is lifted over the partner's foreign labels (conversations with
// third parties are unconstrained by this change).
func (c *Choreography) planPropagation(party string, partner *Party, impact PartnerImpact) ([]*core.Plan, []core.Suggestion, error) {
	foreign := label.NewSet()
	for l := range partner.Public.Alphabet() {
		if !l.Involves(party) {
			foreign.Add(l)
		}
	}
	var plans []*core.Plan
	if impact.Classification.Kind.Additive() {
		p, err := core.PlanAdditive(impact.NewView, partner.Public, partner.Table)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
	}
	if impact.Classification.Kind.Subtractive() {
		view := impact.NewView
		if len(foreign) > 0 {
			view = core.LiftForeign(view, foreign)
		}
		p, err := core.PlanSubtractive(view, partner.Public, partner.Table)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
	}
	sugg := &core.Suggester{Private: partner.Private, Registry: c.reg}
	var suggestions []core.Suggestion
	for _, p := range plans {
		suggestions = append(suggestions, sugg.Suggest(p)...)
	}
	return plans, suggestions, nil
}

// partnersOf returns the parties that exchange messages with party.
func (c *Choreography) partnersOf(party string) []string {
	seen := map[string]bool{}
	p := c.parties[party]
	for l := range p.Public.Alphabet() {
		for _, other := range [2]string{l.Sender(), l.Receiver()} {
			if other != party && other != "" {
				seen[other] = true
			}
		}
	}
	var out []string
	for name := range seen {
		if _, registered := c.parties[name]; registered {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Commit applies an analyzed evolution to the originator party.
func (c *Choreography) Commit(report *EvolutionReport) error {
	p, ok := c.parties[report.Party]
	if !ok {
		return fmt.Errorf("choreography: unknown party %q", report.Party)
	}
	p.Private = report.NewPrivate.Clone()
	p.Public = report.NewPublic
	p.Table = report.NewTable
	return nil
}

// AdaptPartner applies adaptation operations to a partner's private
// process and returns the re-derived candidate (step 4 of
// Secs. 5.2/5.3) without committing it.
func (c *Choreography) AdaptPartner(partner string, ops []change.Operation) (*bpel.Process, *mapping.Result, error) {
	p, ok := c.parties[partner]
	if !ok {
		return nil, nil, fmt.Errorf("choreography: unknown party %q", partner)
	}
	cur := p.Private
	for _, op := range ops {
		next, err := op.Apply(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("choreography: adapting %s with %s: %w", partner, op, err)
		}
		cur = next
	}
	res, err := mapping.Derive(cur, c.reg)
	if err != nil {
		return nil, nil, fmt.Errorf("choreography: re-deriving %s: %w", partner, err)
	}
	return cur, res, nil
}

// CommitParty replaces a party's private process (re-deriving its
// public process). Used to commit partner adaptations.
func (c *Choreography) CommitParty(process *bpel.Process) error {
	p, ok := c.parties[process.Owner]
	if !ok {
		return fmt.Errorf("choreography: unknown party %q", process.Owner)
	}
	res, err := mapping.Derive(process, c.reg)
	if err != nil {
		return err
	}
	p.Private = process.Clone()
	p.Public = res.Automaton
	p.Table = res.Table
	return nil
}

// ExecutableSuggestions filters the suggestions that carry a ready
// operation.
func ExecutableSuggestions(suggestions []core.Suggestion) []change.Operation {
	var ops []change.Operation
	for _, s := range suggestions {
		if s.Op != nil {
			ops = append(ops, s.Op)
		}
	}
	return ops
}
