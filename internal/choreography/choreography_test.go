package choreography

import (
	"strings"
	"testing"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/wsdl"
)

// twoParty builds a minimal consistent two-party choreography:
// A receives ping from B and answers with pong.
func twoParty(t *testing.T) *Choreography {
	t.Helper()
	reg := wsdl.NewRegistry()
	for _, op := range []struct {
		party string
		name  string
	}{{"A", "pingOp"}, {"B", "pongOp"}} {
		if err := reg.AddOperation(op.party, op.name, false); err != nil {
			t.Fatal(err)
		}
	}
	c := New(reg)
	a := &bpel.Process{Name: "server", Owner: "A", Body: &bpel.Sequence{BlockName: "srv", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
		&bpel.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
	}}}
	b := &bpel.Process{Name: "client", Owner: "B", Body: &bpel.Sequence{BlockName: "cli", Children: []bpel.Activity{
		&bpel.Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
		&bpel.Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
	}}}
	for _, p := range []*bpel.Process{a, b} {
		if err := c.AddParty(p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddPartyErrors(t *testing.T) {
	c := New(nil)
	if err := c.AddParty(nil); err == nil {
		t.Fatal("nil process accepted")
	}
	p := &bpel.Process{Name: "x", Owner: "A", Body: &bpel.Empty{BlockName: "e"}}
	if err := c.AddParty(p); err != nil {
		t.Fatal(err)
	}
	if err := c.AddParty(p); err == nil {
		t.Fatal("duplicate party accepted")
	}
	if err := c.AddParty(&bpel.Process{Name: "bad", Owner: "C"}); err == nil {
		t.Fatal("invalid process accepted")
	}
}

func TestPartiesAndViews(t *testing.T) {
	c := twoParty(t)
	if got := c.Parties(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Parties = %v", got)
	}
	if _, ok := c.Party("A"); !ok {
		t.Fatal("party A missing")
	}
	if _, ok := c.Party("Z"); ok {
		t.Fatal("phantom party found")
	}
	v, err := c.View("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if v.NumStates() == 0 {
		t.Fatal("empty view")
	}
	if _, err := c.View("Z", "B"); err == nil {
		t.Fatal("view of unknown party accepted")
	}
}

func TestInteractingPairsAndCheck(t *testing.T) {
	c := twoParty(t)
	pairs := c.InteractingPairs()
	if len(pairs) != 1 || pairs[0] != [2]string{"A", "B"} {
		t.Fatalf("pairs = %v", pairs)
	}
	rep, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("ping/pong inconsistent:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "consistent") {
		t.Fatal("report rendering wrong")
	}
	if ok, _ := c.PairConsistent("A", "B"); !ok {
		t.Fatal("PairConsistent wrong")
	}
	if _, err := c.PairConsistent("A", "Z"); err == nil {
		t.Fatal("unknown party accepted")
	}
}

func TestEvolveLocalChangeNoPropagation(t *testing.T) {
	c := twoParty(t)
	// Inserting an assign is invisible to the public process.
	rep, err := c.Evolve("A", change.Insert{
		Path: bpel.Path{"Sequence:srv", "Invoke:pong"},
		New:  &bpel.Assign{BlockName: "internal bookkeeping"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PublicChanged {
		t.Fatal("invisible change altered the public process")
	}
	if len(rep.Impacts) != 0 {
		t.Fatalf("impacts = %v for a local change", rep.Impacts)
	}
	if rep.NeedsPropagation() {
		t.Fatal("local change needs propagation")
	}
	// Committing a local change keeps consistency.
	if err := c.Commit(rep); err != nil {
		t.Fatal(err)
	}
	check, _ := c.Check()
	if !check.Consistent() {
		t.Fatal("inconsistent after local change")
	}
}

func TestEvolveVariantSubtractive(t *testing.T) {
	c := twoParty(t)
	// A stops sending pong: B keeps waiting for it → variant.
	rep, err := c.Evolve("A", change.Delete{Path: bpel.Path{"Sequence:srv", "Invoke:pong"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PublicChanged {
		t.Fatal("public process unchanged")
	}
	if len(rep.Impacts) != 1 {
		t.Fatalf("impacts = %v", rep.Impacts)
	}
	im := rep.Impacts[0]
	if im.Partner != "B" || !im.ViewChanged {
		t.Fatalf("impact = %+v", im)
	}
	if im.Classification.Kind != core.KindBoth && im.Classification.Kind != core.KindSubtractive {
		t.Fatalf("kind = %v", im.Classification.Kind)
	}
	if im.Classification.Scope != core.ScopeVariant {
		t.Fatalf("scope = %v, want variant", im.Classification.Scope)
	}
	if !rep.NeedsPropagation() {
		t.Fatal("variant change not flagged")
	}
	if len(im.Plans) == 0 {
		t.Fatal("no plans for variant change")
	}
}

func TestEvolveUnknownPartyAndBadOp(t *testing.T) {
	c := twoParty(t)
	if _, err := c.Evolve("Z", change.Delete{Path: bpel.Path{"x"}}); err == nil {
		t.Fatal("unknown party accepted")
	}
	if _, err := c.Evolve("A", change.Delete{Path: bpel.Path{"Sequence:ghost"}}); err == nil {
		t.Fatal("bad operation accepted")
	}
}

func TestAdaptPartnerAndCommitParty(t *testing.T) {
	c := twoParty(t)
	// Adapt B to also accept a second pong format? Simply rename via
	// replace to exercise the mechanics: replace receive with an
	// equivalent pick.
	ops := []change.Operation{change.ReplaceReceiveWithPick{
		Path:  bpel.Path{"Sequence:cli", "Receive:pong"},
		Extra: []bpel.OnMessage{{Partner: "A", Op: "pongOp"}}, // duplicate alternative is harmless
	}}
	_, _, err := c.AdaptPartner("B", ops)
	if err == nil {
		t.Fatal("duplicate pick alternatives should fail validation (sibling uniqueness)")
	}

	// A well-formed adaptation.
	ops = []change.Operation{change.Insert{
		Path: bpel.Path{"Sequence:cli", "Invoke:ping"},
		New:  &bpel.Assign{BlockName: "note"},
	}}
	newB, res, err := c.AdaptPartner("B", ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Automaton.NumStates() == 0 {
		t.Fatal("empty derived automaton")
	}
	if err := c.CommitParty(newB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AdaptPartner("Z", nil); err == nil {
		t.Fatal("unknown partner accepted")
	}
	if err := c.CommitParty(&bpel.Process{Name: "x", Owner: "Z", Body: &bpel.Empty{}}); err == nil {
		t.Fatal("commit for unknown party accepted")
	}
}

func TestExecutableSuggestions(t *testing.T) {
	sugg := []core.Suggestion{
		{Description: "manual only"},
		{Description: "auto", Op: change.Delete{Path: bpel.Path{"x"}}},
	}
	ops := ExecutableSuggestions(sugg)
	if len(ops) != 1 {
		t.Fatalf("ops = %v", ops)
	}
}
