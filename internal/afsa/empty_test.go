package afsa

import (
	"testing"

	"repro/internal/formula"
	"repro/internal/label"
)

// TestFig5Intersection reproduces the worked example of paper Fig. 5:
// the intersection of party A (msg0/msg2 optional) and party B
// (msg1/msg2 mandatory) contains a msg2 path to a final state but is
// *annotated-empty* because the mandatory msg1 transition is missing.
func TestFig5Intersection(t *testing.T) {
	a, b := fig5A(), fig5B()
	inter := a.Intersect(b)

	// Structure: only the shared msg2 transition survives (Def. 3).
	if inter.NumTransitions() != 1 {
		t.Fatalf("intersection transitions = %d, want 1\n%s", inter.NumTransitions(), inter.DebugString())
	}
	ts := inter.Transitions(inter.Start())
	if len(ts) != 1 || ts[0].Label != lbl("B#A#msg2") {
		t.Fatalf("intersection start transitions = %v", ts)
	}

	// The start state annotation is B's conjunction; combined with the
	// structural default OR(B#A#msg2) it is the paper's
	// (B#A#msg1 AND B#A#msg2) AND B#A#msg2.
	anno := inter.Annotation(inter.Start())
	want := formula.And(formula.Var("B#A#msg1"), formula.Var("B#A#msg2"))
	if !formula.Equal(anno, want) {
		t.Fatalf("start annotation = %v, want %v", anno, want)
	}

	// Plain FSA: non-empty (a final state is reachable).
	if !hasAcceptingPath(inter) {
		t.Fatal("intersection has no accepting path at the FSA level")
	}

	// Annotated semantics: empty (msg1 is mandatory but unavailable).
	empty, err := inter.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatalf("intersection should be annotated-empty:\n%s", inter.DebugString())
	}

	// Therefore A and B are inconsistent.
	ok, err := Consistent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fig5 parties reported consistent")
	}
}

// TestFig5ViableVariables checks the paper's explanation verbatim:
// "The variable B#A#msg2 ... evaluates to true since there is a path
// to a final state. By contrast the variable B#A#msg1 is evaluated to
// false because there is no such transition available."
func TestFig5ViableVariables(t *testing.T) {
	inter := fig5A().Intersect(fig5B())
	viable, err := inter.ViableStates()
	if err != nil {
		t.Fatal(err)
	}
	ts := inter.Transitions(inter.Start())
	if len(ts) != 1 {
		t.Fatalf("unexpected structure:\n%s", inter.DebugString())
	}
	if !viable[ts[0].To] {
		t.Fatal("msg2 successor (final) should be viable")
	}
	if viable[inter.Start()] {
		t.Fatal("start state should not be viable (mandatory msg1 missing)")
	}
}

func TestConsistentPair(t *testing.T) {
	// Remove B's mandatory annotation: now the pair is consistent.
	a := fig5A()
	b := fig5B()
	b.ClearAnnotations(b.Start())
	ok, err := Consistent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("annotation-free fig5 pair should be consistent")
	}
}

func TestEmptyAutomatonIsEmpty(t *testing.T) {
	a := New("void")
	empty, err := a.IsEmpty()
	if err != nil || !empty {
		t.Fatalf("IsEmpty(void) = %v, %v", empty, err)
	}
}

func TestNonFinalDeadEndNotViable(t *testing.T) {
	a := New("deadend")
	q0 := a.AddState()
	q1 := a.AddState() // non-final, no outgoing
	a.SetStart(q0)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("automaton without final states should be empty")
	}
}

func TestFinalStateIsViable(t *testing.T) {
	a := chain("one", "A#B#x")
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("single-word automaton reported empty")
	}
}

func TestMandatoryLoopStaysViable(t *testing.T) {
	// A final state with a mandatory self-loop alternative: viable, the
	// loop transition target (itself final) is viable.
	a := New("loop")
	q0 := a.AddState()
	q1 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("B#A#go"), q1)
	a.AddTransition(q1, lbl("B#A#again"), q1)
	a.Annotate(q1, formula.Var("B#A#again"))
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("loop automaton reported empty")
	}
}

func TestMandatoryMissingTransitionKillsState(t *testing.T) {
	a := New("missing")
	q0 := a.AddState()
	q1 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("B#A#x"), q1)
	a.Annotate(q0, formula.Var("B#A#y")) // y does not exist
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("unsatisfiable mandatory annotation should make automaton empty")
	}
}

func TestMandatoryTransitionToDeadStateKillsState(t *testing.T) {
	a := New("deadmandatory")
	q0 := a.AddState()
	q1 := a.AddState() // final: ok path
	q2 := a.AddState() // dead end
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("B#A#ok"), q1)
	a.AddTransition(q0, lbl("B#A#bad"), q2)
	a.Annotate(q0, formula.And(formula.Var("B#A#ok"), formula.Var("B#A#bad")))
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("mandatory transition into a dead state should make the start non-viable")
	}
}

func TestDisjunctiveAnnotationSatisfiedByOneBranch(t *testing.T) {
	a := New("disj")
	q0 := a.AddState()
	q1 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("B#A#ok"), q1)
	a.Annotate(q0, formula.Or(formula.Var("B#A#ok"), formula.Var("B#A#missing")))
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("disjunctive annotation with one satisfied branch should be viable")
	}
}

func TestNegativeAnnotationRejected(t *testing.T) {
	a := New("neg")
	q0 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q0, true)
	a.Annotate(q0, formula.Not(formula.Var("A#B#x")))
	if _, err := a.IsEmpty(); err == nil {
		t.Fatal("IsEmpty accepted a negative annotation")
	}
	if err := a.CheckPositive(); err == nil {
		t.Fatal("CheckPositive accepted a negative annotation")
	}
}

func TestViabilityThroughEpsilon(t *testing.T) {
	// q0 --ε--> q1 --x--> q2(final): start must be viable.
	a := New("eps")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q2, true)
	a.AddTransition(q0, label.Epsilon, q1)
	a.AddTransition(q1, lbl("A#B#x"), q2)
	empty, err := a.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("ε-reachable language reported empty")
	}
}
