package afsa

import (
	"testing"

	"repro/internal/formula"
	"repro/internal/label"
)

// threePartyChain builds A: order(B→A), deliver(A→L), conf(L→A),
// delivery(A→B) — the backbone of the paper's accounting process.
func threePartyChain() *Automaton {
	return chain("acc-backbone",
		"B#A#orderOp", "A#L#deliverOp", "L#A#deliver_confOp", "A#B#deliveryOp")
}

func TestViewHidesOtherParties(t *testing.T) {
	a := threePartyChain()
	v := a.View("B")
	// Buyer sees exactly order then delivery.
	if !v.Accepts([]label.Label{lbl("B#A#orderOp"), lbl("A#B#deliveryOp")}) {
		t.Fatalf("buyer view rejects the projected word:\n%s", v.DebugString())
	}
	sigma := v.Alphabet()
	if sigma.Has(lbl("A#L#deliverOp")) || sigma.Has(lbl("L#A#deliver_confOp")) {
		t.Fatalf("buyer view leaks logistics labels: %v", sigma)
	}
	if v.HasEpsilon() {
		t.Fatal("view still has ε transitions after minimization")
	}
	// Minimized: 3 states (order, delivery, done).
	if v.NumStates() != 3 {
		t.Fatalf("buyer view has %d states, want 3:\n%s", v.NumStates(), v.DebugString())
	}
}

func TestViewLogisticsSide(t *testing.T) {
	a := threePartyChain()
	v := a.View("L")
	if !v.Accepts([]label.Label{lbl("A#L#deliverOp"), lbl("L#A#deliver_confOp")}) {
		t.Fatalf("logistics view rejects the projected word:\n%s", v.DebugString())
	}
	if v.Alphabet().Has(lbl("B#A#orderOp")) {
		t.Fatal("logistics view leaks buyer labels")
	}
}

// TestViewAnnotationProjection reproduces the essence of Fig. 12a: an
// internal choice between a hidden branch (deliver to logistics, later
// visible as delivery to the buyer) and a visible branch (cancel to
// the buyer) must surface as "cancelOp AND deliveryOp" in the buyer
// view.
func TestViewAnnotationProjection(t *testing.T) {
	a := New("acc-credit-choice")
	q0 := a.AddState() // decision state
	q1 := a.AddState() // after deliver (hidden)
	q2 := a.AddState() // after delivery (visible)
	q3 := a.AddState() // after cancel (visible)
	a.SetStart(q0)
	a.SetFinal(q2, true)
	a.SetFinal(q3, true)
	a.AddTransition(q0, lbl("A#L#deliverOp"), q1)
	a.AddTransition(q1, lbl("A#B#deliveryOp"), q2)
	a.AddTransition(q0, lbl("A#B#cancelOp"), q3)
	a.Annotate(q0, formula.And(formula.Var("A#L#deliverOp"), formula.Var("A#B#cancelOp")))

	v := a.View("B")
	anno := v.Annotation(v.Start())
	want := formula.And(formula.Var("A#B#deliveryOp"), formula.Var("A#B#cancelOp"))
	if !formula.Equal(anno, want) {
		t.Fatalf("projected annotation = %v, want %v\n%s", anno, want, v.DebugString())
	}
}

func TestViewAnnotationDischargesInvisibly(t *testing.T) {
	// Hidden mandatory branch that reaches a final state without any
	// visible label: the obligation vanishes from the view.
	a := New("hidden-final")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("A#L#stopOp"), q1) // hidden, then done
	a.AddTransition(q0, lbl("A#B#goOp"), q2)   // visible
	a.Annotate(q0, formula.And(formula.Var("A#L#stopOp"), formula.Var("A#B#goOp")))

	v := a.View("B")
	anno := v.Annotation(v.Start())
	if !formula.Equal(anno, formula.Var("A#B#goOp")) {
		t.Fatalf("projected annotation = %v, want A#B#goOp", anno)
	}
}

func TestViewAnnotationDeadHiddenBranch(t *testing.T) {
	// Hidden mandatory branch that leads nowhere: stays unsatisfiable.
	a := New("hidden-dead")
	q0 := a.AddState()
	q1 := a.AddState() // dead end, non-final
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("A#L#lostOp"), q1)
	a.AddTransition(q0, lbl("A#B#goOp"), q2)
	a.Annotate(q0, formula.And(formula.Var("A#L#lostOp"), formula.Var("A#B#goOp")))

	v := a.ViewRaw("B")
	anno := v.Annotation(v.Start())
	if !anno.IsFalse() {
		t.Fatalf("projected annotation = %v, want false", anno)
	}
}

func TestViewAnnotationMissingHiddenVariable(t *testing.T) {
	// Annotation references a hidden label with no transition at the
	// annotated state: substitute false.
	a := New("missing-hidden")
	q0 := a.AddState()
	q1 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("A#B#goOp"), q1)
	a.Annotate(q0, formula.Var("A#L#ghostOp"))
	v := a.ViewRaw("B")
	if !v.Annotation(v.Start()).IsFalse() {
		t.Fatalf("annotation = %v, want false", v.Annotation(v.Start()))
	}
}

func TestViewPreservesLanguageProjection(t *testing.T) {
	// The view's language must equal the homomorphic image (dropping
	// hidden labels) of the original language.
	a := threePartyChain()
	v := a.View("B")
	orig := a.AcceptedWords(6, 0)
	want := map[string]bool{}
	for _, w := range orig {
		var proj Word
		for _, l := range w {
			if l.Involves("B") {
				proj = append(proj, l)
			}
		}
		want[proj.String()] = true
	}
	got := map[string]bool{}
	for _, w := range v.AcceptedWords(6, 0) {
		got[w.String()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("projected language mismatch: got %v want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing projected word %s", k)
		}
	}
}

func TestRestrict(t *testing.T) {
	a := threePartyChain()
	r := a.Restrict("A", "B")
	if r.Alphabet().Has(lbl("A#L#deliverOp")) {
		t.Fatal("Restrict kept a logistics label")
	}
	// Restrict drops (not ε's) foreign transitions, so the chain is
	// broken: the delivery label is unreachable from the start.
	if r.Accepts([]label.Label{lbl("B#A#orderOp"), lbl("A#B#deliveryOp")}) {
		t.Fatal("Restrict should not reconnect the chain")
	}
}

func TestViewOfViewIsIdempotent(t *testing.T) {
	a := threePartyChain()
	v1 := a.View("B")
	v2 := v1.View("B")
	if !Equivalent(v1, v2) {
		t.Fatalf("τ_B(τ_B(A)) differs from τ_B(A): %s", ExplainDifference(v1, v2))
	}
}
