package afsa

import (
	"slices"

	"repro/internal/label"
)

// EpsilonClosure returns the ε-closure of q (including q), sorted.
func (a *Automaton) EpsilonClosure(q StateID) []StateID {
	a.mustState(q)
	seen := make([]bool, a.NumStates())
	out := a.closureInto(q, seen, nil)
	sortIDs(out)
	return out
}

// closureInto appends the ε-closure of q (including q) to out, using
// seen as the visited set (callers reset or reallocate it between
// states). The result is in discovery order, not sorted.
func (a *Automaton) closureInto(q StateID, seen []bool, out []StateID) []StateID {
	seen[q] = true
	out = append(out, q)
	for i := len(out) - 1; i < len(out); i++ {
		for _, e := range a.trans[out[i]] {
			if e.sym == label.SymEpsilon && !seen[e.to] {
				seen[e.to] = true
				out = append(out, e.to)
			}
		}
	}
	return out
}

// epsFree returns a itself when it has no ε transitions (operators
// that only read their operands use this to skip the defensive copy
// RemoveEpsilon makes), else the ε-removed form.
func (a *Automaton) epsFree() *Automaton {
	if !a.HasEpsilon() {
		return a
	}
	return a.RemoveEpsilon()
}

// RemoveEpsilon returns an equivalent automaton without ε transitions.
// State IDs are preserved; unreachable states are then trimmed away.
//
// Annotation treatment: the new annotation of q is the conjunction of
// the explicit annotations of every state in the ε-closure of q. The
// closure states' visible transitions are copied to q as well, so a
// mandatory alternative recorded deeper inside the closure stays
// satisfiable exactly when it was before (see DESIGN.md §3). Callers
// performing view projection substitute hidden annotation variables
// *before* calling RemoveEpsilon.
func (a *Automaton) RemoveEpsilon() *Automaton {
	if !a.HasEpsilon() {
		return a.Clone()
	}
	out := NewShared(a.Name, a.syms)
	out.AddStates(a.NumStates())
	out.SetStart(a.start)
	seen := make([]bool, a.NumStates())
	var closure []StateID
	for q := 0; q < a.NumStates(); q++ {
		for i := range seen {
			seen[i] = false
		}
		closure = a.closureInto(StateID(q), seen, closure[:0])
		out.reserveEdges(StateID(q), len(a.trans[q]))
		for _, c := range closure {
			if a.final[c] {
				out.final[q] = true
			}
			for _, f := range a.anno[c] {
				out.Annotate(StateID(q), f)
			}
			for _, e := range a.trans[c] {
				if e.sym != label.SymEpsilon {
					out.addEdgeUnique(StateID(q), e.sym, e.to)
				}
			}
		}
	}
	trimmed, _ := out.Trim()
	return trimmed
}

// Determinize returns a deterministic automaton accepting the same
// language via the subset construction (ε transitions are removed
// first). The annotation of a subset state is the union (conjunction)
// of its members' explicit annotations; this conservative rule is
// exact for the near-deterministic automata produced by the BPEL
// mapping (DESIGN.md §3).
func (a *Automaton) Determinize() *Automaton {
	d, _ := a.determinize(false)
	return d
}

// DeterminizeWithMap is Determinize and additionally reports, for each
// new state, the set of original states it represents. The member sets
// refer to state IDs of the ε-free version of a, which preserves the
// IDs of a itself.
//
// Ownership: the returned member slices are freshly allocated and
// owned by the caller; mutating them does not affect the automaton,
// the receiver, or later calls.
func (a *Automaton) DeterminizeWithMap() (*Automaton, map[StateID][]StateID) {
	return a.determinize(true)
}

// determinize is the subset construction; the membership map is built
// only when wantMembers is set (Determinize callers never read it,
// and its per-state map inserts are measurable on the check path).
func (a *Automaton) determinize(wantMembers bool) (*Automaton, map[StateID][]StateID) {
	src := a.epsFree()
	out := NewShared(a.Name, src.syms)
	var members map[StateID][]StateID
	if wantMembers {
		members = make(map[StateID][]StateID)
	}
	if src.start == None {
		return out, members
	}
	out.reserveStates(src.NumStates())

	ranks := src.labelRanks()

	// subsets[id] holds the sorted, deduplicated member set of out
	// state id. Each is an owned copy — the subset-construction
	// scratch buffers below are never aliased into it (the historical
	// implementation sorted caller-owned bucket slices in place; the
	// ownership test in epsilon_test.go pins the copy semantics).
	var subsets [][]StateID
	index := make(map[uint64][]StateID) // FNV-1a hash → out ids with that hash
	var worklist []StateID

	// add returns the out state of the sorted, deduplicated set,
	// creating it (from a private copy of set) on first sight.
	add := func(set []StateID) StateID {
		h := hashIDs(set)
		for _, id := range index[h] {
			if equalIDs(subsets[id], set) {
				return id
			}
		}
		owned := append([]StateID(nil), set...)
		id := out.AddState()
		subsets = append(subsets, owned)
		index[h] = append(index[h], id)
		if members != nil {
			members[id] = owned
		}
		for _, s := range owned {
			if src.final[s] {
				out.final[id] = true
			}
			for _, f := range src.anno[s] {
				out.Annotate(id, f)
			}
		}
		worklist = append(worklist, id)
		return id
	}

	out.SetStart(add([]StateID{src.start}))

	// Per-symbol target buckets, reused across worklist items; touched
	// tracks which symbols have non-empty buckets this round.
	buckets := make([][]StateID, src.syms.Len())
	var touched []label.Symbol
	var scratch []StateID

	for head := 0; head < len(worklist); head++ {
		from := worklist[head]
		touched = touched[:0]
		for _, s := range subsets[from] {
			for _, e := range src.trans[s] {
				if len(buckets[e.sym]) == 0 {
					touched = append(touched, e.sym)
				}
				buckets[e.sym] = append(buckets[e.sym], e.to)
			}
		}
		// Label order keeps the output state numbering identical to
		// the historical string-keyed construction.
		for i := 1; i < len(touched); i++ {
			for j := i; j > 0 && ranks[touched[j]] < ranks[touched[j-1]]; j-- {
				touched[j], touched[j-1] = touched[j-1], touched[j]
			}
		}
		for _, sym := range touched {
			scratch = append(scratch[:0], buckets[sym]...)
			buckets[sym] = buckets[sym][:0]
			sortIDs(scratch)
			scratch = dedupSortedIDs(scratch)
			out.addEdge(from, sym, add(scratch))
		}
	}
	return out, members
}

// hashIDs is FNV-1a over the little-endian bytes of the IDs. It runs
// once per candidate state set in determinization's inner loop;
// allocgate proves it allocation-free.
//
//choreolint:allocfree
func hashIDs(ids []StateID) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range ids {
		v := uint32(s)
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

func equalIDs(a, b []StateID) bool { return slices.Equal(a, b) }

// sortIDs sorts in place; slices.Sort is a non-allocating pdqsort.
func sortIDs(x []StateID) { slices.Sort(x) }

// dedupSortedIDs removes adjacent duplicates in place.
func dedupSortedIDs(x []StateID) []StateID { return slices.Compact(x) }
