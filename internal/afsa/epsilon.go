package afsa

import (
	"sort"

	"repro/internal/label"
)

// EpsilonClosure returns the ε-closure of q (including q), sorted.
func (a *Automaton) EpsilonClosure(q StateID) []StateID {
	a.mustState(q)
	seen := map[StateID]bool{q: true}
	stack := []StateID{q}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.trans[s] {
			if t.Label.IsEpsilon() && !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	out := make([]StateID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RemoveEpsilon returns an equivalent automaton without ε transitions.
// State IDs are preserved; unreachable states are then trimmed away.
//
// Annotation treatment: the new annotation of q is the conjunction of
// the explicit annotations of every state in the ε-closure of q. The
// closure states' visible transitions are copied to q as well, so a
// mandatory alternative recorded deeper inside the closure stays
// satisfiable exactly when it was before (see DESIGN.md §3). Callers
// performing view projection substitute hidden annotation variables
// *before* calling RemoveEpsilon.
func (a *Automaton) RemoveEpsilon() *Automaton {
	if !a.HasEpsilon() {
		return a.Clone()
	}
	out := New(a.Name)
	out.AddStates(a.NumStates())
	out.SetStart(a.start)
	for q := 0; q < a.NumStates(); q++ {
		closure := a.EpsilonClosure(StateID(q))
		for _, c := range closure {
			if a.final[c] {
				out.final[q] = true
			}
			for _, f := range a.anno[c] {
				out.Annotate(StateID(q), f)
			}
			for _, t := range a.trans[c] {
				if !t.Label.IsEpsilon() {
					out.AddTransition(StateID(q), t.Label, t.To)
				}
			}
		}
	}
	trimmed, _ := out.Trim()
	return trimmed
}

// Determinize returns a deterministic automaton accepting the same
// language via the subset construction (ε transitions are removed
// first). The annotation of a subset state is the union (conjunction)
// of its members' explicit annotations; this conservative rule is
// exact for the near-deterministic automata produced by the BPEL
// mapping (DESIGN.md §3).
func (a *Automaton) Determinize() *Automaton {
	d, _ := a.DeterminizeWithMap()
	return d
}

// DeterminizeWithMap is Determinize and additionally reports, for each
// new state, the set of original states it represents. The member sets
// refer to state IDs of the ε-free version of a, which preserves the
// IDs of a itself.
func (a *Automaton) DeterminizeWithMap() (*Automaton, map[StateID][]StateID) {
	src := a
	if src.HasEpsilon() {
		src = src.RemoveEpsilon()
	}
	out := New(a.Name)
	members := make(map[StateID][]StateID)
	if src.start == None {
		return out, members
	}

	type subset struct {
		key    string
		states []StateID
	}
	makeSubset := func(states []StateID) subset {
		sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
		uniq := states[:0]
		var prev StateID = None
		for _, s := range states {
			if s != prev {
				uniq = append(uniq, s)
				prev = s
			}
		}
		var b []byte
		for _, s := range uniq {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return subset{key: string(b), states: uniq}
	}

	index := map[string]StateID{}
	var worklist []subset
	add := func(ss subset) StateID {
		if id, ok := index[ss.key]; ok {
			return id
		}
		id := out.AddState()
		index[ss.key] = id
		members[id] = ss.states
		for _, s := range ss.states {
			if src.final[s] {
				out.final[id] = true
			}
			for _, f := range src.anno[s] {
				out.Annotate(id, f)
			}
		}
		worklist = append(worklist, ss)
		return id
	}

	startSubset := makeSubset([]StateID{src.start})
	out.SetStart(add(startSubset))
	for len(worklist) > 0 {
		cur := worklist[0]
		worklist = worklist[1:]
		from := index[cur.key]
		byLabel := map[string][]StateID{}
		for _, s := range cur.states {
			for _, t := range src.trans[s] {
				byLabel[string(t.Label)] = append(byLabel[string(t.Label)], t.To)
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			to := add(makeSubset(byLabel[l]))
			out.AddTransition(from, label.Label(l), to)
		}
	}
	return out, members
}
