package afsa

import (
	"math/rand"
	"testing"

	"repro/internal/formula"
	"repro/internal/label"
)

// testAlphabet is a small shared alphabet for randomized operator tests.
var testAlphabet = []label.Label{
	lbl("A#B#m0"), lbl("A#B#m1"), lbl("B#A#m2"), lbl("B#A#m3"),
}

// randomDFA builds a random trim DFA over testAlphabet.
func randomDFA(r *rand.Rand, states int) *Automaton {
	a := New("rand")
	for i := 0; i < states; i++ {
		a.AddState()
	}
	a.SetStart(0)
	for q := 0; q < states; q++ {
		for _, l := range testAlphabet {
			if r.Intn(100) < 55 {
				a.AddTransition(StateID(q), l, StateID(r.Intn(states)))
			}
		}
		if r.Intn(100) < 35 {
			a.SetFinal(StateID(q), true)
		}
	}
	if len(a.FinalStates()) == 0 {
		a.SetFinal(StateID(r.Intn(states)), true)
	}
	trimmed, _ := a.Trim()
	return trimmed
}

// randomWord draws a word over testAlphabet.
func randomWord(r *rand.Rand, maxLen int) []label.Label {
	n := r.Intn(maxLen + 1)
	w := make([]label.Label, n)
	for i := range w {
		w[i] = testAlphabet[r.Intn(len(testAlphabet))]
	}
	return w
}

func TestIntersectLanguageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		a, b := randomDFA(r, 4), randomDFA(r, 4)
		inter := a.Intersect(b)
		for i := 0; i < 40; i++ {
			w := randomWord(r, 6)
			want := a.Accepts(w) && b.Accepts(w)
			if got := inter.Accepts(w); got != want {
				t.Fatalf("trial %d: Intersect accepts(%v) = %v, want %v\nA:\n%s\nB:\n%s", trial, w, got, want, a.DebugString(), b.DebugString())
			}
		}
	}
}

func TestDifferenceLanguageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		a, b := randomDFA(r, 4), randomDFA(r, 4)
		diff := a.Difference(b)
		for i := 0; i < 40; i++ {
			w := randomWord(r, 6)
			want := a.Accepts(w) && !b.Accepts(w)
			if got := diff.Accepts(w); got != want {
				t.Fatalf("trial %d: Difference accepts(%v) = %v, want %v", trial, w, got, want)
			}
		}
	}
}

func TestUnionLanguageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		a, b := randomDFA(r, 4), randomDFA(r, 4)
		union := a.Union(b)
		for i := 0; i < 40; i++ {
			w := randomWord(r, 6)
			want := a.Accepts(w) || b.Accepts(w)
			if got := union.Accepts(w); got != want {
				t.Fatalf("trial %d: Union accepts(%v) = %v, want %v", trial, w, got, want)
			}
		}
	}
}

func TestUnionMatchesDeMorganForm(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		a, b := randomDFA(r, 4), randomDFA(r, 4)
		direct := a.Union(b)
		demorgan := a.UnionDeMorgan(b)
		if !SameLanguage(direct, demorgan) {
			t.Fatalf("trial %d: Union and UnionDeMorgan disagree", trial)
		}
	}
}

func TestComplementLanguageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sigma := label.NewSet(testAlphabet...)
	for trial := 0; trial < 30; trial++ {
		a := randomDFA(r, 4)
		comp := a.Complement(sigma)
		for i := 0; i < 40; i++ {
			w := randomWord(r, 6)
			if comp.Accepts(w) == a.Accepts(w) {
				t.Fatalf("trial %d: complement agrees with original on %v", trial, w)
			}
		}
	}
}

func TestDoubleComplementIsIdentityOnLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	sigma := label.NewSet(testAlphabet...)
	for trial := 0; trial < 20; trial++ {
		a := randomDFA(r, 4)
		cc := a.Complement(sigma).Complement(sigma)
		if !SameLanguage(a, cc) {
			t.Fatalf("trial %d: double complement changed the language", trial)
		}
	}
}

func TestIntersectOnlySharedLabels(t *testing.T) {
	// Def. 3: Σ = Σ1 ∩ Σ2 — a label present in only one automaton
	// never appears in the intersection.
	a := chain("a", "A#B#only_a", "A#B#shared")
	b := chain("b", "A#B#only_b", "A#B#shared")
	inter := a.Intersect(b)
	sigma := inter.Alphabet()
	if sigma.Has(lbl("A#B#only_a")) || sigma.Has(lbl("A#B#only_b")) {
		t.Fatalf("intersection alphabet leaked private labels: %v", sigma)
	}
}

func TestIntersectAnnotationConjunction(t *testing.T) {
	a := chain("a", "A#B#x")
	b := chain("b", "A#B#x")
	a.Annotate(a.Start(), formula.Var("A#B#x"))
	b.Annotate(b.Start(), formula.Var("A#B#x"))
	inter := a.Intersect(b)
	// Both sides contribute the same variable; the conjunction
	// simplifies to a single var but must not be dropped.
	if inter.Annotation(inter.Start()).IsTrue() {
		t.Fatal("intersection lost annotations")
	}
}

func TestDifferenceKeepsMinuendAnnotations(t *testing.T) {
	a := chain("a", "A#B#x", "A#B#y")
	a.Annotate(a.Start(), formula.Var("A#B#x"))
	b := chain("b", "A#B#z") // disjoint language
	diff := a.Difference(b)
	if diff.Annotation(diff.Start()).IsTrue() {
		t.Fatalf("difference lost the minuend annotation:\n%s", diff.DebugString())
	}
	if !diff.Accepts([]label.Label{lbl("A#B#x"), lbl("A#B#y")}) {
		t.Fatal("difference lost the minuend word")
	}
}

func TestDifferenceWithSelfIsEmpty(t *testing.T) {
	a := chain("a", "A#B#x", "A#B#y")
	diff := a.Difference(a)
	if hasAcceptingPath(diff) {
		t.Fatalf("A \\ A accepts something:\n%s", diff.DebugString())
	}
}

func TestUnionPreservesAnnotationsOfBothSides(t *testing.T) {
	a := chain("a", "B#A#x")
	a.Annotate(a.Start(), formula.Var("B#A#x"))
	b := chain("b", "B#A#y")
	b.Annotate(b.Start(), formula.Var("B#A#y"))
	u := a.Union(b)
	anno := u.Annotation(u.Start())
	want := formula.And(formula.Var("B#A#x"), formula.Var("B#A#y"))
	if !formula.Equal(anno, want) {
		t.Fatalf("union start annotation = %v, want %v", anno, want)
	}
}

func TestCompleteAddsSink(t *testing.T) {
	a := chain("a", "A#B#x")
	sigma := label.NewSet(lbl("A#B#x"), lbl("A#B#y"))
	c, sink := a.Complete(sigma)
	if sink == None {
		t.Fatal("no sink added")
	}
	for q := 0; q < c.NumStates(); q++ {
		for _, l := range sigma.Sorted() {
			if len(c.Step(StateID(q), l)) == 0 {
				t.Fatalf("state %d missing label %v after completion", q, l)
			}
		}
	}
	// Language unchanged.
	if !c.Accepts([]label.Label{lbl("A#B#x")}) || c.Accepts([]label.Label{lbl("A#B#y")}) {
		t.Fatal("completion changed the language")
	}
}

func TestCompleteNoopWhenComplete(t *testing.T) {
	a := New("full")
	q := a.AddState()
	a.SetStart(q)
	a.SetFinal(q, true)
	a.AddTransition(q, lbl("A#B#x"), q)
	c, sink := a.Complete(label.NewSet(lbl("A#B#x")))
	if sink != None || c.NumStates() != 1 {
		t.Fatalf("unnecessary sink added: %d states", c.NumStates())
	}
}

func TestShuffleInterleavings(t *testing.T) {
	a := chain("a", "A#B#x")
	b := chain("b", "B#A#y")
	sh := a.Shuffle(b)
	for _, w := range [][]label.Label{
		{lbl("A#B#x"), lbl("B#A#y")},
		{lbl("B#A#y"), lbl("A#B#x")},
	} {
		if !sh.Accepts(w) {
			t.Fatalf("shuffle rejects interleaving %v", w)
		}
	}
	if sh.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("shuffle accepts incomplete interleaving")
	}
}

func TestConcat(t *testing.T) {
	a := chain("a", "A#B#x")
	b := chain("b", "B#A#y")
	cat := a.Concat(b)
	if !cat.Accepts([]label.Label{lbl("A#B#x"), lbl("B#A#y")}) {
		t.Fatal("concat rejects the concatenation")
	}
	if cat.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("concat accepts the bare prefix")
	}
	if cat.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatal("concat accepts the bare suffix")
	}
}

func TestProductOfEmptyAutomata(t *testing.T) {
	void := New("void")
	a := chain("a", "A#B#x")
	if got := void.Intersect(a); got.NumStates() != 0 {
		t.Fatalf("void intersect = %d states", got.NumStates())
	}
	if got := a.Intersect(void); got.NumStates() != 0 {
		t.Fatalf("intersect void = %d states", got.NumStates())
	}
}

func TestUnionDeMorganDropsAnnotations(t *testing.T) {
	a := chain("a", "B#A#x")
	a.Annotate(a.Start(), formula.Var("B#A#x"))
	b := chain("b", "B#A#y")
	u := a.UnionDeMorgan(b)
	for q := 0; q < u.NumStates(); q++ {
		if !u.Annotation(StateID(q)).IsTrue() {
			t.Fatalf("De Morgan union kept an annotation at state %d", q)
		}
	}
	// The language is still the union.
	if !u.Accepts([]label.Label{lbl("B#A#x")}) || !u.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatal("De Morgan union language wrong")
	}
}

func TestDeterminizeWithMapMembers(t *testing.T) {
	// NFA with two x-successors: the subset state must report both.
	a := New("nfa")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#x"), q2)
	d, members := a.DeterminizeWithMap()
	if d.NumStates() != 2 {
		t.Fatalf("determinized states = %d", d.NumStates())
	}
	ts := d.Transitions(d.Start())
	if len(ts) != 1 {
		t.Fatalf("start transitions = %v", ts)
	}
	ms := members[ts[0].To]
	if len(ms) != 2 || ms[0] != q1 || ms[1] != q2 {
		t.Fatalf("subset members = %v, want [1 2]", ms)
	}
}

func TestConcatThroughLoop(t *testing.T) {
	loop := New("loop")
	l0 := loop.AddState()
	loop.SetStart(l0)
	loop.SetFinal(l0, true)
	loop.AddTransition(l0, lbl("A#B#x"), l0)
	tail := chain("tail", "A#B#y")
	cat := loop.Concat(tail)
	for _, w := range [][]label.Label{
		{lbl("A#B#y")},
		{lbl("A#B#x"), lbl("A#B#y")},
		{lbl("A#B#x"), lbl("A#B#x"), lbl("A#B#y")},
	} {
		if !cat.Accepts(w) {
			t.Fatalf("concat through loop rejects %v", w)
		}
	}
	if cat.Accepts([]label.Label{lbl("A#B#x")}) {
		t.Fatal("concat accepts loop-only word")
	}
}
