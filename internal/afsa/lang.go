package afsa

import (
	"sort"

	"repro/internal/label"
)

// Accepts reports plain FSA acceptance of the word (annotations are
// ignored; use IsEmpty/ViableStates for the annotated semantics).
// ε transitions are followed implicitly.
func (a *Automaton) Accepts(word []label.Label) bool {
	if a.start == None {
		return false
	}
	cur := map[StateID]bool{}
	for _, s := range a.EpsilonClosure(a.start) {
		cur[s] = true
	}
	for _, l := range word {
		sym, known := a.syms.Lookup(l)
		if !known {
			return false
		}
		next := map[StateID]bool{}
		for q := range cur {
			for _, e := range a.trans[q] {
				if e.sym == sym {
					for _, s := range a.EpsilonClosure(e.to) {
						next[s] = true
					}
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if a.final[q] {
			return true
		}
	}
	return false
}

// Word is one message sequence.
type Word []label.Label

// String renders the word as a space-separated label sequence.
func (w Word) String() string {
	s := ""
	for i, l := range w {
		if i > 0 {
			s += " "
		}
		s += l.String()
	}
	if s == "" {
		return "⟨⟩"
	}
	return s
}

// AcceptedWords enumerates accepted words of length at most maxLen, up
// to limit words (0 = no limit), in shortlex order. Intended for tests
// and the figures tool; the languages of the paper's automata are
// infinite (loops), so maxLen bounds the enumeration.
func (a *Automaton) AcceptedWords(maxLen, limit int) []Word {
	src := a.RemoveEpsilon()
	var out []Word
	if src.start == None {
		return out
	}
	type item struct {
		q StateID
		w Word
	}
	frontier := []item{{src.start, nil}}
	for depth := 0; depth <= maxLen; depth++ {
		// Collect acceptances at this depth in deterministic order.
		sort.SliceStable(frontier, func(i, j int) bool {
			return lessWord(frontier[i].w, frontier[j].w)
		})
		seen := map[string]bool{}
		for _, it := range frontier {
			if src.final[it.q] {
				key := it.w.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, it.w)
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
		if depth == maxLen {
			break
		}
		var next []item
		for _, it := range frontier {
			for _, t := range src.Transitions(it.q) {
				w := make(Word, len(it.w)+1)
				copy(w, it.w)
				w[len(it.w)] = t.Label
				next = append(next, item{t.To, w})
			}
		}
		frontier = next
		if len(frontier) > 1<<16 {
			break // defensive bound for pathological automata
		}
	}
	return out
}

func lessWord(a, b Word) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ViableWords enumerates words witnessing annotated non-emptiness:
// accepted words all of whose visited states are viable. Empty result
// for an annotated-empty automaton.
func (a *Automaton) ViableWords(maxLen, limit int) ([]Word, error) {
	src := a.RemoveEpsilon()
	viable, err := src.ViableStates()
	if err != nil {
		return nil, err
	}
	restricted := NewShared(src.Name, src.syms)
	restricted.AddStates(src.NumStates())
	if src.start != None {
		restricted.SetStart(src.start)
	}
	for q := 0; q < src.NumStates(); q++ {
		if !viable[q] {
			continue
		}
		restricted.final[q] = src.final[q]
		for _, e := range src.trans[q] {
			if viable[e.to] {
				restricted.addEdgeUnique(StateID(q), e.sym, e.to)
			}
		}
	}
	if src.start != None && !viable[src.start] {
		return nil, nil
	}
	return restricted.AcceptedWords(maxLen, limit), nil
}
