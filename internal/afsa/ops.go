package afsa

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/label"
)

// Complete returns a copy in which every state has an outgoing
// transition for every label in alphabet, adding a non-final sink
// state when needed (Def. 4 requires complete automata). The second
// result is the sink's state ID, or None when no sink was necessary.
// The sink carries no annotation; it is never viable.
func (a *Automaton) Complete(alphabet label.Set) (*Automaton, StateID) {
	out := a.Clone()
	labels := alphabet.Sorted()
	sink := None
	ensureSink := func() StateID {
		if sink == None {
			sink = out.AddState()
			for _, l := range labels {
				out.AddTransition(sink, l, sink)
			}
		}
		return sink
	}
	n := out.NumStates() // do not complete the sink twice
	for q := 0; q < n; q++ {
		have := map[label.Label]bool{}
		for _, t := range out.trans[q] {
			have[t.Label] = true
		}
		for _, l := range labels {
			if !have[l] {
				out.AddTransition(StateID(q), l, ensureSink())
			}
		}
	}
	return out, sink
}

// Complement returns an automaton accepting the complement of L(a)
// with respect to alphabet. Annotations are dropped: the complement of
// a *language* is well-defined, the complement of a mandatory-message
// constraint is not (see DESIGN.md §3); the paper uses complement only
// as a building block for union over languages.
func (a *Automaton) Complement(alphabet label.Set) *Automaton {
	d := a.Determinize()
	for q := range d.anno {
		d.anno[q] = nil
	}
	c, _ := d.Complete(alphabet)
	for q := 0; q < c.NumStates(); q++ {
		c.final[q] = !c.final[q]
	}
	c.Name = "not(" + a.Name + ")"
	return c
}

// pairKey identifies a product state.
type pairKey struct{ p, q StateID }

// productConfig controls the shared product construction.
type productConfig struct {
	name string
	// finalRule decides finality of a pair from the component
	// finality bits.
	finalRule func(f1, f2 bool) bool
	// annoRule selects which components' annotations the pair
	// inherits: 1 = left only, 2 = right only, 3 = both.
	annoRule int
}

// product builds the synchronous product of two ε-free automata: pair
// (p,q) steps on label l to (p',q') iff both components have an
// l-transition. It is the common core of intersection, difference and
// union (the latter two complete their inputs first so that the
// synchronous product covers the full alphabet).
func product(a, b *Automaton, cfg productConfig) *Automaton {
	out := New(cfg.name)
	if a.start == None || b.start == None {
		return out
	}
	index := map[pairKey]StateID{}
	var worklist []pairKey
	add := func(k pairKey) StateID {
		if id, ok := index[k]; ok {
			return id
		}
		id := out.AddState()
		index[k] = id
		out.final[id] = cfg.finalRule(a.final[k.p], b.final[k.q])
		if cfg.annoRule&1 != 0 {
			for _, f := range a.anno[k.p] {
				out.Annotate(id, f)
			}
		}
		if cfg.annoRule&2 != 0 {
			for _, f := range b.anno[k.q] {
				out.Annotate(id, f)
			}
		}
		worklist = append(worklist, k)
		return id
	}
	out.SetStart(add(pairKey{a.start, b.start}))
	for len(worklist) > 0 {
		k := worklist[0]
		worklist = worklist[1:]
		from := index[k]
		for _, t1 := range a.Transitions(k.p) {
			for _, t2 := range b.Transitions(k.q) {
				if t1.Label == t2.Label {
					to := add(pairKey{t1.To, t2.To})
					out.AddTransition(from, t1.Label, to)
				}
			}
		}
	}
	return out
}

// Intersect implements Def. 3: the cross-product automaton over the
// shared alphabet whose pair states conjoin the component annotations.
// ε transitions are removed first (views produce them). The result
// accepts L(a) ∩ L(b); its annotated emptiness decides bilateral
// consistency (Sec. 3.2).
func (a *Automaton) Intersect(b *Automaton) *Automaton {
	ea, eb := a.RemoveEpsilon(), b.RemoveEpsilon()
	return product(ea, eb, productConfig{
		name:      fmt.Sprintf("(%s ∩ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 && f2 },
		annoRule:  3,
	})
}

// Difference implements Def. 4: an automaton accepting L(a) \ L(b)
// whose annotations are inherited from a (the paper's QA1). b is
// determinized and completed over Σa ∪ Σb so that F = F1 × (Q2 \ F2)
// characterizes exactly the words of a not accepted by b.
func (a *Automaton) Difference(b *Automaton) *Automaton {
	ea := a.RemoveEpsilon()
	db := b.Determinize()
	sigma := ea.Alphabet().Union(db.Alphabet())
	cb, _ := db.Complete(sigma)
	out := product(ea, cb, productConfig{
		name:      fmt.Sprintf("(%s \\ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 && !f2 },
		annoRule:  1,
	})
	trimmed, _ := out.TrimCoReachable()
	trimmed.Name = out.Name
	return trimmed
}

// Union returns an automaton accepting L(a) ∪ L(b). Both inputs are
// determinized and completed over the union alphabet; pair states
// conjoin the component annotations (a completion sink carries none,
// so the annotations of the surviving branch win — DESIGN.md §3).
// The paper constructs union via De Morgan from complement and
// intersection; see UnionDeMorgan for that language-level form.
func (a *Automaton) Union(b *Automaton) *Automaton {
	da, db := a.Determinize(), b.Determinize()
	sigma := da.Alphabet().Union(db.Alphabet())
	ca, _ := da.Complete(sigma)
	cb, _ := db.Complete(sigma)
	out := product(ca, cb, productConfig{
		name:      fmt.Sprintf("(%s ∪ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 || f2 },
		annoRule:  3,
	})
	trimmed, _ := out.TrimCoReachable()
	trimmed.Name = out.Name
	return trimmed
}

// UnionDeMorgan builds the union of the *languages* of a and b as the
// paper describes (A ∪ B ≡ complement(complement(A) ∩ complement(B))).
// Annotations are dropped by complementation; use Union to preserve
// them.
func (a *Automaton) UnionDeMorgan(b *Automaton) *Automaton {
	sigma := a.Alphabet().Union(b.Alphabet())
	u := a.Complement(sigma).Intersect(b.Complement(sigma)).Complement(sigma)
	out, _ := u.TrimCoReachable()
	out.Name = fmt.Sprintf("(%s ∪ %s)", a.Name, b.Name)
	return out
}

// Shuffle returns the interleaving product of two ε-free automata:
// pair (p,q) can take any move of either component independently.
// Finality requires both components final; annotations conjoin. The
// BPEL mapping uses Shuffle for the parallel <flow> construct.
func (a *Automaton) Shuffle(b *Automaton) *Automaton {
	ea, eb := a.RemoveEpsilon(), b.RemoveEpsilon()
	out := New(fmt.Sprintf("(%s ⧢ %s)", a.Name, b.Name))
	if ea.start == None || eb.start == None {
		return out
	}
	index := map[pairKey]StateID{}
	var worklist []pairKey
	add := func(k pairKey) StateID {
		if id, ok := index[k]; ok {
			return id
		}
		id := out.AddState()
		index[k] = id
		out.final[id] = ea.final[k.p] && eb.final[k.q]
		for _, f := range ea.anno[k.p] {
			out.Annotate(id, f)
		}
		for _, f := range eb.anno[k.q] {
			out.Annotate(id, f)
		}
		worklist = append(worklist, k)
		return id
	}
	out.SetStart(add(pairKey{ea.start, eb.start}))
	for len(worklist) > 0 {
		k := worklist[0]
		worklist = worklist[1:]
		from := index[k]
		for _, t := range ea.Transitions(k.p) {
			out.AddTransition(from, t.Label, add(pairKey{t.To, k.q}))
		}
		for _, t := range eb.Transitions(k.q) {
			out.AddTransition(from, t.Label, add(pairKey{k.p, t.To}))
		}
	}
	return out
}

// Concat returns an automaton accepting L(a)·L(b): every final state
// of a gains an ε transition to b's start state and loses finality.
// Used by the change suggestion engine to splice message sequences.
func (a *Automaton) Concat(b *Automaton) *Automaton {
	out := a.Clone()
	out.Name = fmt.Sprintf("(%s · %s)", a.Name, b.Name)
	offset := out.NumStates()
	out.AddStates(b.NumStates())
	for q := 0; q < b.NumStates(); q++ {
		nq := StateID(q + offset)
		out.final[nq] = b.final[q]
		out.anno[nq] = append([]*formula.Formula(nil), b.anno[q]...)
		for _, t := range b.trans[q] {
			out.AddTransition(nq, t.Label, t.To+StateID(offset))
		}
	}
	for q := 0; q < offset; q++ {
		if out.final[q] && a.final[q] {
			out.final[q] = false
			out.AddTransition(StateID(q), label.Epsilon, b.start+StateID(offset))
		}
	}
	return out.RemoveEpsilon()
}
