package afsa

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/label"
)

// alignedTo returns b itself when it already uses in, otherwise a copy
// of b reinterned into in. Binary operators align their operands so
// the product kernels compare symbols, never label strings; operands
// that already share an interner (the per-choreography case) align for
// free.
func alignedTo(b *Automaton, in *label.Interner) *Automaton {
	if b.syms == in {
		return b
	}
	c := b.Clone()
	c.Reintern(in)
	return c
}

// Complete returns a copy in which every state has an outgoing
// transition for every label in alphabet, adding a non-final sink
// state when needed (Def. 4 requires complete automata). The second
// result is the sink's state ID, or None when no sink was necessary.
// The sink carries no annotation; it is never viable.
func (a *Automaton) Complete(alphabet label.Set) (*Automaton, StateID) {
	out := a.Clone()
	labels := alphabet.Sorted()
	syms := make([]label.Symbol, len(labels))
	for i, l := range labels {
		syms[i] = out.syms.Intern(l)
	}
	sink := None
	ensureSink := func() StateID {
		if sink == None {
			sink = out.AddState()
			for _, s := range syms {
				out.addEdge(sink, s, sink)
			}
		}
		return sink
	}
	// have is a symbol-indexed presence array shared across states;
	// the per-state mark value makes resets free.
	have := make([]int32, out.syms.Len())
	n := out.NumStates() // do not complete the sink twice
	for q := 0; q < n; q++ {
		mark := int32(q) + 1
		for _, e := range out.trans[q] {
			have[e.sym] = mark
		}
		for _, s := range syms {
			if have[s] != mark {
				out.addEdge(StateID(q), s, ensureSink())
			}
		}
	}
	return out, sink
}

// Complement returns an automaton accepting the complement of L(a)
// with respect to alphabet. Annotations are dropped: the complement of
// a *language* is well-defined, the complement of a mandatory-message
// constraint is not (see DESIGN.md §3); the paper uses complement only
// as a building block for union over languages.
func (a *Automaton) Complement(alphabet label.Set) *Automaton {
	d := a.Determinize()
	for q := range d.anno {
		d.anno[q] = nil
	}
	c, _ := d.Complete(alphabet)
	for q := 0; q < c.NumStates(); q++ {
		c.final[q] = !c.final[q]
	}
	c.Name = "not(" + a.Name + ")"
	return c
}

// pairKey identifies a product state.
type pairKey struct{ p, q StateID }

// productConfig controls the shared product construction.
type productConfig struct {
	name string
	// finalRule decides finality of a pair from the component
	// finality bits.
	finalRule func(f1, f2 bool) bool
	// annoRule selects which components' annotations the pair
	// inherits: 1 = left only, 2 = right only, 3 = both.
	annoRule int
}

// product builds the synchronous product of two ε-free automata: pair
// (p,q) steps on label l to (p',q') iff both components have an
// l-transition. It is the common core of intersection, difference and
// union (the latter two complete their inputs first so that the
// synchronous product covers the full alphabet).
//
// The kernel merge-joins the two components' edge lists, pre-sorted
// by symbol rank and memoized per state, so each visited pair costs
// one linear scan — no per-pair label maps, no string comparisons.
func product(a, b *Automaton, cfg productConfig) *Automaton {
	b = alignedTo(b, a.syms)
	out := NewShared(cfg.name, a.syms)
	if a.start == None || b.start == None {
		return out
	}
	out.reserveStates(max(a.NumStates(), b.NumStates()))
	ranks := a.labelRanks()

	// Edge lists sorted by (label rank, target), memoized per state:
	// product states revisit component states many times.
	aEdges := make([][]edge, a.NumStates())
	bEdges := make([][]edge, b.NumStates())
	sortedOf := func(src *Automaton, cache [][]edge, q StateID) []edge {
		es := cache[q]
		if es == nil {
			es = make([]edge, len(src.trans[q]))
			copy(es, src.trans[q])
			sortEdges(es, ranks)
			cache[q] = es
		}
		return es
	}

	index := map[pairKey]StateID{}
	var worklist []pairKey
	add := func(k pairKey) StateID {
		if id, ok := index[k]; ok {
			return id
		}
		id := out.AddState()
		index[k] = id
		out.final[id] = cfg.finalRule(a.final[k.p], b.final[k.q])
		if cfg.annoRule&1 != 0 {
			for _, f := range a.anno[k.p] {
				out.Annotate(id, f)
			}
		}
		if cfg.annoRule&2 != 0 {
			for _, f := range b.anno[k.q] {
				out.Annotate(id, f)
			}
		}
		worklist = append(worklist, k)
		return id
	}
	out.SetStart(add(pairKey{a.start, b.start}))
	for head := 0; head < len(worklist); head++ {
		k := worklist[head]
		from := index[k]
		ea := sortedOf(a, aEdges, k.p)
		eb := sortedOf(b, bEdges, k.q)
		i, j := 0, 0
		for i < len(ea) && j < len(eb) {
			ri, rj := ranks[ea[i].sym], ranks[eb[j].sym]
			if ri < rj {
				i++
				continue
			}
			if rj < ri {
				j++
				continue
			}
			sym := ea[i].sym
			i2 := i
			for i2 < len(ea) && ea[i2].sym == sym {
				i2++
			}
			j2 := j
			for j2 < len(eb) && eb[j2].sym == sym {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					to := add(pairKey{ea[x].to, eb[y].to})
					out.addEdge(from, sym, to)
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// Intersect implements Def. 3: the cross-product automaton over the
// shared alphabet whose pair states conjoin the component annotations.
// ε transitions are removed first (views produce them). The result
// accepts L(a) ∩ L(b); its annotated emptiness decides bilateral
// consistency (Sec. 3.2).
func (a *Automaton) Intersect(b *Automaton) *Automaton {
	ea, eb := a.epsFree(), b.epsFree()
	return product(ea, eb, productConfig{
		name:      fmt.Sprintf("(%s ∩ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 && f2 },
		annoRule:  3,
	})
}

// Difference implements Def. 4: an automaton accepting L(a) \ L(b)
// whose annotations are inherited from a (the paper's QA1). b is
// determinized and completed over Σa ∪ Σb so that F = F1 × (Q2 \ F2)
// characterizes exactly the words of a not accepted by b.
func (a *Automaton) Difference(b *Automaton) *Automaton {
	ea := a.epsFree()
	db := b.Determinize()
	sigma := ea.Alphabet().Union(db.Alphabet())
	cb, _ := db.Complete(sigma)
	out := product(ea, cb, productConfig{
		name:      fmt.Sprintf("(%s \\ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 && !f2 },
		annoRule:  1,
	})
	trimmed, _ := out.TrimCoReachable()
	trimmed.Name = out.Name
	return trimmed
}

// Union returns an automaton accepting L(a) ∪ L(b). Both inputs are
// determinized and completed over the union alphabet; pair states
// conjoin the component annotations (a completion sink carries none,
// so the annotations of the surviving branch win — DESIGN.md §3).
// The paper constructs union via De Morgan from complement and
// intersection; see UnionDeMorgan for that language-level form.
func (a *Automaton) Union(b *Automaton) *Automaton {
	da, db := a.Determinize(), b.Determinize()
	sigma := da.Alphabet().Union(db.Alphabet())
	ca, _ := da.Complete(sigma)
	cb, _ := db.Complete(sigma)
	out := product(ca, cb, productConfig{
		name:      fmt.Sprintf("(%s ∪ %s)", a.Name, b.Name),
		finalRule: func(f1, f2 bool) bool { return f1 || f2 },
		annoRule:  3,
	})
	trimmed, _ := out.TrimCoReachable()
	trimmed.Name = out.Name
	return trimmed
}

// UnionDeMorgan builds the union of the *languages* of a and b as the
// paper describes (A ∪ B ≡ complement(complement(A) ∩ complement(B))).
// Annotations are dropped by complementation; use Union to preserve
// them.
func (a *Automaton) UnionDeMorgan(b *Automaton) *Automaton {
	sigma := a.Alphabet().Union(b.Alphabet())
	u := a.Complement(sigma).Intersect(b.Complement(sigma)).Complement(sigma)
	out, _ := u.TrimCoReachable()
	out.Name = fmt.Sprintf("(%s ∪ %s)", a.Name, b.Name)
	return out
}

// Shuffle returns the interleaving product of two ε-free automata:
// pair (p,q) can take any move of either component independently.
// Finality requires both components final; annotations conjoin. The
// BPEL mapping uses Shuffle for the parallel <flow> construct.
func (a *Automaton) Shuffle(b *Automaton) *Automaton {
	ea, eb := a.epsFree(), b.epsFree()
	eb = alignedTo(eb, ea.syms)
	out := NewShared(fmt.Sprintf("(%s ⧢ %s)", a.Name, b.Name), ea.syms)
	if ea.start == None || eb.start == None {
		return out
	}
	ranks := ea.labelRanks()
	index := map[pairKey]StateID{}
	var worklist []pairKey
	add := func(k pairKey) StateID {
		if id, ok := index[k]; ok {
			return id
		}
		id := out.AddState()
		index[k] = id
		out.final[id] = ea.final[k.p] && eb.final[k.q]
		for _, f := range ea.anno[k.p] {
			out.Annotate(id, f)
		}
		for _, f := range eb.anno[k.q] {
			out.Annotate(id, f)
		}
		worklist = append(worklist, k)
		return id
	}
	// Sorted edge lists memoized per component state, as in product:
	// a component state is revisited once per pair it appears in.
	aEdges := make([][]edge, ea.NumStates())
	bEdges := make([][]edge, eb.NumStates())
	sortedOf := func(src *Automaton, cache [][]edge, q StateID) []edge {
		es := cache[q]
		if es == nil {
			es = make([]edge, len(src.trans[q]))
			copy(es, src.trans[q])
			sortEdges(es, ranks)
			cache[q] = es
		}
		return es
	}
	out.SetStart(add(pairKey{ea.start, eb.start}))
	for head := 0; head < len(worklist); head++ {
		k := worklist[head]
		from := index[k]
		for _, e := range sortedOf(ea, aEdges, k.p) {
			out.addEdgeUnique(from, e.sym, add(pairKey{e.to, k.q}))
		}
		for _, e := range sortedOf(eb, bEdges, k.q) {
			out.addEdgeUnique(from, e.sym, add(pairKey{k.p, e.to}))
		}
	}
	return out
}

// Concat returns an automaton accepting L(a)·L(b): every final state
// of a gains an ε transition to b's start state and loses finality.
// Used by the change suggestion engine to splice message sequences.
func (a *Automaton) Concat(b *Automaton) *Automaton {
	out := a.Clone()
	out.Name = fmt.Sprintf("(%s · %s)", a.Name, b.Name)
	bb := alignedTo(b, out.syms)
	offset := out.NumStates()
	out.AddStates(bb.NumStates())
	for q := 0; q < bb.NumStates(); q++ {
		nq := StateID(q + offset)
		out.final[nq] = bb.final[q]
		out.anno[nq] = append([]*formula.Formula(nil), bb.anno[q]...)
		for _, e := range bb.trans[q] {
			out.addEdgeUnique(nq, e.sym, e.to+StateID(offset))
		}
	}
	for q := 0; q < offset; q++ {
		if out.final[q] && a.final[q] {
			out.final[q] = false
			out.addEdgeUnique(StateID(q), label.SymEpsilon, bb.start+StateID(offset))
		}
	}
	return out.RemoveEpsilon()
}
