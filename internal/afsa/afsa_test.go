package afsa

import (
	"strings"
	"testing"

	"repro/internal/formula"
	"repro/internal/label"
)

func lbl(s string) label.Label { return label.MustParse(s) }

// chain builds a linear automaton accepting exactly the given word.
func chain(name string, labels ...string) *Automaton {
	a := New(name)
	cur := a.AddState()
	a.SetStart(cur)
	for _, l := range labels {
		next := a.AddState()
		a.AddTransition(cur, lbl(l), next)
		cur = next
	}
	a.SetFinal(cur, true)
	return a
}

// fig5A returns party A of the paper's Fig. 5: a choice between msg0
// and msg2, both optional (no explicit annotation).
func fig5A() *Automaton {
	a := New("party A")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("B#A#msg0"), q1)
	a.AddTransition(q0, lbl("B#A#msg2"), q2)
	return a
}

// fig5B returns party B of Fig. 5: a choice between msg1 and msg2,
// both mandatory (conjunctive annotation).
func fig5B() *Automaton {
	b := New("party B")
	q0 := b.AddState()
	q1 := b.AddState()
	q2 := b.AddState()
	b.SetStart(q0)
	b.SetFinal(q1, true)
	b.SetFinal(q2, true)
	b.AddTransition(q0, lbl("B#A#msg1"), q1)
	b.AddTransition(q0, lbl("B#A#msg2"), q2)
	b.Annotate(q0, formula.And(formula.Var("B#A#msg1"), formula.Var("B#A#msg2")))
	return b
}

func TestBuilderBasics(t *testing.T) {
	a := New("t")
	if a.NumStates() != 0 || a.Start() != None {
		t.Fatal("fresh automaton not empty")
	}
	q0 := a.AddState()
	if a.Start() != q0 {
		t.Fatal("first state did not become start")
	}
	q1 := a.AddState()
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#x"), q1) // duplicate ignored
	if a.NumTransitions() != 1 {
		t.Fatalf("NumTransitions = %d, want 1", a.NumTransitions())
	}
	a.SetFinal(q1, true)
	if !a.IsFinal(q1) || a.IsFinal(q0) {
		t.Fatal("finality wrong")
	}
	if got := a.FinalStates(); len(got) != 1 || got[0] != q1 {
		t.Fatalf("FinalStates = %v", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAnnotationAccumulation(t *testing.T) {
	a := New("t")
	q := a.AddState()
	a.Annotate(q, formula.True()) // no-op
	if len(a.Annotations(q)) != 0 {
		t.Fatal("true annotation stored")
	}
	a.Annotate(q, formula.Var("A#B#x"))
	a.Annotate(q, formula.Var("A#B#y"))
	conj := a.Annotation(q)
	if !formula.Equal(conj, formula.And(formula.Var("A#B#x"), formula.Var("A#B#y"))) {
		t.Fatalf("Annotation = %v", conj)
	}
	a.ClearAnnotations(q)
	if !a.Annotation(q).IsTrue() {
		t.Fatal("ClearAnnotations did not clear")
	}
}

func TestAlphabetAndDeterministic(t *testing.T) {
	a := fig5A()
	sigma := a.Alphabet()
	if len(sigma) != 2 || !sigma.Has(lbl("B#A#msg0")) || !sigma.Has(lbl("B#A#msg2")) {
		t.Fatalf("Alphabet = %v", sigma)
	}
	if !a.Deterministic() {
		t.Fatal("fig5A should be deterministic")
	}
	q3 := a.AddState()
	a.AddTransition(a.Start(), lbl("B#A#msg0"), q3)
	if a.Deterministic() {
		t.Fatal("duplicate label not detected")
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	a := New("bad")
	q := a.AddState()
	a.trans[q] = append(a.trans[q], edge{sym: a.syms.Intern(label.Label("oops")), to: q})
	if err := a.Validate(); err == nil {
		t.Fatal("Validate accepted malformed label")
	}
}

func TestValidateCatchesBadAnnotationVar(t *testing.T) {
	a := New("bad")
	q := a.AddState()
	a.Annotate(q, formula.Var("not-a-label"))
	if err := a.Validate(); err == nil {
		t.Fatal("Validate accepted malformed annotation variable")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := fig5B()
	c := a.Clone()
	c.SetFinal(c.Start(), true)
	c.AddTransition(c.Start(), lbl("B#A#extra"), c.Start())
	if a.IsFinal(a.Start()) {
		t.Fatal("clone shares finality")
	}
	if a.NumTransitions() == c.NumTransitions() {
		t.Fatal("clone shares transitions")
	}
}

func TestReachableAndTrim(t *testing.T) {
	a := New("t")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState() // unreachable
	a.SetStart(q0)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q2, lbl("A#B#y"), q1)
	a.SetFinal(q1, true)
	reach := a.Reachable()
	if !reach[q0] || !reach[q1] || reach[q2] {
		t.Fatalf("Reachable = %v", reach)
	}
	trimmed, remap := a.Trim()
	if trimmed.NumStates() != 2 {
		t.Fatalf("trimmed states = %d", trimmed.NumStates())
	}
	if remap[q2] != None {
		t.Fatal("unreachable state kept")
	}
	if !trimmed.IsFinal(remap[q1]) {
		t.Fatal("finality lost in trim")
	}
}

func TestCoReachableTrim(t *testing.T) {
	a := New("t")
	q0 := a.AddState()
	q1 := a.AddState()
	dead := a.AddState() // reachable but cannot reach a final state
	a.SetStart(q0)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#z"), dead)
	a.SetFinal(q1, true)
	trimmed, remap := a.TrimCoReachable()
	if trimmed.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", trimmed.NumStates())
	}
	if remap[dead] != None {
		t.Fatal("dead state survived")
	}
}

func TestTrimKeepsDeadStartState(t *testing.T) {
	a := New("t")
	q0 := a.AddState()
	a.SetStart(q0) // no finals at all
	trimmed, _ := a.TrimCoReachable()
	if trimmed.NumStates() != 1 || trimmed.Start() == None {
		t.Fatal("empty automaton lost its start state")
	}
}

func TestStep(t *testing.T) {
	a := fig5A()
	got := a.Step(a.Start(), lbl("B#A#msg0"))
	if len(got) != 1 {
		t.Fatalf("Step = %v", got)
	}
	if len(a.Step(a.Start(), lbl("B#A#msg1"))) != 0 {
		t.Fatal("Step found nonexistent transition")
	}
}

func TestDebugStringAndDOT(t *testing.T) {
	b := fig5B()
	dbg := b.DebugString()
	for _, want := range []string{"party B", "B#A#msg1", "AND"} {
		if !strings.Contains(dbg, want) {
			t.Errorf("DebugString missing %q:\n%s", want, dbg)
		}
	}
	dot := b.DOT()
	for _, want := range []string{"digraph", "doublecircle", "B#A#msg1 AND B#A#msg2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
