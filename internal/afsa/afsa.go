// Package afsa implements the annotated Finite State Automata (aFSA)
// of "On the Controlled Evolution of Process Choreographies" (ICDE
// 2006), Definition 2, together with every operator the paper's change
// framework needs:
//
//   - intersection (Def. 3) and annotated emptiness / bilateral
//     consistency (Sec. 3.2),
//   - difference (Def. 4), union (Sec. 5.2 step 2), complement,
//   - ε-removal, determinization, completion, minimization,
//   - bilateral views τ_P (Sec. 3.4) including annotation projection,
//   - canonicalization and equivalence checking used by the
//     figure-reproduction tests,
//   - language inspection helpers and DOT export.
//
// An aFSA is a tuple (Q, Σ, Δ, q0, F, QA): states, message alphabet,
// labeled transitions, start state, final states and a relation
// attaching propositional formulas (package formula) to states. The
// formulas mark message alternatives as mandatory for a trading
// partner; a state may carry several formulas, which are conjoined.
//
// States are dense integers handed out by AddState, so the
// implementation stores transitions, finality and annotations in
// slices indexed by state. Labels are likewise interned into dense
// label.Symbol values (package label's Interner), so the operator
// kernels — subset construction, partition refinement, products —
// work on integers and never hash or compare label strings on their
// hot paths. label.Label appears only at the construction and
// serialization boundary (AddTransition, Transitions, DOT, ...).
// Automata produced by an operator share the interner of their
// primary operand; NewShared builds automata on a caller-provided
// (for example per-choreography) interner, and Reintern moves an
// existing automaton onto one.
package afsa

import (
	"fmt"
	"strings"

	"repro/internal/formula"
	"repro/internal/label"
)

// StateID identifies a state of an Automaton. Valid IDs are
// 0..NumStates()-1; None marks the absence of a state.
type StateID int

// None is the invalid state ID.
const None StateID = -1

// Transition is one labeled edge of Δ. An ε transition carries
// label.Epsilon; ε edges appear only transiently during view
// generation and are removed before any product construction.
type Transition struct {
	Label label.Label
	To    StateID
}

// edge is the internal, interned form of a transition.
type edge struct {
	sym label.Symbol
	to  StateID
}

// Automaton is a mutable annotated finite state automaton. The zero
// value is unusable; use New or NewShared.
//
// Mutability ends at publication: every automaton reachable from a
// published store snapshot (party publics, bilateral views, checker
// DFAs) is read concurrently without locks, so mutations are only
// legal while an automaton is still being constructed. choreolint's
// snapshotimmut pass enforces this — the mutating methods below may
// only be reached from //choreolint:builder functions or on freshly
// constructed automata.
//
//choreolint:frozen
type Automaton struct {
	// Name is a human-readable identifier carried through operators
	// for diagnostics ("Buyer public", "τ_Buyer(Accounting)", ...).
	Name string

	syms  *label.Interner
	start StateID
	final []bool
	trans [][]edge
	anno  [][]*formula.Formula
}

// New returns an empty automaton with the given diagnostic name, no
// states and a private interner. Callers must add at least one state
// and set the start state.
func New(name string) *Automaton {
	return NewShared(name, label.NewInterner())
}

// NewShared returns an empty automaton whose labels are interned into
// in. Automata sharing one interner agree on their label.Symbol
// values, so products and comparisons between them skip all label
// re-hashing; a serving layer typically shares one interner per
// choreography snapshot.
func NewShared(name string, in *label.Interner) *Automaton {
	return &Automaton{Name: name, syms: in, start: None}
}

// Interner returns the interner holding this automaton's labels.
func (a *Automaton) Interner() *label.Interner { return a.syms }

// Reintern rewrites the automaton's symbols into in (a no-op when the
// automaton already uses it) and makes in its interner. The registry
// of a choreography calls this once per party registration so that
// every derived automaton of the snapshot shares one symbol space.
func (a *Automaton) Reintern(in *label.Interner) {
	if a.syms == in {
		return
	}
	old := a.syms.Labels()
	tr := make([]label.Symbol, len(old))
	for s := range tr {
		tr[s] = in.Intern(old[s])
	}
	for q := range a.trans {
		for i := range a.trans[q] {
			a.trans[q][i].sym = tr[a.trans[q][i].sym]
		}
	}
	a.syms = in
}

// NumStates returns |Q|.
func (a *Automaton) NumStates() int { return len(a.trans) }

// AddState creates a fresh non-final state and returns its ID. The
// first state added becomes the start state unless SetStart is called.
func (a *Automaton) AddState() StateID {
	id := StateID(len(a.trans))
	a.trans = append(a.trans, nil)
	a.final = append(a.final, false)
	a.anno = append(a.anno, nil)
	if a.start == None {
		a.start = id
	}
	return id
}

// AddStates creates n fresh states in one allocation step and returns
// the first ID.
func (a *Automaton) AddStates(n int) StateID {
	first := StateID(len(a.trans))
	if n <= 0 {
		return first
	}
	a.trans = append(a.trans, make([][]edge, n)...)
	a.final = append(a.final, make([]bool, n)...)
	a.anno = append(a.anno, make([][]*formula.Formula, n)...)
	if a.start == None {
		a.start = first
	}
	return first
}

// Start returns q0 (None if no state exists yet).
func (a *Automaton) Start() StateID { return a.start }

// SetStart makes q the start state.
func (a *Automaton) SetStart(q StateID) {
	a.mustState(q)
	a.start = q
}

// IsFinal reports whether q ∈ F.
func (a *Automaton) IsFinal(q StateID) bool {
	a.mustState(q)
	return a.final[q]
}

// SetFinal adds or removes q from F.
func (a *Automaton) SetFinal(q StateID, final bool) {
	a.mustState(q)
	a.final[q] = final
}

// FinalStates returns F in ascending order.
func (a *Automaton) FinalStates() []StateID {
	var out []StateID
	for q := range a.final {
		if a.final[q] {
			out = append(out, StateID(q))
		}
	}
	return out
}

// AddTransition inserts (from, l, to) into Δ, ignoring exact
// duplicates.
func (a *Automaton) AddTransition(from StateID, l label.Label, to StateID) {
	a.addEdgeUnique(from, a.syms.Intern(l), to)
}

// addEdgeUnique inserts the interned edge (from, sym, to), ignoring
// exact duplicates.
func (a *Automaton) addEdgeUnique(from StateID, sym label.Symbol, to StateID) {
	a.mustState(from)
	a.mustState(to)
	for _, e := range a.trans[from] {
		if e.sym == sym && e.to == to {
			return
		}
	}
	a.trans[from] = append(a.trans[from], edge{sym: sym, to: to})
}

// addEdge inserts the interned edge without the duplicate scan —
// for operator kernels that construct each (from, sym, to) at most
// once by design.
func (a *Automaton) addEdge(from StateID, sym label.Symbol, to StateID) {
	a.trans[from] = append(a.trans[from], edge{sym: sym, to: to})
}

// reserveEdges pre-sizes state q's edge list for n insertions, so the
// per-state relabeling loops of the view and trim operators allocate
// once instead of growing append by append.
func (a *Automaton) reserveEdges(q StateID, n int) {
	if n > 0 && a.trans[q] == nil {
		a.trans[q] = make([]edge, 0, n)
	}
}

// reserveStates grows the state-table capacity to n, a hint for
// operators that discover their output states one by one.
func (a *Automaton) reserveStates(n int) {
	if cap(a.trans) >= n {
		return
	}
	trans := make([][]edge, len(a.trans), n)
	copy(trans, a.trans)
	a.trans = trans
	final := make([]bool, len(a.final), n)
	copy(final, a.final)
	a.final = final
	anno := make([][]*formula.Formula, len(a.anno), n)
	copy(anno, a.anno)
	a.anno = anno
}

// Transitions returns the outgoing transitions of q sorted by
// (label, target). The returned slice is a copy.
func (a *Automaton) Transitions(q StateID) []Transition {
	a.mustState(q)
	labels := a.syms.Labels()
	out := make([]Transition, len(a.trans[q]))
	for i, e := range a.trans[q] {
		out[i] = Transition{Label: labels[e.sym], To: e.to}
	}
	// Insertion sort: transition lists are short (bounded by the
	// alphabet for DFAs) and sort.Slice's closure allocations show up
	// in the operator profiles.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Label < out[j-1].Label ||
			(out[j].Label == out[j-1].Label && out[j].To < out[j-1].To)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NumTransitions returns |Δ|.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, ts := range a.trans {
		n += len(ts)
	}
	return n
}

// Annotate attaches formula f to state q (QA in Def. 2). Attaching
// true is a no-op. Multiple annotations on one state are conjoined by
// Annotation.
func (a *Automaton) Annotate(q StateID, f *formula.Formula) {
	a.mustState(q)
	if f.IsTrue() {
		return
	}
	a.anno[q] = append(a.anno[q], f)
}

// Annotations returns the raw annotation formulas of q (a copy).
func (a *Automaton) Annotations(q StateID) []*formula.Formula {
	a.mustState(q)
	if len(a.anno[q]) == 0 {
		return nil
	}
	out := make([]*formula.Formula, len(a.anno[q]))
	copy(out, a.anno[q])
	return out
}

// Annotation returns the conjunction of q's explicit annotations
// (true when unannotated).
func (a *Automaton) Annotation(q StateID) *formula.Formula {
	a.mustState(q)
	return formula.And(a.anno[q]...)
}

// ClearAnnotations removes every annotation of q.
func (a *Automaton) ClearAnnotations(q StateID) {
	a.mustState(q)
	a.anno[q] = nil
}

// StripAnnotations returns a copy with every annotation removed — the
// plain FSA underlying the aFSA. Used by the annotation-ablation
// experiment: without mandatory annotations, bilateral consistency
// degenerates to language-intersection non-emptiness and misses the
// deadlocks the paper's Figs. 12/16 scenarios exhibit.
func (a *Automaton) StripAnnotations() *Automaton {
	c := a.Clone()
	c.Name = a.Name + " (stripped)"
	for q := range c.anno {
		c.anno[q] = nil
	}
	return c
}

// Alphabet returns Σ: every non-ε label occurring on a transition.
func (a *Automaton) Alphabet() label.Set {
	labels := a.syms.Labels()
	s := label.NewSet()
	for _, ts := range a.trans {
		for _, e := range ts {
			s.Add(labels[e.sym])
		}
	}
	return s
}

// HasEpsilon reports whether any transition is silent.
func (a *Automaton) HasEpsilon() bool {
	for _, ts := range a.trans {
		for _, e := range ts {
			if e.sym == label.SymEpsilon {
				return true
			}
		}
	}
	return false
}

// Deterministic reports whether the automaton is ε-free and no state
// has two outgoing transitions with the same label.
func (a *Automaton) Deterministic() bool {
	seen := make([]int32, a.syms.Len())
	for q, ts := range a.trans {
		mark := int32(q) + 1
		for _, e := range ts {
			if e.sym == label.SymEpsilon {
				return false
			}
			if seen[e.sym] == mark {
				return false
			}
			seen[e.sym] = mark
		}
	}
	return true
}

// Step returns the targets reachable from q by exactly label l.
func (a *Automaton) Step(q StateID, l label.Label) []StateID {
	a.mustState(q)
	sym, ok := a.syms.Lookup(l)
	if !ok {
		return nil
	}
	var out []StateID
	for _, e := range a.trans[q] {
		if e.sym == sym {
			out = append(out, e.to)
		}
	}
	sortIDs(out)
	return out
}

// Clone returns a deep copy (annotation formulas are immutable and
// shared, as is the append-only interner).
func (a *Automaton) Clone() *Automaton {
	c := &Automaton{Name: a.Name, syms: a.syms, start: a.start}
	c.final = append([]bool(nil), a.final...)
	c.trans = make([][]edge, len(a.trans))
	for q, ts := range a.trans {
		c.trans[q] = append([]edge(nil), ts...)
	}
	c.anno = make([][]*formula.Formula, len(a.anno))
	for q, fs := range a.anno {
		c.anno[q] = append([]*formula.Formula(nil), fs...)
	}
	return c
}

// Validate checks structural invariants: a start state exists, every
// transition target is a valid state, labels are well-formed, and
// annotation variables are well-formed labels.
func (a *Automaton) Validate() error {
	if a.start == None {
		return fmt.Errorf("afsa %q: no start state", a.Name)
	}
	if int(a.start) >= a.NumStates() {
		return fmt.Errorf("afsa %q: start state %d out of range", a.Name, a.start)
	}
	labels := a.syms.Labels()
	for q, ts := range a.trans {
		for _, e := range ts {
			if e.to < 0 || int(e.to) >= a.NumStates() {
				return fmt.Errorf("afsa %q: transition from %d to invalid state %d", a.Name, q, e.to)
			}
			if !labels[e.sym].Valid() {
				return fmt.Errorf("afsa %q: invalid label %q at state %d", a.Name, string(labels[e.sym]), q)
			}
		}
	}
	for q, fs := range a.anno {
		for _, f := range fs {
			for v := range f.Vars() {
				if !label.Label(v).Valid() || v == "" {
					return fmt.Errorf("afsa %q: state %d annotation references invalid label %q", a.Name, q, v)
				}
			}
		}
	}
	return nil
}

// CheckPositive reports an error when any annotation contains
// negation; the annotated-emptiness fixpoint requires positive
// formulas (see DESIGN.md).
func (a *Automaton) CheckPositive() error {
	for q, fs := range a.anno {
		for _, f := range fs {
			if !f.Positive() {
				return fmt.Errorf("afsa %q: state %d has non-positive annotation %v", a.Name, q, f)
			}
		}
	}
	return nil
}

// Reachable returns the set of states reachable from the start state
// (following ε like any other edge).
func (a *Automaton) Reachable() []bool {
	seen := make([]bool, a.NumStates())
	if a.start == None {
		return seen
	}
	stack := []StateID{a.start}
	seen[a.start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.trans[q] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// CoReachable returns the set of states from which some final state is
// reachable (pure graph reachability; annotations are ignored). The
// reverse adjacency is built in compressed sparse form: two
// allocations instead of one bucket per state.
func (a *Automaton) CoReachable() []bool {
	n := a.NumStates()
	m := 0
	for q := 0; q < n; q++ {
		m += len(a.trans[q])
	}
	off := make([]int32, n+1)
	for q := 0; q < n; q++ {
		for _, e := range a.trans[q] {
			off[e.to+1]++
		}
	}
	for q := 0; q < n; q++ {
		off[q+1] += off[q]
	}
	flat := make([]StateID, m)
	fill := make([]int32, n)
	copy(fill, off[:n])
	for q := 0; q < n; q++ {
		for _, e := range a.trans[q] {
			flat[fill[e.to]] = StateID(q)
			fill[e.to]++
		}
	}
	seen := make([]bool, n)
	var stack []StateID
	for q, f := range a.final {
		if f {
			seen[q] = true
			stack = append(stack, StateID(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range flat[off[q]:off[q+1]] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Trim returns a copy containing only the states reachable from the
// start state (renumbered). The returned map sends old state IDs to
// new ones (None for dropped states).
func (a *Automaton) Trim() (*Automaton, map[StateID]StateID) {
	return a.restrict(a.Reachable())
}

// TrimCoReachable returns a copy containing only states that are both
// reachable and co-reachable. The start state is always kept (an
// automaton whose start state is dead keeps exactly that one state so
// that it remains a valid, empty automaton).
func (a *Automaton) TrimCoReachable() (*Automaton, map[StateID]StateID) {
	reach, coreach := a.Reachable(), a.CoReachable()
	keep := make([]bool, a.NumStates())
	for q := range keep {
		keep[q] = reach[q] && coreach[q]
	}
	if a.start != None {
		keep[a.start] = true
	}
	return a.restrict(keep)
}

func (a *Automaton) restrict(keep []bool) (*Automaton, map[StateID]StateID) {
	out := NewShared(a.Name, a.syms)
	remap := make(map[StateID]StateID, a.NumStates())
	kept := 0
	for q := 0; q < a.NumStates(); q++ {
		if keep[q] {
			remap[StateID(q)] = StateID(kept)
			kept++
		} else {
			remap[StateID(q)] = None
		}
	}
	out.AddStates(kept)
	for q := 0; q < a.NumStates(); q++ {
		nq := remap[StateID(q)]
		if nq == None {
			continue
		}
		out.final[nq] = a.final[q]
		out.anno[nq] = append([]*formula.Formula(nil), a.anno[q]...)
		out.reserveEdges(nq, len(a.trans[q]))
		for _, e := range a.trans[q] {
			if nt := remap[e.to]; nt != None {
				out.addEdgeUnique(nq, e.sym, nt)
			}
		}
	}
	if a.start != None && remap[a.start] != None {
		out.SetStart(remap[a.start])
	}
	return out, remap
}

// labelRanks returns rank[sym] = position of sym's label in the
// lexicographic order of all interned labels (cached on the
// interner). Sorting edges by rank reproduces label-order iteration
// without touching strings.
func (a *Automaton) labelRanks() []int32 {
	return a.syms.Ranks()
}

// sortEdges sorts es in place by (rank, target); insertion sort, as
// edge lists are short and this runs inside the product kernels.
func sortEdges(es []edge, ranks []int32) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1], ranks); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func edgeLess(a, b edge, ranks []int32) bool {
	if ranks[a.sym] != ranks[b.sym] {
		return ranks[a.sym] < ranks[b.sym]
	}
	return a.to < b.to
}

// DebugString renders the automaton in a stable, line-oriented textual
// form for test failure messages and the figures tool.
func (a *Automaton) DebugString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aFSA %q: %d states, start %d\n", a.Name, a.NumStates(), a.start)
	for q := 0; q < a.NumStates(); q++ {
		marker := " "
		if a.final[q] {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %s%d", marker, q)
		if f := a.Annotation(StateID(q)); !f.IsTrue() {
			fmt.Fprintf(&b, " [%s]", f)
		}
		b.WriteString("\n")
		for _, t := range a.Transitions(StateID(q)) {
			fmt.Fprintf(&b, "      --%s--> %d\n", t.Label, t.To)
		}
	}
	return b.String()
}

func (a *Automaton) mustState(q StateID) {
	if q < 0 || int(q) >= a.NumStates() {
		panic(fmt.Sprintf("afsa %q: state %d out of range [0,%d)", a.Name, q, a.NumStates()))
	}
}
