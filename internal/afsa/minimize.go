package afsa

import (
	"fmt"
	"sort"

	"repro/internal/formula"
)

// Minimize returns the annotation-preserving minimal deterministic
// automaton for a: ε transitions are removed, the automaton is
// determinized, dead states (unable to reach a final state) are
// trimmed, and language-equivalent states are merged by Moore
// partition refinement. Two states are only ever merged when they
// carry semantically equal annotations, so the minimized automaton is
// both language- and viability-equivalent to the input (the paper
// presents its view automata "minimized", Figs. 8, 13, 17).
func (a *Automaton) Minimize() *Automaton {
	m, _ := a.MinimizeWithMap()
	return m
}

// MinimizeWithMap is Minimize and additionally reports, for each input
// state of the determinized form, the subset of a's original states it
// represents, merged across equivalence classes. The map sends each
// minimized state to the original state IDs it stands for; it is what
// lets the mapping table of Sec. 3.3 survive minimization.
func (a *Automaton) MinimizeWithMap() (*Automaton, map[StateID][]StateID) {
	det, detMembers := a.DeterminizeWithMap()
	trimmed, trimMap := det.TrimCoReachable()

	// Translate determinization membership through the trim.
	members := make(map[StateID][]StateID)
	for oldID, newID := range trimMap {
		if newID != None {
			members[newID] = append([]StateID(nil), detMembers[oldID]...)
		}
	}

	n := trimmed.NumStates()
	if n == 0 {
		return trimmed, members
	}

	// Initial partition: finality + canonical annotation string.
	class := make([]int, n)
	classKey := map[string]int{}
	for q := 0; q < n; q++ {
		key := fmt.Sprintf("%t|%s", trimmed.final[q], trimmed.Annotation(StateID(q)).String())
		id, ok := classKey[key]
		if !ok {
			id = len(classKey)
			classKey[key] = id
		}
		class[q] = id
	}

	// Moore refinement; missing transitions map to class -1 (implicit
	// dead sink).
	for {
		next := make([]int, n)
		sigKey := map[string]int{}
		for q := 0; q < n; q++ {
			var sig []byte
			sig = append(sig, []byte(fmt.Sprintf("%d", class[q]))...)
			for _, t := range trimmed.Transitions(StateID(q)) {
				sig = append(sig, []byte(fmt.Sprintf("|%s>%d", t.Label, class[t.To]))...)
			}
			key := string(sig)
			id, ok := sigKey[key]
			if !ok {
				id = len(sigKey)
				sigKey[key] = id
			}
			next[q] = id
		}
		same := true
		for q := 0; q < n; q++ {
			if next[q] != class[q] {
				same = false
				break
			}
		}
		class = next
		if same || len(sigKey) == n {
			break
		}
	}

	// Quotient automaton.
	out := New(a.Name)
	rep := map[int]StateID{} // class -> new state
	classOf := func(q StateID) StateID {
		id, ok := rep[class[q]]
		if !ok {
			id = out.AddState()
			rep[class[q]] = id
		}
		return id
	}
	// Allocate states in a stable order: BFS from the start state.
	order := bfsOrder(trimmed)
	for _, q := range order {
		classOf(q)
	}
	outMembers := make(map[StateID][]StateID)
	for _, q := range order {
		nq := classOf(q)
		out.final[nq] = trimmed.final[q]
		if len(out.anno[nq]) == 0 {
			for _, f := range trimmed.anno[q] {
				out.Annotate(nq, f)
			}
		}
		outMembers[nq] = append(outMembers[nq], members[q]...)
		for _, t := range trimmed.Transitions(q) {
			out.AddTransition(nq, t.Label, classOf(t.To))
		}
	}
	out.SetStart(classOf(trimmed.start))
	for nq := range outMembers {
		outMembers[nq] = dedupStates(outMembers[nq])
	}
	return out, outMembers
}

func bfsOrder(a *Automaton) []StateID {
	if a.start == None {
		return nil
	}
	seen := make([]bool, a.NumStates())
	order := []StateID{a.start}
	seen[a.start] = true
	for i := 0; i < len(order); i++ {
		for _, t := range a.Transitions(order[i]) {
			if !seen[t.To] {
				seen[t.To] = true
				order = append(order, t.To)
			}
		}
	}
	// Append unreachable states in numeric order so every state gets a
	// class representative.
	for q := 0; q < a.NumStates(); q++ {
		if !seen[q] {
			order = append(order, StateID(q))
		}
	}
	return order
}

func dedupStates(in []StateID) []StateID {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	prev := None
	for _, s := range in {
		if s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}

// Canonical returns a structurally canonical automaton: minimized,
// states renumbered in BFS order (transitions explored in label
// order), transition lists sorted. Two automata with the same language
// and annotations canonicalize to identical structures, which is how
// the figure-reproduction tests compare computed against expected
// artifacts.
func (a *Automaton) Canonical() *Automaton {
	m := a.Minimize()
	order := bfsOrder(m)
	remap := make([]StateID, m.NumStates())
	for i, q := range order {
		remap[q] = StateID(i)
	}
	out := New(a.Name)
	out.AddStates(m.NumStates())
	if m.NumStates() == 0 {
		return out
	}
	out.SetStart(remap[m.start])
	for q := 0; q < m.NumStates(); q++ {
		nq := remap[q]
		out.final[nq] = m.final[q]
		for _, f := range m.anno[q] {
			out.Annotate(nq, f)
		}
		for _, t := range m.Transitions(StateID(q)) {
			out.AddTransition(nq, t.Label, remap[t.To])
		}
	}
	return out
}

// Equivalent reports whether a and b have the same language and the
// same (semantically compared) annotations on corresponding states of
// their canonical forms.
func Equivalent(a, b *Automaton) bool {
	return equivalentExplain(a, b) == ""
}

// ExplainDifference returns "" when Equivalent(a, b), otherwise a
// human-readable description of the first structural difference
// between the canonical forms — used in test failure messages.
func ExplainDifference(a, b *Automaton) string { return equivalentExplain(a, b) }

func equivalentExplain(a, b *Automaton) string {
	ca, cb := a.Canonical(), b.Canonical()
	if ca.NumStates() != cb.NumStates() {
		return fmt.Sprintf("state count %d vs %d\nA:\n%s\nB:\n%s", ca.NumStates(), cb.NumStates(), ca.DebugString(), cb.DebugString())
	}
	if ca.NumStates() == 0 {
		return ""
	}
	if ca.start != cb.start {
		return fmt.Sprintf("start state %d vs %d", ca.start, cb.start)
	}
	for q := 0; q < ca.NumStates(); q++ {
		if ca.final[q] != cb.final[q] {
			return fmt.Sprintf("state %d finality %t vs %t\nA:\n%s\nB:\n%s", q, ca.final[q], cb.final[q], ca.DebugString(), cb.DebugString())
		}
		ta, tb := ca.Transitions(StateID(q)), cb.Transitions(StateID(q))
		if len(ta) != len(tb) {
			return fmt.Sprintf("state %d transition count %d vs %d\nA:\n%s\nB:\n%s", q, len(ta), len(tb), ca.DebugString(), cb.DebugString())
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return fmt.Sprintf("state %d transition %d: %v vs %v\nA:\n%s\nB:\n%s", q, i, ta[i], tb[i], ca.DebugString(), cb.DebugString())
			}
		}
		if !annotationsEqual(ca, cb, StateID(q)) {
			return fmt.Sprintf("state %d annotation %q vs %q", q, ca.Annotation(StateID(q)), cb.Annotation(StateID(q)))
		}
	}
	return ""
}

func annotationsEqual(a, b *Automaton, q StateID) bool {
	fa, fb := a.Annotation(q), b.Annotation(q)
	if fa.String() == fb.String() {
		return true
	}
	return formula.Equal(fa, fb)
}

// SameLanguage reports language equality ignoring annotations.
func SameLanguage(a, b *Automaton) bool {
	return !hasAcceptingPath(a.Difference(b)) && !hasAcceptingPath(b.Difference(a))
}

// hasAcceptingPath reports plain FSA non-emptiness (annotations
// ignored): some final state is reachable.
func hasAcceptingPath(a *Automaton) bool {
	if a.start == None {
		return false
	}
	reach := a.Reachable()
	for q, f := range a.final {
		if f && reach[q] {
			return true
		}
	}
	return false
}
