package afsa

import (
	"fmt"

	"repro/internal/formula"
)

// Minimize returns the annotation-preserving minimal deterministic
// automaton for a: ε transitions are removed, the automaton is
// determinized, dead states (unable to reach a final state) are
// trimmed, and language-equivalent states are merged by Moore
// partition refinement. Two states are only ever merged when they
// carry semantically equal annotations, so the minimized automaton is
// both language- and viability-equivalent to the input (the paper
// presents its view automata "minimized", Figs. 8, 13, 17).
func (a *Automaton) Minimize() *Automaton {
	m, _ := a.minimize(false)
	return m
}

// MinimizeWithMap is Minimize and additionally reports, for each input
// state of the determinized form, the subset of a's original states it
// represents, merged across equivalence classes. The map sends each
// minimized state to the original state IDs it stands for; it is what
// lets the mapping table of Sec. 3.3 survive minimization.
func (a *Automaton) MinimizeWithMap() (*Automaton, map[StateID][]StateID) {
	return a.minimize(true)
}

// minimize is the shared implementation; membership tracking is built
// only when wantMembers is set.
func (a *Automaton) minimize(wantMembers bool) (*Automaton, map[StateID][]StateID) {
	det, detMembers := a.determinize(wantMembers)
	trimmed, trimMap := det.TrimCoReachable()

	// Translate determinization membership through the trim.
	var members map[StateID][]StateID
	if wantMembers {
		members = make(map[StateID][]StateID)
		for oldID, newID := range trimMap {
			if newID != None {
				members[newID] = append([]StateID(nil), detMembers[oldID]...)
			}
		}
	}

	n := trimmed.NumStates()
	if n == 0 {
		return trimmed, members
	}

	// Initial partition: finality + canonical annotation string. The
	// annotation string is the one piece of the partition that has to
	// stay textual (annotations are compared semantically, via their
	// canonical rendering); it is computed once per state, outside the
	// refinement loop.
	class := make([]int, n)
	classKey := map[string]int{}
	for q := 0; q < n; q++ {
		key := trimmed.Annotation(StateID(q)).String()
		if trimmed.final[q] {
			key = "T|" + key
		} else {
			key = "F|" + key
		}
		id, ok := classKey[key]
		if !ok {
			id = len(classKey)
			classKey[key] = id
		}
		class[q] = id
	}

	// Sort each state's edge list by symbol once: trimmed is
	// deterministic (at most one edge per symbol), so the sorted lists
	// are this automaton's canonical signatures modulo the class IDs.
	// trimmed is private to this call; reordering its edges is safe.
	for q := range trimmed.trans {
		sortEdgesBySym(trimmed.trans[q])
	}

	// Moore refinement on integer signatures: class of the state
	// followed by (symbol, class of target) pairs in symbol order.
	// Signatures are packed into a reused byte buffer; the map lookup
	// with a string(sig) key does not allocate, and the key string is
	// materialized only for newly discovered classes (at most n).
	var sig []byte
	next := make([]int, n)
	for {
		sigKey := map[string]int{}
		for q := 0; q < n; q++ {
			sig = appendUint32(sig[:0], uint32(class[q]))
			for _, e := range trimmed.trans[q] {
				sig = appendUint32(sig, uint32(e.sym)+1)
				sig = appendUint32(sig, uint32(class[e.to]))
			}
			id, ok := sigKey[string(sig)]
			if !ok {
				id = len(sigKey)
				sigKey[string(sig)] = id
			}
			next[q] = id
		}
		same := true
		for q := 0; q < n; q++ {
			if next[q] != class[q] {
				same = false
				break
			}
		}
		class, next = next, class
		if same || len(sigKey) == n {
			break
		}
	}

	// Quotient automaton.
	out := NewShared(a.Name, trimmed.syms)
	rep := map[int]StateID{} // class -> new state
	classOf := func(q StateID) StateID {
		id, ok := rep[class[q]]
		if !ok {
			id = out.AddState()
			rep[class[q]] = id
		}
		return id
	}
	// Allocate states in a stable order: BFS from the start state.
	order := bfsOrder(trimmed)
	for _, q := range order {
		classOf(q)
	}
	var outMembers map[StateID][]StateID
	if wantMembers {
		outMembers = make(map[StateID][]StateID)
	}
	for _, q := range order {
		nq := classOf(q)
		out.final[nq] = trimmed.final[q]
		if len(out.anno[nq]) == 0 {
			for _, f := range trimmed.anno[q] {
				out.Annotate(nq, f)
			}
		}
		if wantMembers {
			outMembers[nq] = append(outMembers[nq], members[q]...)
		}
		// Every class representative already has its state (the
		// classOf pass above), so edge insertion order is not
		// observable; iterate the raw edge lists.
		for _, e := range trimmed.trans[q] {
			out.addEdgeUnique(nq, e.sym, classOf(e.to))
		}
	}
	out.SetStart(classOf(trimmed.start))
	for nq := range outMembers {
		outMembers[nq] = dedupStates(outMembers[nq])
	}
	return out, outMembers
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func bfsOrder(a *Automaton) []StateID {
	if a.start == None {
		return nil
	}
	ranks := a.labelRanks()
	seen := make([]bool, a.NumStates())
	order := make([]StateID, 1, a.NumStates())
	order[0] = a.start
	seen[a.start] = true
	var scratch []edge
	for i := 0; i < len(order); i++ {
		// Explore in label order (via symbol ranks) for the stable
		// numbering Canonical depends on.
		scratch = append(scratch[:0], a.trans[order[i]]...)
		sortEdges(scratch, ranks)
		for _, e := range scratch {
			if !seen[e.to] {
				seen[e.to] = true
				order = append(order, e.to)
			}
		}
	}
	// Append unreachable states in numeric order so every state gets a
	// class representative.
	for q := 0; q < a.NumStates(); q++ {
		if !seen[q] {
			order = append(order, StateID(q))
		}
	}
	return order
}

func dedupStates(in []StateID) []StateID {
	sortIDs(in)
	return dedupSortedIDs(in)
}

// Canonical returns a structurally canonical automaton: minimized,
// states renumbered in BFS order (transitions explored in label
// order), transition lists sorted. Two automata with the same language
// and annotations canonicalize to identical structures, which is how
// the figure-reproduction tests compare computed against expected
// artifacts.
func (a *Automaton) Canonical() *Automaton {
	m := a.Minimize()
	order := bfsOrder(m)
	remap := make([]StateID, m.NumStates())
	for i, q := range order {
		remap[q] = StateID(i)
	}
	out := NewShared(a.Name, m.syms)
	out.AddStates(m.NumStates())
	if m.NumStates() == 0 {
		return out
	}
	out.SetStart(remap[m.start])
	for q := 0; q < m.NumStates(); q++ {
		nq := remap[q]
		out.final[nq] = m.final[q]
		for _, f := range m.anno[q] {
			out.Annotate(nq, f)
		}
		for _, e := range m.trans[q] {
			out.addEdgeUnique(nq, e.sym, remap[e.to])
		}
	}
	return out
}

// Equivalent reports whether a and b have the same language and the
// same (semantically compared) annotations on corresponding states of
// their canonical forms.
func Equivalent(a, b *Automaton) bool {
	return equivalentExplain(a, b) == ""
}

// ExplainDifference returns "" when Equivalent(a, b), otherwise a
// human-readable description of the first structural difference
// between the canonical forms — used in test failure messages.
func ExplainDifference(a, b *Automaton) string { return equivalentExplain(a, b) }

func equivalentExplain(a, b *Automaton) string {
	ca, cb := a.Canonical(), b.Canonical()
	if ca.NumStates() != cb.NumStates() {
		return fmt.Sprintf("state count %d vs %d\nA:\n%s\nB:\n%s", ca.NumStates(), cb.NumStates(), ca.DebugString(), cb.DebugString())
	}
	if ca.NumStates() == 0 {
		return ""
	}
	if ca.start != cb.start {
		return fmt.Sprintf("start state %d vs %d", ca.start, cb.start)
	}
	for q := 0; q < ca.NumStates(); q++ {
		if ca.final[q] != cb.final[q] {
			return fmt.Sprintf("state %d finality %t vs %t\nA:\n%s\nB:\n%s", q, ca.final[q], cb.final[q], ca.DebugString(), cb.DebugString())
		}
		ta, tb := ca.Transitions(StateID(q)), cb.Transitions(StateID(q))
		if len(ta) != len(tb) {
			return fmt.Sprintf("state %d transition count %d vs %d\nA:\n%s\nB:\n%s", q, len(ta), len(tb), ca.DebugString(), cb.DebugString())
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return fmt.Sprintf("state %d transition %d: %v vs %v\nA:\n%s\nB:\n%s", q, i, ta[i], tb[i], ca.DebugString(), cb.DebugString())
			}
		}
		if !annotationsEqual(ca, cb, StateID(q)) {
			return fmt.Sprintf("state %d annotation %q vs %q", q, ca.Annotation(StateID(q)), cb.Annotation(StateID(q)))
		}
	}
	return ""
}

func annotationsEqual(a, b *Automaton, q StateID) bool {
	fa, fb := a.Annotation(q), b.Annotation(q)
	if fa.String() == fb.String() {
		return true
	}
	return formula.Equal(fa, fb)
}

// SameLanguage reports language equality ignoring annotations.
func SameLanguage(a, b *Automaton) bool {
	return !hasAcceptingPath(a.Difference(b)) && !hasAcceptingPath(b.Difference(a))
}

// hasAcceptingPath reports plain FSA non-emptiness (annotations
// ignored): some final state is reachable.
func hasAcceptingPath(a *Automaton) bool {
	if a.start == None {
		return false
	}
	reach := a.Reachable()
	for q, f := range a.final {
		if f && reach[q] {
			return true
		}
	}
	return false
}

// sortEdgesBySym insertion-sorts one state's edge list by symbol in
// place. The lists are short and nearly sorted, and the loop runs once
// per state of every minimized automaton; allocgate proves it
// allocation-free.
//
//choreolint:allocfree
func sortEdgesBySym(es []edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].sym < es[j-1].sym; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
