package afsa

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/label"
)

// View computes the bilateral view τ_party(a) of Sec. 3.4: every
// transition whose label does not involve party is relabeled with ε,
// annotations are projected onto the visible alphabet, and the result
// is ε-removed, determinized and minimized (the paper presents views
// minimized, Fig. 8).
//
// Annotation projection (DESIGN.md §3): a hidden variable v annotated
// at state r — a mandatory alternative the partner cannot observe — is
// substituted by the disjunction of the first *visible* labels
// reachable from r's v-successors through hidden transitions. When the
// obligation can discharge invisibly (a final state or nothing visible
// follows), the variable is substituted by true. This reproduces
// Fig. 12a, where the hidden A#L#deliverOp conjunct of the accounting
// credit decision surfaces as A#B#deliveryOp in the buyer view.
func (a *Automaton) View(party string) *Automaton {
	v := a.ViewRaw(party)
	out := v.Minimize()
	out.Name = v.Name
	return out
}

// ViewRaw is View without the final minimization; the propagation
// algorithms of Sec. 5 use it when they need to keep state identities
// aligned with the pre-view automaton.
func (a *Automaton) ViewRaw(party string) *Automaton {
	labels := a.syms.Labels()
	// Per-symbol visibility, computed once instead of per transition.
	vis := make([]bool, len(labels))
	for s := range labels {
		vis[s] = labels[s].Involves(party)
	}
	out := NewShared(fmt.Sprintf("τ_%s(%s)", party, a.Name), a.syms)
	out.AddStates(a.NumStates())
	if a.start != None {
		out.SetStart(a.start)
	}
	for q := 0; q < a.NumStates(); q++ {
		out.final[q] = a.final[q]
		out.reserveEdges(StateID(q), len(a.trans[q]))
		for _, e := range a.trans[q] {
			if vis[e.sym] {
				out.addEdgeUnique(StateID(q), e.sym, e.to)
			} else {
				out.addEdgeUnique(StateID(q), label.SymEpsilon, e.to)
			}
		}
		for _, f := range a.anno[q] {
			out.Annotate(StateID(q), projectAnnotation(a, StateID(q), f, party, labels, vis))
		}
	}
	return out
}

// projectAnnotation substitutes hidden variables of f, evaluated at
// state q, by the disjunction of the first visible labels reachable
// from the hidden transition's targets (true when the obligation can
// discharge invisibly). labels and vis are the symbol table and
// per-symbol visibility of a's interner.
func projectAnnotation(a *Automaton, q StateID, f *formula.Formula, party string, labels []label.Label, vis []bool) *formula.Formula {
	return f.Substitute(func(name string) *formula.Formula {
		l := label.Label(name)
		if l.Involves(party) {
			return nil // keep visible variables unchanged
		}
		sym, known := a.syms.Lookup(l)
		if !known || !hasEdge(a, q, sym) {
			// The hidden alternative does not exist at the annotated
			// state: it can never be satisfied, before or after the
			// projection.
			return formula.False()
		}
		var firsts []*formula.Formula
		for _, e := range a.trans[q] {
			if e.sym != sym {
				continue
			}
			fs, dischargeable := firstVisible(a, e.to, labels, vis)
			if dischargeable {
				// The obligation can complete without the partner
				// observing anything; it imposes no visible constraint.
				return formula.True()
			}
			firsts = append(firsts, fs...)
		}
		if len(firsts) == 0 {
			// The hidden branch reaches neither a visible label nor a
			// final state: it is a dead alternative.
			return formula.False()
		}
		return formula.Or(firsts...)
	})
}

func hasEdge(a *Automaton, q StateID, sym label.Symbol) bool {
	for _, e := range a.trans[q] {
		if e.sym == sym {
			return true
		}
	}
	return false
}

// firstVisible collects the first visible labels reachable from q via
// hidden transitions only, and reports whether a final state is
// reachable invisibly (the obligation discharges without the partner
// seeing anything).
func firstVisible(a *Automaton, q StateID, labels []label.Label, vis []bool) ([]*formula.Formula, bool) {
	seen := make([]bool, a.NumStates())
	var out []*formula.Formula
	labelSeen := map[label.Symbol]bool{}
	discharge := false
	var walk func(s StateID)
	walk = func(s StateID) {
		if seen[s] {
			return
		}
		seen[s] = true
		if a.final[s] {
			discharge = true
		}
		for _, e := range a.trans[s] {
			if vis[e.sym] {
				if !labelSeen[e.sym] {
					labelSeen[e.sym] = true
					out = append(out, formula.Var(string(labels[e.sym])))
				}
			} else {
				walk(e.to)
			}
		}
	}
	walk(q)
	return out, discharge
}

// Restrict returns a copy of a containing only transitions between
// parties p and q (both directions); other transitions are dropped
// entirely (not ε'd). Used by the simulator to build bilateral
// sub-protocols.
func (a *Automaton) Restrict(p, q string) *Automaton {
	labels := a.syms.Labels()
	keep := make([]bool, len(labels))
	for s := range labels {
		keep[s] = labels[s].Between(p, q)
	}
	out := NewShared(fmt.Sprintf("%s|%s,%s", a.Name, p, q), a.syms)
	out.AddStates(a.NumStates())
	if a.start != None {
		out.SetStart(a.start)
	}
	for s := 0; s < a.NumStates(); s++ {
		out.final[s] = a.final[s]
		for _, f := range a.anno[s] {
			out.Annotate(StateID(s), f)
		}
		for _, e := range a.trans[s] {
			if keep[e.sym] {
				out.addEdgeUnique(StateID(s), e.sym, e.to)
			}
		}
	}
	return out
}
