package afsa

// Regression tests for ownership and aliasing in the subset
// construction. The historical implementation sorted and compacted
// caller-derived bucket slices in place and aliased member sets into
// its worklist; the interned kernel documents and enforces copy
// semantics instead: the input automaton is never mutated, and the
// returned member slices are caller-owned.

import (
	"math/rand"
	"testing"

	"repro/internal/label"
)

func TestDeterminizeDoesNotMutateInput(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := annotatedNFA(seed, int(seed)+2)
		before := a.DebugString()
		a.Determinize()
		a.DeterminizeWithMap()
		a.Minimize()
		a.MinimizeWithMap()
		if after := a.DebugString(); after != before {
			t.Fatalf("seed %d: operators mutated their input\nbefore:\n%s\nafter:\n%s", seed, before, after)
		}
	}
}

func TestDeterminizeMembersAreOwnedCopies(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomDFA(r, 5)
	n := a.NumStates()
	// Force real subsets: nondeterminism on a shared label.
	l := testAlphabet[0]
	for q := 0; q < n; q++ {
		a.AddTransition(StateID(q), l, StateID((q+1)%n))
		a.AddTransition(StateID(q), l, StateID((q+2)%n))
	}

	d1, m1 := a.DeterminizeWithMap()
	// Clobber every returned member slice.
	for _, states := range m1 {
		for i := range states {
			states[i] = StateID(-7)
		}
	}
	// A second run must be unaffected by the mutation, and the
	// automaton itself must still canonicalize identically.
	d2, m2 := a.DeterminizeWithMap()
	if d1.DebugString() != d2.DebugString() {
		t.Fatalf("mutating members changed determinization:\n%s\nvs\n%s", d1.DebugString(), d2.DebugString())
	}
	for id, states := range m2 {
		for i, s := range states {
			if s == StateID(-7) {
				t.Fatalf("state %d member %d aliases the previously returned slice", id, i)
			}
			if i > 0 && states[i-1] >= s {
				t.Fatalf("state %d members not sorted/deduped: %v", id, states)
			}
		}
	}
}

func TestMinimizeMembersAreOwnedCopies(t *testing.T) {
	a := annotatedNFA(11, 5)
	m, members := a.MinimizeWithMap()
	for _, states := range members {
		for i := range states {
			states[i] = StateID(-9)
		}
	}
	m2, members2 := a.MinimizeWithMap()
	if m.DebugString() != m2.DebugString() {
		t.Fatal("mutating members changed minimization")
	}
	for id, states := range members2 {
		for _, s := range states {
			if s == StateID(-9) {
				t.Fatalf("state %d members alias the previously returned slice", id)
			}
		}
	}
}

func TestStepperMatchesStep(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a := annotatedNFA(seed, int(seed%5)+2).Determinize()
		st := NewStepper(a)
		if st.Start() != a.Start() {
			t.Fatalf("seed %d: stepper start %d, automaton %d", seed, st.Start(), a.Start())
		}
		for q := 0; q < a.NumStates(); q++ {
			for _, l := range testAlphabet {
				want := None
				if targets := a.Step(StateID(q), l); len(targets) > 0 {
					want = targets[0]
				}
				if got := st.Step(StateID(q), l); got != want {
					t.Fatalf("seed %d: Step(%d,%s) = %d, want %d", seed, q, l, got, want)
				}
			}
			if got := st.Step(StateID(q), label.MustParse("Z#Q#unknown")); got != None {
				t.Fatalf("unknown label stepped to %d", got)
			}
		}
	}
}

// StepSym must agree with Step on every interned symbol and guard
// None, negative and out-of-range symbols (labels interned after the
// stepper was built fall outside its dense table).
func TestStepSymMatchesStep(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a := annotatedNFA(seed, int(seed%5)+2).Determinize()
		st := NewStepper(a)
		for q := 0; q < a.NumStates(); q++ {
			for _, l := range testAlphabet {
				sym, ok := st.Symbol(l)
				if !ok {
					if got := st.Step(StateID(q), l); got != None {
						t.Fatalf("seed %d: %s steps to %d but has no symbol", seed, l, got)
					}
					continue
				}
				if got, want := st.StepSym(StateID(q), sym), st.Step(StateID(q), l); got != want {
					t.Fatalf("seed %d: StepSym(%d, %d) = %d, Step(%d, %s) = %d", seed, q, sym, got, q, l, want)
				}
			}
			if got := st.StepSym(StateID(q), label.Symbol(-1)); got != None {
				t.Fatalf("negative symbol stepped to %d", got)
			}
			if got := st.StepSym(StateID(q), label.Symbol(1<<20)); got != None {
				t.Fatalf("out-of-range symbol stepped to %d", got)
			}
		}
		if got := st.StepSym(None, 0); got != None {
			t.Fatalf("StepSym from None = %d", got)
		}
	}
}
