package afsa

import (
	"math/rand"
	"testing"

	"repro/internal/formula"
	"repro/internal/label"
)

func TestDeterminizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		a := randomNFA(r, 5)
		d := a.Determinize()
		if !d.Deterministic() {
			t.Fatalf("trial %d: Determinize output nondeterministic", trial)
		}
		for i := 0; i < 50; i++ {
			w := randomWord(r, 6)
			if a.Accepts(w) != d.Accepts(w) {
				t.Fatalf("trial %d: determinize changed acceptance of %v", trial, w)
			}
		}
	}
}

// randomNFA builds a random NFA with ε transitions.
func randomNFA(r *rand.Rand, states int) *Automaton {
	a := New("nfa")
	for i := 0; i < states; i++ {
		a.AddState()
	}
	a.SetStart(0)
	for q := 0; q < states; q++ {
		k := r.Intn(4)
		for i := 0; i < k; i++ {
			l := testAlphabet[r.Intn(len(testAlphabet))]
			a.AddTransition(StateID(q), l, StateID(r.Intn(states)))
		}
		if r.Intn(100) < 20 {
			a.AddTransition(StateID(q), label.Epsilon, StateID(r.Intn(states)))
		}
		if r.Intn(100) < 30 {
			a.SetFinal(StateID(q), true)
		}
	}
	return a
}

func TestRemoveEpsilonPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		a := randomNFA(r, 5)
		e := a.RemoveEpsilon()
		if e.HasEpsilon() {
			t.Fatalf("trial %d: ε remains", trial)
		}
		for i := 0; i < 50; i++ {
			w := randomWord(r, 6)
			if a.Accepts(w) != e.Accepts(w) {
				t.Fatalf("trial %d: ε-removal changed acceptance of %v", trial, w)
			}
		}
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		a := randomNFA(r, 5)
		m := a.Minimize()
		for i := 0; i < 50; i++ {
			w := randomWord(r, 6)
			if a.Accepts(w) != m.Accepts(w) {
				t.Fatalf("trial %d: minimize changed acceptance of %v", trial, w)
			}
		}
	}
}

func TestMinimizeMergesEquivalentStates(t *testing.T) {
	// Two parallel branches accepting the same suffix merge.
	a := New("dup")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	q3 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q3, true)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#y"), q2)
	a.AddTransition(q1, lbl("A#B#z"), q3)
	a.AddTransition(q2, lbl("A#B#z"), q3)
	m := a.Minimize()
	if m.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3 (q1,q2 merge):\n%s", m.NumStates(), m.DebugString())
	}
}

func TestMinimizeKeepsAnnotationDistinctStates(t *testing.T) {
	// Same language, different annotations: states must NOT merge,
	// because merging would change viability.
	a := New("annot")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	q3 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q3, true)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#y"), q2)
	a.AddTransition(q1, lbl("A#B#z"), q3)
	a.AddTransition(q2, lbl("A#B#z"), q3)
	a.Annotate(q1, formula.Var("A#B#z"))
	m := a.Minimize()
	if m.NumStates() != 4 {
		t.Fatalf("annotated states merged: %d states\n%s", m.NumStates(), m.DebugString())
	}
}

func TestMinimizePreservesViability(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		a := randomAnnotated(r, 5)
		e1, err1 := a.IsEmpty()
		m := a.Minimize()
		e2, err2 := m.IsEmpty()
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v %v", trial, err1, err2)
		}
		if e1 != e2 {
			t.Fatalf("trial %d: minimize changed emptiness %v -> %v\nbefore:\n%s\nafter:\n%s",
				trial, e1, e2, a.DebugString(), m.DebugString())
		}
	}
}

// randomAnnotated builds a random DFA with positive annotations drawn
// from outgoing labels (the shape the BPEL mapping produces).
func randomAnnotated(r *rand.Rand, states int) *Automaton {
	a := randomDFA(r, states)
	for q := 0; q < a.NumStates(); q++ {
		ts := a.Transitions(StateID(q))
		if len(ts) >= 2 && r.Intn(100) < 40 {
			a.Annotate(StateID(q), formula.And(
				formula.Var(string(ts[0].Label)),
				formula.Var(string(ts[1].Label))))
		}
	}
	return a
}

func TestCanonicalIsStable(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		a := randomNFA(r, 5)
		c1 := a.Canonical()
		c2 := c1.Canonical()
		if ExplainDifference(c1, c2) != "" {
			t.Fatalf("trial %d: canonical not idempotent", trial)
		}
	}
}

func TestEquivalentDetectsAnnotationDifference(t *testing.T) {
	a := chain("a", "B#A#x", "B#A#y")
	b := chain("b", "B#A#x", "B#A#y")
	if !Equivalent(a, b) {
		t.Fatal("identical chains not equivalent")
	}
	b.Annotate(b.Start(), formula.Var("B#A#x"))
	// The annotation is implied by the default (x is the only
	// outgoing label), but Equivalent compares explicit annotations.
	if Equivalent(a, b) {
		t.Fatal("explicit annotation difference not detected")
	}
}

func TestEquivalentDifferentLanguages(t *testing.T) {
	a := chain("a", "B#A#x")
	b := chain("b", "B#A#y")
	if Equivalent(a, b) {
		t.Fatal("different languages reported equivalent")
	}
	if SameLanguage(a, b) {
		t.Fatal("SameLanguage wrong")
	}
	if !SameLanguage(a, a.Clone()) {
		t.Fatal("SameLanguage(a,a) = false")
	}
}

func TestMinimizeWithMapTracksMembers(t *testing.T) {
	// chain of 2 with an extra equivalent middle state.
	a := New("m")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	q3 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q3, true)
	a.AddTransition(q0, lbl("A#B#x"), q1)
	a.AddTransition(q0, lbl("A#B#y"), q2)
	a.AddTransition(q1, lbl("A#B#z"), q3)
	a.AddTransition(q2, lbl("A#B#z"), q3)
	m, members := a.MinimizeWithMap()
	if m.NumStates() != 3 {
		t.Fatalf("states = %d", m.NumStates())
	}
	// The merged middle state must report both q1 and q2 as members.
	found := false
	for _, ms := range members {
		if len(ms) == 2 && ms[0] == q1 && ms[1] == q2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("members do not track the merge: %v", members)
	}
}

func TestAcceptedWordsShortlex(t *testing.T) {
	a := fig5A()
	words := a.AcceptedWords(3, 0)
	if len(words) != 2 {
		t.Fatalf("words = %v", words)
	}
	if len(words[0]) != 1 || len(words[1]) != 1 {
		t.Fatalf("unexpected word lengths: %v", words)
	}
}

func TestAcceptedWordsLimit(t *testing.T) {
	a := New("loop")
	q := a.AddState()
	a.SetStart(q)
	a.SetFinal(q, true)
	a.AddTransition(q, lbl("A#B#x"), q)
	words := a.AcceptedWords(50, 5)
	if len(words) != 5 {
		t.Fatalf("limit not applied: %d words", len(words))
	}
}

func TestViableWordsExcludeNonViablePaths(t *testing.T) {
	inter := fig5A().Intersect(fig5B())
	words, err := inter.ViableWords(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 0 {
		t.Fatalf("annotated-empty automaton yielded viable words: %v", words)
	}
	// Without the annotation the msg2 word appears.
	a, b := fig5A(), fig5B()
	b.ClearAnnotations(b.Start())
	words, err = a.Intersect(b).ViableWords(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 {
		t.Fatalf("viable words = %v, want one", words)
	}
}
