package afsa

// Reference implementations of determinize, minimize and intersect,
// transliterated from the pre-interning (string-keyed) kernel and
// written against the public API only. The property tests below pin
// the interned-symbol kernel to them on randomly generated annotated
// automata: outputs must be Equivalent — language AND annotations.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/formula"
	"repro/internal/label"
)

// refRemoveEpsilon is the historical ε-removal over the public API.
func refRemoveEpsilon(a *Automaton) *Automaton {
	if !a.HasEpsilon() {
		return a.Clone()
	}
	out := New(a.Name) // deliberately a fresh interner: exercises cross-interner ops
	out.AddStates(a.NumStates())
	out.SetStart(a.Start())
	for q := 0; q < a.NumStates(); q++ {
		for _, c := range a.EpsilonClosure(StateID(q)) {
			if a.IsFinal(c) {
				out.SetFinal(StateID(q), true)
			}
			for _, f := range a.Annotations(c) {
				out.Annotate(StateID(q), f)
			}
			for _, t := range a.Transitions(c) {
				if !t.Label.IsEpsilon() {
					out.AddTransition(StateID(q), t.Label, t.To)
				}
			}
		}
	}
	trimmed, _ := out.Trim()
	return trimmed
}

// refDeterminize is the historical subset construction: subsets keyed
// by strings built from the sorted member IDs, per-item label buckets
// in a map keyed by label strings.
func refDeterminize(a *Automaton) *Automaton {
	src := a
	if src.HasEpsilon() {
		src = refRemoveEpsilon(src)
	}
	out := New(a.Name)
	if src.Start() == None {
		return out
	}

	type subset struct {
		key    string
		states []StateID
	}
	makeSubset := func(states []StateID) subset {
		sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
		uniq := states[:0]
		var prev StateID = None
		for _, s := range states {
			if s != prev {
				uniq = append(uniq, s)
				prev = s
			}
		}
		var b []byte
		for _, s := range uniq {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return subset{key: string(b), states: uniq}
	}

	index := map[string]StateID{}
	var worklist []subset
	add := func(ss subset) StateID {
		if id, ok := index[ss.key]; ok {
			return id
		}
		id := out.AddState()
		index[ss.key] = id
		for _, s := range ss.states {
			if src.IsFinal(s) {
				out.SetFinal(id, true)
			}
			for _, f := range src.Annotations(s) {
				out.Annotate(id, f)
			}
		}
		worklist = append(worklist, ss)
		return id
	}

	out.SetStart(add(makeSubset([]StateID{src.Start()})))
	for len(worklist) > 0 {
		cur := worklist[0]
		worklist = worklist[1:]
		from := index[cur.key]
		byLabel := map[string][]StateID{}
		for _, s := range cur.states {
			for _, t := range src.Transitions(s) {
				byLabel[string(t.Label)] = append(byLabel[string(t.Label)], t.To)
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			to := add(makeSubset(byLabel[l]))
			out.AddTransition(from, label.Label(l), to)
		}
	}
	return out
}

// refMinimize is the historical pipeline: reference determinize, trim,
// Moore refinement on fmt.Sprintf signatures, quotient.
func refMinimize(a *Automaton) *Automaton {
	det := refDeterminize(a)
	trimmed, _ := det.TrimCoReachable()
	n := trimmed.NumStates()
	if n == 0 {
		return trimmed
	}

	class := make([]int, n)
	classKey := map[string]int{}
	for q := 0; q < n; q++ {
		key := fmt.Sprintf("%t|%s", trimmed.IsFinal(StateID(q)), trimmed.Annotation(StateID(q)).String())
		id, ok := classKey[key]
		if !ok {
			id = len(classKey)
			classKey[key] = id
		}
		class[q] = id
	}
	for {
		next := make([]int, n)
		sigKey := map[string]int{}
		for q := 0; q < n; q++ {
			sig := fmt.Sprintf("%d", class[q])
			for _, t := range trimmed.Transitions(StateID(q)) {
				sig += fmt.Sprintf("|%s>%d", t.Label, class[t.To])
			}
			id, ok := sigKey[sig]
			if !ok {
				id = len(sigKey)
				sigKey[sig] = id
			}
			next[q] = id
		}
		same := true
		for q := 0; q < n; q++ {
			if next[q] != class[q] {
				same = false
				break
			}
		}
		class = next
		if same || len(sigKey) == n {
			break
		}
	}

	out := New(a.Name)
	rep := map[int]StateID{}
	classOf := func(q StateID) StateID {
		id, ok := rep[class[q]]
		if !ok {
			id = out.AddState()
			rep[class[q]] = id
		}
		return id
	}
	order := refBFSOrder(trimmed)
	for _, q := range order {
		classOf(q)
	}
	for _, q := range order {
		nq := classOf(q)
		out.SetFinal(nq, trimmed.IsFinal(q))
		if len(out.Annotations(nq)) == 0 {
			for _, f := range trimmed.Annotations(q) {
				out.Annotate(nq, f)
			}
		}
		for _, t := range trimmed.Transitions(q) {
			out.AddTransition(nq, t.Label, classOf(t.To))
		}
	}
	out.SetStart(classOf(trimmed.Start()))
	return out
}

func refBFSOrder(a *Automaton) []StateID {
	if a.Start() == None {
		return nil
	}
	seen := make([]bool, a.NumStates())
	order := []StateID{a.Start()}
	seen[a.Start()] = true
	for i := 0; i < len(order); i++ {
		for _, t := range a.Transitions(order[i]) {
			if !seen[t.To] {
				seen[t.To] = true
				order = append(order, t.To)
			}
		}
	}
	for q := 0; q < a.NumStates(); q++ {
		if !seen[q] {
			order = append(order, StateID(q))
		}
	}
	return order
}

// refIntersect is the historical product: per-pair nested loops over
// label-sorted transition copies, matching on label equality.
func refIntersect(a, b *Automaton) *Automaton {
	ea, eb := refRemoveEpsilon(a), refRemoveEpsilon(b)
	out := New(fmt.Sprintf("(%s ∩ %s)", a.Name, b.Name))
	if ea.Start() == None || eb.Start() == None {
		return out
	}
	type pk struct{ p, q StateID }
	index := map[pk]StateID{}
	var worklist []pk
	add := func(k pk) StateID {
		if id, ok := index[k]; ok {
			return id
		}
		id := out.AddState()
		index[k] = id
		out.SetFinal(id, ea.IsFinal(k.p) && eb.IsFinal(k.q))
		for _, f := range ea.Annotations(k.p) {
			out.Annotate(id, f)
		}
		for _, f := range eb.Annotations(k.q) {
			out.Annotate(id, f)
		}
		worklist = append(worklist, k)
		return id
	}
	out.SetStart(add(pk{ea.Start(), eb.Start()}))
	for len(worklist) > 0 {
		k := worklist[0]
		worklist = worklist[1:]
		from := index[k]
		for _, t1 := range ea.Transitions(k.p) {
			for _, t2 := range eb.Transitions(k.q) {
				if t1.Label == t2.Label {
					out.AddTransition(from, t1.Label, add(pk{t1.To, t2.To}))
				}
			}
		}
	}
	return out
}

// annotatedNFA generates a random automaton with nondeterminism, some
// ε edges, and variable annotations over outgoing labels — the input
// class the kernels must agree on.
func annotatedNFA(seed int64, states int) *Automaton {
	r := rand.New(rand.NewSource(seed))
	a := randomDFA(r, int(uint(states)%5)+2)
	n := a.NumStates()
	for i := 0; i < n/2+1; i++ {
		if r.Intn(3) == 0 {
			a.AddTransition(StateID(r.Intn(n)), label.Epsilon, StateID(r.Intn(n)))
		}
		l := testAlphabet[r.Intn(len(testAlphabet))]
		a.AddTransition(StateID(r.Intn(n)), l, StateID(r.Intn(n)))
	}
	for q := 0; q < n; q++ {
		if r.Intn(3) == 0 {
			l := testAlphabet[r.Intn(len(testAlphabet))]
			a.Annotate(StateID(q), formula.Var(string(l)))
		}
	}
	return a
}

func TestQuickDeterminizeMatchesReference(t *testing.T) {
	f := func(s int64, states int) bool {
		a := annotatedNFA(s, states)
		got, want := a.Determinize(), refDeterminize(a)
		if !Equivalent(got, want) {
			t.Logf("input:\n%s\ndiff: %s", a.DebugString(), ExplainDifference(got, want))
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimizeMatchesReference(t *testing.T) {
	f := func(s int64, states int) bool {
		a := annotatedNFA(s, states)
		got, want := a.Minimize(), refMinimize(a)
		if !Equivalent(got, want) {
			t.Logf("input:\n%s\ndiff: %s", a.DebugString(), ExplainDifference(got, want))
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectMatchesReference(t *testing.T) {
	f := func(s1, s2 int64, n1, n2 int) bool {
		a, b := annotatedNFA(s1, n1), annotatedNFA(s2, n2)
		got, want := a.Intersect(b), refIntersect(a, b)
		if !Equivalent(got, want) {
			t.Logf("diff: %s", ExplainDifference(got, want))
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// rebuildFresh reconstructs a behaviorally identical automaton on a
// brand-new interner, so symbol values differ from the original's.
func rebuildFresh(a *Automaton) *Automaton {
	out := New(a.Name)
	out.AddStates(a.NumStates())
	if a.Start() != None {
		out.SetStart(a.Start())
	}
	for q := 0; q < a.NumStates(); q++ {
		out.SetFinal(StateID(q), a.IsFinal(StateID(q)))
		for _, f := range a.Annotations(StateID(q)) {
			out.Annotate(StateID(q), f)
		}
		for _, t := range a.Transitions(StateID(q)) {
			out.AddTransition(StateID(q), t.Label, t.To)
		}
	}
	return out
}

// The interned kernels must not care whether the operands share an
// interner — Intersect aligns them internally.
func TestQuickCrossInternerIntersect(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := annotatedNFA(s1, 4), annotatedNFA(s2, 5)
		shared := a.Intersect(b)
		bb := rebuildFresh(b)
		if bb.Interner() == b.Interner() {
			return false
		}
		return Equivalent(shared, a.Intersect(bb))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
