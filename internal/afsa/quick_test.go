package afsa

import (
	"flag"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/label"
)

// Property-based tests over seeded random automata. testing/quick
// drives the seeds; the automata are rebuilt deterministically from
// them so failures are reproducible.
//
// Iteration counts are tiered so the default suite finishes in
// seconds: -short runs a smoke fraction, and testing/quick's own
// -quickchecks flag (default 100) scales every count proportionally —
// `go test -quickchecks 1000 ./internal/afsa` is the deep soak for
// hunting rare seeds.

// quickCount scales a per-test default by -quickchecks/100, divides
// by 10 under -short, and never returns less than one iteration.
func quickCount(def int) int {
	n := 100
	if f := flag.Lookup("quickchecks"); f != nil {
		if v, err := strconv.Atoi(f.Value.String()); err == nil {
			n = v
		}
	}
	count := def * n / 100
	if testing.Short() {
		count /= 10
	}
	if count < 1 {
		count = 1
	}
	return count
}

func dfaFromSeed(seed int64, states int) *Automaton {
	if states < 1 {
		states = 1
	}
	return randomDFA(rand.New(rand.NewSource(seed)), states%6+2)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: quickCount(30)}
}

// Intersection is commutative on languages.
func TestQuickIntersectCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 4), dfaFromSeed(s2, 5)
		return SameLanguage(a.Intersect(b), b.Intersect(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Union is commutative on languages.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 4), dfaFromSeed(s2, 5)
		return SameLanguage(a.Union(b), b.Union(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// L(A \ B) and L(B) are disjoint.
func TestQuickDifferenceDisjoint(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 4), dfaFromSeed(s2, 5)
		diff := a.Difference(b)
		return !hasAcceptingPath(diff.Intersect(b))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// A = (A \ B) ∪ (A ∩ B) on languages.
func TestQuickDifferencePartition(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 4), dfaFromSeed(s2, 5)
		rebuilt := a.Difference(b).Union(a.Intersect(b))
		return SameLanguage(a, rebuilt)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Determinize and Minimize are language-preserving and idempotent.
func TestQuickNormalFormsIdempotent(t *testing.T) {
	f := func(s int64) bool {
		a := dfaFromSeed(s, 5)
		d := a.Determinize()
		m := a.Minimize()
		return SameLanguage(a, d) && SameLanguage(a, m) &&
			m.NumStates() == m.Minimize().NumStates()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Minimization never grows the automaton.
func TestQuickMinimizeShrinks(t *testing.T) {
	f := func(s int64) bool {
		a := dfaFromSeed(s, 5)
		d := a.Determinize()
		return a.Minimize().NumStates() <= d.NumStates()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Canonicalization is invariant under state renumbering.
func TestQuickCanonicalIsomorphismInvariant(t *testing.T) {
	f := func(s int64, permSeed int64) bool {
		a := dfaFromSeed(s, 5)
		b := permuteStates(a, permSeed)
		return Equivalent(a, b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// permuteStates returns an isomorphic copy with renumbered states.
func permuteStates(a *Automaton, seed int64) *Automaton {
	r := rand.New(rand.NewSource(seed))
	n := a.NumStates()
	perm := r.Perm(n)
	out := New(a.Name + " permuted")
	out.AddStates(n)
	if n == 0 {
		return out
	}
	out.SetStart(StateID(perm[a.Start()]))
	for q := 0; q < n; q++ {
		nq := StateID(perm[q])
		out.SetFinal(nq, a.IsFinal(StateID(q)))
		for _, f := range a.Annotations(StateID(q)) {
			out.Annotate(nq, f)
		}
		for _, tr := range a.Transitions(StateID(q)) {
			out.AddTransition(nq, tr.Label, StateID(perm[tr.To]))
		}
	}
	return out
}

// Bilateral consistency is symmetric.
func TestQuickConsistentSymmetric(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 4), dfaFromSeed(s2, 5)
		x, err1 := Consistent(a, b)
		y, err2 := Consistent(b, a)
		return err1 == nil && err2 == nil && x == y
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// The view of a party not mentioned in any label is the empty-word
// language (everything becomes ε) — and viewing is monotone: a view
// never invents labels.
func TestQuickViewAlphabetShrinks(t *testing.T) {
	f := func(s int64) bool {
		a := dfaFromSeed(s, 5)
		v := a.View("A")
		for l := range v.Alphabet() {
			if !l.Involves("A") {
				return false
			}
			if !a.Alphabet().Has(l) {
				return false
			}
		}
		ghost := a.View("nobody")
		return len(ghost.Alphabet()) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Completion preserves the language.
func TestQuickCompletePreservesLanguage(t *testing.T) {
	sigma := label.NewSet(testAlphabet...)
	f := func(s int64) bool {
		a := dfaFromSeed(s, 5)
		c, _ := a.Complete(sigma)
		return SameLanguage(a, c)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Shuffle is commutative on languages. The shuffle product squares
// the state count and SameLanguage determinizes both sides, so each
// iteration costs ~0.5s; the default count keeps the whole package
// under a few seconds (raise it with -quickchecks for a soak).
func TestQuickShuffleCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := dfaFromSeed(s1, 3), dfaFromSeed(s2, 3)
		return SameLanguage(a.Shuffle(b), b.Shuffle(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(4)}); err != nil {
		t.Error(err)
	}
}
