package afsa

import "repro/internal/label"

// Stepper is an allocation-free single-step evaluator over a (usually
// deterministic) automaton: a dense state×symbol next-state table plus
// a lock-free label→symbol lookup snapshot. It front-loads what trace
// replay loops — instance-migration compliance checks, conformance
// monitoring — otherwise pay per message: label hashing and a linear
// transition scan that allocates a target slice.
//
// A Stepper is immutable after construction and safe for concurrent
// use. It snapshots the automaton at construction time; it must not
// be used across later mutations of the automaton.
//
// For a nondeterministic state the table keeps the smallest target per
// symbol, matching the historical Step(q, l)[0] convention of replay
// callers; ε edges are recorded under ε's symbol and are never taken
// by replay (traces contain no ε).
type Stepper struct {
	next  []StateID // state*ns + symbol → target (None when absent)
	ns    int
	sym   map[label.Label]label.Symbol
	start StateID
}

// NewStepper builds the dense step table of a.
func NewStepper(a *Automaton) *Stepper {
	// Build the lookup map and the table width from ONE labels
	// snapshot: the interner may be shared and growing concurrently,
	// and a map taken later than the width could hand out symbols
	// beyond the table. Symbols interned after the automaton was
	// built cannot occur on its edges, so truncating to the snapshot
	// is exact.
	labels := a.syms.Labels()
	ns := len(labels)
	sym := make(map[label.Label]label.Symbol, ns)
	for s, l := range labels {
		sym[l] = label.Symbol(s)
	}
	next := make([]StateID, a.NumStates()*ns)
	for i := range next {
		next[i] = None
	}
	for q := range a.trans {
		for _, e := range a.trans[q] {
			idx := q*ns + int(e.sym)
			if next[idx] == None || e.to < next[idx] {
				next[idx] = e.to
			}
		}
	}
	return &Stepper{next: next, ns: ns, sym: sym, start: a.Start()}
}

// Start returns the automaton's start state (None when it has none).
func (s *Stepper) Start() StateID { return s.start }

// Step returns the l-successor of q, or None when q has no
// l-transition (or l is unknown to the automaton's alphabet).
func (s *Stepper) Step(q StateID, l label.Label) StateID {
	if q == None {
		return None
	}
	sym, ok := s.sym[l]
	if !ok {
		return None
	}
	return s.next[int(q)*s.ns+int(sym)]
}

// StepSym is Step for a pre-interned symbol: no label hashing at all.
// Symbols outside the table width — interned into a shared interner
// after this stepper was built — cannot occur on the automaton's edges,
// so they step to None exactly like an unknown label.
//
// This is the per-event kernel of every replay loop; allocgate proves
// it allocation-free.
//
//choreolint:allocfree
func (s *Stepper) StepSym(q StateID, sym label.Symbol) StateID {
	if q == None || sym < 0 || int(sym) >= s.ns {
		return None
	}
	return s.next[int(q)*s.ns+int(sym)]
}

// Symbol returns the stepper's symbol for l (taken from its
// construction-time snapshot of the interner), reporting whether the
// label is known at all.
func (s *Stepper) Symbol(l label.Label) (label.Symbol, bool) {
	sym, ok := s.sym[l]
	return sym, ok
}
