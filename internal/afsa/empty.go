package afsa

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/label"
)

// ViableStates computes the annotated-emptiness semantics of Sec. 3.2:
// "this emptiness test has to be extended by requiring that all
// transitions of a conjunction associated to a single state are
// available in the automaton and a final state can be reached
// following each of these transitions."
//
// A state q is *viable* iff (i) a final state is reachable from q
// through viable states and (ii) its effective annotation evaluates to
// true under the assignment that makes a variable v true exactly when
// q has a v-labeled transition to a viable state. This is a greatest
// fixpoint interleaved with co-reachability: start from all states and
// repeatedly remove states that lose co-reachability (restricted to
// the surviving set) or whose annotation fails. Cyclic support is
// intentional — the buyer public process of Fig. 6 keeps its parcel
// tracking loop viable because loop and exit support each other, while
// the mandatory-but-missing msg1 of Fig. 5 still kills the
// intersection.
//
// The effective annotation conjoins the explicit annotations with the
// structural default: final states default to true (the conversation
// may stop), non-final states default to the disjunction of their
// outgoing labels (the conversation must be able to proceed — this is
// the "default annotation" the paper mentions in the Fig. 5
// discussion). A non-final state without outgoing transitions is never
// viable.
//
// Annotations must be positive (negation-free); ViableStates returns
// an error otherwise, since the fixpoint is only well-defined for
// monotone formulas. ε transitions are handled by evaluating on the
// ε-free version (state IDs are preserved).
func (a *Automaton) ViableStates() ([]bool, error) {
	if err := a.CheckPositive(); err != nil {
		return nil, err
	}
	src := a
	if a.HasEpsilon() {
		// RemoveEpsilon trims; recompute against the trimmed automaton
		// and translate back through the identity of reachable states.
		noEps := NewShared(a.Name, a.syms)
		noEps.AddStates(a.NumStates())
		noEps.SetStart(a.start)
		seen := make([]bool, a.NumStates())
		var closure []StateID
		for q := 0; q < a.NumStates(); q++ {
			for i := range seen {
				seen[i] = false
			}
			closure = a.closureInto(StateID(q), seen, closure[:0])
			noEps.reserveEdges(StateID(q), len(a.trans[q]))
			for _, c := range closure {
				if a.final[c] {
					noEps.final[q] = true
				}
				for _, f := range a.anno[c] {
					noEps.Annotate(StateID(q), f)
				}
				for _, e := range a.trans[c] {
					if e.sym != label.SymEpsilon {
						noEps.addEdgeUnique(StateID(q), e.sym, e.to)
					}
				}
			}
		}
		src = noEps
	}

	n := src.NumStates()
	labels := src.syms.Labels()
	eff := make([]*formula.Formula, n)
	// optSeen is a symbol-indexed presence array shared across states
	// (per-state mark values make resets free); varCache memoizes the
	// per-symbol variable formulas of the default annotations.
	optSeen := make([]int32, len(labels))
	varCache := make([]*formula.Formula, len(labels))
	for q := 0; q < n; q++ {
		parts := append([]*formula.Formula(nil), src.anno[q]...)
		if !src.final[q] {
			var opts []*formula.Formula
			mark := int32(q) + 1
			for _, e := range src.trans[q] {
				if optSeen[e.sym] != mark {
					optSeen[e.sym] = mark
					if varCache[e.sym] == nil {
						varCache[e.sym] = formula.Var(string(labels[e.sym]))
					}
					opts = append(opts, varCache[e.sym])
				}
			}
			parts = append(parts, formula.Or(opts...)) // empty Or = false
		}
		eff[q] = formula.And(parts...)
	}

	// Reverse adjacency for the co-reachability passes, in compressed
	// sparse form: two allocations instead of one bucket per state.
	m := 0
	for q := 0; q < n; q++ {
		m += len(src.trans[q])
	}
	revOff := make([]int32, n+1)
	for q := 0; q < n; q++ {
		for _, e := range src.trans[q] {
			revOff[e.to+1]++
		}
	}
	for q := 0; q < n; q++ {
		revOff[q+1] += revOff[q]
	}
	revFlat := make([]StateID, m)
	fill := make([]int32, n)
	copy(fill, revOff[:n])
	for q := 0; q < n; q++ {
		for _, e := range src.trans[q] {
			revFlat[fill[e.to]] = StateID(q)
			fill[e.to]++
		}
	}

	viable := make([]bool, n)
	for q := range viable {
		viable[q] = true
	}
	co := make([]bool, n)
	var stack []StateID
	for changed := true; changed; {
		changed = false

		// Pass 1: a viable state must reach a viable final state
		// through viable states.
		for i := range co {
			co[i] = false
		}
		stack = stack[:0]
		for q := 0; q < n; q++ {
			if viable[q] && src.final[q] {
				co[q] = true
				stack = append(stack, StateID(q))
			}
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range revFlat[revOff[q]:revOff[q+1]] {
				if viable[p] && !co[p] {
					co[p] = true
					stack = append(stack, p)
				}
			}
		}
		for q := 0; q < n; q++ {
			if viable[q] && !co[q] {
				viable[q] = false
				changed = true
			}
		}

		// Pass 2: the effective annotation must hold, counting only
		// transitions into states that are still viable.
		for q := 0; q < n; q++ {
			if !viable[q] {
				continue
			}
			// Annotation variables are label texts; Lookup resolves
			// them to symbols (a lock-guarded map read, no copy of
			// the potentially choreography-wide interner) so the
			// edge probes compare integers.
			sigma := func(name string) bool {
				sym, ok := src.syms.Lookup(label.Label(name))
				if !ok {
					return false
				}
				for _, e := range src.trans[q] {
					if e.sym == sym && viable[e.to] {
						return true
					}
				}
				return false
			}
			if !eff[q].Eval(sigma) {
				viable[q] = false
				changed = true
			}
		}
	}
	return viable, nil
}

// IsEmpty reports annotated emptiness: the automaton is empty iff its
// start state is not viable (no message sequence satisfying every
// mandatory annotation leads to a final state). An automaton without
// states is empty.
func (a *Automaton) IsEmpty() (bool, error) {
	if a.NumStates() == 0 || a.start == None {
		return true, nil
	}
	viable, err := a.ViableStates()
	if err != nil {
		return false, err
	}
	return !viable[a.start], nil
}

// MustIsEmpty is IsEmpty for automata known to carry positive
// annotations; it panics on error. Intended for fixtures and benches.
func (a *Automaton) MustIsEmpty() bool {
	empty, err := a.IsEmpty()
	if err != nil {
		panic(err)
	}
	return empty
}

// Consistent reports bilateral consistency of two public processes
// (Sec. 3.2): their intersection is non-empty, which the paper proves
// equivalent to deadlock-free execution of the interaction.
func Consistent(a, b *Automaton) (bool, error) {
	empty, err := a.Intersect(b).IsEmpty()
	if err != nil {
		return false, fmt.Errorf("consistency %q vs %q: %w", a.Name, b.Name, err)
	}
	return !empty, nil
}
