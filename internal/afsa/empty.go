package afsa

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/label"
)

// ViableStates computes the annotated-emptiness semantics of Sec. 3.2:
// "this emptiness test has to be extended by requiring that all
// transitions of a conjunction associated to a single state are
// available in the automaton and a final state can be reached
// following each of these transitions."
//
// A state q is *viable* iff (i) a final state is reachable from q
// through viable states and (ii) its effective annotation evaluates to
// true under the assignment that makes a variable v true exactly when
// q has a v-labeled transition to a viable state. This is a greatest
// fixpoint interleaved with co-reachability: start from all states and
// repeatedly remove states that lose co-reachability (restricted to
// the surviving set) or whose annotation fails. Cyclic support is
// intentional — the buyer public process of Fig. 6 keeps its parcel
// tracking loop viable because loop and exit support each other, while
// the mandatory-but-missing msg1 of Fig. 5 still kills the
// intersection.
//
// The effective annotation conjoins the explicit annotations with the
// structural default: final states default to true (the conversation
// may stop), non-final states default to the disjunction of their
// outgoing labels (the conversation must be able to proceed — this is
// the "default annotation" the paper mentions in the Fig. 5
// discussion). A non-final state without outgoing transitions is never
// viable.
//
// Annotations must be positive (negation-free); ViableStates returns
// an error otherwise, since the fixpoint is only well-defined for
// monotone formulas. ε transitions are handled by evaluating on the
// ε-free version (state IDs are preserved).
func (a *Automaton) ViableStates() ([]bool, error) {
	if err := a.CheckPositive(); err != nil {
		return nil, err
	}
	src := a
	if a.HasEpsilon() {
		// RemoveEpsilon trims; recompute against the trimmed automaton
		// and translate back through the identity of reachable states.
		noEps := New(a.Name)
		noEps.AddStates(a.NumStates())
		noEps.SetStart(a.start)
		for q := 0; q < a.NumStates(); q++ {
			closure := a.EpsilonClosure(StateID(q))
			for _, c := range closure {
				if a.final[c] {
					noEps.final[q] = true
				}
				for _, f := range a.anno[c] {
					noEps.Annotate(StateID(q), f)
				}
				for _, t := range a.trans[c] {
					if !t.Label.IsEpsilon() {
						noEps.AddTransition(StateID(q), t.Label, t.To)
					}
				}
			}
		}
		src = noEps
	}

	n := src.NumStates()
	eff := make([]*formula.Formula, n)
	for q := 0; q < n; q++ {
		parts := append([]*formula.Formula(nil), src.anno[q]...)
		if !src.final[q] {
			var opts []*formula.Formula
			seen := map[label.Label]bool{}
			for _, t := range src.trans[q] {
				if !seen[t.Label] {
					seen[t.Label] = true
					opts = append(opts, formula.Var(string(t.Label)))
				}
			}
			parts = append(parts, formula.Or(opts...)) // empty Or = false
		}
		eff[q] = formula.And(parts...)
	}

	// Reverse adjacency for the co-reachability passes.
	rev := make([][]StateID, n)
	for q := 0; q < n; q++ {
		for _, t := range src.trans[q] {
			rev[t.To] = append(rev[t.To], StateID(q))
		}
	}

	viable := make([]bool, n)
	for q := range viable {
		viable[q] = true
	}
	for changed := true; changed; {
		changed = false

		// Pass 1: a viable state must reach a viable final state
		// through viable states.
		co := make([]bool, n)
		var stack []StateID
		for q := 0; q < n; q++ {
			if viable[q] && src.final[q] {
				co[q] = true
				stack = append(stack, StateID(q))
			}
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range rev[q] {
				if viable[p] && !co[p] {
					co[p] = true
					stack = append(stack, p)
				}
			}
		}
		for q := 0; q < n; q++ {
			if viable[q] && !co[q] {
				viable[q] = false
				changed = true
			}
		}

		// Pass 2: the effective annotation must hold, counting only
		// transitions into states that are still viable.
		for q := 0; q < n; q++ {
			if !viable[q] {
				continue
			}
			sigma := func(name string) bool {
				for _, t := range src.trans[q] {
					if string(t.Label) == name && viable[t.To] {
						return true
					}
				}
				return false
			}
			if !eff[q].Eval(sigma) {
				viable[q] = false
				changed = true
			}
		}
	}
	return viable, nil
}

// IsEmpty reports annotated emptiness: the automaton is empty iff its
// start state is not viable (no message sequence satisfying every
// mandatory annotation leads to a final state). An automaton without
// states is empty.
func (a *Automaton) IsEmpty() (bool, error) {
	if a.NumStates() == 0 || a.start == None {
		return true, nil
	}
	viable, err := a.ViableStates()
	if err != nil {
		return false, err
	}
	return !viable[a.start], nil
}

// MustIsEmpty is IsEmpty for automata known to carry positive
// annotations; it panics on error. Intended for fixtures and benches.
func (a *Automaton) MustIsEmpty() bool {
	empty, err := a.IsEmpty()
	if err != nil {
		panic(err)
	}
	return empty
}

// Consistent reports bilateral consistency of two public processes
// (Sec. 3.2): their intersection is non-empty, which the paper proves
// equivalent to deadlock-free execution of the interaction.
func Consistent(a, b *Automaton) (bool, error) {
	empty, err := a.Intersect(b).IsEmpty()
	if err != nil {
		return false, fmt.Errorf("consistency %q vs %q: %w", a.Name, b.Name, err)
	}
	return !empty, nil
}
