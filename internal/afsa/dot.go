package afsa

import (
	"fmt"
	"strings"
)

// DOT renders the automaton in Graphviz dot syntax, mirroring the
// paper's drawing conventions: final states use a double circle,
// annotations appear as boxed labels attached to their state.
func (a *Automaton) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	if a.start != None {
		b.WriteString("  __start [shape=point];\n")
		fmt.Fprintf(&b, "  __start -> s%d;\n", a.start)
	}
	for q := 0; q < a.NumStates(); q++ {
		shape := "circle"
		if a.final[q] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=%q shape=%s];\n", q, fmt.Sprint(q), shape)
		if f := a.Annotation(StateID(q)); !f.IsTrue() {
			fmt.Fprintf(&b, "  a%d [shape=box style=dashed label=%q];\n", q, f.String())
			fmt.Fprintf(&b, "  s%d -> a%d [style=dashed arrowhead=none];\n", q, q)
		}
	}
	for q := 0; q < a.NumStates(); q++ {
		for _, t := range a.Transitions(StateID(q)) {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", q, t.To, t.Label.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
