package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/paperrepro"
	"repro/internal/store"
)

// ctx is the background context shared by the package tests; the
// cancellation and timeout tests build their own.
var ctx = context.Background()

func testClient(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := New(store.New(store.WithShards(4)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), srv
}

// paperSetup registers the procurement scenario through the API.
func paperSetup(t *testing.T, c *Client) string {
	t.Helper()
	const id = "procurement"
	if err := c.CreateChoreography(ctx, id, []string{"L.getStatusLOp"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		if _, err := c.RegisterParty(ctx, id, p); err != nil {
			t.Fatalf("RegisterParty(%s): %v", p.Owner, err)
		}
	}
	return id
}

// apply is a test helper evolving a fixture process locally so the
// client can submit the proposed new process XML.
func apply(t *testing.T, p *bpel.Process, op change.Operation) *bpel.Process {
	t.Helper()
	out, err := op.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestProcurementScenarioEndToEnd drives the paper's full evaluation
// through the HTTP API: register the three parties, check, evolve the
// accounting process with the Sec. 5.2 cancel change, fetch the
// propagation plan and suggestions, commit, let the buyer apply the
// suggested adaptation, then run the Sec. 5.3 tracking-limit change
// with an instance-migration what-if.
func TestProcurementScenarioEndToEnd(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)

	// Initial summary and consistency.
	info, err := c.Choreography(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Parties) != 3 {
		t.Fatalf("parties = %d, want 3", len(info.Parties))
	}
	rep, err := c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent || len(rep.Pairs) != 2 {
		t.Fatalf("initial check = %+v", rep)
	}
	rep, err = c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Pairs {
		if !p.Cached {
			t.Fatalf("repeated check not served from cache: %+v", p)
		}
	}

	// Sec. 5.2: the cancel change on the accounting department.
	newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.CancelChange())
	evo, err := c.Evolve(ctx, id, newAcc)
	if err != nil {
		t.Fatal(err)
	}
	if !evo.PublicChanged || !evo.NeedsPropagation {
		t.Fatalf("cancel evolve = %+v", evo)
	}
	var buyer *ImpactJSON
	for i := range evo.Impacts {
		if evo.Impacts[i].Partner == paperrepro.Buyer {
			buyer = &evo.Impacts[i]
		}
	}
	if buyer == nil {
		t.Fatal("no buyer impact")
	}
	if buyer.Kind != "additive" || buyer.Scope != "variant" {
		t.Fatalf("buyer classification = %s/%s", buyer.Kind, buyer.Scope)
	}
	if len(buyer.Plans) != 1 {
		t.Fatalf("buyer plans = %d", len(buyer.Plans))
	}
	plan := buyer.Plans[0]
	if plan.Kind != "additive" || len(plan.Hints) != 1 || len(plan.Regions) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if !strings.Contains(plan.Hints[0], "A#B#cancelOp") {
		t.Fatalf("hint = %q, want the cancel message", plan.Hints[0])
	}
	if !strings.Contains(plan.Regions[0], "Sequence:buyer process") {
		t.Fatalf("region = %q, want the buyer process block", plan.Regions[0])
	}
	var executable []int
	for _, sg := range buyer.Suggestions {
		if sg.Executable {
			executable = append(executable, sg.Index)
		}
	}
	if len(executable) != 1 {
		t.Fatalf("executable suggestions = %v (%+v)", executable, buyer.Suggestions)
	}

	// The pending evolution is re-fetchable.
	again, err := c.Evolution(ctx, evo.Evolution)
	if err != nil {
		t.Fatal(err)
	}
	if again.BaseVersion != evo.BaseVersion || len(again.Impacts) != len(evo.Impacts) {
		t.Fatalf("re-fetched evolution differs: %+v vs %+v", again, evo)
	}

	// Commit the originator; the choreography is now inconsistent.
	commit, err := c.Commit(ctx, evo.Evolution)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Version != evo.BaseVersion+1 {
		t.Fatalf("committed version = %d", commit.Version)
	}
	rep, err = c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("choreography still consistent before the buyer adapts")
	}

	// The buyer applies the suggested widening; consistency returns.
	if _, err := c.Apply(ctx, evo.Evolution, paperrepro.Buyer, executable); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("choreography inconsistent after propagation: %+v", rep.Pairs)
	}

	// Sec. 5.3: the tracking-limit change, driven against a second
	// pristine choreography (the cancel change above restructured the
	// accounting tail the tracking loop lives in), with a migration
	// what-if for its running instances.
	const id2 = "procurement-2"
	if err := c.CreateChoreography(ctx, id2, []string{"L.getStatusLOp"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		if _, err := c.RegisterParty(ctx, id2, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SampleInstances(ctx, id2, paperrepro.Accounting, 7, 50, 12); err != nil {
		t.Fatal(err)
	}
	newAcc2 := apply(t, paperrepro.AccountingProcess(), paperrepro.TrackingLimitChange())
	evo2, err := c.Evolve(ctx, id2, newAcc2)
	if err != nil {
		t.Fatal(err)
	}
	if !evo2.PublicChanged {
		t.Fatal("tracking limit did not change the accounting public")
	}
	// Subtractive for the buyer: the unbounded tracking disappears.
	for _, im := range evo2.Impacts {
		if im.Partner == paperrepro.Buyer && im.ViewChanged {
			if !strings.Contains(im.Kind, "subtractive") {
				t.Fatalf("tracking-limit kind for buyer = %s", im.Kind)
			}
		}
	}
	mig, err := c.Migrate(ctx, id2, paperrepro.Accounting, evo2.Evolution)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Total != 50 || mig.Migratable == 0 || mig.Migratable == mig.Total {
		t.Fatalf("migration what-if = %+v, want a split verdict over 50 instances", mig)
	}

	// Stats reflect the traffic.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Choreographies != 2 || st.Commits == 0 || st.ConsistencyHits == 0 || st.Requests == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDiscoveryEndpoints mirrors the paper's Sec. 6 matchmaking: the
// services publish the views they expose to a prospective buyer; a
// buyer querying with its public process finds exactly the accounting
// service.
func TestDiscoveryEndpoints(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)
	for _, party := range []string{paperrepro.Accounting, paperrepro.Logistics} {
		if err := c.Publish(ctx, "svc-"+party, id, party, paperrepro.Buyer); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := c.Match(ctx, id, paperrepro.Buyer, "consistent")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0] != "svc-A" {
		t.Fatalf("consistent matches = %v, want [svc-A]", matches)
	}
	// The overlap baseline over-approximates: it cannot return fewer
	// matches than the consistency matcher.
	overlap, err := c.Match(ctx, id, paperrepro.Buyer, "overlap")
	if err != nil {
		t.Fatal(err)
	}
	if len(overlap) < len(matches) {
		t.Fatalf("overlap (%v) returned fewer matches than consistent (%v)", overlap, matches)
	}
	// Duplicate publication conflicts.
	err = c.Publish(ctx, "svc-A", id, paperrepro.Accounting, paperrepro.Buyer)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Fatalf("duplicate publish = %v, want HTTP 409", err)
	}
}

func TestErrorStatuses(t *testing.T) {
	c, _ := testClient(t)
	wantStatus := func(err error, status int) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("error = %v, want HTTP %d", err, status)
		}
	}
	_, err := c.Check(ctx, "ghost")
	wantStatus(err, 404)
	if err := c.CreateChoreography(ctx, "dup", nil); err != nil {
		t.Fatal(err)
	}
	wantStatus(c.CreateChoreography(ctx, "dup", nil), 409)
	_, err = c.RegisterPartyXML(ctx, "dup", "not xml")
	wantStatus(err, 400)
	_, err = c.Evolution(ctx, "evo-999")
	wantStatus(err, 404)

	// Version conflict through the API: two evolutions from the same
	// base, the second commit 409s.
	id := paperSetup(t, c)
	newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.OrderTwoChange())
	evo1, err := c.Evolve(ctx, id, newAcc)
	if err != nil {
		t.Fatal(err)
	}
	newAcc2 := apply(t, paperrepro.AccountingProcess(), paperrepro.CancelChange())
	evo2, err := c.Evolve(ctx, id, newAcc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(ctx, evo1.Evolution); err != nil {
		t.Fatal(err)
	}
	// Commit staleness is a precondition failure on /v2/.
	_, err = c.Commit(ctx, evo2.Evolution)
	wantStatus(err, 412)
	if !ErrIs(err, CodeStaleVersion) {
		t.Fatalf("stale commit code = %v, want %s", err, CodeStaleVersion)
	}
}

// TestParallelTrafficThroughAPI exercises the full HTTP stack with
// mixed concurrent traffic; run under -race it proves handler-level
// thread safety.
func TestParallelTrafficThroughAPI(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)
	if _, err := c.Check(ctx, id); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (w + i) % 3 {
				case 0:
					if _, err := c.Check(ctx, id); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.Party(ctx, id, paperrepro.Buyer); err != nil {
						t.Error(err)
						return
					}
				default:
					newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.OrderTwoChange())
					evo, err := c.Evolve(ctx, id, newAcc)
					if err != nil {
						t.Error(err)
						return
					}
					// Stale commits are the expected outcome under
					// contention; anything else is a bug.
					if _, err := c.Commit(ctx, evo.Evolution); err != nil {
						var apiErr *APIError
						if !errors.As(err, &apiErr) || apiErr.Status != 412 {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rep, err := c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("choreography inconsistent after invariant-change traffic: %+v", rep.Pairs)
	}
}
