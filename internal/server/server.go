// Package server exposes the choreography store as a JSON HTTP
// service — choreod. It is the serving front end of the framework:
// clients register parties as BPEL XML, check pairwise consistency,
// submit change transactions for analysis (classification,
// propagation plans, adaptation suggestions), commit them, apply
// suggestions to partners, query instance migratability, and run
// consistency-based service discovery.
//
// The primary surface is /v2/ (all bodies JSON; XML process payloads
// travel inside JSON strings):
//
//	POST   /v2/choreographies                                 {id, sync[]}
//	GET    /v2/choreographies?limit=&page_token=
//	GET    /v2/choreographies/{id}                            (ETag)
//	DELETE /v2/choreographies/{id}
//	POST   /v2/choreographies/{id}/parties                    {xml}
//	POST   /v2/choreographies/{id}/parties:batch              {parties[]} [If-Match]
//	GET    /v2/choreographies/{id}/parties/{party}
//	PUT    /v2/choreographies/{id}/parties/{party}            {xml} [If-Match]
//	GET    /v2/choreographies/{id}/parties/{party}/view?for=P[&format=dot]
//	POST   /v2/choreographies/{id}/check                      (ETag)
//	POST   /v2/check:batch                                    {ids[]}
//	POST   /v2/choreographies/{id}/evolve                     {party, ops[]} (ETag = base version)
//	GET    /v2/evolutions/{evo}
//	POST   /v2/evolutions/{evo}/commit                        [If-Match] → 412 on stale
//	POST   /v2/evolutions/{evo}/apply                         {partner, suggestions[]} → 409 on race
//	POST   /v2/choreographies/{id}/parties/{party}/instances  {sample}|{instances}
//	POST   /v2/choreographies/{id}/instances:events           {events[]} → 429 + retryAfter on backpressure
//	POST   /v2/choreographies/{id}/parties/{party}/migrate    {evolution}
//	POST   /v2/choreographies/{id}/migrations                 {workers} → bulk sweep job
//	GET    /v2/choreographies/{id}/migrations                 ?limit=&page_token=
//	GET    /v2/choreographies/{id}/migrations/{job}           ?limit=&page_token= (stranded page)
//	DELETE /v2/choreographies/{id}/migrations/{job}           cancel (resumable)
//	POST   /v2/discovery/publish                              {name, choreography, party}
//	POST   /v2/discovery/match                                {choreography, party, matcher, limit, pageToken}
//	GET    /v2/discovery/services?limit=&page_token=
//	POST   /v2/admin/checkpoint                               compact the journal (durable stores)
//	GET    /v2/stats
//	GET    /v2/healthz                                        liveness (always 200 while serving)
//	GET    /v2/readyz                                         readiness (503 {code: "unavailable"} when degraded)
//	GET    /healthz
//
// Pagination is uniform: limit above the server-side maximum page
// size (1000) is clamped, limit omitted or 0 picks the default, and
// page_token continues where the previous page stopped.
//
// Optimistic concurrency travels in headers: responses describing a
// snapshot carry its version as a strong ETag, and writes accept
// If-Match, answering 412 {code: "stale_version"} when the caller's
// version is outdated. Errors are a uniform machine-readable envelope
// {code, message, details}; see the Code* constants for the mapping
// (not-found → 404, duplicates and apply races → 409, malformed input
// → 400, stale preconditions → 412, degraded read-only store → 503).
//
// Retried mutations are made safe by idempotency keys: evolve and
// commit accept an Idempotency-Key header, and a retried commit with
// the same key applies exactly once — the replay answers the original
// outcome (see docs/resilience.md).
//
// /v1/ remains available as a compatibility shim with the original
// single-op, body-version, {error}-envelope wire contract; it
// delegates to the same core as /v2/. See v1.go.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/discovery"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/migrate"
	"repro/internal/store"
)

// Server is the choreod HTTP front end over a Store.
type Server struct {
	store *store.Store

	evoMu sync.RWMutex
	evos  map[string]*store.Evolution
	// evoOrder tracks insertion order so the pending set stays bounded
	// (maxPendingEvolutions): a long-running service would otherwise
	// accumulate every analysis ever made.
	evoOrder []string
	// evoByKey/evoKeys map Idempotency-Key ↔ evolution ID both ways so
	// a retried evolve answers the original analysis and eviction can
	// clean the key up with its evolution.
	evoByKey map[string]string
	evoKeys  map[string]string
	evoSeq   atomic.Uint64

	discMu sync.RWMutex
	disc   *discovery.Registry

	requests atomic.Uint64
}

// maxPendingEvolutions bounds the retained evolution analyses; the
// oldest are evicted first (a client holding a very old evolution ID
// gets 404 and re-runs evolve).
const maxPendingEvolutions = 1024

// New returns a server over st.
func New(st *store.Store) *Server {
	return &Server{
		store:    st,
		evos:     map[string]*store.Evolution{},
		evoByKey: map[string]string{},
		evoKeys:  map[string]string{},
		disc:     discovery.NewRegistry(),
	}
}

// Store returns the underlying store.
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the routed HTTP handler serving /v2/, the /v1/
// compatibility shim, and /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.routesV2(mux)
	s.routesV1(mux)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---- shared core (version-agnostic logic both route sets delegate to) ----

func parseProcess(xml string) (*bpel.Process, error) {
	if xml == "" {
		return nil, badRequest("empty process XML")
	}
	p, err := bpel.UnmarshalXML([]byte(xml))
	if err != nil {
		return nil, badRequest("parsing process XML: %v", err)
	}
	return p, nil
}

func partyInfo(ps *store.PartyState, withXML bool) (PartyInfo, error) {
	info := PartyInfo{
		Name:        ps.Name,
		Version:     ps.Version,
		States:      ps.Public.NumStates(),
		Transitions: ps.Public.NumTransitions(),
	}
	if withXML {
		data, err := bpel.MarshalXML(ps.Private)
		if err != nil {
			return info, err
		}
		info.XML = string(data)
	}
	return info, nil
}

func checkResponse(rep *store.CheckReport) *CheckResponse {
	out := &CheckResponse{ID: rep.ID, Version: rep.Version, Consistent: rep.Consistent()}
	for _, p := range rep.Pairs {
		out.Pairs = append(out.Pairs, PairJSON{A: p.A, B: p.B, Consistent: p.Consistent, Cached: p.Cached})
	}
	return out
}

func impactsJSON(evo *store.Evolution) []ImpactJSON {
	var out []ImpactJSON
	for _, im := range evo.Impacts {
		ij := ImpactJSON{Partner: im.Partner, ViewChanged: im.ViewChanged}
		if im.ViewChanged {
			ij.Kind = im.Classification.Kind.String()
			ij.Scope = im.Classification.Scope.String()
		}
		for _, p := range im.Plans {
			pj := PlanJSON{
				Kind:                   p.Kind.String(),
				DiffStates:             p.Diff.NumStates(),
				NewPartnerPublicStates: p.NewPartnerPublic.NumStates(),
			}
			for _, h := range p.Hints {
				pj.Hints = append(pj.Hints, h.String())
			}
			for _, r := range p.Regions {
				pj.Regions = append(pj.Regions, r.String())
			}
			ij.Plans = append(ij.Plans, pj)
		}
		for i, sg := range im.Suggestions {
			sj := SuggestionJSON{Index: i, Description: sg.Description, Executable: sg.Op != nil}
			if sg.Op != nil {
				sj.Op = sg.Op.String()
			}
			ij.Suggestions = append(ij.Suggestions, sj)
		}
		out = append(out, ij)
	}
	return out
}

// registerEvolution stores an analysis under a fresh ID, evicting the
// oldest pending ones past the retention bound. A non-empty
// idempotency key is remembered so a retried evolve with the same key
// answers this analysis instead of minting a duplicate.
func (s *Server) registerEvolution(evo *store.Evolution, key string) string {
	id := fmt.Sprintf("evo-%d", s.evoSeq.Add(1))
	s.evoMu.Lock()
	s.evos[id] = evo
	s.evoOrder = append(s.evoOrder, id)
	if key != "" {
		s.evoByKey[key] = id
		s.evoKeys[id] = key
	}
	for len(s.evoOrder) > maxPendingEvolutions {
		old := s.evoOrder[0]
		delete(s.evos, old)
		if k, ok := s.evoKeys[old]; ok {
			delete(s.evoKeys, old)
			delete(s.evoByKey, k)
		}
		s.evoOrder = s.evoOrder[1:]
	}
	s.evoMu.Unlock()
	return id
}

// evolutionByKey answers a previously registered analysis for an
// idempotency key, if it is still retained.
func (s *Server) evolutionByKey(key string) (string, *store.Evolution, bool) {
	s.evoMu.RLock()
	defer s.evoMu.RUnlock()
	id, ok := s.evoByKey[key]
	if !ok {
		return "", nil, false
	}
	evo, ok := s.evos[id]
	return id, evo, ok
}

func (s *Server) evolution(id string) (*store.Evolution, error) {
	s.evoMu.RLock()
	evo, ok := s.evos[id]
	s.evoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: evolution %q", store.ErrNotFound, id)
	}
	return evo, nil
}

func (s *Server) choreographyInfo(ctx context.Context, id string) (*ChoreographyInfo, error) {
	snap, err := s.store.Snapshot(ctx, id)
	if err != nil {
		return nil, err
	}
	info := &ChoreographyInfo{ID: snap.ID, Version: snap.Version}
	for _, name := range snap.Parties() {
		ps, _ := snap.Party(name)
		pi, err := partyInfo(ps, false)
		if err != nil {
			return nil, err
		}
		info.Parties = append(info.Parties, pi)
	}
	return info, nil
}

func (s *Server) sortedIDs(ctx context.Context) ([]string, error) {
	ids, err := s.store.IDs(ctx)
	if err != nil {
		return nil, err
	}
	sort.Strings(ids)
	return ids, nil
}

// applyOps resolves an apply request against the pending evolution and
// runs it (steps 4–5 of Secs. 5.2/5.3). The suggestion paths are only
// valid against the partner version the evolution was analyzed on; a
// changed partner answers with a version conflict.
func (s *Server) applyOps(ctx context.Context, evo *store.Evolution, req ApplyRequest) (*store.Snapshot, error) {
	impact, ok := evo.Impact(req.Partner)
	if !ok {
		return nil, badRequest("evolution has no impact on partner %q", req.Partner)
	}
	var ops []change.Operation
	if len(req.Suggestions) == 0 {
		for _, sg := range impact.Suggestions {
			if sg.Op != nil {
				ops = append(ops, sg.Op)
			}
		}
	} else {
		for _, idx := range req.Suggestions {
			if idx < 0 || idx >= len(impact.Suggestions) {
				return nil, badRequest("suggestion index %d out of range", idx)
			}
			sg := impact.Suggestions[idx]
			if sg.Op == nil {
				return nil, badRequest("suggestion %d is manual: %s", idx, sg.Description)
			}
			ops = append(ops, sg.Op)
		}
	}
	if len(ops) == 0 {
		return nil, badRequest("no executable suggestions for partner %q", req.Partner)
	}
	return s.store.ApplyOps(ctx, evo.Choreography, req.Partner, ops, evo.PartnerVersions[req.Partner])
}

// addInstances records sampled and/or explicit instances; it returns
// the number recorded.
func (s *Server) addInstances(ctx context.Context, id, party string, req InstancesRequest) (int, error) {
	added := 0
	if req.Sample != nil {
		n := req.Sample.N
		if n <= 0 {
			n = 100
		}
		maxLen := req.Sample.MaxLen
		if maxLen <= 0 {
			maxLen = 20
		}
		insts, err := s.store.SampleInstances(ctx, id, party, req.Sample.Seed, n, maxLen)
		if err != nil {
			return 0, err
		}
		added += len(insts)
	}
	if len(req.Instances) > 0 {
		var insts []instance.Instance
		for _, ij := range req.Instances {
			var trace []label.Label
			for _, t := range ij.Trace {
				l, err := label.Parse(t)
				if err != nil {
					return 0, badRequest("instance %q: %v", ij.ID, err)
				}
				trace = append(trace, l)
			}
			insts = append(insts, instance.Instance{ID: ij.ID, Trace: trace})
		}
		if err := s.store.AddInstances(ctx, id, party, insts); err != nil {
			return 0, err
		}
		added += len(insts)
	}
	if added == 0 {
		return 0, badRequest("nothing to add: provide instances or sample")
	}
	return added, nil
}

// defaultMigrationWorkers is the sweep fan-out when the start request
// does not pick one.
const defaultMigrationWorkers = 4

// migrationJSON renders a job's observable state (without the
// stranded report — migrationJSONPage adds one page of it).
func migrationJSON(job *migrate.Job) MigrationJobJSON {
	return migrationView(job.Snapshot())
}

func migrationView(v migrate.View) MigrationJobJSON {
	return MigrationJobJSON{
		Job:           v.ID,
		Choreography:  v.Choreography,
		TargetVersion: v.TargetVersion,
		Status:        v.Status.String(),
		Shards:        v.Shards,
		ShardsDone:    v.ShardsDone,
		Total:         v.Total,
		Migratable:    v.Migratable,
		NonReplayable: v.NonReplayable,
		Unviable:      v.Unviable,
		Error:         v.Err,
	}
}

// strandedKey is the composite cursor key of one stranded entry; NUL
// keeps the sort order identical to (party, id) and cannot appear in
// either component.
func strandedKey(st migrate.Stranded) string { return st.Party + "\x00" + st.ID }

// migrationJSONPage renders a job with one cursor page of its
// stranded-instance report. Counters and report come from one lock
// acquisition (Job.Report), so they are mutually consistent even
// mid-sweep; the report is kept sorted by the job, so a page is a
// binary search plus a bounded slice — polling a huge sweep stays
// cheap.
func migrationJSONPage(job *migrate.Job, limit int, pageToken string) (MigrationJobJSON, error) {
	v, stranded := job.Report()
	out := migrationView(v)
	cursor, err := decodePageToken(pageToken)
	if err != nil {
		return out, err
	}
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	start := 0
	if cursor != "" {
		start = sort.Search(len(stranded), func(i int) bool { return strandedKey(stranded[i]) > cursor })
	}
	end := start + limit
	if end > len(stranded) {
		end = len(stranded)
	}
	for _, st := range stranded[start:end] {
		out.Stranded = append(out.Stranded, StrandedJSON{Party: st.Party, ID: st.ID, Status: st.Status.String()})
	}
	if end < len(stranded) {
		out.NextPageToken = encodePageToken(strandedKey(stranded[end-1]))
	}
	return out, nil
}

func (s *Server) migrate(ctx context.Context, id, party, evoID string) (*MigrateResponse, error) {
	var rep *instance.Report
	var err error
	if evoID != "" {
		evo, eerr := s.evolution(evoID)
		if eerr != nil {
			return nil, eerr
		}
		if evo.Choreography != id || evo.Party != party {
			return nil, badRequest("evolution %q does not target %s/%s", evoID, id, party)
		}
		rep, err = s.store.Migrate(ctx, id, party, evo.NewPublic)
	} else {
		rep, err = s.store.Migrate(ctx, id, party, nil)
	}
	if err != nil {
		return nil, err
	}
	return &MigrateResponse{
		Total:         rep.Total,
		Migratable:    rep.Migratable,
		NonReplayable: rep.NonReplayable,
		Unviable:      rep.Unviable,
		Blocked:       rep.Blocked,
	}, nil
}

func (s *Server) publish(ctx context.Context, req PublishRequest) (string, error) {
	snap, err := s.store.Snapshot(ctx, req.Choreography)
	if err != nil {
		return "", err
	}
	ps, ok := snap.Party(req.Party)
	if !ok {
		return "", fmt.Errorf("%w: party %q", store.ErrNotFound, req.Party)
	}
	pub := ps.Public
	if req.For != "" {
		if pub, err = s.store.View(ctx, req.Choreography, req.Party, req.For); err != nil {
			return "", err
		}
	}
	name := req.Name
	if name == "" {
		name = req.Choreography + "/" + req.Party
	}
	s.discMu.Lock()
	err = s.disc.Publish(name, pub)
	s.discMu.Unlock()
	if err != nil {
		return "", fmt.Errorf("%w: %v", store.ErrExists, err)
	}
	return name, nil
}

// match runs discovery matchmaking and returns the sorted match names.
func (s *Server) match(ctx context.Context, req MatchRequest) (matcher string, names []string, err error) {
	snap, err := s.store.Snapshot(ctx, req.Choreography)
	if err != nil {
		return "", nil, err
	}
	ps, ok := snap.Party(req.Party)
	if !ok {
		return "", nil, fmt.Errorf("%w: party %q", store.ErrNotFound, req.Party)
	}
	matcher = req.Matcher
	if matcher == "" {
		matcher = "consistent"
	}
	var matches []discovery.Match
	s.discMu.RLock()
	switch matcher {
	case "consistent":
		matches, err = s.disc.MatchConsistent(ps.Public)
	case "overlap":
		matches = s.disc.MatchOverlap(ps.Public)
	default:
		err = badRequest("unknown matcher %q", matcher)
	}
	s.discMu.RUnlock()
	if err != nil {
		return "", nil, err
	}
	names = make([]string, 0, len(matches))
	for _, m := range matches {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return matcher, names, nil
}

func (s *Server) stats() StatsResponse {
	st := s.store.Stats()
	s.evoMu.RLock()
	pending := len(s.evos)
	s.evoMu.RUnlock()
	return StatsResponse{
		Choreographies:          st.Choreographies,
		ConsistencyHits:         st.ConsistencyHits,
		ConsistencyMisses:       st.ConsistencyMisses,
		ViewHits:                st.ViewHits,
		ViewMisses:              st.ViewMisses,
		Commits:                 st.Commits,
		Conflicts:               st.Conflicts,
		Evolutions:              st.Evolutions,
		PendingEvolutions:       pending,
		Requests:                s.requests.Load(),
		TrackedInstances:        st.TrackedInstances,
		InstancesByChoreography: st.InstancesByChoreography,
		EventsIngested:          st.EventsIngested,
		IngestRejected:          st.IngestRejected,
		OnlineMigrations:        st.OnlineMigrations,
		IngestLaneRejects:       st.IngestLaneRejects,
		Degraded:                st.Degraded,
		LastError:               st.LastError,
	}
}
