// Package server exposes the choreography store as a JSON HTTP
// service — choreod. It is the serving front end of the framework:
// clients register parties as BPEL XML, check pairwise consistency,
// submit changes for analysis (classification, propagation plans,
// adaptation suggestions), commit them, apply suggestions to
// partners, query instance migratability, and run consistency-based
// service discovery.
//
// The API (all bodies JSON; XML process payloads travel inside JSON
// strings):
//
//	POST   /v1/choreographies                                 {id, sync[]}
//	GET    /v1/choreographies
//	GET    /v1/choreographies/{id}
//	DELETE /v1/choreographies/{id}
//	POST   /v1/choreographies/{id}/parties                    {xml}
//	GET    /v1/choreographies/{id}/parties/{party}
//	PUT    /v1/choreographies/{id}/parties/{party}            {xml}
//	GET    /v1/choreographies/{id}/parties/{party}/view?for=P[&format=dot]
//	POST   /v1/choreographies/{id}/check
//	POST   /v1/choreographies/{id}/evolve                     {party, xml}
//	GET    /v1/evolutions/{evo}
//	POST   /v1/evolutions/{evo}/commit
//	POST   /v1/evolutions/{evo}/apply                         {partner, suggestions[]}
//	POST   /v1/choreographies/{id}/parties/{party}/instances  {sample}|{instances}
//	POST   /v1/choreographies/{id}/parties/{party}/migrate    {evolution}
//	POST   /v1/discovery/publish                              {name, choreography, party}
//	POST   /v1/discovery/match                                {choreography, party, matcher}
//	GET    /v1/stats
//	GET    /healthz
//
// Store sentinel errors map onto HTTP statuses: not-found → 404,
// duplicates and version conflicts → 409, malformed input → 400.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/discovery"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/store"
)

// Server is the choreod HTTP front end over a Store.
type Server struct {
	store *store.Store

	evoMu sync.RWMutex
	evos  map[string]*store.Evolution
	// evoOrder tracks insertion order so the pending set stays bounded
	// (maxPendingEvolutions): a long-running service would otherwise
	// accumulate every analysis ever made.
	evoOrder []string
	evoSeq   atomic.Uint64

	discMu sync.RWMutex
	disc   *discovery.Registry

	requests atomic.Uint64
}

// maxPendingEvolutions bounds the retained evolution analyses; the
// oldest are evicted first (a client holding a very old evolution ID
// gets 404 and re-runs evolve).
const maxPendingEvolutions = 1024

// New returns a server over st.
func New(st *store.Store) *Server {
	return &Server{
		store: st,
		evos:  map[string]*store.Evolution{},
		disc:  discovery.NewRegistry(),
	}
}

// Store returns the underlying store.
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/choreographies", s.handleCreate)
	mux.HandleFunc("GET /v1/choreographies", s.handleList)
	mux.HandleFunc("GET /v1/choreographies/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/choreographies/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties", s.handleRegisterParty)
	mux.HandleFunc("GET /v1/choreographies/{id}/parties/{party}", s.handleGetParty)
	mux.HandleFunc("PUT /v1/choreographies/{id}/parties/{party}", s.handleUpdateParty)
	mux.HandleFunc("GET /v1/choreographies/{id}/parties/{party}/view", s.handleView)
	mux.HandleFunc("POST /v1/choreographies/{id}/check", s.handleCheck)
	mux.HandleFunc("POST /v1/choreographies/{id}/evolve", s.handleEvolve)
	mux.HandleFunc("GET /v1/evolutions/{evo}", s.handleGetEvolution)
	mux.HandleFunc("POST /v1/evolutions/{evo}/commit", s.handleCommit)
	mux.HandleFunc("POST /v1/evolutions/{evo}/apply", s.handleApply)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties/{party}/instances", s.handleInstances)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties/{party}/migrate", s.handleMigrate)
	mux.HandleFunc("POST /v1/discovery/publish", s.handlePublish)
	mux.HandleFunc("POST /v1/discovery/match", s.handleMatch)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// ---- wire types ----

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CreateRequest creates a choreography.
type CreateRequest struct {
	ID string `json:"id"`
	// Sync lists "party.op" pairs to treat as synchronous operations.
	Sync []string `json:"sync,omitempty"`
}

// PartyRequest carries a private process as BPEL XML.
type PartyRequest struct {
	XML string `json:"xml"`
}

// PartyInfo summarizes one registered party.
type PartyInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// States/Transitions size the derived public process.
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	XML         string `json:"xml,omitempty"`
}

// ChoreographyInfo summarizes one choreography.
type ChoreographyInfo struct {
	ID      string      `json:"id"`
	Version uint64      `json:"version"`
	Parties []PartyInfo `json:"parties"`
}

// PairJSON is one pair's consistency status.
type PairJSON struct {
	A          string `json:"a"`
	B          string `json:"b"`
	Consistent bool   `json:"consistent"`
	Cached     bool   `json:"cached"`
}

// CheckResponse reports pairwise consistency.
type CheckResponse struct {
	ID         string     `json:"id"`
	Version    uint64     `json:"version"`
	Consistent bool       `json:"consistent"`
	Pairs      []PairJSON `json:"pairs"`
}

// EvolveRequest submits a change: the party's proposed new private
// process as XML.
type EvolveRequest struct {
	Party string `json:"party"`
	XML   string `json:"xml"`
}

// PlanJSON summarizes one propagation plan.
type PlanJSON struct {
	Kind string `json:"kind"`
	// DiffStates/NewPartnerPublicStates size the difference automaton
	// and adapted partner public process.
	DiffStates             int      `json:"diffStates"`
	NewPartnerPublicStates int      `json:"newPartnerPublicStates"`
	Hints                  []string `json:"hints,omitempty"`
	Regions                []string `json:"regions,omitempty"`
}

// SuggestionJSON is one proposed partner adaptation.
type SuggestionJSON struct {
	Index       int    `json:"index"`
	Description string `json:"description"`
	// Executable reports whether the suggestion carries a ready
	// operation that /apply can run; otherwise it is a manual
	// recommendation.
	Executable bool   `json:"executable"`
	Op         string `json:"op,omitempty"`
}

// ImpactJSON is the per-partner effect of a change.
type ImpactJSON struct {
	Partner     string           `json:"partner"`
	ViewChanged bool             `json:"viewChanged"`
	Kind        string           `json:"kind,omitempty"`
	Scope       string           `json:"scope,omitempty"`
	Plans       []PlanJSON       `json:"plans,omitempty"`
	Suggestions []SuggestionJSON `json:"suggestions,omitempty"`
}

// EvolveResponse is the analysis of one submitted change.
type EvolveResponse struct {
	Evolution        string       `json:"evolution"`
	Choreography     string       `json:"choreography"`
	Party            string       `json:"party"`
	BaseVersion      uint64       `json:"baseVersion"`
	PublicChanged    bool         `json:"publicChanged"`
	NeedsPropagation bool         `json:"needsPropagation"`
	Impacts          []ImpactJSON `json:"impacts"`
}

// CommitResponse acknowledges a commit.
type CommitResponse struct {
	Choreography string `json:"choreography"`
	Version      uint64 `json:"version"`
}

// ApplyRequest applies suggestions to a partner.
type ApplyRequest struct {
	Partner string `json:"partner"`
	// Suggestions are indices into the partner impact's suggestion
	// list; empty means every executable suggestion.
	Suggestions []int `json:"suggestions,omitempty"`
}

// InstancesRequest records running instances: either explicit traces
// or a seeded random sample.
type InstancesRequest struct {
	Instances []InstanceJSON `json:"instances,omitempty"`
	Sample    *SampleJSON    `json:"sample,omitempty"`
}

// InstanceJSON is one running conversation.
type InstanceJSON struct {
	ID    string   `json:"id"`
	Trace []string `json:"trace"`
}

// SampleJSON parameterizes instance sampling.
type SampleJSON struct {
	Seed   int64 `json:"seed"`
	N      int   `json:"n"`
	MaxLen int   `json:"maxLen"`
}

// MigrateRequest classifies a party's instances; with Evolution set,
// against that pending evolution's new public process (what-if before
// committing), otherwise against the party's current one.
type MigrateRequest struct {
	Evolution string `json:"evolution,omitempty"`
}

// MigrateResponse is the migration report.
type MigrateResponse struct {
	Total         int      `json:"total"`
	Migratable    int      `json:"migratable"`
	NonReplayable int      `json:"nonReplayable"`
	Unviable      int      `json:"unviable"`
	Blocked       []string `json:"blocked,omitempty"`
}

// PublishRequest publishes a party's public process for discovery.
// With For set, the bilateral view τ_For(party) is published instead —
// the behavior the service exposes to that prospective partner (the
// idiom of paper Sec. 6 matchmaking).
type PublishRequest struct {
	Name         string `json:"name"`
	Choreography string `json:"choreography"`
	Party        string `json:"party"`
	For          string `json:"for,omitempty"`
}

// MatchRequest queries discovery with a party's public process.
type MatchRequest struct {
	Choreography string `json:"choreography"`
	Party        string `json:"party"`
	// Matcher is "consistent" (default; the paper's matchmaking) or
	// "overlap" (the keyword-style baseline).
	Matcher string `json:"matcher,omitempty"`
}

// MatchResponse lists the matched services.
type MatchResponse struct {
	Matcher string   `json:"matcher"`
	Matches []string `json:"matches"`
}

// StatsResponse reports store and server counters.
type StatsResponse struct {
	Choreographies    int    `json:"choreographies"`
	ConsistencyHits   uint64 `json:"consistencyHits"`
	ConsistencyMisses uint64 `json:"consistencyMisses"`
	ViewHits          uint64 `json:"viewHits"`
	ViewMisses        uint64 `json:"viewMisses"`
	Commits           uint64 `json:"commits"`
	Conflicts         uint64 `json:"conflicts"`
	Evolutions        uint64 `json:"evolutions"`
	PendingEvolutions int    `json:"pendingEvolutions"`
	Requests          uint64 `json:"requests"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrExists), errors.Is(err, store.ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

var errBadRequest = errors.New("bad request")

func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding body: %v", err)
	}
	return nil
}

func parseProcess(xml string) (*bpel.Process, error) {
	if xml == "" {
		return nil, badRequest("empty process XML")
	}
	p, err := bpel.UnmarshalXML([]byte(xml))
	if err != nil {
		return nil, badRequest("parsing process XML: %v", err)
	}
	return p, nil
}

func partyInfo(ps *store.PartyState, withXML bool) (PartyInfo, error) {
	info := PartyInfo{
		Name:        ps.Name,
		Version:     ps.Version,
		States:      ps.Public.NumStates(),
		Transitions: ps.Public.NumTransitions(),
	}
	if withXML {
		data, err := bpel.MarshalXML(ps.Private)
		if err != nil {
			return info, err
		}
		info.XML = string(data)
	}
	return info, nil
}

func checkResponse(rep *store.CheckReport) CheckResponse {
	out := CheckResponse{ID: rep.ID, Version: rep.Version, Consistent: rep.Consistent()}
	for _, p := range rep.Pairs {
		out.Pairs = append(out.Pairs, PairJSON{A: p.A, B: p.B, Consistent: p.Consistent, Cached: p.Cached})
	}
	return out
}

func evolveResponse(id string, evo *store.Evolution) EvolveResponse {
	out := EvolveResponse{
		Evolution:        id,
		Choreography:     evo.Choreography,
		Party:            evo.Party,
		BaseVersion:      evo.BaseVersion,
		PublicChanged:    evo.PublicChanged,
		NeedsPropagation: evo.NeedsPropagation(),
	}
	for _, im := range evo.Impacts {
		ij := ImpactJSON{Partner: im.Partner, ViewChanged: im.ViewChanged}
		if im.ViewChanged {
			ij.Kind = im.Classification.Kind.String()
			ij.Scope = im.Classification.Scope.String()
		}
		for _, p := range im.Plans {
			pj := PlanJSON{
				Kind:                   p.Kind.String(),
				DiffStates:             p.Diff.NumStates(),
				NewPartnerPublicStates: p.NewPartnerPublic.NumStates(),
			}
			for _, h := range p.Hints {
				pj.Hints = append(pj.Hints, h.String())
			}
			for _, r := range p.Regions {
				pj.Regions = append(pj.Regions, r.String())
			}
			ij.Plans = append(ij.Plans, pj)
		}
		for i, sg := range im.Suggestions {
			sj := SuggestionJSON{Index: i, Description: sg.Description, Executable: sg.Op != nil}
			if sg.Op != nil {
				sj.Op = sg.Op.String()
			}
			ij.Suggestions = append(ij.Suggestions, sj)
		}
		out.Impacts = append(out.Impacts, ij)
	}
	return out
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	s.evoMu.RLock()
	pending := len(s.evos)
	s.evoMu.RUnlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		Choreographies:    st.Choreographies,
		ConsistencyHits:   st.ConsistencyHits,
		ConsistencyMisses: st.ConsistencyMisses,
		ViewHits:          st.ViewHits,
		ViewMisses:        st.ViewMisses,
		Commits:           st.Commits,
		Conflicts:         st.Conflicts,
		Evolutions:        st.Evolutions,
		PendingEvolutions: pending,
		Requests:          s.requests.Load(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == "" {
		writeError(w, badRequest("missing choreography id"))
		return
	}
	if err := s.store.Create(req.ID, req.Sync); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	ids := s.store.IDs()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string][]string{"choreographies": ids})
}

func (s *Server) choreographyInfo(id string) (*ChoreographyInfo, error) {
	snap, err := s.store.Snapshot(id)
	if err != nil {
		return nil, err
	}
	info := &ChoreographyInfo{ID: snap.ID, Version: snap.Version}
	for _, name := range snap.Parties() {
		ps, _ := snap.Party(name)
		pi, err := partyInfo(ps, false)
		if err != nil {
			return nil, err
		}
		info.Parties = append(info.Parties, pi)
	}
	return info, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.choreographyInfo(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleRegisterParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeError(w, err)
		return
	}
	snap, err := s.store.RegisterParty(r.PathValue("id"), p)
	if err != nil {
		writeError(w, err)
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGetParty(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Snapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	ps, ok := snap.Party(r.PathValue("party"))
	if !ok {
		writeError(w, fmt.Errorf("%w: party %q", store.ErrNotFound, r.PathValue("party")))
		return
	}
	info, err := partyInfo(ps, true)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUpdateParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeError(w, err)
		return
	}
	if p.Owner != r.PathValue("party") {
		writeError(w, badRequest("process owner %q does not match party %q", p.Owner, r.PathValue("party")))
		return
	}
	snap, err := s.store.UpdateParty(r.PathValue("id"), p)
	if err != nil {
		writeError(w, err)
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	forParty := r.URL.Query().Get("for")
	if forParty == "" {
		writeError(w, badRequest("missing ?for=party"))
		return
	}
	v, err := s.store.View(r.PathValue("id"), r.PathValue("party"), forParty)
	if err != nil {
		writeError(w, err)
		return
	}
	body := v.DebugString()
	if r.URL.Query().Get("format") == "dot" {
		body = v.DOT()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"of": r.PathValue("party"), "for": forParty,
		"states": v.NumStates(), "view": body,
	})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Check(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, checkResponse(rep))
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	var req EvolveRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Party == "" {
		writeError(w, badRequest("missing party"))
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeError(w, err)
		return
	}
	if p.Owner != req.Party {
		writeError(w, badRequest("process owner %q does not match party %q", p.Owner, req.Party))
		return
	}
	op := change.Replace{Path: nil, New: p.Body}
	evo, err := s.store.Evolve(r.PathValue("id"), req.Party, op)
	if err != nil {
		writeError(w, err)
		return
	}
	id := fmt.Sprintf("evo-%d", s.evoSeq.Add(1))
	s.evoMu.Lock()
	s.evos[id] = evo
	s.evoOrder = append(s.evoOrder, id)
	for len(s.evoOrder) > maxPendingEvolutions {
		delete(s.evos, s.evoOrder[0])
		s.evoOrder = s.evoOrder[1:]
	}
	s.evoMu.Unlock()
	writeJSON(w, http.StatusOK, evolveResponse(id, evo))
}

func (s *Server) evolution(id string) (*store.Evolution, error) {
	s.evoMu.RLock()
	evo, ok := s.evos[id]
	s.evoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: evolution %q", store.ErrNotFound, id)
	}
	return evo, nil
}

func (s *Server) handleGetEvolution(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("evo")
	evo, err := s.evolution(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evolveResponse(id, evo))
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeError(w, err)
		return
	}
	snap, err := s.store.CommitEvolution(evo)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: snap.ID, Version: snap.Version})
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req ApplyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	impact, ok := evo.Impact(req.Partner)
	if !ok {
		writeError(w, badRequest("evolution has no impact on partner %q", req.Partner))
		return
	}
	var ops []change.Operation
	if len(req.Suggestions) == 0 {
		for _, sg := range impact.Suggestions {
			if sg.Op != nil {
				ops = append(ops, sg.Op)
			}
		}
	} else {
		for _, idx := range req.Suggestions {
			if idx < 0 || idx >= len(impact.Suggestions) {
				writeError(w, badRequest("suggestion index %d out of range", idx))
				return
			}
			sg := impact.Suggestions[idx]
			if sg.Op == nil {
				writeError(w, badRequest("suggestion %d is manual: %s", idx, sg.Description))
				return
			}
			ops = append(ops, sg.Op)
		}
	}
	if len(ops) == 0 {
		writeError(w, badRequest("no executable suggestions for partner %q", req.Partner))
		return
	}
	// The suggestion paths are only valid against the partner version
	// the evolution was analyzed on; a changed partner answers 409.
	snap, err := s.store.ApplyOps(evo.Choreography, req.Partner, ops, evo.PartnerVersions[req.Partner])
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: snap.ID, Version: snap.Version})
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	var req InstancesRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	id, party := r.PathValue("id"), r.PathValue("party")
	added := 0
	if req.Sample != nil {
		n := req.Sample.N
		if n <= 0 {
			n = 100
		}
		maxLen := req.Sample.MaxLen
		if maxLen <= 0 {
			maxLen = 20
		}
		insts, err := s.store.SampleInstances(id, party, req.Sample.Seed, n, maxLen)
		if err != nil {
			writeError(w, err)
			return
		}
		added += len(insts)
	}
	if len(req.Instances) > 0 {
		var insts []instance.Instance
		for _, ij := range req.Instances {
			var trace []label.Label
			for _, t := range ij.Trace {
				l, err := label.Parse(t)
				if err != nil {
					writeError(w, badRequest("instance %q: %v", ij.ID, err))
					return
				}
				trace = append(trace, l)
			}
			insts = append(insts, instance.Instance{ID: ij.ID, Trace: trace})
		}
		if err := s.store.AddInstances(id, party, insts); err != nil {
			writeError(w, err)
			return
		}
		added += len(insts)
	}
	if added == 0 {
		writeError(w, badRequest("nothing to add: provide instances or sample"))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"added": added})
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	id, party := r.PathValue("id"), r.PathValue("party")
	var rep *instance.Report
	var err error
	if req.Evolution != "" {
		evo, eerr := s.evolution(req.Evolution)
		if eerr != nil {
			writeError(w, eerr)
			return
		}
		if evo.Choreography != id || evo.Party != party {
			writeError(w, badRequest("evolution %q does not target %s/%s", req.Evolution, id, party))
			return
		}
		rep, err = s.store.Migrate(id, party, evo.NewPublic)
	} else {
		rep, err = s.store.Migrate(id, party, nil)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MigrateResponse{
		Total:         rep.Total,
		Migratable:    rep.Migratable,
		NonReplayable: rep.NonReplayable,
		Unviable:      rep.Unviable,
		Blocked:       rep.Blocked,
	})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	snap, err := s.store.Snapshot(req.Choreography)
	if err != nil {
		writeError(w, err)
		return
	}
	ps, ok := snap.Party(req.Party)
	if !ok {
		writeError(w, fmt.Errorf("%w: party %q", store.ErrNotFound, req.Party))
		return
	}
	pub := ps.Public
	if req.For != "" {
		if pub, err = s.store.View(req.Choreography, req.Party, req.For); err != nil {
			writeError(w, err)
			return
		}
	}
	name := req.Name
	if name == "" {
		name = req.Choreography + "/" + req.Party
	}
	s.discMu.Lock()
	err = s.disc.Publish(name, pub)
	s.discMu.Unlock()
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", store.ErrExists, err))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	snap, err := s.store.Snapshot(req.Choreography)
	if err != nil {
		writeError(w, err)
		return
	}
	ps, ok := snap.Party(req.Party)
	if !ok {
		writeError(w, fmt.Errorf("%w: party %q", store.ErrNotFound, req.Party))
		return
	}
	matcher := req.Matcher
	if matcher == "" {
		matcher = "consistent"
	}
	var matches []discovery.Match
	s.discMu.RLock()
	switch matcher {
	case "consistent":
		matches, err = s.disc.MatchConsistent(ps.Public)
	case "overlap":
		matches = s.disc.MatchOverlap(ps.Public)
	default:
		err = badRequest("unknown matcher %q", matcher)
	}
	s.discMu.RUnlock()
	if err != nil {
		writeError(w, err)
		return
	}
	out := MatchResponse{Matcher: matcher, Matches: []string{}}
	for _, m := range matches {
		out.Matches = append(out.Matches, m.Name)
	}
	writeJSON(w, http.StatusOK, out)
}
