package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ingest"
	"repro/internal/store"
)

// ---- shared wire types (identical shapes on /v1/ and /v2/) ----

// CreateRequest creates a choreography.
type CreateRequest struct {
	ID string `json:"id"`
	// Sync lists "party.op" pairs to treat as synchronous operations.
	Sync []string `json:"sync,omitempty"`
}

// PartyRequest carries a private process as BPEL XML.
type PartyRequest struct {
	XML string `json:"xml"`
}

// PartyInfo summarizes one registered party.
type PartyInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// States/Transitions size the derived public process.
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	XML         string `json:"xml,omitempty"`
}

// ChoreographyInfo summarizes one choreography.
type ChoreographyInfo struct {
	ID      string      `json:"id"`
	Version uint64      `json:"version"`
	Parties []PartyInfo `json:"parties"`
}

// PairJSON is one pair's consistency status.
type PairJSON struct {
	A          string `json:"a"`
	B          string `json:"b"`
	Consistent bool   `json:"consistent"`
	Cached     bool   `json:"cached"`
}

// CheckResponse reports pairwise consistency.
type CheckResponse struct {
	ID         string     `json:"id"`
	Version    uint64     `json:"version"`
	Consistent bool       `json:"consistent"`
	Pairs      []PairJSON `json:"pairs"`
}

// PlanJSON summarizes one propagation plan.
type PlanJSON struct {
	Kind string `json:"kind"`
	// DiffStates/NewPartnerPublicStates size the difference automaton
	// and adapted partner public process.
	DiffStates             int      `json:"diffStates"`
	NewPartnerPublicStates int      `json:"newPartnerPublicStates"`
	Hints                  []string `json:"hints,omitempty"`
	Regions                []string `json:"regions,omitempty"`
}

// SuggestionJSON is one proposed partner adaptation.
type SuggestionJSON struct {
	Index       int    `json:"index"`
	Description string `json:"description"`
	// Executable reports whether the suggestion carries a ready
	// operation that /apply can run; otherwise it is a manual
	// recommendation.
	Executable bool   `json:"executable"`
	Op         string `json:"op,omitempty"`
}

// ImpactJSON is the per-partner effect of a change.
type ImpactJSON struct {
	Partner     string           `json:"partner"`
	ViewChanged bool             `json:"viewChanged"`
	Kind        string           `json:"kind,omitempty"`
	Scope       string           `json:"scope,omitempty"`
	Plans       []PlanJSON       `json:"plans,omitempty"`
	Suggestions []SuggestionJSON `json:"suggestions,omitempty"`
}

// CommitResponse acknowledges a commit.
type CommitResponse struct {
	Choreography string `json:"choreography"`
	Version      uint64 `json:"version"`
}

// ApplyRequest applies suggestions to a partner.
type ApplyRequest struct {
	Partner string `json:"partner"`
	// Suggestions are indices into the partner impact's suggestion
	// list; empty means every executable suggestion.
	Suggestions []int `json:"suggestions,omitempty"`
}

// InstancesRequest records running instances: either explicit traces
// or a seeded random sample.
type InstancesRequest struct {
	Instances []InstanceJSON `json:"instances,omitempty"`
	Sample    *SampleJSON    `json:"sample,omitempty"`
}

// InstanceJSON is one running conversation.
type InstanceJSON struct {
	ID    string   `json:"id"`
	Trace []string `json:"trace"`
}

// SampleJSON parameterizes instance sampling.
type SampleJSON struct {
	Seed   int64 `json:"seed"`
	N      int   `json:"n"`
	MaxLen int   `json:"maxLen"`
}

// MigrateRequest classifies a party's instances; with Evolution set,
// against that pending evolution's new public process (what-if before
// committing), otherwise against the party's current one.
type MigrateRequest struct {
	Evolution string `json:"evolution,omitempty"`
}

// MigrateResponse is the migration report.
type MigrateResponse struct {
	Total         int      `json:"total"`
	Migratable    int      `json:"migratable"`
	NonReplayable int      `json:"nonReplayable"`
	Unviable      int      `json:"unviable"`
	Blocked       []string `json:"blocked,omitempty"`
}

// PublishRequest publishes a party's public process for discovery.
// With For set, the bilateral view τ_For(party) is published instead —
// the behavior the service exposes to that prospective partner (the
// idiom of paper Sec. 6 matchmaking).
type PublishRequest struct {
	Name         string `json:"name"`
	Choreography string `json:"choreography"`
	Party        string `json:"party"`
	For          string `json:"for,omitempty"`
}

// MatchRequest queries discovery with a party's public process. Limit
// and PageToken paginate the result on /v2/ (ignored by /v1/).
type MatchRequest struct {
	Choreography string `json:"choreography"`
	Party        string `json:"party"`
	// Matcher is "consistent" (default; the paper's matchmaking) or
	// "overlap" (the keyword-style baseline).
	Matcher   string `json:"matcher,omitempty"`
	Limit     int    `json:"limit,omitempty"`
	PageToken string `json:"pageToken,omitempty"`
}

// MatchResponse lists the matched services.
type MatchResponse struct {
	Matcher string   `json:"matcher"`
	Matches []string `json:"matches"`
	// NextPageToken continues a paginated /v2/ match; empty when the
	// listing is complete.
	NextPageToken string `json:"nextPageToken,omitempty"`
}

// StatsResponse reports store and server counters.
type StatsResponse struct {
	Choreographies    int    `json:"choreographies"`
	ConsistencyHits   uint64 `json:"consistencyHits"`
	ConsistencyMisses uint64 `json:"consistencyMisses"`
	ViewHits          uint64 `json:"viewHits"`
	ViewMisses        uint64 `json:"viewMisses"`
	Commits           uint64 `json:"commits"`
	Conflicts         uint64 `json:"conflicts"`
	Evolutions        uint64 `json:"evolutions"`
	PendingEvolutions int    `json:"pendingEvolutions"`
	Requests          uint64 `json:"requests"`
	// TrackedInstances counts recorded instances across every
	// choreography; InstancesByChoreography breaks the count down per
	// choreography ID.
	TrackedInstances        int            `json:"trackedInstances"`
	InstancesByChoreography map[string]int `json:"instancesByChoreography,omitempty"`
	// EventsIngested / IngestRejected / OnlineMigrations are the
	// streaming-ingestion counters: events durably applied, events
	// refused with resource_exhausted backpressure, and instances moved
	// to a newer schema online as their next event arrived.
	EventsIngested   uint64 `json:"eventsIngested"`
	IngestRejected   uint64 `json:"ingestRejected"`
	OnlineMigrations uint64 `json:"onlineMigrations"`
	// IngestLaneRejects breaks IngestRejected down per ingestion lane,
	// summed across choreographies — a single hot lane shows up here.
	IngestLaneRejects []uint64 `json:"ingestLaneRejects,omitempty"`
	// Degraded reports a store that lost its journal and went
	// read-only; LastError carries the unrecoverable write error behind
	// it. Mirrored by GET /v2/readyz answering 503.
	Degraded  bool   `json:"degraded,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// ---- v1-only wire types ----

// ErrorResponse is the /v1/ JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// EvolveRequest submits a /v1/ change: the party's proposed new
// private process as XML (single whole-process operation).
type EvolveRequest struct {
	Party string `json:"party"`
	XML   string `json:"xml"`
}

// EvolveResponse is the /v1/ analysis of one submitted change, with
// the base version as a body field (moved to the ETag header on /v2/).
type EvolveResponse struct {
	Evolution        string       `json:"evolution"`
	Choreography     string       `json:"choreography"`
	Party            string       `json:"party"`
	BaseVersion      uint64       `json:"baseVersion"`
	PublicChanged    bool         `json:"publicChanged"`
	NeedsPropagation bool         `json:"needsPropagation"`
	Impacts          []ImpactJSON `json:"impacts"`
}

// ---- v2-only wire types ----

// Error codes of the /v2/ error envelope. They are part of the API
// contract: clients branch on codes, not on message strings.
const (
	CodeInvalidArgument   = "invalid_argument"   // 400
	CodeNotFound          = "not_found"          // 404
	CodeAlreadyExists     = "already_exists"     // 409
	CodeConflict          = "conflict"           // 409
	CodeStaleVersion      = "stale_version"      // 412
	CodeResourceExhausted = "resource_exhausted" // 429 (backpressure; details carry retryAfter seconds)
	CodeCancelled         = "cancelled"          // 503
	CodeUnavailable       = "unavailable"        // 503 (degraded read-only store, or shutting down)
	CodeInternal          = "internal"           // 500
)

// ErrorEnvelope is the uniform machine-readable /v2/ error body.
type ErrorEnvelope struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// ListResponse is one page of choreography IDs.
type ListResponse struct {
	Choreographies []string `json:"choreographies"`
	NextPageToken  string   `json:"nextPageToken,omitempty"`
}

// BatchPartiesRequest registers or updates several parties as one
// change transaction.
type BatchPartiesRequest struct {
	Parties []PartyRequest `json:"parties"`
}

// BatchPartiesResponse reports the committed batch.
type BatchPartiesResponse struct {
	Choreography string      `json:"choreography"`
	Version      uint64      `json:"version"`
	Parties      []PartyInfo `json:"parties"`
}

// BatchCheckRequest checks several choreographies in one call.
type BatchCheckRequest struct {
	IDs []string `json:"ids"`
}

// BatchCheckResult is one choreography's outcome inside a batch check:
// either a report or an error envelope, never both.
type BatchCheckResult struct {
	ID     string         `json:"id"`
	Report *CheckResponse `json:"report,omitempty"`
	Error  *ErrorEnvelope `json:"error,omitempty"`
}

// BatchCheckResponse collects the per-choreography outcomes.
type BatchCheckResponse struct {
	Results []BatchCheckResult `json:"results"`
}

// EvolveOpsRequest submits a /v2/ change transaction: one or more
// operations applied in order and analyzed as a unit.
type EvolveOpsRequest struct {
	Party string   `json:"party"`
	Ops   []OpJSON `json:"ops"`
}

// EvolveOpsResponse is the /v2/ analysis of one change transaction.
// The base snapshot version travels in the ETag response header, not
// the body; the client fills BaseVersion from it.
type EvolveOpsResponse struct {
	Evolution        string       `json:"evolution"`
	Choreography     string       `json:"choreography"`
	Party            string       `json:"party"`
	Ops              []string     `json:"ops"`
	PublicChanged    bool         `json:"publicChanged"`
	NeedsPropagation bool         `json:"needsPropagation"`
	Impacts          []ImpactJSON `json:"impacts"`
	// BaseVersion is client-side only (parsed from the ETag header).
	BaseVersion uint64 `json:"-"`
}

// ServicesResponse is one page of published discovery service names.
type ServicesResponse struct {
	Services      []string `json:"services"`
	NextPageToken string   `json:"nextPageToken,omitempty"`
}

// MigrationStartRequest starts (or resumes) the bulk migration of a
// choreography's tracked instances to its current committed snapshot.
type MigrationStartRequest struct {
	// Workers bounds the sweep's worker pool (<= 0 picks the server
	// default).
	Workers int `json:"workers,omitempty"`
}

// StrandedJSON is one instance that cannot move to the target version.
type StrandedJSON struct {
	Party string `json:"party"`
	ID    string `json:"id"`
	// Status is "non-replayable" (the trace is no prefix of the new
	// behavior) or "unviable" (it replays into a dead end).
	Status string `json:"status"`
}

// MigrationJobJSON is the observable state of one bulk-migration job.
// Jobs are idempotent per (choreography, targetVersion): starting the
// same migration twice returns the same job.
type MigrationJobJSON struct {
	Job           string `json:"job"`
	Choreography  string `json:"choreography"`
	TargetVersion uint64 `json:"targetVersion"`
	// Status is "running", "done", "canceled" (resumable) or "failed"
	// (retryable; see Error).
	Status string `json:"status"`
	// Shards/ShardsDone report sweep progress; counters below cover
	// committed shards only and never double-count across a
	// cancel/resume cycle.
	Shards        int `json:"shards"`
	ShardsDone    int `json:"shardsDone"`
	Total         int `json:"total"`
	Migratable    int `json:"migratable"`
	NonReplayable int `json:"nonReplayable"`
	Unviable      int `json:"unviable"`
	// Stranded is one page of the stranded-instance report (sorted by
	// party, then instance ID); NextPageToken continues it.
	Stranded      []StrandedJSON `json:"stranded,omitempty"`
	NextPageToken string         `json:"nextPageToken,omitempty"`
	Error         string         `json:"error,omitempty"`
}

// MigrationListResponse is one page of a choreography's migration
// jobs (without their stranded reports).
type MigrationListResponse struct {
	Jobs          []MigrationJobJSON `json:"jobs"`
	NextPageToken string             `json:"nextPageToken,omitempty"`
}

// IngestEventJSON is one observed message of a running instance: the
// exchanged label, attributed to the tracking party's instance ID. An
// unknown (party, instance) pair starts a fresh instance at the
// current schema version.
type IngestEventJSON struct {
	Party    string `json:"party"`
	Instance string `json:"instance"`
	Label    string `json:"label"`
}

// IngestRequest is one event batch for
// POST /v2/choreographies/{id}/instances:events. Events of one
// instance apply in batch order; the whole batch is accepted or — when
// an ingestion lane's queue is full — rejected as a unit with
// resource_exhausted and a retryAfter hint (see docs/ingest.md).
type IngestRequest struct {
	Events []IngestEventJSON `json:"events"`
}

// IngestResponse acknowledges a durably applied event batch.
type IngestResponse struct {
	Ingested int `json:"ingested"`
}

// CheckpointResponse acknowledges a journal compaction
// (POST /v2/admin/checkpoint).
type CheckpointResponse struct {
	// LSN is the last journaled mutation the new snapshot covers.
	LSN uint64 `json:"lsn"`
	// SnapshotBytes is the size of the snapshot that was written.
	SnapshotBytes int `json:"snapshotBytes"`
}

// ---- error mapping ----

var (
	errBadRequest = errors.New("bad request")
	// errStale marks an optimistic-concurrency failure surfaced through
	// ETag/If-Match on /v2/: the caller's snapshot version is outdated.
	errStale = errors.New("stale version")
)

func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// envelope classifies err into the /v2/ status and error body.
func envelope(err error) (int, ErrorEnvelope) {
	env := ErrorEnvelope{Message: err.Error()}
	var status int
	var bp *ingest.BackpressureError
	switch {
	case errors.As(err, &bp):
		status, env.Code = http.StatusTooManyRequests, CodeResourceExhausted
		env.Details = map[string]any{"retryAfter": bp.RetryAfter.Seconds(), "lane": bp.Lane}
	case errors.Is(err, ingest.ErrBackpressure):
		status, env.Code = http.StatusTooManyRequests, CodeResourceExhausted
	case errors.Is(err, errStale):
		status, env.Code = http.StatusPreconditionFailed, CodeStaleVersion
	case errors.Is(err, store.ErrNotFound):
		status, env.Code = http.StatusNotFound, CodeNotFound
	case errors.Is(err, store.ErrExists):
		status, env.Code = http.StatusConflict, CodeAlreadyExists
	case errors.Is(err, store.ErrConflict):
		status, env.Code = http.StatusConflict, CodeConflict
	case errors.Is(err, store.ErrInvalid), errors.Is(err, errBadRequest):
		status, env.Code = http.StatusBadRequest, CodeInvalidArgument
	case errors.Is(err, store.ErrDegraded):
		// The store lost its journal and went read-only: reads keep
		// working, mutations answer 503 until the operator recovers the
		// volume and restarts (see docs/resilience.md).
		status, env.Code = http.StatusServiceUnavailable, CodeUnavailable
		env.Details = map[string]any{"degraded": true}
	case errors.Is(err, store.ErrClosed):
		status, env.Code = http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status, env.Code = http.StatusServiceUnavailable, CodeCancelled
	default:
		status, env.Code = http.StatusInternalServerError, CodeInternal
	}
	return status, env
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErrorV1 writes the legacy /v1/ {error} envelope.
func writeErrorV1(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrExists), errors.Is(err, store.ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, errBadRequest), errors.Is(err, store.ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeErrorV2 writes the /v2/ {code, message, details} envelope.
func writeErrorV2(w http.ResponseWriter, err error) {
	status, env := envelope(err)
	writeJSON(w, status, env)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding body: %v", err)
	}
	return nil
}

// ---- ETag / If-Match ----

// etagOf renders a snapshot version as a strong entity tag.
func etagOf(version uint64) string { return `"` + strconv.FormatUint(version, 10) + `"` }

// setETag stamps the snapshot version the response describes.
func setETag(w http.ResponseWriter, version uint64) {
	w.Header().Set("ETag", etagOf(version))
}

// ifMatch parses the If-Match header into a snapshot version. ok is
// false when the header is absent or the wildcard "*" (no precondition
// to enforce); a malformed value is a bad request.
func ifMatch(r *http.Request) (version uint64, ok bool, err error) {
	raw := strings.TrimSpace(r.Header.Get("If-Match"))
	if raw == "" || raw == "*" {
		return 0, false, nil
	}
	raw = strings.TrimPrefix(raw, "W/")
	raw = strings.Trim(raw, `"`)
	v, perr := strconv.ParseUint(raw, 10, 64)
	if perr != nil {
		return 0, false, badRequest("malformed If-Match %q: want a snapshot version", r.Header.Get("If-Match"))
	}
	return v, true, nil
}

// staleVersion builds the 412 error for a precondition that missed.
func staleVersion(want, current uint64) error {
	return fmt.Errorf("%w: If-Match %d, current snapshot version %d", errStale, want, current)
}

// ---- cursor pagination ----

// maxPageLimit is the server-side maximum page size of every
// paginated /v2/ route (query-parameter and body limits alike): a
// larger client-supplied limit is clamped, never honored, so a single
// request cannot serialize an unbounded tenant population. Documented
// in docs/api.md — change both together.
const maxPageLimit = 1000

// defaultPageLimit is the page size when the client sends no limit
// (or 0).
const defaultPageLimit = maxPageLimit

func encodePageToken(last string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(last))
}

func decodePageToken(tok string) (string, error) {
	if tok == "" {
		return "", nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return "", badRequest("malformed page token %q", tok)
	}
	return string(raw), nil
}

// paginate slices one page out of the sorted name list: entries
// strictly after the cursor, at most limit of them, plus the token of
// the next page (empty when done). limit <= 0 picks defaultPageLimit.
func paginate(sorted []string, limit int, pageToken string) (page []string, next string, err error) {
	cursor, err := decodePageToken(pageToken)
	if err != nil {
		return nil, "", err
	}
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(sorted, cursor)
		if start < len(sorted) && sorted[start] == cursor {
			start++
		}
	}
	end := start + limit
	if end >= len(sorted) {
		return sorted[start:], "", nil
	}
	return sorted[start:end], encodePageToken(sorted[end-1]), nil
}

// pageQuery reads the limit/page_token query parameters, clamping
// limit to maxPageLimit — an arbitrarily large value must never reach
// a pagination loop or allocation site.
func pageQuery(r *http.Request) (limit int, token string, err error) {
	token = r.URL.Query().Get("page_token")
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			return 0, "", badRequest("malformed limit %q", raw)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	return limit, token, nil
}
