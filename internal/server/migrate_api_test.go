package server

import (
	"testing"
	"time"

	"repro/internal/paperrepro"
)

// migrationSetup drives the wire-level precondition of a bulk sweep:
// the procurement scenario with tracked instances for every party and
// the tracking-limit change committed.
func migrationSetup(t *testing.T, c *Client) string {
	t.Helper()
	id := paperSetup(t, c)
	for i, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		if _, err := c.SampleInstances(ctx, id, party, int64(100+i), 40, 12); err != nil {
			t.Fatal(err)
		}
	}
	newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.TrackingLimitChange())
	evo, err := c.Evolve(ctx, id, newAcc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestV2MigrationLifecycle drives a bulk migration end to end over the
// wire: start, poll to completion, page through the stranded report,
// verify idempotent restart, list and cancel semantics.
func TestV2MigrationLifecycle(t *testing.T) {
	c, _ := testClient(t)
	id := migrationSetup(t, c)

	job, err := c.StartMigration(ctx, id, 4)
	if err != nil {
		t.Fatal(err)
	}
	if job.Choreography != id || job.Job == "" {
		t.Fatalf("start answered %+v", job)
	}
	final, err := c.WaitMigration(ctx, id, job.Job, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" {
		t.Fatalf("status = %q (%s), want done", final.Status, final.Error)
	}
	if final.Total != 120 || final.ShardsDone != final.Shards {
		t.Fatalf("final = %+v, want 120 instances over all shards", final)
	}
	if final.Migratable == 0 || final.Migratable == final.Total {
		t.Fatalf("final = %+v, want a split verdict", final)
	}

	// The stranded report pages with a cursor; the union over pages is
	// exactly the non-migratable population, without duplicates.
	seen := map[string]bool{}
	token := ""
	pages := 0
	for {
		page, err := c.MigrationJob(ctx, id, job.Job, 3, token)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Stranded) > 3 {
			t.Fatalf("page of %d entries, limit 3", len(page.Stranded))
		}
		for _, st := range page.Stranded {
			key := st.Party + "/" + st.ID
			if seen[key] {
				t.Fatalf("stranded entry %s on two pages", key)
			}
			if st.Status != "non-replayable" && st.Status != "unviable" {
				t.Fatalf("stranded status %q", st.Status)
			}
			seen[key] = true
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(seen) != final.NonReplayable+final.Unviable {
		t.Fatalf("paged %d stranded entries, counters say %d", len(seen), final.NonReplayable+final.Unviable)
	}
	if pages < 2 {
		t.Fatalf("stranded report fit one page (%d entries) — raise the population", len(seen))
	}

	// Idempotent restart: same job, same report, nothing re-swept.
	again, err := c.StartMigration(ctx, id, 8)
	if err != nil {
		t.Fatal(err)
	}
	if again.Job != job.Job || again.Status != "done" || again.Total != final.Total {
		t.Fatalf("restart answered %+v, want the completed %s", again, job.Job)
	}

	// The job shows up in the listing; canceling a finished job is a
	// harmless no-op.
	jobs, err := c.MigrationJobs(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Job != job.Job {
		t.Fatalf("jobs = %+v", jobs)
	}
	canceled, err := c.CancelMigration(ctx, id, job.Job)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Status != "done" {
		t.Fatalf("cancel of a done job flipped status to %q", canceled.Status)
	}

	// MigrationStranded drains the full report in one call.
	all, err := c.MigrationStranded(ctx, id, job.Job)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(seen) {
		t.Fatalf("MigrationStranded = %d entries, want %d", len(all), len(seen))
	}
}

// TestV2MigrationErrors pins the error contract of the migration
// endpoints.
func TestV2MigrationErrors(t *testing.T) {
	c, _ := testClient(t)

	_, err := c.StartMigration(ctx, "ghost", 2)
	wantCode(t, err, 404, CodeNotFound)
	_, err = c.MigrationJobs(ctx, "ghost")
	wantCode(t, err, 404, CodeNotFound)

	id := paperSetup(t, c)
	_, err = c.MigrationJob(ctx, id, "mig-ghost-v9", 0, "")
	wantCode(t, err, 404, CodeNotFound)
	_, err = c.CancelMigration(ctx, id, "mig-ghost-v9")
	wantCode(t, err, 404, CodeNotFound)

	// A sweep over a choreography without any instances completes
	// trivially — and a job belongs to its choreography only.
	job, err := c.StartMigration(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitMigration(ctx, id, job.Job, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" || final.Total != 0 {
		t.Fatalf("empty sweep = %+v", final)
	}
	if err := c.CreateChoreography(ctx, "other", nil); err != nil {
		t.Fatal(err)
	}
	_, err = c.MigrationJob(ctx, "other", job.Job, 0, "")
	wantCode(t, err, 404, CodeNotFound)
}
