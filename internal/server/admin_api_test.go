package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// durableClient spins up a choreod over a journaled store in a temp
// directory and returns the typed client plus the journal dir (for
// reopening after a simulated crash).
func durableClient(t *testing.T) (*Client, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(store.WithJournal(dir), store.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := New(st)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), dir
}

// TestAdminCheckpointEndToEnd drives the durable service through the
// wire: mutate, checkpoint via POST /v2/admin/checkpoint, crash,
// reopen, and observe identical state from a second server.
func TestAdminCheckpointEndToEnd(t *testing.T) {
	c, dir := durableClient(t)
	id := paperSetup(t, c)
	if _, err := c.SampleInstances(ctx, id, "B", 1, 5, 8); err != nil {
		t.Fatal(err)
	}
	info, err := c.Checkpoint(ctx)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if info.LSN == 0 || info.SnapshotBytes == 0 {
		t.Fatalf("checkpoint response = %+v", info)
	}
	// More mutations after the checkpoint: recovery must replay the
	// tail on top of the snapshot.
	if _, err := c.SampleInstances(ctx, id, "A", 2, 3, 8); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen the journal directory in a second store/server.
	st2, err := store.Open(store.WithJournal(dir), store.WithShards(4))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	ts2 := httptest.NewServer(New(st2).Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL, ts2.Client())

	ch, err := c2.Choreography(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Parties) != 3 {
		t.Fatalf("recovered %d parties, want 3", len(ch.Parties))
	}
	rep, err := c2.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatal("recovered scenario not consistent")
	}
	recs, err := c2.Migrate(ctx, id, "B", "")
	if err != nil {
		t.Fatal(err)
	}
	if recs.Total != 5 {
		t.Fatalf("recovered %d B instances, want 5", recs.Total)
	}
}

// TestAdminCheckpointInMemory pins the error contract on a store
// without a journal.
func TestAdminCheckpointInMemory(t *testing.T) {
	c, _ := testClient(t)
	_, err := c.Checkpoint(ctx)
	if !ErrIs(err, CodeInvalidArgument) {
		t.Fatalf("Checkpoint on in-memory store = %v, want %s", err, CodeInvalidArgument)
	}
}

// TestCancelMigrationHonorsRequestContext pins the satellite fix: a
// DELETE whose request context is already done must not sleep out the
// settle window — it answers immediately with the job's current
// state, and the cancel itself still takes effect.
func TestCancelMigrationHonorsRequestContext(t *testing.T) {
	c, srv := testClient(t)
	id := paperSetup(t, c)
	if _, err := c.SampleInstances(ctx, id, "B", 1, 5, 8); err != nil {
		t.Fatal(err)
	}
	job, err := c.StartMigration(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("DELETE",
		"/v2/choreographies/"+id+"/migrations/"+job.Job, nil).WithContext(canceled)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.Handler().ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out MigrationJobJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("body: %v", err)
	}
	if out.Job != job.Job {
		t.Fatalf("answered job %q, want %q", out.Job, job.Job)
	}
	if elapsed >= cancelSettleTimeout {
		t.Fatalf("dead request slept %v — the settle window was not skipped", elapsed)
	}
}

// TestPageLimitClamped pins the server-side maximum page size across
// the pagination helpers every /v2/ listing goes through.
func TestPageLimitClamped(t *testing.T) {
	names := make([]string, 2*maxPageLimit)
	for i := range names {
		names[i] = fmt.Sprintf("n-%06d", i)
	}
	page, next, err := paginate(names, 1<<30, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != maxPageLimit {
		t.Fatalf("paginate honored an oversized limit: got %d, want %d", len(page), maxPageLimit)
	}
	if next == "" {
		t.Fatal("paginate with clamped limit lost the continuation token")
	}
	req := httptest.NewRequest("GET", "/v2/choreographies?limit=999999999", nil)
	limit, _, err := pageQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if limit != maxPageLimit {
		t.Fatalf("pageQuery returned %d, want clamp to %d", limit, maxPageLimit)
	}
	// Negative and malformed limits stay rejected.
	req = httptest.NewRequest("GET", "/v2/choreographies?limit=-1", nil)
	if _, _, err := pageQuery(req); err == nil {
		t.Fatal("pageQuery accepted a negative limit")
	}
}

// TestResponseTooLargeError pins the client satellite: a response
// body past the 8 MiB cap surfaces as ErrResponseTooLarge, not as an
// opaque JSON decode error on the silently truncated body.
func TestResponseTooLargeError(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A syntactically valid JSON object bigger than the cap: only
		// the cap detection can explain the failure.
		fmt.Fprintf(w, `{"id": %q, "version": 1, "parties": []}`,
			strings.Repeat("x", maxResponseBytes))
	}))
	defer huge.Close()
	c := NewClient(huge.URL, huge.Client())
	_, err := c.Choreography(ctx, "anything")
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("oversized response error = %v, want ErrResponseTooLarge", err)
	}
	// A body exactly within the cap still decodes.
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id": %q, "version": 1, "parties": []}`,
			strings.Repeat("x", maxResponseBytes-64))
	}))
	defer ok.Close()
	c2 := NewClient(ok.URL, ok.Client())
	if _, err := c2.Choreography(ctx, "anything"); err != nil {
		t.Fatalf("in-cap response failed: %v", err)
	}
}
