package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bpel"
	"repro/internal/paperrepro"
	"repro/internal/store"
)

// v1Client speaks the original /v1/ wire contract — one whole-process
// op per evolve, base version in the body, {error} envelope — exactly
// as a deployed v1 client binary would. It deliberately does not share
// code with the v2 Client: it is the compatibility oracle.
type v1Client struct {
	t    *testing.T
	base string
	http *http.Client
}

// call returns the HTTP status and decodes a 2xx body into out.
func (c *v1Client) call(method, path string, in, out any) (int, string) {
	c.t.Helper()
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			c.t.Fatal(err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var envlp ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envlp); err != nil {
			c.t.Fatalf("%s %s: HTTP %d without v1 {error} envelope: %v", method, path, resp.StatusCode, err)
		}
		if envlp.Error == "" {
			c.t.Fatalf("%s %s: HTTP %d with empty v1 error", method, path, resp.StatusCode)
		}
		return resp.StatusCode, envlp.Error
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
	}
	return resp.StatusCode, ""
}

func (c *v1Client) mustCall(method, path string, in, out any, wantStatus int) {
	c.t.Helper()
	status, errMsg := c.call(method, path, in, out)
	if status != wantStatus {
		c.t.Fatalf("%s %s = HTTP %d (%s), want %d", method, path, status, errMsg, wantStatus)
	}
}

func (c *v1Client) registerXML(id string, p *bpel.Process) {
	c.t.Helper()
	data, err := bpel.MarshalXML(p)
	if err != nil {
		c.t.Fatal(err)
	}
	c.mustCall("POST", "/v1/choreographies/"+id+"/parties", PartyRequest{XML: string(data)}, nil, http.StatusCreated)
}

// TestV1CompatProcurementScenario drives the paper's procurement
// scenario end to end through the unchanged /v1/ contract: register
// the three parties, check, evolve the accounting process with the
// Sec. 5.2 cancel change (single whole-process op, base version in the
// body), commit, let the buyer apply the suggested adaptation, and
// verify the legacy status mapping (404/400/409 with the {error}
// envelope, conflicts at 409 — not /v2/'s 412).
func TestV1CompatProcurementScenario(t *testing.T) {
	srv := New(store.New())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := &v1Client{t: t, base: ts.URL, http: ts.Client()}

	const id = "procurement"
	c.mustCall("POST", "/v1/choreographies",
		CreateRequest{ID: id, Sync: []string{"L.getStatusLOp"}}, nil, http.StatusCreated)
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		c.registerXML(id, p)
	}

	var list struct {
		Choreographies []string `json:"choreographies"`
	}
	c.mustCall("GET", "/v1/choreographies", nil, &list, http.StatusOK)
	if len(list.Choreographies) != 1 || list.Choreographies[0] != id {
		t.Fatalf("v1 list = %v", list.Choreographies)
	}

	var rep CheckResponse
	c.mustCall("POST", "/v1/choreographies/"+id+"/check", struct{}{}, &rep, http.StatusOK)
	if !rep.Consistent || len(rep.Pairs) != 2 {
		t.Fatalf("initial v1 check = %+v", rep)
	}

	// The v1 evolve body: {party, xml} with the full proposed process.
	newAcc, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	xml, err := bpel.MarshalXML(newAcc)
	if err != nil {
		t.Fatal(err)
	}
	var evo EvolveResponse
	c.mustCall("POST", "/v1/choreographies/"+id+"/evolve",
		EvolveRequest{Party: paperrepro.Accounting, XML: string(xml)}, &evo, http.StatusOK)
	if !evo.PublicChanged || !evo.NeedsPropagation {
		t.Fatalf("v1 cancel evolve = %+v", evo)
	}
	if evo.BaseVersion != 3 {
		t.Fatalf("v1 baseVersion (body field) = %d, want 3", evo.BaseVersion)
	}
	var buyer *ImpactJSON
	for i := range evo.Impacts {
		if evo.Impacts[i].Partner == paperrepro.Buyer {
			buyer = &evo.Impacts[i]
		}
	}
	if buyer == nil || buyer.Kind != "additive" || buyer.Scope != "variant" {
		t.Fatalf("v1 buyer impact = %+v", buyer)
	}
	var executable []int
	for _, sg := range buyer.Suggestions {
		if sg.Executable {
			executable = append(executable, sg.Index)
		}
	}
	if len(executable) != 1 {
		t.Fatalf("v1 executable suggestions = %v", executable)
	}

	var commit CommitResponse
	c.mustCall("POST", "/v1/evolutions/"+evo.Evolution+"/commit", struct{}{}, &commit, http.StatusOK)
	if commit.Version != evo.BaseVersion+1 {
		t.Fatalf("v1 committed version = %d", commit.Version)
	}
	c.mustCall("POST", "/v1/choreographies/"+id+"/check", struct{}{}, &rep, http.StatusOK)
	if rep.Consistent {
		t.Fatal("v1 choreography still consistent before the buyer adapts")
	}
	c.mustCall("POST", "/v1/evolutions/"+evo.Evolution+"/apply",
		ApplyRequest{Partner: paperrepro.Buyer, Suggestions: executable}, &commit, http.StatusOK)
	c.mustCall("POST", "/v1/choreographies/"+id+"/check", struct{}{}, &rep, http.StatusOK)
	if !rep.Consistent {
		t.Fatalf("v1 choreography inconsistent after propagation: %+v", rep.Pairs)
	}

	// Legacy status mapping with the {error} envelope.
	if status, _ := c.call("POST", "/v1/choreographies/ghost/check", struct{}{}, nil); status != 404 {
		t.Fatalf("v1 unknown choreography = HTTP %d, want 404", status)
	}
	if status, _ := c.call("POST", "/v1/choreographies",
		CreateRequest{ID: id}, nil); status != 409 {
		t.Fatalf("v1 duplicate create = HTTP %d, want 409", status)
	}
	if status, _ := c.call("POST", "/v1/choreographies/"+id+"/parties",
		PartyRequest{XML: "not xml"}, nil); status != 400 {
		t.Fatalf("v1 malformed XML = HTTP %d, want 400", status)
	}

	// A stale commit stays HTTP 409 on /v1/ (it is 412 on /v2/).
	newAcc2, err := paperrepro.OrderTwoChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	const id2 = "procurement-conflict"
	c.mustCall("POST", "/v1/choreographies",
		CreateRequest{ID: id2, Sync: []string{"L.getStatusLOp"}}, nil, http.StatusCreated)
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		c.registerXML(id2, p)
	}
	xml2, err := bpel.MarshalXML(newAcc2)
	if err != nil {
		t.Fatal(err)
	}
	var evoA, evoB EvolveResponse
	body := EvolveRequest{Party: paperrepro.Accounting, XML: string(xml2)}
	c.mustCall("POST", "/v1/choreographies/"+id2+"/evolve", body, &evoA, http.StatusOK)
	c.mustCall("POST", "/v1/choreographies/"+id2+"/evolve", body, &evoB, http.StatusOK)
	c.mustCall("POST", "/v1/evolutions/"+evoA.Evolution+"/commit", struct{}{}, &commit, http.StatusOK)
	if status, msg := c.call("POST", "/v1/evolutions/"+evoB.Evolution+"/commit", struct{}{}, nil); status != 409 {
		t.Fatalf("v1 stale commit = HTTP %d (%s), want 409", status, msg)
	}
}

// TestV1AndV2ShareOneStore pins the shim property: a party registered
// through /v1/ is visible through /v2/ and vice versa, and an
// evolution analyzed on one surface commits on the other.
func TestV1AndV2ShareOneStore(t *testing.T) {
	srv := New(store.New())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	v1 := &v1Client{t: t, base: ts.URL, http: ts.Client()}
	v2 := NewClient(ts.URL, ts.Client())

	const id = "shared"
	v1.mustCall("POST", "/v1/choreographies",
		CreateRequest{ID: id, Sync: []string{"L.getStatusLOp"}}, nil, http.StatusCreated)
	v1.registerXML(id, paperrepro.BuyerProcess())
	if _, err := v2.RegisterParty(ctx, id, paperrepro.AccountingProcess()); err != nil {
		t.Fatal(err)
	}
	v1.registerXML(id, paperrepro.LogisticsProcess())

	info, err := v2.Choreography(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Parties) != 3 {
		t.Fatalf("parties across surfaces = %d, want 3", len(info.Parties))
	}

	// Analyze on /v1/, commit on /v2/.
	newAcc, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	xml, err := bpel.MarshalXML(newAcc)
	if err != nil {
		t.Fatal(err)
	}
	var evo EvolveResponse
	v1.mustCall("POST", fmt.Sprintf("/v1/choreographies/%s/evolve", id),
		EvolveRequest{Party: paperrepro.Accounting, XML: string(xml)}, &evo, http.StatusOK)
	commit, err := v2.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Version != evo.BaseVersion+1 {
		t.Fatalf("cross-surface commit version = %d", commit.Version)
	}
}
