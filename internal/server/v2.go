package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/bpel"
	"repro/internal/ingest"
	"repro/internal/label"
	"repro/internal/store"
)

// The /v2/ surface: batch-first endpoints, multi-op change
// transactions, snapshot versions in ETag/If-Match headers (412 on
// stale preconditions), cursor pagination, and the {code, message,
// details} error envelope.

func (s *Server) routesV2(mux *http.ServeMux) {
	mux.HandleFunc("GET /v2/stats", s.v2Stats)
	mux.HandleFunc("GET /v2/healthz", s.v2Healthz)
	mux.HandleFunc("GET /v2/readyz", s.v2Readyz)
	mux.HandleFunc("POST /v2/choreographies", s.v2Create)
	mux.HandleFunc("GET /v2/choreographies", s.v2List)
	mux.HandleFunc("GET /v2/choreographies/{id}", s.v2Get)
	mux.HandleFunc("DELETE /v2/choreographies/{id}", s.v2Delete)
	mux.HandleFunc("POST /v2/choreographies/{id}/parties", s.v2RegisterParty)
	mux.HandleFunc("POST /v2/choreographies/{id}/parties:batch", s.v2BatchParties)
	mux.HandleFunc("GET /v2/choreographies/{id}/parties/{party}", s.v2GetParty)
	mux.HandleFunc("PUT /v2/choreographies/{id}/parties/{party}", s.v2UpdateParty)
	mux.HandleFunc("GET /v2/choreographies/{id}/parties/{party}/view", s.v2View)
	mux.HandleFunc("POST /v2/choreographies/{id}/check", s.v2Check)
	mux.HandleFunc("POST /v2/check:batch", s.v2BatchCheck)
	mux.HandleFunc("POST /v2/choreographies/{id}/evolve", s.v2Evolve)
	mux.HandleFunc("GET /v2/evolutions/{evo}", s.v2GetEvolution)
	mux.HandleFunc("POST /v2/evolutions/{evo}/commit", s.v2Commit)
	mux.HandleFunc("POST /v2/evolutions/{evo}/apply", s.v2Apply)
	mux.HandleFunc("POST /v2/choreographies/{id}/parties/{party}/instances", s.v2Instances)
	mux.HandleFunc("POST /v2/choreographies/{id}/instances:events", s.v2IngestEvents)
	mux.HandleFunc("POST /v2/choreographies/{id}/parties/{party}/migrate", s.v2Migrate)
	mux.HandleFunc("POST /v2/choreographies/{id}/migrations", s.v2StartMigration)
	mux.HandleFunc("GET /v2/choreographies/{id}/migrations", s.v2ListMigrations)
	mux.HandleFunc("GET /v2/choreographies/{id}/migrations/{job}", s.v2GetMigration)
	mux.HandleFunc("DELETE /v2/choreographies/{id}/migrations/{job}", s.v2CancelMigration)
	mux.HandleFunc("POST /v2/discovery/publish", s.v2Publish)
	mux.HandleFunc("POST /v2/discovery/match", s.v2Match)
	mux.HandleFunc("GET /v2/discovery/services", s.v2Services)
	mux.HandleFunc("POST /v2/admin/checkpoint", s.v2Checkpoint)
}

// evolveResponseV2 renders an analysis in the v2 shape; the base
// version travels as the response ETag instead of a body field.
func evolveResponseV2(id string, evo *store.Evolution) EvolveOpsResponse {
	out := EvolveOpsResponse{
		Evolution:        id,
		Choreography:     evo.Choreography,
		Party:            evo.Party,
		Ops:              make([]string, 0, len(evo.Ops)),
		PublicChanged:    evo.PublicChanged,
		NeedsPropagation: evo.NeedsPropagation(),
		Impacts:          impactsJSON(evo),
		BaseVersion:      evo.BaseVersion,
	}
	for _, op := range evo.Ops {
		out.Ops = append(out.Ops, op.String())
	}
	return out
}

// ifMatchVersion parses the If-Match header into a nil-able expected
// snapshot version for the store, which enforces it under the commit
// lock (absent header or "*" → nil, unconditional).
func ifMatchVersion(r *http.Request) (*uint64, error) {
	want, ok, err := ifMatch(r)
	if err != nil || !ok {
		return nil, err
	}
	return &want, nil
}

// asStale rewrites a store version conflict into the /v2/ 412
// precondition failure; other errors pass through.
func asStale(err error) error {
	if errors.Is(err, store.ErrConflict) {
		return fmt.Errorf("%w: %v", errStale, err)
	}
	return err
}

func (s *Server) v2Stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// v2Healthz is the liveness probe: 200 whenever the process serves
// requests, degraded or not — a degraded store still answers reads and
// must not be restarted into a crash loop by an orchestrator.
func (s *Server) v2Healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// v2Readyz is the readiness probe: 503 {code: "unavailable"} once the
// store degraded to read-only, so traffic that mutates is drained away
// while reads keep flowing through clients that ignore readiness.
func (s *Server) v2Readyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.store.Degraded(); err != nil {
		// Degraded() reports the causal journal failure; wrap it so the
		// envelope classifies it as unavailable, not internal.
		writeErrorV2(w, fmt.Errorf("%w: %v", store.ErrDegraded, err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) v2Create(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	if req.ID == "" {
		writeErrorV2(w, badRequest("missing choreography id"))
		return
	}
	if err := s.store.Create(r.Context(), req.ID, req.Sync); err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, 0)
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) v2List(w http.ResponseWriter, r *http.Request) {
	limit, token, err := pageQuery(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	ids, err := s.sortedIDs(r.Context())
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	page, next, err := paginate(ids, limit, token)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ListResponse{Choreographies: page, NextPageToken: next})
}

func (s *Server) v2Get(w http.ResponseWriter, r *http.Request) {
	info, err := s.choreographyInfo(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, info.Version)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v2Delete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) v2RegisterParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	snap, err := s.store.RegisterParty(r.Context(), r.PathValue("id"), p)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, snap.Version)
	writeJSON(w, http.StatusCreated, info)
}

// v2BatchParties registers and/or updates several parties as one
// change transaction: one registry inference, one snapshot publish,
// one version bump.
func (s *Server) v2BatchParties(w http.ResponseWriter, r *http.Request) {
	var req BatchPartiesRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	if len(req.Parties) == 0 {
		writeErrorV2(w, badRequest("empty party batch"))
		return
	}
	procs := make([]*bpel.Process, 0, len(req.Parties))
	for i, pr := range req.Parties {
		p, err := parseProcess(pr.XML)
		if err != nil {
			writeErrorV2(w, badRequest("parties[%d]: %v", i, err))
			return
		}
		procs = append(procs, p)
	}
	ifVersion, err := ifMatchVersion(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	snap, err := s.store.PutParties(r.Context(), r.PathValue("id"), procs, ifVersion)
	if err != nil {
		writeErrorV2(w, asStale(err))
		return
	}
	out := BatchPartiesResponse{Choreography: snap.ID, Version: snap.Version}
	for _, p := range procs {
		ps, _ := snap.Party(p.Owner)
		info, err := partyInfo(ps, false)
		if err != nil {
			writeErrorV2(w, err)
			return
		}
		out.Parties = append(out.Parties, info)
	}
	setETag(w, snap.Version)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) v2GetParty(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	ps, ok := snap.Party(r.PathValue("party"))
	if !ok {
		writeErrorV2(w, fmt.Errorf("%w: party %q", store.ErrNotFound, r.PathValue("party")))
		return
	}
	info, err := partyInfo(ps, true)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, snap.Version)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v2UpdateParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	if p.Owner != r.PathValue("party") {
		writeErrorV2(w, badRequest("process owner %q does not match party %q", p.Owner, r.PathValue("party")))
		return
	}
	ifVersion, err := ifMatchVersion(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	snap, err := s.store.UpdateParty(r.Context(), r.PathValue("id"), p, ifVersion)
	if err != nil {
		writeErrorV2(w, asStale(err))
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, snap.Version)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v2View(w http.ResponseWriter, r *http.Request) {
	forParty := r.URL.Query().Get("for")
	if forParty == "" {
		writeErrorV2(w, badRequest("missing ?for=party"))
		return
	}
	v, err := s.store.View(r.Context(), r.PathValue("id"), r.PathValue("party"), forParty)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	body := v.DebugString()
	if r.URL.Query().Get("format") == "dot" {
		body = v.DOT()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"of": r.PathValue("party"), "for": forParty,
		"states": v.NumStates(), "view": body,
	})
}

func (s *Server) v2Check(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Check(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, rep.Version)
	writeJSON(w, http.StatusOK, checkResponse(rep))
}

// v2BatchCheck checks several choreographies in one request; failures
// are reported per ID so one unknown choreography does not void the
// rest of the batch.
func (s *Server) v2BatchCheck(w http.ResponseWriter, r *http.Request) {
	var req BatchCheckRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	if len(req.IDs) == 0 {
		writeErrorV2(w, badRequest("empty id batch"))
		return
	}
	out := BatchCheckResponse{Results: make([]BatchCheckResult, 0, len(req.IDs))}
	for _, id := range req.IDs {
		if err := r.Context().Err(); err != nil {
			writeErrorV2(w, err)
			return
		}
		res := BatchCheckResult{ID: id}
		rep, err := s.store.Check(r.Context(), id)
		if err != nil {
			_, env := envelope(err)
			res.Error = &env
		} else {
			res.Report = checkResponse(rep)
		}
		out.Results = append(out.Results, res)
	}
	writeJSON(w, http.StatusOK, out)
}

// v2Evolve analyzes a multi-op change transaction. The ops are applied
// in order to the party's private process and the combined delta is
// classified once; the base snapshot version is returned as the ETag.
// A retried request carrying the same Idempotency-Key answers the
// analysis already minted for it instead of registering a duplicate.
func (s *Server) v2Evolve(w http.ResponseWriter, r *http.Request) {
	var req EvolveOpsRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	key := idempotencyKey(r)
	if key != "" {
		if id, evo, ok := s.evolutionByKey(key); ok {
			setETag(w, evo.BaseVersion)
			writeJSON(w, http.StatusOK, evolveResponseV2(id, evo))
			return
		}
	}
	ops, err := decodeOps(req.Party, req.Ops)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	evo, err := s.store.Evolve(r.Context(), r.PathValue("id"), req.Party, ops...)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, evo.BaseVersion)
	writeJSON(w, http.StatusOK, evolveResponseV2(s.registerEvolution(evo, key), evo))
}

func (s *Server) v2GetEvolution(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("evo")
	evo, err := s.evolution(id)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, evo.BaseVersion)
	writeJSON(w, http.StatusOK, evolveResponseV2(id, evo))
}

// v2Commit publishes a pending evolution. Staleness — an If-Match that
// no longer matches, or a choreography that advanced past the
// evolution's base version — answers 412 {code: "stale_version"}; the
// client re-runs evolve against the fresh snapshot.
func (s *Server) v2Commit(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	// An If-Match that disagrees with the evolution's pinned base is
	// stale by construction; matching ones defer to the commit lock's
	// own base-version check, so the precondition is race-free.
	ifVersion, err := ifMatchVersion(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	if ifVersion != nil && *ifVersion != evo.BaseVersion {
		writeErrorV2(w, staleVersion(*ifVersion, evo.BaseVersion))
		return
	}
	// With an Idempotency-Key, the store journals (key → outcome) with
	// the commit itself: a retried commit with the same key answers the
	// original version instead of applying twice (or failing with a
	// spurious conflict).
	_, version, err := s.store.CommitEvolutionIdem(r.Context(), evo, idempotencyKey(r))
	if err != nil {
		writeErrorV2(w, asStale(err))
		return
	}
	setETag(w, version)
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: evo.Choreography, Version: version})
}

// idempotencyKey reads the request's Idempotency-Key header; empty
// means the mutation is not keyed and retries are the caller's risk.
func idempotencyKey(r *http.Request) string {
	return strings.TrimSpace(r.Header.Get("Idempotency-Key"))
}

// v2Apply runs suggestions on a partner. A partner that changed since
// the analysis answers 409 {code: "conflict"} — unlike commit
// staleness this is a race on the partner's own process, and the
// caller must re-evolve to get fresh suggestions.
func (s *Server) v2Apply(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	var req ApplyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	snap, err := s.applyOps(r.Context(), evo, req)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	setETag(w, snap.Version)
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: snap.ID, Version: snap.Version})
}

func (s *Server) v2Instances(w http.ResponseWriter, r *http.Request) {
	var req InstancesRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	added, err := s.addInstances(r.Context(), r.PathValue("id"), r.PathValue("party"), req)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"added": added})
}

// maxIngestBatch bounds one ingest request. It stays below the
// store's per-lane queue capacity so a single maximal batch routed to
// one lane can always be admitted by an idle engine. Documented in
// docs/api.md — change both together.
const maxIngestBatch = 1024

// v2IngestEvents streams one batch of observed instance events into
// the choreography. The batch is durably journaled and applied before
// the response; a full ingestion lane answers 429
// {code: "resource_exhausted"} with a retryAfter hint in the details,
// and the client resubmits the identical batch after backing off.
func (s *Server) v2IngestEvents(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	if len(req.Events) == 0 {
		writeErrorV2(w, badRequest("empty event batch"))
		return
	}
	if len(req.Events) > maxIngestBatch {
		writeErrorV2(w, badRequest("batch of %d events exceeds the maximum of %d", len(req.Events), maxIngestBatch))
		return
	}
	events := make([]ingest.Event, 0, len(req.Events))
	for i, ev := range req.Events {
		l, err := label.Parse(ev.Label)
		if err != nil {
			writeErrorV2(w, badRequest("events[%d]: %v", i, err))
			return
		}
		events = append(events, ingest.Event{Party: ev.Party, Instance: ev.Instance, Label: l})
	}
	n, err := s.store.IngestEvents(r.Context(), r.PathValue("id"), events)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: n})
}

func (s *Server) v2Migrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	rep, err := s.migrate(r.Context(), r.PathValue("id"), r.PathValue("party"), req.Evolution)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// v2StartMigration launches (or resumes) the bulk migration of a
// choreography's tracked instances to its current committed snapshot.
// The job identity is (choreography, snapshot version), so POSTing the
// same migration twice is idempotent: a sweep already in flight is
// joined (202), a completed one answers its final report immediately
// (200) without re-sweeping.
func (s *Server) v2StartMigration(w http.ResponseWriter, r *http.Request) {
	var req MigrationStartRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = defaultMigrationWorkers
	}
	job, err := s.store.StartMigration(r.Context(), r.PathValue("id"), workers)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	out := migrationJSON(job)
	status := http.StatusAccepted
	if out.Status != "running" {
		status = http.StatusOK
	}
	writeJSON(w, status, out)
}

func (s *Server) v2ListMigrations(w http.ResponseWriter, r *http.Request) {
	limit, token, err := pageQuery(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	jobs, err := s.store.MigrationJobs(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	ids := make([]string, 0, len(jobs))
	byID := make(map[string]MigrationJobJSON, len(jobs))
	for _, job := range jobs {
		ids = append(ids, job.ID)
		byID[job.ID] = migrationJSON(job)
	}
	page, next, err := paginate(ids, limit, token)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	out := MigrationListResponse{Jobs: make([]MigrationJobJSON, 0, len(page)), NextPageToken: next}
	for _, id := range page {
		out.Jobs = append(out.Jobs, byID[id])
	}
	writeJSON(w, http.StatusOK, out)
}

// v2GetMigration reports a job's progress plus one cursor page of its
// stranded-instance report.
func (s *Server) v2GetMigration(w http.ResponseWriter, r *http.Request) {
	limit, token, err := pageQuery(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	job, err := s.store.MigrationJob(r.Context(), r.PathValue("id"), r.PathValue("job"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	out, err := migrationJSONPage(job, limit, token)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// v2CancelMigration stops a running sweep. Shards already committed
// keep their results; POSTing the migration again resumes the rest.
// The handler waits briefly for the runner to settle so the response
// normally shows the terminal state; a response still saying
// "running" means the workers are draining — poll the job.
//
// A cancel that reached the server takes effect even when the request
// context is already done (client gone, deadline blown): the intent
// was expressed, and dropping it would leak a sweep the caller
// believes stopped. The settle wait, on the other hand, strictly
// honors the request context — a dead request never sleeps out the
// settle window.
func (s *Server) v2CancelMigration(w http.ResponseWriter, r *http.Request) {
	job, err := s.store.MigrationJob(context.WithoutCancel(r.Context()), r.PathValue("id"), r.PathValue("job"))
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	job.Cancel()
	if r.Context().Err() != nil {
		// Nobody is waiting for the settled state; answer immediately.
		writeJSON(w, http.StatusOK, migrationView(job.Snapshot()))
		return
	}
	settle, cancel := context.WithTimeout(r.Context(), cancelSettleTimeout)
	defer cancel()
	v, _ := job.Wait(settle)
	writeJSON(w, http.StatusOK, migrationView(v))
}

// v2Checkpoint compacts the store's journal online: the full state is
// serialized into the snapshot file and the write-ahead log is
// truncated (see docs/persistence.md). On an in-memory store it fails
// with invalid_argument.
func (s *Server) v2Checkpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.store.Checkpoint(r.Context())
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{LSN: info.LSN, SnapshotBytes: info.Bytes})
}

// cancelSettleTimeout bounds how long a cancel waits for the sweep's
// workers to drain before answering with the still-running state.
const cancelSettleTimeout = 500 * time.Millisecond

func (s *Server) v2Publish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	name, err := s.publish(r.Context(), req)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

func (s *Server) v2Match(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if err := decode(r, &req); err != nil {
		writeErrorV2(w, err)
		return
	}
	matcher, names, err := s.match(r.Context(), req)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	page, next, err := paginate(names, req.Limit, req.PageToken)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	out := MatchResponse{Matcher: matcher, Matches: []string{}, NextPageToken: next}
	out.Matches = append(out.Matches, page...)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) v2Services(w http.ResponseWriter, r *http.Request) {
	limit, token, err := pageQuery(r)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	s.discMu.RLock()
	names := s.disc.Names()
	s.discMu.RUnlock()
	page, next, err := paginate(names, limit, token)
	if err != nil {
		writeErrorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ServicesResponse{Services: page, NextPageToken: next})
}
