package server

import (
	"strings"

	"repro/internal/bpel"
	"repro/internal/change"
)

// OpJSON is the wire encoding of one structural change operation of a
// /v2/ evolve transaction. Kind selects the operation; the other
// fields parameterize it:
//
//	replaceProcess  XML (whole process; owner must match the party)
//	replace         Path, XML (activity fragment)
//	insert          Path (sibling), XML, After
//	append          Path (sequence/flow), XML
//	delete          Path
//	shift           Path, Anchor, After
//	setWhileCond    Path, Cond
//
// Path addresses an activity as its block elements joined by "/"
// (e.g. "Sequence:accounting process/Receive:order"); activity XML
// uses the same fragment syntax the BPEL process bodies use.
type OpJSON struct {
	Kind   string `json:"kind"`
	Path   string `json:"path,omitempty"`
	XML    string `json:"xml,omitempty"`
	Cond   string `json:"cond,omitempty"`
	Anchor string `json:"anchor,omitempty"`
	After  bool   `json:"after,omitempty"`
}

// parsePath splits the "/"-joined wire path into bpel.Path elements.
func parsePath(s string) bpel.Path {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, "/")
	out := make(bpel.Path, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// activity parses the op's XML field as an activity fragment.
func (o OpJSON) activity() (bpel.Activity, error) {
	if o.XML == "" {
		return nil, badRequest("op %q needs an activity in xml", o.Kind)
	}
	a, err := bpel.UnmarshalActivityXML([]byte(o.XML))
	if err != nil {
		return nil, badRequest("op %q: parsing activity XML: %v", o.Kind, err)
	}
	return a, nil
}

// Operation translates the wire op into a change.Operation for party.
func (o OpJSON) Operation(party string) (change.Operation, error) {
	switch o.Kind {
	case "replaceProcess":
		p, err := parseProcess(o.XML)
		if err != nil {
			return nil, err
		}
		if p.Owner != party {
			return nil, badRequest("op replaceProcess: process owner %q does not match party %q", p.Owner, party)
		}
		return change.Replace{Path: nil, New: p.Body}, nil
	case "replace":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return change.Replace{Path: parsePath(o.Path), New: a}, nil
	case "insert":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return change.Insert{Path: parsePath(o.Path), New: a, After: o.After}, nil
	case "append":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return change.Append{Path: parsePath(o.Path), New: a}, nil
	case "delete":
		return change.Delete{Path: parsePath(o.Path)}, nil
	case "shift":
		return change.Shift{Path: parsePath(o.Path), Anchor: o.Anchor, After: o.After}, nil
	case "setWhileCond":
		return change.SetWhileCond{Path: parsePath(o.Path), Cond: o.Cond}, nil
	case "":
		return nil, badRequest("op without kind")
	}
	return nil, badRequest("unknown op kind %q", o.Kind)
}

// decodeOps translates a wire op list into a change transaction.
func decodeOps(party string, ops []OpJSON) ([]change.Operation, error) {
	if party == "" {
		return nil, badRequest("missing party")
	}
	if len(ops) == 0 {
		return nil, badRequest("evolve needs at least one op")
	}
	out := make([]change.Operation, 0, len(ops))
	for i, o := range ops {
		op, err := o.Operation(party)
		if err != nil {
			return nil, badRequest("ops[%d]: %v", i, err)
		}
		out = append(out, op)
	}
	return out, nil
}
