package server

import (
	"repro/internal/change"
)

// OpJSON is the wire encoding of one structural change operation of a
// /v2/ evolve transaction. It mirrors change.Spec — Kind selects the
// operation; the other fields parameterize it:
//
//	replaceProcess  XML (whole process; owner must match the party)
//	replace         Path, XML (activity fragment)
//	insert          Path (sibling), XML, After
//	append          Path (sequence/flow), XML
//	delete          Path
//	shift           Path, Anchor, After
//	setWhileCond    Path, Cond
//
// Path addresses an activity as its block elements joined by "/"
// (e.g. "Sequence:accounting process/Receive:order"); activity XML
// uses the same fragment syntax the BPEL process bodies use.
type OpJSON struct {
	Kind   string `json:"kind"`
	Path   string `json:"path,omitempty"`
	XML    string `json:"xml,omitempty"`
	Cond   string `json:"cond,omitempty"`
	Anchor string `json:"anchor,omitempty"`
	After  bool   `json:"after,omitempty"`
}

// Operation translates the wire op into a change.Operation for party.
func (o OpJSON) Operation(party string) (change.Operation, error) {
	op, err := change.Spec(o).Decode(party)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return op, nil
}

// decodeOps translates a wire op list into a change transaction.
func decodeOps(party string, ops []OpJSON) ([]change.Operation, error) {
	if party == "" {
		return nil, badRequest("missing party")
	}
	if len(ops) == 0 {
		return nil, badRequest("evolve needs at least one op")
	}
	out := make([]change.Operation, 0, len(ops))
	for i, o := range ops {
		op, err := o.Operation(party)
		if err != nil {
			return nil, badRequest("ops[%d]: %v", i, err)
		}
		out = append(out, op)
	}
	return out, nil
}
