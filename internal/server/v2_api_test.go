package server

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bpel"
	"repro/internal/paperrepro"
)

// v64 makes an If-Match precondition pointer.
func v64(v uint64) *uint64 { return &v }

func wantCode(t *testing.T, err error, status int, code string) {
	t.Helper()
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want APIError %d/%s", err, status, code)
	}
	if apiErr.Status != status || apiErr.Code != code {
		t.Fatalf("error = HTTP %d %q (%s), want HTTP %d %q", apiErr.Status, apiErr.Code, apiErr.Message, status, code)
	}
}

// TestV2ErrorEnvelopeCodes pins the /v2/ error contract: stable
// machine-readable codes per failure class, asserted through the typed
// client.
func TestV2ErrorEnvelopeCodes(t *testing.T) {
	c, _ := testClient(t)

	// 404 not_found.
	_, err := c.Check(ctx, "ghost")
	wantCode(t, err, 404, CodeNotFound)
	_, err = c.Evolution(ctx, "evo-999")
	wantCode(t, err, 404, CodeNotFound)

	// 409 already_exists.
	if err := c.CreateChoreography(ctx, "dup", nil); err != nil {
		t.Fatal(err)
	}
	wantCode(t, c.CreateChoreography(ctx, "dup", nil), 409, CodeAlreadyExists)

	// 400 invalid_argument.
	_, err = c.RegisterPartyXML(ctx, "dup", "not xml")
	wantCode(t, err, 400, CodeInvalidArgument)
	_, err = c.EvolveOps(ctx, "dup", "A", nil)
	wantCode(t, err, 400, CodeInvalidArgument)
	_, err = c.EvolveOps(ctx, "dup", "A", []OpJSON{{Kind: "teleport"}})
	wantCode(t, err, 400, CodeInvalidArgument)

	// ErrIs matches by code.
	if !ErrIs(err, CodeInvalidArgument) || ErrIs(err, CodeNotFound) {
		t.Fatalf("ErrIs misclassified %v", err)
	}
}

// TestV2StaleIfMatch pins the optimistic-concurrency contract: a
// commit under a stale If-Match answers 412 stale_version, a fresh one
// succeeds, and an update racing a batch loses with 412 as well.
func TestV2StaleIfMatch(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)

	newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.OrderTwoChange())
	evo, err := c.Evolve(ctx, id, newAcc)
	if err != nil {
		t.Fatal(err)
	}
	if evo.BaseVersion != 3 {
		t.Fatalf("ETag-derived base version = %d, want 3 (three registrations)", evo.BaseVersion)
	}

	// An If-Match behind the current snapshot is refused up front.
	_, err = c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion-1)
	wantCode(t, err, 412, CodeStaleVersion)

	// The version the evolve handed out commits.
	commit, err := c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Version != evo.BaseVersion+1 {
		t.Fatalf("committed version = %d", commit.Version)
	}

	// Replaying the same commit under the old precondition is stale.
	_, err = c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion)
	wantCode(t, err, 412, CodeStaleVersion)

	// A guarded single-party update behind the current version loses.
	_, err = c.UpdateParty(ctx, id, paperrepro.LogisticsProcess(), v64(evo.BaseVersion))
	wantCode(t, err, 412, CodeStaleVersion)
	if _, err := c.UpdateParty(ctx, id, paperrepro.LogisticsProcess(), v64(commit.Version)); err != nil {
		t.Fatal(err)
	}
}

// TestV2ApplySuggestionRace pins the 409 conflict on the
// apply-suggestion race: when the partner's own process changes after
// the analysis, the suggestion paths are void and the apply must be
// refused with CodeConflict (not 412 — the snapshot the client acts on
// is not stale, the partner is).
func TestV2ApplySuggestionRace(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)

	newAcc := apply(t, paperrepro.AccountingProcess(), paperrepro.CancelChange())
	evo, err := c.Evolve(ctx, id, newAcc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(ctx, evo.Evolution); err != nil {
		t.Fatal(err)
	}

	// The buyer changes independently before applying the suggestion.
	if _, err := c.UpdateParty(ctx, id, paperrepro.BuyerProcess(), nil); err != nil {
		t.Fatal(err)
	}
	_, err = c.Apply(ctx, evo.Evolution, paperrepro.Buyer, nil)
	wantCode(t, err, 409, CodeConflict)
}

// TestV2BatchParties pins the batch-register semantics: one call, one
// commit, one version bump for the whole party set.
func TestV2BatchParties(t *testing.T) {
	c, _ := testClient(t)
	const id = "batch"
	if err := c.CreateChoreography(ctx, id, []string{"L.getStatusLOp"}); err != nil {
		t.Fatal(err)
	}
	batch, err := c.RegisterParties(ctx, id, []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Version != 1 {
		t.Fatalf("batch version = %d, want 1 (one commit)", batch.Version)
	}
	if len(batch.Parties) != 3 {
		t.Fatalf("batch parties = %d", len(batch.Parties))
	}
	rep, err := c.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("batch-registered choreography inconsistent: %+v", rep.Pairs)
	}

	// A second batch guarded by the stale version is refused; the fresh
	// one updates in place.
	_, err = c.RegisterParties(ctx, id, []*bpel.Process{paperrepro.BuyerProcess()}, v64(batch.Version+7))
	wantCode(t, err, 412, CodeStaleVersion)
	batch2, err := c.RegisterParties(ctx, id, []*bpel.Process{paperrepro.BuyerProcess()}, v64(batch.Version))
	if err != nil {
		t.Fatal(err)
	}
	if batch2.Version != batch.Version+1 || batch2.Parties[0].Version != 2 {
		t.Fatalf("update batch = %+v", batch2)
	}
}

// TestV2BatchCheck pins the batch check contract: per-ID outcomes,
// failures inline as envelopes.
func TestV2BatchCheck(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)
	results, err := c.CheckBatch(ctx, []string{id, "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("batch results = %d", len(results))
	}
	if results[0].Report == nil || !results[0].Report.Consistent || results[0].Error != nil {
		t.Fatalf("known choreography result = %+v", results[0])
	}
	if results[1].Report != nil || results[1].Error == nil || results[1].Error.Code != CodeNotFound {
		t.Fatalf("unknown choreography result = %+v", results[1])
	}

	_, err = c.CheckBatch(ctx, nil)
	wantCode(t, err, 400, CodeInvalidArgument)
}

// TestV2Pagination pins cursor pagination on the list endpoint: pages
// respect the limit, chain through nextPageToken without overlap, and
// a malformed token is invalid_argument.
func TestV2Pagination(t *testing.T) {
	c, _ := testClient(t)
	const n = 7
	for i := 0; i < n; i++ {
		if err := c.CreateChoreography(ctx, fmt.Sprintf("chor-%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var all []string
	token := ""
	pages := 0
	for {
		page, next, err := c.ChoreographiesPage(ctx, 3, token)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) > 3 {
			t.Fatalf("page of %d exceeds limit 3", len(page))
		}
		all = append(all, page...)
		pages++
		if next == "" {
			break
		}
		token = next
	}
	if pages != 3 || len(all) != n {
		t.Fatalf("pages = %d, items = %d, want 3 pages of %d total", pages, len(all), n)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("pagination out of order or overlapping at %d: %v", i, all)
		}
	}
	// The iterator variant sees the same population.
	ids, err := c.Choreographies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, all) {
		t.Fatalf("iterator %v != paged %v", ids, all)
	}
	_, _, err = c.ChoreographiesPage(ctx, 3, "%%%not-base64%%%")
	wantCode(t, err, 400, CodeInvalidArgument)
}

// TestV2MultiOpEvolveMatchesSequentialV1 is the acceptance criterion:
// one /v2/ evolve carrying [order_2, tracking-limit] as a single
// change transaction must produce the same classification and
// propagation as the v1 idiom — applying the ops sequentially on the
// client and submitting the final process as one whole-process
// replacement — and commit as one version bump.
func TestV2MultiOpEvolveMatchesSequentialV1(t *testing.T) {
	c, _ := testClient(t)

	ops := []interface {
		Apply(*bpel.Process) (*bpel.Process, error)
	}{
		paperrepro.OrderTwoChange(), paperrepro.TrackingLimitChange(),
	}
	final := paperrepro.AccountingProcess()
	for _, op := range ops {
		next, err := op.Apply(final)
		if err != nil {
			t.Fatal(err)
		}
		final = next
	}

	// Reference analysis: the v1 semantics (whole-process replacement of
	// the sequentially composed result) on its own choreography.
	idRef := "procurement-v1"
	if err := c.CreateChoreography(ctx, idRef, []string{"L.getStatusLOp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterParties(ctx, idRef, []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Evolve(ctx, idRef, final)
	if err != nil {
		t.Fatal(err)
	}

	// The multi-op transaction on an identical choreography.
	id := "procurement-v2"
	if err := c.CreateChoreography(ctx, id, []string{"L.getStatusLOp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterParties(ctx, id, []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Express the same two changes as wire ops: the composed new
	// subtrees replace the receive and the tracking loop.
	pickAfterOrderTwo, err := paperrepro.OrderTwoChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	newOrder, err := pickAfterOrderTwo.Find(bpel.Path{"Sequence:accounting process", "Pick:order formats"})
	if err != nil {
		t.Fatal(err)
	}
	newOrderXML, err := bpel.MarshalActivityXML(newOrder)
	if err != nil {
		t.Fatal(err)
	}
	afterTracking, err := paperrepro.TrackingLimitChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	newTracking, err := afterTracking.Find(bpel.Path{"Sequence:accounting process", "Pick:track once?"})
	if err != nil {
		t.Fatal(err)
	}
	newTrackingXML, err := bpel.MarshalActivityXML(newTracking)
	if err != nil {
		t.Fatal(err)
	}
	evo, err := c.EvolveOps(ctx, id, paperrepro.Accounting, []OpJSON{
		{Kind: "replace", Path: "Sequence:accounting process/Receive:order", XML: string(newOrderXML)},
		{Kind: "replace", Path: "Sequence:accounting process/While:parcel tracking", XML: string(newTrackingXML)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evo.Ops) != 2 {
		t.Fatalf("transaction ops = %v, want 2", evo.Ops)
	}

	// One evolution, identical analysis.
	if evo.PublicChanged != ref.PublicChanged || evo.NeedsPropagation != ref.NeedsPropagation {
		t.Fatalf("multi-op analysis flags differ: %+v vs %+v", evo, ref)
	}
	if !reflect.DeepEqual(evo.Impacts, ref.Impacts) {
		t.Fatalf("multi-op impacts differ from sequential v1:\n%+v\nvs\n%+v", evo.Impacts, ref.Impacts)
	}

	// Committing the transaction bumps the version once.
	commit, err := c.CommitIfMatch(ctx, evo.Evolution, evo.BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Version != evo.BaseVersion+1 {
		t.Fatalf("transaction commit version = %d, want %d", commit.Version, evo.BaseVersion+1)
	}
}
