package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/bpel"
)

// Client is a thin typed client for the choreod HTTP API. The zero
// value is unusable; use NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at base (e.g.
// "http://localhost:8080"). httpClient may be nil for
// http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// seg escapes one path segment (choreography IDs, party names and
// evolution IDs are caller-chosen strings).
func seg(s string) string { return url.PathEscape(s) }

// APIError is a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr ErrorResponse
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateChoreography creates an empty choreography; sync lists
// "party.op" synchronous operations.
func (c *Client) CreateChoreography(id string, sync []string) error {
	return c.do("POST", "/v1/choreographies", CreateRequest{ID: id, Sync: sync}, nil)
}

// Choreographies lists the stored choreography IDs.
func (c *Client) Choreographies() ([]string, error) {
	var out struct {
		Choreographies []string `json:"choreographies"`
	}
	if err := c.do("GET", "/v1/choreographies", nil, &out); err != nil {
		return nil, err
	}
	return out.Choreographies, nil
}

// Choreography fetches one choreography summary.
func (c *Client) Choreography(id string) (*ChoreographyInfo, error) {
	var out ChoreographyInfo
	if err := c.do("GET", "/v1/choreographies/"+seg(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterParty registers a private process (serialized to XML on the
// wire).
func (c *Client) RegisterParty(id string, p *bpel.Process) (*PartyInfo, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	return c.RegisterPartyXML(id, string(data))
}

// RegisterPartyXML registers a private process given as BPEL XML.
func (c *Client) RegisterPartyXML(id, xml string) (*PartyInfo, error) {
	var out PartyInfo
	if err := c.do("POST", "/v1/choreographies/"+seg(id)+"/parties", PartyRequest{XML: xml}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Party fetches one party (including its private process XML).
func (c *Client) Party(id, party string) (*PartyInfo, error) {
	var out PartyInfo
	if err := c.do("GET", "/v1/choreographies/"+seg(id)+"/parties/"+seg(party), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UpdateParty replaces a party's private process outright.
func (c *Client) UpdateParty(id string, p *bpel.Process) (*PartyInfo, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	var out PartyInfo
	err = c.do("PUT", "/v1/choreographies/"+seg(id)+"/parties/"+seg(p.Owner), PartyRequest{XML: string(data)}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Check runs the pairwise consistency check.
func (c *Client) Check(id string) (*CheckResponse, error) {
	var out CheckResponse
	if err := c.do("POST", "/v1/choreographies/"+seg(id)+"/check", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Evolve submits a party's proposed new private process for analysis.
func (c *Client) Evolve(id string, p *bpel.Process) (*EvolveResponse, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	var out EvolveResponse
	err = c.do("POST", "/v1/choreographies/"+seg(id)+"/evolve",
		EvolveRequest{Party: p.Owner, XML: string(data)}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Evolution re-fetches a pending evolution analysis.
func (c *Client) Evolution(evoID string) (*EvolveResponse, error) {
	var out EvolveResponse
	if err := c.do("GET", "/v1/evolutions/"+seg(evoID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Commit publishes a pending evolution (409 on version conflict).
func (c *Client) Commit(evoID string) (*CommitResponse, error) {
	var out CommitResponse
	if err := c.do("POST", "/v1/evolutions/"+seg(evoID)+"/commit", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Apply runs suggestions from a pending evolution on a partner; empty
// indices mean every executable suggestion.
func (c *Client) Apply(evoID, partner string, suggestions []int) (*CommitResponse, error) {
	var out CommitResponse
	err := c.do("POST", "/v1/evolutions/"+seg(evoID)+"/apply",
		ApplyRequest{Partner: partner, Suggestions: suggestions}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SampleInstances records n seeded random-walk instances of a party.
func (c *Client) SampleInstances(id, party string, seed int64, n, maxLen int) (int, error) {
	var out struct {
		Added int `json:"added"`
	}
	err := c.do("POST", "/v1/choreographies/"+seg(id)+"/parties/"+seg(party)+"/instances",
		InstancesRequest{Sample: &SampleJSON{Seed: seed, N: n, MaxLen: maxLen}}, &out)
	return out.Added, err
}

// AddInstances records explicit instance traces.
func (c *Client) AddInstances(id, party string, insts []InstanceJSON) (int, error) {
	var out struct {
		Added int `json:"added"`
	}
	err := c.do("POST", "/v1/choreographies/"+seg(id)+"/parties/"+seg(party)+"/instances",
		InstancesRequest{Instances: insts}, &out)
	return out.Added, err
}

// Migrate classifies a party's recorded instances; evoID may be empty
// (classify against the current schema) or name a pending evolution
// (what-if before committing).
func (c *Client) Migrate(id, party, evoID string) (*MigrateResponse, error) {
	var out MigrateResponse
	err := c.do("POST", "/v1/choreographies/"+seg(id)+"/parties/"+seg(party)+"/migrate",
		MigrateRequest{Evolution: evoID}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Publish publishes a party's public process for discovery; a
// non-empty forParty publishes the bilateral view τ_forParty(party)
// instead — the behavior the service exposes to that prospective
// partner.
func (c *Client) Publish(name, choreography, party, forParty string) error {
	return c.do("POST", "/v1/discovery/publish",
		PublishRequest{Name: name, Choreography: choreography, Party: party, For: forParty}, nil)
}

// Match queries discovery with a party's public process; matcher is
// "consistent" (default) or "overlap".
func (c *Client) Match(choreography, party, matcher string) ([]string, error) {
	var out MatchResponse
	err := c.do("POST", "/v1/discovery/match",
		MatchRequest{Choreography: choreography, Party: party, Matcher: matcher}, &out)
	if err != nil {
		return nil, err
	}
	return out.Matches, nil
}

// View fetches the bilateral view τ_forParty(of) rendered as text.
func (c *Client) View(id, of, forParty string) (string, error) {
	var out struct {
		View string `json:"view"`
	}
	err := c.do("GET", "/v1/choreographies/"+seg(id)+"/parties/"+seg(of)+"/view?for="+url.QueryEscape(forParty), nil, &out)
	return out.View, err
}

// Stats fetches server counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do("GET", "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
