package server

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/bpel"
)

// Client is a typed client for the choreod /v2/ HTTP API. Every method
// takes a leading context governing the request; errors carry the
// machine-readable /v2/ code (see APIError and ErrIs). The zero value
// is unusable; use NewClient.
//
// Retries are off by default; SetRetry arms the retry/backoff policy.
// Commit and EvolveOps always carry an auto-generated Idempotency-Key,
// so their retries apply exactly once server-side.
type Client struct {
	base  string
	http  *http.Client
	retry Retry
}

// Retry is the client's retry/backoff contract (docs/resilience.md):
// exponential backoff with jitter, honoring the server's retryAfter
// hint on backpressure, capped in attempts and total elapsed time.
// Only calls that are safe to re-send retry: reads, ingest batches
// (rejected as a unit — nothing applied), and mutations carrying an
// Idempotency-Key. An unkeyed POST that fails mid-flight is never
// retried: the client cannot know whether it applied.
type Retry struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retries (the zero policy is "no retries").
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); attempt n
	// waits BaseDelay·2^(n-1), capped at MaxDelay (default 2s). The
	// server's retryAfter hint overrides a shorter computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxElapsed caps the total time spent across attempts and
	// backoffs; 0 means no cap beyond the context deadline.
	MaxElapsed time.Duration
	// Jitter randomizes each delay downward by up to this fraction
	// (0..1, default 0.2) so synchronized clients do not stampede.
	Jitter float64
}

// SetRetry arms (or, with a zero policy, disarms) the retry policy for
// every subsequent call on this client. Not safe to call concurrently
// with in-flight requests.
func (c *Client) SetRetry(r Retry) { c.retry = r }

// backoff computes the delay before the given retry (attempt counts
// the tries already made, so the first retry is attempt 1).
func (p Retry) backoff(attempt int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	if hint > d {
		d = hint
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter < 0 || jitter > 1 {
		jitter = 0.2
	}
	return d - time.Duration(jitter*rand.Float64()*float64(d))
}

// retryDecision classifies an error of one attempt: whether re-sending
// is safe and useful, and any server-provided backoff hint.
func retryDecision(err error, idempotent bool) (retryable bool, hint time.Duration) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch {
		case apiErr.Code == CodeResourceExhausted:
			// Backpressure rejects the batch as a unit — nothing was
			// applied, so even an unkeyed mutation is safe to re-send.
			hint, _ := RetryAfter(err)
			return true, hint
		case apiErr.Status == http.StatusServiceUnavailable:
			// Degraded store, shutdown, or a cancelled upstream: the
			// request may have applied, so only idempotent calls retry.
			return idempotent, 0
		}
		return false, 0
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	// Transport error — connection refused, reset mid-flight. The
	// request may have reached the server, so same rule as 503.
	return idempotent, 0
}

// newIdempotencyKey mints a unique key for one logical mutation; every
// retry of that mutation re-sends the same key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// The fallback only needs uniqueness within the server's dedup
		// window, not unpredictability.
		return fmt.Sprintf("key-%d-%d", time.Now().UnixNano(), rand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// maxResponseBytes caps how much of a response body the client reads —
// a misbehaving server cannot make the client buffer unbounded data.
// A response that hits the cap fails with ErrResponseTooLarge instead
// of surfacing as an opaque JSON decode error on the truncated body.
const maxResponseBytes = 8 << 20

// ErrResponseTooLarge reports a response body that exceeded the
// client's maxResponseBytes cap. The decode failure it would
// otherwise masquerade as is attached as context; test with
// errors.Is.
var ErrResponseTooLarge = errors.New("server: response exceeds client limit")

// NewClient returns a client for the service at base (e.g.
// "http://localhost:8080"). httpClient may be nil for
// http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// seg escapes one path segment (choreography IDs, party names and
// evolution IDs are caller-chosen strings).
func seg(s string) string { return url.PathEscape(s) }

// APIError is a non-2xx response, carrying the /v2/ error envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
	Details map[string]any
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: HTTP %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// ErrIs reports whether err is an APIError with the given /v2/ code
// (one of the Code* constants).
func ErrIs(err error, code string) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Code == code
}

// do runs one request under the client's retry policy; see doKeyed.
func (c *Client) do(ctx context.Context, method, path string, ifMatch *uint64, in, out any) (version uint64, err error) {
	return c.doKeyed(ctx, method, path, ifMatch, "", in, out)
}

// doKeyed runs one logical request, retrying per the client's Retry
// policy when the call is idempotent: a safe method (GET/PUT/DELETE),
// or any method carrying an idempotency key — every retry re-sends the
// same key, so the server applies the mutation exactly once. A non-nil
// ifMatch sends the If-Match precondition (version 0 is a valid
// precondition — a freshly created choreography). The returned version
// carries the response ETag (0 when absent).
func (c *Client) doKeyed(ctx context.Context, method, path string, ifMatch *uint64, key string, in, out any) (version uint64, err error) {
	var data []byte
	if in != nil {
		if data, err = json.Marshal(in); err != nil {
			return 0, err
		}
	}
	idempotent := key != "" || method == http.MethodGet || method == http.MethodPut || method == http.MethodDelete
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var start time.Time
	if c.retry.MaxElapsed > 0 {
		start = time.Now()
	}
	for attempt := 1; ; attempt++ {
		version, err = c.roundTrip(ctx, method, path, ifMatch, key, data, in != nil, out)
		if err == nil || attempt >= attempts {
			return version, err
		}
		retryable, hint := retryDecision(err, idempotent)
		if !retryable {
			return version, err
		}
		delay := c.retry.backoff(attempt, hint)
		if c.retry.MaxElapsed > 0 && time.Since(start)+delay > c.retry.MaxElapsed {
			return version, err
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return version, ctx.Err()
		case <-timer.C:
		}
	}
}

// roundTrip runs one attempt. The response body is always drained and
// closed so keep-alive connections return to the pool, and reads are
// capped at maxResponseBytes.
func (c *Client) roundTrip(ctx context.Context, method, path string, ifMatch *uint64, key string, data []byte, hasBody bool, out any) (version uint64, err error) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifMatch != nil {
		req.Header.Set("If-Match", etagOf(*ifMatch))
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		// Drain whatever the decoder left so the connection is reusable,
		// but never more than the response cap.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
	}()
	// One extra byte past the cap distinguishes "body is exactly the
	// cap" from "body was truncated at the cap": only a decode that
	// consumed the sentinel byte can have been cut short.
	limited := &io.LimitedReader{R: resp.Body, N: maxResponseBytes + 1}
	if etag := strings.Trim(resp.Header.Get("ETag"), `"`); etag != "" {
		version, _ = strconv.ParseUint(etag, 10, 64)
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var env ErrorEnvelope
		if derr := json.NewDecoder(limited).Decode(&env); derr == nil && env.Message != "" {
			apiErr.Code, apiErr.Message, apiErr.Details = env.Code, env.Message, env.Details
		}
		return version, apiErr
	}
	if out == nil {
		return version, nil
	}
	if derr := json.NewDecoder(limited).Decode(out); derr != nil {
		if limited.N <= 0 {
			return version, fmt.Errorf("%w (%d bytes): %v", ErrResponseTooLarge, maxResponseBytes, derr)
		}
		return version, derr
	}
	return version, nil
}

// Checkpoint compacts the server's journal online
// (POST /v2/admin/checkpoint): the store state is snapshotted and the
// write-ahead log truncated. It fails with CodeInvalidArgument
// against a server running on an in-memory store.
func (c *Client) Checkpoint(ctx context.Context) (*CheckpointResponse, error) {
	var out CheckpointResponse
	if _, err := c.do(ctx, "POST", "/v2/admin/checkpoint", nil, struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- choreographies ----

// CreateChoreography creates an empty choreography; sync lists
// "party.op" synchronous operations.
func (c *Client) CreateChoreography(ctx context.Context, id string, sync []string) error {
	_, err := c.do(ctx, "POST", "/v2/choreographies", nil, CreateRequest{ID: id, Sync: sync}, nil)
	return err
}

// DeleteChoreography removes a choreography.
func (c *Client) DeleteChoreography(ctx context.Context, id string) error {
	_, err := c.do(ctx, "DELETE", "/v2/choreographies/"+seg(id), nil, nil, nil)
	return err
}

// ChoreographiesPage fetches one page of choreography IDs; pageToken
// "" starts from the beginning, the returned token is "" on the last
// page.
func (c *Client) ChoreographiesPage(ctx context.Context, limit int, pageToken string) ([]string, string, error) {
	var out ListResponse
	path := "/v2/choreographies?" + pageValues(limit, pageToken)
	if _, err := c.do(ctx, "GET", path, nil, nil, &out); err != nil {
		return nil, "", err
	}
	return out.Choreographies, out.NextPageToken, nil
}

// Choreographies iterates the cursor until exhaustion and returns
// every stored choreography ID.
func (c *Client) Choreographies(ctx context.Context) ([]string, error) {
	var all []string
	token := ""
	for {
		page, next, err := c.ChoreographiesPage(ctx, 0, token)
		if err != nil {
			return nil, err
		}
		all = append(all, page...)
		if next == "" {
			return all, nil
		}
		token = next
	}
}

// Choreography fetches one choreography summary.
func (c *Client) Choreography(ctx context.Context, id string) (*ChoreographyInfo, error) {
	var out ChoreographyInfo
	if _, err := c.do(ctx, "GET", "/v2/choreographies/"+seg(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- parties ----

// RegisterParty registers a private process (serialized to XML on the
// wire).
func (c *Client) RegisterParty(ctx context.Context, id string, p *bpel.Process) (*PartyInfo, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	return c.RegisterPartyXML(ctx, id, string(data))
}

// RegisterPartyXML registers a private process given as BPEL XML.
func (c *Client) RegisterPartyXML(ctx context.Context, id, xml string) (*PartyInfo, error) {
	var out PartyInfo
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/parties", nil, PartyRequest{XML: xml}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterParties registers and/or updates several parties as one
// change transaction (one commit, one version bump). A non-nil
// ifMatch pins the batch to that snapshot version: the call fails
// with CodeStaleVersion when the choreography moved past it.
func (c *Client) RegisterParties(ctx context.Context, id string, procs []*bpel.Process, ifMatch *uint64) (*BatchPartiesResponse, error) {
	req := BatchPartiesRequest{Parties: make([]PartyRequest, 0, len(procs))}
	for _, p := range procs {
		data, err := bpel.MarshalXML(p)
		if err != nil {
			return nil, err
		}
		req.Parties = append(req.Parties, PartyRequest{XML: string(data)})
	}
	var out BatchPartiesResponse
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/parties:batch", ifMatch, req, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Party fetches one party (including its private process XML).
func (c *Client) Party(ctx context.Context, id, party string) (*PartyInfo, error) {
	var out PartyInfo
	_, err := c.do(ctx, "GET", "/v2/choreographies/"+seg(id)+"/parties/"+seg(party), nil, nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// UpdateParty replaces a party's private process outright. A non-nil
// ifMatch sends If-Match (CodeStaleVersion on a lost race).
func (c *Client) UpdateParty(ctx context.Context, id string, p *bpel.Process, ifMatch *uint64) (*PartyInfo, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	var out PartyInfo
	_, err = c.do(ctx, "PUT", "/v2/choreographies/"+seg(id)+"/parties/"+seg(p.Owner), ifMatch,
		PartyRequest{XML: string(data)}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- consistency ----

// Check runs the pairwise consistency check.
func (c *Client) Check(ctx context.Context, id string) (*CheckResponse, error) {
	var out CheckResponse
	if _, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/check", nil, struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CheckBatch checks several choreographies in one request; per-ID
// failures come back inside the results, not as a call error.
func (c *Client) CheckBatch(ctx context.Context, ids []string) ([]BatchCheckResult, error) {
	var out BatchCheckResponse
	if _, err := c.do(ctx, "POST", "/v2/check:batch", nil, BatchCheckRequest{IDs: ids}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// ---- evolution ----

// Evolve submits a party's proposed new private process for analysis —
// the single-op convenience over EvolveOps (one whole-process
// replacement).
func (c *Client) Evolve(ctx context.Context, id string, p *bpel.Process) (*EvolveOpsResponse, error) {
	data, err := bpel.MarshalXML(p)
	if err != nil {
		return nil, err
	}
	return c.EvolveOps(ctx, id, p.Owner, []OpJSON{{Kind: "replaceProcess", XML: string(data)}})
}

// EvolveOps submits a multi-op change transaction for analysis: the
// ops are applied in order and the combined delta is classified once.
// The returned BaseVersion (from the response ETag) pins the analysis
// for CommitIfMatch. The request carries an auto-generated
// Idempotency-Key, so under an armed Retry policy a resubmission
// answers the already-minted analysis instead of a duplicate.
func (c *Client) EvolveOps(ctx context.Context, id, party string, ops []OpJSON) (*EvolveOpsResponse, error) {
	var out EvolveOpsResponse
	version, err := c.doKeyed(ctx, "POST", "/v2/choreographies/"+seg(id)+"/evolve", nil, newIdempotencyKey(),
		EvolveOpsRequest{Party: party, Ops: ops}, &out)
	if err != nil {
		return nil, err
	}
	out.BaseVersion = version
	return &out, nil
}

// Evolution re-fetches a pending evolution analysis.
func (c *Client) Evolution(ctx context.Context, evoID string) (*EvolveOpsResponse, error) {
	var out EvolveOpsResponse
	version, err := c.do(ctx, "GET", "/v2/evolutions/"+seg(evoID), nil, nil, &out)
	if err != nil {
		return nil, err
	}
	out.BaseVersion = version
	return &out, nil
}

// Commit publishes a pending evolution (CodeStaleVersion / HTTP 412
// when the choreography advanced past the analysis).
func (c *Client) Commit(ctx context.Context, evoID string) (*CommitResponse, error) {
	return c.commit(ctx, evoID, nil)
}

// CommitIfMatch publishes a pending evolution under an explicit
// If-Match precondition on the current snapshot version — typically
// the BaseVersion returned by EvolveOps. The header is always sent,
// version 0 included.
func (c *Client) CommitIfMatch(ctx context.Context, evoID string, baseVersion uint64) (*CommitResponse, error) {
	return c.commit(ctx, evoID, &baseVersion)
}

// commit posts the evolution with an auto-generated Idempotency-Key:
// the server journals (key → outcome) with the commit, so a retried
// commit — even one whose first response was lost on the wire —
// applies exactly once and answers the original version.
func (c *Client) commit(ctx context.Context, evoID string, ifMatch *uint64) (*CommitResponse, error) {
	var out CommitResponse
	_, err := c.doKeyed(ctx, "POST", "/v2/evolutions/"+seg(evoID)+"/commit", ifMatch, newIdempotencyKey(), struct{}{}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Apply runs suggestions from a pending evolution on a partner; empty
// indices mean every executable suggestion. A partner that changed
// since the analysis answers CodeConflict / HTTP 409.
func (c *Client) Apply(ctx context.Context, evoID, partner string, suggestions []int) (*CommitResponse, error) {
	var out CommitResponse
	_, err := c.do(ctx, "POST", "/v2/evolutions/"+seg(evoID)+"/apply", nil,
		ApplyRequest{Partner: partner, Suggestions: suggestions}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- instances & migration ----

// SampleInstances records n seeded random-walk instances of a party.
func (c *Client) SampleInstances(ctx context.Context, id, party string, seed int64, n, maxLen int) (int, error) {
	var out struct {
		Added int `json:"added"`
	}
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/parties/"+seg(party)+"/instances", nil,
		InstancesRequest{Sample: &SampleJSON{Seed: seed, N: n, MaxLen: maxLen}}, &out)
	return out.Added, err
}

// AddInstances records explicit instance traces.
func (c *Client) AddInstances(ctx context.Context, id, party string, insts []InstanceJSON) (int, error) {
	var out struct {
		Added int `json:"added"`
	}
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/parties/"+seg(party)+"/instances", nil,
		InstancesRequest{Instances: insts}, &out)
	return out.Added, err
}

// IngestEvents streams one batch of observed instance events
// (POST /v2/choreographies/{id}/instances:events). The batch is
// durably journaled and applied before the call returns. A full
// ingestion lane surfaces as an APIError with CodeResourceExhausted;
// resubmit the identical batch after the RetryAfter backoff.
func (c *Client) IngestEvents(ctx context.Context, id string, events []IngestEventJSON) (int, error) {
	var out IngestResponse
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/instances:events", nil,
		IngestRequest{Events: events}, &out)
	if err != nil {
		return 0, err
	}
	return out.Ingested, nil
}

// RetryAfter extracts the server's backoff hint from a
// resource_exhausted (backpressure) API error. ok is false when err is
// no such error or carries no hint.
func RetryAfter(err error) (backoff time.Duration, ok bool) {
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeResourceExhausted {
		return 0, false
	}
	secs, ok := apiErr.Details["retryAfter"].(float64)
	if !ok || secs < 0 {
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// Migrate classifies a party's recorded instances; evoID may be empty
// (classify against the current schema) or name a pending evolution
// (what-if before committing).
func (c *Client) Migrate(ctx context.Context, id, party, evoID string) (*MigrateResponse, error) {
	var out MigrateResponse
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/parties/"+seg(party)+"/migrate", nil,
		MigrateRequest{Evolution: evoID}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- bulk migration ----

// StartMigration launches (or resumes) the bulk migration of a
// choreography's tracked instances to its current committed snapshot,
// sweeping with the given worker-pool size (0 picks the server
// default). The call is idempotent per (choreography, version) and
// returns immediately with the job's current state; poll with
// MigrationJob or block with WaitMigration.
func (c *Client) StartMigration(ctx context.Context, id string, workers int) (*MigrationJobJSON, error) {
	var out MigrationJobJSON
	_, err := c.do(ctx, "POST", "/v2/choreographies/"+seg(id)+"/migrations", nil,
		MigrationStartRequest{Workers: workers}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// MigrationJob fetches one job's progress plus one page of its
// stranded-instance report (limit 0 = server default page size,
// pageToken "" = from the start).
func (c *Client) MigrationJob(ctx context.Context, id, job string, limit int, pageToken string) (*MigrationJobJSON, error) {
	var out MigrationJobJSON
	path := "/v2/choreographies/" + seg(id) + "/migrations/" + seg(job) + "?" + pageValues(limit, pageToken)
	if _, err := c.do(ctx, "GET", path, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MigrationJobs lists a choreography's migration jobs (without their
// stranded reports), iterating the cursor until exhaustion.
func (c *Client) MigrationJobs(ctx context.Context, id string) ([]MigrationJobJSON, error) {
	var all []MigrationJobJSON
	token := ""
	for {
		var out MigrationListResponse
		path := "/v2/choreographies/" + seg(id) + "/migrations?" + pageValues(0, token)
		if _, err := c.do(ctx, "GET", path, nil, nil, &out); err != nil {
			return nil, err
		}
		all = append(all, out.Jobs...)
		if out.NextPageToken == "" {
			return all, nil
		}
		token = out.NextPageToken
	}
}

// MigrationStranded iterates a job's full stranded-instance report.
func (c *Client) MigrationStranded(ctx context.Context, id, job string) ([]StrandedJSON, error) {
	var all []StrandedJSON
	token := ""
	for {
		page, err := c.MigrationJob(ctx, id, job, 0, token)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Stranded...)
		if page.NextPageToken == "" {
			return all, nil
		}
		token = page.NextPageToken
	}
}

// CancelMigration stops a running sweep; committed shards keep their
// results and StartMigration resumes the rest.
func (c *Client) CancelMigration(ctx context.Context, id, job string) (*MigrationJobJSON, error) {
	var out MigrationJobJSON
	_, err := c.do(ctx, "DELETE", "/v2/choreographies/"+seg(id)+"/migrations/"+seg(job), nil, nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitMigration polls a job every poll interval (<= 0 means 100ms)
// until it leaves the running state or ctx is done, and returns its
// final progress (first stranded page included). Progress polls ask
// for a single stranded entry so waiting on a huge sweep does not
// drag the report along; the final fetch takes a full page.
func (c *Client) WaitMigration(ctx context.Context, id, job string, poll time.Duration) (*MigrationJobJSON, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		out, err := c.MigrationJob(ctx, id, job, 1, "")
		if err != nil {
			return nil, err
		}
		if out.Status != "running" {
			return c.MigrationJob(ctx, id, job, 0, "")
		}
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-t.C:
		}
	}
}

// ---- discovery ----

// Publish publishes a party's public process for discovery; a
// non-empty forParty publishes the bilateral view τ_forParty(party)
// instead — the behavior the service exposes to that prospective
// partner.
func (c *Client) Publish(ctx context.Context, name, choreography, party, forParty string) error {
	_, err := c.do(ctx, "POST", "/v2/discovery/publish", nil,
		PublishRequest{Name: name, Choreography: choreography, Party: party, For: forParty}, nil)
	return err
}

// MatchPage fetches one page of discovery matches.
func (c *Client) MatchPage(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var out MatchResponse
	if _, err := c.do(ctx, "POST", "/v2/discovery/match", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Match queries discovery with a party's public process, iterating the
// cursor until exhaustion; matcher is "consistent" (default) or
// "overlap".
func (c *Client) Match(ctx context.Context, choreography, party, matcher string) ([]string, error) {
	req := MatchRequest{Choreography: choreography, Party: party, Matcher: matcher}
	var all []string
	for {
		page, err := c.MatchPage(ctx, req)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Matches...)
		if page.NextPageToken == "" {
			return all, nil
		}
		req.PageToken = page.NextPageToken
	}
}

// ServicesPage fetches one page of published discovery service names.
func (c *Client) ServicesPage(ctx context.Context, limit int, pageToken string) ([]string, string, error) {
	var out ServicesResponse
	path := "/v2/discovery/services?" + pageValues(limit, pageToken)
	if _, err := c.do(ctx, "GET", path, nil, nil, &out); err != nil {
		return nil, "", err
	}
	return out.Services, out.NextPageToken, nil
}

// ---- misc ----

// View fetches the bilateral view τ_forParty(of) rendered as text.
func (c *Client) View(ctx context.Context, id, of, forParty string) (string, error) {
	var out struct {
		View string `json:"view"`
	}
	_, err := c.do(ctx, "GET",
		"/v2/choreographies/"+seg(id)+"/parties/"+seg(of)+"/view?for="+url.QueryEscape(forParty), nil, nil, &out)
	return out.View, err
}

// Stats fetches server counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if _, err := c.do(ctx, "GET", "/v2/stats", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func pageValues(limit int, pageToken string) string {
	v := url.Values{}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if pageToken != "" {
		v.Set("page_token", pageToken)
	}
	return v.Encode()
}
