package server

import (
	"fmt"
	"net/http"

	"repro/internal/change"
	"repro/internal/store"
)

// The /v1/ compatibility shim. It preserves the original choreod wire
// contract — one whole-process operation per evolve call, the base
// version as a body field, the {error} envelope — while delegating to
// the same core logic the /v2/ handlers use. New clients should talk
// /v2/; this surface exists so deployed v1 clients keep working.

func (s *Server) routesV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/stats", s.v1Stats)
	mux.HandleFunc("POST /v1/choreographies", s.v1Create)
	mux.HandleFunc("GET /v1/choreographies", s.v1List)
	mux.HandleFunc("GET /v1/choreographies/{id}", s.v1Get)
	mux.HandleFunc("DELETE /v1/choreographies/{id}", s.v1Delete)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties", s.v1RegisterParty)
	mux.HandleFunc("GET /v1/choreographies/{id}/parties/{party}", s.v1GetParty)
	mux.HandleFunc("PUT /v1/choreographies/{id}/parties/{party}", s.v1UpdateParty)
	mux.HandleFunc("GET /v1/choreographies/{id}/parties/{party}/view", s.v1View)
	mux.HandleFunc("POST /v1/choreographies/{id}/check", s.v1Check)
	mux.HandleFunc("POST /v1/choreographies/{id}/evolve", s.v1Evolve)
	mux.HandleFunc("GET /v1/evolutions/{evo}", s.v1GetEvolution)
	mux.HandleFunc("POST /v1/evolutions/{evo}/commit", s.v1Commit)
	mux.HandleFunc("POST /v1/evolutions/{evo}/apply", s.v1Apply)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties/{party}/instances", s.v1Instances)
	mux.HandleFunc("POST /v1/choreographies/{id}/parties/{party}/migrate", s.v1Migrate)
	mux.HandleFunc("POST /v1/discovery/publish", s.v1Publish)
	mux.HandleFunc("POST /v1/discovery/match", s.v1Match)
}

// evolveResponseV1 renders an analysis in the v1 shape (base version
// in the body).
func evolveResponseV1(id string, evo *store.Evolution) EvolveResponse {
	return EvolveResponse{
		Evolution:        id,
		Choreography:     evo.Choreography,
		Party:            evo.Party,
		BaseVersion:      evo.BaseVersion,
		PublicChanged:    evo.PublicChanged,
		NeedsPropagation: evo.NeedsPropagation(),
		Impacts:          impactsJSON(evo),
	}
}

func (s *Server) v1Stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

func (s *Server) v1Create(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	if req.ID == "" {
		writeErrorV1(w, badRequest("missing choreography id"))
		return
	}
	if err := s.store.Create(r.Context(), req.ID, req.Sync); err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) v1List(w http.ResponseWriter, r *http.Request) {
	ids, err := s.sortedIDs(r.Context())
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"choreographies": ids})
}

func (s *Server) v1Get(w http.ResponseWriter, r *http.Request) {
	info, err := s.choreographyInfo(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v1Delete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) v1RegisterParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	snap, err := s.store.RegisterParty(r.Context(), r.PathValue("id"), p)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) v1GetParty(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	ps, ok := snap.Party(r.PathValue("party"))
	if !ok {
		writeErrorV1(w, fmt.Errorf("%w: party %q", store.ErrNotFound, r.PathValue("party")))
		return
	}
	info, err := partyInfo(ps, true)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v1UpdateParty(w http.ResponseWriter, r *http.Request) {
	var req PartyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	if p.Owner != r.PathValue("party") {
		writeErrorV1(w, badRequest("process owner %q does not match party %q", p.Owner, r.PathValue("party")))
		return
	}
	snap, err := s.store.UpdateParty(r.Context(), r.PathValue("id"), p, nil)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	ps, _ := snap.Party(p.Owner)
	info, err := partyInfo(ps, false)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v1View(w http.ResponseWriter, r *http.Request) {
	forParty := r.URL.Query().Get("for")
	if forParty == "" {
		writeErrorV1(w, badRequest("missing ?for=party"))
		return
	}
	v, err := s.store.View(r.Context(), r.PathValue("id"), r.PathValue("party"), forParty)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	body := v.DebugString()
	if r.URL.Query().Get("format") == "dot" {
		body = v.DOT()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"of": r.PathValue("party"), "for": forParty,
		"states": v.NumStates(), "view": body,
	})
}

func (s *Server) v1Check(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Check(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, checkResponse(rep))
}

func (s *Server) v1Evolve(w http.ResponseWriter, r *http.Request) {
	var req EvolveRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	if req.Party == "" {
		writeErrorV1(w, badRequest("missing party"))
		return
	}
	p, err := parseProcess(req.XML)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	if p.Owner != req.Party {
		writeErrorV1(w, badRequest("process owner %q does not match party %q", p.Owner, req.Party))
		return
	}
	op := change.Replace{Path: nil, New: p.Body}
	evo, err := s.store.Evolve(r.Context(), r.PathValue("id"), req.Party, op)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evolveResponseV1(s.registerEvolution(evo, ""), evo))
}

func (s *Server) v1GetEvolution(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("evo")
	evo, err := s.evolution(id)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evolveResponseV1(id, evo))
}

func (s *Server) v1Commit(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	snap, err := s.store.CommitEvolution(r.Context(), evo)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: snap.ID, Version: snap.Version})
}

func (s *Server) v1Apply(w http.ResponseWriter, r *http.Request) {
	evo, err := s.evolution(r.PathValue("evo"))
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	var req ApplyRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	snap, err := s.applyOps(r.Context(), evo, req)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CommitResponse{Choreography: snap.ID, Version: snap.Version})
}

func (s *Server) v1Instances(w http.ResponseWriter, r *http.Request) {
	var req InstancesRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	added, err := s.addInstances(r.Context(), r.PathValue("id"), r.PathValue("party"), req)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"added": added})
}

func (s *Server) v1Migrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	rep, err := s.migrate(r.Context(), r.PathValue("id"), r.PathValue("party"), req.Evolution)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) v1Publish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	name, err := s.publish(r.Context(), req)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

func (s *Server) v1Match(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if err := decode(r, &req); err != nil {
		writeErrorV1(w, err)
		return
	}
	matcher, names, err := s.match(r.Context(), req)
	if err != nil {
		writeErrorV1(w, err)
		return
	}
	out := MatchResponse{Matcher: matcher, Matches: []string{}}
	out.Matches = append(out.Matches, names...)
	writeJSON(w, http.StatusOK, out)
}
