package server

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/paperrepro"
	"repro/internal/store"
)

// TestIngestEventsEndToEnd drives the streaming path through the wire:
// events land, stats count them, a schema commit is followed online by
// the next event.
func TestIngestEventsEndToEnd(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)

	n, err := c.IngestEvents(ctx, id, []IngestEventJSON{
		{Party: paperrepro.Buyer, Instance: "conv-1", Label: "B#A#orderOp"},
		{Party: paperrepro.Buyer, Instance: "conv-2", Label: "B#A#orderOp"},
		{Party: paperrepro.Buyer, Instance: "conv-2", Label: "B#Z#bogusOp"}, // deviates
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ingested %d, want 3", n)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsIngested != 3 || st.TrackedInstances != 2 || st.InstancesByChoreography[id] != 2 {
		t.Fatalf("stats = {ingested %d, tracked %d, byChor %v}, want {3, 2, map[%s:2]}",
			st.EventsIngested, st.TrackedInstances, st.InstancesByChoreography, id)
	}

	// Commit a schema change; the compliant instance's next event
	// migrates it online.
	acc := apply(t, paperrepro.AccountingProcess(), paperrepro.TrackingLimitChange())
	evo, err := c.Evolve(ctx, id, acc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(ctx, evo.Evolution); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestEvents(ctx, id, []IngestEventJSON{
		{Party: paperrepro.Buyer, Instance: "conv-1", Label: "A#B#deliveryOp"},
	}); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if st.OnlineMigrations != 1 {
		t.Fatalf("onlineMigrations = %d, want 1", st.OnlineMigrations)
	}
}

// TestIngestEventsValidation pins the wire-level rejections: empty and
// oversize batches, malformed labels, unknown choreographies.
func TestIngestEventsValidation(t *testing.T) {
	c, _ := testClient(t)
	id := paperSetup(t, c)

	if _, err := c.IngestEvents(ctx, id, nil); !ErrIs(err, CodeInvalidArgument) {
		t.Fatalf("empty batch: %v, want %s", err, CodeInvalidArgument)
	}
	huge := make([]IngestEventJSON, maxIngestBatch+1)
	for i := range huge {
		huge[i] = IngestEventJSON{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"}
	}
	if _, err := c.IngestEvents(ctx, id, huge); !ErrIs(err, CodeInvalidArgument) {
		t.Fatalf("oversize batch: %v, want %s", err, CodeInvalidArgument)
	}
	bad := []IngestEventJSON{{Party: paperrepro.Buyer, Instance: "i", Label: "not-a-label"}}
	if _, err := c.IngestEvents(ctx, id, bad); !ErrIs(err, CodeInvalidArgument) {
		t.Fatalf("malformed label: %v, want %s", err, CodeInvalidArgument)
	}
	ok := []IngestEventJSON{{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"}}
	if _, err := c.IngestEvents(ctx, "ghost", ok); !ErrIs(err, CodeNotFound) {
		t.Fatalf("unknown choreography: %v, want %s", err, CodeNotFound)
	}
}

// TestIngestEventsBackpressure pins the 429 contract end to end: a
// batch over a lane's queue bound answers resource_exhausted with a
// positive retryAfter detail the client helper can parse.
func TestIngestEventsBackpressure(t *testing.T) {
	srv := New(store.New(store.WithShards(2), store.WithIngestWorkers(1), store.WithIngestQueueCap(1)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	id := paperSetup(t, c)

	// Two events on one instance share a lane; the lane holds one.
	batch := []IngestEventJSON{
		{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"},
		{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#getStatusOp"},
	}
	_, err := c.IngestEvents(ctx, id, batch)
	if !ErrIs(err, CodeResourceExhausted) {
		t.Fatalf("oversized batch: %v, want %s", err, CodeResourceExhausted)
	}
	backoff, hinted := RetryAfter(err)
	if !hinted || backoff <= 0 {
		t.Fatalf("RetryAfter(%v) = %s, %v — want a positive hint", err, backoff, hinted)
	}
	if _, ok := RetryAfter(fmt.Errorf("unrelated")); ok {
		t.Fatal("RetryAfter matched an unrelated error")
	}
	// The rejection was all-or-nothing: a fitting batch still lands.
	if n, err := c.IngestEvents(ctx, id, batch[:1]); err != nil || n != 1 {
		t.Fatalf("retry after backpressure: n=%d err=%v", n, err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestRejected != 2 || st.EventsIngested != 1 {
		t.Fatalf("stats = {rejected %d, ingested %d}, want {2, 1}", st.IngestRejected, st.EventsIngested)
	}
}
