package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/paperrepro"
	"repro/internal/store"
)

// journaledClient spins a server over a journaled store so journal
// faults have somewhere to land.
func journaledClient(t *testing.T) (*Client, *Server) {
	t.Helper()
	st, err := store.Open(store.WithJournal(t.TempDir()), store.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	srv := New(st)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), srv
}

// poison arms the append-write and rollback-truncate faults together:
// the next journaled mutation fails AND cannot roll back, which is the
// one condition that degrades the store to read-only.
func poison(t *testing.T) {
	t.Helper()
	for _, pt := range []string{fault.PointJournalAppendWrite, fault.PointJournalWALTruncate} {
		if err := fault.Arm(pt, fault.Trigger{}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(fault.DisarmAll)
}

// TestDegradedModeHTTP pins the serving contract of a degraded store:
// mutations answer 503 {code: "unavailable"}, reads keep working,
// readyz flips to 503 while healthz stays 200, and stats reports the
// degraded flag with the causal error.
func TestDegradedModeHTTP(t *testing.T) {
	c, _ := journaledClient(t)
	id := paperSetup(t, c)

	poison(t)
	if err := c.CreateChoreography(ctx, "other", nil); err == nil {
		t.Fatal("mutation on degrading store succeeded")
	}
	fault.DisarmAll()

	// The store is now degraded for the rest of its life: even with
	// faults disarmed, mutations answer 503 unavailable.
	err := c.CreateChoreography(ctx, "other2", nil)
	if !ErrIs(err, CodeUnavailable) {
		t.Fatalf("mutation after degrade: %v, want code %q", err, CodeUnavailable)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("mutation after degrade: %v, want HTTP 503", err)
	}

	// Reads still serve the last committed state.
	info, err := c.Choreography(ctx, id)
	if err != nil {
		t.Fatalf("read on degraded store: %v", err)
	}
	if len(info.Parties) != 3 {
		t.Fatalf("degraded read: %d parties, want 3", len(info.Parties))
	}

	// Probes: liveness stays green, readiness goes red.
	res, err := c.http.Get(c.base + "/v2/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz on degraded store: %d, want 200", res.StatusCode)
	}
	res, err = c.http.Get(c.base + "/v2/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || env.Code != CodeUnavailable {
		t.Fatalf("readyz on degraded store: %d %q, want 503 %q", res.StatusCode, env.Code, CodeUnavailable)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || stats.LastError == "" {
		t.Fatalf("stats on degraded store: degraded=%v lastError=%q", stats.Degraded, stats.LastError)
	}
}

// TestReadyzHealthy pins the green path of both probes.
func TestReadyzHealthy(t *testing.T) {
	c, _ := testClient(t)
	for _, path := range []string{"/v2/healthz", "/v2/readyz"} {
		res, err := c.http.Get(c.base + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d, want 200", path, res.StatusCode)
		}
	}
}

// lossyTransport drops the RESPONSE of matching requests after the
// server processed them — the classic "did my commit apply?" failure a
// retry with an idempotency key must survive.
type lossyTransport struct {
	inner http.RoundTripper
	// dropNext counts how many matching responses to drop.
	dropNext atomic.Int32
	match    func(*http.Request) bool
}

func (lt *lossyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := lt.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if lt.match(req) && lt.dropNext.Add(-1) >= 0 {
		resp.Body.Close()
		return nil, errors.New("lossy transport: response lost")
	}
	return resp, nil
}

// TestCommitRetriesExactlyOnce pins the end-to-end exactly-once
// contract: the commit response is lost on the wire, the armed Retry
// policy re-sends the same auto-generated Idempotency-Key, and the
// server answers the original outcome — one version bump, one commit,
// no conflict.
func TestCommitRetriesExactlyOnce(t *testing.T) {
	c, srv := journaledClient(t)
	id := paperSetup(t, c)

	lt := &lossyTransport{
		inner: http.DefaultTransport,
		match: func(r *http.Request) bool {
			return r.Method == "POST" && r.Header.Get("Idempotency-Key") != ""
		},
	}
	lt.dropNext.Store(1)
	c.http = &http.Client{Transport: lt}
	c.SetRetry(Retry{MaxAttempts: 4, BaseDelay: time.Millisecond})

	// The evolve request is keyed too, so it survives its own drop; use
	// it as submitted.
	evo, err := c.Evolve(ctx, id, apply(t, paperrepro.AccountingProcess(), paperrepro.TrackingLimitChange()))
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Store().Stats().Commits

	lt.dropNext.Store(1) // lose exactly the first commit response
	out, err := c.Commit(ctx, evo.Evolution)
	if err != nil {
		t.Fatalf("retried commit: %v", err)
	}
	if out.Version != evo.BaseVersion+1 {
		t.Fatalf("committed version %d, want %d", out.Version, evo.BaseVersion+1)
	}
	if got := srv.Store().Stats().Commits - before; got != 1 {
		t.Fatalf("commit applied %d times, want exactly 1", got)
	}

	// The same logical commit retried again (fresh call, same evolution)
	// now has a different key and must answer stale_version, proving the
	// dedup is per key, not per evolution.
	if _, err := c.Commit(ctx, evo.Evolution); !ErrIs(err, CodeStaleVersion) {
		t.Fatalf("re-commit with a fresh key: %v, want code %q", err, CodeStaleVersion)
	}
}

// TestEvolveIdempotencyKey pins the evolve-side dedup: the same key
// answers the same evolution ID instead of minting a duplicate.
func TestEvolveIdempotencyKey(t *testing.T) {
	c, srv := testClient(t)
	id := paperSetup(t, c)

	lt := &lossyTransport{
		inner: http.DefaultTransport,
		match: func(r *http.Request) bool {
			return r.Method == "POST" && r.Header.Get("Idempotency-Key") != ""
		},
	}
	lt.dropNext.Store(1)
	c.http = &http.Client{Transport: lt}
	c.SetRetry(Retry{MaxAttempts: 4, BaseDelay: time.Millisecond})

	evo, err := c.Evolve(ctx, id, apply(t, paperrepro.AccountingProcess(), paperrepro.TrackingLimitChange()))
	if err != nil {
		t.Fatalf("retried evolve: %v", err)
	}
	srv.evoMu.RLock()
	pending := len(srv.evos)
	srv.evoMu.RUnlock()
	if pending != 1 {
		t.Fatalf("pending evolutions after retried evolve = %d, want 1 (no duplicate analysis)", pending)
	}
	if evo.Evolution == "" {
		t.Fatal("empty evolution id")
	}
}

// countingHandler fails the first n requests with the given status,
// then delegates.
type countingHandler struct {
	inner    http.Handler
	failures atomic.Int32
	status   int
	requests atomic.Int32
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	if h.failures.Add(-1) >= 0 {
		writeJSON(w, h.status, ErrorEnvelope{Code: CodeUnavailable, Message: "synthetic outage"})
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestRetryPolicy pins the retry classification: reads retry through
// 503s, unkeyed POSTs do not (the client cannot know whether they
// applied), and 429 backpressure retries even unkeyed because the
// batch was rejected as a unit.
func TestRetryPolicy(t *testing.T) {
	srv := New(store.New(store.WithShards(2)))
	h := &countingHandler{inner: srv.Handler(), status: http.StatusServiceUnavailable}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(Retry{MaxAttempts: 3, BaseDelay: time.Millisecond})

	// GET retries through two 503s.
	h.failures.Store(2)
	h.requests.Store(0)
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("GET through 503s: %v", err)
	}
	if got := h.requests.Load(); got != 3 {
		t.Fatalf("GET attempts = %d, want 3", got)
	}

	// An unkeyed POST does not retry on 503.
	h.failures.Store(1)
	h.requests.Store(0)
	err := c.CreateChoreography(ctx, "once", nil)
	if !ErrIs(err, CodeUnavailable) {
		t.Fatalf("unkeyed POST: %v, want %q passed through", err, CodeUnavailable)
	}
	if got := h.requests.Load(); got != 1 {
		t.Fatalf("unkeyed POST attempts = %d, want 1 (no retry)", got)
	}

	// 429 backpressure retries an unkeyed POST: the reject is
	// all-or-nothing, so re-sending cannot double-apply.
	var attempts429, fail429 atomic.Int32
	fail429.Store(1)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts429.Add(1)
		if fail429.Add(-1) >= 0 {
			writeJSON(w, http.StatusTooManyRequests, ErrorEnvelope{Code: CodeResourceExhausted, Message: "lane full", Details: map[string]any{"retryAfter": 0.001}})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": "ok"})
	}))
	t.Cleanup(ts2.Close)
	c2 := NewClient(ts2.URL, ts2.Client())
	c2.SetRetry(Retry{MaxAttempts: 3, BaseDelay: time.Millisecond})
	if err := c2.CreateChoreography(ctx, "bp", nil); err != nil {
		t.Fatalf("POST through 429: %v", err)
	}
	if got := attempts429.Load(); got != 2 {
		t.Fatalf("backpressure POST attempts = %d, want 2", got)
	}
}

// TestRetryHonorsContext pins that a canceled context stops the retry
// loop instead of sleeping out the backoff.
func TestRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ErrorEnvelope{Code: CodeUnavailable, Message: "down"})
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(Retry{MaxAttempts: 10, BaseDelay: 10 * time.Second})

	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(cctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry slept %v through a canceled context", elapsed)
	}
}
