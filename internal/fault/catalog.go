package fault

// The failpoint catalog: every failpoint name in the repository,
// declared exactly once. The package owning the call site registers
// the point with New(fault.Point...), arming sites pass the same
// constant to Arm, and the faultpoint choreolint pass checks both —
// a New or Arm whose name is computed, duplicated, or absent from
// this catalog is a lint failure. docs/resilience.md documents what
// each point interrupts.
const (
	// Journal open path (journal.Open).
	PointJournalOpenMkdir    = "journal.open.mkdir"
	PointJournalOpenSnapshot = "journal.open.snapshot"
	PointJournalOpenWAL      = "journal.open.wal"
	// Journal append path (Log.Append); the write point tears the
	// frame — half the bytes land on disk before the error.
	PointJournalAppendWrite = "journal.append.write"
	PointJournalAppendSync  = "journal.append.sync"
	// WAL truncation (append rollback and the checkpoint's log cut);
	// firing it during an append rollback poisons the log.
	PointJournalWALTruncate = "journal.wal.truncate"
	// Checkpoint path (Log.Checkpoint): tmp-file creation, write,
	// fsync, and the atomic rename.
	PointJournalCheckpointTmp    = "journal.checkpoint.tmp"
	PointJournalCheckpointWrite  = "journal.checkpoint.write"
	PointJournalCheckpointSync   = "journal.checkpoint.sync"
	PointJournalCheckpointRename = "journal.checkpoint.rename"
)
