// Package fault is the repository's failpoint framework: named points
// compiled permanently into production code paths that do nothing
// until armed, and then fail (or partially complete) on demand. The
// journal's filesystem wrapper threads every durability syscall
// through a point, which is what the chaos soaks, the degraded-mode
// tests and `choreoctl loadgen -faults` drive (see docs/resilience.md).
//
// # Contract
//
// Every failpoint name is declared once in the catalog (catalog.go)
// and registered exactly once with New by the package that owns the
// call site. Names are compile-time string constants — the faultpoint
// choreolint pass rejects computed names, duplicate registrations and
// arming a name outside the catalog; New panics on a duplicate at
// runtime as the global backstop.
//
// A disarmed point costs one atomic pointer load. An armed point
// consults its trigger: fire always, with probability p (seeded,
// deterministic), or on exactly the nth hit, optionally capped to a
// total fire count.
//
// # Arming
//
// Tests and tools arm through the API (Arm / Point.Arm / ArmSpec);
// processes arm through the CHOREO_FAULTS environment variable, read
// once at first registration. Both use the same spec grammar:
//
//	CHOREO_FAULTS="journal.append.write=p:0.05,journal.open.wal=n:3"
//
// where each entry is <name>=<trigger> and a trigger is "always",
// "p:<probability>" or "n:<hit>".
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the root of every injected failure; match with
// errors.Is to tell injected faults from real ones.
var ErrInjected = errors.New("fault: injected failure")

// Trigger says when an armed point fires. The zero Trigger fires on
// every hit.
type Trigger struct {
	// Prob fires with the given probability per hit (0 < Prob <= 1).
	// The stream is deterministic: seeded by Seed, or by the point's
	// name when Seed is zero.
	Prob float64
	// Nth fires on exactly the nth hit after arming (1-based).
	Nth uint64
	// Count caps the total number of fires; 0 means unlimited.
	Count uint64
	// Seed seeds the probabilistic stream; 0 derives a stable seed
	// from the point's name.
	Seed uint64
}

// trigger is the armed state of a point.
type trigger struct {
	cfg   Trigger
	hits  atomic.Uint64
	fired atomic.Uint64
	rng   atomic.Uint64 // splitmix64 state
}

// Point is one named failpoint. Construct with New; the zero Point is
// not usable.
type Point struct {
	name  string
	arm   atomic.Pointer[trigger]
	fires atomic.Uint64
}

var (
	regMu    sync.Mutex
	registry = map[string]*Point{}
)

// New registers a failpoint. It panics on a duplicate name — the
// runtime backstop behind the faultpoint lint's per-package
// uniqueness check — and arms the point immediately when CHOREO_FAULTS
// names it.
func New(name string) *Point {
	if name == "" {
		panic("fault: empty failpoint name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fault: failpoint %q registered twice", name))
	}
	p := &Point{name: name}
	registry[name] = p
	if t, ok := envTriggers()[name]; ok {
		p.Arm(t)
	}
	return p
}

// Name returns the point's catalog name.
func (p *Point) Name() string { return p.name }

// Arm activates the point with t; a second Arm replaces the trigger
// (and restarts its hit count).
func (p *Point) Arm(t Trigger) {
	tr := &trigger{cfg: t}
	seed := t.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(p.name))
		seed = h.Sum64()
	}
	tr.rng.Store(seed)
	p.arm.Store(tr)
}

// Disarm deactivates the point; Fire returns nil again.
func (p *Point) Disarm() { p.arm.Store(nil) }

// Armed reports whether the point currently has a trigger.
func (p *Point) Armed() bool { return p.arm.Load() != nil }

// Fires returns how many failures the point has injected since
// process start (across arm/disarm cycles).
func (p *Point) Fires() uint64 { return p.fires.Load() }

// Fire evaluates the point: nil when disarmed or the trigger decides
// to pass, an ErrInjected-wrapping error when the fault fires. The
// disarmed fast path is one atomic load.
func (p *Point) Fire() error {
	t := p.arm.Load()
	if t == nil {
		return nil
	}
	if !t.decide() {
		return nil
	}
	p.fires.Add(1)
	return fmt.Errorf("%s: %w", p.name, ErrInjected)
}

// decide applies the trigger semantics to one hit.
func (t *trigger) decide() bool {
	hit := t.hits.Add(1)
	switch {
	case t.cfg.Nth > 0:
		if hit != t.cfg.Nth {
			return false
		}
	case t.cfg.Prob > 0:
		if t.rand() >= t.cfg.Prob {
			return false
		}
	}
	if t.cfg.Count > 0 && t.fired.Add(1) > t.cfg.Count {
		return false
	}
	return true
}

// rand draws the next [0,1) value of the trigger's deterministic
// splitmix64 stream.
func (t *trigger) rand() float64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// lookup finds a registered point.
func lookup(name string) (*Point, error) {
	regMu.Lock()
	defer regMu.Unlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("fault: arming unregistered failpoint %q", name)
	}
	return p, nil
}

// Arm arms a registered point by catalog name; arming an unregistered
// name is an error (and, at call sites with a constant name, a
// faultpoint lint failure).
func Arm(name string, t Trigger) error {
	p, err := lookup(name)
	if err != nil {
		return err
	}
	p.Arm(t)
	return nil
}

// Disarm disarms a registered point by catalog name.
func Disarm(name string) error {
	p, err := lookup(name)
	if err != nil {
		return err
	}
	p.Disarm()
	return nil
}

// DisarmAll disarms every registered point — test teardown.
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.Disarm()
	}
}

// Fires returns a registered point's cumulative fire count — chaos
// harnesses use it to assert their faults actually fired.
func Fires(name string) (uint64, error) {
	p, err := lookup(name)
	if err != nil {
		return 0, err
	}
	return p.Fires(), nil
}

// Names returns the registered point names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ArmSpec arms points from a spec string (the CHOREO_FAULTS grammar):
// comma-separated <name>=<trigger> entries with triggers "always",
// "p:<probability>" or "n:<hit>". Every name must be registered.
func ArmSpec(spec string) error {
	entries, err := parseSpec(spec)
	if err != nil {
		return err
	}
	for name, t := range entries {
		if err := Arm(name, t); err != nil {
			return err
		}
	}
	return nil
}

// parseSpec parses the CHOREO_FAULTS grammar into per-name triggers.
func parseSpec(spec string) (map[string]Trigger, error) {
	out := map[string]Trigger{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, mode, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: spec entry %q is not <name>=<trigger>", entry)
		}
		var t Trigger
		switch kind, arg, _ := strings.Cut(mode, ":"); kind {
		case "always":
			// zero Trigger
		case "p":
			p, err := strconv.ParseFloat(arg, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("fault: spec entry %q: probability must be in (0,1]", entry)
			}
			t.Prob = p
		case "n":
			n, err := strconv.ParseUint(arg, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: spec entry %q: hit number must be a positive integer", entry)
			}
			t.Nth = n
		default:
			return nil, fmt.Errorf("fault: spec entry %q: unknown trigger %q", entry, kind)
		}
		out[name] = t
	}
	return out, nil
}

// envOnce parses CHOREO_FAULTS at most once, at first registration.
var (
	envOnce sync.Once
	envArm  map[string]Trigger
)

func envTriggers() map[string]Trigger {
	envOnce.Do(func() {
		spec := os.Getenv("CHOREO_FAULTS")
		if spec == "" {
			return
		}
		entries, err := parseSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fault: ignoring CHOREO_FAULTS:", err)
			return
		}
		envArm = entries
	})
	return envArm
}
