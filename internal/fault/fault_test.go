package fault

import (
	"errors"
	"testing"
)

func TestDisarmedIsNoop(t *testing.T) {
	p := New("test.disarmed")
	for i := 0; i < 100; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
	if p.Fires() != 0 {
		t.Fatalf("Fires = %d, want 0", p.Fires())
	}
}

func TestAlwaysTrigger(t *testing.T) {
	p := New("test.always")
	p.Arm(Trigger{})
	defer p.Disarm()
	err := p.Fire()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire = %v, want ErrInjected", err)
	}
	p.Disarm()
	if err := p.Fire(); err != nil {
		t.Fatalf("fired after Disarm: %v", err)
	}
}

func TestNthHitTrigger(t *testing.T) {
	p := New("test.nth")
	p.Arm(Trigger{Nth: 3})
	defer p.Disarm()
	for i := 1; i <= 5; i++ {
		err := p.Fire()
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
	if p.Fires() != 1 {
		t.Fatalf("Fires = %d, want 1", p.Fires())
	}
}

func TestProbabilisticTriggerDeterministic(t *testing.T) {
	run := func() []bool {
		p, _ := lookup("test.prob")
		if p == nil {
			p = New("test.prob")
		}
		p.Arm(Trigger{Prob: 0.3, Seed: 42})
		defer p.Disarm()
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Fire() != nil
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probabilistic stream not deterministic at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// 200 hits at p=0.3: expect roughly 60, assert a loose band.
	if fires < 30 || fires > 100 {
		t.Fatalf("fired %d of 200 at p=0.3", fires)
	}
}

func TestCountCap(t *testing.T) {
	p := New("test.count")
	p.Arm(Trigger{Count: 2})
	defer p.Disarm()
	fires := 0
	for i := 0; i < 10; i++ {
		if p.Fire() != nil {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d times, want 2 (Count cap)", fires)
	}
}

func TestArmByNameAndSpec(t *testing.T) {
	p := New("test.byname")
	if err := Arm("test.byname", Trigger{}); err != nil {
		t.Fatal(err)
	}
	if !p.Armed() {
		t.Fatal("Arm by name did not arm")
	}
	if err := Disarm("test.byname"); err != nil {
		t.Fatal(err)
	}
	if p.Armed() {
		t.Fatal("Disarm by name did not disarm")
	}
	if err := Arm("test.not.registered", Trigger{}); err == nil {
		t.Fatal("arming an unregistered point succeeded")
	}
	if err := ArmSpec("test.byname=p:0.5"); err != nil {
		t.Fatal(err)
	}
	defer p.Disarm()
	if !p.Armed() {
		t.Fatal("ArmSpec did not arm")
	}
	for _, bad := range []string{"nope", "x=p:1.5", "x=n:0", "x=q:1", "test.not.registered=always"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) succeeded", bad)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	New("test.dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate New did not panic")
		}
	}()
	New("test.dup")
}

func TestCatalogRegistered(t *testing.T) {
	// The journal package registers the whole journal.* catalog at
	// init; importing fault alone must not (points belong to their
	// owners), so only assert the catalog constants are distinct.
	names := map[string]bool{}
	for _, n := range []string{
		PointJournalOpenMkdir, PointJournalOpenSnapshot, PointJournalOpenWAL,
		PointJournalAppendWrite, PointJournalAppendSync, PointJournalWALTruncate,
		PointJournalCheckpointTmp, PointJournalCheckpointWrite,
		PointJournalCheckpointSync, PointJournalCheckpointRename,
	} {
		if names[n] {
			t.Fatalf("catalog name %q duplicated", n)
		}
		names[n] = true
	}
}
