// Package migrate is the bulk instance-migration engine: it sweeps an
// entire population of running instances through migratability
// classification (the ADEPT-style compliance criterion of
// internal/instance) and moves the compliant ones to a committed
// target schema version.
//
// The design targets the store's serving regime — millions of tracked
// instances under concurrent evolve/check traffic:
//
//   - The population is iterated shard by shard through the Source
//     interface. The engine never asks for a global view, so the owner
//     of the instances (internal/store) only ever locks one shard at a
//     time, briefly, to copy it out or to commit its migrations.
//     Checks, evolutions and new instance recordings proceed
//     concurrently with a sweep.
//   - Shards are fanned out over a bounded worker pool
//     (Engine.Workers). Classification itself is lock-free — the
//     Classifier is expected to close over immutable, pre-determinized
//     per-schema checkers — so the sweep scales with the worker count
//     until it saturates the machine.
//   - Progress is tracked per shard in a Job: a shard's counters and
//     stranded instances are folded in atomically when the shard
//     completes, never partially. A canceled sweep therefore leaves
//     the job in a consistent "k of n shards done" state, and a later
//     Run resumes with exactly the shards that have not committed.
//   - Jobs are idempotent. Run on a Done job returns immediately
//     without touching anything; re-running a completed sweep is a
//     no-op by construction. Concurrent Run calls on one job do not
//     double-sweep: one becomes the runner, the rest wait for it.
//
// The package is deliberately store-agnostic: Source and Classifier
// are tiny interfaces, so the engine (and its tests) run against
// synthetic populations as readily as against the live store.
package migrate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/instance"
)

// ErrCanceled reports a sweep stopped by Job.Cancel before every
// shard committed; the job is resumable.
var ErrCanceled = errors.New("migrate: sweep canceled")

// Status is the lifecycle state of a Job.
type Status int

// Job lifecycle states.
const (
	// StatusRunning: a sweep is in flight (also the initial state of a
	// job between creation and its first Run, so that a poller never
	// observes a terminal state before the sweep had a chance to act).
	StatusRunning Status = iota
	// StatusDone: every shard committed; the report is final.
	StatusDone
	// StatusCanceled: the sweep stopped early (context cancellation or
	// Cancel); completed shards stay committed, Run resumes the rest.
	StatusCanceled
	// StatusFailed: a shard failed terminally; Run may retry.
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusCanceled:
		return "canceled"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Stranded is one instance that cannot move to the target version.
type Stranded struct {
	Party string
	ID    string
	// Status is why the instance is stuck: instance.NonReplayable or
	// instance.Unviable.
	Status instance.Status
}

// Item is one tracked instance as handed to the sweep. Ref is an
// opaque, source-defined handle (stable at least for the duration of
// the sweep) that Commit uses to address the instance inside its
// shard.
type Item struct {
	Party string
	Inst  instance.Instance
	Ref   int
}

// Source abstracts the instance population the engine sweeps. Load and
// Commit are called at most once per shard per run, from at most one
// worker at a time for a given shard; different shards are handled
// concurrently.
type Source interface {
	// Shards returns the fixed shard count of the population.
	Shards() int
	// Load copies one shard's instances out.
	Load(ctx context.Context, shard int) ([]Item, error)
	// Commit marks the migratable items of one shard as moved to the
	// target version. It is called exactly once per completed shard,
	// after every item of the shard has been classified.
	Commit(ctx context.Context, shard int, migrated []Item) error
}

// Classifier classifies one instance against the target schema. It
// must be safe for concurrent use.
type Classifier func(party string, inst instance.Instance) (instance.Status, error)

// Counts are the cumulative progress counters of a job. Only committed
// shards contribute, so the numbers never double-count across a
// cancel/resume cycle.
type Counts struct {
	Total         int
	Migratable    int
	NonReplayable int
	Unviable      int
}

func (c *Counts) add(o Counts) {
	c.Total += o.Total
	c.Migratable += o.Migratable
	c.NonReplayable += o.NonReplayable
	c.Unviable += o.Unviable
}

// View is a consistent copy of a job's observable state.
type View struct {
	ID            string
	Choreography  string
	TargetVersion uint64
	Status        Status
	Err           string
	Shards        int
	ShardsDone    int
	Counts
}

// Terminal reports whether the job has left the running state.
func (v View) Terminal() bool { return v.Status != StatusRunning }

// Job is one bulk-migration job: the durable identity of a sweep
// toward one committed choreography version, its per-shard checkpoint,
// progress counters and stranded-instance report. All methods are safe
// for concurrent use.
type Job struct {
	// ID is the job identifier; the store derives it deterministically
	// from (choreography, target version), which is what makes POSTing
	// the same migration twice idempotent.
	ID string
	// Choreography and TargetVersion name the sweep's target: the
	// committed snapshot version instances are moved to.
	Choreography  string
	TargetVersion uint64

	// Observer, when non-nil, is invoked right before each committed
	// shard folds into the job — the store's journaling hook. An
	// observer error aborts the fold and fails the shard sweep, so a
	// shard counts as done only once its fold is durable; the retry
	// re-sweeps it. It must be set before the first Run/RunAsync and is
	// called without the job lock held, so it may take locks of its
	// own; folds of different shards may invoke it concurrently.
	Observer func(shard int, c Counts, stranded []Stranded) error

	mu     sync.Mutex
	status Status
	errMsg string
	// failErr is the live shard-failure error behind errMsg, kept so
	// Run's callers can classify it with errors.Is (injected fault,
	// degraded store). A job recovered from the journal has only the
	// message.
	failErr  error
	done     []bool // per-shard commit checkpoint
	doneN    int
	counts   Counts
	stranded []Stranded
	// sorted caches the sort of stranded, invalidated when a shard
	// folds in — status polls re-read the report without re-sorting.
	sorted  []Stranded
	running bool               // a Run call is the active runner
	cancel  context.CancelFunc // cancels the active runner
	waiters chan struct{}      // closed when the active runner ends
}

// NewJob returns a fresh job over a population of shards shards.
func NewJob(id, choreography string, targetVersion uint64, shards int) *Job {
	return &Job{
		ID:            id,
		Choreography:  choreography,
		TargetVersion: targetVersion,
		status:        StatusRunning,
		done:          make([]bool, shards),
	}
}

// JobState is the serializable checkpoint of a Job: everything needed
// to reconstruct its observable state after a restart. It carries no
// runner-role fields — a persisted job is, by definition, not being
// swept.
type JobState struct {
	ID            string     `json:"id"`
	Choreography  string     `json:"choreography"`
	TargetVersion uint64     `json:"targetVersion"`
	Status        Status     `json:"status"`
	Err           string     `json:"error,omitempty"`
	Done          []bool     `json:"done"`
	Counts        Counts     `json:"counts"`
	Stranded      []Stranded `json:"stranded,omitempty"`
}

// State returns a consistent serializable checkpoint of the job.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobState{
		ID:            j.ID,
		Choreography:  j.Choreography,
		TargetVersion: j.TargetVersion,
		Status:        j.status,
		Err:           j.errMsg,
		Done:          append([]bool(nil), j.done...),
		Counts:        j.counts,
		Stranded:      append([]Stranded(nil), j.stranded...),
	}
}

// RestoreJob reconstructs a job from a persisted state. The restored
// status is settled for a world where no sweep survives a restart: a
// job whose shards are all committed is Done; one persisted while
// running (or mid-resume) comes back Canceled — terminal but
// resumable, exactly like a sweep stopped by Cancel; Canceled and
// Failed states persist as they were.
func RestoreJob(st JobState) *Job {
	j := &Job{
		ID:            st.ID,
		Choreography:  st.Choreography,
		TargetVersion: st.TargetVersion,
		status:        st.Status,
		errMsg:        st.Err,
		done:          append([]bool(nil), st.Done...),
		counts:        st.Counts,
		stranded:      append([]Stranded(nil), st.Stranded...),
	}
	for _, d := range j.done {
		if d {
			j.doneN++
		}
	}
	switch {
	case j.doneN == len(j.done):
		j.status, j.errMsg = StatusDone, ""
	case j.status == StatusRunning:
		j.status = StatusCanceled
	}
	return j
}

// Snapshot returns a consistent copy of the job's progress.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() View {
	return View{
		ID:            j.ID,
		Choreography:  j.Choreography,
		TargetVersion: j.TargetVersion,
		Status:        j.status,
		Err:           j.errMsg,
		Shards:        len(j.done),
		ShardsDone:    j.doneN,
		Counts:        j.counts,
	}
}

// Stranded returns the stranded-instance report, sorted by
// (party, id) so pagination over it is stable. The sorted slice is
// cached until the next shard folds in; callers must not mutate it.
func (j *Job) Stranded() []Stranded {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.strandedLocked()
}

func (j *Job) strandedLocked() []Stranded {
	if j.sorted == nil {
		j.sorted = append([]Stranded(nil), j.stranded...)
		sort.Slice(j.sorted, func(a, b int) bool {
			if j.sorted[a].Party != j.sorted[b].Party {
				return j.sorted[a].Party < j.sorted[b].Party
			}
			return j.sorted[a].ID < j.sorted[b].ID
		})
	}
	return j.sorted
}

// Report returns the progress view and the sorted stranded report
// under one lock acquisition, so the two are mutually consistent even
// while shards are folding in.
func (j *Job) Report() (View, []Stranded) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(), j.strandedLocked()
}

// Cancel stops the active sweep, if any. Committed shards keep their
// results; a later Run resumes the rest.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) Wait(ctx context.Context) (View, error) {
	for {
		j.mu.Lock()
		if j.status != StatusRunning && !j.running {
			j.mu.Unlock()
			return j.Snapshot(), nil
		}
		if j.waiters == nil {
			j.waiters = make(chan struct{})
		}
		ch := j.waiters
		j.mu.Unlock()
		select {
		case <-ctx.Done():
			return j.Snapshot(), ctx.Err()
		case <-ch:
		}
	}
}

// begin claims the runner role. It returns run=false when the job is
// already terminal-and-final (Done) or another runner is active; in
// the latter case wait is the channel closed when that runner ends.
func (j *Job) begin(cancel context.CancelFunc) (run bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone {
		return false, nil
	}
	if j.running {
		if j.waiters == nil {
			j.waiters = make(chan struct{})
		}
		return false, j.waiters
	}
	j.running = true
	j.status = StatusRunning
	j.errMsg = ""
	j.cancel = cancel
	return true, nil
}

// pending returns the shards not yet committed.
func (j *Job) pending() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	for i, d := range j.done {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// shardDone folds one committed shard into the job, notifying the
// Observer first (outside the job lock: the observer journals the
// fold and must not be able to deadlock against readers of the job).
// An observer failure skips the fold: the shard stays pending and the
// resumed sweep revisits it, so "done" is never acked beyond what the
// journal holds.
func (j *Job) shardDone(shard int, c Counts, stranded []Stranded) error {
	if j.Observer != nil {
		if err := j.Observer(shard, c, stranded); err != nil {
			return err
		}
	}
	j.FoldShard(shard, c, stranded)
	return nil
}

// FoldShard folds one committed shard's results into the job. It is
// idempotent per shard — folding an already-committed shard is a
// no-op — which is what lets crash recovery replay journaled folds
// without double counting. Normal sweeps go through shardDone; call
// FoldShard directly only when reconstructing a job.
func (j *Job) FoldShard(shard int, c Counts, stranded []Stranded) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[shard] {
		return
	}
	j.done[shard] = true
	j.doneN++
	j.counts.add(c)
	j.stranded = append(j.stranded, stranded...)
	j.sorted = nil
	if j.doneN == len(j.done) {
		// Every shard committed: the job is Done no matter how the
		// folds arrived (a live sweep's finish would settle the same
		// way; recovery replaying folds has no finish to rely on).
		j.status, j.errMsg = StatusDone, ""
	}
}

// finish releases the runner role and settles the terminal status.
func (j *Job) finish(sweepErr error, canceled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.running = false
	j.cancel = nil
	switch {
	case j.doneN == len(j.done):
		j.status = StatusDone
	case canceled:
		j.status = StatusCanceled
	case sweepErr != nil:
		j.status = StatusFailed
		j.errMsg = sweepErr.Error()
		j.failErr = sweepErr
	default:
		j.status = StatusCanceled
	}
	if j.waiters != nil {
		close(j.waiters)
		j.waiters = nil
	}
}

// Engine runs bulk-migration sweeps with a bounded worker pool.
type Engine struct {
	// Workers bounds the concurrent shard sweeps (<= 0 means 1).
	Workers int
}

// Run executes (or resumes) job over src: every shard not yet
// committed is loaded, classified through classify, and committed. Run
// returns when the sweep ends, and returns nil only when the job is
// Done — otherwise the caller's context error (canceled mid-sweep,
// job Canceled and resumable), ErrCanceled (stopped by Job.Cancel),
// or the shard failure (job Failed, retryable). Running a Done job is
// a no-op; when another Run is already sweeping the same job, this
// call waits for that runner and reports the state it left.
func (e *Engine) Run(ctx context.Context, job *Job, src Source, classify Classifier) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	run, wait := job.begin(cancel)
	if !run {
		if wait != nil {
			select {
			case <-wait:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return job.outcome(ctx)
	}
	e.sweep(runCtx, job, src, classify)
	return job.outcome(ctx)
}

// RunAsync claims the runner role synchronously — the job is
// observable as running, and cancelable, the moment it returns — and
// executes the sweep in a new goroutine with its own lifetime
// (stopped by Job.Cancel, not by any request context). A job that is
// already done or being swept by another runner is left untouched.
func (e *Engine) RunAsync(job *Job, src Source, classify Classifier) {
	runCtx, cancel := context.WithCancel(context.Background())
	run, _ := job.begin(cancel)
	if !run {
		cancel()
		return
	}
	go func() {
		defer cancel()
		e.sweep(runCtx, job, src, classify)
	}()
}

// outcome translates the job's settled state into Run's error
// contract: nil iff Done.
func (j *Job) outcome(ctx context.Context) error {
	switch v := j.Snapshot(); v.Status {
	case StatusDone:
		return nil
	case StatusFailed:
		j.mu.Lock()
		failErr := j.failErr
		j.mu.Unlock()
		if failErr != nil {
			return failErr
		}
		return errors.New(v.Err)
	default:
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrCanceled
	}
}

// sweep fans the job's pending shards over the worker pool and
// settles the job's terminal state; the caller holds the runner role.
func (e *Engine) sweep(runCtx context.Context, job *Job, src Source, classify Classifier) {
	pending := job.pending()
	workers := e.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(pending) {
		workers = max(1, len(pending))
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		swept   error
	)
	fail := func(err error) {
		errOnce.Do(func() { swept = err })
		job.Cancel()
	}
	shards := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range shards {
				if err := e.sweepShard(runCtx, job, src, classify, shard); err != nil {
					if runCtx.Err() == nil {
						fail(err)
					}
					return
				}
			}
		}()
	}
feed:
	for _, shard := range pending {
		select {
		case shards <- shard:
		case <-runCtx.Done():
			break feed
		}
	}
	close(shards)
	wg.Wait()

	job.finish(swept, runCtx.Err() != nil && swept == nil)
}

// sweepShard classifies one shard and commits it. A shard is folded
// into the job only after its commit succeeded, so cancellation
// between any two steps leaves the checkpoint exact.
func (e *Engine) sweepShard(ctx context.Context, job *Job, src Source, classify Classifier, shard int) error {
	items, err := src.Load(ctx, shard)
	if err != nil {
		return fmt.Errorf("migrate: loading shard %d: %w", shard, err)
	}
	var (
		c        Counts
		migrated []Item
		stranded []Stranded
	)
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		st, err := classify(it.Party, it.Inst)
		if err != nil {
			return fmt.Errorf("migrate: classifying %s/%s: %w", it.Party, it.Inst.ID, err)
		}
		c.Total++
		switch st {
		case instance.Migratable:
			c.Migratable++
			migrated = append(migrated, it)
		case instance.NonReplayable:
			c.NonReplayable++
			stranded = append(stranded, Stranded{Party: it.Party, ID: it.Inst.ID, Status: st})
		case instance.Unviable:
			c.Unviable++
			stranded = append(stranded, Stranded{Party: it.Party, ID: it.Inst.ID, Status: st})
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := src.Commit(ctx, shard, migrated); err != nil {
		return fmt.Errorf("migrate: committing shard %d: %w", shard, err)
	}
	if err := job.shardDone(shard, c, stranded); err != nil {
		return fmt.Errorf("migrate: journaling shard %d fold: %w", shard, err)
	}
	return nil
}
