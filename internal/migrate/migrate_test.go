package migrate

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/instance"
	"repro/internal/label"
)

// memSource is a synthetic sharded population. Commits record which
// items were migrated and how often each shard committed, so the tests
// can pin exactly-once semantics across cancel/resume cycles.
type memSource struct {
	shards [][]Item

	mu       sync.Mutex
	migrated map[string]int // "party/id" -> times committed as migrated
	commits  []int          // per-shard commit count
}

func newMemSource(shards int) *memSource {
	return &memSource{
		shards:   make([][]Item, shards),
		migrated: map[string]int{},
		commits:  make([]int, shards),
	}
}

func (m *memSource) add(shard int, party, id string, trace ...string) {
	var ls []label.Label
	for _, t := range trace {
		ls = append(ls, label.MustParse(t))
	}
	m.shards[shard] = append(m.shards[shard], Item{
		Party: party,
		Inst:  instance.Instance{ID: id, Trace: ls},
		Ref:   len(m.shards[shard]),
	})
}

func (m *memSource) Shards() int { return len(m.shards) }

func (m *memSource) Load(_ context.Context, shard int) ([]Item, error) {
	return append([]Item(nil), m.shards[shard]...), nil
}

func (m *memSource) Commit(_ context.Context, shard int, migrated []Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits[shard]++
	for _, it := range migrated {
		m.migrated[it.Party+"/"+it.Inst.ID]++
	}
	return nil
}

// classifyByID classifies from the instance ID: "bad-*" is
// non-replayable, "stuck-*" unviable, everything else migratable.
func classifyByID(_ string, inst instance.Instance) (instance.Status, error) {
	switch {
	case strings.HasPrefix(inst.ID, "bad-"):
		return instance.NonReplayable, nil
	case strings.HasPrefix(inst.ID, "stuck-"):
		return instance.Unviable, nil
	default:
		return instance.Migratable, nil
	}
}

// population fills src with a deterministic mixed population and
// returns the expected counts.
func population(src *memSource) Counts {
	want := Counts{}
	for shard := range src.shards {
		for i := 0; i < 5; i++ {
			id := fmt.Sprintf("inst-%d-%d", shard, i)
			switch i % 3 {
			case 0:
				want.Migratable++
			case 1:
				id = "bad-" + id
				want.NonReplayable++
			case 2:
				id = "stuck-" + id
				want.Unviable++
			}
			src.add(shard, "P", id)
			want.Total++
		}
	}
	return want
}

func TestEngineSweepPartition(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			src := newMemSource(8)
			want := population(src)
			job := NewJob("j", "c", 3, src.Shards())
			eng := &Engine{Workers: workers}
			if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
				t.Fatal(err)
			}
			v := job.Snapshot()
			if v.Status != StatusDone {
				t.Fatalf("status = %v, want done", v.Status)
			}
			if v.Counts != want {
				t.Fatalf("counts = %+v, want %+v", v.Counts, want)
			}
			if v.ShardsDone != src.Shards() {
				t.Fatalf("shardsDone = %d", v.ShardsDone)
			}
			if got := len(job.Stranded()); got != want.NonReplayable+want.Unviable {
				t.Fatalf("stranded = %d, want %d", got, want.NonReplayable+want.Unviable)
			}
			src.mu.Lock()
			defer src.mu.Unlock()
			if len(src.migrated) != want.Migratable {
				t.Fatalf("migrated = %d, want %d", len(src.migrated), want.Migratable)
			}
			for key, n := range src.migrated {
				if n != 1 {
					t.Fatalf("instance %s committed %d times", key, n)
				}
			}
			for shard, n := range src.commits {
				if n != 1 {
					t.Fatalf("shard %d committed %d times", shard, n)
				}
			}
		})
	}
}

func TestEngineRerunDoneIsNoop(t *testing.T) {
	src := newMemSource(4)
	want := population(src)
	job := NewJob("j", "c", 1, src.Shards())
	eng := &Engine{Workers: 2}
	if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
		t.Fatal(err)
	}
	first := job.Snapshot()
	firstStranded := job.Stranded()
	// Re-running must neither re-classify nor re-commit anything.
	if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
		t.Fatal(err)
	}
	second := job.Snapshot()
	if second != first {
		t.Fatalf("rerun changed the job: %+v -> %+v", first, second)
	}
	if len(job.Stranded()) != len(firstStranded) {
		t.Fatal("rerun changed the stranded report")
	}
	if second.Counts != want {
		t.Fatalf("counts = %+v, want %+v", second.Counts, want)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for shard, n := range src.commits {
		if n != 1 {
			t.Fatalf("shard %d committed %d times after rerun", shard, n)
		}
	}
}

func TestEngineCancelResume(t *testing.T) {
	src := newMemSource(6)
	want := population(src)
	job := NewJob("j", "c", 1, src.Shards())

	// First run: a classifier that blocks on shard 3's first item and
	// cancels the sweep, with one worker so shards 0..2 are committed
	// deterministically before the block.
	ctx, cancel := context.WithCancel(context.Background())
	blocking := func(party string, inst instance.Instance) (instance.Status, error) {
		if strings.Contains(inst.ID, "-3-") {
			cancel()
			<-ctx.Done()
			return instance.Migratable, ctx.Err()
		}
		return classifyByID(party, inst)
	}
	eng := &Engine{Workers: 1}
	if err := eng.Run(ctx, job, src, blocking); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run error = %v, want context.Canceled", err)
	}
	mid := job.Snapshot()
	if mid.Status != StatusCanceled {
		t.Fatalf("status after cancel = %v, want canceled", mid.Status)
	}
	if mid.ShardsDone != 3 {
		t.Fatalf("shardsDone after cancel = %d, want 3", mid.ShardsDone)
	}
	if mid.Total != 15 {
		t.Fatalf("total after cancel = %d, want 15 (3 shards x 5)", mid.Total)
	}

	// Resume: only the remaining shards are swept; the final report is
	// exactly the full population, nothing double-counted.
	if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
		t.Fatal(err)
	}
	v := job.Snapshot()
	if v.Status != StatusDone {
		t.Fatalf("status after resume = %v, want done", v.Status)
	}
	if v.Counts != want {
		t.Fatalf("counts after resume = %+v, want %+v", v.Counts, want)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for shard, n := range src.commits {
		if n != 1 {
			t.Fatalf("shard %d committed %d times across cancel/resume", shard, n)
		}
	}
}

type failingSource struct {
	*memSource
	failShard int
}

func (f *failingSource) Commit(ctx context.Context, shard int, migrated []Item) error {
	if shard == f.failShard {
		return errors.New("disk on fire")
	}
	return f.memSource.Commit(ctx, shard, migrated)
}

func TestEngineFailureIsRetryable(t *testing.T) {
	mem := newMemSource(4)
	want := population(mem)
	src := &failingSource{memSource: mem, failShard: 2}
	job := NewJob("j", "c", 1, src.Shards())
	eng := &Engine{Workers: 1}
	if err := eng.Run(context.Background(), job, src, classifyByID); err == nil {
		t.Fatal("run over a failing source succeeded")
	}
	if v := job.Snapshot(); v.Status != StatusFailed || v.Err == "" {
		t.Fatalf("status = %v err=%q, want failed with message", v.Status, v.Err)
	}
	// Retry against a healed source completes.
	src.failShard = -1
	if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
		t.Fatal(err)
	}
	if v := job.Snapshot(); v.Status != StatusDone || v.Counts != want {
		t.Fatalf("after retry: %+v, want done with %+v", v, want)
	}
}

func TestJobWaitAndConcurrentRun(t *testing.T) {
	src := newMemSource(8)
	population(src)
	job := NewJob("j", "c", 1, src.Shards())
	eng := &Engine{Workers: 4}
	// Two concurrent runners: one sweeps, the other must wait instead
	// of double-sweeping; Wait observes the terminal state.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	v, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("status = %v", v.Status)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for shard, n := range src.commits {
		if n != 1 {
			t.Fatalf("shard %d committed %d times under concurrent runs", shard, n)
		}
	}
}

// TestEngineJobCancelReturnsErrCanceled: a sweep stopped by
// Job.Cancel (not by the caller's context) must not report success.
func TestEngineJobCancelReturnsErrCanceled(t *testing.T) {
	src := newMemSource(6)
	population(src)
	job := NewJob("j", "c", 1, src.Shards())
	cancelOnce := sync.Once{}
	blocking := func(party string, inst instance.Instance) (instance.Status, error) {
		if strings.Contains(inst.ID, "-3-") {
			cancelOnce.Do(job.Cancel)
		}
		return classifyByID(party, inst)
	}
	eng := &Engine{Workers: 1}
	err := eng.Run(context.Background(), job, src, blocking)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run after Job.Cancel = %v, want ErrCanceled", err)
	}
	if v := job.Snapshot(); v.Status != StatusCanceled {
		t.Fatalf("status = %v, want canceled", v.Status)
	}
	// Resume completes and reports success.
	if err := eng.Run(context.Background(), job, src, classifyByID); err != nil {
		t.Fatal(err)
	}
}

// TestRunAsyncClaimsSynchronously: the moment RunAsync returns, a
// resumed job is observable as running (never in its stale terminal
// state) and an immediate Cancel takes effect.
func TestRunAsyncClaimsSynchronously(t *testing.T) {
	src := newMemSource(6)
	want := population(src)
	job := NewJob("j", "c", 1, src.Shards())
	// Leave the job canceled with nothing swept.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Workers: 2}
	if err := eng.Run(canceled, job, src, classifyByID); !errors.Is(err, context.Canceled) {
		t.Fatalf("seed run = %v, want context.Canceled", err)
	}

	// Resume asynchronously behind a gate so the sweep cannot finish
	// before we observe the claimed state.
	gate := make(chan struct{})
	gated := func(party string, inst instance.Instance) (instance.Status, error) {
		<-gate
		return classifyByID(party, inst)
	}
	eng.RunAsync(job, src, gated)
	if v := job.Snapshot(); v.Status != StatusRunning {
		t.Fatalf("status right after RunAsync = %v, want running", v.Status)
	}
	close(gate)
	if v, err := job.Wait(context.Background()); err != nil || v.Status != StatusDone || v.Counts != want {
		t.Fatalf("after async resume: %+v err=%v, want done with %+v", v, err, want)
	}
}
