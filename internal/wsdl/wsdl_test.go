package wsdl

import "testing"

func TestOperationSync(t *testing.T) {
	async := Operation{Name: "orderOp", Input: "order"}
	if async.Sync() {
		t.Fatal("input-only operation reported synchronous")
	}
	sync := Operation{Name: "getStatusLOp", Input: "req", Output: "resp"}
	if !sync.Sync() {
		t.Fatal("input+output operation reported asynchronous")
	}
}

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	err := r.AddPortType(PortType{
		Name:  "accBuyer",
		Owner: "A",
		Operations: []Operation{
			{Name: "orderOp", Input: "order"},
			{Name: "getStatusOp", Input: "get_status"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	op, ok := r.Lookup("A", "orderOp")
	if !ok || op.Name != "orderOp" {
		t.Fatalf("Lookup = %v, %v", op, ok)
	}
	if _, ok := r.Lookup("B", "orderOp"); ok {
		t.Fatal("operation leaked to wrong party")
	}
	if _, ok := r.Lookup("A", "nonexistent"); ok {
		t.Fatal("unknown operation found")
	}
}

func TestRegistryDuplicates(t *testing.T) {
	r := NewRegistry()
	pt := PortType{Name: "p", Owner: "A", Operations: []Operation{{Name: "x", Input: "x"}}}
	if err := r.AddPortType(pt); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPortType(pt); err == nil {
		t.Fatal("duplicate port type accepted")
	}
	pt2 := PortType{Name: "p2", Owner: "A", Operations: []Operation{{Name: "x", Input: "x"}}}
	if err := r.AddPortType(pt2); err == nil {
		t.Fatal("duplicate operation accepted")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.AddPortType(PortType{Name: "", Owner: "A"}); err == nil {
		t.Fatal("unnamed port type accepted")
	}
	if err := r.AddPortType(PortType{Name: "x", Owner: ""}); err == nil {
		t.Fatal("ownerless port type accepted")
	}
	if err := r.AddPortType(PortType{Name: "y", Owner: "A", Operations: []Operation{{}}}); err == nil {
		t.Fatal("unnamed operation accepted")
	}
}

func TestAddOperationConvenience(t *testing.T) {
	r := NewRegistry()
	if err := r.AddOperation("L", "getStatusLOp", true); err != nil {
		t.Fatal(err)
	}
	if err := r.AddOperation("L", "terminateLOp", false); err != nil {
		t.Fatal(err)
	}
	if !r.Sync("L", "getStatusLOp") {
		t.Fatal("sync flag lost")
	}
	if r.Sync("L", "terminateLOp") {
		t.Fatal("async operation reported sync")
	}
	if r.Sync("L", "unknownOp") {
		t.Fatal("unknown operation reported sync")
	}
}

func TestPartnerLinkTypes(t *testing.T) {
	r := NewRegistry()
	plt := PartnerLinkType{
		Name:  "accBuyerLT",
		Roles: [2]Role{{Name: "accounting", PortType: "accBuyer"}, {Name: "buyer", PortType: "buyer"}},
	}
	if err := r.AddPartnerLinkType(plt); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPartnerLinkType(plt); err == nil {
		t.Fatal("duplicate partner link type accepted")
	}
	got, ok := r.PartnerLinkTypeByName("accBuyerLT")
	if !ok || got.Roles[0].Name != "accounting" {
		t.Fatalf("PartnerLinkTypeByName = %v, %v", got, ok)
	}
	if err := r.AddPartnerLinkType(PartnerLinkType{}); err == nil {
		t.Fatal("unnamed partner link type accepted")
	}
}

func TestPartiesAndPortTypeNames(t *testing.T) {
	r := NewRegistry()
	_ = r.AddOperation("B", "deliveryOp", false)
	_ = r.AddOperation("A", "orderOp", false)
	parties := r.Parties()
	if len(parties) != 2 || parties[0] != "A" || parties[1] != "B" {
		t.Fatalf("Parties = %v", parties)
	}
	names := r.PortTypeNames()
	if len(names) != 2 {
		t.Fatalf("PortTypeNames = %v", names)
	}
	if _, ok := r.PortTypeByName(names[0]); !ok {
		t.Fatal("PortTypeByName failed for listed name")
	}
}
