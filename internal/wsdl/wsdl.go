// Package wsdl models the slice of WSDL the paper relies on (Sec. 2):
// port types grouping operations, the synchronous/asynchronous
// distinction ("If an operation contains only one single input
// message, it is considered to be asynchronous, otherwise the
// operation is synchronous"), and partner link types associating the
// two roles of a bilateral interaction.
//
// The registry is what BPEL validation and the BPEL→aFSA mapping
// consult to find out which party owns an operation and whether an
// invocation produces one message (asynchronous) or a request/response
// pair (synchronous).
package wsdl

import (
	"fmt"
	"sort"
)

// Operation is one operation of a port type. Input is always present
// (every operation receives a message); an operation with Output set
// is synchronous and answers with a response message.
type Operation struct {
	Name   string
	Input  string // input message name (informational)
	Output string // output message name; "" for asynchronous operations
}

// Sync reports whether the operation is synchronous (request/response).
func (o Operation) Sync() bool { return o.Output != "" }

// PortType groups the operations a party offers.
type PortType struct {
	Name       string
	Owner      string // the party providing these operations
	Operations []Operation
}

// Role is one side of a partner link type.
type Role struct {
	Name     string
	PortType string
}

// PartnerLinkType associates two roles, as the paper's
// partnerLinkType definitions do.
type PartnerLinkType struct {
	Name  string
	Roles [2]Role
}

// Registry resolves (party, operation) pairs. It is the stand-in for
// the WSDL documents the paper's BPEL processes refer to.
type Registry struct {
	portTypes    map[string]PortType // by name
	byPartyOp    map[string]Operation
	partnerLinks map[string]PartnerLinkType
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		portTypes:    map[string]PortType{},
		byPartyOp:    map[string]Operation{},
		partnerLinks: map[string]PartnerLinkType{},
	}
}

func key(party, op string) string { return party + "\x00" + op }

// AddPortType registers pt and all its operations under pt.Owner.
// Re-registering an operation of the same party is an error.
func (r *Registry) AddPortType(pt PortType) error {
	if pt.Name == "" || pt.Owner == "" {
		return fmt.Errorf("wsdl: port type needs name and owner (got %q/%q)", pt.Name, pt.Owner)
	}
	if _, dup := r.portTypes[pt.Name]; dup {
		return fmt.Errorf("wsdl: duplicate port type %q", pt.Name)
	}
	for _, op := range pt.Operations {
		if op.Name == "" {
			return fmt.Errorf("wsdl: port type %q has an unnamed operation", pt.Name)
		}
		if _, dup := r.byPartyOp[key(pt.Owner, op.Name)]; dup {
			return fmt.Errorf("wsdl: duplicate operation %q for party %q", op.Name, pt.Owner)
		}
	}
	r.portTypes[pt.Name] = pt
	for _, op := range pt.Operations {
		r.byPartyOp[key(pt.Owner, op.Name)] = op
	}
	return nil
}

// AddOperation is a convenience that registers a single operation in a
// synthetic port type named "<party>PT_<op>".
func (r *Registry) AddOperation(party, op string, sync bool) error {
	output := ""
	if sync {
		output = op + "Response"
	}
	return r.AddPortType(PortType{
		Name:       party + "PT_" + op,
		Owner:      party,
		Operations: []Operation{{Name: op, Input: op + "Request", Output: output}},
	})
}

// AddPartnerLinkType registers a partner link type.
func (r *Registry) AddPartnerLinkType(plt PartnerLinkType) error {
	if plt.Name == "" {
		return fmt.Errorf("wsdl: partner link type needs a name")
	}
	if _, dup := r.partnerLinks[plt.Name]; dup {
		return fmt.Errorf("wsdl: duplicate partner link type %q", plt.Name)
	}
	r.partnerLinks[plt.Name] = plt
	return nil
}

// Lookup resolves an operation offered by party.
func (r *Registry) Lookup(party, op string) (Operation, bool) {
	o, ok := r.byPartyOp[key(party, op)]
	return o, ok
}

// Sync reports whether (party, op) is registered as synchronous. An
// unknown operation reports false.
func (r *Registry) Sync(party, op string) bool {
	o, ok := r.Lookup(party, op)
	return ok && o.Sync()
}

// PortTypeNames returns the registered port type names, sorted.
func (r *Registry) PortTypeNames() []string {
	names := make([]string, 0, len(r.portTypes))
	for n := range r.portTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PortTypeByName returns a registered port type.
func (r *Registry) PortTypeByName(name string) (PortType, bool) {
	pt, ok := r.portTypes[name]
	return pt, ok
}

// PartnerLinkTypeByName returns a registered partner link type.
func (r *Registry) PartnerLinkTypeByName(name string) (PartnerLinkType, bool) {
	plt, ok := r.partnerLinks[name]
	return plt, ok
}

// Parties returns the sorted list of parties owning any operation.
func (r *Registry) Parties() []string {
	seen := map[string]struct{}{}
	for _, pt := range r.portTypes {
		seen[pt.Owner] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
