// Package ingest is the streaming event path of choreod: a sharded,
// batch-first engine that moves observed conversation messages from
// the API boundary to per-instance apply functions without unbounded
// buffering.
//
// The engine owns nothing but flow control. Events are fanned out over
// per-choreography lanes keyed by hash(party, instance id) — the same
// 64-way FNV-1a partitioning the store uses for instance shards, so
// with the default lane count a lane's batch lands in exactly one
// instance shard. Each lane is drained by exactly one worker
// (worker = lane mod workers), which preserves per-instance (indeed
// per-shard) event order end to end. What a batch *means* is decided
// by the apply callback the owner supplies; the store's callback
// journals the batch and advances live instance state (see
// internal/store).
//
// # Backpressure contract
//
// Queues are bounded in events, per lane. Submit reserves capacity on
// every target lane before enqueueing anything; if any lane cannot
// take its share, every reservation is rolled back and the whole batch
// is rejected with a *BackpressureError carrying a retry-after hint
// scaled by how full the fullest contended lane is. A rejected batch
// has no effect at all — the engine never buffers beyond its bound and
// never applies half a submission's lanes on rejection.
//
// # Delivery contract
//
// Submit blocks until every lane of the batch has been applied (or the
// context ends). A nil return therefore means the apply callback — and
// with the store's callback, the write-ahead log — has seen every
// event. Lanes are independent: if one lane's apply fails, other lanes
// of the same submission may still have been applied; the first error
// is returned. A context cancellation abandons the wait, not the work:
// already-enqueued events are still applied in order.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/label"
)

// Event is one observed message of one running conversation.
type Event struct {
	// Party is the endpoint whose public process the event is checked
	// against; Instance identifies the conversation within the party.
	Party    string
	Instance string
	// Label is the observed message.
	Label label.Label
}

// DefaultLanes matches the store's instance-shard fan-out, so a lane
// batch targets exactly one instance shard.
const DefaultLanes = 64

// DefaultWorkers bounds apply concurrency when Config leaves it zero.
const DefaultWorkers = 4

// DefaultQueueCap is the per-lane queue bound in events.
const DefaultQueueCap = 4096

// ErrBackpressure marks a rejected submission; match with errors.Is
// and extract the retry hint with errors.As on *BackpressureError.
var ErrBackpressure = errors.New("ingest: backpressure")

// ErrClosed marks a submission against a closed engine (or one whose
// events were still queued when the engine shut down).
var ErrClosed = errors.New("ingest: engine closed")

// BackpressureError rejects one whole submission.
type BackpressureError struct {
	// Lane is the lane that could not take its share of the batch.
	Lane int
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("ingest: lane %d full, retry after %s", e.Lane, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrBackpressure) hold.
func (e *BackpressureError) Unwrap() error { return ErrBackpressure }

// Apply consumes one lane's share of a submission, in submission
// order. It runs on an engine worker; at most one Apply is in flight
// per lane at any time.
type Apply func(lane int, events []Event) error

// Config sizes an Engine; zero values take the defaults above.
type Config struct {
	Lanes    int
	Workers  int
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.Lanes <= 0 {
		c.Lanes = DefaultLanes
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.Workers > c.Lanes {
		c.Workers = c.Lanes
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	return c
}

// Stats are cumulative engine counters plus the momentary queue depth.
type Stats struct {
	// Submitted counts events accepted by Submit; Applied counts events
	// handed to the apply callback; Rejected counts events turned away
	// by backpressure (whole batches).
	Submitted, Applied, Rejected uint64
	// Queued is the number of events currently reserved in lane queues.
	Queued int
	// LaneRejects breaks Rejected down by the lane whose overflow
	// rejected the batch (indexed by lane, length Config.Lanes).
	LaneRejects []uint64
}

// task is one lane's share of one submission.
type task struct {
	events []Event
	done   *batchDone
}

// batchDone aggregates per-lane completions back to the submitter.
type batchDone struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

func (b *batchDone) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

type lane struct {
	mu      sync.Mutex
	queued  int // events reserved (queued or being applied)
	rejects uint64
	tasks   []task
}

// Engine fans event submissions out over bounded lanes drained by a
// fixed worker pool. Construct with New, release with Close.
type Engine struct {
	cfg   Config
	apply Apply

	lanes []lane
	wake  []chan struct{} // one per worker, buffered

	// closeMu fences Submit's reserve+enqueue against Close: Close
	// holds the write side while failing queued tasks, so no task can
	// slip in afterwards and strand its submitter.
	closeMu sync.RWMutex
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	submitted, applied, rejected atomic.Uint64
}

// New starts an engine applying lane batches through apply.
func New(cfg Config, apply Apply) *Engine {
	cfg = cfg.withDefaults()
	en := &Engine{
		cfg:   cfg,
		apply: apply,
		lanes: make([]lane, cfg.Lanes),
		wake:  make([]chan struct{}, cfg.Workers),
		stop:  make(chan struct{}),
	}
	for w := range en.wake {
		en.wake[w] = make(chan struct{}, 1)
		en.wg.Add(1)
		go en.worker(w)
	}
	return en
}

// LaneOf returns the lane of one (party, instance) pair — FNV-1a over
// party, a zero byte, and the id, modulo lanes. With lanes = 64 this
// is identical to the store's instance-shard placement.
func LaneOf(party, id string, lanes int) int {
	h := fnv.New32a()
	h.Write([]byte(party))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(lanes))
}

// Submit fans one batch out over its lanes and blocks until every lane
// has been applied. See the package comment for the backpressure and
// delivery contracts.
func (en *Engine) Submit(ctx context.Context, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	// Group by lane, preserving submission order within each lane.
	perLane := map[int][]Event{}
	for _, ev := range events {
		l := LaneOf(ev.Party, ev.Instance, en.cfg.Lanes)
		perLane[l] = append(perLane[l], ev)
	}

	en.closeMu.RLock()
	if en.closed {
		en.closeMu.RUnlock()
		return ErrClosed
	}
	// Reserve capacity on every target lane; on the first overflow,
	// roll everything back and reject the whole batch.
	var reserved []int
	for l, evs := range perLane {
		ln := &en.lanes[l]
		ln.mu.Lock()
		if ln.queued+len(evs) > en.cfg.QueueCap {
			fill := float64(ln.queued) / float64(en.cfg.QueueCap)
			ln.rejects++
			ln.mu.Unlock()
			for _, r := range reserved {
				rl := &en.lanes[r]
				rl.mu.Lock()
				rl.queued -= len(perLane[r])
				rl.mu.Unlock()
			}
			en.closeMu.RUnlock()
			en.rejected.Add(uint64(len(events)))
			return &BackpressureError{Lane: l, RetryAfter: retryAfter(fill)}
		}
		ln.queued += len(evs)
		ln.mu.Unlock()
		reserved = append(reserved, l)
	}
	// Enqueue and wake the owning workers.
	done := &batchDone{}
	for l, evs := range perLane {
		ln := &en.lanes[l]
		done.wg.Add(1)
		ln.mu.Lock()
		ln.tasks = append(ln.tasks, task{events: evs, done: done})
		ln.mu.Unlock()
		select {
		case en.wake[l%en.cfg.Workers] <- struct{}{}:
		default:
		}
	}
	en.closeMu.RUnlock()
	en.submitted.Add(uint64(len(events)))

	waited := make(chan struct{})
	go func() {
		done.wg.Wait()
		close(waited)
	}()
	select {
	case <-waited:
		done.mu.Lock()
		err := done.err
		done.mu.Unlock()
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// The documented bounds of every RetryAfter hint the engine emits:
// clients may rely on a rejection never asking them to wait less than
// MinRetryAfter or longer than MaxRetryAfter (see docs/resilience.md).
const (
	MinRetryAfter = 10 * time.Millisecond
	MaxRetryAfter = 2 * time.Second
)

// retryAfter scales the backoff hint by the fullest contended lane's
// fill fraction — 50ms near empty, up to 500ms when saturated — and
// clamps the result into the documented [MinRetryAfter, MaxRetryAfter]
// band.
func retryAfter(fill float64) time.Duration {
	if fill < 0 {
		fill = 0
	}
	if fill > 1 {
		fill = 1
	}
	d := 50*time.Millisecond + time.Duration(fill*float64(450*time.Millisecond))
	if d < MinRetryAfter {
		d = MinRetryAfter
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return d
}

// worker drains the lanes it owns (lane mod workers == w) in order.
func (en *Engine) worker(w int) {
	defer en.wg.Done()
	for {
		progressed := false
		for l := w; l < en.cfg.Lanes; l += en.cfg.Workers {
			ln := &en.lanes[l]
			ln.mu.Lock()
			tasks := ln.tasks
			ln.tasks = nil
			ln.mu.Unlock()
			for _, t := range tasks {
				err := en.apply(l, t.events)
				ln.mu.Lock()
				ln.queued -= len(t.events)
				ln.mu.Unlock()
				if err != nil {
					t.done.fail(err)
				} else {
					en.applied.Add(uint64(len(t.events)))
				}
				t.done.wg.Done()
				progressed = true
			}
		}
		if progressed {
			continue
		}
		select {
		case <-en.stop:
			en.drainOnStop(w)
			return
		case <-en.wake[w]:
		}
	}
}

// drainOnStop fails whatever is still queued on w's lanes so no
// submitter is left waiting. Close holds closeMu, so nothing new can
// be enqueued concurrently.
func (en *Engine) drainOnStop(w int) {
	for l := w; l < en.cfg.Lanes; l += en.cfg.Workers {
		ln := &en.lanes[l]
		ln.mu.Lock()
		tasks := ln.tasks
		ln.tasks = nil
		for _, t := range tasks {
			ln.queued -= len(t.events)
		}
		ln.mu.Unlock()
		for _, t := range tasks {
			t.done.fail(ErrClosed)
			t.done.wg.Done()
		}
	}
}

// Close stops the workers, failing still-queued submissions with
// ErrClosed, and waits for them to exit. It is idempotent.
func (en *Engine) Close() {
	en.closeMu.Lock()
	if en.closed {
		en.closeMu.Unlock()
		en.wg.Wait()
		return
	}
	en.closed = true
	close(en.stop)
	en.closeMu.Unlock()
	en.wg.Wait()
}

// Stats returns cumulative counters plus the momentary queue depth.
func (en *Engine) Stats() Stats {
	st := Stats{
		Submitted:   en.submitted.Load(),
		Applied:     en.applied.Load(),
		Rejected:    en.rejected.Load(),
		LaneRejects: make([]uint64, len(en.lanes)),
	}
	for i := range en.lanes {
		ln := &en.lanes[i]
		ln.mu.Lock()
		st.Queued += ln.queued
		st.LaneRejects[i] = ln.rejects
		ln.mu.Unlock()
	}
	return st
}
