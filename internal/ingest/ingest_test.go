package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/label"
)

var ctx = context.Background()

func evt(party, id string, n int) Event {
	return Event{Party: party, Instance: id, Label: label.Label(fmt.Sprintf("%s#X#op%d", party, n))}
}

// recorder is an apply callback collecting every event per lane.
type recorder struct {
	mu     sync.Mutex
	byLane map[int][]Event
}

func newRecorder() *recorder { return &recorder{byLane: map[int][]Event{}} }

func (r *recorder) apply(lane int, events []Event) error {
	r.mu.Lock()
	r.byLane[lane] = append(r.byLane[lane], events...)
	r.mu.Unlock()
	return nil
}

func TestLaneOfDeterministicAndInRange(t *testing.T) {
	for lanes := 1; lanes <= 64; lanes *= 4 {
		for i := 0; i < 100; i++ {
			party, id := fmt.Sprintf("P%d", i%7), fmt.Sprintf("inst-%d", i)
			l := LaneOf(party, id, lanes)
			if l < 0 || l >= lanes {
				t.Fatalf("LaneOf(%s,%s,%d) = %d out of range", party, id, lanes, l)
			}
			if again := LaneOf(party, id, lanes); again != l {
				t.Fatalf("LaneOf not deterministic: %d then %d", l, again)
			}
		}
	}
	// The NUL separator keeps ("ab","c") and ("a","bc") distinct inputs.
	if LaneOf("ab", "c", 1<<16) == LaneOf("a", "bc", 1<<16) {
		t.Fatal("LaneOf conflates party/id boundaries")
	}
}

// Sequential submissions must come out in submission order on every
// lane (Submit blocks until applied, so later batches are ordered
// after earlier ones).
func TestSubmitPreservesPerLaneOrder(t *testing.T) {
	rec := newRecorder()
	en := New(Config{Lanes: 8, Workers: 3, QueueCap: 128}, rec.apply)
	defer en.Close()
	var want []Event
	for b := 0; b < 10; b++ {
		var batch []Event
		for i := 0; i < 17; i++ {
			batch = append(batch, evt(fmt.Sprintf("P%d", i%3), fmt.Sprintf("inst-%d", i%5), b*17+i))
		}
		want = append(want, batch...)
		if err := en.Submit(ctx, batch); err != nil {
			t.Fatalf("Submit batch %d: %v", b, err)
		}
	}
	// Reconstruct each lane's expected stream from the submission
	// stream and compare.
	wantByLane := map[int][]Event{}
	for _, ev := range want {
		l := LaneOf(ev.Party, ev.Instance, 8)
		wantByLane[l] = append(wantByLane[l], ev)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for l, wantEvs := range wantByLane {
		got := rec.byLane[l]
		if len(got) != len(wantEvs) {
			t.Fatalf("lane %d: %d events, want %d", l, len(got), len(wantEvs))
		}
		for i := range got {
			if got[i] != wantEvs[i] {
				t.Fatalf("lane %d event %d = %+v, want %+v", l, i, got[i], wantEvs[i])
			}
		}
	}
	st := en.Stats()
	if st.Submitted != uint64(len(want)) || st.Applied != uint64(len(want)) || st.Rejected != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want %d submitted and applied, nothing rejected or queued", st, len(want))
	}
}

// A batch that overflows a lane queue is rejected as a unit with a
// retry hint, and reservations on other lanes are rolled back so the
// engine can accept work again immediately.
func TestBackpressureRejectsWholeBatch(t *testing.T) {
	block, entered := make(chan struct{}), make(chan struct{}, 16)
	en := New(Config{Lanes: 1, Workers: 1, QueueCap: 4}, func(lane int, events []Event) error {
		entered <- struct{}{}
		<-block
		return nil
	})
	defer en.Close()

	first := make(chan error, 1)
	go func() { first <- en.Submit(ctx, []Event{evt("P", "a", 0), evt("P", "a", 1), evt("P", "a", 2)}) }()
	<-entered // the worker holds the 3 reserved events in-flight

	err := en.Submit(ctx, []Event{evt("P", "b", 0), evt("P", "b", 1)})
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("overflowing Submit = %v, want *BackpressureError", err)
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatal("BackpressureError does not unwrap to ErrBackpressure")
	}
	if bp.Lane != 0 {
		t.Fatalf("rejected lane = %d, want 0", bp.Lane)
	}
	if bp.RetryAfter < 50*time.Millisecond || bp.RetryAfter > 500*time.Millisecond {
		t.Fatalf("retry-after hint %s outside [50ms, 500ms]", bp.RetryAfter)
	}
	if st := en.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected counter = %d, want 2", st.Rejected)
	}

	// A fitting batch is still admitted: the rejection rolled back
	// cleanly and only the in-flight reservation remains.
	second := make(chan error, 1)
	go func() { second <- en.Submit(ctx, []Event{evt("P", "c", 0)}) }()
	close(block)
	if err := <-first; err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if st := en.Stats(); st.Applied != 4 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v, want 4 applied, 0 queued", st)
	}
}

// An apply error propagates to the submitter of that batch; lanes are
// independent, so other submissions are unaffected.
func TestApplyErrorPropagates(t *testing.T) {
	boom := errors.New("apply failed")
	en := New(Config{Lanes: 4, Workers: 2, QueueCap: 16}, func(lane int, events []Event) error {
		for _, ev := range events {
			if ev.Instance == "poison" {
				return boom
			}
		}
		return nil
	})
	defer en.Close()
	if err := en.Submit(ctx, []Event{evt("P", "poison", 0)}); !errors.Is(err, boom) {
		t.Fatalf("Submit = %v, want %v", err, boom)
	}
	if err := en.Submit(ctx, []Event{evt("P", "fine", 0)}); err != nil {
		t.Fatalf("Submit after failed batch: %v", err)
	}
}

// A canceled context abandons the wait, not the work: the submission
// is still applied once the worker gets to it.
func TestSubmitContextCancelAbandonsWaitNotWork(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 2)
	rec := newRecorder()
	en := New(Config{Lanes: 1, Workers: 1, QueueCap: 16}, func(lane int, events []Event) error {
		entered <- struct{}{}
		<-block
		return rec.apply(lane, events)
	})
	defer en.Close()
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- en.Submit(cctx, []Event{evt("P", "a", 0)}) }()
	<-entered
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if en.Stats().Applied == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned submission was never applied")
		}
		time.Sleep(time.Millisecond)
	}
}

// Close completes in-flight applies, then rejects new submissions.
func TestCloseDrainsAndRejects(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	en := New(Config{Lanes: 2, Workers: 1, QueueCap: 16}, func(lane int, events []Event) error {
		entered <- struct{}{}
		<-block
		return nil
	})
	inflight := make(chan error, 1)
	go func() { inflight <- en.Submit(ctx, []Event{evt("P", "a", 0)}) }()
	<-entered
	closed := make(chan struct{})
	go func() { en.Close(); close(closed) }()
	close(block)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight Submit across Close: %v", err)
	}
	<-closed
	if err := en.Submit(ctx, []Event{evt("P", "b", 0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	en.Close() // idempotent
}

// Concurrent submitters over many lanes: everything lands exactly
// once, per-instance order holds within each submitter's stream.
func TestConcurrentSubmitters(t *testing.T) {
	rec := newRecorder()
	en := New(Config{Lanes: 16, Workers: 4, QueueCap: 1024}, rec.apply)
	defer en.Close()
	const goroutines, batches, perBatch = 8, 20, 11
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			party := fmt.Sprintf("G%d", g)
			for b := 0; b < batches; b++ {
				var batch []Event
				for i := 0; i < perBatch; i++ {
					batch = append(batch, evt(party, fmt.Sprintf("i%d", i%3), b*perBatch+i))
				}
				for {
					err := en.Submit(ctx, batch)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBackpressure) {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	rec.mu.Lock()
	perInstance := map[string][]Event{}
	for _, evs := range rec.byLane {
		total += len(evs)
		for _, ev := range evs {
			k := ev.Party + "\x00" + ev.Instance
			perInstance[k] = append(perInstance[k], ev)
		}
	}
	rec.mu.Unlock()
	if want := goroutines * batches * perBatch; total != want {
		t.Fatalf("applied %d events, want %d", total, want)
	}
	// One goroutine's events on one instance must appear in its
	// submission order: Submit blocks per batch, and a lane is drained
	// by one worker, so labels opN per (party, instance) ascend.
	for k, evs := range perInstance {
		last := -1
		for _, ev := range evs {
			var n int
			if _, err := fmt.Sscanf(string(ev.Label), evs[0].Party+"#X#op%d", &n); err != nil {
				t.Fatalf("unparseable label %q", ev.Label)
			}
			if n <= last {
				t.Fatalf("instance %q: event order violated (%d after %d)", k, n, last)
			}
			last = n
		}
	}
}
