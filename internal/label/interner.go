package label

import (
	"sort"
	"sync"
)

// Symbol is a dense interned handle for a Label. Symbols are small
// consecutive integers handed out by an Interner, so automaton
// operators can replace label hashing and string comparison with
// integer indexing into per-symbol slices. Symbol values are only
// meaningful relative to the Interner that produced them.
type Symbol int32

// SymEpsilon is the symbol of the silent label ε in every Interner:
// slot 0 is reserved for ε at construction, so ε-ness is a single
// integer comparison on the hot paths.
const SymEpsilon Symbol = 0

// Interner assigns dense Symbols to Labels. It is append-only — a
// label, once interned, keeps its symbol for the lifetime of the
// interner — and safe for concurrent use. One interner is typically
// shared by every automaton of a choreography snapshot, so symbols
// are comparable across party publics, bilateral views and their
// products without re-hashing any label string.
type Interner struct {
	mu      sync.RWMutex
	byLabel map[Label]Symbol
	labels  []Label
	// ranks caches Ranks(); valid while len(ranks) == len(labels).
	ranks []int32
}

// View is the read-only label slice an Interner hands out: Labels()
// returns the interner's live backing array, shared by every caller
// and by the interner itself, so a write through a View corrupts the
// symbol table under every automaton sharing it. choreolint's
// snapshotimmut pass enforces the read-only contract.
//
//choreolint:frozen
type View []Label

// RankView is the read-only rank slice Ranks() hands out; like View it
// aliases a cached array shared by every caller.
//
//choreolint:frozen
type RankView []int32

// NewInterner returns an interner holding only ε (as SymEpsilon).
func NewInterner() *Interner {
	return &Interner{
		byLabel: map[Label]Symbol{Epsilon: SymEpsilon},
		labels:  []Label{Epsilon},
	}
}

// Intern returns the symbol of l, assigning the next free one on
// first sight. ε always interns to SymEpsilon.
func (in *Interner) Intern(l Label) Symbol {
	in.mu.RLock()
	s, ok := in.byLabel[l]
	in.mu.RUnlock()
	if ok {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.byLabel[l]; ok {
		return s
	}
	s = Symbol(len(in.labels))
	in.labels = append(in.labels, l)
	in.byLabel[l] = s
	return s
}

// Lookup returns the symbol of l without interning it; ok is false
// when l has never been interned.
func (in *Interner) Lookup(l Label) (Symbol, bool) {
	in.mu.RLock()
	s, ok := in.byLabel[l]
	in.mu.RUnlock()
	return s, ok
}

// LabelOf returns the label behind s. It panics on a symbol the
// interner never produced.
func (in *Interner) LabelOf(s Symbol) Label {
	in.mu.RLock()
	l := in.labels[s]
	in.mu.RUnlock()
	return l
}

// Len returns the number of interned labels, ε included. Symbols are
// always in [0, Len()).
func (in *Interner) Len() int {
	in.mu.RLock()
	n := len(in.labels)
	in.mu.RUnlock()
	return n
}

// Labels returns a stable read-only view of the interned labels,
// indexed by symbol. The returned slice must not be modified; it stays
// valid while the interner grows (appends never move the prefix a
// caller already holds).
func (in *Interner) Labels() View {
	in.mu.RLock()
	l := in.labels
	in.mu.RUnlock()
	return l
}

// Ranks returns rank[sym] = position of sym's label in the
// lexicographic order of all currently interned labels. The slice is
// cached until the interner grows and must be treated as read-only.
// Ranks are only meaningful relative to each other (rank[s1] <
// rank[s2] iff label(s1) < label(s2)); that relation is stable across
// interner growth even though the absolute values shift, so an
// operator may keep using the slice it fetched.
//
// Concurrency audit (the len(ranks) == len(labels) validity check):
//
//   - Both ranks and labels are only written under the write lock
//     (Intern appends to labels; Ranks installs a freshly built ranks
//     slice), so the two lengths read under either lock are a
//     consistent pair — the check can never observe a torn update.
//   - A recompute never mutates the previously published slice; it
//     builds a new one and swaps the field. A caller holding a stale
//     slice therefore sees stable values forever, and the documented
//     relative-order guarantee keeps those values meaningful.
//   - Equal lengths imply validity: labels is append-only, so
//     len(ranks) == len(labels) means no Intern has completed since
//     the cached ranks were computed over exactly those labels. An
//     Intern completing right after the check (racing reader) is
//     indistinguishable from the reader fetching Ranks first — the
//     caller got a slice that was valid at fetch time, which is all
//     the contract promises.
//
// Pinned by TestRanksConcurrentWithIntern under -race.
func (in *Interner) Ranks() RankView {
	in.mu.RLock()
	if len(in.ranks) == len(in.labels) {
		r := in.ranks
		in.mu.RUnlock()
		return r
	}
	in.mu.RUnlock()
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.ranks) != len(in.labels) {
		order := make([]Symbol, len(in.labels))
		for i := range order {
			order[i] = Symbol(i)
		}
		sort.Slice(order, func(i, j int) bool { return in.labels[order[i]] < in.labels[order[j]] })
		ranks := make([]int32, len(order))
		for i, s := range order {
			ranks[s] = int32(i)
		}
		in.ranks = ranks
	}
	return in.ranks
}

// SymbolMap returns a fresh label→symbol map of the current contents —
// a lock-free lookup table for replay loops that resolve externally
// supplied labels (trace replay, conformance monitoring).
func (in *Interner) SymbolMap() map[Label]Symbol {
	in.mu.RLock()
	m := make(map[Label]Symbol, len(in.byLabel))
	for l, s := range in.byLabel {
		m[l] = s
	}
	in.mu.RUnlock()
	return m
}
