package label

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	labels := []Label{
		MustParse("A#B#order"),
		MustParse("B#A#confirm"),
		MustParse("A#L#deliver"),
	}
	syms := make([]Symbol, len(labels))
	for i, l := range labels {
		syms[i] = in.Intern(l)
	}
	for i, l := range labels {
		if got := in.LabelOf(syms[i]); got != l {
			t.Fatalf("LabelOf(%d) = %q, want %q", syms[i], got, l)
		}
		if s, ok := in.Lookup(l); !ok || s != syms[i] {
			t.Fatalf("Lookup(%q) = (%d,%t), want (%d,true)", l, s, ok, syms[i])
		}
	}
	if in.Len() != len(labels)+1 { // +1 for ε
		t.Fatalf("Len = %d, want %d", in.Len(), len(labels)+1)
	}
	if _, ok := in.Lookup(MustParse("X#Y#never")); ok {
		t.Fatal("Lookup invented a symbol for an unseen label")
	}
}

func TestInternerEpsilon(t *testing.T) {
	in := NewInterner()
	if got := in.Intern(Epsilon); got != SymEpsilon {
		t.Fatalf("Intern(ε) = %d, want %d", got, SymEpsilon)
	}
	if got := in.LabelOf(SymEpsilon); got != Epsilon {
		t.Fatalf("LabelOf(SymEpsilon) = %q, want ε", got)
	}
	if s, ok := in.Lookup(Epsilon); !ok || s != SymEpsilon {
		t.Fatalf("Lookup(ε) = (%d,%t)", s, ok)
	}
	// ε stays at slot 0 no matter what is interned around it.
	in.Intern(MustParse("A#B#x"))
	if got := in.Intern(Epsilon); got != SymEpsilon {
		t.Fatalf("ε moved to symbol %d", got)
	}
}

// Symbols are assigned densely in first-sight order, and re-interning
// a known label never reassigns it — the stability the per-snapshot
// sharing in the store depends on.
func TestInternerStableAssignment(t *testing.T) {
	mk := func() (*Interner, []Symbol) {
		in := NewInterner()
		var syms []Symbol
		for i := 0; i < 10; i++ {
			syms = append(syms, in.Intern(MustParse(fmt.Sprintf("A#B#m%d", i))))
		}
		return in, syms
	}
	in1, syms1 := mk()
	_, syms2 := mk()
	for i := range syms1 {
		if syms1[i] != syms2[i] {
			t.Fatalf("symbol assignment not deterministic: %v vs %v", syms1, syms2)
		}
		if int(syms1[i]) != i+1 { // dense, after ε at 0
			t.Fatalf("symbols not dense: %v", syms1)
		}
	}
	for i := 9; i >= 0; i-- {
		if got := in1.Intern(MustParse(fmt.Sprintf("A#B#m%d", i))); got != syms1[i] {
			t.Fatalf("re-interning m%d moved it: %d → %d", i, syms1[i], got)
		}
	}
}

func TestInternerLabelsView(t *testing.T) {
	in := NewInterner()
	s := in.Intern(MustParse("A#B#x"))
	view := in.Labels()
	if view[s] != MustParse("A#B#x") {
		t.Fatalf("Labels()[%d] = %q", s, view[s])
	}
	// The view taken before later growth keeps serving its prefix.
	in.Intern(MustParse("A#B#y"))
	if view[s] != MustParse("A#B#x") {
		t.Fatal("old Labels() view corrupted by growth")
	}
}

func TestInternerRanks(t *testing.T) {
	in := NewInterner()
	b := in.Intern(MustParse("B#A#x"))
	a := in.Intern(MustParse("A#B#x"))
	r := in.Ranks()
	if len(r) != in.Len() {
		t.Fatalf("Ranks len %d, want %d", len(r), in.Len())
	}
	if !(r[SymEpsilon] < r[a] && r[a] < r[b]) {
		t.Fatalf("ranks out of lexicographic order: ε=%d a=%d b=%d", r[SymEpsilon], r[a], r[b])
	}
	// After growth the relative order still matches the label order.
	c := in.Intern(MustParse("A#A#x"))
	r2 := in.Ranks()
	if !(r2[SymEpsilon] < r2[c] && r2[c] < r2[a] && r2[a] < r2[b]) {
		t.Fatalf("ranks after growth: ε=%d c=%d a=%d b=%d", r2[SymEpsilon], r2[c], r2[a], r2[b])
	}
}

// Concurrent interning of overlapping label sets must agree on one
// symbol per label (run with -race in CI).
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, labels = 8, 64
	results := make([][]Symbol, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]Symbol, labels)
			for i := 0; i < labels; i++ {
				// Workers intern in different orders to force races.
				idx := (i*7 + w*13) % labels
				out[idx] = in.Intern(MustParse(fmt.Sprintf("A#B#m%d", idx)))
				in.Ranks() // exercise the cache rebuild against growth
			}
			results[w] = out
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d disagrees on label %d: %d vs %d", w, i, results[w][i], results[0][i])
			}
		}
	}
	if in.Len() != labels+1 {
		t.Fatalf("Len = %d, want %d", in.Len(), labels+1)
	}
	for i := 0; i < labels; i++ {
		l := MustParse(fmt.Sprintf("A#B#m%d", i))
		if got := in.LabelOf(results[0][i]); got != l {
			t.Fatalf("round trip after concurrency: %q vs %q", got, l)
		}
	}
}

// TestRanksConcurrentWithIntern hammers Ranks from several readers
// while writers keep interning fresh labels (run under -race in CI).
// Every fetched slice must be internally valid for the label prefix
// it was computed over: a bijection onto [0, len), ordering symbols
// exactly as their labels order lexicographically.
func TestRanksConcurrentWithIntern(t *testing.T) {
	in := NewInterner()
	const (
		writers   = 4
		readers   = 4
		perWriter = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				in.Intern(MustParse(fmt.Sprintf("P%d#Q#op%04d", w, i)))
			}
		}(w)
	}
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ranks := in.Ranks()
				// Labels() is append-only: its prefix of len(ranks)
				// entries is exactly the label set ranks was built over.
				all := in.Labels()
				if len(all) < len(ranks) {
					errc <- fmt.Errorf("ranks longer than label table: %d > %d", len(ranks), len(all))
					return
				}
				seen := make([]bool, len(ranks))
				for s, rk := range ranks {
					if rk < 0 || int(rk) >= len(ranks) || seen[rk] {
						errc <- fmt.Errorf("ranks not a bijection: rank[%d] = %d", s, rk)
						return
					}
					seen[rk] = true
				}
				// Spot-check the order relation on a stride of pairs.
				for i := 1; i < len(ranks); i += 7 {
					a, b := Symbol(i-1), Symbol(i)
					if (ranks[a] < ranks[b]) != (all[a] < all[b]) {
						errc <- fmt.Errorf("rank order disagrees with label order at %d/%d", a, b)
						return
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish on their own (observable through the interner
	// size); readers spin until told to stop.
	deadline := time.After(10 * time.Second)
	for in.Len() < writers*perWriter+1 {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("writers stalled at %d labels", in.Len())
		default:
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// One final validation on the settled interner.
	ranks := in.Ranks()
	if len(ranks) != in.Len() {
		t.Fatalf("settled ranks cover %d of %d labels", len(ranks), in.Len())
	}
}
