package label

import (
	"testing"
	"testing/quick"
)

func TestNewAndParts(t *testing.T) {
	l := New("B", "A", "orderOp")
	if got, want := string(l), "B#A#orderOp"; got != want {
		t.Fatalf("New = %q, want %q", got, want)
	}
	if l.Sender() != "B" || l.Receiver() != "A" || l.Op() != "orderOp" {
		t.Fatalf("parts = (%q,%q,%q)", l.Sender(), l.Receiver(), l.Op())
	}
}

func TestMakeErrors(t *testing.T) {
	cases := [][3]string{
		{"", "A", "op"},
		{"B", "", "op"},
		{"B", "A", ""},
		{"B#x", "A", "op"},
		{"B", "A#x", "op"},
		{"B", "A", "op#x"},
	}
	for _, c := range cases {
		if _, err := Make(c[0], c[1], c[2]); err == nil {
			t.Errorf("Make(%q,%q,%q): want error", c[0], c[1], c[2])
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"A#B#msg", false},
		{"", false}, // epsilon
		{"A#B", true},
		{"A#B#m#x", true},
		{"#B#m", true},
	}
	for _, tt := range tests {
		l, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
		if err == nil && string(l) != tt.in {
			t.Errorf("Parse(%q) = %q", tt.in, l)
		}
	}
}

func TestEpsilon(t *testing.T) {
	if !Epsilon.IsEpsilon() {
		t.Fatal("Epsilon.IsEpsilon() = false")
	}
	if Epsilon.Sender() != "" || Epsilon.Receiver() != "" || Epsilon.Op() != "" {
		t.Fatal("epsilon has non-empty parts")
	}
	if Epsilon.Involves("A") {
		t.Fatal("epsilon involves A")
	}
	if Epsilon.String() != "ε" {
		t.Fatalf("Epsilon.String() = %q", Epsilon.String())
	}
	if Epsilon.Reverse() != Epsilon {
		t.Fatal("Reverse(ε) != ε")
	}
}

func TestInvolvesAndBetween(t *testing.T) {
	l := New("A", "L", "deliverOp")
	if !l.Involves("A") || !l.Involves("L") || l.Involves("B") {
		t.Fatalf("Involves wrong for %v", l)
	}
	if !l.Between("A", "L") || !l.Between("L", "A") {
		t.Fatalf("Between wrong for %v", l)
	}
	if l.Between("A", "B") {
		t.Fatalf("Between(A,B) true for %v", l)
	}
	if l.Involves("") {
		t.Fatal("Involves(\"\") = true")
	}
}

func TestReverse(t *testing.T) {
	l := New("A", "L", "get_statusLOp")
	r := l.Reverse()
	if string(r) != "L#A#get_statusLOp" {
		t.Fatalf("Reverse = %q", r)
	}
	if r.Reverse() != l {
		t.Fatal("double Reverse is not identity")
	}
}

func TestSetBasics(t *testing.T) {
	a := New("A", "B", "x")
	b := New("B", "A", "y")
	c := New("A", "L", "z")
	s := NewSet(a, b, Epsilon)
	if len(s) != 2 {
		t.Fatalf("len = %d, want 2 (epsilon ignored)", len(s))
	}
	if !s.Has(a) || !s.Has(b) || s.Has(c) {
		t.Fatal("Has wrong")
	}
	u := s.Union(NewSet(c))
	if len(u) != 3 {
		t.Fatalf("union len = %d", len(u))
	}
	i := u.Intersect(NewSet(a, c))
	if len(i) != 2 || !i.Has(a) || !i.Has(c) {
		t.Fatalf("intersect = %v", i)
	}
}

func TestSetSortedAndParties(t *testing.T) {
	s := NewSet(New("B", "A", "orderOp"), New("A", "B", "deliveryOp"), New("A", "L", "deliverOp"))
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	parties := s.Parties()
	want := []string{"A", "B", "L"}
	if len(parties) != len(want) {
		t.Fatalf("parties = %v", parties)
	}
	for i := range want {
		if parties[i] != want[i] {
			t.Fatalf("parties = %v, want %v", parties, want)
		}
	}
}

// Property: Make then parts round-trips for separator-free parts.
func TestQuickRoundTrip(t *testing.T) {
	f := func(s, r, o string) bool {
		l, err := Make(s, r, o)
		if err != nil {
			return true // malformed inputs are allowed to fail
		}
		return l.Sender() == s && l.Receiver() == r && l.Op() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Reverse is an involution on valid labels.
func TestQuickReverseInvolution(t *testing.T) {
	f := func(s, r, o string) bool {
		l, err := Make(s, r, o)
		if err != nil {
			return true
		}
		return l.Reverse().Reverse() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
