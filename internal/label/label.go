// Package label models the message labels of annotated Finite State
// Automata as used in "On the Controlled Evolution of Process
// Choreographies" (Rinderle, Wombacher, Reichert; ICDE 2006).
//
// A label has the textual form
//
//	Sender#Receiver#operation
//
// meaning party Sender sends a message invoking operation at party
// Receiver (paper Sec. 3.2: "a label A#B#msg indicates that party A
// sends message msg to party B"). The empty label is the silent move
// ε produced by view generation (Sec. 3.4).
package label

import (
	"fmt"
	"sort"
	"strings"
)

// Sep separates the sender, receiver and operation parts of a label.
const Sep = "#"

// Label is a message label of the form "Sender#Receiver#op", or the
// empty string for the silent label ε.
type Label string

// Epsilon is the silent label produced by relabeling transitions that
// do not involve the viewing party (paper Sec. 3.4).
const Epsilon Label = ""

// New builds a label from its three parts. It panics if any part is
// empty or contains the separator; labels built programmatically are
// expected to be well formed (use Parse for untrusted input).
func New(sender, receiver, op string) Label {
	l, err := Make(sender, receiver, op)
	if err != nil {
		panic(err)
	}
	return l
}

// Make builds a label from its three parts, reporting malformed parts
// as an error.
func Make(sender, receiver, op string) (Label, error) {
	for _, part := range [3]string{sender, receiver, op} {
		if part == "" {
			return Epsilon, fmt.Errorf("label: empty part in (%q,%q,%q)", sender, receiver, op)
		}
		if strings.Contains(part, Sep) {
			return Epsilon, fmt.Errorf("label: part %q contains separator %q", part, Sep)
		}
	}
	return Label(sender + Sep + receiver + Sep + op), nil
}

// Parse validates a textual label. The empty string parses to Epsilon.
func Parse(s string) (Label, error) {
	if s == "" {
		return Epsilon, nil
	}
	parts := strings.Split(s, Sep)
	if len(parts) != 3 {
		return Epsilon, fmt.Errorf("label: %q does not have form Sender#Receiver#op", s)
	}
	return Make(parts[0], parts[1], parts[2])
}

// MustParse is Parse that panics on malformed input; intended for
// fixtures and tests.
func MustParse(s string) Label {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// IsEpsilon reports whether l is the silent label.
func (l Label) IsEpsilon() bool { return l == Epsilon }

// Valid reports whether l is either ε or a well-formed three-part label.
func (l Label) Valid() bool {
	_, err := Parse(string(l))
	return err == nil
}

// part returns the i-th of the (up to) three label parts without
// allocating: the accessors run inside view generation and snapshot
// alphabet scans, so they must not split into fresh slices.
func (l Label) part(i int) string {
	if l.IsEpsilon() {
		return ""
	}
	s := string(l)
	a := strings.Index(s, Sep)
	if a < 0 {
		return ""
	}
	b := strings.Index(s[a+1:], Sep)
	if b < 0 {
		return ""
	}
	b += a + 1
	switch i {
	case 0:
		return s[:a]
	case 1:
		return s[a+1 : b]
	default:
		return s[b+1:]
	}
}

// Sender returns the sending party, or "" for ε.
func (l Label) Sender() string { return l.part(0) }

// Receiver returns the receiving party, or "" for ε.
func (l Label) Receiver() string { return l.part(1) }

// Op returns the operation name, or "" for ε.
func (l Label) Op() string { return l.part(2) }

// Involves reports whether party p is the sender or the receiver of l.
// ε involves nobody.
func (l Label) Involves(p string) bool {
	if l.IsEpsilon() || p == "" {
		return false
	}
	return l.Sender() == p || l.Receiver() == p
}

// Between reports whether l is exchanged between parties p and q (in
// either direction).
func (l Label) Between(p, q string) bool {
	return (l.Sender() == p && l.Receiver() == q) || (l.Sender() == q && l.Receiver() == p)
}

// Reverse returns the label with sender and receiver swapped. Used for
// the response part of synchronous operations, which the paper labels
// with the same operation name in the opposite direction (Fig. 8b).
func (l Label) Reverse() Label {
	if l.IsEpsilon() {
		return Epsilon
	}
	return New(l.Receiver(), l.Sender(), l.Op())
}

// String returns the textual form; ε renders as "ε" for display.
func (l Label) String() string {
	if l.IsEpsilon() {
		return "ε"
	}
	return string(l)
}

// Set is a set of labels.
type Set map[Label]struct{}

// NewSet builds a set from the given labels, ignoring ε.
func NewSet(labels ...Label) Set {
	s := make(Set, len(labels))
	for _, l := range labels {
		s.Add(l)
	}
	return s
}

// Add inserts l into the set; ε is ignored (the alphabet of an
// automaton never contains the silent label).
func (s Set) Add(l Label) {
	if !l.IsEpsilon() {
		s[l] = struct{}{}
	}
}

// Has reports membership.
func (s Set) Has(l Label) bool {
	_, ok := s[l]
	return ok
}

// Union returns a new set containing the labels of s and t.
func (s Set) Union(t Set) Set {
	u := make(Set, len(s)+len(t))
	for l := range s {
		u[l] = struct{}{}
	}
	for l := range t {
		u[l] = struct{}{}
	}
	return u
}

// Intersect returns a new set containing the labels in both s and t.
func (s Set) Intersect(t Set) Set {
	u := make(Set)
	for l := range s {
		if t.Has(l) {
			u[l] = struct{}{}
		}
	}
	return u
}

// Sorted returns the labels in lexicographic order.
func (s Set) Sorted() []Label {
	out := make([]Label, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parties returns the sorted set of parties mentioned by any label in s.
func (s Set) Parties() []string {
	seen := map[string]struct{}{}
	for l := range s {
		seen[l.Sender()] = struct{}{}
		seen[l.Receiver()] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		if p != "" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
