package change

import (
	"strings"
	"testing"

	"repro/internal/bpel"
)

// fixture: A sends x, receives y, then loops sending z.
func fixture() *bpel.Process {
	return &bpel.Process{
		Name:  "p",
		Owner: "A",
		Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
			&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
			&bpel.Receive{BlockName: "ry", Partner: "B", Op: "y"},
			&bpel.While{BlockName: "loop", Cond: "n < 3",
				Body: &bpel.Invoke{BlockName: "iz", Partner: "B", Op: "z"}},
		}},
	}
}

func mustApply(t *testing.T, op Operation, p *bpel.Process) *bpel.Process {
	t.Helper()
	out, err := op.Apply(p)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	if err := out.Validate(nil); err != nil {
		t.Fatalf("%s produced invalid process: %v", op, err)
	}
	return out
}

func TestInsertBeforeAndAfter(t *testing.T) {
	p := fixture()
	neu := &bpel.Invoke{BlockName: "new", Partner: "B", Op: "n"}

	out := mustApply(t, Insert{Path: bpel.Path{"Sequence:root", "Receive:ry"}, New: neu}, p)
	seq := out.Body.(*bpel.Sequence)
	if bpel.Element(seq.Children[1]) != "Invoke:new" {
		t.Fatalf("insert before: children = %v", elements(seq.Children))
	}

	out = mustApply(t, Insert{Path: bpel.Path{"Sequence:root", "Receive:ry"}, New: neu, After: true}, p)
	seq = out.Body.(*bpel.Sequence)
	if bpel.Element(seq.Children[2]) != "Invoke:new" {
		t.Fatalf("insert after: children = %v", elements(seq.Children))
	}
	// Original untouched.
	if len(p.Body.(*bpel.Sequence).Children) != 3 {
		t.Fatal("insert mutated the original")
	}
}

func elements(acts []bpel.Activity) []string {
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = bpel.Element(a)
	}
	return out
}

func TestInsertErrors(t *testing.T) {
	p := fixture()
	neu := &bpel.Empty{BlockName: "e"}
	cases := []Operation{
		Insert{Path: bpel.Path{"Sequence:root"}, New: neu},                            // root path
		Insert{Path: bpel.Path{"Sequence:root", "Receive:ghost"}, New: neu},           // missing sibling
		Insert{Path: bpel.Path{"Sequence:root", "Receive:ry"}},                        // no activity
		Insert{Path: bpel.Path{"Sequence:root", "While:loop", "Invoke:iz"}, New: neu}, // parent is While
	}
	for _, op := range cases {
		if _, err := op.Apply(p); err == nil {
			t.Errorf("%s: accepted", op)
		}
	}
}

func TestAppend(t *testing.T) {
	p := fixture()
	out := mustApply(t, Append{Path: bpel.Path{"Sequence:root"}, New: &bpel.Terminate{BlockName: "t"}}, p)
	seq := out.Body.(*bpel.Sequence)
	if bpel.Element(seq.Children[len(seq.Children)-1]) != "Terminate:t" {
		t.Fatalf("append failed: %v", elements(seq.Children))
	}
	if _, err := (Append{Path: bpel.Path{"Sequence:root", "Receive:ry"}, New: &bpel.Empty{}}).Apply(p); err == nil {
		t.Fatal("append to receive accepted")
	}
	if _, err := (Append{Path: bpel.Path{"Sequence:root"}}).Apply(p); err == nil {
		t.Fatal("append without activity accepted")
	}
}

func TestDelete(t *testing.T) {
	p := fixture()
	out := mustApply(t, Delete{Path: bpel.Path{"Sequence:root", "Invoke:ix"}}, p)
	if len(out.Body.(*bpel.Sequence).Children) != 2 {
		t.Fatal("delete did not remove the child")
	}
	if _, err := (Delete{Path: bpel.Path{"Sequence:root", "Invoke:ghost"}}).Apply(p); err == nil {
		t.Fatal("delete of missing path accepted")
	}
}

func TestReplace(t *testing.T) {
	p := fixture()
	out := mustApply(t, Replace{
		Path: bpel.Path{"Sequence:root", "While:loop"},
		New:  &bpel.Invoke{BlockName: "once", Partner: "B", Op: "z"},
	}, p)
	if _, err := out.Find(bpel.Path{"Sequence:root", "Invoke:once"}); err != nil {
		t.Fatalf("replacement missing: %v", err)
	}
	if _, err := (Replace{Path: bpel.Path{"Sequence:root"}}).Apply(p); err == nil {
		t.Fatal("replace without activity accepted")
	}
}

func TestAddPickBranch(t *testing.T) {
	p := &bpel.Process{Name: "p", Owner: "A", Body: &bpel.Pick{BlockName: "pk", Branches: []bpel.OnMessage{
		{Partner: "B", Op: "a", Body: &bpel.Empty{BlockName: "e1"}},
	}}}
	out := mustApply(t, AddPickBranch{
		Path:   bpel.Path{"Pick:pk"},
		Branch: bpel.OnMessage{Partner: "B", Op: "b"},
	}, p)
	pick := out.Body.(*bpel.Pick)
	if len(pick.Branches) != 2 || pick.Branches[1].Op != "b" {
		t.Fatalf("branches = %+v", pick.Branches)
	}
	if pick.Branches[1].Body == nil {
		t.Fatal("nil branch body not defaulted")
	}
	if _, err := (AddPickBranch{Path: bpel.Path{"Pick:pk"}, Branch: bpel.OnMessage{Partner: "B", Op: "c"}}).Apply(fixture()); err == nil {
		t.Fatal("AddPickBranch on non-pick accepted")
	}
}

func TestAddSwitchCase(t *testing.T) {
	p := &bpel.Process{Name: "p", Owner: "A", Body: &bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
		{Cond: "c1", Body: &bpel.Empty{BlockName: "e1"}},
	}}}
	out := mustApply(t, AddSwitchCase{
		Path: bpel.Path{"Switch:sw"},
		Case: bpel.Case{Cond: "c2", Body: &bpel.Invoke{BlockName: "i", Partner: "B", Op: "x"}},
	}, p)
	sw := out.Body.(*bpel.Switch)
	if len(sw.Cases) != 2 || sw.Cases[1].Cond != "c2" {
		t.Fatalf("cases = %+v", sw.Cases)
	}
}

func TestReplaceReceiveWithPick(t *testing.T) {
	p := fixture()
	out := mustApply(t, ReplaceReceiveWithPick{
		Path:      bpel.Path{"Sequence:root", "Receive:ry"},
		BlockName: "y or w",
		Extra:     []bpel.OnMessage{{Partner: "B", Op: "w"}},
	}, p)
	pick, err := out.Find(bpel.Path{"Sequence:root", "Pick:y or w"})
	if err != nil {
		t.Fatal(err)
	}
	branches := pick.(*bpel.Pick).Branches
	if len(branches) != 2 || branches[0].Op != "y" || branches[1].Op != "w" {
		t.Fatalf("branches = %+v", branches)
	}
	// Errors.
	if _, err := (ReplaceReceiveWithPick{Path: bpel.Path{"Sequence:root", "Receive:ry"}}).Apply(p); err == nil {
		t.Fatal("widening without extras accepted")
	}
	if _, err := (ReplaceReceiveWithPick{
		Path:  bpel.Path{"Sequence:root", "Invoke:ix"},
		Extra: []bpel.OnMessage{{Partner: "B", Op: "w"}},
	}).Apply(p); err == nil {
		t.Fatal("widening a non-receive accepted")
	}
}

func TestWrapTailInSwitch(t *testing.T) {
	p := fixture()
	out := mustApply(t, WrapTailInSwitch{
		Path:        bpel.Path{"Sequence:root"},
		FromElement: "Receive:ry",
		SwitchName:  "check",
		CaseName:    "go on",
		Cond:        "ok",
		Else:        &bpel.Terminate{BlockName: "stop"},
	}, p)
	seq := out.Body.(*bpel.Sequence)
	if len(seq.Children) != 2 {
		t.Fatalf("children = %v", elements(seq.Children))
	}
	sw := seq.Children[1].(*bpel.Switch)
	caseSeq := sw.Cases[0].Body.(*bpel.Sequence)
	if len(caseSeq.Children) != 2 {
		t.Fatalf("wrapped tail = %v", elements(caseSeq.Children))
	}
	if sw.Else.Kind() != bpel.KindTerminate {
		t.Fatal("else branch lost")
	}
	// Errors.
	if _, err := (WrapTailInSwitch{Path: bpel.Path{"Sequence:root"}, FromElement: "Receive:ghost", Else: &bpel.Empty{}}).Apply(p); err == nil {
		t.Fatal("missing from-element accepted")
	}
	if _, err := (WrapTailInSwitch{Path: bpel.Path{"Sequence:root"}, FromElement: "Receive:ry"}).Apply(p); err == nil {
		t.Fatal("missing else accepted")
	}
}

func TestSetWhileCond(t *testing.T) {
	p := fixture()
	out := mustApply(t, SetWhileCond{Path: bpel.Path{"Sequence:root", "While:loop"}, Cond: "1 = 1"}, p)
	w, err := out.Find(bpel.Path{"Sequence:root", "While:loop"})
	if err != nil {
		t.Fatal(err)
	}
	if w.(*bpel.While).Cond != "1 = 1" {
		t.Fatal("condition not set")
	}
	if _, err := (SetWhileCond{Path: bpel.Path{"Sequence:root", "Invoke:ix"}, Cond: "x"}).Apply(p); err == nil {
		t.Fatal("SetWhileCond on non-while accepted")
	}
}

func TestComposite(t *testing.T) {
	p := fixture()
	op := Composite{Label: "two deletes", Ops: []Operation{
		Delete{Path: bpel.Path{"Sequence:root", "Invoke:ix"}},
		Delete{Path: bpel.Path{"Sequence:root", "Receive:ry"}},
	}}
	out := mustApply(t, op, p)
	if len(out.Body.(*bpel.Sequence).Children) != 1 {
		t.Fatal("composite did not apply both deletes")
	}
	// A failing step reports its index.
	bad := Composite{Ops: []Operation{
		Delete{Path: bpel.Path{"Sequence:root", "Invoke:ghost"}},
	}}
	if _, err := bad.Apply(p); err == nil || !strings.Contains(err.Error(), "step 0") {
		t.Fatalf("composite error = %v", err)
	}
}

func TestOperationStrings(t *testing.T) {
	ops := []Operation{
		Insert{Path: bpel.Path{"a", "b"}, New: &bpel.Empty{BlockName: "e"}},
		Append{Path: bpel.Path{"a"}, New: &bpel.Empty{BlockName: "e"}},
		Delete{Path: bpel.Path{"a"}},
		Replace{Path: bpel.Path{"a"}, New: &bpel.Empty{BlockName: "e"}},
		AddPickBranch{Path: bpel.Path{"a"}, Branch: bpel.OnMessage{Partner: "B", Op: "x"}},
		AddSwitchCase{Path: bpel.Path{"a"}, Case: bpel.Case{Cond: "c"}},
		ReplaceReceiveWithPick{Path: bpel.Path{"a"}, Extra: []bpel.OnMessage{{Op: "x"}}},
		WrapTailInSwitch{Path: bpel.Path{"a"}, FromElement: "x", SwitchName: "s"},
		SetWhileCond{Path: bpel.Path{"a"}, Cond: "c"},
		Composite{Label: "l"},
		Composite{},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("%T has empty String()", op)
		}
	}
}

func TestShiftWithinSequence(t *testing.T) {
	p := fixture()
	out := mustApply(t, Shift{
		Path:   bpel.Path{"Sequence:root", "Invoke:ix"},
		Anchor: "Receive:ry",
		After:  true,
	}, p)
	got := elements(out.Body.(*bpel.Sequence).Children)
	want := []string{"Receive:ry", "Invoke:ix", "While:loop"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after shift: %v, want %v", got, want)
		}
	}
	// Shift back before the receive restores the original order.
	out2 := mustApply(t, Shift{
		Path:   bpel.Path{"Sequence:root", "Invoke:ix"},
		Anchor: "Receive:ry",
	}, out)
	got2 := elements(out2.Body.(*bpel.Sequence).Children)
	if got2[0] != "Invoke:ix" || got2[1] != "Receive:ry" {
		t.Fatalf("shift back: %v", got2)
	}
}

func TestShiftErrors(t *testing.T) {
	p := fixture()
	cases := []Operation{
		Shift{Path: bpel.Path{"Sequence:root"}, Anchor: "x"},                            // root path
		Shift{Path: bpel.Path{"Sequence:root", "Invoke:ix"}, Anchor: "Invoke:ix"},       // onto itself
		Shift{Path: bpel.Path{"Sequence:root", "Invoke:ghost"}, Anchor: "Receive:ry"},   // missing source
		Shift{Path: bpel.Path{"Sequence:root", "Invoke:ix"}, Anchor: "Receive:ghost"},   // missing anchor
		Shift{Path: bpel.Path{"Sequence:root", "While:loop", "Invoke:iz"}, Anchor: "x"}, // parent is While
	}
	for _, op := range cases {
		if _, err := op.Apply(p); err == nil {
			t.Errorf("%s: accepted", op)
		}
	}
}
