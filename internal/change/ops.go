// Package change implements structural change operations on private
// BPEL processes (paper Sec. 4: "we restrict our considerations to
// structural changes (e.g., the insertion or deletion of process
// activities)"). Operations are applied copy-on-write: Apply returns a
// new process and leaves the input untouched, so a choreography can
// keep the old and new version side by side for classification
// (Defs. 5/6).
//
// Besides the generic primitives (insert, delete, replace, add
// branch), the package provides the composed operations the paper's
// scenarios use: widening a receive into a pick (Fig. 9, Fig. 14),
// wrapping a sequence tail into a data-driven switch (Fig. 11), and
// replacing a loop by a bounded alternative (Figs. 15/18).
package change

import (
	"fmt"

	"repro/internal/bpel"
)

// Operation is a structural change of a private process.
type Operation interface {
	// Apply returns the changed process (the input is not modified).
	Apply(p *bpel.Process) (*bpel.Process, error)
	// String describes the operation for logs and reports.
	String() string
}

// insertPosition distinguishes InsertBefore/InsertAfter.
type insertPosition int

const (
	before insertPosition = iota
	after
)

// Insert places a new activity next to the activity at Path inside its
// enclosing Sequence or Flow.
type Insert struct {
	// Path addresses the sibling activity to insert next to; its
	// parent must be a Sequence or Flow.
	Path bpel.Path
	// New is the activity to insert.
	New bpel.Activity
	// After selects insertion after (true) or before (false) Path.
	After bool
}

// Apply implements Operation.
func (op Insert) Apply(p *bpel.Process) (*bpel.Process, error) {
	if len(op.Path) < 2 {
		return nil, fmt.Errorf("change: insert needs a non-root sibling path, got %s", op.Path)
	}
	if op.New == nil {
		return nil, fmt.Errorf("change: insert without activity")
	}
	parentPath, siblingElem := op.Path.Parent(), op.Path[len(op.Path)-1]
	pos := before
	if op.After {
		pos = after
	}
	return p.Transform(parentPath, func(a bpel.Activity) (bpel.Activity, error) {
		switch t := a.(type) {
		case *bpel.Sequence:
			kids, err := insertSibling(t.Children, siblingElem, op.New, pos)
			if err != nil {
				return nil, err
			}
			t.Children = kids
			return t, nil
		case *bpel.Flow:
			kids, err := insertSibling(t.Branches, siblingElem, op.New, pos)
			if err != nil {
				return nil, err
			}
			t.Branches = kids
			return t, nil
		}
		return nil, fmt.Errorf("change: parent %s is %v, need Sequence or Flow", parentPath, a.Kind())
	})
}

func insertSibling(kids []bpel.Activity, siblingElem string, neu bpel.Activity, pos insertPosition) ([]bpel.Activity, error) {
	for i, k := range kids {
		if bpel.Element(k) == siblingElem {
			idx := i
			if pos == after {
				idx = i + 1
			}
			out := make([]bpel.Activity, 0, len(kids)+1)
			out = append(out, kids[:idx]...)
			out = append(out, neu.Clone())
			out = append(out, kids[idx:]...)
			return out, nil
		}
	}
	return nil, fmt.Errorf("change: sibling %q not found", siblingElem)
}

func (op Insert) String() string {
	where := "before"
	if op.After {
		where = "after"
	}
	return fmt.Sprintf("insert %s %s %s", bpel.Element(op.New), where, op.Path)
}

// Append adds a new activity at the end of the Sequence or Flow at
// Path.
type Append struct {
	Path bpel.Path
	New  bpel.Activity
}

// Apply implements Operation.
func (op Append) Apply(p *bpel.Process) (*bpel.Process, error) {
	if op.New == nil {
		return nil, fmt.Errorf("change: append without activity")
	}
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		switch t := a.(type) {
		case *bpel.Sequence:
			t.Children = append(t.Children, op.New.Clone())
			return t, nil
		case *bpel.Flow:
			t.Branches = append(t.Branches, op.New.Clone())
			return t, nil
		}
		return nil, fmt.Errorf("change: %s is %v, need Sequence or Flow", op.Path, a.Kind())
	})
}

func (op Append) String() string {
	return fmt.Sprintf("append %s to %s", bpel.Element(op.New), op.Path)
}

// Delete removes the activity at Path (from a Sequence or Flow the
// element disappears; a While/Scope body or branch body becomes
// Empty).
type Delete struct {
	Path bpel.Path
}

// Apply implements Operation.
func (op Delete) Apply(p *bpel.Process) (*bpel.Process, error) {
	return p.Transform(op.Path, func(bpel.Activity) (bpel.Activity, error) {
		return nil, nil
	})
}

func (op Delete) String() string { return fmt.Sprintf("delete %s", op.Path) }

// Replace substitutes the activity at Path by New.
type Replace struct {
	Path bpel.Path
	New  bpel.Activity
}

// Apply implements Operation.
func (op Replace) Apply(p *bpel.Process) (*bpel.Process, error) {
	if op.New == nil {
		return nil, fmt.Errorf("change: replace without activity")
	}
	return p.Transform(op.Path, func(bpel.Activity) (bpel.Activity, error) {
		return op.New.Clone(), nil
	})
}

func (op Replace) String() string {
	return fmt.Sprintf("replace %s by %s", op.Path, bpel.Element(op.New))
}

// AddPickBranch adds an onMessage branch to the Pick at Path.
type AddPickBranch struct {
	Path   bpel.Path
	Branch bpel.OnMessage
}

// Apply implements Operation.
func (op AddPickBranch) Apply(p *bpel.Process) (*bpel.Process, error) {
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		pick, ok := a.(*bpel.Pick)
		if !ok {
			return nil, fmt.Errorf("change: %s is %v, need Pick", op.Path, a.Kind())
		}
		branch := op.Branch
		if branch.Body == nil {
			branch.Body = &bpel.Empty{}
		} else {
			branch.Body = branch.Body.Clone()
		}
		pick.Branches = append(pick.Branches, branch)
		return pick, nil
	})
}

func (op AddPickBranch) String() string {
	return fmt.Sprintf("add pick branch %s.%s to %s", op.Branch.Partner, op.Branch.Op, op.Path)
}

// AddSwitchCase adds a case to the Switch at Path.
type AddSwitchCase struct {
	Path bpel.Path
	Case bpel.Case
}

// Apply implements Operation.
func (op AddSwitchCase) Apply(p *bpel.Process) (*bpel.Process, error) {
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		sw, ok := a.(*bpel.Switch)
		if !ok {
			return nil, fmt.Errorf("change: %s is %v, need Switch", op.Path, a.Kind())
		}
		c := op.Case
		if c.Body == nil {
			c.Body = &bpel.Empty{}
		} else {
			c.Body = c.Body.Clone()
		}
		sw.Cases = append(sw.Cases, c)
		return sw, nil
	})
}

func (op AddSwitchCase) String() string {
	return fmt.Sprintf("add switch case [%s] to %s", op.Case.Cond, op.Path)
}

// ReplaceReceiveWithPick widens the Receive at Path into a Pick that
// accepts the original message plus the Extra alternatives — the shape
// of the paper's invariant additive change (Fig. 9: order_2) and of
// the propagated buyer adaptation (Fig. 14: delivery or cancel).
type ReplaceReceiveWithPick struct {
	Path bpel.Path
	// BlockName names the new pick block.
	BlockName string
	// Extra are the additional alternatives.
	Extra []bpel.OnMessage
}

// Apply implements Operation.
func (op ReplaceReceiveWithPick) Apply(p *bpel.Process) (*bpel.Process, error) {
	if len(op.Extra) == 0 {
		return nil, fmt.Errorf("change: pick widening needs at least one extra branch")
	}
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		rcv, ok := a.(*bpel.Receive)
		if !ok {
			return nil, fmt.Errorf("change: %s is %v, need Receive", op.Path, a.Kind())
		}
		name := op.BlockName
		if name == "" {
			name = rcv.BlockName + " alternatives"
		}
		pick := &bpel.Pick{
			BlockName: name,
			Branches: []bpel.OnMessage{
				{Partner: rcv.Partner, Op: rcv.Op, Body: &bpel.Empty{BlockName: rcv.BlockName + " done"}},
			},
		}
		for _, ex := range op.Extra {
			branch := ex
			if branch.Body == nil {
				branch.Body = &bpel.Empty{}
			} else {
				branch.Body = branch.Body.Clone()
			}
			pick.Branches = append(pick.Branches, branch)
		}
		return pick, nil
	})
}

func (op ReplaceReceiveWithPick) String() string {
	return fmt.Sprintf("widen receive %s into pick with %d extra branch(es)", op.Path, len(op.Extra))
}

// WrapTailInSwitch moves the suffix of the Sequence at Path (starting
// at FromElement) into the first case of a new Switch and adds Else as
// the alternative branch — the paper's variant additive change
// (Fig. 11: credit check with a cancel alternative).
type WrapTailInSwitch struct {
	// Path addresses the enclosing Sequence.
	Path bpel.Path
	// FromElement is the element of the first child to move.
	FromElement string
	// SwitchName and CaseName name the new blocks.
	SwitchName string
	CaseName   string
	// Cond is the condition of the wrapped case.
	Cond string
	// Else is the alternative branch.
	Else bpel.Activity
}

// Apply implements Operation.
func (op WrapTailInSwitch) Apply(p *bpel.Process) (*bpel.Process, error) {
	if op.Else == nil {
		return nil, fmt.Errorf("change: wrap-tail needs an else branch")
	}
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		seq, ok := a.(*bpel.Sequence)
		if !ok {
			return nil, fmt.Errorf("change: %s is %v, need Sequence", op.Path, a.Kind())
		}
		split := -1
		for i, k := range seq.Children {
			if bpel.Element(k) == op.FromElement {
				split = i
				break
			}
		}
		if split < 0 {
			return nil, fmt.Errorf("change: element %q not found in %s", op.FromElement, op.Path)
		}
		tail := seq.Children[split:]
		caseName := op.CaseName
		if caseName == "" {
			caseName = op.SwitchName + " main"
		}
		sw := &bpel.Switch{
			BlockName: op.SwitchName,
			Cases: []bpel.Case{{
				Cond: op.Cond,
				Body: &bpel.Sequence{BlockName: caseName, Children: tail},
			}},
			Else: op.Else.Clone(),
		}
		seq.Children = append(append([]bpel.Activity(nil), seq.Children[:split]...), sw)
		return seq, nil
	})
}

func (op WrapTailInSwitch) String() string {
	return fmt.Sprintf("wrap tail of %s from %q into switch %q", op.Path, op.FromElement, op.SwitchName)
}

// SetWhileCond changes the loop condition of the While at Path (e.g.,
// turning an infinite loop into a bounded one).
type SetWhileCond struct {
	Path bpel.Path
	Cond string
}

// Apply implements Operation.
func (op SetWhileCond) Apply(p *bpel.Process) (*bpel.Process, error) {
	return p.Transform(op.Path, func(a bpel.Activity) (bpel.Activity, error) {
		w, ok := a.(*bpel.While)
		if !ok {
			return nil, fmt.Errorf("change: %s is %v, need While", op.Path, a.Kind())
		}
		w.Cond = op.Cond
		return w, nil
	})
}

func (op SetWhileCond) String() string {
	return fmt.Sprintf("set while condition of %s to %q", op.Path, op.Cond)
}

// Shift moves the activity at Path next to another sibling of the
// same Sequence or Flow — the "shift process activities" operation the
// paper mentions alongside insertion and deletion (Sec. 4.1). A shift
// inside a Flow is always neutral for the public process
// (interleaving is order-free); inside a Sequence it typically both
// adds and removes message sequences.
type Shift struct {
	// Path addresses the activity to move.
	Path bpel.Path
	// Anchor is the element of the sibling to move next to.
	Anchor string
	// After selects placement after (true) or before (false) Anchor.
	After bool
}

// Apply implements Operation.
func (op Shift) Apply(p *bpel.Process) (*bpel.Process, error) {
	if len(op.Path) < 2 {
		return nil, fmt.Errorf("change: shift needs a non-root sibling path, got %s", op.Path)
	}
	moved := op.Path[len(op.Path)-1]
	if moved == op.Anchor {
		return nil, fmt.Errorf("change: shift of %q onto itself", moved)
	}
	return p.Transform(op.Path.Parent(), func(a bpel.Activity) (bpel.Activity, error) {
		reorder := func(kids []bpel.Activity) ([]bpel.Activity, error) {
			var target bpel.Activity
			rest := make([]bpel.Activity, 0, len(kids))
			for _, k := range kids {
				if bpel.Element(k) == moved && target == nil {
					target = k
					continue
				}
				rest = append(rest, k)
			}
			if target == nil {
				return nil, fmt.Errorf("change: shift source %q not found", moved)
			}
			pos := before
			if op.After {
				pos = after
			}
			return insertSibling(rest, op.Anchor, target, pos)
		}
		switch t := a.(type) {
		case *bpel.Sequence:
			kids, err := reorder(t.Children)
			if err != nil {
				return nil, err
			}
			t.Children = kids
			return t, nil
		case *bpel.Flow:
			kids, err := reorder(t.Branches)
			if err != nil {
				return nil, err
			}
			t.Branches = kids
			return t, nil
		}
		return nil, fmt.Errorf("change: shift parent %s is %v, need Sequence or Flow", op.Path.Parent(), a.Kind())
	})
}

func (op Shift) String() string {
	where := "before"
	if op.After {
		where = "after"
	}
	return fmt.Sprintf("shift %s %s %s", op.Path, where, op.Anchor)
}

// Composite applies several operations in order.
type Composite struct {
	Label string
	Ops   []Operation
}

// Apply implements Operation.
func (op Composite) Apply(p *bpel.Process) (*bpel.Process, error) {
	cur := p
	for i, sub := range op.Ops {
		next, err := sub.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("change: composite %q step %d (%s): %w", op.Label, i, sub, err)
		}
		cur = next
	}
	return cur, nil
}

func (op Composite) String() string {
	if op.Label != "" {
		return fmt.Sprintf("composite %q (%d ops)", op.Label, len(op.Ops))
	}
	return fmt.Sprintf("composite (%d ops)", len(op.Ops))
}
