package change

import (
	"fmt"
	"strings"

	"repro/internal/bpel"
)

// Spec is the declarative encoding of one structural change operation,
// shared by the /v2/ wire format and the scenario-corpus manifests.
// Kind selects the operation; the other fields parameterize it:
//
//	replaceProcess  XML (whole process; owner must match the party)
//	replace         Path, XML (activity fragment)
//	insert          Path (sibling), XML, After
//	append          Path (sequence/flow), XML
//	delete          Path
//	shift           Path, Anchor, After
//	setWhileCond    Path, Cond
//
// Path addresses an activity as its block elements joined by "/"
// (e.g. "Sequence:accounting process/Receive:order"); activity XML
// uses the same fragment syntax the BPEL process bodies use.
type Spec struct {
	Kind   string `json:"kind"`
	Path   string `json:"path,omitempty"`
	XML    string `json:"xml,omitempty"`
	Cond   string `json:"cond,omitempty"`
	Anchor string `json:"anchor,omitempty"`
	After  bool   `json:"after,omitempty"`
}

// ParsePath splits a "/"-joined spec path into bpel.Path elements.
func ParsePath(s string) bpel.Path {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, "/")
	out := make(bpel.Path, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// activity parses the spec's XML field as an activity fragment.
func (o Spec) activity() (bpel.Activity, error) {
	if o.XML == "" {
		return nil, fmt.Errorf("op %q needs an activity in xml", o.Kind)
	}
	a, err := bpel.UnmarshalActivityXML([]byte(o.XML))
	if err != nil {
		return nil, fmt.Errorf("op %q: parsing activity XML: %v", o.Kind, err)
	}
	return a, nil
}

// Decode translates the spec into a change Operation for party.
func (o Spec) Decode(party string) (Operation, error) {
	switch o.Kind {
	case "replaceProcess":
		p, err := bpel.UnmarshalXML([]byte(o.XML))
		if err != nil {
			return nil, fmt.Errorf("op replaceProcess: %v", err)
		}
		if p.Owner != party {
			return nil, fmt.Errorf("op replaceProcess: process owner %q does not match party %q", p.Owner, party)
		}
		return Replace{Path: nil, New: p.Body}, nil
	case "replace":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return Replace{Path: ParsePath(o.Path), New: a}, nil
	case "insert":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return Insert{Path: ParsePath(o.Path), New: a, After: o.After}, nil
	case "append":
		a, err := o.activity()
		if err != nil {
			return nil, err
		}
		return Append{Path: ParsePath(o.Path), New: a}, nil
	case "delete":
		return Delete{Path: ParsePath(o.Path)}, nil
	case "shift":
		return Shift{Path: ParsePath(o.Path), Anchor: o.Anchor, After: o.After}, nil
	case "setWhileCond":
		return SetWhileCond{Path: ParsePath(o.Path), Cond: o.Cond}, nil
	case "":
		return nil, fmt.Errorf("op without kind")
	}
	return nil, fmt.Errorf("unknown op kind %q", o.Kind)
}

// DecodeSpecs translates a spec list into a change transaction.
func DecodeSpecs(party string, specs []Spec) ([]Operation, error) {
	if party == "" {
		return nil, fmt.Errorf("missing party")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("evolve needs at least one op")
	}
	out := make([]Operation, 0, len(specs))
	for i, o := range specs {
		op, err := o.Decode(party)
		if err != nil {
			return nil, fmt.Errorf("ops[%d]: %v", i, err)
		}
		out = append(out, op)
	}
	return out, nil
}
