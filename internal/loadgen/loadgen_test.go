package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/store"
)

// startServer brings up an in-process choreod.
func startServer(t testing.TB) *httptest.Server {
	st := store.New(store.WithShards(4))
	ts := httptest.NewServer(server.New(st).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenAgainstInProcessServer drives a small budgeted run with
// every op class enabled and checks the report adds up: the budget is
// honored, every enabled class got traffic, and nothing but the
// scripted conflict-free schedule ran (zero errors).
func TestLoadgenAgainstInProcessServer(t *testing.T) {
	ts := startServer(t)
	maxOps := int64(120)
	if testing.Short() {
		maxOps = 60
	}
	rep, err := Run(context.Background(), Config{
		Addr:        ts.URL,
		Concurrency: 4,
		MaxOps:      maxOps,
		Seed:        7,
		Mix:         Mix{Check: 3, Evolve: 2, Commit: 1, Migrate: 1, Ingest: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != maxOps {
		t.Fatalf("ran %d ops, budget was %d", rep.TotalOps, maxOps)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("%d ops errored:\n%s", rep.TotalErrors, rep.Table())
	}
	for _, class := range classNames {
		cs, ok := rep.Classes[class]
		if !ok || cs.Ops == 0 {
			t.Errorf("class %s got no traffic", class)
			continue
		}
		if cs.P50 <= 0 || cs.P99 < cs.P50 {
			t.Errorf("class %s: implausible quantiles p50=%v p99=%v", class, cs.P50, cs.P99)
		}
	}
	if rep.Table() == "" {
		t.Fatal("empty report table")
	}
}

// TestLoadgenReRunReusesChoreographies checks a second run against the
// same server (same prefix) provisions nothing new and still succeeds.
func TestLoadgenReRunReusesChoreographies(t *testing.T) {
	ts := startServer(t)
	cfg := Config{Addr: ts.URL, Concurrency: 2, MaxOps: 20, Seed: 3}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("rerun errors:\n%s", rep.Table())
	}
}

// TestLoadgenSoak is the duration-bounded soak (skipped in -short):
// sustained mixed traffic for a wall-clock slice, no errors.
func TestLoadgenSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	ts := startServer(t)
	rep, err := Run(context.Background(), Config{
		Addr:        ts.URL,
		Concurrency: 4,
		Duration:    2 * time.Second,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("soak ran no ops")
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("soak errors:\n%s", rep.Table())
	}
}

func TestLoadgenConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Addr: "http://x", Seed: 1}); err == nil {
		t.Fatal("no duration and no op budget accepted")
	}
	if _, err := Run(context.Background(), Config{MaxOps: 1}); err == nil {
		t.Fatal("missing address accepted")
	}
}

// BenchmarkLoadgen measures steady-state mixed-traffic throughput
// against an in-process choreod; benchjson records it as the
// "loadgen" run in BENCH_afsa.json.
func BenchmarkLoadgen(b *testing.B) {
	ts := startServer(b)
	// Warm provisioning outside the timer.
	if _, err := Run(context.Background(), Config{Addr: ts.URL, Concurrency: 4, MaxOps: 8, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := Run(context.Background(), Config{
		Addr:        ts.URL,
		Concurrency: 4,
		MaxOps:      int64(b.N),
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.TotalErrors != 0 {
		b.Fatalf("errors under load:\n%s", rep.Table())
	}
	perSec := float64(rep.TotalOps) / rep.Elapsed.Seconds()
	b.ReportMetric(perSec, "mixedops/s")
	if cs, ok := rep.Classes["check"]; ok && cs.Ops > 0 {
		b.ReportMetric(float64(cs.P99.Microseconds()), "check-p99-µs")
	}
	if cs, ok := rep.Classes["ingest"]; ok && cs.Ops > 0 {
		b.ReportMetric(float64(cs.P99.Microseconds()), "ingest-p99-µs")
	}
}

// TestLoadgenFaults runs the self-hosted fault mode: journal faults
// must actually fire, the post-run crash-recovery check must pass, and
// injected failures must show up in the per-class code breakdown
// rather than vanish.
func TestLoadgenFaults(t *testing.T) {
	maxOps := int64(160)
	if testing.Short() {
		maxOps = 80
	}
	rep, err := Run(context.Background(), Config{
		Faults:      0.1,
		Concurrency: 4,
		MaxOps:      maxOps,
		Seed:        11,
		Scenarios:   []string{scenario.Names()[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected == 0 {
		t.Fatal("fault run injected nothing")
	}
	if rep.TotalErrors > 0 {
		var bucketed int64
		for _, cs := range rep.Classes {
			for _, n := range cs.Codes {
				bucketed += n
			}
		}
		if bucketed != rep.TotalErrors {
			t.Fatalf("code breakdown covers %d of %d errors", bucketed, rep.TotalErrors)
		}
	}
	t.Logf("faults=%d errors=%d\n%s", rep.FaultsInjected, rep.TotalErrors, rep.Table())
}

// TestLoadgenFaultsValidation pins the fault-mode config contract.
func TestLoadgenFaultsValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Faults: 1.5, MaxOps: 1}); err == nil {
		t.Fatal("fault rate >= 1 accepted")
	}
	if _, err := Run(context.Background(), Config{Faults: 0.1, Addr: "http://x", MaxOps: 1}); err == nil {
		t.Fatal("fault mode with an external address accepted")
	}
}

// BenchmarkLoadgenFaults measures mixed-traffic throughput with 5%
// injected journal faults: the self-hosted fault mode end to end,
// crash-recovery check included. benchjson records it in the "chaos"
// run; the custom metrics are the error-class mix under faults.
func BenchmarkLoadgenFaults(b *testing.B) {
	rep, err := Run(context.Background(), Config{
		Faults:      0.05,
		Concurrency: 4,
		MaxOps:      int64(b.N),
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.TotalOps)/rep.Elapsed.Seconds(), "mixedops/s")
	b.ReportMetric(float64(rep.FaultsInjected)/float64(b.N), "faults/op")
	b.ReportMetric(float64(rep.TotalErrors)/float64(b.N), "errors/op")
	codes := map[string]int64{}
	for _, cs := range rep.Classes {
		for code, n := range cs.Codes {
			codes[code] += n
		}
	}
	for code, n := range codes {
		b.ReportMetric(float64(n)/float64(b.N), "err-"+code+"/op")
	}
}
