// Package loadgen drives configurable mixed traffic — consistency
// checks, evolution analyses, commit/revert cycles, migration what-ifs
// and event ingestion — against a running choreod server, using the
// scenario corpus as the workload. It reports per-op-class throughput
// and latency quantiles; `choreoctl loadgen` is the CLI front end and
// BenchmarkLoadgen records a steady-state run in BENCH_afsa.json.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
)

// Mix weighs the op classes; a zero weight disables the class. The
// default mix is read-heavy with a steady trickle of mutations,
// roughly the profile of a choreography registry in production.
type Mix struct {
	Check   int
	Evolve  int
	Commit  int
	Migrate int
	Ingest  int
}

// DefaultMix is used when the config leaves every weight zero.
var DefaultMix = Mix{Check: 4, Evolve: 2, Commit: 1, Migrate: 1, Ingest: 4}

func (m Mix) total() int { return m.Check + m.Evolve + m.Commit + m.Migrate + m.Ingest }

// Config parameterizes one load run.
type Config struct {
	// Addr is the base URL of the choreod server.
	Addr string
	// Scenarios are corpus scenario names (empty = whole corpus).
	Scenarios []string
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Duration bounds the run in wall time; MaxOps in total operations.
	// At least one must be set; whichever trips first stops the run.
	Duration time.Duration
	MaxOps   int64
	// Mix weighs the op classes (zero value = DefaultMix).
	Mix Mix
	// Seed makes the op schedule reproducible.
	Seed int64
	// IngestBatch is the events-per-ingest-op batch size (default 16).
	IngestBatch int
	// Prefix namespaces the choreographies the run creates (default
	// "loadgen"); reruns against the same server reuse them.
	Prefix string
}

// ClassStats aggregates one op class.
type ClassStats struct {
	Ops     int64
	Errors  int64
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Mean    time.Duration
	PerSec  float64
	samples []time.Duration
}

// Report is the outcome of a load run.
type Report struct {
	Elapsed     time.Duration
	TotalOps    int64
	TotalErrors int64
	Classes     map[string]*ClassStats
}

// classNames fixes the report ordering.
var classNames = []string{"check", "evolve", "commit", "migrate", "ingest"}

// Table renders the report as an aligned per-class summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %8s %10s %10s %10s %10s %10s\n",
		"class", "ops", "errors", "ops/s", "mean", "p50", "p90", "p99")
	for _, name := range classNames {
		cs, ok := r.Classes[name]
		if !ok || cs.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %10d %8d %10.1f %10s %10s %10s %10s\n",
			name, cs.Ops, cs.Errors, cs.PerSec,
			round(cs.Mean), round(cs.P50), round(cs.P90), round(cs.P99))
	}
	fmt.Fprintf(&b, "total    %10d %8d in %s\n", r.TotalOps, r.TotalErrors, round(r.Elapsed))
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// runner holds the shared state of one load run.
type runner struct {
	cfg    Config
	client *server.Client
	corpus []*scenario.Scenario
	// shared choreography IDs (one per scenario) for read-mostly
	// classes; commit workers get private copies.
	shared []string
	ops    atomic.Int64
}

// Run executes one load run against cfg.Addr: it provisions the
// corpus choreographies (idempotently), spins up the worker pool, and
// aggregates per-class latencies.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: missing server address")
	}
	if cfg.Duration <= 0 && cfg.MaxOps <= 0 {
		return nil, fmt.Errorf("loadgen: need a duration or an op budget")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = 16
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "loadgen"
	}

	r := &runner{cfg: cfg, client: server.NewClient(cfg.Addr, nil)}
	if err := r.loadCorpus(); err != nil {
		return nil, err
	}
	if err := r.provision(ctx); err != nil {
		return nil, err
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	recs := make([]map[string]*ClassStats, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		recs[w] = map[string]*ClassStats{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(ctx, w, recs[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Elapsed: elapsed, Classes: map[string]*ClassStats{}}
	for _, rec := range recs {
		for name, cs := range rec {
			agg, ok := rep.Classes[name]
			if !ok {
				agg = &ClassStats{}
				rep.Classes[name] = agg
			}
			agg.Ops += cs.Ops
			agg.Errors += cs.Errors
			agg.samples = append(agg.samples, cs.samples...)
		}
	}
	for _, cs := range rep.Classes {
		finalize(cs, elapsed)
		rep.TotalOps += cs.Ops
		rep.TotalErrors += cs.Errors
	}
	return rep, nil
}

// finalize computes quantiles and rates from the raw samples.
func finalize(cs *ClassStats, elapsed time.Duration) {
	if len(cs.samples) == 0 {
		return
	}
	sort.Slice(cs.samples, func(i, j int) bool { return cs.samples[i] < cs.samples[j] })
	at := func(q float64) time.Duration {
		return cs.samples[int(q*float64(len(cs.samples)-1))]
	}
	var sum time.Duration
	for _, d := range cs.samples {
		sum += d
	}
	cs.P50, cs.P90, cs.P99 = at(0.50), at(0.90), at(0.99)
	cs.Mean = sum / time.Duration(len(cs.samples))
	if elapsed > 0 {
		cs.PerSec = float64(cs.Ops) / elapsed.Seconds()
	}
	cs.samples = nil
}

func (r *runner) loadCorpus() error {
	names := r.cfg.Scenarios
	if len(names) == 0 {
		names = scenario.Names()
	}
	for _, name := range names {
		sc, err := scenario.Load(name)
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		r.corpus = append(r.corpus, sc)
	}
	if len(r.corpus) == 0 {
		return fmt.Errorf("loadgen: no scenarios")
	}
	return nil
}

// provision creates the run's choreographies: one shared copy of every
// scenario, plus a private copy per commit worker. Existing copies
// (reruns against the same server) are reused.
func (r *runner) provision(ctx context.Context) error {
	type copyOf struct {
		id string
		sc *scenario.Scenario
	}
	var ids []copyOf
	for _, sc := range r.corpus {
		id := r.cfg.Prefix + "-" + sc.Name
		r.shared = append(r.shared, id)
		ids = append(ids, copyOf{id, sc})
	}
	if r.cfg.Mix.Commit > 0 {
		for w := 0; w < r.cfg.Concurrency; w++ {
			sc := r.corpus[w%len(r.corpus)]
			ids = append(ids, copyOf{fmt.Sprintf("%s-%s-w%d", r.cfg.Prefix, sc.Name, w), sc})
		}
	}
	existing := map[string]bool{}
	if known, err := r.client.Choreographies(ctx); err == nil {
		for _, id := range known {
			existing[id] = true
		}
	}
	for _, e := range ids {
		if existing[e.id] {
			continue
		}
		if err := r.client.CreateChoreography(ctx, e.id, e.sc.SyncOps); err != nil {
			return fmt.Errorf("loadgen: creating %s: %w", e.id, err)
		}
		if _, err := r.client.RegisterParties(ctx, e.id, e.sc.Parties, nil); err != nil {
			return fmt.Errorf("loadgen: registering %s: %w", e.id, err)
		}
		for _, p := range e.sc.Parties {
			insts := instancesJSON(e.sc.InstancesOf(p.Owner))
			if len(insts) == 0 {
				continue
			}
			if _, err := r.client.AddInstances(ctx, e.id, p.Owner, insts); err != nil {
				return fmt.Errorf("loadgen: seeding instances of %s: %w", e.id, err)
			}
		}
	}
	return nil
}

func instancesJSON(insts []scenario.Instance) []server.InstanceJSON {
	var out []server.InstanceJSON
	for _, in := range insts {
		j := server.InstanceJSON{ID: in.ID}
		for _, l := range in.Trace {
			j.Trace = append(j.Trace, l.String())
		}
		out = append(out, j)
	}
	return out
}

// worker runs one goroutine's share of the op schedule.
func (r *runner) worker(ctx context.Context, w int, rec map[string]*ClassStats) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
	commitSc := r.corpus[w%len(r.corpus)]
	commitID := fmt.Sprintf("%s-%s-w%d", r.cfg.Prefix, commitSc.Name, w)
	iter := 0
	for {
		if ctx.Err() != nil {
			return
		}
		if r.cfg.MaxOps > 0 && r.ops.Add(1) > r.cfg.MaxOps {
			return
		}
		iter++
		si := rng.Intn(len(r.corpus))
		sc, id := r.corpus[si], r.shared[si]
		class := pickClass(rng, r.cfg.Mix)
		start := time.Now()
		var err error
		switch class {
		case "check":
			_, err = r.client.Check(ctx, id)
		case "evolve":
			err = r.evolveOnly(ctx, rng, sc, id)
		case "commit":
			err = r.commitRevert(ctx, commitSc, commitID)
		case "migrate":
			party := sc.Parties[rng.Intn(len(sc.Parties))].Owner
			_, err = r.client.Migrate(ctx, id, party, "")
		case "ingest":
			err = r.ingestBatch(ctx, sc, id, w, iter)
		}
		if ctx.Err() != nil {
			// Latency of an op cut off by the deadline is noise.
			return
		}
		cs, ok := rec[class]
		if !ok {
			cs = &ClassStats{}
			rec[class] = cs
		}
		cs.Ops++
		if err != nil {
			cs.Errors++
		} else {
			cs.samples = append(cs.samples, time.Since(start))
		}
	}
}

func pickClass(rng *rand.Rand, m Mix) string {
	n := rng.Intn(m.total())
	for _, c := range []struct {
		name   string
		weight int
	}{{"check", m.Check}, {"evolve", m.Evolve}, {"commit", m.Commit}, {"migrate", m.Migrate}, {"ingest", m.Ingest}} {
		if n < c.weight {
			return c.name
		}
		n -= c.weight
	}
	return "check"
}

// opsJSON converts an episode's specs to wire ops.
func opsJSON(ep scenario.Episode) []server.OpJSON {
	out := make([]server.OpJSON, len(ep.Ops))
	for i, sp := range ep.Ops {
		out[i] = server.OpJSON(sp)
	}
	return out
}

// evolveOnly runs a what-if analysis of a random scripted episode
// against the shared choreography without committing it.
func (r *runner) evolveOnly(ctx context.Context, rng *rand.Rand, sc *scenario.Scenario, id string) error {
	ep := sc.Episodes[rng.Intn(len(sc.Episodes))]
	_, err := r.client.EvolveOps(ctx, id, ep.Party, opsJSON(ep))
	return err
}

// commitRevert evolves the worker-private choreography through its
// first scripted episode, commits, and reverts the originator to the
// base process — leaving the copy back at its starting schema (modulo
// version counters) for the next cycle.
func (r *runner) commitRevert(ctx context.Context, sc *scenario.Scenario, id string) error {
	ep := sc.Episodes[0]
	evo, err := r.client.EvolveOps(ctx, id, ep.Party, opsJSON(ep))
	if err != nil {
		return err
	}
	if _, err := r.client.Commit(ctx, evo.Evolution); err != nil {
		return err
	}
	if _, err := r.client.UpdateParty(ctx, id, sc.Party(ep.Party), nil); err != nil {
		return err
	}
	return nil
}

// ingestBatch streams a batch of scripted-trace events under instance
// IDs unique to this (worker, iteration).
func (r *runner) ingestBatch(ctx context.Context, sc *scenario.Scenario, id string, w, iter int) error {
	evs := scenario.Events(sc.Instances, fmt.Sprintf("-w%d-%d", w, iter))
	// Batches always cut at the stream head so every instance keeps a
	// whole, in-order trace prefix.
	if len(evs) > r.cfg.IngestBatch {
		evs = evs[:r.cfg.IngestBatch]
	}
	batch := make([]server.IngestEventJSON, len(evs))
	for i, ev := range evs {
		batch[i] = server.IngestEventJSON{Party: ev.Party, Instance: ev.Instance, Label: string(ev.Label)}
	}
	_, err := r.client.IngestEvents(ctx, id, batch)
	return err
}
