// Package loadgen drives configurable mixed traffic — consistency
// checks, evolution analyses, commit/revert cycles, migration what-ifs
// and event ingestion — against a running choreod server, using the
// scenario corpus as the workload. It reports per-op-class throughput
// and latency quantiles; `choreoctl loadgen` is the CLI front end and
// BenchmarkLoadgen records a steady-state run in BENCH_afsa.json.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/store"
)

// Mix weighs the op classes; a zero weight disables the class. The
// default mix is read-heavy with a steady trickle of mutations,
// roughly the profile of a choreography registry in production.
type Mix struct {
	Check   int
	Evolve  int
	Commit  int
	Migrate int
	Ingest  int
}

// DefaultMix is used when the config leaves every weight zero.
var DefaultMix = Mix{Check: 4, Evolve: 2, Commit: 1, Migrate: 1, Ingest: 4}

func (m Mix) total() int { return m.Check + m.Evolve + m.Commit + m.Migrate + m.Ingest }

// Config parameterizes one load run.
type Config struct {
	// Addr is the base URL of the choreod server.
	Addr string
	// Scenarios are corpus scenario names (empty = whole corpus).
	Scenarios []string
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Duration bounds the run in wall time; MaxOps in total operations.
	// At least one must be set; whichever trips first stops the run.
	Duration time.Duration
	MaxOps   int64
	// Mix weighs the op classes (zero value = DefaultMix).
	Mix Mix
	// Seed makes the op schedule reproducible.
	Seed int64
	// IngestBatch is the events-per-ingest-op batch size (default 16).
	IngestBatch int
	// Prefix namespaces the choreographies the run creates (default
	// "loadgen"); reruns against the same server reuse them.
	Prefix string
	// Faults injects journal write faults at this per-hit probability
	// (0 disables, must stay below 1). A fault run self-hosts an
	// embedded journaled choreod — Addr must be empty — arms the
	// client's retry policy, and after the run reopens the journal
	// kill-style to check the recovered state against the live store:
	// any divergence is acked-write loss and fails the run.
	Faults float64
}

// ClassStats aggregates one op class.
type ClassStats struct {
	Ops    int64
	Errors int64
	// Codes buckets the errors by server envelope code ("transport"
	// for failures that never produced an envelope).
	Codes   map[string]int64
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Mean    time.Duration
	PerSec  float64
	samples []time.Duration
}

// Report is the outcome of a load run.
type Report struct {
	Elapsed     time.Duration
	TotalOps    int64
	TotalErrors int64
	Classes     map[string]*ClassStats
	// FaultsInjected counts journal faults fired during a Faults run.
	FaultsInjected uint64
}

// classNames fixes the report ordering.
var classNames = []string{"check", "evolve", "commit", "migrate", "ingest"}

// Table renders the report as an aligned per-class summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %8s %10s %10s %10s %10s %10s\n",
		"class", "ops", "errors", "ops/s", "mean", "p50", "p90", "p99")
	for _, name := range classNames {
		cs, ok := r.Classes[name]
		if !ok || cs.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %10d %8d %10.1f %10s %10s %10s %10s%s\n",
			name, cs.Ops, cs.Errors, cs.PerSec,
			round(cs.Mean), round(cs.P50), round(cs.P90), round(cs.P99),
			codesColumn(cs.Codes))
	}
	fmt.Fprintf(&b, "total    %10d %8d in %s\n", r.TotalOps, r.TotalErrors, round(r.Elapsed))
	if r.FaultsInjected > 0 {
		fmt.Fprintf(&b, "faults injected: %d (recovery verified)\n", r.FaultsInjected)
	}
	return b.String()
}

// codesColumn renders a class's error-code breakdown, sorted by code
// so reruns diff cleanly.
func codesColumn(codes map[string]int64) string {
	if len(codes) == 0 {
		return ""
	}
	keys := make([]string, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, codes[k])
	}
	return "  " + strings.Join(parts, " ")
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// runner holds the shared state of one load run.
type runner struct {
	cfg    Config
	client *server.Client
	corpus []*scenario.Scenario
	// shared choreography IDs (one per scenario) for read-mostly
	// classes; commit workers get private copies.
	shared []string
	ops    atomic.Int64
}

// Run executes one load run against cfg.Addr: it provisions the
// corpus choreographies (idempotently), spins up the worker pool, and
// aggregates per-class latencies. With Faults set it self-hosts the
// server, injects journal faults during the run, and fails unless the
// journal recovers to exactly the live store's state.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	var emb *embedded
	if cfg.Faults > 0 {
		if cfg.Faults >= 1 {
			return nil, fmt.Errorf("loadgen: fault rate %v out of range (0,1)", cfg.Faults)
		}
		if cfg.Addr != "" {
			return nil, fmt.Errorf("loadgen: fault injection self-hosts the server; drop -addr")
		}
		var err error
		if emb, err = startEmbedded(); err != nil {
			return nil, err
		}
		defer emb.stop()
		cfg.Addr = emb.addr
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: missing server address")
	}
	if cfg.Duration <= 0 && cfg.MaxOps <= 0 {
		return nil, fmt.Errorf("loadgen: need a duration or an op budget")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = 16
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "loadgen"
	}

	r := &runner{cfg: cfg, client: server.NewClient(cfg.Addr, nil)}
	if emb != nil {
		// Fault runs exercise the whole resilience stack: retried
		// idempotent requests against a server whose journal misbehaves.
		r.client.SetRetry(server.Retry{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond})
	}
	if err := r.loadCorpus(); err != nil {
		return nil, err
	}
	if err := r.provision(ctx); err != nil {
		return nil, err
	}
	if emb != nil {
		// Provisioning ran clean; everything after this may fail.
		if err := emb.arm(cfg.Faults, cfg.Seed); err != nil {
			return nil, err
		}
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	recs := make([]map[string]*ClassStats, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		recs[w] = map[string]*ClassStats{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(ctx, w, recs[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Elapsed: elapsed, Classes: map[string]*ClassStats{}}
	for _, rec := range recs {
		for name, cs := range rec {
			agg, ok := rep.Classes[name]
			if !ok {
				agg = &ClassStats{}
				rep.Classes[name] = agg
			}
			agg.Ops += cs.Ops
			agg.Errors += cs.Errors
			for code, n := range cs.Codes {
				if agg.Codes == nil {
					agg.Codes = map[string]int64{}
				}
				agg.Codes[code] += n
			}
			agg.samples = append(agg.samples, cs.samples...)
		}
	}
	for _, cs := range rep.Classes {
		finalize(cs, elapsed)
		rep.TotalOps += cs.Ops
		rep.TotalErrors += cs.Errors
	}
	if emb != nil {
		fires, err := emb.disarm()
		if err != nil {
			return rep, err
		}
		rep.FaultsInjected = fires
		if err := emb.verifyRecovery(ctx); err != nil {
			return rep, fmt.Errorf("loadgen: acked-write loss: %w", err)
		}
	}
	return rep, nil
}

// finalize computes quantiles and rates from the raw samples.
func finalize(cs *ClassStats, elapsed time.Duration) {
	if len(cs.samples) == 0 {
		return
	}
	sort.Slice(cs.samples, func(i, j int) bool { return cs.samples[i] < cs.samples[j] })
	at := func(q float64) time.Duration {
		return cs.samples[int(q*float64(len(cs.samples)-1))]
	}
	var sum time.Duration
	for _, d := range cs.samples {
		sum += d
	}
	cs.P50, cs.P90, cs.P99 = at(0.50), at(0.90), at(0.99)
	cs.Mean = sum / time.Duration(len(cs.samples))
	if elapsed > 0 {
		cs.PerSec = float64(cs.Ops) / elapsed.Seconds()
	}
	cs.samples = nil
}

func (r *runner) loadCorpus() error {
	names := r.cfg.Scenarios
	if len(names) == 0 {
		names = scenario.Names()
	}
	for _, name := range names {
		sc, err := scenario.Load(name)
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		r.corpus = append(r.corpus, sc)
	}
	if len(r.corpus) == 0 {
		return fmt.Errorf("loadgen: no scenarios")
	}
	return nil
}

// provision creates the run's choreographies: one shared copy of every
// scenario, plus a private copy per commit worker. Existing copies
// (reruns against the same server) are reused.
func (r *runner) provision(ctx context.Context) error {
	type copyOf struct {
		id string
		sc *scenario.Scenario
	}
	var ids []copyOf
	for _, sc := range r.corpus {
		id := r.cfg.Prefix + "-" + sc.Name
		r.shared = append(r.shared, id)
		ids = append(ids, copyOf{id, sc})
	}
	if r.cfg.Mix.Commit > 0 {
		for w := 0; w < r.cfg.Concurrency; w++ {
			sc := r.corpus[w%len(r.corpus)]
			ids = append(ids, copyOf{fmt.Sprintf("%s-%s-w%d", r.cfg.Prefix, sc.Name, w), sc})
		}
	}
	existing := map[string]bool{}
	if known, err := r.client.Choreographies(ctx); err == nil {
		for _, id := range known {
			existing[id] = true
		}
	}
	for _, e := range ids {
		if existing[e.id] {
			continue
		}
		if err := r.client.CreateChoreography(ctx, e.id, e.sc.SyncOps); err != nil {
			return fmt.Errorf("loadgen: creating %s: %w", e.id, err)
		}
		if _, err := r.client.RegisterParties(ctx, e.id, e.sc.Parties, nil); err != nil {
			return fmt.Errorf("loadgen: registering %s: %w", e.id, err)
		}
		for _, p := range e.sc.Parties {
			insts := instancesJSON(e.sc.InstancesOf(p.Owner))
			if len(insts) == 0 {
				continue
			}
			if _, err := r.client.AddInstances(ctx, e.id, p.Owner, insts); err != nil {
				return fmt.Errorf("loadgen: seeding instances of %s: %w", e.id, err)
			}
		}
	}
	return nil
}

func instancesJSON(insts []scenario.Instance) []server.InstanceJSON {
	var out []server.InstanceJSON
	for _, in := range insts {
		j := server.InstanceJSON{ID: in.ID}
		for _, l := range in.Trace {
			j.Trace = append(j.Trace, l.String())
		}
		out = append(out, j)
	}
	return out
}

// worker runs one goroutine's share of the op schedule.
func (r *runner) worker(ctx context.Context, w int, rec map[string]*ClassStats) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
	commitSc := r.corpus[w%len(r.corpus)]
	commitID := fmt.Sprintf("%s-%s-w%d", r.cfg.Prefix, commitSc.Name, w)
	iter := 0
	for {
		if ctx.Err() != nil {
			return
		}
		if r.cfg.MaxOps > 0 && r.ops.Add(1) > r.cfg.MaxOps {
			return
		}
		iter++
		si := rng.Intn(len(r.corpus))
		sc, id := r.corpus[si], r.shared[si]
		class := pickClass(rng, r.cfg.Mix)
		start := time.Now()
		var err error
		switch class {
		case "check":
			_, err = r.client.Check(ctx, id)
		case "evolve":
			err = r.evolveOnly(ctx, rng, sc, id)
		case "commit":
			err = r.commitRevert(ctx, commitSc, commitID)
		case "migrate":
			party := sc.Parties[rng.Intn(len(sc.Parties))].Owner
			_, err = r.client.Migrate(ctx, id, party, "")
		case "ingest":
			err = r.ingestBatch(ctx, sc, id, w, iter)
		}
		if ctx.Err() != nil {
			// Latency of an op cut off by the deadline is noise.
			return
		}
		cs, ok := rec[class]
		if !ok {
			cs = &ClassStats{}
			rec[class] = cs
		}
		cs.Ops++
		if err != nil {
			cs.Errors++
			if cs.Codes == nil {
				cs.Codes = map[string]int64{}
			}
			cs.Codes[errCode(err)]++
		} else {
			cs.samples = append(cs.samples, time.Since(start))
		}
	}
}

func pickClass(rng *rand.Rand, m Mix) string {
	n := rng.Intn(m.total())
	for _, c := range []struct {
		name   string
		weight int
	}{{"check", m.Check}, {"evolve", m.Evolve}, {"commit", m.Commit}, {"migrate", m.Migrate}, {"ingest", m.Ingest}} {
		if n < c.weight {
			return c.name
		}
		n -= c.weight
	}
	return "check"
}

// opsJSON converts an episode's specs to wire ops.
func opsJSON(ep scenario.Episode) []server.OpJSON {
	out := make([]server.OpJSON, len(ep.Ops))
	for i, sp := range ep.Ops {
		out[i] = server.OpJSON(sp)
	}
	return out
}

// evolveOnly runs a what-if analysis of a random scripted episode
// against the shared choreography without committing it.
func (r *runner) evolveOnly(ctx context.Context, rng *rand.Rand, sc *scenario.Scenario, id string) error {
	ep := sc.Episodes[rng.Intn(len(sc.Episodes))]
	_, err := r.client.EvolveOps(ctx, id, ep.Party, opsJSON(ep))
	return err
}

// commitRevert evolves the worker-private choreography through its
// first scripted episode, commits, and reverts the originator to the
// base process — leaving the copy back at its starting schema (modulo
// version counters) for the next cycle.
func (r *runner) commitRevert(ctx context.Context, sc *scenario.Scenario, id string) error {
	ep := sc.Episodes[0]
	evo, err := r.client.EvolveOps(ctx, id, ep.Party, opsJSON(ep))
	if err != nil {
		return err
	}
	if _, err := r.client.Commit(ctx, evo.Evolution); err != nil {
		return err
	}
	if _, err := r.client.UpdateParty(ctx, id, sc.Party(ep.Party), nil); err != nil {
		return err
	}
	return nil
}

// ingestBatch streams a batch of scripted-trace events under instance
// IDs unique to this (worker, iteration).
func (r *runner) ingestBatch(ctx context.Context, sc *scenario.Scenario, id string, w, iter int) error {
	evs := scenario.Events(sc.Instances, fmt.Sprintf("-w%d-%d", w, iter))
	// Batches always cut at the stream head so every instance keeps a
	// whole, in-order trace prefix.
	if len(evs) > r.cfg.IngestBatch {
		evs = evs[:r.cfg.IngestBatch]
	}
	batch := make([]server.IngestEventJSON, len(evs))
	for i, ev := range evs {
		batch[i] = server.IngestEventJSON{Party: ev.Party, Instance: ev.Instance, Label: string(ev.Label)}
	}
	_, err := r.client.IngestEvents(ctx, id, batch)
	return err
}

// errCode buckets an op error for the per-class breakdown: the server
// envelope code when there is one, "transport" otherwise.
func errCode(err error) string {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) && apiErr.Code != "" {
		return apiErr.Code
	}
	return "transport"
}

// faultPoints are the journal writes a fault run injects into. The
// WAL-truncate (rollback) point is deliberately left alone: failing
// rollback poisons the store into permanent read-only mode, which is
// degraded_test territory, not steady-state chaos.
var faultPoints = []string{
	fault.PointJournalAppendWrite,
	fault.PointJournalCheckpointWrite,
	fault.PointJournalCheckpointRename,
}

// embedded is the self-hosted choreod a fault run drives: a journaled
// store behind a real HTTP listener, so faults land on the same code
// path a production server runs.
type embedded struct {
	dir   string
	store *store.Store
	http  *http.Server
	addr  string
}

func startEmbedded() (*embedded, error) {
	dir, err := os.MkdirTemp("", "loadgen-faults-")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	st, err := store.Open(store.WithJournal(dir), store.WithShards(4))
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("loadgen: opening embedded store: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	e := &embedded{
		dir:   dir,
		store: st,
		http:  &http.Server{Handler: server.New(st).Handler()},
		addr:  "http://" + ln.Addr().String(),
	}
	go e.http.Serve(ln)
	return e, nil
}

// arm turns on the journal faults at the given per-hit probability,
// seeded off the run seed so reruns replay the same fault schedule.
func (e *embedded) arm(rate float64, seed int64) error {
	for i, pt := range faultPoints {
		if err := fault.Arm(pt, fault.Trigger{Prob: rate, Seed: uint64(seed) + uint64(i) + 1}); err != nil {
			fault.DisarmAll()
			return fmt.Errorf("loadgen: %w", err)
		}
	}
	return nil
}

// disarm turns the faults off and reports how many fired.
func (e *embedded) disarm() (uint64, error) {
	var fires uint64
	for _, pt := range faultPoints {
		n, err := fault.Fires(pt)
		if err != nil {
			fault.DisarmAll()
			return 0, fmt.Errorf("loadgen: %w", err)
		}
		fires += n
	}
	fault.DisarmAll()
	return fires, nil
}

// verifyRecovery reopens the journal directory kill-style — the live
// store is NOT closed first, exactly as after a crash — and checks the
// recovered state against what the live store acked: choreography set,
// snapshot and party versions, and per-party instance counts. Any
// divergence means an acked write was lost.
func (e *embedded) verifyRecovery(ctx context.Context) error {
	recovered, err := store.Open(store.WithJournal(e.dir), store.WithShards(4))
	if err != nil {
		return fmt.Errorf("reopening journal: %w", err)
	}
	defer recovered.Close()

	liveIDs, err := e.store.IDs(ctx)
	if err != nil {
		return err
	}
	recIDs, err := recovered.IDs(ctx)
	if err != nil {
		return err
	}
	sort.Strings(liveIDs)
	sort.Strings(recIDs)
	if fmt.Sprint(liveIDs) != fmt.Sprint(recIDs) {
		return fmt.Errorf("choreography IDs: recovered %v, live %v", recIDs, liveIDs)
	}
	for _, id := range liveIDs {
		live, err := e.store.Snapshot(ctx, id)
		if err != nil {
			return err
		}
		rec, err := recovered.Snapshot(ctx, id)
		if err != nil {
			return fmt.Errorf("%s: missing after recovery: %w", id, err)
		}
		if rec.Version != live.Version {
			return fmt.Errorf("%s: recovered version %d, live %d", id, rec.Version, live.Version)
		}
		for _, name := range live.Parties() {
			lp, _ := live.Party(name)
			rp, ok := rec.Party(name)
			if !ok {
				return fmt.Errorf("%s/%s: missing after recovery", id, name)
			}
			if rp.Version != lp.Version {
				return fmt.Errorf("%s/%s: recovered party version %d, live %d", id, name, rp.Version, lp.Version)
			}
			ln, err := e.store.InstanceRecords(ctx, id, name)
			if err != nil {
				return err
			}
			rn, err := recovered.InstanceRecords(ctx, id, name)
			if err != nil {
				return err
			}
			if len(rn) != len(ln) {
				return fmt.Errorf("%s/%s: recovered %d instances, live %d", id, name, len(rn), len(ln))
			}
		}
	}
	return nil
}

// stop tears the embedded server down; the journal directory is kept
// only if the store degraded (it is then the evidence).
func (e *embedded) stop() {
	fault.DisarmAll()
	e.http.Close()
	degraded := e.store.Degraded() != nil
	e.store.Close()
	if !degraded {
		os.RemoveAll(e.dir)
	}
}
