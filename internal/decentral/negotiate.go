package decentral

import (
	"fmt"
	"sort"

	"repro/internal/afsa"
)

// Adapter is a partner-side callback: given the originator's changed
// view, it returns the partner's adapted public process and whether
// the partner accepts the change. It models the local, autonomous
// adaptation step of Secs. 5.2/5.3 (steps 3–5) inside the protocol —
// in a deployment this is where a process engineer reviews the
// framework's suggestions.
type Adapter func(party string, newView *afsa.Automaton) (adapted *afsa.Automaton, ok bool)

// Vote is one partner's answer during negotiation.
type Vote int

// Votes.
const (
	// VoteAccept: the change is invariant for this partner.
	VoteAccept Vote = iota
	// VoteAdapted: the partner adapted its public process and the
	// pair is consistent again.
	VoteAdapted
	// VoteReject: the partner cannot (or will not) adapt.
	VoteReject
)

func (v Vote) String() string {
	switch v {
	case VoteAccept:
		return "accept"
	case VoteAdapted:
		return "adapted"
	case VoteReject:
		return "reject"
	default:
		return fmt.Sprintf("Vote(%d)", int(v))
	}
}

// Negotiation is the outcome of one decentralized change introduction.
type Negotiation struct {
	Origin string
	// Committed reports whether every partner voted accept/adapted;
	// on abort every partner keeps its old public process.
	Committed bool
	// Votes per partner.
	Votes map[string]Vote
	// Adapted holds the new public processes of partners that
	// adapted (only meaningful when Committed).
	Adapted map[string]*afsa.Automaton
	// Messages and Rounds count the protocol cost: propose + vote per
	// partner, plus the final commit/abort broadcast.
	Messages int
	Rounds   int
}

// NegotiateChange runs the decentralized two-phase introduction of a
// change (the protocol sketched in paper Sec. 6 on top of refs
// [16, 17]):
//
//	phase 1 (propose): the originator sends its changed bilateral
//	view to every affected partner — "the only information which has
//	to be exchanged between partners is about the changes applied to
//	public processes";
//	phase 2 (vote): each partner checks consistency locally; if the
//	change is variant it may adapt via the supplied Adapter and
//	re-check; it answers accept, adapted or reject;
//	phase 3 (decide): the originator commits iff nobody rejected,
//	and broadcasts the decision.
//
// newViews maps partner names to the originator's changed view for
// that pair; partners without an entry are not involved. adapt may be
// nil (no partner adapts; variant changes are then rejected).
func NegotiateChange(origin string, newViews map[string]*afsa.Automaton, partners []Node, adapt Adapter) (*Negotiation, error) {
	neg := &Negotiation{
		Origin:  origin,
		Votes:   map[string]Vote{},
		Adapted: map[string]*afsa.Automaton{},
		Rounds:  3,
	}
	names := make([]string, 0, len(partners))
	byName := map[string]*Node{}
	for i := range partners {
		n := &partners[i]
		if _, involved := newViews[n.Party]; !involved {
			continue
		}
		names = append(names, n.Party)
		byName[n.Party] = n
	}
	sort.Strings(names)

	committed := true
	for _, name := range names {
		n := byName[name]
		view := newViews[name]
		neg.Messages++ // propose
		ok, err := afsa.Consistent(view, n.Public.View(origin))
		if err != nil {
			return nil, fmt.Errorf("decentral: negotiating with %s: %w", name, err)
		}
		switch {
		case ok:
			neg.Votes[name] = VoteAccept
		case adapt != nil:
			adapted, accepted := adapt(name, view)
			if accepted && adapted != nil {
				ok2, err := afsa.Consistent(view, adapted.View(origin))
				if err != nil {
					return nil, fmt.Errorf("decentral: re-checking %s: %w", name, err)
				}
				if ok2 {
					neg.Votes[name] = VoteAdapted
					neg.Adapted[name] = adapted
					break
				}
			}
			neg.Votes[name] = VoteReject
			committed = false
		default:
			neg.Votes[name] = VoteReject
			committed = false
		}
		neg.Messages++ // vote
	}
	neg.Messages += len(names) // commit/abort broadcast
	neg.Committed = committed
	if !committed {
		neg.Adapted = map[string]*afsa.Automaton{}
	}
	return neg, nil
}
