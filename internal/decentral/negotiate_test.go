package decentral

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

// cancelViews computes the changed accounting views for the cancel
// scenario.
func cancelViews(t *testing.T) (map[string]*afsa.Automaton, []Node) {
	t.Helper()
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(changed, paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]*afsa.Automaton{
		paperrepro.Buyer:     res.Automaton.View(paperrepro.Buyer),
		paperrepro.Logistics: res.Automaton.View(paperrepro.Logistics),
	}
	var partners []Node
	for _, n := range paperNodes(t) {
		if n.Party != paperrepro.Accounting {
			partners = append(partners, n)
		}
	}
	return views, partners
}

func TestNegotiateRejectWithoutAdapter(t *testing.T) {
	views, partners := cancelViews(t)
	neg, err := NegotiateChange(paperrepro.Accounting, views, partners, nil)
	if err != nil {
		t.Fatal(err)
	}
	if neg.Committed {
		t.Fatal("variant change committed without adaptation")
	}
	if neg.Votes[paperrepro.Buyer] != VoteReject {
		t.Fatalf("buyer vote = %v, want reject", neg.Votes[paperrepro.Buyer])
	}
	// Logistics is untouched by the cancel option and accepts.
	if neg.Votes[paperrepro.Logistics] != VoteAccept {
		t.Fatalf("logistics vote = %v, want accept", neg.Votes[paperrepro.Logistics])
	}
	if len(neg.Adapted) != 0 {
		t.Fatal("abort must discard adaptations")
	}
	// propose+vote per partner + final broadcast.
	if neg.Messages != 2*2+2 {
		t.Fatalf("messages = %d", neg.Messages)
	}
}

func TestNegotiateCommitWithAdapter(t *testing.T) {
	views, partners := cancelViews(t)
	// The buyer's adapter applies the Fig. 14 adaptation.
	adapted, err := mapping.Derive(paperrepro.Fig14BuyerProcess(), paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	adapter := func(party string, _ *afsa.Automaton) (*afsa.Automaton, bool) {
		if party == paperrepro.Buyer {
			return adapted.Automaton, true
		}
		return nil, false
	}
	neg, err := NegotiateChange(paperrepro.Accounting, views, partners, adapter)
	if err != nil {
		t.Fatal(err)
	}
	if !neg.Committed {
		t.Fatalf("negotiation aborted: votes = %v", neg.Votes)
	}
	if neg.Votes[paperrepro.Buyer] != VoteAdapted {
		t.Fatalf("buyer vote = %v, want adapted", neg.Votes[paperrepro.Buyer])
	}
	if neg.Adapted[paperrepro.Buyer] == nil {
		t.Fatal("adapted public process missing")
	}
	if neg.Rounds != 3 {
		t.Fatalf("rounds = %d", neg.Rounds)
	}
}

func TestNegotiateBadAdapterStillRejects(t *testing.T) {
	views, partners := cancelViews(t)
	// An adapter that returns a useless automaton: the re-check fails
	// and the vote is reject.
	broken := afsa.New("broken")
	broken.AddState()
	adapter := func(party string, _ *afsa.Automaton) (*afsa.Automaton, bool) {
		return broken, true
	}
	neg, err := NegotiateChange(paperrepro.Accounting, views, partners, adapter)
	if err != nil {
		t.Fatal(err)
	}
	if neg.Committed {
		t.Fatal("committed with a broken adaptation")
	}
	if neg.Votes[paperrepro.Buyer] != VoteReject {
		t.Fatalf("buyer vote = %v", neg.Votes[paperrepro.Buyer])
	}
}

func TestNegotiateUninvolvedPartnerSkipped(t *testing.T) {
	views, partners := cancelViews(t)
	delete(views, paperrepro.Logistics)
	neg, err := NegotiateChange(paperrepro.Accounting, views, partners, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, voted := neg.Votes[paperrepro.Logistics]; voted {
		t.Fatal("uninvolved partner voted")
	}
}

func TestVoteStrings(t *testing.T) {
	for _, v := range []Vote{VoteAccept, VoteAdapted, VoteReject, Vote(7)} {
		if v.String() == "" {
			t.Fatal("empty vote string")
		}
	}
}
