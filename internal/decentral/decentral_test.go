package decentral

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func paperNodes(t *testing.T) []Node {
	t.Helper()
	reg := paperrepro.Registry()
	buyer, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return []Node{
		{Party: paperrepro.Buyer, Public: buyer.Automaton},
		{Party: paperrepro.Accounting, Public: acc.Automaton},
		{Party: paperrepro.Logistics, Public: logistics.Automaton},
	}
}

func TestEstablishValidation(t *testing.T) {
	if _, err := Establish(nil); err == nil {
		t.Fatal("empty node set accepted")
	}
	a := afsa.New("a")
	a.AddState()
	if _, err := Establish([]Node{{Party: "A", Public: a}, {Party: "A", Public: a}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := Establish([]Node{{Party: "A", Public: a}, {Party: "B"}}); err == nil {
		t.Fatal("node without automaton accepted")
	}
}

func TestEstablishPaperScenario(t *testing.T) {
	out, err := Establish(paperNodes(t))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consistent {
		t.Fatalf("paper scenario reported inconsistent: %+v", out.Verdicts)
	}
	// Two interacting pairs (B↔A, A↔L); buyer and logistics never talk.
	if len(out.Verdicts) != 2 {
		t.Fatalf("verdicts = %v, want 2 pairs", out.Verdicts)
	}
	// 3 messages per pair (2 view exchanges + 1 verdict).
	if out.Messages != 6 {
		t.Fatalf("messages = %d, want 6", out.Messages)
	}
	if out.Rounds != 2 {
		t.Fatalf("rounds = %d", out.Rounds)
	}
	if out.LocalStates == 0 {
		t.Fatal("no local work recorded")
	}
}

func TestEstablishDetectsInconsistency(t *testing.T) {
	nodes := paperNodes(t)
	// Break accounting: commit the cancel change without propagation.
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(changed, paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if nodes[i].Party == paperrepro.Accounting {
			nodes[i].Public = res.Automaton
		}
	}
	out, err := Establish(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if out.Consistent {
		t.Fatal("broken choreography reported consistent")
	}
	// Exactly the buyer↔accounting pair fails.
	bad := 0
	for _, v := range out.Verdicts {
		if !v.Consistent {
			bad++
			if v.A != paperrepro.Accounting && v.B != paperrepro.Accounting {
				t.Fatalf("wrong failing pair: %+v", v)
			}
		}
	}
	if bad != 1 {
		t.Fatalf("failing pairs = %d, want 1", bad)
	}
}

func TestPropagationRun(t *testing.T) {
	nodes := paperNodes(t)
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(changed, paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	var partners []Node
	for _, n := range nodes {
		if n.Party != paperrepro.Accounting {
			partners = append(partners, n)
		}
	}
	newViews := map[string]*afsa.Automaton{
		paperrepro.Buyer:     res.Automaton.View(paperrepro.Buyer),
		paperrepro.Logistics: res.Automaton.View(paperrepro.Logistics),
	}
	messages, adaptations, err := PropagationRun(paperrepro.Accounting, newViews, partners)
	if err != nil {
		t.Fatal(err)
	}
	if messages != 4 {
		t.Fatalf("messages = %d, want 4 (2 partners × request+verdict)", messages)
	}
	// Only the buyer must adapt (cancel is invisible to logistics).
	if adaptations != 1 {
		t.Fatalf("adaptations = %d, want 1", adaptations)
	}
}
