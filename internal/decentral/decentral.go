// Package decentral implements the decentralized consistency
// establishment named in paper Sec. 6 (refs [16, 17]): the parties of
// a choreography check global consistency without any central
// coordinator — "the only information which has to be exchanged
// between partners is about the changes applied to public processes.
// The difference calculation as well as the necessary adaptations of
// the own public and private processes can be accomplished locally."
//
// The protocol is simulated with explicit message counting so the
// benchmarks can compare it against the centralized alternative
// (building the global product state space, package runtime):
//
//	round 1:  every party sends its bilateral view to each partner
//	          (one message per directed interacting pair);
//	round 2:  the lexicographically smaller party of each pair checks
//	          bilateral consistency locally and broadcasts the verdict.
//
// Global consistency is the conjunction of the bilateral verdicts —
// the paper's criterion. The Outcome reports messages, rounds, local
// work (automata-product states built), allowing the decentralized-
// vs-centralized scaling experiment (EXPERIMENTS.md D-6).
package decentral

import (
	"fmt"
	"sort"

	"repro/internal/afsa"
)

// Node is one participant in the protocol.
type Node struct {
	Party  string
	Public *afsa.Automaton
}

// PairVerdict is the locally computed result for one pair.
type PairVerdict struct {
	A, B       string
	Checker    string // the party that ran the check
	Consistent bool
	// ProductStates is the size of the intersection automaton built
	// locally (the local work measure).
	ProductStates int
}

// Outcome summarizes one protocol run.
type Outcome struct {
	Consistent bool
	Verdicts   []PairVerdict
	// Messages is the number of protocol messages exchanged.
	Messages int
	// Rounds is the number of synchronous protocol rounds.
	Rounds int
	// LocalStates is the summed size of all locally built products —
	// the decentralized counterpart of the global product size.
	LocalStates int
}

// Establish runs the protocol on the given nodes.
func Establish(nodes []Node) (*Outcome, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("decentral: need at least two nodes")
	}
	byName := map[string]*Node{}
	var names []string
	for i := range nodes {
		n := &nodes[i]
		if n.Public == nil {
			return nil, fmt.Errorf("decentral: node %q has no public process", n.Party)
		}
		if _, dup := byName[n.Party]; dup {
			return nil, fmt.Errorf("decentral: duplicate node %q", n.Party)
		}
		byName[n.Party] = n
		names = append(names, n.Party)
	}
	sort.Strings(names)

	out := &Outcome{Consistent: true, Rounds: 2}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := byName[names[i]], byName[names[j]]
			if !interacts(a.Public, b.Public, a.Party, b.Party) {
				continue
			}
			// Round 1: both sides exchange their bilateral views.
			out.Messages += 2
			viewA := a.Public.View(b.Party) // what A exposes to B
			viewB := b.Public.View(a.Party)
			// Round 2: the smaller party checks locally and
			// broadcasts the verdict to the pair (1 message).
			inter := viewA.Intersect(viewB)
			empty, err := inter.IsEmpty()
			if err != nil {
				return nil, fmt.Errorf("decentral: pair %s/%s: %w", a.Party, b.Party, err)
			}
			out.Messages++
			v := PairVerdict{
				A: a.Party, B: b.Party, Checker: a.Party,
				Consistent:    !empty,
				ProductStates: inter.NumStates(),
			}
			out.LocalStates += inter.NumStates()
			out.Verdicts = append(out.Verdicts, v)
			if empty {
				out.Consistent = false
			}
		}
	}
	return out, nil
}

func interacts(a, b *afsa.Automaton, pa, pb string) bool {
	for l := range a.Alphabet() {
		if l.Between(pa, pb) {
			return true
		}
	}
	for l := range b.Alphabet() {
		if l.Between(pa, pb) {
			return true
		}
	}
	return false
}

// PropagationRun simulates the decentralized introduction of a change
// (Sec. 6 final paragraph): the originator sends its changed view to
// every affected partner (one message each); each partner answers with
// accept (still consistent) or reject (adaptation needed). The second
// element counts partners that must adapt.
func PropagationRun(origin string, newViews map[string]*afsa.Automaton, partners []Node) (messages int, adaptations int, err error) {
	for _, p := range partners {
		view, ok := newViews[p.Party]
		if !ok {
			continue
		}
		messages++ // origin -> partner: changed view
		ok2, cerr := afsa.Consistent(view, p.Public.View(origin))
		if cerr != nil {
			return 0, 0, cerr
		}
		messages++ // partner -> origin: verdict
		if !ok2 {
			adaptations++
		}
	}
	return messages, adaptations, nil
}
