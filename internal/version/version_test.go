package version

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func buyerHistory(t *testing.T) (*History, ID) {
	t.Helper()
	reg := paperrepro.Registry()
	v0, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHistory(paperrepro.Buyer, paperrepro.BuyerProcess(), v0.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := mapping.Derive(paperrepro.Fig18BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := h.Add(0, "bound tracking to one round (Sec. 5.3 propagation)",
		paperrepro.Fig18BuyerProcess(), bounded.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	return h, v1
}

func TestHistoryBasics(t *testing.T) {
	h, v1 := buyerHistory(t)
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Latest().ID != v1 {
		t.Fatal("Latest wrong")
	}
	root, err := h.Version(0)
	if err != nil || root.Parent != None || root.Comment != "initial" {
		t.Fatalf("root = %+v, %v", root, err)
	}
	if _, err := h.Version(99); err == nil {
		t.Fatal("bogus version accepted")
	}
	lineage, err := h.Lineage(v1)
	if err != nil || len(lineage) != 2 || lineage[0] != 0 || lineage[1] != v1 {
		t.Fatalf("lineage = %v, %v", lineage, err)
	}
}

func TestHistoryValidation(t *testing.T) {
	if _, err := NewHistory("", nil, nil); err == nil {
		t.Fatal("invalid history accepted")
	}
	h, _ := buyerHistory(t)
	if _, err := h.Add(99, "x", paperrepro.BuyerProcess(), h.Latest().Public); err == nil {
		t.Fatal("bogus parent accepted")
	}
	if _, err := h.Add(0, "x", nil, nil); err == nil {
		t.Fatal("nil version content accepted")
	}
}

func TestBranchingHistory(t *testing.T) {
	h, _ := buyerHistory(t)
	reg := paperrepro.Registry()
	alt, err := mapping.Derive(paperrepro.Fig14BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	// Branch a second child off the root.
	v2, err := h.Add(0, "accept cancel messages (Sec. 5.2 propagation)",
		paperrepro.Fig14BuyerProcess(), alt.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	lineage, err := h.Lineage(v2)
	if err != nil || len(lineage) != 2 || lineage[0] != 0 {
		t.Fatalf("branch lineage = %v", lineage)
	}
}

func TestManagerMigrateAll(t *testing.T) {
	h, v1 := buyerHistory(t)
	m := NewManager(h)

	// Instances running on v0.
	root, _ := h.Version(0)
	instances := instance.SampleInstances(root.Public, 7, 300, 10)
	for _, inst := range instances {
		if err := m.Start(inst, 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.InstanceCount() != 300 {
		t.Fatalf("count = %d", m.InstanceCount())
	}
	if err := m.Start(instances[0], 0); err == nil {
		t.Fatal("duplicate instance accepted")
	}

	out, err := m.MigrateAll(v1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Migrated == 0 {
		t.Fatal("nothing migrated")
	}
	if out.RemainingNonReplayable == 0 {
		t.Fatal("multi-round instances should be blocked")
	}
	// Co-existence: blocked instances stay on v0, migrated on v1.
	if got := len(m.OnVersion(0)); got != out.RemainingNonReplayable+out.RemainingUnviable {
		t.Fatalf("v0 residents = %d, want %d", got, out.RemainingNonReplayable+out.RemainingUnviable)
	}
	if got := len(m.OnVersion(v1)); got != out.Migrated {
		t.Fatalf("v1 residents = %d, want %d", got, out.Migrated)
	}
	if out.PerVersion[0]+out.PerVersion[v1] != 300 {
		t.Fatalf("per-version accounting broken: %v", out.PerVersion)
	}

	// A second run is idempotent for already-migrated instances.
	out2, err := m.MigrateAll(v1)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Migrated != 0 {
		t.Fatalf("second run migrated %d", out2.Migrated)
	}
}

func TestManagerValidation(t *testing.T) {
	h, _ := buyerHistory(t)
	m := NewManager(h)
	if err := m.Start(instance.Instance{ID: "x"}, 42); err == nil {
		t.Fatal("pin to bogus version accepted")
	}
	if _, err := m.MigrateAll(42); err == nil {
		t.Fatal("migrate to bogus version accepted")
	}
}
