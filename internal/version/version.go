// Package version implements the schema-version management the paper
// names as a requirement for long-running choreographies (Sec. 8:
// "The co-existence of different versions of a process choreography is
// a must in this context. For long-running choreographies, in
// addition, change propagation to already running instances is highly
// desirable.").
//
// Each party keeps a linear-or-branching history of process versions
// (private process + derived public process). Running instances are
// pinned to the version they started on; MigrateAll moves every
// instance that satisfies the compliance criterion (package instance)
// to a newer version and leaves the rest co-existing on their old
// versions — the ADEPT-style controlled migration of refs [10, 11, 12]
// lifted to public processes.
package version

import (
	"fmt"
	"sort"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/instance"
)

// ID identifies a version within one party's history.
type ID int

// None marks the absence of a version (the root's parent).
const None ID = -1

// Version is one schema version of a party.
type Version struct {
	ID ID
	// Parent is the version this one was derived from (None for the
	// initial version).
	Parent ID
	// Comment describes the change that produced this version.
	Comment string
	// Private is the BPEL process of this version.
	Private *bpel.Process
	// Public is the derived public process.
	Public *afsa.Automaton
}

// History is the version tree of one party.
type History struct {
	Party    string
	versions []Version
}

// NewHistory starts a history with the initial version (ID 0).
func NewHistory(party string, private *bpel.Process, public *afsa.Automaton) (*History, error) {
	if party == "" || private == nil || public == nil {
		return nil, fmt.Errorf("version: history needs party, private and public process")
	}
	h := &History{Party: party}
	h.versions = append(h.versions, Version{
		ID: 0, Parent: None, Comment: "initial", Private: private.Clone(), Public: public,
	})
	return h, nil
}

// Add appends a new version derived from parent and returns its ID.
func (h *History) Add(parent ID, comment string, private *bpel.Process, public *afsa.Automaton) (ID, error) {
	if _, err := h.Version(parent); err != nil {
		return None, err
	}
	if private == nil || public == nil {
		return None, fmt.Errorf("version: new version needs private and public process")
	}
	id := ID(len(h.versions))
	h.versions = append(h.versions, Version{
		ID: id, Parent: parent, Comment: comment, Private: private.Clone(), Public: public,
	})
	return id, nil
}

// Version returns a version by ID.
func (h *History) Version(id ID) (Version, error) {
	if id < 0 || int(id) >= len(h.versions) {
		return Version{}, fmt.Errorf("version: party %q has no version %d", h.Party, id)
	}
	return h.versions[id], nil
}

// Latest returns the most recently added version.
func (h *History) Latest() Version { return h.versions[len(h.versions)-1] }

// Len returns the number of versions.
func (h *History) Len() int { return len(h.versions) }

// Lineage returns the version IDs from the root to id.
func (h *History) Lineage(id ID) ([]ID, error) {
	var rev []ID
	for id != None {
		v, err := h.Version(id)
		if err != nil {
			return nil, err
		}
		rev = append(rev, v.ID)
		id = v.Parent
	}
	out := make([]ID, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out, nil
}

// PinnedInstance is a running instance bound to a schema version.
type PinnedInstance struct {
	Instance instance.Instance
	Version  ID
}

// Manager tracks one party's history together with its running
// instances.
type Manager struct {
	History   *History
	instances map[string]*PinnedInstance
}

// NewManager wraps a history.
func NewManager(h *History) *Manager {
	return &Manager{History: h, instances: map[string]*PinnedInstance{}}
}

// Start registers a running instance on a version.
func (m *Manager) Start(inst instance.Instance, v ID) error {
	if _, err := m.History.Version(v); err != nil {
		return err
	}
	if _, dup := m.instances[inst.ID]; dup {
		return fmt.Errorf("version: instance %q already registered", inst.ID)
	}
	m.instances[inst.ID] = &PinnedInstance{Instance: inst, Version: v}
	return nil
}

// InstanceCount returns the number of registered instances.
func (m *Manager) InstanceCount() int { return len(m.instances) }

// OnVersion returns the IDs of instances pinned to v, sorted.
func (m *Manager) OnVersion(v ID) []string {
	var out []string
	for id, p := range m.instances {
		if p.Version == v {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// MigrationOutcome summarizes one MigrateAll run.
type MigrationOutcome struct {
	Target ID
	// Migrated instances now run on Target.
	Migrated int
	// Remaining instances stay on their previous versions
	// (co-existence), keyed by reason.
	RemainingNonReplayable int
	RemainingUnviable      int
	// PerVersion counts instances per version after the run.
	PerVersion map[ID]int
}

// MigrateAll attempts to move every instance pinned to a version other
// than target onto target, using the compliance criterion of package
// instance. Non-compliant instances keep running on their old version.
func (m *Manager) MigrateAll(target ID) (*MigrationOutcome, error) {
	tv, err := m.History.Version(target)
	if err != nil {
		return nil, err
	}
	out := &MigrationOutcome{Target: target, PerVersion: map[ID]int{}}
	ids := make([]string, 0, len(m.instances))
	for id := range m.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := m.instances[id]
		if p.Version == target {
			out.PerVersion[target]++
			continue
		}
		st, err := instance.Check(p.Instance, tv.Public)
		if err != nil {
			return nil, fmt.Errorf("version: instance %q: %w", id, err)
		}
		switch st {
		case instance.Migratable:
			p.Version = target
			out.Migrated++
		case instance.NonReplayable:
			out.RemainingNonReplayable++
		case instance.Unviable:
			out.RemainingUnviable++
		}
		out.PerVersion[p.Version]++
	}
	return out, nil
}
