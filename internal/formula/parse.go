package formula

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads the infix notation produced by Formula.String:
//
//	formula := or
//	or      := and ("OR" and)*
//	and     := unary ("AND" unary)*
//	unary   := "NOT" unary | atom
//	atom    := "true" | "false" | variable | "(" formula ")"
//
// Variable names are any run of characters that are not whitespace or
// parentheses and are not the keywords; message labels like
// "B#A#orderOp" therefore parse as single variables. Keywords are
// case-insensitive.
func Parse(input string) (*Formula, error) {
	p := &parser{toks: tokenize(input)}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("formula: trailing input at %q", p.toks[p.pos])
	}
	return f, nil
}

// MustParse is Parse that panics on error; intended for fixtures.
func MustParse(input string) *Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

func tokenize(input string) []string {
	var toks []string
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(input) {
				d := rune(input[j])
				if unicode.IsSpace(d) || d == '(' || d == ')' {
					break
				}
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		}
	}
	return toks
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.toks) {
		return "", false
	}
	return p.toks[p.pos], true
}

func (p *parser) keyword(word string) bool {
	tok, ok := p.peek()
	if ok && strings.EqualFold(tok, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (*Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []*Formula{left}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return Or(parts...), nil
}

func (p *parser) parseAnd() (*Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []*Formula{left}
	for p.keyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return And(parts...), nil
}

func (p *parser) parseUnary() (*Formula, error) {
	if p.keyword("NOT") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (*Formula, error) {
	tok, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("formula: unexpected end of input")
	}
	switch {
	case tok == "(":
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if closing, ok := p.peek(); !ok || closing != ")" {
			return nil, fmt.Errorf("formula: missing closing parenthesis")
		}
		p.pos++
		return f, nil
	case tok == ")":
		return nil, fmt.Errorf("formula: unexpected )")
	case strings.EqualFold(tok, "true"):
		p.pos++
		return True(), nil
	case strings.EqualFold(tok, "false"):
		p.pos++
		return False(), nil
	case strings.EqualFold(tok, "AND"), strings.EqualFold(tok, "OR"), strings.EqualFold(tok, "NOT"):
		return nil, fmt.Errorf("formula: unexpected keyword %q", tok)
	default:
		p.pos++
		return Var(tok), nil
	}
}
