// Package formula implements the propositional annotation formulas of
// Definition 1 in "On the Controlled Evolution of Process
// Choreographies" (ICDE 2006): the constants true and false, variables
// drawn from a message alphabet, negation, conjunction and
// disjunction.
//
// Formulas annotate aFSA states (package afsa) to mark message
// alternatives as mandatory for a trading partner. Values are
// immutable; all constructors perform light normalization (constant
// folding, flattening of nested ∧/∨, deduplication of operands) so
// that structural equality is meaningful for the paper's worked
// examples.
package formula

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the formula node types of Def. 1.
type Kind int

// The node kinds.
const (
	KindTrue Kind = iota
	KindFalse
	KindVar
	KindNot
	KindAnd
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	case KindVar:
		return "var"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Formula is an immutable propositional formula over string variables
// (message labels). The zero value is the constant true.
type Formula struct {
	kind Kind
	name string     // for KindVar
	subs []*Formula // for KindNot (1), KindAnd/KindOr (>=2)
}

var (
	trueF  = &Formula{kind: KindTrue}
	falseF = &Formula{kind: KindFalse}
)

// True returns the constant true.
func True() *Formula { return trueF }

// False returns the constant false.
func False() *Formula { return falseF }

// Var returns the variable named name. Variable names are message
// labels in this codebase but the package does not care.
func Var(name string) *Formula {
	return &Formula{kind: KindVar, name: name}
}

// Not returns the negation of f, folding constants and double
// negation.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KindTrue:
		return falseF
	case KindFalse:
		return trueF
	case KindNot:
		return f.subs[0]
	}
	return &Formula{kind: KindNot, subs: []*Formula{f}}
}

// And returns the conjunction of fs. Nested conjunctions are
// flattened, duplicates removed, true dropped; false dominates. An
// empty conjunction is true.
func And(fs ...*Formula) *Formula { return nary(KindAnd, fs) }

// Or returns the disjunction of fs. Nested disjunctions are flattened,
// duplicates removed, false dropped; true dominates. An empty
// disjunction is false.
func Or(fs ...*Formula) *Formula { return nary(KindOr, fs) }

func nary(kind Kind, fs []*Formula) *Formula {
	neutral, dominant := trueF, falseF
	if kind == KindOr {
		neutral, dominant = falseF, trueF
	}
	flat := make([]*Formula, 0, len(fs))
	seen := make(map[string]struct{}, len(fs))
	var add func(f *Formula) bool // returns false when dominated
	add = func(f *Formula) bool {
		if f == nil {
			return true
		}
		switch {
		case f.kind == dominant.kind:
			return false
		case f.kind == neutral.kind:
			return true
		case f.kind == kind:
			for _, s := range f.subs {
				if !add(s) {
					return false
				}
			}
			return true
		}
		key := f.String()
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		flat = append(flat, f)
		return true
	}
	for _, f := range fs {
		if !add(f) {
			return dominant
		}
	}
	switch len(flat) {
	case 0:
		return neutral
	case 1:
		return flat[0]
	}
	return &Formula{kind: kind, subs: flat}
}

// Kind returns the node kind. A nil Formula is treated as true.
func (f *Formula) Kind() Kind {
	if f == nil {
		return KindTrue
	}
	return f.kind
}

// Name returns the variable name for KindVar nodes and "" otherwise.
func (f *Formula) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Operands returns the sub-formulas (a copy).
func (f *Formula) Operands() []*Formula {
	if f == nil || len(f.subs) == 0 {
		return nil
	}
	out := make([]*Formula, len(f.subs))
	copy(out, f.subs)
	return out
}

// IsTrue reports whether f is the constant true (or nil).
func (f *Formula) IsTrue() bool { return f == nil || f.kind == KindTrue }

// IsFalse reports whether f is the constant false.
func (f *Formula) IsFalse() bool { return f != nil && f.kind == KindFalse }

// Eval evaluates f under the assignment σ.
func (f *Formula) Eval(sigma func(name string) bool) bool {
	if f == nil {
		return true
	}
	switch f.kind {
	case KindTrue:
		return true
	case KindFalse:
		return false
	case KindVar:
		return sigma(f.name)
	case KindNot:
		return !f.subs[0].Eval(sigma)
	case KindAnd:
		for _, s := range f.subs {
			if !s.Eval(sigma) {
				return false
			}
		}
		return true
	case KindOr:
		for _, s := range f.subs {
			if s.Eval(sigma) {
				return true
			}
		}
		return false
	}
	panic("formula: unknown kind " + f.kind.String())
}

// Vars appends the distinct variable names occurring in f to the set.
func (f *Formula) Vars() map[string]struct{} {
	vars := make(map[string]struct{})
	f.collectVars(vars)
	return vars
}

func (f *Formula) collectVars(into map[string]struct{}) {
	if f == nil {
		return
	}
	if f.kind == KindVar {
		into[f.name] = struct{}{}
		return
	}
	for _, s := range f.subs {
		s.collectVars(into)
	}
}

// Positive reports whether f contains no negation over a variable
// (negations of constants fold away at construction, so any KindNot
// node makes f non-positive). The annotated-emptiness fixpoint of
// package afsa requires positive formulas.
func (f *Formula) Positive() bool {
	if f == nil {
		return true
	}
	if f.kind == KindNot {
		return false
	}
	for _, s := range f.subs {
		if !s.Positive() {
			return false
		}
	}
	return true
}

// Substitute returns f with every variable v replaced by repl(v).
// repl returning nil keeps the variable unchanged.
func (f *Formula) Substitute(repl func(name string) *Formula) *Formula {
	if f == nil {
		return trueF
	}
	switch f.kind {
	case KindTrue, KindFalse:
		return f
	case KindVar:
		if r := repl(f.name); r != nil {
			return r
		}
		return f
	case KindNot:
		return Not(f.subs[0].Substitute(repl))
	case KindAnd, KindOr:
		subs := make([]*Formula, len(f.subs))
		for i, s := range f.subs {
			subs[i] = s.Substitute(repl)
		}
		return nary(f.kind, subs)
	}
	panic("formula: unknown kind " + f.kind.String())
}

// String renders f with the paper's infix notation: AND/OR/NOT,
// parenthesizing nested operators. Operands of ∧/∨ are sorted
// textually so equal formulas render identically (canonical form).
func (f *Formula) String() string {
	if f == nil {
		return "true"
	}
	switch f.kind {
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	case KindVar:
		return f.name
	case KindNot:
		return "NOT " + f.subs[0].parenString()
	case KindAnd, KindOr:
		op := " AND "
		if f.kind == KindOr {
			op = " OR "
		}
		parts := make([]string, len(f.subs))
		for i, s := range f.subs {
			parts[i] = s.parenString()
		}
		sort.Strings(parts)
		return strings.Join(parts, op)
	}
	panic("formula: unknown kind " + f.kind.String())
}

func (f *Formula) parenString() string {
	if f == nil {
		return "true"
	}
	switch f.kind {
	case KindAnd, KindOr:
		return "(" + f.String() + ")"
	}
	return f.String()
}

// Equal reports semantic equality by truth-table over the union of the
// two variable sets. Annotation formulas are tiny (a handful of
// variables), so the 2^n check is the simplest correct definition.
func Equal(a, b *Formula) bool {
	vars := a.Vars()
	for v := range b.Vars() {
		vars[v] = struct{}{}
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	if len(names) > 20 {
		// Fall back to canonical string equality for huge formulas;
		// never reached by the constructions in this repository.
		return a.String() == b.String()
	}
	for bits := 0; bits < 1<<uint(len(names)); bits++ {
		sigma := func(name string) bool {
			for i, n := range names {
				if n == name {
					return bits&(1<<uint(i)) != 0
				}
			}
			return false
		}
		if a.Eval(sigma) != b.Eval(sigma) {
			return false
		}
	}
	return true
}
