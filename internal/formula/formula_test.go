package formula

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sigmaFrom(set map[string]bool) func(string) bool {
	return func(name string) bool { return set[name] }
}

func TestConstants(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Fatal("True misbehaves")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Fatal("False misbehaves")
	}
	if !True().Eval(sigmaFrom(nil)) {
		t.Fatal("Eval(true) = false")
	}
	if False().Eval(sigmaFrom(nil)) {
		t.Fatal("Eval(false) = true")
	}
}

func TestNilIsTrue(t *testing.T) {
	var f *Formula
	if !f.IsTrue() || f.Kind() != KindTrue {
		t.Fatal("nil formula is not true")
	}
	if !f.Eval(sigmaFrom(nil)) {
		t.Fatal("nil Eval = false")
	}
	if f.String() != "true" {
		t.Fatalf("nil String = %q", f.String())
	}
	if !f.Positive() {
		t.Fatal("nil not positive")
	}
}

func TestVarEval(t *testing.T) {
	v := Var("B#A#orderOp")
	if !v.Eval(sigmaFrom(map[string]bool{"B#A#orderOp": true})) {
		t.Fatal("var true eval failed")
	}
	if v.Eval(sigmaFrom(map[string]bool{})) {
		t.Fatal("var false eval failed")
	}
	if v.Name() != "B#A#orderOp" {
		t.Fatalf("Name = %q", v.Name())
	}
}

func TestNotFolding(t *testing.T) {
	if Not(True()) != False() || Not(False()) != True() {
		t.Fatal("constant negation does not fold")
	}
	v := Var("x")
	if Not(Not(v)) != v {
		t.Fatal("double negation does not fold")
	}
	if Not(v).Positive() {
		t.Fatal("NOT x reported positive")
	}
}

func TestAndOrNormalization(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	if And() != True() {
		t.Fatal("empty And != true")
	}
	if Or() != False() {
		t.Fatal("empty Or != false")
	}
	if And(x) != x || Or(x) != x {
		t.Fatal("singleton not unwrapped")
	}
	if And(x, False(), y).Kind() != KindFalse {
		t.Fatal("false does not dominate And")
	}
	if Or(x, True(), y).Kind() != KindTrue {
		t.Fatal("true does not dominate Or")
	}
	if got := And(x, True(), y); got.Kind() != KindAnd || len(got.Operands()) != 2 {
		t.Fatalf("true not dropped from And: %v", got)
	}
	// Flattening.
	f := And(And(x, y), z)
	if f.Kind() != KindAnd || len(f.Operands()) != 3 {
		t.Fatalf("nested And not flattened: %v", f)
	}
	// Dedup.
	g := Or(x, x, y)
	if len(g.Operands()) != 2 {
		t.Fatalf("duplicates not removed: %v", g)
	}
}

func TestEvalCompound(t *testing.T) {
	x, y := Var("x"), Var("y")
	f := And(x, Or(y, Not(x)))
	tests := []struct {
		x, y, want bool
	}{
		{true, true, true},
		{true, false, false},
		{false, true, false},
		{false, false, false},
	}
	for _, tt := range tests {
		got := f.Eval(sigmaFrom(map[string]bool{"x": tt.x, "y": tt.y}))
		if got != tt.want {
			t.Errorf("f(%v,%v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestVars(t *testing.T) {
	f := And(Var("a"), Or(Var("b"), Not(Var("c"))), Var("a"))
	vars := f.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	for _, v := range []string{"a", "b", "c"} {
		if _, ok := vars[v]; !ok {
			t.Fatalf("missing var %q in %v", v, vars)
		}
	}
}

func TestSubstitute(t *testing.T) {
	f := And(Var("hidden"), Var("kept"))
	got := f.Substitute(func(name string) *Formula {
		if name == "hidden" {
			return Or(Var("v1"), Var("v2"))
		}
		return nil
	})
	want := And(Or(Var("v1"), Var("v2")), Var("kept"))
	if !Equal(got, want) {
		t.Fatalf("Substitute = %v, want %v", got, want)
	}
	// Substituting true simplifies away.
	got = f.Substitute(func(name string) *Formula {
		if name == "hidden" {
			return True()
		}
		return nil
	})
	if !Equal(got, Var("kept")) {
		t.Fatalf("Substitute true = %v", got)
	}
}

func TestStringCanonicalOrder(t *testing.T) {
	a := And(Var("x"), Var("y"))
	b := And(Var("y"), Var("x"))
	if a.String() != b.String() {
		t.Fatalf("canonical strings differ: %q vs %q", a, b)
	}
	// Paper's Fig. 5 annotation renders with AND.
	f := And(Var("B#A#msg1"), Var("B#A#msg2"))
	if got := f.String(); got != "B#A#msg1 AND B#A#msg2" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"true",
		"false",
		"B#A#msg1",
		"B#A#msg1 AND B#A#msg2",
		"(B#A#msg1 AND B#A#msg2) AND B#A#msg2",
		"a OR b AND c",
		"NOT a",
		"NOT (a OR b)",
		"a AND (b OR c)",
	}
	for _, in := range cases {
		f, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", in, f.String(), err)
		}
		if !Equal(f, back) {
			t.Fatalf("round trip of %q changed semantics: %v vs %v", in, f, back)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("a OR b AND c")
	want := Or(Var("a"), And(Var("b"), Var("c")))
	if !Equal(f, want) {
		t.Fatalf("precedence wrong: %v", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "(", "a AND", "OR a", "a b", "(a", "a)", "NOT", "AND"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestEqualSemantic(t *testing.T) {
	// x AND (x OR y) == x (absorption — detected semantically).
	if !Equal(And(Var("x"), Or(Var("x"), Var("y"))), Var("x")) {
		t.Fatal("absorption not detected by Equal")
	}
	if Equal(Var("x"), Var("y")) {
		t.Fatal("distinct vars reported equal")
	}
	// De Morgan.
	if !Equal(Not(And(Var("x"), Var("y"))), Or(Not(Var("x")), Not(Var("y")))) {
		t.Fatal("De Morgan not detected")
	}
}

// randomFormula builds a random formula over a small variable pool.
func randomFormula(r *rand.Rand, depth int) *Formula {
	vars := []string{"a", "b", "c", "d"}
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return Var(vars[r.Intn(len(vars))])
		}
	}
	switch r.Intn(4) {
	case 0:
		return Not(randomFormula(r, depth-1))
	case 1:
		return And(randomFormula(r, depth-1), randomFormula(r, depth-1))
	case 2:
		return Or(randomFormula(r, depth-1), randomFormula(r, depth-1))
	default:
		return randomFormula(r, 0)
	}
}

// Property: parsing the canonical string of a random formula preserves
// semantics.
func TestQuickParsePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		f := randomFormula(r, 4)
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if !Equal(f, back) {
			t.Fatalf("round trip changed semantics for %q", f.String())
		}
	}
}

// Property: And/Or are commutative under Equal.
func TestQuickCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := randomFormula(r, 3), randomFormula(r, 3)
		if !Equal(And(a, b), And(b, a)) {
			t.Fatalf("And not commutative for %v, %v", a, b)
		}
		if !Equal(Or(a, b), Or(b, a)) {
			t.Fatalf("Or not commutative for %v, %v", a, b)
		}
	}
}

// Property: Eval is deterministic w.r.t. assignments built from bool maps.
func TestQuickEvalStable(t *testing.T) {
	f := func(x, y, z bool) bool {
		form := And(Var("x"), Or(Var("y"), Var("z")))
		sigma := sigmaFrom(map[string]bool{"x": x, "y": y, "z": z})
		return form.Eval(sigma) == (x && (y || z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositive(t *testing.T) {
	if !And(Var("a"), Or(Var("b"), Var("c"))).Positive() {
		t.Fatal("positive formula reported non-positive")
	}
	if And(Var("a"), Not(Var("b"))).Positive() {
		t.Fatal("negative formula reported positive")
	}
}
