package journal

// The filesystem seam: every syscall the journal's durability story
// depends on goes through the fsys/file interfaces, and the default
// implementation wraps the real filesystem with the journal.* named
// failpoints (see internal/fault and docs/resilience.md). Disarmed
// points cost one atomic load per operation; armed ones let tests and
// chaos soaks fail appends, fsyncs, truncations, snapshot writes and
// the checkpoint rename on demand — the append-write point even tears
// the frame, landing half the bytes before erroring, to exercise the
// torn-tail recovery path for real.

import (
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// file is the subset of *os.File the journal uses.
type file interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// fsys abstracts the filesystem operations of Open and Checkpoint.
type fsys interface {
	MkdirAll(dir string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	OpenFile(name string, flag int, perm os.FileMode) (file, error)
	Rename(oldname, newname string) error
	SyncDir(dir string)
}

// The journal's failpoints, registered once against the shared
// catalog.
var (
	fpOpenMkdir   = fault.New(fault.PointJournalOpenMkdir)
	fpOpenSnap    = fault.New(fault.PointJournalOpenSnapshot)
	fpOpenWAL     = fault.New(fault.PointJournalOpenWAL)
	fpAppendWrite = fault.New(fault.PointJournalAppendWrite)
	fpAppendSync  = fault.New(fault.PointJournalAppendSync)
	fpWALTruncate = fault.New(fault.PointJournalWALTruncate)
	fpCkptTmp     = fault.New(fault.PointJournalCheckpointTmp)
	fpCkptWrite   = fault.New(fault.PointJournalCheckpointWrite)
	fpCkptSync    = fault.New(fault.PointJournalCheckpointSync)
	fpCkptRename  = fault.New(fault.PointJournalCheckpointRename)
)

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadFile(name string) ([]byte, error)        { return os.ReadFile(name) }
func (osFS) Rename(oldname, newname string) error        { return os.Rename(oldname, newname) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (file, error) {
	return os.OpenFile(name, flag, perm)
}

// SyncDir best-effort fsyncs a directory so a rename is durable.
func (osFS) SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// faultFS threads the journal failpoints under an fsys. Which points
// guard an opened file follows from its name: the WAL gets the append
// and truncate points, the snapshot tmp file the checkpoint points.
type faultFS struct {
	fs fsys
}

// defaultFS is the filesystem every Log uses: the real one, behind
// the failpoints.
var defaultFS fsys = faultFS{fs: osFS{}}

func (f faultFS) MkdirAll(dir string, perm os.FileMode) error {
	if err := fpOpenMkdir.Fire(); err != nil {
		return err
	}
	return f.fs.MkdirAll(dir, perm)
}

func (f faultFS) ReadFile(name string) ([]byte, error) {
	if err := fpOpenSnap.Fire(); err != nil {
		return nil, err
	}
	return f.fs.ReadFile(name)
}

func (f faultFS) Rename(oldname, newname string) error {
	if err := fpCkptRename.Fire(); err != nil {
		return err
	}
	return f.fs.Rename(oldname, newname)
}

func (f faultFS) SyncDir(dir string) { f.fs.SyncDir(dir) }

func (f faultFS) OpenFile(name string, flag int, perm os.FileMode) (file, error) {
	var open, write, sync, trunc *fault.Point
	switch filepath.Base(name) {
	case walName:
		open, write, sync, trunc = fpOpenWAL, fpAppendWrite, fpAppendSync, fpWALTruncate
	case snapTmpName:
		open, write, sync = fpCkptTmp, fpCkptWrite, fpCkptSync
	}
	if open != nil {
		if err := open.Fire(); err != nil {
			return nil, err
		}
	}
	inner, err := f.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{file: inner, write: write, sync: sync, trunc: trunc}, nil
}

// faultFile guards one opened file's write/sync/truncate with the
// points faultFS.OpenFile selected; nil points pass through.
type faultFile struct {
	file
	write, sync, trunc *fault.Point
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.write != nil {
		if err := f.write.Fire(); err != nil {
			// Tear the write: half the bytes reach the file before the
			// failure, the way a crashed kernel write would leave it.
			n := 0
			if half := len(p) / 2; half > 0 {
				n, _ = f.file.Write(p[:half])
			}
			return n, err
		}
	}
	return f.file.Write(p)
}

func (f *faultFile) Sync() error {
	if f.sync != nil {
		if err := f.sync.Fire(); err != nil {
			return err
		}
	}
	return f.file.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if f.trunc != nil {
		if err := f.trunc.Fire(); err != nil {
			return err
		}
	}
	return f.file.Truncate(size)
}
