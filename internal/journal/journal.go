// Package journal is the durability layer under the choreography
// store: an append-only, length-prefixed, checksummed write-ahead log
// of store mutations plus an atomically replaced snapshot file, so a
// store can be killed at any instant and reopened into an identical
// state.
//
// # On-disk layout
//
// A journal lives in one directory and owns two files:
//
//	wal.log       the write-ahead log: a sequence of framed records
//	snapshot.bin  the latest checkpoint, written via tmp+rename
//
// Every WAL record is framed as
//
//	[4-byte big-endian payload length][4-byte CRC-32 (IEEE) of payload][payload]
//
// and every payload starts with the record's 8-byte big-endian log
// sequence number (LSN) followed by the caller's opaque data. LSNs
// are assigned by Append, strictly increasing over the lifetime of
// the directory. The snapshot file holds exactly one frame of the
// same shape whose payload is the LSN of the last record the
// checkpoint covers, followed by the caller's opaque snapshot bytes.
//
// # Recovery semantics
//
// Open scans the WAL sequentially and stops at the first frame that
// is incomplete or fails its checksum — the torn tail a crash
// mid-append leaves behind. The torn tail is truncated away, not
// fatal: everything before it is returned for replay, and subsequent
// appends continue from the truncation point. Records whose LSN is
// not past the snapshot's LSN are skipped during recovery (they
// describe mutations the snapshot already contains; this is what
// makes the checkpoint's rename-then-truncate sequence crash-safe).
// A snapshot file that fails its checksum is reported as an error:
// snapshots are written to a temporary file and atomically renamed,
// so a damaged snapshot means real corruption, never a crash window.
//
// # Durability
//
// Append writes synchronously — the record is in the operating
// system's page cache before the call returns, so it survives a
// process kill unconditionally. Fsync on every append (surviving
// kernel crashes and power loss too) is opt-in via WithFsync;
// checkpoints and Close always fsync.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	walName     = "wal.log"
	snapName    = "snapshot.bin"
	snapTmpName = "snapshot.bin.tmp"

	// frameHeader is the per-record framing overhead: payload length
	// plus checksum.
	frameHeader = 8
	// lsnSize prefixes every payload.
	lsnSize = 8

	// MaxRecordBytes bounds one record's payload. A length prefix past
	// this is treated as a torn/corrupt tail rather than an allocation
	// request.
	MaxRecordBytes = 64 << 20
)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("journal: log closed")

// ErrPoisoned reports use of a log whose failed append could not be
// rolled back: the on-disk tail is in an unknown state, so every
// further Append and Checkpoint is refused. The owning store treats
// this as the signal to enter degraded read-only mode.
var ErrPoisoned = errors.New("journal: log poisoned by an earlier failed append")

// Record is one recovered WAL entry.
type Record struct {
	// LSN is the record's log sequence number.
	LSN uint64
	// Data is the caller's opaque payload.
	Data []byte
}

// Option configures Open.
type Option func(*Log)

// WithFsync makes every Append fsync the WAL before returning.
// Without it appends are synchronous writes (durable across a process
// kill) and fsync happens on Checkpoint and Close.
func WithFsync(on bool) Option {
	return func(l *Log) { l.fsync = on }
}

// Log is an open journal directory. All methods are safe for
// concurrent use.
type Log struct {
	dir   string
	fsync bool
	fs    fsys

	mu      sync.Mutex
	wal     file
	lsn     uint64 // last assigned LSN
	snapLSN uint64 // LSN covered by the current snapshot
	walLen  int64  // current WAL size in bytes
	closed  bool
	// broken poisons the log after a failed append could not be
	// rolled back: the on-disk tail is in an unknown state, so
	// writing anything after it would risk resurrecting a rejected
	// mutation or truncating acked ones on the next recovery.
	broken bool
}

// Open opens (creating if needed) the journal in dir and recovers its
// durable contents: snap is the latest checkpoint payload (nil when no
// checkpoint was ever taken) and tail the records appended after that
// checkpoint, in append order. A torn final record is discarded and
// truncated away; the log is positioned to append after the last good
// record.
func Open(dir string, opts ...Option) (l *Log, snap []byte, tail []Record, err error) {
	l = &Log{dir: dir, fs: defaultFS}
	if err := l.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, opt := range opts {
		opt(l)
	}
	snap, err = l.readSnapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	tail, err = l.openWAL()
	if err != nil {
		return nil, nil, nil, err
	}
	return l, snap, tail, nil
}

// readSnapshot loads snapshot.bin, setting snapLSN and lsn.
func (l *Log) readSnapshot() ([]byte, error) {
	data, err := l.fs.ReadFile(filepath.Join(l.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lsn, payload, n, ferr := parseFrame(data)
	if ferr != nil || n != len(data) {
		return nil, fmt.Errorf("journal: corrupt snapshot %s: %v", snapName, ferr)
	}
	l.snapLSN, l.lsn = lsn, lsn
	return payload, nil
}

// openWAL scans wal.log, truncates any torn tail, positions the file
// for appending and returns the records past the snapshot LSN.
func (l *Log) openWAL() ([]Record, error) {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: reading %s: %w", walName, err)
	}
	var tail []Record
	good := 0 // byte offset after the last intact record
	for good < len(data) {
		lsn, payload, n, ferr := parseFrame(data[good:])
		if ferr != nil {
			break // torn or corrupt tail: keep what we have
		}
		good += n
		if lsn > l.lsn {
			l.lsn = lsn
		}
		if lsn > l.snapLSN {
			// Copy: payload aliases the read buffer.
			tail = append(tail, Record{LSN: lsn, Data: append([]byte(nil), payload...)})
		}
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", walName, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.wal, l.walLen = f, int64(good)
	return tail, nil
}

// parseFrame decodes one frame from the head of data, returning the
// payload's LSN, the data after the LSN, and the total frame size. An
// incomplete or checksum-failing frame is an error (the torn-tail
// signal — callers stop scanning there).
func parseFrame(data []byte) (lsn uint64, payload []byte, size int, err error) {
	if len(data) < frameHeader {
		return 0, nil, 0, errors.New("short header")
	}
	n := int(binary.BigEndian.Uint32(data))
	if n < lsnSize || n > MaxRecordBytes {
		return 0, nil, 0, fmt.Errorf("implausible payload length %d", n)
	}
	if len(data) < frameHeader+n {
		return 0, nil, 0, errors.New("short payload")
	}
	body := data[frameHeader : frameHeader+n]
	if crc := binary.BigEndian.Uint32(data[4:]); crc != crc32.ChecksumIEEE(body) {
		return 0, nil, 0, errors.New("checksum mismatch")
	}
	return binary.BigEndian.Uint64(body), body[lsnSize:], frameHeader + n, nil
}

// frame encodes one payload (LSN + data) into a framed record.
func frame(lsn uint64, data []byte) []byte {
	buf := make([]byte, frameHeader+lsnSize+len(data))
	binary.BigEndian.PutUint32(buf, uint32(lsnSize+len(data)))
	binary.BigEndian.PutUint64(buf[frameHeader:], lsn)
	copy(buf[frameHeader+lsnSize:], data)
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[frameHeader:]))
	return buf
}

// Append writes one record and returns its LSN. The write is
// synchronous; it is additionally fsynced when the log was opened
// WithFsync. On error the record is not durable AND not on disk: the
// rejected (possibly partial) frame is truncated away, so a later
// recovery can never resurrect a mutation the caller was told failed,
// and a retry reuses the LSN cleanly. If even the rollback fails the
// log is poisoned — every further Append and Checkpoint errors — so
// nothing is ever written after an unknown tail.
func (l *Log) Append(data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken {
		return 0, ErrPoisoned
	}
	buf := frame(l.lsn+1, data)
	if _, err := l.wal.Write(buf); err != nil {
		l.rewindLocked()
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if l.fsync {
		if err := l.wal.Sync(); err != nil {
			l.rewindLocked()
			return 0, fmt.Errorf("journal: append sync: %w", err)
		}
	}
	l.lsn++
	l.walLen += int64(len(buf))
	return l.lsn, nil
}

// rewindLocked rolls the WAL back to the last good record boundary
// after a failed append, poisoning the log when it cannot.
func (l *Log) rewindLocked() {
	if l.wal.Truncate(l.walLen) == nil {
		if _, err := l.wal.Seek(l.walLen, io.SeekStart); err == nil {
			return
		}
	}
	l.broken = true
}

// Checkpoint replaces the snapshot with snap — which must describe
// every mutation up to and including the last appended record — and
// truncates the WAL. The snapshot is written to a temporary file,
// fsynced and atomically renamed before the WAL is cut, so a crash at
// any point leaves either the old checkpoint (plus the full WAL) or
// the new one (plus an ignorable WAL prefix, skipped by LSN on the
// next Open).
//
// The caller is responsible for quiescing appends for the duration —
// a record appended between snap's serialization and this call would
// be truncated away without being covered (the store holds its
// persistence lock across both).
func (l *Log) Checkpoint(snap []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken {
		return ErrPoisoned
	}
	tmp := filepath.Join(l.dir, snapTmpName)
	f, err := l.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	_, werr := f.Write(frame(l.lsn, snap))
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("journal: checkpoint: %w", werr)
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	l.fs.SyncDir(l.dir)
	// The snapshot now covers every appended record; cut the log. A
	// crash before the truncate leaves old records behind — harmless,
	// their LSNs are <= the snapshot's and Open skips them.
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	l.snapLSN, l.walLen = l.lsn, 0
	return nil
}

// Broken reports whether the log is poisoned: a failed append could
// not be rolled back, so the on-disk tail is unknown and every
// further Append and Checkpoint fails with ErrPoisoned.
func (l *Log) Broken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// LSN returns the last assigned log sequence number.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// WALSize returns the current size of the write-ahead log in bytes —
// the replay debt a crash right now would incur; Checkpoint resets it.
func (l *Log) WALSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walLen
}

// Close fsyncs and closes the log. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.wal.Sync()
	if cerr := l.wal.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
