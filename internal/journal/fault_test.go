package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// armed arms one point for the test's duration.
func armed(t *testing.T, p *fault.Point, tr fault.Trigger) {
	t.Helper()
	p.Arm(tr)
	t.Cleanup(p.Disarm)
}

// TestOpenReadOnlyDirectory drives Open against a directory whose
// filesystem refuses writes (injected at the mkdir and WAL-open
// points, the calls a read-only mount fails): both must surface a
// clean error, leaving nothing behind.
func TestOpenReadOnlyDirectory(t *testing.T) {
	dir := t.TempDir()
	armed(t, fpOpenMkdir, fault.Trigger{})
	if _, _, _, err := Open(filepath.Join(dir, "a")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Open with mkdir fault: err = %v", err)
	}
	fpOpenMkdir.Disarm()

	armed(t, fpOpenWAL, fault.Trigger{})
	if _, _, _, err := Open(filepath.Join(dir, "b")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Open with WAL-open fault: err = %v", err)
	}
	fpOpenWAL.Disarm()

	armed(t, fpOpenSnap, fault.Trigger{})
	if _, _, _, err := Open(filepath.Join(dir, "c")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Open with snapshot-read fault: err = %v", err)
	}
	fpOpenSnap.Disarm()

	// With every point disarmed the same directory opens fine.
	l, snap, tail, err := Open(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Open after faults cleared: %v", err)
	}
	if snap != nil || len(tail) != 0 {
		t.Fatalf("fresh dir recovered snap=%v tail=%v", snap, tail)
	}
	l.Close()
}

// TestAppendTornWriteRollsBack arms the append-write point (which
// lands half the frame before failing, like a torn kernel write) and
// checks the failed record is fully rolled back: the next append
// reuses the LSN and recovery never sees the rejected record.
func TestAppendTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}

	armed(t, fpAppendWrite, fault.Trigger{Nth: 1})
	if _, err := l.Append([]byte("rejected")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted append: err = %v", err)
	}
	lsn, err := l.Append([]byte("second"))
	if err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("append after rollback got LSN %d, want 2 (reused)", lsn)
	}
	l.Close()

	_, snap, tail, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(tail) != 2 {
		t.Fatalf("recovered snap=%v, %d records, want 2", snap, len(tail))
	}
	for i, want := range []string{"first", "second"} {
		if string(tail[i].Data) != want {
			t.Fatalf("record %d = %q, want %q", i, tail[i].Data, want)
		}
	}
}

// TestFailedRollbackPoisons makes both the append write and its
// rollback truncate fail: the log must poison itself, refuse further
// writes with ErrPoisoned, and report Broken.
func TestFailedRollbackPoisons(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	armed(t, fpAppendWrite, fault.Trigger{Nth: 1})
	armed(t, fpWALTruncate, fault.Trigger{})
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted append: err = %v", err)
	}
	if !l.Broken() {
		t.Fatal("log not Broken after failed rollback")
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned log: err = %v", err)
	}
	if err := l.Checkpoint([]byte("snap")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("checkpoint on poisoned log: err = %v", err)
	}
}

// TestCheckpointENOSPC fails the checkpoint at every stage in turn —
// tmp create, write (torn), fsync, rename — and asserts the invariant
// the snapshot protocol promises: the failure is clean, the previous
// snapshot still governs recovery, and no half-written snapshot ever
// shadows the WAL.
func TestCheckpointENOSPC(t *testing.T) {
	stages := []struct {
		name  string
		point *fault.Point
	}{
		{"tmp-create", fpCkptTmp},
		{"tmp-write", fpCkptWrite},
		{"tmp-sync", fpCkptSync},
		{"rename", fpCkptRename},
	}
	for _, stage := range stages {
		t.Run(stage.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// An established checkpoint plus two WAL records past it.
			if _, err := l.Append([]byte("covered")); err != nil {
				t.Fatal(err)
			}
			if err := l.Checkpoint([]byte("old-snap")); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("tail-%d", i))); err != nil {
					t.Fatal(err)
				}
			}

			armed(t, stage.point, fault.Trigger{Nth: 1})
			if err := l.Checkpoint([]byte("new-snap")); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("faulted checkpoint: err = %v", err)
			}
			// The log is not poisoned by a failed checkpoint: appends
			// continue.
			if _, err := l.Append([]byte("tail-2")); err != nil {
				t.Fatalf("append after failed checkpoint: %v", err)
			}
			l.Close()

			// Recovery: the old snapshot plus the full tail — the
			// half-written tmp file must not shadow the WAL.
			_, snap, tail, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery after failed checkpoint: %v", err)
			}
			// Even for the rename stage — where the tmp file was fully
			// written before the fault — the visible snapshot must still
			// be the old one.
			if !bytes.Equal(snap, []byte("old-snap")) {
				t.Fatalf("snapshot = %q, want old-snap", snap)
			}
			var got []string
			for _, r := range tail {
				got = append(got, string(r.Data))
			}
			want := fmt.Sprint([]string{"tail-0", "tail-1", "tail-2"})
			if fmt.Sprint(got) != want {
				t.Fatalf("recovered tail %v, want %v", got, want)
			}
			// No tmp leftovers pretending to be a snapshot.
			if _, err := os.Stat(filepath.Join(dir, "snapshot.bin.tmp")); err == nil && stage.point == fpCkptRename {
				// A tmp file left behind by a failed rename is harmless;
				// Open ignores it. Only its *content* must never be
				// loaded, which the snapshot assertion above pins.
				t.Log("tmp snapshot left behind (ignored by recovery)")
			}
		})
	}
}

// TestAppendSyncFaultRollsBack covers the fsync-on-append path: the
// write lands, the sync fails, and the record must still be rolled
// back — the caller was told the append failed.
func TestAppendSyncFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, WithFsync(true))
	if err != nil {
		t.Fatal(err)
	}
	armed(t, fpAppendSync, fault.Trigger{Nth: 1})
	if _, err := l.Append([]byte("unsynced")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted sync append: err = %v", err)
	}
	l.Close()
	_, _, tail, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("rejected record survived recovery: %v", tail)
	}
}
