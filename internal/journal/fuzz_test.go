package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalOpen feeds arbitrary bytes to the recovery path as a
// wal.log: Open must either recover a clean prefix (truncating any
// torn tail) or fail with an error — never panic — and a second Open
// of the recovered directory must succeed and report the same state
// (recovery is idempotent).
func FuzzJournalOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0x3a, 0x99})
	// A valid single-record WAL, a truncated one, and one with a
	// corrupt checksum tail.
	valid := frame(1, []byte("record-one"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), frame(2, []byte("record-two"))[:5]...))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		l, snap, tail, err := Open(dir)
		if err != nil {
			// A bare WAL (no snapshot file) must always be recoverable:
			// the scanner stops at the first torn or corrupt frame.
			t.Fatalf("Open on arbitrary wal.log errored: %v", err)
		}
		if snap != nil {
			t.Fatalf("Open invented a snapshot from nothing")
		}
		lsn := l.LSN()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Recovery must be idempotent: reopening yields the same tail.
		l2, _, tail2, err := Open(dir)
		if err != nil {
			t.Fatalf("second Open failed after recovery: %v", err)
		}
		defer l2.Close()
		if l2.LSN() != lsn {
			t.Fatalf("LSN changed across reopen: %d then %d", lsn, l2.LSN())
		}
		if len(tail2) != len(tail) {
			t.Fatalf("recovered %d records, reopen sees %d", len(tail), len(tail2))
		}
		for i := range tail {
			if tail[i].LSN != tail2[i].LSN || !bytes.Equal(tail[i].Data, tail2[i].Data) {
				t.Fatalf("record %d differs across reopen", i)
			}
		}

		// The recovered log must accept appends.
		if _, err := l2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
