package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts ...Option) (*Log, []byte, []Record) {
	t.Helper()
	l, snap, tail, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, snap, tail
}

func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, snap, tail := mustOpen(t, dir)
	if snap != nil || len(tail) != 0 {
		t.Fatalf("fresh journal recovered snap=%v tail=%v", snap, tail)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("record-%d", i))
		lsn, err := l.Append(data)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		want = append(want, data)
	}
	// No Close: simulate a kill.
	l2, snap, tail := mustOpen(t, dir)
	defer l2.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if len(tail) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(tail), len(want))
	}
	for i, rec := range tail {
		if rec.LSN != uint64(i+1) || !bytes.Equal(rec.Data, want[i]) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, rec.LSN, rec.Data, i+1, want[i])
		}
	}
	// Appends continue past the recovered LSN.
	if lsn, err := l2.Append([]byte("more")); err != nil || lsn != 11 {
		t.Fatalf("post-recovery Append = %d, %v", lsn, err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 11} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := mustOpen(t, dir)
			for i := 0; i < 3; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			sizeBefore := l.WALSize()
			if _, err := l.Append([]byte("the torn one")); err != nil {
				t.Fatal(err)
			}
			l.Close()
			// Tear the last record: keep only `cut` bytes of it.
			wal := filepath.Join(dir, walName)
			if err := os.Truncate(wal, sizeBefore+int64(cut)); err != nil {
				t.Fatal(err)
			}
			l2, _, tail := mustOpen(t, dir)
			defer l2.Close()
			if len(tail) != 3 {
				t.Fatalf("recovered %d records after torn tail, want 3", len(tail))
			}
			if got := l2.WALSize(); got != sizeBefore {
				t.Fatalf("WAL size after truncation = %d, want %d", got, sizeBefore)
			}
			// New appends land cleanly after the truncation point.
			if _, err := l2.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			l3, _, tail := mustOpen(t, dir)
			defer l3.Close()
			if len(tail) != 4 || string(tail[3].Data) != "after" {
				t.Fatalf("post-tear append not recovered: %v", tail)
			}
		})
	}
}

func TestCorruptTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size := l.WALSize()
	if _, err := l.Append([]byte("to be corrupted")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the final record: the checksum fails
	// and the record is treated as torn.
	if _, err := f.WriteAt([]byte{0xff}, size+frameHeader+lsnSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, _, tail := mustOpen(t, dir)
	defer l2.Close()
	if len(tail) != 2 {
		t.Fatalf("recovered %d records after corrupt tail, want 2", len(tail))
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("snapshot-state")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if l.WALSize() != 0 {
		t.Fatalf("WAL not truncated after checkpoint: %d bytes", l.WALSize())
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, snap, tail := mustOpen(t, dir)
	defer l2.Close()
	if string(snap) != "snapshot-state" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(tail) != 3 {
		t.Fatalf("recovered %d post-checkpoint records, want 3", len(tail))
	}
	for i, rec := range tail {
		if want := fmt.Sprintf("post-%d", i); string(rec.Data) != want {
			t.Fatalf("tail[%d] = %q, want %q", i, rec.Data, want)
		}
	}
	if got := l2.LSN(); got != 8 {
		t.Fatalf("LSN after recovery = %d, want 8", got)
	}
}

// TestCheckpointCrashWindow pins the rename-then-truncate crash
// window: when the process dies after the snapshot rename but before
// the WAL truncate, the stale WAL records (LSN <= snapshot LSN) are
// skipped on the next Open instead of being replayed on top of the
// snapshot.
func TestCheckpointCrashWindow(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash window by hand: write the snapshot frame
	// exactly as Checkpoint would, but leave wal.log untouched.
	if err := os.WriteFile(filepath.Join(dir, snapName), frame(l.LSN(), []byte("covers-4")), 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, snap, tail := mustOpen(t, dir)
	defer l2.Close()
	if string(snap) != "covers-4" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(tail) != 0 {
		t.Fatalf("stale WAL records replayed past the snapshot: %v", tail)
	}
	if l2.LSN() != 4 {
		t.Fatalf("LSN = %d, want 4", l2.LSN())
	}
	// The next append must not collide with the skipped records.
	if lsn, err := l2.Append([]byte("rec-5")); err != nil || lsn != 5 {
		t.Fatalf("Append = %d, %v", lsn, err)
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snapPath := filepath.Join(dir, snapName)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
