package paperrepro

import (
	"repro/internal/bpel"
)

// Fig14BuyerProcess returns the buyer private process after
// propagating the additive cancel change (paper Fig. 14): the delivery
// receive has become a pick accepting either the delivery or the
// cancel message; a cancel ends the process.
func Fig14BuyerProcess() *bpel.Process {
	p := BuyerProcess()
	p.Name = "buyer'"
	seq := p.Body.(*bpel.Sequence)
	seq.Children[1] = &bpel.Pick{
		BlockName: "delivery or cancel",
		Branches: []bpel.OnMessage{
			{Partner: Accounting, Op: "deliveryOp", Body: &bpel.Empty{BlockName: "delivered"}},
			{Partner: Accounting, Op: "cancelOp", Body: &bpel.Terminate{BlockName: "cancelled"}},
		},
	}
	return p
}

// Fig18BuyerProcess returns the buyer private process after
// propagating the subtractive tracking-limit change (paper Fig. 18):
// the unlimited tracking loop has been replaced by a switch allowing
// at most one tracking round; both branches end with the terminate
// message.
func Fig18BuyerProcess() *bpel.Process {
	p := BuyerProcess()
	p.Name = "buyer''"
	seq := p.Body.(*bpel.Sequence)
	seq.Children[2] = &bpel.Switch{
		BlockName: "track once?",
		Cases: []bpel.Case{
			{
				Cond: "continue",
				Body: &bpel.Sequence{
					BlockName: "track once",
					Children: []bpel.Activity{
						&bpel.Invoke{BlockName: "getStatus", Partner: Accounting, Op: "getStatusOp"},
						&bpel.Receive{BlockName: "status", Partner: Accounting, Op: "statusOp"},
						&bpel.Invoke{BlockName: "terminate", Partner: Accounting, Op: "terminateOp"},
						&bpel.Terminate{BlockName: "end"},
					},
				},
			},
		},
		Else: &bpel.Sequence{
			BlockName: "terminate directly",
			Children: []bpel.Activity{
				&bpel.Invoke{BlockName: "terminate now", Partner: Accounting, Op: "terminateOp"},
				&bpel.Terminate{BlockName: "end now"},
			},
		},
	}
	return p
}
