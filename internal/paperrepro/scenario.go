// Package paperrepro contains the complete fixtures of the paper's
// procurement scenario (Sec. 2) and the expected artifacts of every
// constructed figure and table (Figs. 5–8, 10, 12–14, 16–18, Table 1).
// The reproduction tests in this package and the benches in the
// repository root regenerate each artifact and compare it against the
// expectation.
//
// Party names follow the labels used in the paper's figures:
// "B" (buyer), "A" (accounting department), "L" (logistics
// department).
package paperrepro

import (
	"repro/internal/bpel"
	"repro/internal/wsdl"
)

// Party names as used in the paper's message labels.
const (
	Buyer      = "B"
	Accounting = "A"
	Logistics  = "L"
)

// Registry returns the WSDL registry of the scenario: the operations
// each party provides, with getStatusLOp as the single synchronous
// operation (Sec. 2: "all operations are asynchronous except the
// synchronous getStatusOP operation provided by the logistics
// service").
func Registry() *wsdl.Registry {
	r := wsdl.NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// accBuyer port type: operations the accounting department offers
	// to the buyer.
	must(r.AddPortType(wsdl.PortType{
		Name:  "accBuyer",
		Owner: Accounting,
		Operations: []wsdl.Operation{
			{Name: "orderOp", Input: "order"},
			{Name: "order_2Op", Input: "order_2"},
			{Name: "getStatusOp", Input: "get_status"},
			{Name: "terminateOp", Input: "terminate"},
		},
	}))
	// buyer port type: operations the buyer offers.
	must(r.AddPortType(wsdl.PortType{
		Name:  "buyer",
		Owner: Buyer,
		Operations: []wsdl.Operation{
			{Name: "deliveryOp", Input: "delivery"},
			{Name: "statusOp", Input: "status"},
			{Name: "cancelOp", Input: "cancel"},
		},
	}))
	// logistics port type: operations the logistics department offers.
	must(r.AddPortType(wsdl.PortType{
		Name:  "logistics",
		Owner: Logistics,
		Operations: []wsdl.Operation{
			{Name: "deliverOp", Input: "deliver"},
			{Name: "getStatusLOp", Input: "get_statusL", Output: "statusL"},
			{Name: "terminateLOp", Input: "terminateL"},
		},
	}))
	// accLogistics port type: operations accounting offers to logistics.
	must(r.AddPortType(wsdl.PortType{
		Name:  "accLogistics",
		Owner: Accounting,
		Operations: []wsdl.Operation{
			{Name: "deliver_confOp", Input: "deliver_conf"},
		},
	}))
	must(r.AddPartnerLinkType(wsdl.PartnerLinkType{
		Name:  "accBuyerLT",
		Roles: [2]wsdl.Role{{Name: "accounting", PortType: "accBuyer"}, {Name: "buyer", PortType: "buyer"}},
	}))
	must(r.AddPartnerLinkType(wsdl.PartnerLinkType{
		Name:  "accLogisticsLT",
		Roles: [2]wsdl.Role{{Name: "accounting", PortType: "accLogistics"}, {Name: "logistics", PortType: "logistics"}},
	}))
	return r
}

// BuyerProcess returns the buyer private process of paper Fig. 3:
// send order, receive delivery, then a non-terminating parcel-tracking
// loop whose internal switch either tracks (get_status/status) or
// terminates the conversation.
func BuyerProcess() *bpel.Process {
	return &bpel.Process{
		Name:  "buyer",
		Owner: Buyer,
		PartnerLinks: []bpel.PartnerLink{
			{Name: "accBuyer", Partner: Accounting, LinkType: "accBuyerLT"},
		},
		Body: &bpel.Sequence{
			BlockName: "buyer process",
			Children: []bpel.Activity{
				&bpel.Invoke{BlockName: "order", Partner: Accounting, Op: "orderOp"},
				&bpel.Receive{BlockName: "delivery", Partner: Accounting, Op: "deliveryOp"},
				&bpel.While{
					BlockName: "tracking",
					Cond:      "1 = 1",
					Body: &bpel.Switch{
						BlockName: "termination?",
						Cases: []bpel.Case{
							{
								Cond: "continue",
								Body: &bpel.Sequence{
									BlockName: "cond continue",
									Children: []bpel.Activity{
										&bpel.Invoke{BlockName: "getStatus", Partner: Accounting, Op: "getStatusOp"},
										&bpel.Receive{BlockName: "status", Partner: Accounting, Op: "statusOp"},
									},
								},
							},
							{
								Cond: "otherwise",
								Body: &bpel.Sequence{
									BlockName: "cond terminate",
									Children: []bpel.Activity{
										&bpel.Invoke{BlockName: "terminate", Partner: Accounting, Op: "terminateOp"},
										&bpel.Terminate{BlockName: "end"},
									},
								},
							},
						},
					},
				},
			},
		},
	}
}

// AccountingProcess returns the accounting private process of paper
// Fig. 2: receive order, forward to logistics, receive confirmation,
// forward delivery to buyer, then serve parcel tracking in a
// non-terminating loop with a pick on get_status/terminate.
func AccountingProcess() *bpel.Process {
	return &bpel.Process{
		Name:  "accounting",
		Owner: Accounting,
		PartnerLinks: []bpel.PartnerLink{
			{Name: "accBuyer", Partner: Buyer, LinkType: "accBuyerLT"},
			{Name: "accLogistics", Partner: Logistics, LinkType: "accLogisticsLT"},
		},
		Body: &bpel.Sequence{
			BlockName: "accounting process",
			Children: []bpel.Activity{
				&bpel.Receive{BlockName: "order", Partner: Buyer, Op: "orderOp"},
				&bpel.Invoke{BlockName: "deliver", Partner: Logistics, Op: "deliverOp"},
				&bpel.Receive{BlockName: "deliver_conf", Partner: Logistics, Op: "deliver_confOp"},
				&bpel.Invoke{BlockName: "delivery", Partner: Buyer, Op: "deliveryOp"},
				&bpel.While{
					BlockName: "parcel tracking",
					Cond:      "1 = 1",
					Body: &bpel.Pick{
						BlockName: "request",
						Branches: []bpel.OnMessage{
							{
								Partner: Buyer,
								Op:      "getStatusOp",
								Body: &bpel.Sequence{
									BlockName: "track",
									Children: []bpel.Activity{
										&bpel.Invoke{BlockName: "getStatusL", Partner: Logistics, Op: "getStatusLOp", Sync: true},
										&bpel.Invoke{BlockName: "status", Partner: Buyer, Op: "statusOp"},
									},
								},
							},
							{
								Partner: Buyer,
								Op:      "terminateOp",
								Body: &bpel.Sequence{
									BlockName: "shutdown",
									Children: []bpel.Activity{
										&bpel.Invoke{BlockName: "terminateL", Partner: Logistics, Op: "terminateLOp"},
										&bpel.Terminate{BlockName: "end"},
									},
								},
							},
						},
					},
				},
			},
		},
	}
}

// LogisticsProcess returns the logistics private process. The paper
// describes it only through the accounting interactions (Figs. 1, 8b):
// receive deliver, confirm asynchronously, then serve synchronous
// status requests until terminated.
func LogisticsProcess() *bpel.Process {
	return &bpel.Process{
		Name:  "logistics",
		Owner: Logistics,
		PartnerLinks: []bpel.PartnerLink{
			{Name: "accLogistics", Partner: Accounting, LinkType: "accLogisticsLT"},
		},
		Body: &bpel.Sequence{
			BlockName: "logistics process",
			Children: []bpel.Activity{
				&bpel.Receive{BlockName: "deliver", Partner: Accounting, Op: "deliverOp"},
				&bpel.Invoke{BlockName: "deliver_conf", Partner: Accounting, Op: "deliver_confOp"},
				&bpel.While{
					BlockName: "serve",
					Cond:      "1 = 1",
					Body: &bpel.Pick{
						BlockName: "request",
						Branches: []bpel.OnMessage{
							{
								Partner: Accounting,
								Op:      "getStatusLOp",
								Body:    &bpel.Reply{BlockName: "statusL", Partner: Accounting, Op: "getStatusLOp"},
							},
							{
								Partner: Accounting,
								Op:      "terminateLOp",
								Body:    &bpel.Terminate{BlockName: "end"},
							},
						},
					},
				},
			},
		},
	}
}
