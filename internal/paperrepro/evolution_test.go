package paperrepro

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/choreography"
	"repro/internal/core"
	"repro/internal/mapping"
)

// scenario builds the full three-party choreography of paper Fig. 1.
func scenario(t *testing.T) *choreography.Choreography {
	t.Helper()
	c := choreography.New(Registry())
	for _, p := range []*bpel.Process{BuyerProcess(), AccountingProcess(), LogisticsProcess()} {
		if err := c.AddParty(p); err != nil {
			t.Fatalf("AddParty(%s): %v", p.Name, err)
		}
	}
	rep, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("initial choreography inconsistent:\n%s", rep)
	}
	return c
}

func impactOn(t *testing.T, rep *choreography.EvolutionReport, partner string) choreography.PartnerImpact {
	t.Helper()
	for _, im := range rep.Impacts {
		if im.Partner == partner {
			return im
		}
	}
	t.Fatalf("no impact on %s in report", partner)
	return choreography.PartnerImpact{}
}

// TestFig10InvariantAdditive reproduces Sec. 5.1 / Figs. 9–10: adding
// the order_2 alternative changes the buyer view (Fig. 10a) but the
// intersection with the buyer public process stays non-empty
// (Fig. 10b) — an invariant additive change, no propagation.
func TestFig10InvariantAdditive(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, OrderTwoChange())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PublicChanged {
		t.Fatal("order_2 change did not alter the public process")
	}
	buyer := impactOn(t, rep, Buyer)
	if !buyer.ViewChanged {
		t.Fatal("buyer view unchanged")
	}
	// Fig. 10a: the new buyer view.
	if diff := afsa.ExplainDifference(buyer.NewView, Fig10aBuyerViewAfterOrderTwo()); diff != "" {
		t.Fatalf("buyer view differs from Fig. 10a: %s", diff)
	}
	// Classification: additive (Def. 5) and invariant (Def. 6).
	if buyer.Classification.Kind != core.KindAdditive {
		t.Fatalf("kind = %v, want additive", buyer.Classification.Kind)
	}
	if buyer.Classification.Scope != core.ScopeInvariant {
		t.Fatalf("scope = %v, want invariant", buyer.Classification.Scope)
	}
	if rep.NeedsPropagation() {
		t.Fatal("invariant change flagged for propagation")
	}
	// The logistics view is untouched entirely.
	logistics := impactOn(t, rep, Logistics)
	if logistics.ViewChanged {
		t.Fatal("order_2 change leaked into the logistics view")
	}
	// Committing keeps the choreography consistent without touching
	// any partner.
	if err := c.Commit(rep); err != nil {
		t.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent() {
		t.Fatalf("choreography inconsistent after invariant change:\n%s", check)
	}
}

// TestFig12VariantAdditive reproduces Sec. 5.2 / Figs. 11–12: the
// cancel option makes the buyer view inconsistent with the buyer
// public process — a variant additive change.
func TestFig12VariantAdditive(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	// Fig. 12a: the new buyer view with the projected mandatory
	// annotation cancelOp AND deliveryOp.
	if diff := afsa.ExplainDifference(buyer.NewView, Fig12aBuyerViewAfterCancel()); diff != "" {
		t.Fatalf("buyer view differs from Fig. 12a: %s", diff)
	}
	if buyer.Classification.Kind != core.KindAdditive {
		t.Fatalf("kind = %v, want additive", buyer.Classification.Kind)
	}
	if buyer.Classification.Scope != core.ScopeVariant {
		t.Fatalf("scope = %v, want variant", buyer.Classification.Scope)
	}
	// Fig. 12b: the intersection with the buyer public process is
	// annotated-empty.
	buyerParty, _ := c.Party(Buyer)
	inter := buyer.NewView.Intersect(buyerParty.Public)
	empty, err := inter.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatalf("Fig. 12b intersection should be annotated-empty:\n%s", inter.DebugString())
	}
	if !rep.NeedsPropagation() {
		t.Fatal("variant change not flagged for propagation")
	}
}

// TestFig13AdditivePropagation reproduces Sec. 5.2 steps 1–2 /
// Fig. 13: the difference automaton A” = τ_B(A') \ B and the adapted
// buyer public process B' = A” ∪ B.
func TestFig13AdditivePropagation(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	if len(buyer.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(buyer.Plans))
	}
	plan := buyer.Plans[0]
	if plan.Kind != core.KindAdditive {
		t.Fatalf("plan kind = %v", plan.Kind)
	}
	// Fig. 13a: the added sequence order·cancel.
	if diff := afsa.ExplainDifference(plan.Diff, Fig13aDifference()); diff != "" {
		t.Fatalf("difference automaton differs from Fig. 13a: %s", diff)
	}
	// Fig. 13b: the adapted buyer public process.
	if diff := afsa.ExplainDifference(plan.NewPartnerPublic, Fig13bNewBuyerPublic()); diff != "" {
		t.Fatalf("new buyer public differs from Fig. 13b: %s", diff)
	}
	// Step 3: the parallel traversal locates the change at the buyer
	// state after the order (paper: "state number 2 in the original
	// public process", i.e. state 1 here) with the cancel message.
	if len(plan.Hints) != 1 {
		t.Fatalf("hints = %v, want exactly one", plan.Hints)
	}
	h := plan.Hints[0]
	if h.State != 1 || string(h.Label) != "A#B#cancelOp" || !h.Added {
		t.Fatalf("hint = %v, want add A#B#cancelOp at state 1", h)
	}
	// The mapping table relates the state to the block "Sequence:buyer
	// process" (paper: "the change in the Buyer private process is
	// related to the block specified by the sequence activity labeled
	// 'buyer process'").
	if len(plan.Regions) != 1 {
		t.Fatalf("regions = %v", plan.Regions)
	}
	blocks := plan.Regions[0].Blocks
	if len(blocks) != 1 || blocks[0] != "Sequence:buyer process" {
		t.Fatalf("region blocks = %v, want [Sequence:buyer process]", blocks)
	}
}

// TestFig14SuggestionAndVerification reproduces Sec. 5.2 steps 3–5 /
// Fig. 14: the suggestion widens the buyer's delivery receive into a
// pick accepting delivery or cancel; applying it and re-deriving
// restores bilateral consistency.
func TestFig14SuggestionAndVerification(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	if len(buyer.Suggestions) == 0 {
		t.Fatal("no suggestions for the buyer adaptation")
	}
	ops := choreography.ExecutableSuggestions(buyer.Suggestions)
	if len(ops) != 1 {
		t.Fatalf("executable suggestions = %d, want 1 (%v)", len(ops), buyer.Suggestions)
	}
	widen, ok := ops[0].(change.Composite)
	var widenOp change.ReplaceReceiveWithPick
	if ok {
		t.Fatalf("unexpected composite suggestion: %v", widen)
	}
	widenOp, ok = ops[0].(change.ReplaceReceiveWithPick)
	if !ok {
		t.Fatalf("suggestion is %T, want ReplaceReceiveWithPick", ops[0])
	}
	wantPath := bpel.Path{"Sequence:buyer process", "Receive:delivery"}
	if !widenOp.Path.Equal(wantPath) {
		t.Fatalf("suggestion path = %v, want %v", widenOp.Path, wantPath)
	}
	if len(widenOp.Extra) != 1 || widenOp.Extra[0].Op != "cancelOp" || widenOp.Extra[0].Partner != Accounting {
		t.Fatalf("suggestion extra = %+v", widenOp.Extra)
	}

	// Steps 4–5: apply to the buyer, re-derive, verify consistency.
	newBuyer, res, err := c.AdaptPartner(Buyer, ops)
	if err != nil {
		t.Fatal(err)
	}
	// The re-derived buyer public must accept the cancel conversation.
	if !res.Automaton.Accepts(word("B#A#orderOp", "A#B#cancelOp")) {
		t.Fatalf("adapted buyer public rejects the cancel conversation:\n%s", res.Automaton.DebugString())
	}
	ok2, err := afsa.Consistent(buyer.NewView, res.Automaton.View(Accounting))
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatalf("adapted buyer still inconsistent with accounting':\nview:\n%s\nbuyer':\n%s",
			buyer.NewView.DebugString(), res.Automaton.DebugString())
	}

	// The adaptation is behaviorally the paper's Fig. 14 process: both
	// derive to the same public automaton.
	fig14, err := mapping.Derive(Fig14BuyerProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	if diff := afsa.ExplainDifference(res.Automaton, fig14.Automaton); diff != "" {
		t.Fatalf("adapted buyer public differs from Fig. 14's: %s", diff)
	}

	// Commit everything; the full choreography is consistent again.
	if err := c.Commit(rep); err != nil {
		t.Fatal(err)
	}
	if err := c.CommitParty(newBuyer); err != nil {
		t.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent() {
		t.Fatalf("choreography inconsistent after propagation:\n%s", check)
	}
}

// TestFig16VariantSubtractive reproduces Sec. 5.3 / Figs. 15–16:
// bounding parcel tracking to at most one round is a variant
// subtractive change for the buyer.
func TestFig16VariantSubtractive(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	// Fig. 16a: the new buyer view.
	if diff := afsa.ExplainDifference(buyer.NewView, Fig16aBuyerViewAfterTrackingLimit()); diff != "" {
		t.Fatalf("buyer view differs from Fig. 16a: %s", diff)
	}
	if buyer.Classification.Kind != core.KindSubtractive {
		t.Fatalf("kind = %v, want subtractive", buyer.Classification.Kind)
	}
	if buyer.Classification.Scope != core.ScopeVariant {
		t.Fatalf("scope = %v, want variant", buyer.Classification.Scope)
	}
	// Fig. 16b: the intersection with the buyer public process is
	// annotated-empty — the buyer's mandatory get_status alternative is
	// no longer supported after one round.
	buyerParty, _ := c.Party(Buyer)
	inter := buyer.NewView.Intersect(buyerParty.Public)
	empty, err := inter.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatalf("Fig. 16b intersection should be annotated-empty:\n%s", inter.DebugString())
	}
}

// TestFig17SubtractivePropagation reproduces Sec. 5.3 steps 1–2 /
// Fig. 17: the removed sequences and the adapted buyer public process.
func TestFig17SubtractivePropagation(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	if len(buyer.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(buyer.Plans))
	}
	plan := buyer.Plans[0]
	if plan.Kind != core.KindSubtractive {
		t.Fatalf("plan kind = %v", plan.Kind)
	}
	// The removed behavior: conversations with two or more tracking
	// rounds.
	twoRounds := word("B#A#orderOp", "A#B#deliveryOp",
		"B#A#getStatusOp", "A#B#statusOp",
		"B#A#getStatusOp", "A#B#statusOp",
		"B#A#terminateOp")
	oneRound := word("B#A#orderOp", "A#B#deliveryOp",
		"B#A#getStatusOp", "A#B#statusOp",
		"B#A#terminateOp")
	if !plan.Diff.Accepts(twoRounds) {
		t.Fatalf("removed-sequence automaton rejects a two-round conversation:\n%s", plan.Diff.DebugString())
	}
	if plan.Diff.Accepts(oneRound) {
		t.Fatal("removed-sequence automaton contains a still-supported conversation")
	}
	// Fig. 17b: the adapted buyer public process.
	if diff := afsa.ExplainDifference(plan.NewPartnerPublic, Fig17bNewBuyerPublic()); diff != "" {
		t.Fatalf("new buyer public differs from Fig. 17b: %s", diff)
	}
	// Step 3: the loop region is identified (paper: "the block
	// 'While:tracking' is the relevant one").
	foundWhile := false
	for _, r := range plan.Regions {
		for _, b := range r.Blocks {
			if b == "While:tracking" {
				foundWhile = true
			}
		}
	}
	if !foundWhile {
		t.Fatalf("While:tracking not identified in regions: %v", plan.Regions)
	}
}

// TestFig18SuggestionAndVerification reproduces Sec. 5.3 steps 3–5 /
// Fig. 18: the loop is replaced by its bounded unrolling; applying the
// suggestion and re-deriving restores consistency with the accounting
// side.
func TestFig18SuggestionAndVerification(t *testing.T) {
	c := scenario(t)
	rep, err := c.Evolve(Accounting, TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	buyer := impactOn(t, rep, Buyer)
	ops := choreography.ExecutableSuggestions(buyer.Suggestions)
	if len(ops) != 1 {
		t.Fatalf("executable suggestions = %d, want 1 (%v)", len(ops), buyer.Suggestions)
	}
	repl, ok := ops[0].(change.Replace)
	if !ok {
		t.Fatalf("suggestion is %T, want Replace", ops[0])
	}
	wantPath := bpel.Path{"Sequence:buyer process", "While:tracking"}
	if !repl.Path.Equal(wantPath) {
		t.Fatalf("suggestion path = %v, want %v", repl.Path, wantPath)
	}
	// The replacement is an internal choice (switch), as in Fig. 18.
	if repl.New.Kind() != bpel.KindSwitch {
		t.Fatalf("replacement kind = %v, want Switch", repl.New.Kind())
	}

	newBuyer, res, err := c.AdaptPartner(Buyer, ops)
	if err != nil {
		t.Fatal(err)
	}
	// The adapted buyer supports at most one tracking round.
	if !res.Automaton.Accepts(word("B#A#orderOp", "A#B#deliveryOp", "B#A#getStatusOp", "A#B#statusOp", "B#A#terminateOp")) {
		t.Fatalf("one tracking round lost:\n%s", res.Automaton.DebugString())
	}
	if !res.Automaton.Accepts(word("B#A#orderOp", "A#B#deliveryOp", "B#A#terminateOp")) {
		t.Fatalf("direct termination lost:\n%s", res.Automaton.DebugString())
	}
	if res.Automaton.Accepts(word("B#A#orderOp", "A#B#deliveryOp",
		"B#A#getStatusOp", "A#B#statusOp", "B#A#getStatusOp", "A#B#statusOp", "B#A#terminateOp")) {
		t.Fatal("two tracking rounds still accepted")
	}
	ok2, err := afsa.Consistent(buyer.NewView, res.Automaton.View(Accounting))
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatalf("adapted buyer still inconsistent:\nview:\n%s\nbuyer':\n%s",
			buyer.NewView.DebugString(), res.Automaton.DebugString())
	}

	// The adaptation is behaviorally the paper's Fig. 18 process: both
	// derive to the same public automaton.
	fig18, err := mapping.Derive(Fig18BuyerProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	if diff := afsa.ExplainDifference(res.Automaton, fig18.Automaton); diff != "" {
		t.Fatalf("adapted buyer public differs from Fig. 18's: %s", diff)
	}

	// The paper closes: "the propagation with the logistics has to be
	// performed in a similar way." Under Def. 6 with our logistics
	// model the formal criterion actually reports *invariant*: the
	// logistics tracking loop is a pick (external choice, the
	// accounting decides), so bounding the rounds never violates a
	// logistics-mandatory alternative — logistics merely keeps an
	// unexercised capability, which is deadlock-free. The subtractive
	// view change is detected (Def. 5) but needs no propagation. This
	// nuance is recorded in EXPERIMENTS.md.
	logistics := impactOn(t, rep, Logistics)
	if !logistics.ViewChanged {
		t.Fatal("logistics view should have changed")
	}
	if logistics.Classification.Kind != core.KindSubtractive {
		t.Fatalf("logistics kind = %v, want subtractive", logistics.Classification.Kind)
	}
	if logistics.Classification.Scope != core.ScopeInvariant {
		t.Fatalf("logistics scope = %v, want invariant (pick-based loop)", logistics.Classification.Scope)
	}

	if err := c.Commit(rep); err != nil {
		t.Fatal(err)
	}
	if err := c.CommitParty(newBuyer); err != nil {
		t.Fatal(err)
	}
	check, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent() {
		t.Fatalf("choreography inconsistent after subtractive propagation:\n%s", check)
	}
}
