package paperrepro

import (
	"repro/internal/afsa"
	"repro/internal/formula"
	"repro/internal/label"
)

// Note on operation names: the paper's BPEL listings use getStatusOp
// while some figure labels abbreviate to get_statusOp; this repository
// normalizes to the BPEL names (getStatusOp, getStatusLOp) everywhere.

func lbl(s string) label.Label { return label.MustParse(s) }

func v(s string) *formula.Formula { return formula.Var(s) }

// Fig5PartyA returns the left aFSA of paper Fig. 5: a choice between
// msg0 and msg2, both optional.
func Fig5PartyA() *afsa.Automaton {
	a := afsa.New("party A")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("B#A#msg0"), q1)
	a.AddTransition(q0, lbl("B#A#msg2"), q2)
	return a
}

// Fig5PartyB returns the right aFSA of paper Fig. 5: a choice between
// msg1 and msg2, both mandatory (conjunctive annotation).
func Fig5PartyB() *afsa.Automaton {
	a := afsa.New("party B")
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.SetFinal(q2, true)
	a.AddTransition(q0, lbl("B#A#msg1"), q1)
	a.AddTransition(q0, lbl("B#A#msg2"), q2)
	a.Annotate(q0, formula.And(v("B#A#msg1"), v("B#A#msg2")))
	return a
}

// Fig5Intersection returns the expected intersection automaton of
// Fig. 5: only the shared msg2 transition survives, annotated with
// party B's conjunction (annotated-empty).
func Fig5Intersection() *afsa.Automaton {
	a := afsa.New("intersection of A and B")
	q0 := a.AddState()
	q1 := a.AddState()
	a.SetStart(q0)
	a.SetFinal(q1, true)
	a.AddTransition(q0, lbl("B#A#msg2"), q1)
	a.Annotate(q0, formula.And(v("B#A#msg1"), v("B#A#msg2")))
	return a
}

// Fig6BuyerPublic returns the expected buyer public process of paper
// Fig. 6 (states numbered 1–5 in the paper, 0–4 here):
//
//	0 --B#A#orderOp--> 1 --A#B#deliveryOp--> 2
//	2 --B#A#getStatusOp--> 3 --A#B#statusOp--> 2
//	2 --B#A#terminateOp--> 4 (final)
//
// State 2 carries the internal-choice annotation
// "B#A#getStatusOp AND B#A#terminateOp".
func Fig6BuyerPublic() *afsa.Automaton {
	a := afsa.New("buyer public")
	s := make([]afsa.StateID, 5)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.SetFinal(s[4], true)
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#deliveryOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#getStatusOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#statusOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#terminateOp"), s[4])
	a.Annotate(s[2], formula.And(v("B#A#getStatusOp"), v("B#A#terminateOp")))
	return a
}

// Table1Expected returns the expected buyer mapping table of paper
// Table 1, keyed by the states of Fig6BuyerPublic (paper state n =
// state n-1 here). Each row lists the BPEL block names associated
// with the state.
func Table1Expected() map[afsa.StateID][]string {
	return map[afsa.StateID][]string{
		0: {"BPELProcess", "Sequence:buyer process"},
		1: {"Sequence:buyer process"},
		2: {"Sequence:buyer process", "While:tracking", "Switch:termination?",
			"Sequence:cond continue", "Sequence:cond terminate"},
		3: {"Sequence:cond continue"},
		4: {"Sequence:cond terminate"},
	}
}

// Fig7AccountingPublic returns the expected accounting public process
// of paper Fig. 7: the full three-party conversation from the
// accounting perspective, including the synchronous getStatusLOp
// request/response pair.
func Fig7AccountingPublic() *afsa.Automaton {
	a := afsa.New("accounting public")
	s := make([]afsa.StateID, 10)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#L#deliverOp"), s[2])
	a.AddTransition(s[2], lbl("L#A#deliver_confOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#deliveryOp"), s[4])
	// Parcel tracking loop (pick: external choice, no annotation).
	a.AddTransition(s[4], lbl("B#A#getStatusOp"), s[5])
	a.AddTransition(s[5], lbl("A#L#getStatusLOp"), s[6])
	a.AddTransition(s[6], lbl("L#A#getStatusLOp"), s[7])
	a.AddTransition(s[7], lbl("A#B#statusOp"), s[4])
	// Termination.
	a.AddTransition(s[4], lbl("B#A#terminateOp"), s[8])
	a.AddTransition(s[8], lbl("A#L#terminateLOp"), s[9])
	a.SetFinal(s[9], true)
	return a
}

// Fig8aBuyerView returns the expected buyer view of the accounting
// public process (paper Fig. 8a, minimized): structurally the buyer
// conversation of Fig. 6 but *without* the mandatory annotation — the
// accounting pick is an external choice.
func Fig8aBuyerView() *afsa.Automaton {
	a := Fig6BuyerPublic()
	a.Name = "τ_B(accounting public)"
	for q := 0; q < a.NumStates(); q++ {
		a.ClearAnnotations(afsa.StateID(q))
	}
	return a
}

// Fig8bLogisticsView returns the expected logistics view of the
// accounting public process (paper Fig. 8b, minimized).
func Fig8bLogisticsView() *afsa.Automaton {
	a := afsa.New("τ_L(accounting public)")
	s := make([]afsa.StateID, 5)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.SetFinal(s[4], true)
	a.AddTransition(s[0], lbl("A#L#deliverOp"), s[1])
	a.AddTransition(s[1], lbl("L#A#deliver_confOp"), s[2])
	a.AddTransition(s[2], lbl("A#L#getStatusLOp"), s[3])
	a.AddTransition(s[3], lbl("L#A#getStatusLOp"), s[2])
	a.AddTransition(s[2], lbl("A#L#terminateLOp"), s[4])
	return a
}

// LogisticsPublicExpected returns the expected logistics public
// process derived from LogisticsProcess — the mirror image of Fig. 8b
// (logistics receives what accounting sends).
func LogisticsPublicExpected() *afsa.Automaton {
	a := Fig8bLogisticsView()
	a.Name = "logistics public"
	return a
}
