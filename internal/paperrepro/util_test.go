package paperrepro

import "repro/internal/label"

// word builds a message sequence from label strings.
func word(labels ...string) []label.Label {
	out := make([]label.Label, len(labels))
	for i, s := range labels {
		out[i] = label.MustParse(s)
	}
	return out
}
