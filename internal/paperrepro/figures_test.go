package paperrepro

import (
	"sort"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/mapping"
)

// TestFig5 reproduces the aFSA worked example of paper Fig. 5.
func TestFig5(t *testing.T) {
	inter := Fig5PartyA().Intersect(Fig5PartyB())
	want := Fig5Intersection()
	if diff := afsa.ExplainDifference(inter, want); diff != "" {
		t.Fatalf("Fig. 5 intersection differs from the paper: %s", diff)
	}
	empty, err := inter.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("Fig. 5 intersection must be annotated-empty")
	}
}

// TestFig6 reproduces the buyer public process (paper Fig. 6) from the
// buyer private BPEL process (paper Fig. 3).
func TestFig6(t *testing.T) {
	res, err := mapping.Derive(BuyerProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	if diff := afsa.ExplainDifference(res.Automaton, Fig6BuyerPublic()); diff != "" {
		t.Fatalf("derived buyer public differs from Fig. 6: %s", diff)
	}
	if res.Automaton.NumStates() != 5 {
		t.Fatalf("buyer public has %d states, want 5", res.Automaton.NumStates())
	}
}

// TestTable1 reproduces the buyer mapping table (paper Table 1).
func TestTable1(t *testing.T) {
	res, err := mapping.Derive(BuyerProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	// Identify the canonical state numbering by matching Fig. 6: the
	// derived automaton is already minimized with BFS numbering, which
	// coincides with the paper's 1..5 (shifted to 0..4).
	want := Table1Expected()
	if len(want) != res.Automaton.NumStates() {
		t.Fatalf("state count %d vs expected %d", res.Automaton.NumStates(), len(want))
	}
	for q, wantBlocks := range want {
		got := res.Table.Blocks(q)
		gs, ws := append([]string(nil), got...), append([]string(nil), wantBlocks...)
		sort.Strings(gs)
		sort.Strings(ws)
		if len(gs) != len(ws) {
			t.Fatalf("state %d blocks = %v, want %v", q, got, wantBlocks)
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("state %d blocks = %v, want %v", q, got, wantBlocks)
			}
		}
	}
}

// TestFig7 reproduces the accounting public process (paper Fig. 7).
func TestFig7(t *testing.T) {
	res, err := mapping.Derive(AccountingProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	if diff := afsa.ExplainDifference(res.Automaton, Fig7AccountingPublic()); diff != "" {
		t.Fatalf("derived accounting public differs from Fig. 7: %s", diff)
	}
}

// TestFig8Views reproduces the bilateral views of the accounting
// public process (paper Fig. 8).
func TestFig8Views(t *testing.T) {
	res, err := mapping.Derive(AccountingProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	buyerView := res.Automaton.View(Buyer)
	if diff := afsa.ExplainDifference(buyerView, Fig8aBuyerView()); diff != "" {
		t.Fatalf("buyer view differs from Fig. 8a: %s", diff)
	}
	logView := res.Automaton.View(Logistics)
	if diff := afsa.ExplainDifference(logView, Fig8bLogisticsView()); diff != "" {
		t.Fatalf("logistics view differs from Fig. 8b: %s", diff)
	}
}

// TestLogisticsPublic derives the logistics public process; it must
// mirror Fig. 8b.
func TestLogisticsPublic(t *testing.T) {
	res, err := mapping.Derive(LogisticsProcess(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	if diff := afsa.ExplainDifference(res.Automaton, LogisticsPublicExpected()); diff != "" {
		t.Fatalf("logistics public differs from expectation: %s", diff)
	}
}

// TestScenarioBilateralConsistency checks the paper's premise: the
// original choreography is bilaterally consistent on both protocol
// pairs (buyer↔accounting and accounting↔logistics).
func TestScenarioBilateralConsistency(t *testing.T) {
	reg := Registry()
	acc, err := mapping.Derive(AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	buyer, err := mapping.Derive(BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}

	accForBuyer := acc.Automaton.View(Buyer)
	buyerForAcc := buyer.Automaton.View(Accounting)
	ok, err := afsa.Consistent(accForBuyer, buyerForAcc)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("buyer and accounting inconsistent:\n%s\n%s",
			accForBuyer.DebugString(), buyerForAcc.DebugString())
	}

	accForLog := acc.Automaton.View(Logistics)
	logForAcc := logistics.Automaton.View(Accounting)
	ok, err = afsa.Consistent(accForLog, logForAcc)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("accounting and logistics inconsistent:\n%s\n%s",
			accForLog.DebugString(), logForAcc.DebugString())
	}
}

// TestScenarioXMLRoundTrip guards the BPEL fixtures through XML
// serialization (paper Fig. 2/3 are BPEL documents).
func TestScenarioXMLRoundTrip(t *testing.T) {
	reg := Registry()
	for _, p := range []*bpel.Process{BuyerProcess(), AccountingProcess(), LogisticsProcess()} {
		if err := p.Validate(reg); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		data, err := bpel.MarshalXML(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		back, err := bpel.UnmarshalXML(data)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if p.String() != back.String() {
			t.Fatalf("%s: XML round trip changed the process", p.Name)
		}
	}
}
