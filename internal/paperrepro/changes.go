package paperrepro

import (
	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/formula"
)

// OrderTwoChange returns the invariant additive change of paper
// Sec. 5.1 / Fig. 9: the accounting department additionally accepts an
// alternative order message format (order_2), widening the initial
// order receive into a pick.
func OrderTwoChange() change.Operation {
	return change.ReplaceReceiveWithPick{
		Path:      bpel.Path{"Sequence:accounting process", "Receive:order"},
		BlockName: "order formats",
		Extra: []bpel.OnMessage{
			{Partner: Buyer, Op: "order_2Op", Body: &bpel.Empty{BlockName: "order_2 done"}},
		},
	}
}

// CancelChange returns the variant additive change of paper Sec. 5.2 /
// Fig. 11: after receiving the order the accounting department checks
// the credit status and either proceeds (deliver … tracking) or sends
// a cancel message to the buyer and stops.
func CancelChange() change.Operation {
	return change.WrapTailInSwitch{
		Path:        bpel.Path{"Sequence:accounting process"},
		FromElement: "Invoke:deliver",
		SwitchName:  "credit check",
		CaseName:    "process order",
		Cond:        `creditStatus = "ok"`,
		Else: &bpel.Sequence{
			BlockName: "cancel order",
			Children: []bpel.Activity{
				&bpel.Invoke{BlockName: "cancel", Partner: Buyer, Op: "cancelOp"},
				&bpel.Terminate{BlockName: "cancelled"},
			},
		},
	}
}

// TrackingLimitChange returns the variant subtractive change of paper
// Sec. 5.3 / Fig. 15: the unlimited parcel-tracking loop is replaced
// by a decision allowing at most one tracking request; both paths
// finish with the terminate exchange.
func TrackingLimitChange() change.Operation {
	terminateTail := func(suffix string) []bpel.Activity {
		return []bpel.Activity{
			&bpel.Invoke{BlockName: "terminateL" + suffix, Partner: Logistics, Op: "terminateLOp"},
			&bpel.Terminate{BlockName: "end" + suffix},
		}
	}
	newPick := &bpel.Pick{
		BlockName: "track once?",
		Branches: []bpel.OnMessage{
			{
				Partner: Buyer,
				Op:      "getStatusOp",
				Body: &bpel.Sequence{
					BlockName: "track once",
					Children: append([]bpel.Activity{
						&bpel.Invoke{BlockName: "getStatusL", Partner: Logistics, Op: "getStatusLOp", Sync: true},
						&bpel.Invoke{BlockName: "status", Partner: Buyer, Op: "statusOp"},
						&bpel.Receive{BlockName: "terminate", Partner: Buyer, Op: "terminateOp"},
					}, terminateTail(" after tracking")...),
				},
			},
			{
				Partner: Buyer,
				Op:      "terminateOp",
				Body: &bpel.Sequence{
					BlockName: "terminate directly",
					Children:  terminateTail(" directly"),
				},
			},
		},
	}
	return change.Replace{
		Path: bpel.Path{"Sequence:accounting process", "While:parcel tracking"},
		New:  newPick,
	}
}

// ---- expected artifacts of the change scenarios ----

// Fig10aBuyerViewAfterOrderTwo returns the expected buyer view of the
// accounting public process after the invariant additive change
// (Fig. 10a): like Fig. 8a with an alternative order_2 transition.
func Fig10aBuyerViewAfterOrderTwo() *afsa.Automaton {
	a := Fig8aBuyerView()
	a.Name = "τ_B(accounting public + order_2)"
	// State 0 is the start, state 1 the post-order state (BFS order).
	a.AddTransition(0, lbl("B#A#order_2Op"), 1)
	return a
}

// Fig12aBuyerViewAfterCancel returns the expected buyer view after the
// variant additive cancel change (Fig. 12a): the post-order state
// carries the projected mandatory annotation
// "A#B#cancelOp AND A#B#deliveryOp", and a cancel branch leads to a
// final state.
func Fig12aBuyerViewAfterCancel() *afsa.Automaton {
	a := afsa.New("τ_B(accounting public + cancel)")
	s := make([]afsa.StateID, 6)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#deliveryOp"), s[2])
	a.AddTransition(s[1], lbl("A#B#cancelOp"), s[5])
	a.AddTransition(s[2], lbl("B#A#getStatusOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#statusOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#terminateOp"), s[4])
	a.SetFinal(s[4], true)
	a.SetFinal(s[5], true)
	a.Annotate(s[1], formula.And(v("A#B#cancelOp"), v("A#B#deliveryOp")))
	return a
}

// Fig13aDifference returns the expected difference automaton
// A” = τ_B(A') \ B of Fig. 13a (minimized): the single added sequence
// order·cancel, with the mandatory annotation inherited from the
// changed accounting view.
func Fig13aDifference() *afsa.Automaton {
	a := afsa.New("difference (buyer view of accounting') \\ buyer public")
	s := make([]afsa.StateID, 3)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.SetFinal(s[2], true)
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#cancelOp"), s[2])
	a.Annotate(s[1], formula.And(v("A#B#cancelOp"), v("A#B#deliveryOp")))
	return a
}

// Fig13bNewBuyerPublic returns the expected adapted buyer public
// process B' = A” ∪ B of Fig. 13b (minimized): the buyer conversation
// of Fig. 6 extended with the cancel alternative after the order.
func Fig13bNewBuyerPublic() *afsa.Automaton {
	a := afsa.New("buyer public'")
	s := make([]afsa.StateID, 6)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#deliveryOp"), s[2])
	a.AddTransition(s[1], lbl("A#B#cancelOp"), s[5])
	a.AddTransition(s[2], lbl("B#A#getStatusOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#statusOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#terminateOp"), s[4])
	a.SetFinal(s[4], true)
	a.SetFinal(s[5], true)
	// The union inherits both the A''-side annotation at the
	// post-order state and the buyer's tracking annotation.
	a.Annotate(s[1], formula.And(v("A#B#cancelOp"), v("A#B#deliveryOp")))
	a.Annotate(s[2], formula.And(v("B#A#getStatusOp"), v("B#A#terminateOp")))
	return a
}

// Fig16aBuyerViewAfterTrackingLimit returns the expected buyer view of
// the accounting public process after the subtractive change
// (Fig. 16a): at most one tracking round, then a mandatory terminate.
func Fig16aBuyerViewAfterTrackingLimit() *afsa.Automaton {
	a := afsa.New("τ_B(accounting public, ≤1 tracking)")
	s := make([]afsa.StateID, 7)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#deliveryOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#getStatusOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#statusOp"), s[4])
	a.AddTransition(s[4], lbl("B#A#terminateOp"), s[5])
	a.AddTransition(s[2], lbl("B#A#terminateOp"), s[6])
	a.SetFinal(s[5], true)
	a.SetFinal(s[6], true)
	return a
}

// Fig17bNewBuyerPublic returns the expected adapted buyer public
// process B' = B \ (B \ τ_B(A')) of Fig. 17b (minimized): the buyer
// conversation bounded to at most one tracking round. Annotations are
// inherited from B (Def. 4 keeps QA1); the tracking annotation
// survives at the branch states.
func Fig17bNewBuyerPublic() *afsa.Automaton {
	a := afsa.New("buyer public after subtractive propagation")
	s := make([]afsa.StateID, 7)
	for i := range s {
		s[i] = a.AddState()
	}
	a.SetStart(s[0])
	a.AddTransition(s[0], lbl("B#A#orderOp"), s[1])
	a.AddTransition(s[1], lbl("A#B#deliveryOp"), s[2])
	a.AddTransition(s[2], lbl("B#A#getStatusOp"), s[3])
	a.AddTransition(s[3], lbl("A#B#statusOp"), s[4])
	a.AddTransition(s[4], lbl("B#A#terminateOp"), s[5])
	a.AddTransition(s[2], lbl("B#A#terminateOp"), s[6])
	a.SetFinal(s[5], true)
	a.SetFinal(s[6], true)
	a.Annotate(s[2], formula.And(v("B#A#getStatusOp"), v("B#A#terminateOp")))
	a.Annotate(s[4], formula.And(v("B#A#getStatusOp"), v("B#A#terminateOp")))
	return a
}
