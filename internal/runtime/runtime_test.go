package runtime

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func lbl(s string) label.Label { return label.MustParse(s) }

// pingPong builds matching two-party automata: B sends ping, A
// answers pong.
func pingPong() map[string]*afsa.Automaton {
	a := afsa.New("A")
	a0 := a.AddState()
	a1 := a.AddState()
	a2 := a.AddState()
	a.SetStart(a0)
	a.SetFinal(a2, true)
	a.AddTransition(a0, lbl("B#A#ping"), a1)
	a.AddTransition(a1, lbl("A#B#pong"), a2)

	b := afsa.New("B")
	b0 := b.AddState()
	b1 := b.AddState()
	b2 := b.AddState()
	b.SetStart(b0)
	b.SetFinal(b2, true)
	b.AddTransition(b0, lbl("B#A#ping"), b1)
	b.AddTransition(b1, lbl("A#B#pong"), b2)

	return map[string]*afsa.Automaton{"A": a, "B": b}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(map[string]*afsa.Automaton{"A": afsa.New("A")}); err == nil {
		t.Fatal("single-party system accepted")
	}
	bad := pingPong()
	q := bad["A"].AddState()
	bad["A"].AddTransition(bad["A"].Start(), lbl("A#Z#ghost"), q)
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("label to unknown party accepted")
	}
	if _, err := NewSystem(map[string]*afsa.Automaton{"A": nil, "B": afsa.New("B")}); err == nil {
		t.Fatal("nil automaton accepted")
	}
}

func TestExplorePingPong(t *testing.T) {
	sys, err := NewSystem(pingPong())
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Explore(0)
	if !res.DeadlockFree() {
		t.Fatalf("ping-pong deadlocks: %v", res.Failures)
	}
	if res.Completions != 1 {
		t.Fatalf("completions = %d, want 1", res.Completions)
	}
	if res.States != 3 {
		t.Fatalf("states = %d, want 3", res.States)
	}
	if res.Truncated {
		t.Fatal("tiny system truncated")
	}
}

func TestExploreDetectsUnreceivable(t *testing.T) {
	parties := pingPong()
	// B optionally sends an extra message A cannot receive.
	b := parties["B"]
	q := b.AddState()
	b.SetFinal(q, true)
	b.AddTransition(b.Start(), lbl("B#A#surprise"), q)
	sys, err := NewSystem(parties)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Explore(0)
	if res.DeadlockFree() {
		t.Fatal("unreceivable message not detected")
	}
	found := false
	for _, f := range res.Failures {
		if f.Kind == FailureUnreceivable && f.Label == lbl("B#A#surprise") {
			found = true
			if f.String() == "" {
				t.Fatal("empty failure string")
			}
		}
	}
	if !found {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestExploreDetectsStuck(t *testing.T) {
	// A waits for a message B never sends.
	a := afsa.New("A")
	a0 := a.AddState()
	a1 := a.AddState()
	a.SetStart(a0)
	a.SetFinal(a1, true)
	a.AddTransition(a0, lbl("B#A#never"), a1)

	b := afsa.New("B")
	b0 := b.AddState()
	b.SetStart(b0)
	b.SetFinal(b0, false) // B idles non-final without sending

	sys, err := NewSystem(map[string]*afsa.Automaton{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	// With the default lenient completion both parties are still in
	// their start states, so the initial state counts as (vacuously)
	// complete. Strict completion flags it as stuck.
	if res := sys.Explore(0); !res.DeadlockFree() {
		t.Fatalf("lenient completion should accept the never-started system: %v", res.Failures)
	}
	sys.StrictCompletion = true
	res := sys.Explore(0)
	if res.DeadlockFree() {
		t.Fatal("stuck state not detected under strict completion")
	}
	if res.Failures[0].Kind != FailureStuck {
		t.Fatalf("failure kind = %v", res.Failures[0].Kind)
	}
}

// TestPaperScenarioDeadlockFree runs the full three-party procurement
// choreography: bilateral consistency (validated in paperrepro) must
// coincide with deadlock-free joint execution.
func TestPaperScenarioDeadlockFree(t *testing.T) {
	reg := paperrepro.Registry()
	parties := map[string]*afsa.Automaton{}
	buyer, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	parties[paperrepro.Buyer] = buyer.Automaton
	parties[paperrepro.Accounting] = acc.Automaton
	parties[paperrepro.Logistics] = logistics.Automaton

	sys, err := NewSystem(parties)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Explore(0)
	if !res.DeadlockFree() {
		t.Fatalf("paper scenario deadlocks: %v", res.Failures)
	}
	if res.Completions == 0 {
		t.Fatal("paper scenario never completes")
	}
}

// TestUncontrolledChangeFails commits the variant additive cancel
// change WITHOUT propagating it to the buyer: the execution must be
// able to fail (Sec. 3.1: "the execution of the modified process
// choreography could fail").
func TestUncontrolledChangeFails(t *testing.T) {
	reg := paperrepro.Registry()
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(changed, reg)
	if err != nil {
		t.Fatal(err)
	}
	buyer, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(map[string]*afsa.Automaton{
		paperrepro.Buyer:      buyer.Automaton,
		paperrepro.Accounting: acc.Automaton,
		paperrepro.Logistics:  logistics.Automaton,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Explore(0)
	if res.DeadlockFree() {
		t.Fatal("uncontrolled variant change did not surface any failure")
	}
	// The failure is exactly the unpropagated cancel message.
	found := false
	for _, f := range res.Failures {
		if f.Kind == FailureUnreceivable && f.Label == lbl("A#B#cancelOp") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unreceivable cancelOp, got %v", res.Failures)
	}
}

func TestRandomWalkCompletesAndFails(t *testing.T) {
	sys, err := NewSystem(pingPong())
	if err != nil {
		t.Fatal(err)
	}
	w := sys.RandomWalk(1, 100)
	if !w.Completed || w.Failure != nil || len(w.Trace) != 2 {
		t.Fatalf("walk = %+v", w)
	}

	// Broken system: walks eventually fail.
	parties := pingPong()
	b := parties["B"]
	q := b.AddState()
	b.SetFinal(q, true)
	b.AddTransition(b.Start(), lbl("B#A#surprise"), q)
	sys2, err := NewSystem(parties)
	if err != nil {
		t.Fatal(err)
	}
	rate := sys2.FailureRate(42, 200, 100)
	if rate <= 0 {
		t.Fatal("failure rate 0 for broken system")
	}
	if good := sys.FailureRate(42, 50, 100); good != 0 {
		t.Fatalf("failure rate %v for correct system", good)
	}
}

func TestWalkBudget(t *testing.T) {
	// Infinite tracking loop: the walk must stop at its budget without
	// reporting failure.
	reg := paperrepro.Registry()
	buyer, _ := mapping.Derive(paperrepro.BuyerProcess(), reg)
	acc, _ := mapping.Derive(paperrepro.AccountingProcess(), reg)
	logistics, _ := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	sys, err := NewSystem(map[string]*afsa.Automaton{
		paperrepro.Buyer:      buyer.Automaton,
		paperrepro.Accounting: acc.Automaton,
		paperrepro.Logistics:  logistics.Automaton,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		w := sys.RandomWalk(seed, 50)
		if w.Failure != nil {
			t.Fatalf("seed %d: consistent choreography failed: %v", seed, w.Failure)
		}
	}
}

func TestPartiesOrder(t *testing.T) {
	sys, err := NewSystem(pingPong())
	if err != nil {
		t.Fatal(err)
	}
	ps := sys.Parties()
	if len(ps) != 2 || ps[0] != "A" || ps[1] != "B" {
		t.Fatalf("Parties = %v", ps)
	}
}
