// Package runtime executes a choreography: the public processes of
// all parties run jointly under the paper's synchronous communication
// model (Sec. 3.2 motivates aFSAs with HTTP-style synchronous
// message exchange). It is the empirical substrate replacing the
// authors' prototype: the tests use it to validate that bilateral
// consistency really predicts deadlock-free execution (the paper's
// central claim, "the non-emptiness of the intersection of two
// automata guarantees for the absence of deadlock"), and the
// benchmarks use it for the controlled-vs-uncontrolled evolution
// experiment.
//
// # Execution model
//
// Every party occupies one state of its (ε-free, deterministic)
// public process. A step is a rendezvous: a *sender* party picks one
// of its outgoing send labels — modeling its internal, data-driven
// decision — and the receiver must be able to take a transition with
// the same label. Two failure modes exist:
//
//   - communication failure: the chosen message cannot be received
//     (the modified choreography "could fail" of Sec. 3.1);
//   - stuck state: no party can move and not every party is final.
//
// Explore enumerates the full global state space and reports every
// failure; RandomWalk performs seeded random executions.
package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/afsa"
	"repro/internal/label"
)

// System is a set of parties ready for joint execution.
type System struct {
	names  []string
	autos  []*afsa.Automaton // ε-free, deterministic
	starts []afsa.StateID

	// StrictCompletion requires every party to reach a final state.
	// By default a party still in its start state counts as
	// vacuously complete: a conversation that never engages a party
	// is not a deadlock. (The paper's own Sec. 5.2 scenario relies on
	// this — a cancelled order never involves the logistics
	// department, yet all bilateral protocols stay consistent.)
	StrictCompletion bool
}

// NewSystem builds a system from the public processes of the parties.
// Every label must connect two registered parties.
func NewSystem(parties map[string]*afsa.Automaton) (*System, error) {
	if len(parties) < 2 {
		return nil, fmt.Errorf("runtime: need at least two parties, got %d", len(parties))
	}
	s := &System{}
	for name := range parties {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	index := map[string]int{}
	for i, n := range s.names {
		index[n] = i
	}
	for _, n := range s.names {
		a := parties[n]
		if a == nil {
			return nil, fmt.Errorf("runtime: party %q has no automaton", n)
		}
		d := a.Determinize()
		d.Name = a.Name
		for l := range d.Alphabet() {
			if _, ok := index[l.Sender()]; !ok {
				return nil, fmt.Errorf("runtime: label %s of party %q references unknown party %q", l, n, l.Sender())
			}
			if _, ok := index[l.Receiver()]; !ok {
				return nil, fmt.Errorf("runtime: label %s of party %q references unknown party %q", l, n, l.Receiver())
			}
		}
		s.autos = append(s.autos, d)
		s.starts = append(s.starts, d.Start())
	}
	return s, nil
}

// Parties returns the party names in canonical order.
func (s *System) Parties() []string { return append([]string(nil), s.names...) }

func (s *System) party(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

// GlobalState is one configuration of the joint execution.
type GlobalState []afsa.StateID

func (g GlobalState) key() string {
	var b strings.Builder
	for i, q := range g {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", q)
	}
	return b.String()
}

func (s *System) initial() GlobalState {
	return append(GlobalState(nil), s.starts...)
}

// allFinal reports whether the global state counts as complete: every
// party is in a final state, or (unless StrictCompletion) never left
// its start state.
func (s *System) allFinal(g GlobalState) bool {
	for i, a := range s.autos {
		if a.IsFinal(g[i]) {
			continue
		}
		if !s.StrictCompletion && g[i] == s.starts[i] {
			continue
		}
		return false
	}
	return true
}

// move is one attempted rendezvous.
type move struct {
	label label.Label
	next  GlobalState
	ok    bool // receiver could accept
}

// moves enumerates every send option of every party at g, marking
// whether the receiver can currently accept it.
func (s *System) moves(g GlobalState) []move {
	var out []move
	for i, a := range s.autos {
		name := s.names[i]
		for _, t := range a.Transitions(g[i]) {
			if t.Label.Sender() != name {
				continue // the receiver is reactive
			}
			ri := s.party(t.Label.Receiver())
			m := move{label: t.Label}
			// The automata are deterministic: at most one target.
			if targets := s.autos[ri].Step(g[ri], t.Label); len(targets) > 0 {
				next := append(GlobalState(nil), g...)
				next[i] = t.To
				next[ri] = targets[0]
				m.next = next
				m.ok = true
			}
			out = append(out, m)
		}
	}
	return out
}

// FailureKind distinguishes the two ways a run can fail.
type FailureKind int

// Failure kinds.
const (
	// FailureUnreceivable: a sender committed to a message the
	// receiver cannot accept.
	FailureUnreceivable FailureKind = iota
	// FailureStuck: nobody can move but the conversation is not
	// complete.
	FailureStuck
)

func (k FailureKind) String() string {
	if k == FailureUnreceivable {
		return "unreceivable message"
	}
	return "stuck"
}

// Failure is one reachable execution failure.
type Failure struct {
	Kind  FailureKind
	Trace []label.Label
	// Label is the unreceivable message (FailureUnreceivable only).
	Label label.Label
}

func (f Failure) String() string {
	w := afsa.Word(f.Trace)
	if f.Kind == FailureUnreceivable {
		return fmt.Sprintf("after %s: %s cannot be received", w, f.Label)
	}
	return fmt.Sprintf("after %s: stuck", w)
}

// Result is the outcome of exhaustive exploration.
type Result struct {
	// States is the number of distinct global states visited.
	States int
	// Completions is the number of distinct completed states.
	Completions int
	// Failures are the reachable failures (witness traces included),
	// capped at the explore limit.
	Failures []Failure
	// Truncated reports that the exploration hit its state limit.
	Truncated bool
}

// DeadlockFree reports whether no failure is reachable.
func (r *Result) DeadlockFree() bool { return len(r.Failures) == 0 }

// Explore enumerates the reachable global state space (bounded by
// limit states; 0 means 1<<20) and records every reachable failure.
func (s *System) Explore(limit int) *Result {
	if limit <= 0 {
		limit = 1 << 20
	}
	res := &Result{}
	type item struct {
		g     GlobalState
		trace []label.Label
	}
	seen := map[string]bool{}
	start := s.initial()
	seen[start.key()] = true
	queue := []item{{g: start}}
	for len(queue) > 0 {
		if res.States >= limit {
			res.Truncated = true
			break
		}
		cur := queue[0]
		queue = queue[1:]
		res.States++
		ms := s.moves(cur.g)
		anyMove := false
		for _, m := range ms {
			if !m.ok {
				res.Failures = append(res.Failures, Failure{
					Kind:  FailureUnreceivable,
					Trace: cur.trace,
					Label: m.label,
				})
				continue
			}
			anyMove = true
			k := m.next.key()
			if !seen[k] {
				seen[k] = true
				trace := make([]label.Label, len(cur.trace)+1)
				copy(trace, cur.trace)
				trace[len(cur.trace)] = m.label
				queue = append(queue, item{g: m.next, trace: trace})
			}
		}
		if !anyMove {
			if s.allFinal(cur.g) {
				res.Completions++
			} else if len(ms) == 0 {
				res.Failures = append(res.Failures, Failure{Kind: FailureStuck, Trace: cur.trace})
			}
		}
	}
	return res
}

// WalkResult is the outcome of one random execution.
type WalkResult struct {
	Completed bool
	Failure   *Failure
	Trace     []label.Label
	Steps     int
}

// RandomWalk executes one run with a seeded scheduler: at each step a
// random ready sender and a random of its options are chosen (the
// option choice is free — internal decisions do not consult the
// receiver). maxSteps bounds non-terminating conversations; hitting
// the bound counts as completed-so-far (no failure).
func (s *System) RandomWalk(seed int64, maxSteps int) *WalkResult {
	r := rand.New(rand.NewSource(seed))
	g := s.initial()
	res := &WalkResult{}
	for res.Steps < maxSteps {
		ms := s.moves(g)
		if len(ms) == 0 {
			if s.allFinal(g) {
				res.Completed = true
			} else {
				res.Failure = &Failure{Kind: FailureStuck, Trace: res.Trace}
			}
			return res
		}
		m := ms[r.Intn(len(ms))]
		if !m.ok {
			res.Failure = &Failure{Kind: FailureUnreceivable, Trace: res.Trace, Label: m.label}
			return res
		}
		g = m.next
		res.Trace = append(res.Trace, m.label)
		res.Steps++
	}
	res.Completed = true // ran out of budget without failing
	return res
}

// FailureRate runs n seeded random walks and returns the fraction that
// fail — the measurement behind the controlled-vs-uncontrolled
// evolution experiment.
func (s *System) FailureRate(seed int64, n, maxSteps int) float64 {
	failures := 0
	for i := 0; i < n; i++ {
		if w := s.RandomWalk(seed+int64(i), maxSteps); w.Failure != nil {
			failures++
		}
	}
	return float64(failures) / float64(n)
}
