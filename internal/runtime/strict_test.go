package runtime

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

// TestStrictCompletionExposesStarvation documents a known gap of the
// bilateral criterion for multi-party termination: after the cancel
// evolution (accounting + adapted buyer), every bilateral protocol is
// consistent, yet on the cancel path the logistics department is never
// engaged. Under the default lenient completion (a never-started party
// is vacuously complete) the system is deadlock-free; under strict
// completion the starvation becomes visible. The paper's own Fig. 11
// change has this property — the cancel branch never informs
// logistics.
func TestStrictCompletionExposesStarvation(t *testing.T) {
	reg := paperrepro.Registry()
	changedAcc, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(changedAcc, reg)
	if err != nil {
		t.Fatal(err)
	}
	buyer, err := mapping.Derive(paperrepro.Fig14BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	parties := map[string]*afsa.Automaton{
		paperrepro.Buyer:      buyer.Automaton,
		paperrepro.Accounting: acc.Automaton,
		paperrepro.Logistics:  logistics.Automaton,
	}

	sys, err := NewSystem(parties)
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Explore(0); !res.DeadlockFree() {
		t.Fatalf("lenient completion should accept the propagated choreography: %v", res.Failures)
	}

	sys.StrictCompletion = true
	res := sys.Explore(0)
	if res.DeadlockFree() {
		t.Fatal("strict completion should flag the logistics starvation on the cancel path")
	}
	// The stuck trace ends after order·cancel.
	foundCancelTrace := false
	for _, f := range res.Failures {
		if f.Kind == FailureStuck && len(f.Trace) == 2 && f.Trace[1] == lbl("A#B#cancelOp") {
			foundCancelTrace = true
		}
	}
	if !foundCancelTrace {
		t.Fatalf("expected a stuck trace ending in cancel, got %v", res.Failures)
	}
}
