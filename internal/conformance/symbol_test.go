package conformance

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/afsa"
	"repro/internal/label"
)

// sharedParties reinterns the paper scenario's automata onto one
// shared interner — the shape automata have when taken from one store
// snapshot, which is what enables the StepSymbol fast path.
func sharedParties(t *testing.T) (map[string]*afsa.Automaton, *label.Interner) {
	t.Helper()
	parties := paperParties(t)
	shared := label.NewInterner()
	for _, a := range parties {
		a.Reintern(shared)
	}
	return parties, shared
}

// StepSymbol must be observationally identical to Step on the label a
// symbol interns: same deviations (step, party, role, expected set),
// same states, same completion — across valid traces, deviating
// traces, and random label streams.
func TestStepSymbolMatchesStep(t *testing.T) {
	parties, shared := sharedParties(t)
	mLab, err := NewMonitor(parties)
	if err != nil {
		t.Fatal(err)
	}
	mSym, err := NewMonitor(parties)
	if err != nil {
		t.Fatal(err)
	}

	var alphabet []label.Label
	alphabet = append(alphabet, shared.Labels()...)
	traces := [][]label.Label{
		happyTrace(),
		// Deviate mid-conversation: the status answer before any
		// tracking request.
		word("B#A#orderOp", "A#B#statusOp"),
		// Unknown parties on both ends.
		word("B#A#orderOp", "Z#A#orderOp"),
		word("B#A#orderOp", "B#Z#orderOp"),
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := r.Intn(12) + 1
		trace := make([]label.Label, n)
		for j := range trace {
			trace[j] = alphabet[r.Intn(len(alphabet))]
		}
		traces = append(traces, trace)
	}

	for ti, trace := range traces {
		mLab.Reset()
		mSym.Reset()
		for li, l := range trace {
			sym, ok := shared.Lookup(l)
			if !ok {
				// Interning after monitor construction exercises the
				// late-symbol fallback inside StepSymbol.
				sym = shared.Intern(l)
			}
			dLab := mLab.Step(l)
			dSym := mSym.StepSymbol(sym)
			if !reflect.DeepEqual(dLab, dSym) {
				t.Fatalf("trace %d step %d (%s): Step = %+v, StepSymbol = %+v", ti, li, l, dLab, dSym)
			}
		}
		if mLab.Steps() != mSym.Steps() {
			t.Fatalf("trace %d: Steps %d vs %d", ti, mLab.Steps(), mSym.Steps())
		}
		if mLab.Complete() != mSym.Complete() {
			t.Fatalf("trace %d: Complete %v vs %v", ti, mLab.Complete(), mSym.Complete())
		}
	}
}

// A negative symbol (the store's marker for a label the interner has
// never produced) deviates as an unknown party without advancing.
func TestStepSymbolNegativeSymbolDeviates(t *testing.T) {
	parties, _ := sharedParties(t)
	m, err := NewMonitor(parties)
	if err != nil {
		t.Fatal(err)
	}
	d := m.StepSymbol(label.Symbol(-1))
	if d == nil || d.Role != RoleUnknown || d.Step != 0 {
		t.Fatalf("negative symbol deviation = %+v, want step-0 unknown-party deviation", d)
	}
	if m.Steps() != 0 {
		t.Fatalf("monitor advanced on a negative symbol: %d steps", m.Steps())
	}
}

// Monitors over automata with disjoint symbol spaces have no shared
// routing table; StepSymbol must refuse loudly rather than route by a
// wrong symbol.
func TestStepSymbolPanicsWithoutSharedInterner(t *testing.T) {
	parties := paperParties(t)
	distinct := false
	var first *label.Interner
	for _, a := range parties {
		if first == nil {
			first = a.Interner()
		} else if a.Interner() != first {
			distinct = true
		}
	}
	if !distinct {
		t.Skip("paper automata happen to share an interner; nothing to refuse")
	}
	m, err := NewMonitor(parties)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StepSymbol without a shared interner did not panic")
		}
	}()
	m.StepSymbol(0)
}
