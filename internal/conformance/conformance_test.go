package conformance

import (
	"strings"
	"testing"

	"repro/internal/afsa"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func word(labels ...string) []label.Label {
	out := make([]label.Label, len(labels))
	for i, s := range labels {
		out[i] = label.MustParse(s)
	}
	return out
}

func paperParties(t *testing.T) map[string]*afsa.Automaton {
	t.Helper()
	reg := paperrepro.Registry()
	out := map[string]*afsa.Automaton{}
	buyer, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	out[paperrepro.Buyer] = buyer.Automaton
	out[paperrepro.Accounting] = acc.Automaton
	out[paperrepro.Logistics] = logistics.Automaton
	return out
}

// happyTrace is one complete procurement conversation with a single
// tracking round.
func happyTrace() []label.Label {
	return word(
		"B#A#orderOp", "A#L#deliverOp", "L#A#deliver_confOp", "A#B#deliveryOp",
		"B#A#getStatusOp", "A#L#getStatusLOp", "L#A#getStatusLOp", "A#B#statusOp",
		"B#A#terminateOp", "A#L#terminateLOp",
	)
}

func TestMonitorAcceptsValidTrace(t *testing.T) {
	dev, complete, err := CheckTrace(paperParties(t), happyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("deviation on a valid trace: %v", dev)
	}
	if !complete {
		t.Fatal("valid full trace not complete")
	}
}

func TestMonitorIncompleteTrace(t *testing.T) {
	dev, complete, err := CheckTrace(paperParties(t), happyTrace()[:4])
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("deviation on a valid prefix: %v", dev)
	}
	if complete {
		t.Fatal("mid-conversation trace reported complete")
	}
}

func TestMonitorLocalizesReceiverDeviation(t *testing.T) {
	// The accounting department sends a cancel the buyer never agreed
	// to (the uncontrolled Sec. 5.2 change as seen on the wire).
	trace := word("B#A#orderOp", "A#B#cancelOp")
	parties := paperParties(t)
	// Sender side: use the changed accounting so the send is legal.
	changed, err := paperrepro.CancelChange().Apply(paperrepro.AccountingProcess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(changed, paperrepro.Registry())
	if err != nil {
		t.Fatal(err)
	}
	parties[paperrepro.Accounting] = res.Automaton

	dev, _, err := CheckTrace(parties, trace)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("deviation missed")
	}
	if dev.Party != paperrepro.Buyer || dev.Role != RoleReceiver {
		t.Fatalf("deviation = %v, want buyer as receiver", dev)
	}
	if dev.Step != 1 || dev.Label != label.MustParse("A#B#cancelOp") {
		t.Fatalf("deviation = %v", dev)
	}
	// The expectation names the delivery message.
	foundDelivery := false
	for _, l := range dev.Expected {
		if l == label.MustParse("A#B#deliveryOp") {
			foundDelivery = true
		}
	}
	if !foundDelivery {
		t.Fatalf("expected set %v misses deliveryOp", dev.Expected)
	}
	if !strings.Contains(dev.String(), "receiver") {
		t.Fatalf("String = %q", dev)
	}
}

func TestMonitorLocalizesSenderDeviation(t *testing.T) {
	// The buyer sends getStatus before the delivery arrived: its own
	// public process does not allow that.
	trace := word("B#A#orderOp", "B#A#getStatusOp")
	dev, _, err := CheckTrace(paperParties(t), trace)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("deviation missed")
	}
	if dev.Party != paperrepro.Buyer || dev.Role != RoleSender {
		t.Fatalf("deviation = %v, want buyer as sender", dev)
	}
}

func TestMonitorUnknownParty(t *testing.T) {
	trace := word("Z#A#mysteryOp")
	dev, _, err := CheckTrace(paperParties(t), trace)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil || dev.Role != RoleUnknown {
		t.Fatalf("deviation = %v, want unknown party", dev)
	}
}

func TestMonitorReset(t *testing.T) {
	m, err := NewMonitor(paperParties(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range happyTrace() {
		if d := m.Step(l); d != nil {
			t.Fatalf("deviation: %v", d)
		}
	}
	if m.Steps() != len(happyTrace()) {
		t.Fatalf("steps = %d", m.Steps())
	}
	m.Reset()
	if m.Steps() != 0 {
		t.Fatal("reset did not rewind")
	}
	// Replay works again after reset.
	if d := m.Step(happyTrace()[0]); d != nil {
		t.Fatalf("deviation after reset: %v", d)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil); err == nil {
		t.Fatal("empty monitor accepted")
	}
	if _, err := NewMonitor(map[string]*afsa.Automaton{"A": nil}); err == nil {
		t.Fatal("nil automaton accepted")
	}
}

func TestObservedAutomaton(t *testing.T) {
	traces := [][]label.Label{
		word("B#A#orderOp", "A#L#deliverOp", "A#B#deliveryOp"),
		word("B#A#orderOp", "A#B#cancelOp"),
	}
	obs := ObservedAutomaton("B", traces)
	// Logistics messages are projected away.
	if obs.Alphabet().Has(label.MustParse("A#L#deliverOp")) {
		t.Fatal("foreign label kept")
	}
	if !obs.Accepts(word("B#A#orderOp", "A#B#cancelOp")) {
		t.Fatal("observed word lost")
	}
	// Prefixes are accepted (all states final).
	if !obs.Accepts(word("B#A#orderOp")) {
		t.Fatal("prefix not accepted")
	}
}

// TestDetectDriftFindsUncontrolledChange: wire logs from the changed
// accounting process expose the unpublished cancel message.
func TestDetectDriftFindsUncontrolledChange(t *testing.T) {
	reg := paperrepro.Registry()
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	publishedBuyerView := acc.Automaton.View(paperrepro.Buyer)

	traces := [][]label.Label{
		word("B#A#orderOp", "A#B#deliveryOp", "B#A#terminateOp"),
		word("B#A#orderOp", "A#B#cancelOp"), // the drifted run
		word("B#A#orderOp", "A#B#deliveryOp", "B#A#getStatusOp", "A#B#statusOp", "B#A#terminateOp"),
	}
	drift := DetectDrift(paperrepro.Accounting, publishedBuyerView, traces)
	if !drift.Drifted() {
		t.Fatal("drift not detected")
	}
	foundCancel := false
	for _, h := range drift.Novel {
		if h.Label == label.MustParse("A#B#cancelOp") && h.Added {
			foundCancel = true
		}
	}
	if !foundCancel {
		t.Fatalf("novel hints = %v, want added cancelOp", drift.Novel)
	}
}

func TestDetectDriftCleanLogs(t *testing.T) {
	reg := paperrepro.Registry()
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	publishedBuyerView := acc.Automaton.View(paperrepro.Buyer)
	traces := [][]label.Label{
		word("B#A#orderOp", "A#B#deliveryOp", "B#A#terminateOp"),
	}
	drift := DetectDrift(paperrepro.Accounting, publishedBuyerView, traces)
	if drift.Drifted() {
		t.Fatalf("clean logs flagged: %v", drift.Novel)
	}
	// Tracking was published but never observed.
	if len(drift.Unexercised) == 0 {
		t.Fatal("unexercised behavior not reported")
	}
}

func TestRoleStrings(t *testing.T) {
	for _, r := range []Role{RoleSender, RoleReceiver, RoleUnknown} {
		if r.String() == "" {
			t.Fatal("empty role string")
		}
	}
}
