// Package conformance monitors running choreographies: it replays
// observed message logs against the agreed public processes, localizes
// deviations (which message, which party, what was expected instead)
// and detects *uncontrolled evolution* — a partner whose observed
// behavior has drifted from its published public process, which is
// precisely the failure mode the paper's controlled-evolution
// framework exists to prevent (Sec. 3.1: "If one party changes its
// process in an uncontrolled manner, inconsistencies or errors ...
// might occur in the sequel").
//
// Drift detection reuses the parallel-traversal machinery of the
// propagation planner (package core): the observed behavior is folded
// into a prefix automaton and compared against the published view, so
// a detected drift comes out in the same Hint vocabulary the
// propagation plans use.
package conformance

import (
	"fmt"
	"sort"

	"repro/internal/afsa"
	"repro/internal/core"
	"repro/internal/label"
)

// Role says on which side of a message a deviation occurred.
type Role int

// Roles.
const (
	// RoleSender: the sending party's public process does not allow
	// sending the observed message at this point.
	RoleSender Role = iota
	// RoleReceiver: the receiver cannot accept the observed message.
	RoleReceiver
	// RoleUnknown: the message references a party the monitor does
	// not know.
	RoleUnknown
)

func (r Role) String() string {
	switch r {
	case RoleSender:
		return "sender"
	case RoleReceiver:
		return "receiver"
	default:
		return "unknown party"
	}
}

// Deviation is one localized protocol violation.
type Deviation struct {
	// Step is the 0-based index of the offending message in the log.
	Step int
	// Label is the observed message.
	Label label.Label
	// Party is the deviating party.
	Party string
	// Role says whether Party deviated as sender or receiver.
	Role Role
	// Expected lists the messages Party could have exchanged at this
	// point instead, sorted.
	Expected []label.Label
}

func (d Deviation) String() string {
	return fmt.Sprintf("step %d: %s deviates as %s with %s (expected one of %v)",
		d.Step, d.Party, d.Role, d.Label, d.Expected)
}

// Monitor replays a message log against the public processes of the
// parties. It is a deterministic state tracker: every party occupies
// one state of its determinized public process; stepping goes through
// a dense per-party step table (afsa.Stepper), so replaying a message
// costs two table probes and allocates nothing.
type Monitor struct {
	names    []string
	autos    map[string]*afsa.Automaton
	steppers map[string]*afsa.Stepper
	states   map[string]afsa.StateID
	steps    int

	// Symbol fast path, available when every party automaton shares
	// one label interner (always true for automata taken from one
	// store snapshot): syms is that shared interner and routes maps
	// each of its symbols — snapshotted at construction — to the
	// pre-parsed sender and receiver names, so StepSymbol never parses
	// or hashes a label.
	syms   *label.Interner
	labels []label.Label // construction-time snapshot, indexed by symbol
	routes []symRoute
}

// symRoute is one symbol's pre-parsed endpoint pair.
type symRoute struct {
	sender, receiver string
}

// NewMonitor builds a monitor from public processes keyed by party.
func NewMonitor(parties map[string]*afsa.Automaton) (*Monitor, error) {
	if len(parties) == 0 {
		return nil, fmt.Errorf("conformance: no parties")
	}
	m := &Monitor{
		autos:    map[string]*afsa.Automaton{},
		steppers: map[string]*afsa.Stepper{},
		states:   map[string]afsa.StateID{},
	}
	for name, a := range parties {
		if a == nil {
			return nil, fmt.Errorf("conformance: party %q has no automaton", name)
		}
		d := a.Determinize()
		d.Name = a.Name
		m.autos[name] = d
		m.steppers[name] = afsa.NewStepper(d)
		m.states[name] = d.Start()
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	shared := m.autos[m.names[0]].Interner()
	for _, name := range m.names[1:] {
		if m.autos[name].Interner() != shared {
			shared = nil
			break
		}
	}
	if shared != nil {
		m.syms = shared
		m.labels = shared.Labels()
		m.routes = make([]symRoute, len(m.labels))
		for s, l := range m.labels {
			m.routes[s] = symRoute{sender: l.Sender(), receiver: l.Receiver()}
		}
	}
	return m, nil
}

// Reset rewinds every party to its start state.
func (m *Monitor) Reset() {
	for name, a := range m.autos {
		m.states[name] = a.Start()
	}
	m.steps = 0
}

// Steps returns the number of successfully replayed messages.
func (m *Monitor) Steps() int { return m.steps }

// expectedAt lists the labels party can exchange in its current state.
func (m *Monitor) expectedAt(party string) []label.Label {
	a := m.autos[party]
	var out []label.Label
	for _, t := range a.Transitions(m.states[party]) {
		out = append(out, t.Label)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step replays one observed message. A nil result means both endpoints
// moved; otherwise the returned deviation localizes the violation and
// the monitor state is unchanged.
func (m *Monitor) Step(l label.Label) *Deviation {
	sender, receiver := l.Sender(), l.Receiver()
	ss, okS := m.steppers[sender]
	if !okS {
		return &Deviation{Step: m.steps, Label: l, Party: sender, Role: RoleUnknown}
	}
	rs, okR := m.steppers[receiver]
	if !okR {
		return &Deviation{Step: m.steps, Label: l, Party: receiver, Role: RoleUnknown}
	}
	sNext := ss.Step(m.states[sender], l)
	if sNext == afsa.None {
		return &Deviation{
			Step: m.steps, Label: l, Party: sender, Role: RoleSender,
			Expected: m.expectedAt(sender),
		}
	}
	rNext := rs.Step(m.states[receiver], l)
	if rNext == afsa.None {
		return &Deviation{
			Step: m.steps, Label: l, Party: receiver, Role: RoleReceiver,
			Expected: m.expectedAt(receiver),
		}
	}
	m.states[sender] = sNext
	m.states[receiver] = rNext
	m.steps++
	return nil
}

// StepSymbol is Step for a pre-interned symbol of the parties' shared
// label interner — the streaming hot path: routing (who sends, who
// receives) comes from a table built at construction, and both
// endpoint steppers advance by symbol, so replaying a message parses
// and hashes nothing. Results are identical to Step(l) for the label l
// the symbol interns.
//
// It requires every party automaton to share one interner, which holds
// for automata taken from one store snapshot; NewMonitor detects
// sharing, and StepSymbol panics when the monitor was built from
// automata with disjoint symbol spaces (use Step there).
func (m *Monitor) StepSymbol(sym label.Symbol) *Deviation {
	if m.syms == nil {
		panic("conformance: StepSymbol needs parties sharing one label interner; use Step")
	}
	if sym < 0 {
		return &Deviation{Step: m.steps, Role: RoleUnknown}
	}
	if int(sym) >= len(m.routes) {
		// Interned after the monitor was built: no party automaton can
		// carry it on an edge; the label path reports the deviation.
		return m.Step(m.syms.LabelOf(sym))
	}
	l := m.labels[sym]
	rt := m.routes[sym]
	ss, okS := m.steppers[rt.sender]
	if !okS {
		return &Deviation{Step: m.steps, Label: l, Party: rt.sender, Role: RoleUnknown}
	}
	rs, okR := m.steppers[rt.receiver]
	if !okR {
		return &Deviation{Step: m.steps, Label: l, Party: rt.receiver, Role: RoleUnknown}
	}
	sNext := ss.StepSym(m.states[rt.sender], sym)
	if sNext == afsa.None {
		return &Deviation{
			Step: m.steps, Label: l, Party: rt.sender, Role: RoleSender,
			Expected: m.expectedAt(rt.sender),
		}
	}
	rNext := rs.StepSym(m.states[rt.receiver], sym)
	if rNext == afsa.None {
		return &Deviation{
			Step: m.steps, Label: l, Party: rt.receiver, Role: RoleReceiver,
			Expected: m.expectedAt(rt.receiver),
		}
	}
	m.states[rt.sender] = sNext
	m.states[rt.receiver] = rNext
	m.steps++
	return nil
}

// Complete reports whether every party is in a final state or never
// moved (the lenient completion of package runtime).
func (m *Monitor) Complete() bool {
	for _, name := range m.names {
		a := m.autos[name]
		if a.IsFinal(m.states[name]) || m.states[name] == a.Start() {
			continue
		}
		return false
	}
	return true
}

// CheckTrace replays a whole log. It returns the first deviation (nil
// if none) and whether the conversation ended in a complete state.
func CheckTrace(parties map[string]*afsa.Automaton, trace []label.Label) (*Deviation, bool, error) {
	m, err := NewMonitor(parties)
	if err != nil {
		return nil, false, err
	}
	for _, l := range trace {
		if d := m.Step(l); d != nil {
			return d, false, nil
		}
	}
	return nil, m.Complete(), nil
}

// ObservedAutomaton folds message logs into a prefix-tree automaton
// over the labels involving party (other messages are ignored). Every
// state is accepting: a log is evidence of behavior, not of
// termination.
func ObservedAutomaton(party string, traces [][]label.Label) *afsa.Automaton {
	a := afsa.New("observed " + party)
	start := a.AddState()
	a.SetStart(start)
	a.SetFinal(start, true)
	for _, trace := range traces {
		cur := start
		for _, l := range trace {
			if !l.Involves(party) {
				continue
			}
			next := afsa.None
			for _, t := range a.Transitions(cur) {
				if t.Label == l {
					next = t.To
					break
				}
			}
			if next == afsa.None {
				next = a.AddState()
				a.SetFinal(next, true)
				a.AddTransition(cur, l, next)
			}
			cur = next
		}
	}
	return a.Minimize()
}

// Drift is the outcome of comparing observed behavior with a party's
// published view.
type Drift struct {
	Party string
	// Novel lists behavior observed but not published (evidence of an
	// uncontrolled additive change), in the propagation planner's
	// hint vocabulary.
	Novel []core.Hint
	// Unexercised lists published behavior never observed; with few
	// traces this is expected, with many it hints at a subtractive
	// change.
	Unexercised []core.Hint
}

// Drifted reports whether any novel behavior was observed — published
// behavior that never shows up is not a violation by itself.
func (d *Drift) Drifted() bool { return len(d.Novel) > 0 }

// DetectDrift compares the observed behavior of party against its
// published bilateral view. publishedView must be the view the
// observing side holds (τ_observer of the party's public process,
// restricted to the pair whose messages appear in the traces).
func DetectDrift(party string, publishedView *afsa.Automaton, traces [][]label.Label) *Drift {
	observed := ObservedAutomaton(party, traces)
	// Prefix-close the published view: logs are prefixes, so compare
	// against every prefix of published behavior.
	published := prefixClose(publishedView)
	return &Drift{
		Party:       party,
		Novel:       core.DetectAddedTransitions(published, observed),
		Unexercised: core.DetectRemovedTransitions(published, observed),
	}
}

// prefixClose marks every reachable state accepting.
func prefixClose(a *afsa.Automaton) *afsa.Automaton {
	c := a.Determinize()
	for q := 0; q < c.NumStates(); q++ {
		c.SetFinal(afsa.StateID(q), true)
	}
	c.Name = a.Name + " (prefixes)"
	return c
}
