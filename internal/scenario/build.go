package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/label"
)

func mustLabel(s string) label.Label { return label.MustParse(s) }

// The definitions in this file and the per-scenario files are the
// source the checked-in testdata is generated from (gen_test.go). The
// helpers keep the process trees terse; consistency rules of thumb
// (all enforced by TestCorpusBaseIsConsistent):
//
//   - every pairwise conversation is an exact dual: each send has a
//     matching receive/pick branch on the partner;
//   - an internal choice (switch) is announced to every partner whose
//     remaining conversation depends on it, with a distinct first
//     message per branch (the paper's accounting/logistics pattern);
//   - loops follow the paper idiom: a While("1 = 1") around a pick
//     whose exit branches Terminate.

// definitions returns the corpus builders in corpus order.
func definitions() []*Scenario {
	return []*Scenario{
		auctionScenario(),
		claimsScenario(),
		logisticsScenario(),
		supplyChainScenario(),
		telcoScenario(),
	}
}

// ---- process tree helpers ----

func seq(name string, kids ...bpel.Activity) *bpel.Sequence {
	return &bpel.Sequence{BlockName: name, Children: kids}
}

func recv(name, partner, op string) *bpel.Receive {
	return &bpel.Receive{BlockName: name, Partner: partner, Op: op}
}

func inv(name, partner, op string) *bpel.Invoke {
	return &bpel.Invoke{BlockName: name, Partner: partner, Op: op}
}

func syncInv(name, partner, op string) *bpel.Invoke {
	return &bpel.Invoke{BlockName: name, Partner: partner, Op: op, Sync: true}
}

func pick(name string, branches ...bpel.OnMessage) *bpel.Pick {
	return &bpel.Pick{BlockName: name, Branches: branches}
}

func on(partner, op string, body bpel.Activity) bpel.OnMessage {
	return bpel.OnMessage{Partner: partner, Op: op, Body: body}
}

func choice(name string, cases []bpel.Case, elseBody bpel.Activity) *bpel.Switch {
	return &bpel.Switch{BlockName: name, Cases: cases, Else: elseBody}
}

func when(cond string, body bpel.Activity) bpel.Case {
	return bpel.Case{Cond: cond, Body: body}
}

func loop(name string, body bpel.Activity) *bpel.While {
	return &bpel.While{BlockName: name, Cond: "1 = 1", Body: body}
}

func scope(name string, body bpel.Activity) *bpel.Scope {
	return &bpel.Scope{BlockName: name, Body: body}
}

func empty(name string) *bpel.Empty         { return &bpel.Empty{BlockName: name} }
func terminate(name string) *bpel.Terminate { return &bpel.Terminate{BlockName: name} }

func proc(name, owner string, body bpel.Activity) *bpel.Process {
	return &bpel.Process{Name: name, Owner: owner, Body: body}
}

// ---- op spec helpers ----

// mustActivityXML marshals an activity fragment; builders run at
// generation/test time, so malformed fragments panic.
func mustActivityXML(a bpel.Activity) string {
	raw, err := bpel.MarshalActivityXML(a)
	if err != nil {
		panic(err)
	}
	return string(raw)
}

func specReplace(path string, a bpel.Activity) change.Spec {
	return change.Spec{Kind: "replace", Path: path, XML: mustActivityXML(a)}
}

func specInsert(path string, a bpel.Activity, after bool) change.Spec {
	return change.Spec{Kind: "insert", Path: path, XML: mustActivityXML(a), After: after}
}

// ---- instance helpers ----

func migratable(party, id string, trace ...string) Instance {
	return scriptedInstance(party, id, "migratable", trace)
}

func deviator(party, id string, trace ...string) Instance {
	return scriptedInstance(party, id, "non-replayable", trace)
}

func scriptedInstance(party, id, status string, trace []string) Instance {
	in := Instance{Party: party, ID: id, Status: status}
	for _, s := range trace {
		in.Trace = append(in.Trace, mustLabel(s))
	}
	return in
}
