package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
)

// auctionScenario is a five-party auction: a seller lists a lot with
// the auction house, a notary certifies it, the bidder desk streams
// bids through the paper's loop idiom (While "1 = 1" around a pick
// whose exits Terminate), payments settles the hammer price, and the
// seller may withdraw the lot from inside a cancellation scope. This
// is the corpus's loop-and-cancellation-heavy entry.
func auctionScenario() *Scenario {
	// settle/cancel tails of the auction house bid loop; the builders
	// take a suffix so the bounded rewrite in the bid-limit episode can
	// duplicate them per unrolled level with distinct block names.
	settleSeq := func(suffix string) *bpel.Sequence {
		return seq("settle"+suffix,
			inv("collect"+suffix, "PY", "collectOp"),
			recv("collected"+suffix, "PY", "collectedOp"),
			inv("sold"+suffix, "SE", "soldOp"),
			inv("record"+suffix, "NT", "recordOp"),
			terminate("done"+suffix),
		)
	}
	cancelSeq := func(suffix string) *bpel.Sequence {
		return seq("cancelled"+suffix,
			inv("closeBook"+suffix, "BD", "closeBookOp"),
			inv("noCollect"+suffix, "PY", "noCollectOp"),
			inv("voidCert"+suffix, "NT", "voidCertOp"),
			terminate("aborted"+suffix),
		)
	}

	auctionHouse := proc("auction house", "AH", seq("auction house process",
		recv("list", "SE", "listOp"),
		inv("certify", "NT", "certifyOp"),
		recv("certified", "NT", "certifiedOp"),
		inv("listed", "SE", "listedOp"),
		inv("open", "BD", "openOp"),
		loop("bidding", pick("bid stream",
			on("BD", "bidOp", inv("bidAck", "BD", "bidAckOp")),
			on("BD", "hammerOp", settleSeq("")),
			on("SE", "cancelOp", cancelSeq("")),
		)),
	))
	seller := proc("seller", "SE", seq("seller process",
		inv("list", "AH", "listOp"),
		recv("listed", "AH", "listedOp"),
		scope("sale", choice("patience?",
			[]bpel.Case{when("wait", recv("sold", "AH", "soldOp"))},
			seq("withdraw",
				inv("cancel", "AH", "cancelOp"),
				terminate("withdrawn"),
			),
		)),
	))
	bidderDesk := proc("bidder desk", "BD", seq("bidder desk process",
		recv("open", "AH", "openOp"),
		loop("bids", choice("more bids?",
			[]bpel.Case{
				when("bid", seq("place bid",
					inv("bid", "AH", "bidOp"),
					recv("bidAck", "AH", "bidAckOp"),
				)),
				when("close", seq("close out",
					inv("hammer", "AH", "hammerOp"),
					terminate("hammered"),
				)),
			},
			seq("stand by",
				recv("closeBook", "AH", "closeBookOp"),
				terminate("book closed"),
			),
		)),
	))
	payments := proc("payments", "PY", seq("payments process",
		pick("settlement",
			on("AH", "collectOp", inv("collected", "AH", "collectedOp")),
			on("AH", "noCollectOp", empty("no settlement")),
		),
	))
	notary := proc("notary", "NT", seq("notary process",
		recv("certify", "AH", "certifyOp"),
		inv("certified", "AH", "certifiedOp"),
		pick("outcome",
			on("AH", "recordOp", empty("recorded")),
			on("AH", "voidCertOp", empty("voided")),
		),
	))

	// proxy-bids: the auction house additionally accepts proxy bids in
	// the loop — additive invariant for the bidder desk.
	proxyBids := Episode{
		Name:  "proxy-bids",
		Party: "AH",
		Ops: []change.Spec{specReplace("Sequence:auction house process/While:bidding/Pick:bid stream",
			pick("bid stream",
				on("BD", "bidOp", inv("bidAck", "BD", "bidAckOp")),
				on("BD", "proxyBidOp", inv("proxyAck", "BD", "bidAckOp")),
				on("BD", "hammerOp", settleSeq("")),
				on("SE", "cancelOp", cancelSeq("")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"BD": {Kind: "additive", Scope: "invariant"}},
		Stranded:      []Stranded{{Party: "AH", ID: "AH-dev", Status: "non-replayable"}},
	}

	// bid-limit: the unbounded bid loop becomes at most one open bid —
	// the paper's bound-an-unbounded-loop archetype. Only the bidder
	// desk loses words (subtractive variant); the seller, payments and
	// notary conversations are unchanged. The bidder desk adapts with a
	// matching bounded switch; long bid histories strand.
	bidLimit := Episode{
		Name:  "bid-limit",
		Party: "AH",
		Ops: []change.Spec{specReplace("Sequence:auction house process/While:bidding",
			pick("first move",
				on("BD", "bidOp", seq("one bid",
					inv("bidAck", "BD", "bidAckOp"),
					pick("second move",
						on("BD", "hammerOp", settleSeq(" after bid")),
						on("SE", "cancelOp", cancelSeq(" after bid")),
					),
				)),
				on("BD", "hammerOp", settleSeq("")),
				on("SE", "cancelOp", cancelSeq("")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"BD": {Kind: "subtractive", Scope: "variant"}},
		Adaptations: []Adaptation{{
			Party: "BD",
			Ops: []change.Spec{specReplace("Sequence:bidder desk process/While:bids",
				choice("limited bids",
					[]bpel.Case{
						when("bid once", seq("place bid",
							inv("bid", "AH", "bidOp"),
							recv("bidAck", "AH", "bidAckOp"),
							choice("then",
								[]bpel.Case{when("close", seq("close out",
									inv("hammer", "AH", "hammerOp"),
									terminate("hammered"),
								))},
								seq("stand by",
									recv("closeBook", "AH", "closeBookOp"),
									terminate("book closed"),
								),
							),
						)),
						when("close now", seq("close out now",
							inv("hammer now", "AH", "hammerOp"),
							terminate("hammered now"),
						)),
					},
					seq("stand by now",
						recv("closeBook now", "AH", "closeBookOp"),
						terminate("book closed now"),
					),
				))},
		}},
		Stranded: []Stranded{
			{Party: "AH", ID: "AH-bidding", Status: "non-replayable"},
			{Party: "AH", ID: "AH-dev", Status: "non-replayable"},
			{Party: "BD", ID: "BD-two-bids", Status: "non-replayable"},
		},
	}

	// buyers-premium: a premium notice is inserted before the sold
	// message inside the settle tail — mid-sequence insertion, so the
	// seller both gains and loses words (additive+subtractive,
	// variant). Completed sales strand.
	buyersPremium := Episode{
		Name:  "buyers-premium",
		Party: "AH",
		Ops: []change.Spec{specInsert(
			"Sequence:auction house process/While:bidding/Pick:bid stream/Sequence:settle/Invoke:sold",
			inv("premium", "SE", "premiumOp"), false)},
		PublicChanged: true,
		Impacts:       map[string]Impact{"SE": {Kind: "additive+subtractive", Scope: "variant"}},
		Adaptations: []Adaptation{{
			Party: "SE",
			Ops: []change.Spec{specReplace("Sequence:seller process/Scope:sale/Switch:patience?/Receive:sold",
				seq("premium then sold",
					recv("premium", "AH", "premiumOp"),
					recv("sold", "AH", "soldOp"),
				))},
		}},
		Stranded: []Stranded{
			{Party: "AH", ID: "AH-dev", Status: "non-replayable"},
			{Party: "AH", ID: "AH-sold", Status: "non-replayable"},
			{Party: "SE", ID: "SE-sold", Status: "non-replayable"},
		},
	}

	return &Scenario{
		Name:        "auction",
		Description: "Auction house: seller, auction house, bidder desk, payments, notary; unbounded bid loop with terminate exits and a seller-side cancellation scope.",
		Parties:     []*bpel.Process{auctionHouse, seller, bidderDesk, payments, notary},
		Instances: []Instance{
			migratable("AH", "AH-sold", "SE#AH#listOp", "AH#NT#certifyOp", "NT#AH#certifiedOp", "AH#SE#listedOp", "AH#BD#openOp", "BD#AH#bidOp", "AH#BD#bidAckOp", "BD#AH#hammerOp", "AH#PY#collectOp", "PY#AH#collectedOp", "AH#SE#soldOp", "AH#NT#recordOp"),
			migratable("AH", "AH-bidding", "SE#AH#listOp", "AH#NT#certifyOp", "NT#AH#certifiedOp", "AH#SE#listedOp", "AH#BD#openOp", "BD#AH#bidOp", "AH#BD#bidAckOp", "BD#AH#bidOp", "AH#BD#bidAckOp"),
			migratable("AH", "AH-cancelled", "SE#AH#listOp", "AH#NT#certifyOp", "NT#AH#certifiedOp", "AH#SE#listedOp", "AH#BD#openOp", "SE#AH#cancelOp", "AH#BD#closeBookOp", "AH#PY#noCollectOp", "AH#NT#voidCertOp"),
			deviator("AH", "AH-dev", "SE#AH#listOp", "AH#X#bogusOp"),
			migratable("BD", "BD-two-bids", "AH#BD#openOp", "BD#AH#bidOp", "AH#BD#bidAckOp", "BD#AH#bidOp", "AH#BD#bidAckOp", "BD#AH#hammerOp"),
			migratable("BD", "BD-one-bid", "AH#BD#openOp", "BD#AH#bidOp", "AH#BD#bidAckOp"),
			migratable("SE", "SE-sold", "SE#AH#listOp", "AH#SE#listedOp", "AH#SE#soldOp"),
			migratable("SE", "SE-cancel", "SE#AH#listOp", "AH#SE#listedOp", "SE#AH#cancelOp"),
			migratable("PY", "PY-paid", "AH#PY#collectOp", "PY#AH#collectedOp"),
			migratable("NT", "NT-void", "AH#NT#certifyOp", "NT#AH#certifiedOp", "AH#NT#voidCertOp"),
		},
		Episodes: []Episode{proxyBids, bidLimit, buyersPremium},
	}
}
