// Package scenario holds the corpus of realistic multi-party
// choreographies the workload layer (corpus replay tests, fuzzing,
// choreoctl loadgen) drives against the store and the server.
//
// Each scenario lives under testdata/<name>/ as a manifest.json plus
// one BPEL XML file per party. A scenario bundles:
//
//   - the party processes (5+ parties, consistent by construction);
//   - scripted running instances with whole or in-flight traces,
//     including deliberate deviators, replayable through AddInstances
//     or the streaming ingest path;
//   - scripted evolution episodes: the change ops one party applies,
//     the expected per-partner classification (paper Defs. 5/6), the
//     partner adaptations that restore consistency for variant
//     changes, and the expected stranded set of a post-commit bulk
//     migration.
//
// The checked-in testdata is generated from the builder functions in
// this package; `go test ./internal/scenario -run TestTestdataInSync
// -update` rewrites it. docs/scenarios.md describes the format and
// how to add a scenario.
package scenario

import (
	"embed"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/label"
)

//go:embed testdata
var testdataFS embed.FS

// Impact is the expected classification of an episode for one partner
// whose bilateral view changed (core.Classification strings:
// "neutral"/"additive"/"subtractive"/"additive+subtractive" ×
// "invariant"/"variant").
type Impact struct {
	Kind  string `json:"kind"`
	Scope string `json:"scope"`
}

// Adaptation is one partner's scripted private adaptation restoring
// consistency after a variant episode commit.
type Adaptation struct {
	Party string        `json:"party"`
	Ops   []change.Spec `json:"ops"`
}

// Operations decodes the adaptation's op specs.
func (a Adaptation) Operations() ([]change.Operation, error) {
	return change.DecodeSpecs(a.Party, a.Ops)
}

// Stranded is one instance expected to be left behind by the bulk
// migration that follows the episode commit (and its adaptations).
type Stranded struct {
	Party string `json:"party"`
	ID    string `json:"id"`
	// Status is "non-replayable" or "unviable".
	Status string `json:"status"`
}

// Episode is one scripted evolution: ops one party applies, with the
// expected analysis outcome and migration fallout.
type Episode struct {
	Name  string        `json:"name"`
	Party string        `json:"party"`
	Ops   []change.Spec `json:"ops"`
	// PublicChanged is the expected evolution outcome for the
	// originator's public process.
	PublicChanged bool `json:"publicChanged"`
	// Impacts maps each partner whose view is expected to change to
	// its expected classification; partners absent from the map must
	// report an unchanged view.
	Impacts map[string]Impact `json:"impacts,omitempty"`
	// Adaptations restore consistency after a variant commit, in
	// order.
	Adaptations []Adaptation `json:"adaptations,omitempty"`
	// Stranded is the expected stranded set of a full migration sweep
	// run after the commit and all adaptations, sorted by party then
	// instance ID. Instances not listed must migrate.
	Stranded []Stranded `json:"stranded,omitempty"`
}

// Operations decodes the episode's op specs for the originating party.
func (e Episode) Operations() ([]change.Operation, error) {
	return change.DecodeSpecs(e.Party, e.Ops)
}

// Instance is one scripted running conversation of one party.
type Instance struct {
	Party string `json:"party"`
	ID    string `json:"id"`
	// Status is the expected classification against the party's *base*
	// public process ("migratable" or "non-replayable"); deviators
	// carry an off-protocol message in their trace.
	Status string `json:"status"`
	Trace  []label.Label
}

// Scenario is one loaded corpus entry.
type Scenario struct {
	Name        string
	Description string
	SyncOps     []string
	// Parties are the private processes in registration order.
	Parties   []*bpel.Process
	Instances []Instance
	Episodes  []Episode
}

// Party returns the named party's process, or nil.
func (sc *Scenario) Party(name string) *bpel.Process {
	for _, p := range sc.Parties {
		if p.Owner == name {
			return p
		}
	}
	return nil
}

// InstancesOf returns the scripted instances of one party.
func (sc *Scenario) InstancesOf(party string) []Instance {
	var out []Instance
	for _, in := range sc.Instances {
		if in.Party == party {
			out = append(out, in)
		}
	}
	return out
}

// Event is one streaming-ingest event derived from a scripted trace.
type Event struct {
	Party    string
	Instance string
	Label    label.Label
}

// Events interleaves the instances' traces round-robin into one
// deterministic event stream, preserving per-instance order — the
// shape the streaming ingest path consumes. The idSuffix is appended
// to every instance ID so ingest replays do not collide with
// instances recorded through AddInstances.
func Events(insts []Instance, idSuffix string) []Event {
	var out []Event
	for i := 0; ; i++ {
		appended := false
		for _, in := range insts {
			if i < len(in.Trace) {
				out = append(out, Event{Party: in.Party, Instance: in.ID + idSuffix, Label: in.Trace[i]})
				appended = true
			}
		}
		if !appended {
			return out
		}
	}
}

// ---- on-disk manifest ----

type manifest struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	SyncOps     []string           `json:"syncOps,omitempty"`
	Parties     []manifestParty    `json:"parties"`
	Instances   []manifestInstance `json:"instances"`
	Episodes    []Episode          `json:"episodes"`
}

type manifestParty struct {
	Name string `json:"name"`
	File string `json:"process"`
}

type manifestInstance struct {
	Party  string   `json:"party"`
	ID     string   `json:"id"`
	Status string   `json:"status"`
	Trace  []string `json:"trace"`
}

// Names lists the corpus scenarios in lexical order.
func Names() []string {
	entries, err := testdataFS.ReadDir("testdata")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Load reads one scenario from the checked-in corpus.
func Load(name string) (*Scenario, error) {
	raw, err := testdataFS.ReadFile("testdata/" + name + "/manifest.json")
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", name, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("scenario %q: manifest: %w", name, err)
	}
	sc := &Scenario{
		Name:        m.Name,
		Description: m.Description,
		SyncOps:     m.SyncOps,
		Episodes:    m.Episodes,
	}
	for _, mp := range m.Parties {
		xmlRaw, err := testdataFS.ReadFile("testdata/" + name + "/" + mp.File)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: party %s: %w", name, mp.Name, err)
		}
		p, err := bpel.UnmarshalXML(xmlRaw)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: party %s: %w", name, mp.Name, err)
		}
		if p.Owner != mp.Name {
			return nil, fmt.Errorf("scenario %q: party file %s has owner %q, manifest says %q", name, mp.File, p.Owner, mp.Name)
		}
		sc.Parties = append(sc.Parties, p)
	}
	for _, mi := range m.Instances {
		in := Instance{Party: mi.Party, ID: mi.ID, Status: mi.Status}
		for _, s := range mi.Trace {
			l, err := label.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: instance %s/%s: %w", name, mi.Party, mi.ID, err)
			}
			in.Trace = append(in.Trace, l)
		}
		sc.Instances = append(sc.Instances, in)
	}
	return sc, nil
}

// All loads the whole corpus.
func All() ([]*Scenario, error) {
	var out []*Scenario
	for _, name := range Names() {
		sc, err := Load(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
