package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
)

// telcoScenario is a five-party telco provisioning flow: a subscriber
// orders from CRM, CRM runs a synchronous credit check against
// billing, and the accept/decline decision fans out to the subscriber,
// network operations, field service and billing. The credit check is
// the corpus's synchronous request/reply conversation.
func telcoScenario() *Scenario {
	crm := proc("crm", "CR", seq("crm process",
		recv("order", "SB", "orderOp"),
		syncInv("creditCheck", "BI", "creditCheckOp"),
		choice("credit?",
			[]bpel.Case{when("ok", seq("accept",
				inv("accepted", "SB", "acceptedOp"),
				inv("provision", "NO", "provisionOp"),
				recv("active", "NO", "activeOp"),
				inv("install", "FS", "installOp"),
				recv("installed", "FS", "installedOp"),
				inv("ready", "SB", "readyOp"),
				inv("startBilling", "BI", "startBillingOp"),
			))},
			seq("decline",
				inv("declined", "SB", "declinedOp"),
				inv("noProvision", "NO", "noProvisionOp"),
				inv("noInstall", "FS", "noInstallOp"),
				inv("noBilling", "BI", "noBillingOp"),
			),
		),
	))
	billing := proc("billing", "BI", seq("billing process",
		recv("creditCheck", "CR", "creditCheckOp"),
		&bpel.Reply{BlockName: "creditScore", Partner: "CR", Op: "creditCheckOp"},
		pick("billing?",
			on("CR", "startBillingOp", empty("bill")),
			on("CR", "noBillingOp", empty("idle")),
		),
	))
	netops := proc("networkops", "NO", seq("networkops process",
		pick("provision?",
			on("CR", "provisionOp", inv("active", "CR", "activeOp")),
			on("CR", "noProvisionOp", empty("idle")),
		),
	))
	fieldservice := proc("fieldservice", "FS", seq("fieldservice process",
		pick("install?",
			on("CR", "installOp", inv("installed", "CR", "installedOp")),
			on("CR", "noInstallOp", empty("idle")),
		),
	))
	subscriber := proc("subscriber", "SB", seq("subscriber process",
		inv("order", "CR", "orderOp"),
		pick("outcome",
			on("CR", "acceptedOp", recv("ready", "CR", "readyOp")),
			on("CR", "declinedOp", empty("declined")),
		),
	))

	// pause-billing: billing additionally accepts a pause instruction —
	// additive invariant for CRM.
	pauseBilling := Episode{
		Name:  "pause-billing",
		Party: "BI",
		Ops: []change.Spec{specReplace("Sequence:billing process/Pick:billing?",
			pick("billing?",
				on("CR", "startBillingOp", empty("bill")),
				on("CR", "noBillingOp", empty("idle")),
				on("CR", "pauseBillingOp", empty("paused")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"CR": {Kind: "additive", Scope: "invariant"}},
		Stranded:      []Stranded{{Party: "CR", ID: "CR-dev", Status: "non-replayable"}},
	}

	// site-survey: field service may reschedule before confirming the
	// install — additive variant for CRM, who widens its installed
	// receive into a pick.
	siteSurvey := Episode{
		Name:  "site-survey",
		Party: "FS",
		Ops: []change.Spec{specReplace("Sequence:fieldservice process/Pick:install?",
			pick("install?",
				on("CR", "installOp", choice("site ok?",
					[]bpel.Case{when("ok", inv("installed", "CR", "installedOp"))},
					seq("survey first",
						inv("reschedule", "CR", "rescheduleOp"),
						inv("installed after survey", "CR", "installedOp"),
					),
				)),
				on("CR", "noInstallOp", empty("idle")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"CR": {Kind: "additive", Scope: "variant"}},
		Adaptations: []Adaptation{{
			Party: "CR",
			Ops: []change.Spec{specReplace("Sequence:crm process/Switch:credit?/Sequence:accept/Receive:installed",
				pick("install outcome",
					on("FS", "installedOp", empty("installed")),
					on("FS", "rescheduleOp", recv("installed", "FS", "installedOp")),
				))},
		}},
		Stranded: []Stranded{{Party: "CR", ID: "CR-dev", Status: "non-replayable"}},
	}

	// prepaid-only: CRM drops the decline branch and always provisions
	// — every partner loses alternatives it merely picked on
	// (subtractive invariant for all four).
	prepaidOnly := Episode{
		Name:  "prepaid-only",
		Party: "CR",
		Ops: []change.Spec{specReplace("Sequence:crm process/Switch:credit?",
			seq("accept",
				inv("accepted", "SB", "acceptedOp"),
				inv("provision", "NO", "provisionOp"),
				recv("active", "NO", "activeOp"),
				inv("install", "FS", "installOp"),
				recv("installed", "FS", "installedOp"),
				inv("ready", "SB", "readyOp"),
				inv("startBilling", "BI", "startBillingOp"),
			))},
		PublicChanged: true,
		Impacts: map[string]Impact{
			"SB": {Kind: "subtractive", Scope: "invariant"},
			"NO": {Kind: "subtractive", Scope: "invariant"},
			"FS": {Kind: "subtractive", Scope: "invariant"},
			"BI": {Kind: "subtractive", Scope: "invariant"},
		},
		Stranded: []Stranded{
			{Party: "CR", ID: "CR-declined", Status: "non-replayable"},
			{Party: "CR", ID: "CR-dev", Status: "non-replayable"},
		},
	}

	return &Scenario{
		Name:        "telco",
		Description: "Telco provisioning: subscriber, crm, billing, networkops, fieldservice; synchronous credit check, accept/decline fan-out.",
		SyncOps:     []string{"BI.creditCheckOp"},
		Parties:     []*bpel.Process{crm, billing, netops, fieldservice, subscriber},
		Instances: []Instance{
			migratable("CR", "CR-accepted", "SB#CR#orderOp", "CR#BI#creditCheckOp", "BI#CR#creditCheckOp", "CR#SB#acceptedOp", "CR#NO#provisionOp", "NO#CR#activeOp", "CR#FS#installOp", "FS#CR#installedOp", "CR#SB#readyOp", "CR#BI#startBillingOp"),
			migratable("CR", "CR-declined", "SB#CR#orderOp", "CR#BI#creditCheckOp", "BI#CR#creditCheckOp", "CR#SB#declinedOp", "CR#NO#noProvisionOp", "CR#FS#noInstallOp", "CR#BI#noBillingOp"),
			deviator("CR", "CR-dev", "SB#CR#orderOp", "CR#X#bogusOp"),
			migratable("SB", "SB-live", "SB#CR#orderOp", "CR#SB#acceptedOp", "CR#SB#readyOp"),
			migratable("SB", "SB-declined", "SB#CR#orderOp", "CR#SB#declinedOp"),
			migratable("BI", "BI-billing", "CR#BI#creditCheckOp", "BI#CR#creditCheckOp", "CR#BI#startBillingOp"),
			migratable("NO", "NO-live", "CR#NO#provisionOp", "NO#CR#activeOp"),
			migratable("NO", "NO-skip", "CR#NO#noProvisionOp"),
			migratable("FS", "FS-done", "CR#FS#installOp", "FS#CR#installedOp"),
		},
		Episodes: []Episode{pauseBilling, siteSurvey, prepaidOnly},
	}
}
