package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
)

// claimsScenario is a five-party insurance claim settlement: a claimant
// files with the insurer, an adjuster assesses, and the insurer's
// approve/reject decision fans out to the claimant, the repair garage
// and the bank with distinct messages per branch. The insurer is the
// hub.
func claimsScenario() *Scenario {
	insurer := proc("insurer", "I", seq("insurer process",
		recv("claim", "CL", "claimOp"),
		inv("ack", "CL", "ackOp"),
		inv("assess", "AD", "assessOp"),
		recv("report", "AD", "reportOp"),
		choice("decision",
			[]bpel.Case{when("approve", seq("approve",
				inv("approved", "CL", "approvedOp"),
				inv("authorize", "G", "authorizeOp"),
				recv("repaired", "G", "repairedOp"),
				inv("pay", "BK", "payOp"),
			))},
			seq("reject",
				inv("rejected", "CL", "rejectedOp"),
				inv("noRepair", "G", "noRepairOp"),
				inv("noPay", "BK", "noPayOp"),
			),
		),
	))
	claimant := proc("claimant", "CL", seq("claimant process",
		inv("claim", "I", "claimOp"),
		recv("ack", "I", "ackOp"),
		pick("decision",
			on("I", "approvedOp", recv("payout", "BK", "payoutOp")),
			on("I", "rejectedOp", empty("rejected")),
		),
	))
	adjuster := proc("adjuster", "AD", seq("adjuster process",
		recv("assess", "I", "assessOp"),
		inv("report", "I", "reportOp"),
	))
	garage := proc("garage", "G", seq("garage process",
		pick("job",
			on("I", "authorizeOp", inv("repaired", "I", "repairedOp")),
			on("I", "noRepairOp", empty("idle")),
		),
	))
	bank := proc("bank", "BK", seq("bank process",
		pick("instruction",
			on("I", "payOp", inv("payout", "CL", "payoutOp")),
			on("I", "noPayOp", empty("no payout")),
		),
	))

	// online-claims: the insurer additionally accepts web claims —
	// additive invariant for the claimant.
	onlineClaims := Episode{
		Name:  "online-claims",
		Party: "I",
		Ops: []change.Spec{specReplace("Sequence:insurer process/Receive:claim",
			pick("claim intake",
				on("CL", "claimOp", empty("paper")),
				on("CL", "webClaimOp", empty("web")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"CL": {Kind: "additive", Scope: "invariant"}},
		Stranded:      []Stranded{{Party: "I", ID: "I-dev", Status: "non-replayable"}},
	}

	// field-visit: the adjuster may announce a field visit before
	// reporting — additive variant for the insurer, who adapts by
	// widening its report receive into a pick.
	fieldVisit := Episode{
		Name:  "field-visit",
		Party: "AD",
		Ops: []change.Spec{specReplace("Sequence:adjuster process/Invoke:report",
			choice("visit needed?",
				[]bpel.Case{when("desk only", inv("report", "I", "reportOp"))},
				seq("field visit",
					inv("fieldVisit", "I", "fieldVisitOp"),
					inv("report after visit", "I", "reportOp"),
				),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"I": {Kind: "additive", Scope: "variant"}},
		Adaptations: []Adaptation{{
			Party: "I",
			Ops: []change.Spec{specReplace("Sequence:insurer process/Receive:report",
				pick("assessment outcome",
					on("AD", "reportOp", empty("desk report")),
					on("AD", "fieldVisitOp", recv("report", "AD", "reportOp")),
				))},
		}},
		Stranded: []Stranded{{Party: "I", ID: "I-dev", Status: "non-replayable"}},
	}

	// fraud-scoring: a silent scoring step after the report — neutral.
	fraudScoring := Episode{
		Name:  "fraud-scoring",
		Party: "I",
		Ops: []change.Spec{specInsert("Sequence:insurer process/Receive:report",
			&bpel.Assign{BlockName: "fraud score"}, true)},
		PublicChanged: false,
		Stranded:      []Stranded{{Party: "I", ID: "I-dev", Status: "non-replayable"}},
	}

	return &Scenario{
		Name:        "claims",
		Description: "Insurance claim settlement: claimant, insurer, adjuster, garage, bank; the approve/reject decision fans out to three partners.",
		Parties:     []*bpel.Process{insurer, claimant, adjuster, garage, bank},
		Instances: []Instance{
			migratable("I", "I-approved", "CL#I#claimOp", "I#CL#ackOp", "I#AD#assessOp", "AD#I#reportOp", "I#CL#approvedOp", "I#G#authorizeOp", "G#I#repairedOp", "I#BK#payOp"),
			migratable("I", "I-rejected", "CL#I#claimOp", "I#CL#ackOp", "I#AD#assessOp", "AD#I#reportOp", "I#CL#rejectedOp", "I#G#noRepairOp", "I#BK#noPayOp"),
			deviator("I", "I-dev", "CL#I#claimOp", "I#X#bogusOp"),
			migratable("CL", "CL-paid", "CL#I#claimOp", "I#CL#ackOp", "I#CL#approvedOp", "BK#CL#payoutOp"),
			migratable("CL", "CL-rejected", "CL#I#claimOp", "I#CL#ackOp", "I#CL#rejectedOp"),
			migratable("AD", "AD-open", "I#AD#assessOp"),
			migratable("G", "G-repair", "I#G#authorizeOp", "G#I#repairedOp"),
			migratable("BK", "BK-paid", "I#BK#payOp", "BK#CL#payoutOp"),
		},
		Episodes: []Episode{onlineClaims, fieldVisit, fraudScoring},
	}
}
