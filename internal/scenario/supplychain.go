package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
)

// supplyChainScenario is a five-party retail supply chain: a retailer
// orders from a wholesaler, who either confirms from stock or
// backorders from the factory, hands the parcel to a shipper and
// invoices the retailer, who pays through a bank. The wholesaler's
// stock decision is announced to both the retailer (confirm/backorder)
// and the factory (noBuild/build) with distinct messages per branch.
func supplyChainScenario() *Scenario {
	retailer := proc("retailer", "R", seq("retailer process",
		inv("order", "W", "orderOp"),
		pick("order outcome",
			on("W", "confirmOp", empty("confirmed")),
			on("W", "backorderOp", empty("backordered")),
		),
		recv("deliver", "S", "deliverOp"),
		recv("invoice", "W", "invoiceOp"),
		inv("pay", "K", "payOp"),
	))
	wholesaler := proc("wholesaler", "W", seq("wholesaler process",
		recv("order", "R", "orderOp"),
		choice("stock?",
			[]bpel.Case{when("in stock", seq("in stock",
				inv("confirm", "R", "confirmOp"),
				inv("noBuild", "F", "noBuildOp"),
			))},
			seq("backorder",
				inv("backorder", "R", "backorderOp"),
				inv("build", "F", "buildOp"),
				recv("built", "F", "builtOp"),
			),
		),
		inv("pickup", "S", "pickupOp"),
		recv("shipped", "S", "shippedOp"),
		inv("invoice", "R", "invoiceOp"),
		recv("paid", "K", "paidWOp"),
	))
	factory := proc("factory", "F", seq("factory process",
		pick("work?",
			on("W", "noBuildOp", empty("idle")),
			on("W", "buildOp", inv("built", "W", "builtOp")),
		),
	))
	shipper := proc("shipper", "S", seq("shipper process",
		recv("pickup", "W", "pickupOp"),
		inv("deliver", "R", "deliverOp"),
		inv("shipped", "W", "shippedOp"),
	))
	bank := proc("bank", "K", seq("bank process",
		recv("pay", "R", "payOp"),
		inv("paidW", "W", "paidWOp"),
	))

	// rush-order: the wholesaler additionally accepts a rush order
	// message — the paper's invariant additive archetype (widen a
	// receive into a pick).
	rushOrder := Episode{
		Name:  "rush-order",
		Party: "W",
		Ops: []change.Spec{specReplace("Sequence:wholesaler process/Receive:order",
			pick("order intake",
				on("R", "orderOp", empty("standard")),
				on("R", "rushOrderOp", empty("rush")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"R": {Kind: "additive", Scope: "invariant"}},
		Stranded:      []Stranded{{Party: "W", ID: "W-dev", Status: "non-replayable"}},
	}

	// tracking-link: the wholesaler sends a tracking link right after
	// confirming — mid-sequence insertion, so old in-stock words
	// disappear while new ones appear (additive+subtractive, variant).
	// The retailer adapts its confirm branch to receive the link.
	trackingLink := Episode{
		Name:  "tracking-link",
		Party: "W",
		Ops: []change.Spec{specInsert(
			"Sequence:wholesaler process/Switch:stock?/Sequence:in stock/Invoke:confirm",
			inv("trackLink", "R", "trackLinkOp"), true)},
		PublicChanged: true,
		Impacts:       map[string]Impact{"R": {Kind: "additive+subtractive", Scope: "variant"}},
		Adaptations: []Adaptation{{
			Party: "R",
			Ops: []change.Spec{specReplace("Sequence:retailer process/Pick:order outcome",
				pick("order outcome",
					on("W", "confirmOp", recv("trackLink", "W", "trackLinkOp")),
					on("W", "backorderOp", empty("backordered")),
				))},
		}},
		Stranded: []Stranded{
			{Party: "R", ID: "R-done", Status: "non-replayable"},
			{Party: "W", ID: "W-dev", Status: "non-replayable"},
			{Party: "W", ID: "W-instock", Status: "non-replayable"},
		},
	}

	// audit-log: a silent bookkeeping step — neutral, invisible to
	// every partner.
	auditLog := Episode{
		Name:  "audit-log",
		Party: "W",
		Ops: []change.Spec{specInsert("Sequence:wholesaler process/Receive:order",
			&bpel.Assign{BlockName: "audit"}, true)},
		PublicChanged: false,
		Stranded:      []Stranded{{Party: "W", ID: "W-dev", Status: "non-replayable"}},
	}

	return &Scenario{
		Name:        "supply-chain",
		Description: "Retail supply chain: retailer, wholesaler, factory, shipper, bank; stock decision fans out to retailer and factory.",
		Parties:     []*bpel.Process{retailer, wholesaler, factory, shipper, bank},
		Instances: []Instance{
			migratable("R", "R-done", "R#W#orderOp", "W#R#confirmOp", "S#R#deliverOp", "W#R#invoiceOp", "R#K#payOp"),
			migratable("R", "R-open", "R#W#orderOp", "W#R#confirmOp"),
			migratable("W", "W-instock", "R#W#orderOp", "W#R#confirmOp", "W#F#noBuildOp", "W#S#pickupOp", "S#W#shippedOp", "W#R#invoiceOp", "K#W#paidWOp"),
			migratable("W", "W-backorder", "R#W#orderOp", "W#R#backorderOp", "W#F#buildOp", "F#W#builtOp"),
			deviator("W", "W-dev", "R#W#orderOp", "W#X#bogusOp"),
			migratable("F", "F-build", "W#F#buildOp", "F#W#builtOp"),
			migratable("S", "S-open", "W#S#pickupOp", "S#R#deliverOp"),
			migratable("K", "K-done", "R#K#payOp", "K#W#paidWOp"),
		},
		Episodes: []Episode{rushOrder, trackingLink, auditLog},
	}
}
