package scenario

import (
	"fmt"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/mapping"
)

// corpus loads the checked-in scenarios once per test binary.
func corpus(t *testing.T) []*Scenario {
	t.Helper()
	scs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 5 {
		t.Fatalf("corpus has %d scenarios, want at least 5", len(scs))
	}
	return scs
}

// publics derives every party's public automaton.
func publics(t *testing.T, sc *Scenario) map[string]*afsa.Automaton {
	t.Helper()
	reg, err := mapping.InferRegistry(sc.Parties, sc.SyncOps)
	if err != nil {
		t.Fatalf("%s: inferring registry: %v", sc.Name, err)
	}
	out := make(map[string]*afsa.Automaton, len(sc.Parties))
	for _, p := range sc.Parties {
		res, err := mapping.Derive(p, reg)
		if err != nil {
			t.Fatalf("%s: deriving %s: %v", sc.Name, p.Owner, err)
		}
		out[p.Owner] = res.Automaton
	}
	return out
}

// countKind counts activities of one kind across a process.
func countKind(p *bpel.Process, kind bpel.Kind) int {
	n := 0
	bpel.Walk(p.Body, func(a bpel.Activity, _ bpel.Path) bool {
		if a.Kind() == kind {
			n++
		}
		return true
	})
	return n
}

func TestCorpusShape(t *testing.T) {
	loops, scopes := 0, 0
	for _, sc := range corpus(t) {
		if len(sc.Parties) < 5 {
			t.Errorf("%s: %d parties, want at least 5", sc.Name, len(sc.Parties))
		}
		if len(sc.Episodes) < 3 {
			t.Errorf("%s: %d episodes, want at least 3", sc.Name, len(sc.Episodes))
		}
		deviators := 0
		for _, in := range sc.Instances {
			if sc.Party(in.Party) == nil {
				t.Errorf("%s: instance %s/%s names unknown party", sc.Name, in.Party, in.ID)
			}
			if in.Status == "non-replayable" {
				deviators++
			}
		}
		if deviators == 0 {
			t.Errorf("%s: no scripted deviator instance", sc.Name)
		}
		for _, ep := range sc.Episodes {
			if sc.Party(ep.Party) == nil {
				t.Errorf("%s/%s: unknown originator %q", sc.Name, ep.Name, ep.Party)
			}
			for partner := range ep.Impacts {
				if sc.Party(partner) == nil {
					t.Errorf("%s/%s: impact on unknown partner %q", sc.Name, ep.Name, partner)
				}
			}
			for _, st := range ep.Stranded {
				found := false
				for _, in := range sc.InstancesOf(st.Party) {
					if in.ID == st.ID {
						found = true
					}
				}
				if !found {
					t.Errorf("%s/%s: stranded %s/%s is not a scripted instance", sc.Name, ep.Name, st.Party, st.ID)
				}
			}
		}
		for _, p := range sc.Parties {
			loops += countKind(p, bpel.KindWhile)
			scopes += countKind(p, bpel.KindScope)
		}
	}
	if loops == 0 {
		t.Error("corpus has no loop (While) anywhere")
	}
	if scopes == 0 {
		t.Error("corpus has no cancellation scope (Scope) anywhere")
	}
}

// TestCorpusBaseIsConsistent checks every pairwise conversation of
// every scenario is consistent by construction (annotated intersection
// non-empty, paper Def. 4).
func TestCorpusBaseIsConsistent(t *testing.T) {
	for _, sc := range corpus(t) {
		pub := publics(t, sc)
		for i := 0; i < len(sc.Parties); i++ {
			for j := i + 1; j < len(sc.Parties); j++ {
				a, b := sc.Parties[i].Owner, sc.Parties[j].Owner
				va, vb := pub[a].View(b), pub[b].View(a)
				ok, err := afsa.Consistent(va, vb)
				if err != nil {
					t.Fatalf("%s: consistency %s/%s: %v", sc.Name, a, b, err)
				}
				if !ok {
					t.Errorf("%s: base views of %s and %s are inconsistent", sc.Name, a, b)
				}
			}
		}
	}
}

// TestScriptedTracesMatchStatus replays every scripted trace against
// the owning party's *base* public process and checks the scripted
// status: migratable instances are valid in-flight conversations,
// deviators are off-protocol.
func TestScriptedTracesMatchStatus(t *testing.T) {
	for _, sc := range corpus(t) {
		pub := publics(t, sc)
		checkers := map[string]*instance.Checker{}
		for party, a := range pub {
			c, err := instance.NewChecker(a)
			if err != nil {
				t.Fatalf("%s: checker for %s: %v", sc.Name, party, err)
			}
			checkers[party] = c
		}
		for _, in := range sc.Instances {
			got := checkers[in.Party].Check(instance.Instance{ID: in.ID, Trace: in.Trace}).String()
			if got != in.Status {
				t.Errorf("%s: instance %s/%s: scripted status %q, checker says %q", sc.Name, in.Party, in.ID, in.Status, got)
			}
		}
	}
}

// applyAll decodes and applies a spec transaction to the party's
// current process.
func applyAll(party string, p *bpel.Process, specs []change.Spec) (*bpel.Process, error) {
	ops, err := change.DecodeSpecs(party, specs)
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		if p, err = op.Apply(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// TestEpisodesApplyAndRestoreConsistency applies every episode (and
// its adaptations) offline and checks the op specs decode, apply
// cleanly to the base processes, and — once all adaptations are in —
// leave every pairwise conversation consistent again.
func TestEpisodesApplyAndRestoreConsistency(t *testing.T) {
	for _, sc := range corpus(t) {
		for _, ep := range sc.Episodes {
			t.Run(sc.Name+"/"+ep.Name, func(t *testing.T) {
				evolved := map[string]*bpel.Process{}
				for _, p := range sc.Parties {
					evolved[p.Owner] = p
				}
				p, err := applyAll(ep.Party, evolved[ep.Party], ep.Ops)
				if err != nil {
					t.Fatalf("episode ops: %v", err)
				}
				evolved[ep.Party] = p
				for _, ad := range ep.Adaptations {
					p, err := applyAll(ad.Party, evolved[ad.Party], ad.Ops)
					if err != nil {
						t.Fatalf("adaptation for %s: %v", ad.Party, err)
					}
					evolved[ad.Party] = p
				}
				procs := make([]*bpel.Process, 0, len(sc.Parties))
				var syncOps []string
				for _, base := range sc.Parties {
					procs = append(procs, evolved[base.Owner])
				}
				syncOps = sc.SyncOps
				reg, err := mapping.InferRegistry(procs, syncOps)
				if err != nil {
					t.Fatal(err)
				}
				pub := map[string]*afsa.Automaton{}
				for _, p := range procs {
					res, err := mapping.Derive(p, reg)
					if err != nil {
						t.Fatalf("deriving %s after episode: %v", p.Owner, err)
					}
					pub[p.Owner] = res.Automaton
				}
				for i := 0; i < len(procs); i++ {
					for j := i + 1; j < len(procs); j++ {
						a, b := procs[i].Owner, procs[j].Owner
						ok, err := afsa.Consistent(pub[a].View(b), pub[b].View(a))
						if err != nil {
							t.Fatalf("consistency %s/%s: %v", a, b, err)
						}
						if !ok {
							t.Errorf("views of %s and %s inconsistent after episode and adaptations", a, b)
						}
					}
				}
			})
		}
	}
}

func TestEventsPreservePerInstanceOrder(t *testing.T) {
	for _, sc := range corpus(t) {
		evs := Events(sc.Instances, "-ev")
		perInstance := map[string][]label.Label{}
		for _, ev := range evs {
			perInstance[ev.Party+"/"+ev.Instance] = append(perInstance[ev.Party+"/"+ev.Instance], ev.Label)
		}
		total := 0
		for _, in := range sc.Instances {
			key := in.Party + "/" + in.ID + "-ev"
			got := perInstance[key]
			if len(got) != len(in.Trace) {
				t.Fatalf("%s: %s: %d events, want %d", sc.Name, key, len(got), len(in.Trace))
			}
			for i := range got {
				if got[i] != in.Trace[i] {
					t.Fatalf("%s: %s: event %d is %v, want %v", sc.Name, key, i, got[i], in.Trace[i])
				}
			}
			total += len(in.Trace)
		}
		if len(evs) != total {
			t.Fatalf("%s: %d events, want %d", sc.Name, len(evs), total)
		}
	}
}

// Example documents corpus loading for godoc.
func Example() {
	sc, err := Load("supply-chain")
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Name, len(sc.Parties), "parties")
	// Output: supply-chain 5 parties
}
