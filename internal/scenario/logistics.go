package scenario

import (
	"repro/internal/bpel"
	"repro/internal/change"
)

// logisticsScenario is a six-party freight corridor: a shipper books a
// carrier, the carrier declares the cargo at customs, the customs
// outcome (cleared/held) decides the warehouse instruction, and the
// consignee accepts delivery while an insurer covers the shipment on
// the side. The carrier is the hub; the customs switch is announced to
// the carrier with a distinct message per branch.
func logisticsScenario() *Scenario {
	carrier := proc("carrier", "C", seq("carrier process",
		recv("book", "SH", "bookOp"),
		inv("booked", "SH", "bookedOp"),
		inv("declare", "CU", "declareOp"),
		pick("customs result",
			on("CU", "clearedOp", inv("store", "WH", "storeOp")),
			on("CU", "heldOp", inv("hold", "WH", "holdOp")),
		),
		recv("released", "WH", "releasedOp"),
		inv("arrive", "CO", "arriveOp"),
		recv("accept", "CO", "acceptOp"),
		inv("delivered", "SH", "deliveredOp"),
	))
	shipper := proc("shipper", "SH", seq("shipper process",
		inv("book", "C", "bookOp"),
		recv("booked", "C", "bookedOp"),
		inv("cover", "IN", "coverOp"),
		recv("covered", "IN", "coveredOp"),
		recv("delivered", "C", "deliveredOp"),
	))
	customs := proc("customs", "CU", seq("customs process",
		recv("declare", "C", "declareOp"),
		choice("inspection",
			[]bpel.Case{when("clear", inv("cleared", "C", "clearedOp"))},
			inv("held", "C", "heldOp"),
		),
	))
	warehouse := proc("warehouse", "WH", seq("warehouse process",
		pick("instruction",
			on("C", "storeOp", empty("shelve")),
			on("C", "holdOp", empty("bond")),
		),
		inv("released", "C", "releasedOp"),
	))
	consignee := proc("consignee", "CO", seq("consignee process",
		recv("arrive", "C", "arriveOp"),
		inv("accept", "C", "acceptOp"),
	))
	insurer := proc("insurer", "IN", seq("insurer process",
		recv("cover", "SH", "coverOp"),
		inv("covered", "SH", "coveredOp"),
	))

	// e-declaration: customs additionally accepts electronic
	// declarations — additive invariant for the carrier.
	eDeclaration := Episode{
		Name:  "e-declaration",
		Party: "CU",
		Ops: []change.Spec{specReplace("Sequence:customs process/Receive:declare",
			pick("declaration intake",
				on("C", "declareOp", empty("paper")),
				on("C", "eDeclareOp", empty("electronic")),
			))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"C": {Kind: "additive", Scope: "invariant"}},
		Stranded:      []Stranded{{Party: "C", ID: "C-dev", Status: "non-replayable"}},
	}

	// diversion: the carrier gains a diversion exit before arrival —
	// the consignee is notified and the shipper's shipment ends with a
	// diverted message instead of delivered. Additive variant for both;
	// each adapts by widening its tail receive into a pick.
	diversion := Episode{
		Name:  "diversion",
		Party: "C",
		Ops: []change.Spec{specReplace("Sequence:carrier process",
			seq("carrier process",
				recv("book", "SH", "bookOp"),
				inv("booked", "SH", "bookedOp"),
				inv("declare", "CU", "declareOp"),
				pick("customs result",
					on("CU", "clearedOp", inv("store", "WH", "storeOp")),
					on("CU", "heldOp", inv("hold", "WH", "holdOp")),
				),
				recv("released", "WH", "releasedOp"),
				choice("route ok?",
					[]bpel.Case{when("on route", seq("deliver leg",
						inv("arrive", "CO", "arriveOp"),
						recv("accept", "CO", "acceptOp"),
						inv("delivered", "SH", "deliveredOp"),
					))},
					seq("divert leg",
						inv("divertNotice", "CO", "divertOp"),
						inv("diverted", "SH", "divertedOp"),
						terminate("diverted"),
					),
				),
			))},
		PublicChanged: true,
		Impacts: map[string]Impact{
			"CO": {Kind: "additive", Scope: "variant"},
			"SH": {Kind: "additive", Scope: "variant"},
		},
		Adaptations: []Adaptation{
			{
				Party: "CO",
				Ops: []change.Spec{specReplace("Sequence:consignee process",
					seq("consignee process",
						pick("arrival?",
							on("C", "arriveOp", inv("accept", "C", "acceptOp")),
							on("C", "divertOp", empty("diverted")),
						),
					))},
			},
			{
				Party: "SH",
				Ops: []change.Spec{specReplace("Sequence:shipper process/Receive:delivered",
					pick("outcome",
						on("C", "deliveredOp", empty("delivered")),
						on("C", "divertedOp", empty("diverted")),
					))},
			},
		},
		Stranded: []Stranded{{Party: "C", ID: "C-dev", Status: "non-replayable"}},
	}

	// always-clear: customs drops the inspection and always clears —
	// the carrier loses the held branch it merely picked on
	// (subtractive invariant), held-branch instances strand.
	alwaysClear := Episode{
		Name:  "always-clear",
		Party: "CU",
		Ops: []change.Spec{specReplace("Sequence:customs process/Switch:inspection",
			inv("cleared", "C", "clearedOp"))},
		PublicChanged: true,
		Impacts:       map[string]Impact{"C": {Kind: "subtractive", Scope: "invariant"}},
		Stranded: []Stranded{
			{Party: "C", ID: "C-dev", Status: "non-replayable"},
			{Party: "CU", ID: "CU-held", Status: "non-replayable"},
		},
	}

	return &Scenario{
		Name:        "logistics",
		Description: "Freight corridor: shipper, carrier, customs, warehouse, consignee, insurer; customs outcome steers the warehouse instruction.",
		Parties:     []*bpel.Process{carrier, shipper, customs, warehouse, consignee, insurer},
		Instances: []Instance{
			migratable("C", "C-cleared", "SH#C#bookOp", "C#SH#bookedOp", "C#CU#declareOp", "CU#C#clearedOp", "C#WH#storeOp", "WH#C#releasedOp", "C#CO#arriveOp", "CO#C#acceptOp", "C#SH#deliveredOp"),
			migratable("C", "C-held", "SH#C#bookOp", "C#SH#bookedOp", "C#CU#declareOp", "CU#C#heldOp", "C#WH#holdOp"),
			deviator("C", "C-dev", "SH#C#bookOp", "C#X#bogusOp"),
			migratable("CU", "CU-cleared", "C#CU#declareOp", "CU#C#clearedOp"),
			migratable("CU", "CU-held", "C#CU#declareOp", "CU#C#heldOp"),
			migratable("WH", "WH-hold", "C#WH#holdOp", "WH#C#releasedOp"),
			migratable("SH", "SH-open", "SH#C#bookOp", "C#SH#bookedOp", "SH#IN#coverOp", "IN#SH#coveredOp"),
			migratable("CO", "CO-done", "C#CO#arriveOp", "CO#C#acceptOp"),
			migratable("IN", "IN-done", "SH#IN#coverOp", "IN#SH#coveredOp"),
		},
		Episodes: []Episode{eDeclaration, diversion, alwaysClear},
	}
}
