package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bpel"
)

var update = flag.Bool("update", false, "regenerate testdata from the scenario builders")

func partyFile(p *bpel.Process) string {
	return strings.ReplaceAll(p.Name, " ", "-") + ".xml"
}

// render produces the on-disk files (relative to testdata/<name>/) for
// one built scenario.
func render(sc *Scenario) (map[string][]byte, error) {
	out := make(map[string][]byte)
	m := manifest{
		Name:        sc.Name,
		Description: sc.Description,
		SyncOps:     sc.SyncOps,
		Episodes:    sc.Episodes,
	}
	for _, p := range sc.Parties {
		file := partyFile(p)
		raw, err := bpel.MarshalXML(p)
		if err != nil {
			return nil, fmt.Errorf("party %s: %v", p.Owner, err)
		}
		out[file] = raw
		m.Parties = append(m.Parties, manifestParty{Name: p.Owner, File: file})
	}
	for _, in := range sc.Instances {
		mi := manifestInstance{Party: in.Party, ID: in.ID, Status: in.Status}
		for _, l := range in.Trace {
			mi.Trace = append(mi.Trace, l.String())
		}
		m.Instances = append(m.Instances, mi)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	out["manifest.json"] = append(raw, '\n')
	return out, nil
}

// TestTestdataInSync fails when the checked-in corpus drifts from the
// builders; -update regenerates it.
func TestTestdataInSync(t *testing.T) {
	byName := make(map[string]map[string][]byte)
	for _, sc := range definitions() {
		files, err := render(sc)
		if err != nil {
			t.Fatalf("rendering %s: %v", sc.Name, err)
		}
		byName[sc.Name] = files
	}

	if *update {
		for name, files := range byName {
			dir := filepath.Join("testdata", name)
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for file, raw := range files {
				if err := os.WriteFile(filepath.Join(dir, file), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		t.Log("testdata regenerated")
		return
	}

	names := Names()
	if want := len(byName); len(names) != want {
		t.Fatalf("testdata has %d scenarios %v, builders define %d (run -update)", len(names), names, want)
	}
	for _, name := range names {
		files, ok := byName[name]
		if !ok {
			t.Errorf("testdata/%s has no builder (run -update)", name)
			continue
		}
		for file, want := range files {
			got, err := testdataFS.ReadFile("testdata/" + name + "/" + file)
			if err != nil {
				t.Errorf("%s/%s: %v (run -update)", name, file, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s is stale (run -update)", name, file)
			}
		}
	}
}
