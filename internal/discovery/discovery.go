// Package discovery implements the service-discovery application of
// the aFSA machinery named in paper Sec. 6 (refs [18, 20], the
// IPSI-PF matchmaking engine): a registry of public processes that is
// queried with one's own public process, returning the services whose
// conversation protocols are bilaterally consistent with the query.
//
// The package also implements the naive baseline such engines are
// compared against — message-overlap matching (two services "match"
// when each mandatory direction of the conversation shares at least
// one operation) — so the benchmarks can show the precision gap that
// motivates consistency-based matchmaking.
package discovery

import (
	"fmt"
	"sort"

	"repro/internal/afsa"
)

// Entry is one published service.
type Entry struct {
	Name   string
	Public *afsa.Automaton
}

// Registry stores published public processes.
type Registry struct {
	entries []Entry
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Publish adds a service.
func (r *Registry) Publish(name string, public *afsa.Automaton) error {
	if name == "" || public == nil {
		return fmt.Errorf("discovery: publish needs a name and an automaton")
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("discovery: service %q already published", name)
	}
	r.byName[name] = len(r.entries)
	r.entries = append(r.entries, Entry{Name: name, Public: public})
	return nil
}

// Len returns the number of published services.
func (r *Registry) Len() int { return len(r.entries) }

// Names returns the published service names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Match is one discovery result.
type Match struct {
	Name string
}

// MatchConsistent returns the services bilaterally consistent with the
// query (non-empty annotated intersection, Sec. 3.2) — the precise
// matchmaking of [18].
func (r *Registry) MatchConsistent(query *afsa.Automaton) ([]Match, error) {
	var out []Match
	for _, e := range r.entries {
		ok, err := afsa.Consistent(query, e.Public)
		if err != nil {
			return nil, fmt.Errorf("discovery: matching %q: %w", e.Name, err)
		}
		if ok {
			out = append(out, Match{Name: e.Name})
		}
	}
	return out, nil
}

// MatchOverlap returns the services whose alphabets overlap with the
// query in both directions of every conversation — the keyword-style
// baseline. It over-approximates: protocol order, mandatory
// alternatives and deadlocks are invisible to it.
func (r *Registry) MatchOverlap(query *afsa.Automaton) []Match {
	qSigma := query.Alphabet()
	var out []Match
	for _, e := range r.entries {
		if len(qSigma.Intersect(e.Public.Alphabet())) > 0 {
			out = append(out, Match{Name: e.Name})
		}
	}
	return out
}

// Evaluation compares the two matchers against ground truth (the set
// of service names that are *actually* safe partners, established by
// the caller, e.g. via exhaustive simulation).
type Evaluation struct {
	Matcher                       string
	TruePositives, FalsePositives int
	FalseNegatives                int
	Precision, Recall             float64
}

// Evaluate computes precision/recall of a result set against ground
// truth.
func Evaluate(matcher string, got []Match, truth map[string]bool) Evaluation {
	ev := Evaluation{Matcher: matcher}
	seen := map[string]bool{}
	for _, m := range got {
		seen[m.Name] = true
		if truth[m.Name] {
			ev.TruePositives++
		} else {
			ev.FalsePositives++
		}
	}
	for name, ok := range truth {
		if ok && !seen[name] {
			ev.FalseNegatives++
		}
	}
	if ev.TruePositives+ev.FalsePositives > 0 {
		ev.Precision = float64(ev.TruePositives) / float64(ev.TruePositives+ev.FalsePositives)
	}
	if ev.TruePositives+ev.FalseNegatives > 0 {
		ev.Recall = float64(ev.TruePositives) / float64(ev.TruePositives+ev.FalseNegatives)
	}
	return ev
}
