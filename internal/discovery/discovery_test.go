package discovery

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
)

func lbl(s string) label.Label { return label.MustParse(s) }

func TestPublishValidation(t *testing.T) {
	r := NewRegistry()
	a := afsa.New("a")
	a.AddState()
	if err := r.Publish("", a); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Publish("x", nil); err == nil {
		t.Fatal("nil automaton accepted")
	}
	if err := r.Publish("x", a); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish("x", a); err == nil {
		t.Fatal("duplicate accepted")
	}
	if r.Len() != 1 || len(r.Names()) != 1 {
		t.Fatal("registry bookkeeping wrong")
	}
}

// TestConsistencyBeatsOverlap builds the motivating case: a service
// that shares the query's messages but in an incompatible protocol
// (mandatory alternative missing). Overlap matching reports it;
// consistency matching does not.
func TestConsistencyBeatsOverlap(t *testing.T) {
	// Query: party A's side of the Fig. 5 example (msg0/msg2 optional).
	query := afsa.New("query")
	q0 := query.AddState()
	q1 := query.AddState()
	query.SetStart(q0)
	query.SetFinal(q1, true)
	query.AddTransition(q0, lbl("B#A#msg0"), q1)
	query.AddTransition(q0, lbl("B#A#msg2"), q1)

	// Good service: accepts msg0 (compatible).
	good := afsa.New("good")
	g0 := good.AddState()
	g1 := good.AddState()
	good.SetStart(g0)
	good.SetFinal(g1, true)
	good.AddTransition(g0, lbl("B#A#msg0"), g1)

	// Bad service: shares msg2 but mandates msg1 too (Fig. 5 party B).
	bad := afsa.New("bad")
	b0 := bad.AddState()
	b1 := bad.AddState()
	bad.SetStart(b0)
	bad.SetFinal(b1, true)
	bad.AddTransition(b0, lbl("B#A#msg1"), b1)
	bad.AddTransition(b0, lbl("B#A#msg2"), b1)
	bad.Annotate(b0, formula.And(formula.Var("B#A#msg1"), formula.Var("B#A#msg2")))

	r := NewRegistry()
	for name, a := range map[string]*afsa.Automaton{"good": good, "bad": bad} {
		if err := r.Publish(name, a); err != nil {
			t.Fatal(err)
		}
	}

	overlap := r.MatchOverlap(query)
	if len(overlap) != 2 {
		t.Fatalf("overlap matches = %v, want both", overlap)
	}
	consistent, err := r.MatchConsistent(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(consistent) != 1 || consistent[0].Name != "good" {
		t.Fatalf("consistent matches = %v, want only good", consistent)
	}

	truth := map[string]bool{"good": true, "bad": false}
	evOverlap := Evaluate("overlap", overlap, truth)
	evCons := Evaluate("consistent", consistent, truth)
	if evCons.Precision != 1 || evCons.Recall != 1 {
		t.Fatalf("consistency evaluation = %+v", evCons)
	}
	if evOverlap.Precision >= 1 {
		t.Fatalf("overlap should have false positives: %+v", evOverlap)
	}
	if evOverlap.FalsePositives != 1 {
		t.Fatalf("overlap FP = %d", evOverlap.FalsePositives)
	}
}

// TestDiscoverAccountingPartner publishes the paper's three public
// processes and queries with the buyer: only accounting matches.
func TestDiscoverAccountingPartner(t *testing.T) {
	reg := paperrepro.Registry()
	buyer, err := mapping.Derive(paperrepro.BuyerProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mapping.Derive(paperrepro.AccountingProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	logistics, err := mapping.Derive(paperrepro.LogisticsProcess(), reg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	// Publish the views the services expose to a buyer.
	if err := r.Publish("accounting", acc.Automaton.View(paperrepro.Buyer)); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish("logistics", logistics.Automaton.View(paperrepro.Buyer)); err != nil {
		t.Fatal(err)
	}
	got, err := r.MatchConsistent(buyer.Automaton)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "accounting" {
		t.Fatalf("matches = %v, want accounting only", got)
	}
}

func TestEvaluateFalseNegatives(t *testing.T) {
	truth := map[string]bool{"a": true, "b": true}
	ev := Evaluate("m", []Match{{Name: "a"}}, truth)
	if ev.FalseNegatives != 1 || ev.Recall != 0.5 {
		t.Fatalf("evaluation = %+v", ev)
	}
}
