package bpel

import (
	"fmt"
	"strings"
)

// Path addresses an activity inside a process as the sequence of path
// elements (Element strings) from the root activity down to the
// activity, root *included* — matching the paper's mapping table,
// whose entries start at the outermost block ("Sequence:buyer
// process"). The empty path addresses the root activity as well.
//
// Example (buyer process of paper Fig. 3):
//
//	{"Sequence:buyer process", "While:tracking", "Switch:termination?"}
type Path []string

// String joins the elements with " / ".
func (p Path) String() string {
	if len(p) == 0 {
		return "(root)"
	}
	return strings.Join(p, " / ")
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Child returns p extended by one element.
func (p Path) Child(elem string) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = elem
	return out
}

// Parent returns p without its last element (nil for the empty path).
func (p Path) Parent() Path {
	if len(p) == 0 {
		return nil
	}
	out := make(Path, len(p)-1)
	copy(out, p[:len(p)-1])
	return out
}

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	for i := range q {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Walk visits every activity of the tree rooted at a in depth-first
// document order, passing each activity and its path (starting with
// a's own element). Returning false from fn stops the descent below
// that activity.
func Walk(a Activity, fn func(act Activity, path Path) bool) {
	if a == nil {
		return
	}
	walk(a, Path{Element(a)}, fn)
}

func walk(a Activity, path Path, fn func(Activity, Path) bool) {
	if a == nil {
		return
	}
	if !fn(a, path) {
		return
	}
	for _, c := range Children(a) {
		if c != nil {
			walk(c, path.Child(Element(c)), fn)
		}
	}
}

// Find returns the first activity whose path equals path (relative to
// the process body; the empty path returns the body).
func (p *Process) Find(path Path) (Activity, error) {
	if p.Body == nil {
		return nil, fmt.Errorf("bpel: process %q has no body", p.Name)
	}
	if len(path) == 0 {
		return p.Body, nil
	}
	var found Activity
	Walk(p.Body, func(a Activity, ap Path) bool {
		if found != nil {
			return false
		}
		if ap.Equal(path) {
			found = a
			return false
		}
		// Only descend while ap is a prefix of the target.
		return path.HasPrefix(ap)
	})
	if found == nil {
		return nil, fmt.Errorf("bpel: process %q has no activity at %s", p.Name, path)
	}
	return found, nil
}

// FindFirst returns the path of the first activity (document order)
// satisfying pred, or an error when none matches.
func (p *Process) FindFirst(pred func(Activity) bool) (Path, error) {
	var found Path
	ok := false
	Walk(p.Body, func(a Activity, ap Path) bool {
		if ok {
			return false
		}
		if pred(a) {
			found = append(Path(nil), ap...)
			ok = true
			return false
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("bpel: process %q has no matching activity", p.Name)
	}
	return found, nil
}

// Transform returns a deep copy of the process in which the activity
// at path has been replaced by fn(activity). fn receives a fresh clone
// and may return a different activity (or nil to delete — deletion
// inside a Sequence/Flow removes the element; deleting a While/Scope
// body or a branch body replaces it with Empty).
func (p *Process) Transform(path Path, fn func(Activity) (Activity, error)) (*Process, error) {
	if p.Body == nil {
		return nil, fmt.Errorf("bpel: process %q has no body", p.Name)
	}
	out := p.Clone()
	if len(path) == 0 {
		body, err := fn(out.Body)
		if err != nil {
			return nil, err
		}
		if body == nil {
			body = &Empty{}
		}
		out.Body = body
		return out, nil
	}
	if _, err := p.Find(path); err != nil {
		return nil, err
	}
	body, err := transform(out.Body, Path{Element(out.Body)}, path, fn)
	if err != nil {
		return nil, err
	}
	if body == nil {
		body = &Empty{}
	}
	out.Body = body
	return out, nil
}

func transform(a Activity, cur, target Path, fn func(Activity) (Activity, error)) (Activity, error) {
	if a == nil {
		return nil, nil
	}
	if cur.Equal(target) {
		return fn(a)
	}
	if !target.HasPrefix(cur) {
		return a, nil
	}
	apply := func(child Activity) (Activity, error) {
		if child == nil {
			return nil, nil
		}
		return transform(child, cur.Child(Element(child)), target, fn)
	}
	switch t := a.(type) {
	case *Sequence:
		var kids []Activity
		for _, c := range t.Children {
			nc, err := apply(c)
			if err != nil {
				return nil, err
			}
			if nc != nil {
				kids = append(kids, nc)
			}
		}
		t.Children = kids
	case *Flow:
		var kids []Activity
		for _, c := range t.Branches {
			nc, err := apply(c)
			if err != nil {
				return nil, err
			}
			if nc != nil {
				kids = append(kids, nc)
			}
		}
		t.Branches = kids
	case *Switch:
		for i := range t.Cases {
			nc, err := apply(t.Cases[i].Body)
			if err != nil {
				return nil, err
			}
			if nc == nil {
				nc = &Empty{}
			}
			t.Cases[i].Body = nc
		}
		if t.Else != nil {
			ne, err := apply(t.Else)
			if err != nil {
				return nil, err
			}
			t.Else = ne
		}
	case *Pick:
		for i := range t.Branches {
			nb, err := apply(t.Branches[i].Body)
			if err != nil {
				return nil, err
			}
			if nb == nil {
				nb = &Empty{}
			}
			t.Branches[i].Body = nb
		}
	case *While:
		nb, err := apply(t.Body)
		if err != nil {
			return nil, err
		}
		if nb == nil {
			nb = &Empty{}
		}
		t.Body = nb
	case *Scope:
		nb, err := apply(t.Body)
		if err != nil {
			return nil, err
		}
		if nb == nil {
			nb = &Empty{}
		}
		t.Body = nb
	}
	return a, nil
}

// Paths returns the paths of every activity in document order.
func (p *Process) Paths() []Path {
	var out []Path
	Walk(p.Body, func(a Activity, ap Path) bool {
		out = append(out, append(Path(nil), ap...))
		return true
	})
	return out
}
