package bpel

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// MarshalXML renders the process in BPEL-flavored XML:
//
//	<process name="buyer" owner="B">
//	  <partnerLinks>
//	    <partnerLink name="accBuyer" partner="A"/>
//	  </partnerLinks>
//	  <sequence name="buyer process">
//	    <invoke name="order" partner="A" operation="orderOp"/>
//	    ...
//	  </sequence>
//	</process>
//
// The syntax is a faithful subset of BPEL 1.1 element names with the
// owner/partner attributes this package needs instead of the full
// partnerLinkType indirection.
func MarshalXML(p *Process) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	root := xml.StartElement{
		Name: xml.Name{Local: "process"},
		Attr: []xml.Attr{
			{Name: xml.Name{Local: "name"}, Value: p.Name},
			{Name: xml.Name{Local: "owner"}, Value: p.Owner},
		},
	}
	if err := enc.EncodeToken(root); err != nil {
		return nil, err
	}
	if len(p.PartnerLinks) > 0 {
		pls := xml.StartElement{Name: xml.Name{Local: "partnerLinks"}}
		if err := enc.EncodeToken(pls); err != nil {
			return nil, err
		}
		for _, pl := range p.PartnerLinks {
			el := xml.StartElement{
				Name: xml.Name{Local: "partnerLink"},
				Attr: []xml.Attr{
					{Name: xml.Name{Local: "name"}, Value: pl.Name},
					{Name: xml.Name{Local: "partner"}, Value: pl.Partner},
				},
			}
			if pl.LinkType != "" {
				el.Attr = append(el.Attr, xml.Attr{Name: xml.Name{Local: "partnerLinkType"}, Value: pl.LinkType})
			}
			if err := enc.EncodeToken(el); err != nil {
				return nil, err
			}
			if err := enc.EncodeToken(el.End()); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(pls.End()); err != nil {
			return nil, err
		}
	}
	if p.Body != nil {
		if err := encodeActivity(enc, p.Body); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(root.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

func attr(name, value string) xml.Attr {
	return xml.Attr{Name: xml.Name{Local: name}, Value: value}
}

func startEl(name string, attrs ...xml.Attr) xml.StartElement {
	return xml.StartElement{Name: xml.Name{Local: name}, Attr: attrs}
}

func encodeActivity(enc *xml.Encoder, a Activity) error {
	emit := func(el xml.StartElement, inner func() error) error {
		if err := enc.EncodeToken(el); err != nil {
			return err
		}
		if inner != nil {
			if err := inner(); err != nil {
				return err
			}
		}
		return enc.EncodeToken(el.End())
	}
	nameAttr := func(n string) []xml.Attr {
		if n == "" {
			return nil
		}
		return []xml.Attr{attr("name", n)}
	}
	switch t := a.(type) {
	case *Sequence:
		return emit(startEl("sequence", nameAttr(t.BlockName)...), func() error {
			for _, c := range t.Children {
				if err := encodeActivity(enc, c); err != nil {
					return err
				}
			}
			return nil
		})
	case *Flow:
		return emit(startEl("flow", nameAttr(t.BlockName)...), func() error {
			for _, c := range t.Branches {
				if err := encodeActivity(enc, c); err != nil {
					return err
				}
			}
			return nil
		})
	case *Switch:
		return emit(startEl("switch", nameAttr(t.BlockName)...), func() error {
			for _, c := range t.Cases {
				el := startEl("case", attr("condition", c.Cond))
				if err := emit(el, func() error { return encodeActivity(enc, c.Body) }); err != nil {
					return err
				}
			}
			if t.Else != nil {
				el := startEl("otherwise")
				if err := emit(el, func() error { return encodeActivity(enc, t.Else) }); err != nil {
					return err
				}
			}
			return nil
		})
	case *Pick:
		return emit(startEl("pick", nameAttr(t.BlockName)...), func() error {
			for _, b := range t.Branches {
				el := startEl("onMessage", attr("partner", b.Partner), attr("operation", b.Op))
				if err := emit(el, func() error { return encodeActivity(enc, b.Body) }); err != nil {
					return err
				}
			}
			return nil
		})
	case *While:
		attrs := append(nameAttr(t.BlockName), attr("condition", t.Cond))
		return emit(startEl("while", attrs...), func() error {
			return encodeActivity(enc, t.Body)
		})
	case *Scope:
		return emit(startEl("scope", nameAttr(t.BlockName)...), func() error {
			return encodeActivity(enc, t.Body)
		})
	case *Receive:
		attrs := append(nameAttr(t.BlockName), attr("partner", t.Partner), attr("operation", t.Op))
		return emit(startEl("receive", attrs...), nil)
	case *Reply:
		attrs := append(nameAttr(t.BlockName), attr("partner", t.Partner), attr("operation", t.Op))
		return emit(startEl("reply", attrs...), nil)
	case *Invoke:
		attrs := append(nameAttr(t.BlockName), attr("partner", t.Partner), attr("operation", t.Op))
		if t.Sync {
			attrs = append(attrs, attr("sync", "true"))
		}
		return emit(startEl("invoke", attrs...), nil)
	case *Assign:
		return emit(startEl("assign", nameAttr(t.BlockName)...), nil)
	case *Empty:
		return emit(startEl("empty", nameAttr(t.BlockName)...), nil)
	case *Terminate:
		return emit(startEl("terminate", nameAttr(t.BlockName)...), nil)
	case nil:
		return nil
	}
	return fmt.Errorf("bpel: cannot encode activity kind %v", a.Kind())
}

// UnmarshalXML parses the syntax produced by MarshalXML.
func UnmarshalXML(data []byte) (*Process, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("bpel: no <process> element found")
		}
		if err != nil {
			return nil, err
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Local != "process" {
			return nil, fmt.Errorf("bpel: unexpected root element <%s>", start.Name.Local)
		}
		return decodeProcess(dec, start)
	}
}

func attrValue(el xml.StartElement, name string) string {
	for _, a := range el.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

func decodeProcess(dec *xml.Decoder, root xml.StartElement) (*Process, error) {
	p := &Process{
		Name:  attrValue(root, "name"),
		Owner: attrValue(root, "owner"),
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "partnerLinks":
				if err := decodePartnerLinks(dec, p); err != nil {
					return nil, err
				}
			default:
				if p.Body != nil {
					return nil, fmt.Errorf("bpel: process %q has more than one root activity", p.Name)
				}
				act, err := decodeActivity(dec, t)
				if err != nil {
					return nil, err
				}
				p.Body = act
			}
		case xml.EndElement:
			if t.Name.Local == "process" {
				return p, nil
			}
		}
	}
}

func decodePartnerLinks(dec *xml.Decoder, p *Process) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "partnerLink" {
				return fmt.Errorf("bpel: unexpected <%s> inside partnerLinks", t.Name.Local)
			}
			p.PartnerLinks = append(p.PartnerLinks, PartnerLink{
				Name:     attrValue(t, "name"),
				Partner:  attrValue(t, "partner"),
				LinkType: attrValue(t, "partnerLinkType"),
			})
			if err := dec.Skip(); err != nil {
				return err
			}
		case xml.EndElement:
			if t.Name.Local == "partnerLinks" {
				return nil
			}
		}
	}
}

// decodeChildren collects nested activities until the end element of
// parent, handling <case>/<otherwise>/<onMessage> wrappers via hooks.
func decodeActivity(dec *xml.Decoder, el xml.StartElement) (Activity, error) {
	name := attrValue(el, "name")
	switch el.Name.Local {
	case "sequence":
		kids, err := decodeActivityList(dec, el.Name.Local)
		if err != nil {
			return nil, err
		}
		return &Sequence{BlockName: name, Children: kids}, nil
	case "flow":
		kids, err := decodeActivityList(dec, el.Name.Local)
		if err != nil {
			return nil, err
		}
		return &Flow{BlockName: name, Branches: kids}, nil
	case "switch":
		return decodeSwitch(dec, el)
	case "pick":
		return decodePick(dec, el)
	case "while":
		kids, err := decodeActivityList(dec, el.Name.Local)
		if err != nil {
			return nil, err
		}
		if len(kids) != 1 {
			return nil, fmt.Errorf("bpel: while %q needs exactly one body activity, got %d", name, len(kids))
		}
		return &While{BlockName: name, Cond: attrValue(el, "condition"), Body: kids[0]}, nil
	case "scope":
		kids, err := decodeActivityList(dec, el.Name.Local)
		if err != nil {
			return nil, err
		}
		if len(kids) != 1 {
			return nil, fmt.Errorf("bpel: scope %q needs exactly one body activity, got %d", name, len(kids))
		}
		return &Scope{BlockName: name, Body: kids[0]}, nil
	case "receive":
		act := &Receive{BlockName: name, Partner: attrValue(el, "partner"), Op: attrValue(el, "operation")}
		return act, dec.Skip()
	case "reply":
		act := &Reply{BlockName: name, Partner: attrValue(el, "partner"), Op: attrValue(el, "operation")}
		return act, dec.Skip()
	case "invoke":
		act := &Invoke{
			BlockName: name,
			Partner:   attrValue(el, "partner"),
			Op:        attrValue(el, "operation"),
			Sync:      strings.EqualFold(attrValue(el, "sync"), "true"),
		}
		return act, dec.Skip()
	case "assign":
		return &Assign{BlockName: name}, dec.Skip()
	case "empty":
		return &Empty{BlockName: name}, dec.Skip()
	case "terminate":
		return &Terminate{BlockName: name}, dec.Skip()
	}
	return nil, fmt.Errorf("bpel: unknown activity element <%s>", el.Name.Local)
}

func decodeActivityList(dec *xml.Decoder, closing string) ([]Activity, error) {
	var kids []Activity
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			act, err := decodeActivity(dec, t)
			if err != nil {
				return nil, err
			}
			kids = append(kids, act)
		case xml.EndElement:
			if t.Name.Local == closing {
				return kids, nil
			}
		}
	}
}

func decodeSwitch(dec *xml.Decoder, el xml.StartElement) (Activity, error) {
	sw := &Switch{BlockName: attrValue(el, "name")}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "case":
				kids, err := decodeActivityList(dec, "case")
				if err != nil {
					return nil, err
				}
				if len(kids) != 1 {
					return nil, fmt.Errorf("bpel: switch case needs exactly one activity, got %d", len(kids))
				}
				sw.Cases = append(sw.Cases, Case{Cond: attrValue(t, "condition"), Body: kids[0]})
			case "otherwise":
				kids, err := decodeActivityList(dec, "otherwise")
				if err != nil {
					return nil, err
				}
				if len(kids) != 1 {
					return nil, fmt.Errorf("bpel: otherwise needs exactly one activity, got %d", len(kids))
				}
				sw.Else = kids[0]
			default:
				return nil, fmt.Errorf("bpel: unexpected <%s> inside switch", t.Name.Local)
			}
		case xml.EndElement:
			if t.Name.Local == "switch" {
				return sw, nil
			}
		}
	}
}

func decodePick(dec *xml.Decoder, el xml.StartElement) (Activity, error) {
	pk := &Pick{BlockName: attrValue(el, "name")}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "onMessage" {
				return nil, fmt.Errorf("bpel: unexpected <%s> inside pick", t.Name.Local)
			}
			kids, err := decodeActivityList(dec, "onMessage")
			if err != nil {
				return nil, err
			}
			if len(kids) != 1 {
				return nil, fmt.Errorf("bpel: onMessage needs exactly one activity, got %d", len(kids))
			}
			pk.Branches = append(pk.Branches, OnMessage{
				Partner: attrValue(t, "partner"),
				Op:      attrValue(t, "operation"),
				Body:    kids[0],
			})
		case xml.EndElement:
			if t.Name.Local == "pick" {
				return pk, nil
			}
		}
	}
}
