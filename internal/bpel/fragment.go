package bpel

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// MarshalActivityXML renders a single activity as an XML fragment in
// the same syntax MarshalXML uses inside a process — the wire format
// of activity-carrying change operations.
func MarshalActivityXML(a Activity) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("bpel: cannot marshal nil activity")
	}
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := encodeActivity(enc, a); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalActivityXML parses a single activity fragment as produced
// by MarshalActivityXML (any activity element that may appear inside a
// process body).
func UnmarshalActivityXML(data []byte) (Activity, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("bpel: no activity element found")
		}
		if err != nil {
			return nil, err
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		return decodeActivity(dec, start)
	}
}
