package bpel

import (
	"fmt"

	"repro/internal/wsdl"
)

// Validate checks the structural invariants the rest of the pipeline
// relies on:
//
//   - the process has a name, an owner and a body;
//   - structured activities have the children they require (a while
//     needs a body, a switch at least one case, a pick at least one
//     branch);
//   - sibling activities have distinct path elements, so Path
//     addressing (and therefore the mapping table and change
//     operations) is unambiguous;
//   - communication activities name a partner different from the
//     owner and a non-empty operation.
//
// When reg is non-nil, operations are additionally resolved against
// the WSDL registry: a Receive/Pick branch receives an operation the
// *owner* provides, an Invoke calls an operation the *partner*
// provides, the Invoke's Sync flag must match the registered
// operation, and a Reply is only legal for a synchronous operation of
// the owner.
func (p *Process) Validate(reg *wsdl.Registry) error {
	if p.Name == "" {
		return fmt.Errorf("bpel: process has no name")
	}
	if p.Owner == "" {
		return fmt.Errorf("bpel: process %q has no owner", p.Name)
	}
	if p.Body == nil {
		return fmt.Errorf("bpel: process %q has no body", p.Name)
	}
	var err error
	Walk(p.Body, func(a Activity, path Path) bool {
		if err != nil {
			return false
		}
		err = p.validateActivity(a, path, reg)
		return err == nil
	})
	return err
}

func (p *Process) validateActivity(a Activity, path Path, reg *wsdl.Registry) error {
	at := func() string { return fmt.Sprintf("process %q at %s", p.Name, path.Child(Element(a))) }
	// Sibling uniqueness.
	kids := Children(a)
	seen := map[string]bool{}
	for _, c := range kids {
		if c == nil {
			return fmt.Errorf("bpel: %s: nil child activity", at())
		}
		el := Element(c)
		if seen[el] {
			return fmt.Errorf("bpel: %s: duplicate sibling element %q (give the activities distinct names)", at(), el)
		}
		seen[el] = true
	}
	switch t := a.(type) {
	case *Sequence:
		// Empty sequences are allowed (they arise from deletions).
	case *Flow:
		if len(t.Branches) == 0 {
			return fmt.Errorf("bpel: %s: flow without branches", at())
		}
	case *Switch:
		if len(t.Cases) == 0 && t.Else == nil {
			return fmt.Errorf("bpel: %s: switch without cases", at())
		}
		for _, c := range t.Cases {
			if c.Body == nil {
				return fmt.Errorf("bpel: %s: switch case without body", at())
			}
		}
	case *Pick:
		if len(t.Branches) == 0 {
			return fmt.Errorf("bpel: %s: pick without branches", at())
		}
		alts := map[string]bool{}
		for _, b := range t.Branches {
			key := b.Partner + "\x00" + b.Op
			if alts[key] {
				return fmt.Errorf("bpel: %s: duplicate pick alternative %s.%s", at(), b.Partner, b.Op)
			}
			alts[key] = true
		}
		for _, b := range t.Branches {
			if b.Body == nil {
				return fmt.Errorf("bpel: %s: onMessage without body", at())
			}
			if e := p.checkComm(b.Partner, b.Op, at); e != nil {
				return e
			}
			if reg != nil {
				if _, ok := reg.Lookup(p.Owner, b.Op); !ok {
					return fmt.Errorf("bpel: %s: pick receives unknown operation %q of owner %s", at(), b.Op, p.Owner)
				}
			}
		}
	case *While:
		if t.Body == nil {
			return fmt.Errorf("bpel: %s: while without body", at())
		}
	case *Scope:
		if t.Body == nil {
			return fmt.Errorf("bpel: %s: scope without body", at())
		}
	case *Receive:
		if e := p.checkComm(t.Partner, t.Op, at); e != nil {
			return e
		}
		if reg != nil {
			if _, ok := reg.Lookup(p.Owner, t.Op); !ok {
				return fmt.Errorf("bpel: %s: receive of unknown operation %q of owner %s", at(), t.Op, p.Owner)
			}
		}
	case *Reply:
		if e := p.checkComm(t.Partner, t.Op, at); e != nil {
			return e
		}
		if reg != nil {
			op, ok := reg.Lookup(p.Owner, t.Op)
			if !ok {
				return fmt.Errorf("bpel: %s: reply to unknown operation %q of owner %s", at(), t.Op, p.Owner)
			}
			if !op.Sync() {
				return fmt.Errorf("bpel: %s: reply to asynchronous operation %q", at(), t.Op)
			}
		}
	case *Invoke:
		if e := p.checkComm(t.Partner, t.Op, at); e != nil {
			return e
		}
		if reg != nil {
			op, ok := reg.Lookup(t.Partner, t.Op)
			if !ok {
				return fmt.Errorf("bpel: %s: invoke of unknown operation %q of partner %s", at(), t.Op, t.Partner)
			}
			if op.Sync() != t.Sync {
				return fmt.Errorf("bpel: %s: invoke sync=%t mismatches registered operation %q (sync=%t)", at(), t.Sync, t.Op, op.Sync())
			}
		}
	}
	return nil
}

func (p *Process) checkComm(partner, op string, at func() string) error {
	if partner == "" {
		return fmt.Errorf("bpel: %s: communication activity without partner", at())
	}
	if partner == p.Owner {
		return fmt.Errorf("bpel: %s: partner equals owner %q", at(), p.Owner)
	}
	if op == "" {
		return fmt.Errorf("bpel: %s: communication activity without operation", at())
	}
	return nil
}

// CountActivities returns the number of activities in the tree.
func (p *Process) CountActivities() int {
	n := 0
	Walk(p.Body, func(Activity, Path) bool { n++; return true })
	return n
}
