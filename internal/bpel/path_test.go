package bpel

import (
	"testing"
)

func TestPathBasics(t *testing.T) {
	p := Path{"Sequence:a", "While:b"}
	if p.String() != "Sequence:a / While:b" {
		t.Fatalf("String = %q", p.String())
	}
	if Path(nil).String() != "(root)" {
		t.Fatal("empty path string wrong")
	}
	if !p.Equal(Path{"Sequence:a", "While:b"}) || p.Equal(Path{"Sequence:a"}) {
		t.Fatal("Equal wrong")
	}
	c := p.Child("Switch:c")
	if len(c) != 3 || c[2] != "Switch:c" {
		t.Fatalf("Child = %v", c)
	}
	if !c.Parent().Equal(p) {
		t.Fatal("Parent wrong")
	}
	if Path(nil).Parent() != nil {
		t.Fatal("Parent of empty path")
	}
	if !c.HasPrefix(p) || p.HasPrefix(c) {
		t.Fatal("HasPrefix wrong")
	}
}

func TestWalkOrder(t *testing.T) {
	p := buyerFixture()
	var elems []string
	Walk(p.Body, func(a Activity, path Path) bool {
		elems = append(elems, Element(a))
		return true
	})
	want := []string{
		"Sequence:buyer process",
		"Invoke:order",
		"Receive:delivery",
		"While:tracking",
		"Switch:termination?",
		"Sequence:cond continue",
		"Invoke:getStatus",
		"Receive:status",
		"Sequence:cond terminate",
		"Invoke:terminate",
		"Terminate:end",
	}
	if len(elems) != len(want) {
		t.Fatalf("walk visited %d activities, want %d: %v", len(elems), len(want), elems)
	}
	for i := range want {
		if elems[i] != want[i] {
			t.Fatalf("walk[%d] = %q, want %q", i, elems[i], want[i])
		}
	}
}

func TestWalkPrune(t *testing.T) {
	p := buyerFixture()
	count := 0
	Walk(p.Body, func(a Activity, path Path) bool {
		count++
		return a.Kind() != KindWhile // do not descend into the loop
	})
	if count != 4 {
		t.Fatalf("pruned walk visited %d, want 4", count)
	}
}

func TestFind(t *testing.T) {
	p := buyerFixture()
	act, err := p.Find(Path{"Sequence:buyer process", "Receive:delivery"})
	if err != nil {
		t.Fatal(err)
	}
	if act.(*Receive).Op != "deliveryOp" {
		t.Fatalf("found wrong activity: %v", Element(act))
	}
	if _, err := p.Find(Path{"Sequence:buyer process", "Receive:nonexistent"}); err == nil {
		t.Fatal("Find accepted bogus path")
	}
	root, err := p.Find(nil)
	if err != nil || root != p.Body {
		t.Fatal("Find(nil) should return the body")
	}
}

func TestFindDeep(t *testing.T) {
	p := buyerFixture()
	path := Path{
		"Sequence:buyer process", "While:tracking", "Switch:termination?",
		"Sequence:cond continue", "Invoke:getStatus",
	}
	act, err := p.Find(path)
	if err != nil {
		t.Fatal(err)
	}
	if act.(*Invoke).Op != "getStatusOp" {
		t.Fatal("deep find returned wrong activity")
	}
}

func TestFindFirst(t *testing.T) {
	p := buyerFixture()
	path, err := p.FindFirst(func(a Activity) bool {
		r, ok := a.(*Receive)
		return ok && r.Op == "statusOp"
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Path{
		"Sequence:buyer process", "While:tracking", "Switch:termination?",
		"Sequence:cond continue", "Receive:status",
	}
	if !path.Equal(want) {
		t.Fatalf("FindFirst = %v, want %v", path, want)
	}
	if _, err := p.FindFirst(func(Activity) bool { return false }); err == nil {
		t.Fatal("FindFirst found the unfindable")
	}
}

func TestTransformReplace(t *testing.T) {
	p := buyerFixture()
	path := Path{"Sequence:buyer process", "Receive:delivery"}
	p2, err := p.Transform(path, func(a Activity) (Activity, error) {
		return &Pick{
			BlockName: "delivery or cancel",
			Branches: []OnMessage{
				{Partner: "A", Op: "deliveryOp", Body: &Empty{BlockName: "d"}},
				{Partner: "A", Op: "cancelOp", Body: &Empty{BlockName: "c"}},
			},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Original unchanged.
	if _, err := p.Find(path); err != nil {
		t.Fatal("Transform mutated the original")
	}
	// New process has the pick.
	act, err := p2.Find(Path{"Sequence:buyer process", "Pick:delivery or cancel"})
	if err != nil {
		t.Fatalf("transformed activity missing: %v", err)
	}
	if len(act.(*Pick).Branches) != 2 {
		t.Fatal("pick branches wrong")
	}
}

func TestTransformDeleteFromSequence(t *testing.T) {
	p := buyerFixture()
	p2, err := p.Transform(Path{"Sequence:buyer process", "Invoke:order"}, func(a Activity) (Activity, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Body.(*Sequence).Children) != 2 {
		t.Fatalf("deletion did not shrink sequence: %d children", len(p2.Body.(*Sequence).Children))
	}
}

func TestTransformDeleteWhileBodyBecomesEmpty(t *testing.T) {
	p := buyerFixture()
	p2, err := p.Transform(
		Path{"Sequence:buyer process", "While:tracking", "Switch:termination?"},
		func(a Activity) (Activity, error) { return nil, nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p2.Find(Path{"Sequence:buyer process", "While:tracking"})
	if err != nil {
		t.Fatal(err)
	}
	if w.(*While).Body.Kind() != KindEmpty {
		t.Fatal("deleted while body not replaced by Empty")
	}
}

func TestTransformBogusPath(t *testing.T) {
	p := buyerFixture()
	if _, err := p.Transform(Path{"Sequence:nope"}, func(a Activity) (Activity, error) {
		return a, nil
	}); err == nil {
		t.Fatal("Transform accepted bogus path")
	}
}

func TestTransformRoot(t *testing.T) {
	p := buyerFixture()
	p2, err := p.Transform(nil, func(a Activity) (Activity, error) {
		return &Empty{BlockName: "gutted"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Body.Kind() != KindEmpty {
		t.Fatal("root transform failed")
	}
}

func TestPaths(t *testing.T) {
	p := buyerFixture()
	paths := p.Paths()
	if len(paths) != 11 {
		t.Fatalf("Paths = %d entries, want 11", len(paths))
	}
	if !paths[0].Equal(Path{"Sequence:buyer process"}) {
		t.Fatalf("first path should be the root element, got %v", paths[0])
	}
}
