package bpel

import (
	"strings"
	"testing"
)

// buyerFixture builds the buyer private process of paper Fig. 3.
func buyerFixture() *Process {
	return &Process{
		Name:  "buyer",
		Owner: "B",
		PartnerLinks: []PartnerLink{
			{Name: "accBuyer", Partner: "A"},
		},
		Body: &Sequence{
			BlockName: "buyer process",
			Children: []Activity{
				&Invoke{BlockName: "order", Partner: "A", Op: "orderOp"},
				&Receive{BlockName: "delivery", Partner: "A", Op: "deliveryOp"},
				&While{
					BlockName: "tracking",
					Cond:      "1 = 1",
					Body: &Switch{
						BlockName: "termination?",
						Cases: []Case{
							{
								Cond: "continue",
								Body: &Sequence{
									BlockName: "cond continue",
									Children: []Activity{
										&Invoke{BlockName: "getStatus", Partner: "A", Op: "getStatusOp"},
										&Receive{BlockName: "status", Partner: "A", Op: "statusOp"},
									},
								},
							},
							{
								Cond: "otherwise",
								Body: &Sequence{
									BlockName: "cond terminate",
									Children: []Activity{
										&Invoke{BlockName: "terminate", Partner: "A", Op: "terminateOp"},
										&Terminate{BlockName: "end"},
									},
								},
							},
						},
					},
				},
			},
		},
	}
}

func TestElement(t *testing.T) {
	tests := []struct {
		act  Activity
		want string
	}{
		{&Sequence{BlockName: "buyer process"}, "Sequence:buyer process"},
		{&While{BlockName: "tracking"}, "While:tracking"},
		{&Switch{BlockName: "termination?"}, "Switch:termination?"},
		{&Terminate{}, "Terminate"},
		{&Receive{BlockName: "delivery"}, "Receive:delivery"},
	}
	for _, tt := range tests {
		if got := Element(tt.act); got != tt.want {
			t.Errorf("Element = %q, want %q", got, tt.want)
		}
	}
	if Element(nil) != "" {
		t.Error("Element(nil) != \"\"")
	}
}

func TestKindString(t *testing.T) {
	if KindSequence.String() != "Sequence" || KindInvoke.String() != "Invoke" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buyerFixture()
	c := p.Clone()
	// Mutate the clone's nested switch.
	sw, err := c.Find(Path{"Sequence:buyer process", "While:tracking", "Switch:termination?"})
	if err != nil {
		t.Fatal(err)
	}
	sw.(*Switch).Cases[0].Cond = "MUTATED"
	orig, err := p.Find(Path{"Sequence:buyer process", "While:tracking", "Switch:termination?"})
	if err != nil {
		t.Fatal(err)
	}
	if orig.(*Switch).Cases[0].Cond == "MUTATED" {
		t.Fatal("Clone shares switch cases")
	}
}

func TestChildren(t *testing.T) {
	p := buyerFixture()
	kids := Children(p.Body)
	if len(kids) != 3 {
		t.Fatalf("root children = %d, want 3", len(kids))
	}
	sw := &Switch{
		Cases: []Case{{Cond: "a", Body: &Empty{BlockName: "e1"}}},
		Else:  &Empty{BlockName: "e2"},
	}
	if got := Children(sw); len(got) != 2 {
		t.Fatalf("switch children = %d, want 2 (case + else)", len(got))
	}
	if Children(&Receive{}) != nil {
		t.Fatal("basic activity has children")
	}
}

func TestPartners(t *testing.T) {
	p := buyerFixture()
	partners := p.Partners()
	if len(partners) != 1 || partners[0] != "A" {
		t.Fatalf("Partners = %v", partners)
	}
	// Pick branches contribute partners too.
	p2 := &Process{
		Name: "x", Owner: "A",
		Body: &Pick{BlockName: "p", Branches: []OnMessage{
			{Partner: "B", Op: "a", Body: &Empty{}},
			{Partner: "L", Op: "b", Body: &Empty{}},
		}},
	}
	partners = p2.Partners()
	if len(partners) != 2 || partners[0] != "B" || partners[1] != "L" {
		t.Fatalf("Partners = %v", partners)
	}
}

func TestStringRendering(t *testing.T) {
	p := buyerFixture()
	s := p.String()
	for _, want := range []string{
		"process \"buyer\" (owner B)",
		"Sequence:buyer process",
		"While:tracking [1 = 1]",
		"case [continue]",
		"<- A.deliveryOp",
		"-> A.orderOp",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCountActivities(t *testing.T) {
	p := buyerFixture()
	// sequence, invoke, receive, while, switch, 2 sequences, 2 invokes,
	// 1 receive, 1 terminate = 11.
	if got := p.CountActivities(); got != 11 {
		t.Fatalf("CountActivities = %d, want 11", got)
	}
}
